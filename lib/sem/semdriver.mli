(** Cmt discovery and analysis dispatch — the CLI-free pipeline behind
    [bin/lnd_sem.ml], driven identically by the test suite. *)

type ctx = { ordering : bool; signing : bool; purity : bool }
(** Which of the three analyses run on a file. *)

val all_ctx : ctx

val default_ctx : source:string -> ctx
(** Context from a workspace-relative source path: ordering where the
    journal meets the wire (lib/msgpass, lib/durable), signature
    discipline in the signature-carrying layers (lib/sigbase,
    lib/msgpass — lib/crypto is the oracle, lib/byz models liars),
    purity everywhere (it only fires on [[\@lnd.pure]]). *)

val analyze_structure :
  ctx -> file:string -> Typedtree.structure -> Lnd_lint_core.Findings.t list
(** Run the enabled analyses over one typedtree; sorted, deduplicated. *)

val load_cmt : string -> (string * Typedtree.structure) option
(** Read one [.cmt]; [Some (source, structure)] for an implementation
    cmt with a recorded source file, [None] otherwise (including
    unreadable or wrong-magic files — the build is the real gate). *)

val analyze_paths :
  build:string -> string list -> (Lnd_lint_core.Findings.t list, string) result
(** Walk [build] (a dune build root such as [_build/default]) for cmts
    whose recorded source lives under one of the given
    workspace-relative paths, and analyze each source once under its
    {!default_ctx}. [Error] only when [build] does not exist. *)
