(** Per-structure tables shared by the semantic analyses: the top-level
    function table (the granularity of interprocedural summaries), the
    local [module X = Y] alias environment, and [[\@lnd.allow]]
    suppression spans read off the typedtree. *)

type fn = {
  fn_id : Ident.t;
  fn_name : string;
  fn_expr : Typedtree.expression;
      (** the bound expression, [fun] layers included *)
  fn_loc : Location.t;
  fn_pure : bool;  (** carries [[\@lnd.pure]] *)
}

val collect : Typedtree.structure -> Names.aliases * fn list
(** Top-level [let] bindings and module aliases, in source order. *)

val find : fn list -> Ident.t -> fn option
(** Look a callee up by its (stamped) ident. *)

type allows = {
  spans : (string * int * int) list;
      (** (rule, start offset, end offset) *)
  file_rules : string list;  (** floating [\@\@\@lnd.allow] rules *)
}

val collect_allows : Typedtree.structure -> allows
(** Every well-formed [[\@lnd.allow "rule: ..."]] in the tree, keyed by
    the span of the expression or binding it annotates. Hygiene
    (unknown rules, missing justifications) is [lnd_lint]'s job — the
    parsetree pass sees the same attributes. *)

val suppressed : allows -> rule:string -> Location.t -> bool
(** Whether a finding for [rule] at this location falls inside a
    suppression span (or a file-wide allow). *)
