(** Analysis 2 — [sem-sign] / [sem-verify]: signature discipline as a
    taint-style source→sink check. A locally fabricated
    signature-carrying claim (record/tuple/constructor build,
    [Sigoracle.forge]) may not reach a send or register write without
    [Sigoracle.sign] on the path ([sem-sign]); signature-carrying data
    obtained from a register read or transport poll may not flow into a
    sink without [Sigoracle.verify] — seen interprocedurally through
    verify-calling helpers — on the path ([sem-verify]). Hand-building
    a [Sigoracle.signature] record is flagged unconditionally: only the
    oracle issues signatures. *)

val check : file:string -> Typedtree.structure -> Lnd_lint_core.Findings.t list
