(* Resolved-name classification. The whole point of analysing the
   typedtree instead of the parsetree is that identifiers arrive as
   [Path.t]s the type checker resolved — `Wal.append` after any chain of
   `open`s, `module W = Wal` aliases or dune's `Lnd_durable__Wal`
   mangling normalizes to the same dotted name, so the effect
   classification below cannot be dodged by renaming the module at the
   use site. *)

(* Split a dune-mangled component: "Lnd_durable__Wal" -> ["Lnd_durable";
   "Wal"]. *)
let split_mangled (s : string) : string list =
  let n = String.length s in
  let rec go acc start i =
    if i + 1 >= n then [ String.sub s start (n - start) ] @ acc |> List.rev
    else if s.[i] = '_' && s.[i + 1] = '_' then
      go (String.sub s start (i - start) :: acc) (i + 2) (i + 2)
    else go acc start (i + 1)
  in
  go [] 0 0 |> List.filter (fun c -> c <> "")

(* The toplevel walk records [module X = Some.Path] aliases so a path
   rooted at a local alias normalizes to the aliased module's name. *)
type aliases = (Ident.t * string list) list

let rec flatten (aliases : aliases) (p : Path.t) : string list =
  match p with
  | Path.Pident id -> (
      match List.find_opt (fun (a, _) -> Ident.same a id) aliases with
      | Some (_, target) -> target
      | None -> split_mangled (Ident.name id))
  | Path.Pdot (p, s) -> flatten aliases p @ split_mangled s
  | Path.Papply (p, _) -> flatten aliases p
  | Path.Pextra_ty (p, _) -> flatten aliases p

let name aliases p = String.concat "." (flatten aliases p)

(* The effect vocabulary of the analyses. Classification keys off the
   LAST meaningful components of the normalized name, so both
   [Lnd_durable.Wal.append] and a re-exported [Lnd.Wal.append] hit
   [Wal_append]. *)
type kind =
  | Wal_append  (** journals a record (dirty until a sync barrier) *)
  | Wal_sync  (** durability barrier: [Wal.sync] / [Wal.snapshot] *)
  | Send  (** speaks: [Transport.send]/[broadcast], [Net.send] *)
  | Reg_write  (** writes a shared register: [Sched.write]/[Cell.write] *)
  | Reg_read  (** reads a shared register / polls the transport *)
  | Sign  (** [Sigoracle.sign] — issues a signature *)
  | Verify  (** [Sigoracle.verify] — checks a claim *)
  | Impure of string  (** anything a [\@lnd.pure] body may not touch *)
  | Plain  (** no effect the analyses track *)

let last2 (l : string list) =
  match List.rev l with
  | x :: y :: _ -> (y, x)
  | [ x ] -> ("", x)
  | [] -> ("", "")

let classify (aliases : aliases) (p : Path.t) : kind =
  let comps = flatten aliases p in
  match last2 comps with
  | "Wal", "append" -> Wal_append
  | "Wal", ("sync" | "snapshot") -> Wal_sync
  | ("Transport" | "Net"), ("send" | "broadcast") -> Send
  | ("Sched" | "Cell" | "Register"), "write" -> Reg_write
  | ("Sched" | "Cell" | "Register"), "read" -> Reg_read
  | "Transport", "poll_all" -> Reg_read
  | "Sigoracle", "sign" -> Sign
  | "Sigoracle", "verify" -> Verify
  | (("Sched" | "Transport" | "Net" | "Faultnet" | "Rlink" | "Wal" | "Disk"
     | "Random" | "Unix" | "Space" | "Rng" | "Sigoracle") as m), f ->
      Impure (m ^ "." ^ f)
  | "Obs", (("emit" | "span_open" | "span_close" | "set_sink") as f) ->
      Impure ("Obs." ^ f)
  | "Sys", f -> Impure ("Sys." ^ f)
  | "Effect", "perform" -> Impure "Effect.perform"
  | ("Printf" | "Format"), (("printf" | "eprintf" | "fprintf") as f) ->
      Impure ("printing via " ^ f)
  | ( "Hashtbl",
      (( "add" | "replace" | "remove" | "reset" | "clear"
       | "filter_map_inplace" ) as f) ) ->
      Impure ("Hashtbl." ^ f)
  | ("Array" | "Bytes"), (("set" | "unsafe_set" | "fill" | "blit") as f) -> (
      match comps with
      | "Stdlib" :: _ | [ _; _ ] -> Impure ("mutation via " ^ f)
      | _ -> Plain)
  | ("Queue" | "Stack"), (("push" | "pop" | "add" | "take" | "clear") as f)
    ->
      Impure ("mutation via " ^ f)
  | _, (("print_string" | "print_endline" | "print_newline" | "print_int"
        | "print_char" | "print_float" | "prerr_string" | "prerr_endline")
        as f)
    when List.length comps <= 2 ->
      Impure ("printing via " ^ f)
  | _ -> Plain

(* Allocators whose result a pure function may mutate: mutating state
   you just created and still own is not an ambient effect. *)
let is_fresh_allocator (aliases : aliases) (p : Path.t) : bool =
  match last2 (flatten aliases p) with
  | _, "ref" -> true
  | ("Hashtbl" | "Queue" | "Stack" | "Buffer"), "create" -> true
  | ("Array" | "Bytes"), ("make" | "create" | "init" | "copy") -> true
  | _ -> false

let is_assign (aliases : aliases) (p : Path.t) : bool =
  match last2 (flatten aliases p) with _, ":=" -> true | _ -> false

(* -------- signature-carrying types -------- *)

(* Does this type mention the signature oracle's output (directly, or
   inside a tuple / type-constructor application such as [cert list])?
   Structural only: abbreviations whose *definition* mentions signatures
   are matched by their conventional name ("cert"), a documented
   approximation — the fixtures and lib/sigbase both use transparent
   cert shapes. *)
let type_carries_signature (ty : Types.type_expr) : bool =
  let rec go depth seen ty =
    if depth > 8 || List.memq ty seen then false
    else
      let seen = ty :: seen in
      match Types.get_desc ty with
      | Types.Tconstr (p, args, _) ->
          (match last2 (flatten [] p) with
          | "Sigoracle", "signature" -> true
          | _, "cert" -> true
          | _ -> false)
          || List.exists (go (depth + 1) seen) args
      | Types.Ttuple l -> List.exists (go (depth + 1) seen) l
      | Types.Tarrow (_, a, b, _) ->
          go (depth + 1) seen a || go (depth + 1) seen b
      | _ -> false
  in
  go 0 [] ty
