(** Analysis 3 — [sem-pure]: the machine-checked purity gate for
    [[\@lnd.pure]]-annotated functions (the contract intended for
    [step : state -> event -> state * action list] protocol cores,
    ROADMAP item 1). An annotated body may not mutate state it did not
    allocate, perform ambient effects, call the scheduler, or touch the
    Transport / Wal / Disk / Obs / shared-register seams; local callees
    are checked transitively. Reads of mutable state and raising are
    allowed — purity here is effect-freedom, not referential
    transparency. *)

val check : file:string -> Typedtree.structure -> Lnd_lint_core.Findings.t list
