(** Analysis 1 — [sem-ordering]: "journal, sync, only then speak" as a
    flow-sensitive dominance check over the typedtree. On every
    intraprocedural path, a [Wal.append] must reach a
    [Wal.sync]/[Wal.snapshot] barrier before any [Transport] send can
    expose the journalled state. Interprocedural through per-function
    effect summaries (Clean/Dirty entry × exit states × violation
    flags), iterated to fixpoint across the file, so local
    [jot]/[psync]-style wrappers are seen through and a call that
    speaks over the caller's dirty journal is flagged at the call
    site. A send under [[\@lnd.allow "sem-ordering: ..."]] is invisible
    to the analysis (the justification asserts an external barrier). *)

val check : file:string -> Typedtree.structure -> Lnd_lint_core.Findings.t list
