(* Analysis 2: signature discipline as a source→sink taint check.

   The paper's baseline ("you can lie but, with signatures, not deny
   either") rests on two code disciplines in the signature-based
   layers: a claim a process emits must have been signed
   ([Sigoracle.sign]) before it goes on the wire or into a shared
   register, and a claim received from elsewhere must pass
   [Sigoracle.verify] before it may influence register state.

   Sources: register reads / transport polls whose result type carries a
   signature ([Sigoracle.signature] or a [cert] shape). Locally
   fabricated signature-carrying values (record/constructor/tuple
   builds, [Sigoracle.forge]) are the other source class.
   Sinks: [Transport.send]/[broadcast] and register writes
   ([Sched.write]/[Cell.write]).
   Sanitizers: an occurrence of [Sigoracle.sign] (blesses fabricated
   claims) or [Sigoracle.verify] (blesses received claims) on the path
   before the sink — occurrences seen through local helpers
   interprocedurally (a call to a helper that may call [verify], e.g.
   [valid_cert] passed to [List.find_opt], counts).

   Approximations (DESIGN.md §4i): blessing is path-insensitive within
   a function (an oracle occurrence anywhere earlier in evaluation
   order blesses later sinks); taint is tracked through [let]-bound
   variables, not through data structures or across functions;
   pattern-bound variables are neutral. Direct construction of a
   [Sigoracle.signature] record outside lib/crypto is always flagged —
   only the oracle issues signatures. *)

open Typedtree

type origin = Read | Constructed

type env = {
  aliases : Names.aliases;
  fns : Funtab.fn list;
  allows : Funtab.allows;
  (* may_* summaries per top-level function, fixpointed *)
  sums : (Ident.t * (bool * bool * bool)) list ref;
      (* (may_sign, may_verify, may_read) *)
  mutable seen_sign : bool;
  mutable seen_oracle : bool;  (* sign OR verify *)
  mutable taint : (Ident.t * origin) list;
  mutable found : Lnd_lint_core.Findings.t list;
  file : string;
  fn_name : string;
  collect : bool;  (* false during summary runs: no findings *)
}

let sum_of env id =
  match List.find_opt (fun (i, _) -> Ident.same i id) !(env.sums) with
  | Some (_, s) -> s
  | None -> (false, false, false)

let is_local_fn env id = Funtab.find env.fns id <> None

(* Occurrence classification of one identifier (applied or not). *)
let note_occurrence env (p : Path.t) =
  (match Names.classify env.aliases p with
  | Names.Sign ->
      env.seen_sign <- true;
      env.seen_oracle <- true
  | Names.Verify -> env.seen_oracle <- true
  | _ -> ());
  match p with
  | Path.Pident id when is_local_fn env id ->
      let s, v, _ = sum_of env id in
      if s then begin
        env.seen_sign <- true;
        env.seen_oracle <- true
      end;
      if v then env.seen_oracle <- true
  | _ -> ()

let is_forge env (p : Path.t) =
  match Names.last2 (Names.flatten env.aliases p) with
  | "Sigoracle", "forge" -> true
  | _ -> false

(* Does this subtree mention a read source (register read / poll /
   may_read local helper)? *)
let contains_read env (e : expression) : bool =
  let hit = ref false in
  let super = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        (match Names.classify env.aliases p with
        | Names.Reg_read -> hit := true
        | _ -> ());
        match p with
        | Path.Pident id when is_local_fn env id ->
            let _, _, r = sum_of env id in
            if r then hit := true
        | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !hit

let contains_sign env (e : expression) : bool =
  let hit = ref false in
  let super = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        (match Names.classify env.aliases p with
        | Names.Sign -> hit := true
        | _ -> ());
        match p with
        | Path.Pident id when is_local_fn env id ->
            let s, _, _ = sum_of env id in
            if s then hit := true
        | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !hit

let sig_typed (e : expression) = Names.type_carries_signature e.exp_type

(* Is this expression a local fabrication of signature-carrying data?
   (record/constructor/tuple build, or a [Sigoracle.forge] call) *)
let rec fabricated env (e : expression) : bool =
  sig_typed e
  &&
  match e.exp_desc with
  | Texp_record _ | Texp_tuple _ -> true
  | Texp_construct (_, _, args) ->
      (* a `::`/Some/... build is a fabrication iff a fabricated piece
         sits inside (a nullary constructor carries no signature data) *)
      List.exists (fabricated env) args
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
      is_forge env p
  | _ -> false

let add_finding env ~rule (loc : Location.t) msg =
  if env.collect && not (Funtab.suppressed env.allows ~rule loc) then begin
    let p = loc.Location.loc_start in
    let f =
      {
        Lnd_lint_core.Findings.rule;
        file = env.file;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        msg = Printf.sprintf "%s (in `%s`)" msg env.fn_name;
      }
    in
    if not (List.mem f env.found) then env.found <- f :: env.found
  end

(* Check one sink payload under the current blessing state. *)
let check_payload env (sink : string) (loc : Location.t) (payload : expression)
    =
  let tainted_constructed = ref false and tainted_read = ref false in
  let super = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        match List.find_opt (fun (i, _) -> Ident.same i id) env.taint with
        | Some (_, Read) -> tainted_read := true
        | Some (_, Constructed) -> tainted_constructed := true
        | None -> ())
    | Texp_record _ | Texp_tuple _ | Texp_construct _ ->
        if fabricated env e then tainted_constructed := true
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
      when sig_typed e -> (
        if is_forge env p then tainted_constructed := true
        else
          match Names.classify env.aliases p with
          | Names.Reg_read -> tainted_read := true
          | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it payload;
  if !tainted_constructed && not env.seen_sign then
    add_finding env ~rule:"sem-sign" loc
      (Printf.sprintf
         "unsigned outbound claim: a locally fabricated signature-carrying \
          value reaches this %s with no Sigoracle.sign on the path; sign \
          the claim first or justify with [@lnd.allow \"sem-sign: ...\"]"
         sink);
  if !tainted_read && not env.seen_oracle then
    add_finding env ~rule:"sem-verify" loc
      (Printf.sprintf
         "unverified inbound claim: signature-carrying data obtained from \
          a read reaches this %s with no Sigoracle.verify on the path; \
          verify before trusting, or justify with [@lnd.allow \
          \"sem-verify: ...\"]"
         sink)

(* The in-order walk: thread blessing flags and the taint environment
   through one function body. *)
let walk_fn env (body : expression) =
  let super = Tast_iterator.default_iterator in
  let value_binding (it : Tast_iterator.iterator) (vb : value_binding) =
    it.expr it vb.vb_expr;
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) when Names.type_carries_signature vb.vb_pat.pat_type
      ->
        if contains_read env vb.vb_expr && not (contains_sign env vb.vb_expr)
        then env.taint <- (id, Read) :: env.taint
        else if
          fabricated env vb.vb_expr && not (contains_sign env vb.vb_expr)
        then env.taint <- (id, Constructed) :: env.taint
    | _ -> ()
  in
  let expr it (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> note_occurrence env p
    | Texp_record _ when sig_typed e && env.collect -> (
        (* direct fabrication of the signature type itself *)
        match Types.get_desc e.exp_type with
        | Types.Tconstr (p, _, _)
          when Names.last2 (Names.flatten env.aliases p)
               = ("Sigoracle", "signature") ->
            add_finding env ~rule:"sem-sign" e.exp_loc
              "fabricating a Sigoracle.signature record; only the oracle \
               issues signatures (Sigoracle.sign) — a hand-built record \
               is a forgery by construction";
            super.expr it e
        | _ -> super.expr it e)
    | Texp_apply (head, args) ->
        (* evaluate head + args (occurrences first), then the sink *)
        it.expr it head;
        List.iter (fun (_, a) -> Option.iter (it.expr it) a) args;
        let kind =
          match head.exp_desc with
          | Texp_ident (p, _, _) -> Names.classify env.aliases p
          | Texp_field (_, _, lbl) -> (
              match Types.get_desc lbl.Types.lbl_res with
              | Types.Tconstr (p, _, _) -> (
                  match Names.last2 (Names.flatten env.aliases p) with
                  | "Transport", "t" when lbl.Types.lbl_name = "send" ->
                      Names.Send
                  | _ -> Names.Plain)
              | _ -> Names.Plain)
          | _ -> Names.Plain
        in
        (match kind with
        | Names.Send ->
            List.iter
              (fun (_, a) ->
                Option.iter (check_payload env "send" e.exp_loc) a)
              args
        | Names.Reg_write ->
            List.iter
              (fun (_, a) ->
                Option.iter (check_payload env "register write" e.exp_loc) a)
              args
        | _ -> ())
    | _ -> super.expr it e
  in
  let it = { super with expr; value_binding } in
  it.expr it body

(* may_sign/may_verify/may_read summaries, to fixpoint. *)
let summarize env_proto fns =
  let sums = env_proto.sums in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun (fn : Funtab.fn) ->
        let env =
          { env_proto with seen_sign = false; seen_oracle = false }
        in
        env.taint <- [];
        walk_fn env fn.fn_expr;
        let may_read = contains_read env fn.fn_expr in
        let s = (env.seen_sign, env.seen_oracle, may_read) in
        let old = sum_of env fn.fn_id in
        if s <> old then begin
          changed := true;
          sums :=
            (fn.fn_id, s)
            :: List.filter
                 (fun (i, _) -> not (Ident.same i fn.fn_id))
                 !sums
        end)
      fns
  done

let check ~(file : string) (str : structure) : Lnd_lint_core.Findings.t list
    =
  let aliases, fns = Funtab.collect str in
  let allows = Funtab.collect_allows str in
  let proto =
    {
      aliases;
      fns;
      allows;
      sums = ref [];
      seen_sign = false;
      seen_oracle = false;
      taint = [];
      found = [];
      file;
      fn_name = "";
      collect = false;
    }
  in
  summarize proto fns;
  let found = ref [] in
  List.iter
    (fun (fn : Funtab.fn) ->
      let env =
        {
          proto with
          seen_sign = false;
          seen_oracle = false;
          taint = [];
          found = [];
          fn_name = fn.fn_name;
          collect = true;
        }
      in
      walk_fn env fn.fn_expr;
      found := env.found @ !found)
    fns;
  !found
