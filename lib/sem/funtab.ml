(* Per-structure tables the analyses share: the top-level function
   table (the unit of interprocedural summaries), local module aliases,
   and the [@lnd.allow] suppression spans read off the typedtree. *)

open Typedtree

type fn = {
  fn_id : Ident.t;
  fn_name : string;
  fn_expr : expression;  (* the bound expression, fn layers included *)
  fn_loc : Location.t;
  fn_pure : bool;  (* carries [@lnd.pure] *)
}

let has_pure_attr (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = "lnd.pure") attrs

let alias_target (me : module_expr) : Path.t option =
  match me.mod_desc with
  | Tmod_ident (p, _) -> Some p
  | Tmod_constraint ({ mod_desc = Tmod_ident (p, _); _ }, _, _, _) -> Some p
  | _ -> None

(* Top-level [let]s and [module X = Path] aliases, in order, so later
   aliases may resolve through earlier ones. *)
let collect (str : structure) : Names.aliases * fn list =
  let aliases = ref [] and fns = ref [] in
  List.iter
    (fun (si : structure_item) ->
      match si.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) ->
                  fns :=
                    {
                      fn_id = id;
                      fn_name = Ident.name id;
                      fn_expr = vb.vb_expr;
                      fn_loc = vb.vb_loc;
                      fn_pure = has_pure_attr vb.vb_attributes;
                    }
                    :: !fns
              | _ -> ())
            vbs
      | Tstr_module mb -> (
          match (mb.mb_id, alias_target mb.mb_expr) with
          | Some id, Some p ->
              aliases := (id, Names.flatten !aliases p) :: !aliases
          | _ -> ())
      | _ -> ())
    str.str_items;
  (!aliases, List.rev !fns)

let find (fns : fn list) (id : Ident.t) : fn option =
  List.find_opt (fun f -> Ident.same f.fn_id id) fns

(* ---------------- Suppressions ---------------- *)

type allows = {
  spans : (string * int * int) list;  (* rule, start offset, end offset *)
  file_rules : string list;  (* floating [@@@lnd.allow] *)
}

let collect_allows (str : structure) : allows =
  let spans = ref [] and file_rules = ref [] in
  let note ~(span : Location.t option) (attr : Parsetree.attribute) =
    match Lnd_lint_core.Rules.allow_payload attr with
    | None | Some None -> ()
    | Some (Some s) -> (
        let rule, _ = Lnd_lint_core.Rules.parse_allow s in
        match span with
        | None -> file_rules := rule :: !file_rules
        | Some l ->
            spans :=
              ( rule,
                l.Location.loc_start.Lexing.pos_cnum,
                l.Location.loc_end.Lexing.pos_cnum )
              :: !spans)
  in
  let super = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    List.iter (note ~span:(Some e.exp_loc)) e.exp_attributes;
    super.expr it e
  in
  let value_binding it (vb : value_binding) =
    List.iter (note ~span:(Some vb.vb_loc)) vb.vb_attributes;
    super.value_binding it vb
  in
  let structure_item it (si : structure_item) =
    (match si.str_desc with
    | Tstr_attribute attr -> note ~span:None attr
    | _ -> ());
    super.structure_item it si
  in
  let it = { super with expr; value_binding; structure_item } in
  it.structure it str;
  { spans = !spans; file_rules = !file_rules }

let suppressed (a : allows) ~rule (loc : Location.t) : bool =
  let off = loc.Location.loc_start.Lexing.pos_cnum in
  List.mem rule a.file_rules
  || List.exists (fun (r, s, e) -> r = rule && s <= off && off <= e) a.spans
