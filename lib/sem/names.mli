(** Resolved-name normalization and effect classification over
    typedtree [Path.t]s — the vocabulary shared by the three semantic
    analyses. Names are normalized through dune's [Lib__Module] mangling
    and through local [module X = Y] aliases, so classification is
    immune to renaming at the use site. *)

type aliases = (Ident.t * string list) list
(** Local module aliases, collected by {!Funtab.collect}: resolving a
    path rooted at the bound ident continues through the alias target. *)

val flatten : aliases -> Path.t -> string list
(** Normalized dotted components, mangling split and aliases applied:
    [Lnd_durable__Wal.append] → [["Lnd_durable"; "Wal"; "append"]]. *)

val name : aliases -> Path.t -> string

val last2 : string list -> string * string
(** Last two components, ["" ] -filled: [["A";"B";"c"]] → [("B","c")]. *)

type kind =
  | Wal_append  (** journals a record (dirty until a sync barrier) *)
  | Wal_sync  (** durability barrier: [Wal.sync] / [Wal.snapshot] *)
  | Send  (** speaks: [Transport.send]/[broadcast], [Net.send] *)
  | Reg_write  (** writes a shared register: [Sched.write]/[Cell.write] *)
  | Reg_read  (** reads a shared register / polls the transport *)
  | Sign  (** [Sigoracle.sign] — issues a signature *)
  | Verify  (** [Sigoracle.verify] — checks a claim *)
  | Impure of string  (** anything a [\@lnd.pure] body may not touch *)
  | Plain  (** no effect the analyses track *)

val classify : aliases -> Path.t -> kind
(** Effect kind of one resolved identifier, by its last two normalized
    components. *)

val is_fresh_allocator : aliases -> Path.t -> bool
(** [ref], [Hashtbl.create], [Array.make], … — allocators whose result
    a pure function may mutate (it owns the fresh state). *)

val is_assign : aliases -> Path.t -> bool
(** The [( := )] primitive. *)

val type_carries_signature : Types.type_expr -> bool
(** Whether a type structurally mentions [Sigoracle.signature] (or a
    [cert] abbreviation), through tuples and type-constructor
    arguments. *)
