(* Cmt discovery + per-file analysis dispatch. Kept CLI-free so the
   test suite can drive the identical pipeline in-process (mirroring
   lib/lint/driver.ml).

   The input is the compiler's view: dune's `@check` alias leaves a
   [.cmt] per implementation under
   [_build/default/<dir>/.<lib>.objs/byte/], with [cmt_sourcefile]
   recorded workspace-relative ("lib/msgpass/regemu.ml"). We walk the
   build root for cmts, keep those whose source falls under a requested
   path, and run each analysis the file's context enables. *)

type ctx = { ordering : bool; signing : bool; purity : bool }

let all_ctx = { ordering = true; signing = true; purity = true }

let under (source : string) (dir : string) : bool =
  source = dir
  || String.length source > String.length dir
     && String.sub source 0 (String.length dir) = dir
     && source.[String.length dir] = '/'

(* Which analyses apply where (DESIGN.md §4i):
   - ordering where the journal and the wire meet: the message-passing
     emulation and the durability layer themselves;
   - signing in the signature-based register layers and the emulation
     that carries their claims. lib/crypto is exempt (it IS the
     oracle); lib/byz is exempt (adversaries are modelled lying —
     that is the point of the experiments);
   - purity everywhere: it only fires on [@lnd.pure] annotations. *)
let default_ctx ~(source : string) : ctx =
  {
    ordering = under source "lib/msgpass" || under source "lib/durable";
    signing = under source "lib/sigbase" || under source "lib/msgpass";
    purity = true;
  }

let analyze_structure (ctx : ctx) ~(file : string)
    (str : Typedtree.structure) : Lnd_lint_core.Findings.t list =
  (if ctx.ordering then Ordering.check ~file str else [])
  @ (if ctx.signing then Signing.check ~file str else [])
  @ (if ctx.purity then Purity.check ~file str else [])
  |> List.sort_uniq Lnd_lint_core.Findings.compare

(* ---------------- cmt loading ---------------- *)

let load_cmt (path : string) : (string * Typedtree.structure) option =
  match Cmt_format.read_cmt path with
  | {
   Cmt_format.cmt_annots = Cmt_format.Implementation str;
   cmt_sourcefile = Some source;
   _;
  } ->
      Some (source, str)
  | _ -> None
  | exception _ ->
      (* unreadable / wrong-magic cmts (stale compiler version, cmti
         passed by mistake) are skipped, not fatal: the build that
         produced them is the real gate *)
      None

let skip_dirs = [ "_build"; ".git"; "fixtures" ]

let rec walk_cmts acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc entry -> walk_cmts acc (Filename.concat path entry)) acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let in_skip_dir (source : string) : bool =
  String.split_on_char '/' source
  |> List.exists (fun seg -> List.mem seg skip_dirs)

(* Analyze every cmt under [build] whose recorded source lives under one
   of [paths] (workspace-relative, e.g. ["lib"] or ["lib/msgpass"]).
   Duplicate cmts for one source (a module built into several stanzas)
   are analyzed once. *)
let analyze_paths ~(build : string) (paths : string list) :
    (Lnd_lint_core.Findings.t list, string) result =
  if not (Sys.file_exists build && Sys.is_directory build) then
    Error
      (Printf.sprintf
         "no build tree at %s — run `dune build @check` first" build)
  else
    let cmts = walk_cmts [] build |> List.sort String.compare in
    let seen = Hashtbl.create 64 in
    let findings = ref [] in
    List.iter
      (fun cmt ->
        match load_cmt cmt with
        | Some (source, str)
          when List.exists (under source) paths
               && (not (in_skip_dir source))
               && not (Hashtbl.mem seen source) ->
            Hashtbl.add seen source ();
            findings :=
              analyze_structure (default_ctx ~source) ~file:source str
              @ !findings
        | _ -> ())
      cmts;
    Ok (List.sort_uniq Lnd_lint_core.Findings.compare !findings)
