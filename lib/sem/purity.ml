(* Analysis 3: the machine-checked gate behind ROADMAP item 1's
   pure-core/driver split. A function annotated [@lnd.pure] — the
   contract intended for the emerging `step : state -> event -> state *
   action list` protocol cores — may not:

     - mutate state it did not allocate itself (field assignment, [:=],
       [Hashtbl.replace], [Array.set], ... on anything but a
       locally-created ref/table/array/buffer);
     - perform ambient effects ([Effect.perform] — the scheduler's
       fibers run on effects);
     - call the scheduler, or touch the Transport / Wal / Disk / Obs /
       Net / shared-register seams (reading a register is a yield
       point, so even [Sched.read]/[Cell.read] are out);
     - use ambient randomness, wall clocks, or print.

   Local (same-module) callees are checked transitively, so a pure core
   cannot launder an effect through a helper. Reads of mutable state
   (e.g. [Hashtbl.find_opt]) are allowed: purity here means
   effect-freedom, not referential transparency — the driver owns all
   mutation. Raising is allowed ([invalid_arg] on bad input is control
   flow to the driver, not ambient state). Cross-module calls outside
   the deny-list are assumed pure (DESIGN.md §4i). *)

open Typedtree

type verdict = Pure | Impure of Location.t * string

type env = {
  aliases : Names.aliases;
  fns : Funtab.fn list;
  allows : Funtab.allows;
  mutable verdicts : (Ident.t * verdict) list;
  mutable in_progress : Ident.t list;
}

(* Mutators whose FIRST argument names the mutated value: allowed when
   that value is a local allocation the function owns. *)
let mutator (aliases : Names.aliases) (p : Path.t) : string option =
  match Names.last2 (Names.flatten aliases p) with
  | _, ":=" -> Some "(:=)"
  | ("Stdlib" | ""), ("incr" | "decr") ->
      Some (String.concat "." (Names.flatten aliases p))
  | ( (("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Array" | "Bytes") as m),
      (( "add" | "replace" | "remove" | "reset" | "clear" | "push" | "pop"
       | "take" | "set" | "unsafe_set" | "fill" | "blit" | "add_string"
       | "add_char" | "add_buffer" | "filter_map_inplace" | "truncate" ) as f
      ) ) ->
      Some (m ^ "." ^ f)
  | _ -> None

(* All idents bound to fresh allocations anywhere in this body. *)
let fresh_locals env (body : expression) : Ident.t list =
  let fresh = ref [] in
  let super = Tast_iterator.default_iterator in
  let value_binding it (vb : value_binding) =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> (
        match vb.vb_expr.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
          when Names.is_fresh_allocator env.aliases p ->
            fresh := id :: !fresh
        | Texp_record _ -> fresh := id :: !fresh
        | _ -> ())
    | _ -> ());
    super.value_binding it vb
  in
  let it = { super with value_binding } in
  it.expr it body;
  !fresh

let first_nolabel_arg (args : (Asttypes.arg_label * expression option) list)
    : expression option =
  List.find_map
    (fun (lbl, a) ->
      match (lbl, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let is_fresh_ident fresh (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      List.exists (Ident.same id) fresh
  | _ -> false

(* Walk one body; [fail loc msg] is called on each violation. *)
let rec walk_body env ~(fail : Location.t -> string -> unit)
    (body : expression) : unit =
  let fresh = fresh_locals env body in
  let super = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    match e.exp_desc with
    | Texp_setfield (target, _, lbl, _) ->
        if not (is_fresh_ident fresh target) then
          fail e.exp_loc
            (Printf.sprintf
               "mutates non-local state (field `%s` assignment on a value \
                this function did not allocate)"
               lbl.Types.lbl_name);
        super.expr it e
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when mutator env.aliases p <> None ->
        let name = Option.get (mutator env.aliases p) in
        let ok =
          match first_nolabel_arg args with
          | Some a -> is_fresh_ident fresh a
          | None -> false
        in
        if not ok then
          fail e.exp_loc
            (Printf.sprintf
               "mutates non-local state via %s (target is not a local \
                allocation)"
               name);
        (* args only: the head ident of an allowed mutation must not be
           re-flagged by the ident case below *)
        List.iter (fun (_, a) -> Option.iter (it.expr it) a) args
    | Texp_ident (p, _, _) -> (
        (* every resolved occurrence counts, applied or bare (a bare
           reference passed to a higher-order function MAY run here) *)
        (match Names.classify env.aliases p with
        | Names.Impure reason -> fail e.exp_loc ("references " ^ reason)
        | Names.Wal_append | Names.Wal_sync ->
            fail e.exp_loc "references the Wal journalling API"
        | Names.Send -> fail e.exp_loc "references the Transport send API"
        | Names.Reg_write | Names.Reg_read ->
            fail e.exp_loc
              "references the shared-register API (register access is a \
               scheduler yield point)"
        | Names.Sign | Names.Verify ->
            fail e.exp_loc
              "references the signature oracle (issuance/verification \
               counters are shared state)"
        | Names.Plain -> ());
        check_callee env ~fail e.exp_loc p)
    | Texp_field (_, _, lbl) ->
        (match Types.get_desc lbl.Types.lbl_res with
        | Types.Tconstr (p, _, _)
          when Names.last2 (Names.flatten env.aliases p) = ("Transport", "t")
               && (lbl.Types.lbl_name = "send"
                  || lbl.Types.lbl_name = "poll_all") ->
            fail e.exp_loc
              (Printf.sprintf "references the Transport endpoint's `%s`"
                 lbl.Types.lbl_name)
        | _ -> ());
        super.expr it e
    | _ -> super.expr it e
  in
  let it = { super with expr } in
  it.expr it body

(* Applications of local functions: transitively pure? Applications of
   classified effectful names are caught by the Texp_ident case above
   (the head ident is visited too). *)
and check_callee env ~fail (loc : Location.t) (p : Path.t) : unit =
  match p with
  | Path.Pident id when Funtab.find env.fns id <> None -> (
      match purity_of env id with
      | Pure -> ()
      | Impure (_, reason) ->
          fail loc
            (Printf.sprintf "calls `%s`, which %s" (Ident.name id) reason))
  | _ -> ()

and purity_of env (id : Ident.t) : verdict =
  match List.find_opt (fun (i, _) -> Ident.same i id) env.verdicts with
  | Some (_, v) -> v
  | None ->
      if List.exists (Ident.same id) env.in_progress then Pure
        (* optimistic on recursion: a cycle is pure unless some member
           commits an effect, which its own walk will catch *)
      else (
        env.in_progress <- id :: env.in_progress;
        let verdict = ref Pure in
        (match Funtab.find env.fns id with
        | None -> ()
        | Some fn ->
            walk_body env
              ~fail:(fun loc msg ->
                if !verdict = Pure then verdict := Impure (loc, msg))
              fn.fn_expr);
        env.in_progress <-
          List.filter (fun i -> not (Ident.same i id)) env.in_progress;
        env.verdicts <- (id, !verdict) :: env.verdicts;
        !verdict)

let check ~(file : string) (str : structure) : Lnd_lint_core.Findings.t list
    =
  let aliases, fns = Funtab.collect str in
  let allows = Funtab.collect_allows str in
  let env = { aliases; fns; allows; verdicts = []; in_progress = [] } in
  let found = ref [] in
  List.iter
    (fun (fn : Funtab.fn) ->
      if fn.fn_pure then
        walk_body env
          ~fail:(fun loc msg ->
            if not (Funtab.suppressed allows ~rule:"sem-pure" loc) then begin
              let p = loc.Location.loc_start in
              let f =
                {
                  Lnd_lint_core.Findings.rule = "sem-pure";
                  file;
                  line = p.Lexing.pos_lnum;
                  col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
                  msg =
                    Printf.sprintf
                      "[@lnd.pure] `%s` %s; keep the core effect-free and \
                       let the driver own the effect, or justify with \
                       [@lnd.allow \"sem-pure: ...\"]"
                      fn.fn_name msg;
                }
              in
              if not (List.mem f !found) then found := f :: !found
            end)
          fn.fn_expr)
    fns;
  !found
