(* Analysis 1: "journal, sync, only then speak" as a flow-sensitive
   dominance check. PR 3 established the discipline dynamically (crash
   sweeps observe it); this pass proves the intraprocedural shape: on
   every path, a [Wal.append] must be dominated by a [Wal.sync] (or
   [Wal.snapshot]) barrier before any [Transport] send can expose the
   journalled state.

   Abstract domain: the MAY-set of journal statuses {Clean, Dirty} at
   each program point. [append] maps every status to Dirty, [sync] to
   Clean, and a send while Dirty is the violation. Branches join,
   loops run to fixpoint (the 2-bit lattice converges immediately).

   Interprocedural: each top-level function gets a summary — exit
   statuses and violation flags for a Clean and for a Dirty entry —
   iterated to fixpoint across the file, so [jot]/[psync]-style local
   wrappers (lib/msgpass/regemu.ml) are seen through, and calling a
   function that speaks-before-syncing while the caller's journal is
   dirty is flagged at the call site.

   Soundness caveats (documented in DESIGN.md §4i): closures are
   treated as MAY-execute at their definition site; cross-module calls
   are opaque (assumed effect-free); all appends land in one logical
   journal per path (true here: one WAL per pid). A send under a
   justified [@lnd.allow "sem-ordering: ..."] is invisible to the
   analysis — the justification asserts an external barrier covers
   it. *)

open Typedtree

type st = { clean : bool; dirty : bool }

let bot = { clean = false; dirty = false }
let all_clean = { clean = true; dirty = false }
let all_dirty = { clean = false; dirty = true }
let join a b = { clean = a.clean || b.clean; dirty = a.dirty || b.dirty }
let st_eq a b = a.clean = b.clean && a.dirty = b.dirty

type summary = {
  out_clean : st;
  out_dirty : st;
  viol_clean : bool;  (* may speak over dirt of its own making *)
  viol_dirty : bool;  (* may speak before syncing an inherited dirt *)
}

let sum_bot =
  { out_clean = bot; out_dirty = bot; viol_clean = false; viol_dirty = false }

let sum_eq a b =
  st_eq a.out_clean b.out_clean
  && st_eq a.out_dirty b.out_dirty
  && a.viol_clean = b.viol_clean
  && a.viol_dirty = b.viol_dirty

type env = {
  aliases : Names.aliases;
  fns : Funtab.fn list;
  allows : Funtab.allows;
  summaries : (Ident.t * summary) list ref;
  mutable viol : bool;  (* any violation during this run *)
  report : (Location.t -> string -> unit) option;  (* None = summary run *)
}

let head_kind (aliases : Names.aliases) (e : expression) : Names.kind =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Names.classify aliases p
  | Texp_field (_, _, lbl) -> (
      match Types.get_desc lbl.Types.lbl_res with
      | Types.Tconstr (p, _, _) -> (
          match Names.last2 (Names.flatten aliases p) with
          | "Transport", "t" -> (
              match lbl.Types.lbl_name with
              | "send" -> Names.Send
              | "poll_all" -> Names.Reg_read
              | _ -> Names.Plain)
          | _ -> Names.Plain)
      | _ -> Names.Plain)
  | _ -> Names.Plain

let summary_of (env : env) (id : Ident.t) : summary option =
  match Funtab.find env.fns id with
  | None -> None
  | Some _ -> (
      match
        List.find_opt (fun (i, _) -> Ident.same i id) !(env.summaries)
      with
      | Some (_, s) -> Some s
      | None -> Some sum_bot)

let fire env loc msg =
  env.viol <- true;
  match env.report with Some r -> r loc msg | None -> ()

(* One pass over an expression, threading the status MAY-set in
   (approximate) evaluation order. *)
let rec walk (env : env) (st : st) (e : expression) : st =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ | Texp_unreachable | Texp_instvar _
  | Texp_extension_constructor _ ->
      st
  | Texp_let (_, vbs, body) ->
      let st = List.fold_left (fun s vb -> walk env s vb.vb_expr) st vbs in
      walk env st body
  | Texp_function { cases; _ } ->
      (* a closure defined here MAY run now (conservative) or never *)
      join st (walk_cases env st cases)
  | Texp_apply (head, args) ->
      let st = walk env st head in
      let st =
        List.fold_left
          (fun s (_, a) -> match a with Some a -> walk env s a | None -> s)
          st args
      in
      apply_effect env st head e.exp_loc
  | Texp_match (scrut, cases, _) ->
      let st = walk env st scrut in
      walk_cases env st cases
  | Texp_ifthenelse (c, t, f) -> (
      let st = walk env st c in
      match f with
      | Some f -> join (walk env st t) (walk env st f)
      | None -> join st (walk env st t))
  | Texp_sequence (a, b) -> walk env (walk env st a) b
  | Texp_while (c, body) ->
      let rec fix s i =
        let s' = join s (walk env (walk env s c) body) in
        if st_eq s s' || i > 3 then s' else fix s' (i + 1)
      in
      fix st 0
  | Texp_for (_, _, lo, hi, _, body) ->
      let st = walk env (walk env st lo) hi in
      let rec fix s i =
        let s' = join s (walk env s body) in
        if st_eq s s' || i > 3 then s' else fix s' (i + 1)
      in
      fix st 0
  | Texp_try (body, handlers) ->
      let b = walk env st body in
      let h0 = join st b in
      join b (walk_cases env h0 handlers)
  | Texp_tuple es | Texp_array es ->
      List.fold_left (walk env) st es
  | Texp_construct (_, _, es) -> List.fold_left (walk env) st es
  | Texp_variant (_, e) -> (
      match e with Some e -> walk env st e | None -> st)
  | Texp_record { fields; extended_expression; _ } ->
      let st =
        match extended_expression with Some e -> walk env st e | None -> st
      in
      Array.fold_left
        (fun s (_, def) ->
          match def with
          (* a closure installed in a record field is a seam DEFINITION
             (Transport.t's record-of-functions idiom: the counting
             [send] wrapper in regemu's [endpoint]); its body runs when
             the field is invoked, and the Texp_field classification
             checks it there — walking it here would flag the seam's
             own definition on every dirty path through its builder *)
          | Overridden (_, { exp_desc = Texp_function _; _ }) -> s
          | Overridden (_, e) -> walk env s e
          | Kept _ -> s)
        st fields
  | Texp_field (e, _, _) -> walk env st e
  | Texp_setfield (a, _, _, b) -> walk env (walk env st a) b
  | Texp_assert (e, _) -> walk env st e
  | Texp_lazy e -> join st (walk env st e)
  | Texp_open (_, body) -> walk env st body
  | Texp_letmodule (_, _, _, _, body) -> walk env st body
  | Texp_letexception (_, body) -> walk env st body
  | Texp_letop { let_; ands; body; _ } ->
      let st =
        List.fold_left
          (fun s (b : binding_op) -> walk env s b.bop_exp)
          st (let_ :: ands)
      in
      walk_cases env st [ body ]
  | Texp_send (obj, _) -> walk env st obj
  | Texp_setinstvar (_, _, _, e) -> walk env st e
  | Texp_new _ | Texp_object _ | Texp_override _ | Texp_pack _ -> st

and walk_cases : 'k. env -> st -> 'k case list -> st =
 fun env st cases ->
  match cases with
  | [] -> st
  | _ ->
      List.fold_left
        (fun acc c ->
          let s =
            match c.c_guard with Some g -> walk env st g | None -> st
          in
          join acc (walk env s c.c_rhs))
        bot cases

(* The effect of an application, given the (already walked) head. *)
and apply_effect (env : env) (st : st) (head : expression)
    (loc : Location.t) : st =
  match head_kind env.aliases head with
  | Names.Wal_append -> if st.clean || st.dirty then all_dirty else st
  | Names.Wal_sync -> if st.clean || st.dirty then all_clean else st
  | Names.Send ->
      if st.dirty && not (Funtab.suppressed env.allows ~rule:"sem-ordering" loc)
      then
        fire env loc
          "speak while journal dirty: this send is reachable with a \
           Wal.append not yet covered by Wal.sync — sync before speaking \
           (\"journal, sync, only then speak\"), or justify the external \
           barrier with [@lnd.allow \"sem-ordering: ...\"]";
      st
  | _ -> (
      match head.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> (
          match summary_of env id with
          | None -> st
          | Some s ->
              if
                st.dirty && s.viol_dirty && not s.viol_clean
                && not
                     (Funtab.suppressed env.allows ~rule:"sem-ordering" loc)
              then
                fire env loc
                  (Printf.sprintf
                     "call to `%s` may speak before the caller's pending \
                      journal records are synced; sync first or justify \
                      with [@lnd.allow \"sem-ordering: ...\"]"
                     (Ident.name id));
              (* Barrier rule: a callee that MAY sync on dirty entry and
                 cannot itself speak dirty is a sync wrapper — its
                 non-syncing paths are config-correlated with journalling
                 being off (regemu's [psync] pattern: [match wal with
                 Some w -> Wal.sync w | None -> ()] — on the [None] path
                 nothing was ever appended either). Without this, every
                 [jot; psync; send] sequence is a false positive. The
                 dual false-negative class (a sync conditional on
                 something other than the journal's existence) is
                 documented in DESIGN.md §4i. *)
              let from_clean = if st.clean then s.out_clean else bot in
              let from_dirty =
                if st.dirty then
                  if s.out_dirty.clean && not s.viol_dirty then all_clean
                  else s.out_dirty
                else bot
              in
              let out = join from_clean from_dirty in
              if st_eq out bot then st else out)
      | _ -> st)

(* Analyze one top-level function: peel its [fun] layers (they ARE the
   body here, not a maybe-closure) and walk with the given entry. *)
let run_fn (env : env) (fn : Funtab.fn) ~(entry : st) : st =
  let rec peel st (e : expression) =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.fold_left
          (fun acc c ->
            let s =
              match c.c_guard with Some g -> walk env st g | None -> st
            in
            join acc (peel s c.c_rhs))
          bot cases
    | _ -> walk env st e
  in
  peel entry fn.fn_expr

let summarize ~aliases ~fns ~allows : (Ident.t * summary) list ref =
  let summaries = ref (List.map (fun (f : Funtab.fn) -> (f.fn_id, sum_bot)) fns) in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun (fn : Funtab.fn) ->
        let env = { aliases; fns; allows; summaries; viol = false; report = None } in
        let out_clean = run_fn env fn ~entry:all_clean in
        let viol_clean = env.viol in
        env.viol <- false;
        let out_dirty = run_fn env fn ~entry:all_dirty in
        let viol_dirty = env.viol in
        let s = { out_clean; out_dirty; viol_clean; viol_dirty } in
        let old =
          match
            List.find_opt (fun (i, _) -> Ident.same i fn.fn_id) !summaries
          with
          | Some (_, o) -> o
          | None -> sum_bot
        in
        if not (sum_eq s old) then begin
          changed := true;
          summaries :=
            (fn.fn_id, s)
            :: List.filter
                 (fun (i, _) -> not (Ident.same i fn.fn_id))
                 !summaries
        end)
      fns
  done;
  summaries

(* Entry point: findings for one file's structure. *)
let check ~(file : string) (str : structure) : Lnd_lint_core.Findings.t list =
  let aliases, fns = Funtab.collect str in
  let allows = Funtab.collect_allows str in
  let summaries = summarize ~aliases ~fns ~allows in
  let found = ref [] in
  List.iter
    (fun (fn : Funtab.fn) ->
      let report (loc : Location.t) msg =
        let p = loc.Location.loc_start in
        let f =
          {
            Lnd_lint_core.Findings.rule = "sem-ordering";
            file;
            line = p.Lexing.pos_lnum;
            col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
            msg = Printf.sprintf "%s (in `%s`)" msg fn.fn_name;
          }
        in
        if not (List.mem f !found) then found := f :: !found
      in
      let env =
        { aliases; fns; allows; summaries; viol = false; report = Some report }
      in
      ignore (run_fn env fn ~entry:all_clean))
    fns;
  !found
