(** Algorithm 1 as a pure state machine.

    Programs over abstract register names ({!reg}); no scheduler, Obs or
    transport calls. {!Verifiable} drives them on the simulator,
    [Lnd_parallel] on OCaml 5 domains. The register-access order is
    load-bearing (golden baselines + DPOR counts pin it). *)

open Lnd_support

type reg =
  | Rstar  (** R*: the current value, owner p0 *)
  | R of int  (** witness-set register R_i, owner p_i *)
  | Rjk of int * int  (** R_{j,k}: owner p_j, single reader p_k (k >= 1) *)
  | C of int  (** round counter C_k, owner p_k (k >= 1) *)

(** {2 Decoders/encoders (defensive: ill-typed content reads as the
    initial value)} *)

val dec_value : Univ.t -> Value.t
val dec_vset : Univ.t -> Value.Set.t
val dec_stamped : Univ.t -> Value.Set.t * int
val dec_counter : Univ.t -> int
val enc_value : Value.t -> Univ.t
val enc_vset : Value.Set.t -> Univ.t
val enc_stamped : Value.Set.t -> int -> Univ.t
val enc_counter : int -> Univ.t

(** {2 The protocol programs} *)

val write_prog : Value.t -> (reg, unit) Machine.prog
(** WRITE(v): lines 1-3. The writer's local set of written values is
    driver state. *)

val sign_prog : written:Value.Set.t -> Value.t -> (reg, bool) Machine.prog
(** SIGN(v): lines 4-8; true for SUCCESS, false for FAIL (the FAIL case
    performs no accesses). *)

val read_prog : (reg, Value.t) Machine.prog
(** READ(): lines 9-10. *)

val verify_prog :
  n:int -> q:Quorum.t -> pid:int -> ck:int -> Value.t ->
  (reg, bool * int) Machine.prog
(** VERIFY(v): lines 11-24. Returns (verdict, new round counter); the
    driver owns the reader's persistent [ck]. *)

val help_prog : n:int -> q:Quorum.t -> pid:int -> (reg, unit) Machine.prog
(** Help(): lines 25-36; never returns. Emits [Serving askers]/[Served]
    notes around each round that answers askers. *)
