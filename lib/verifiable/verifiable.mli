(** Algorithm 1 — signature-free SWMR multivalued verifiable register,
    writable by process p0 (the paper's p1) and readable by p1..p(n-1),
    for n >= 3f + 1 (Theorem 14).

    Register layout (one {!regs} per verifiable-register instance):
    {ul
    {- [rstar] — R*, SWMR, owner p0: the current value (init {!Lnd_support.Value.v0});}
    {- [r.(i)] — R_i, SWMR, owner p_i: the set of values p_i witnesses;}
    {- [rjk.(j).(k)] — R_jk, SWSR, owner p_j, reader p_k (k >= 1):
       ⟨witness set, timestamp⟩ mailboxes;}
    {- [c.(k)] — C_k, SWMR, owner p_k (k >= 1): round counter.}}

    Every correct process must run {!help} as a background (daemon)
    fiber; operations are called from fibers of the owning process. All
    register reads decode defensively: ill-typed contents written by a
    Byzantine owner are treated as the register's initial value.

    The [regs] record is transparent so that adversaries
    ([Lnd_byz.Byz_verifiable]) and scenario harnesses can aim at specific
    registers — Byzantine code is ordinary fiber code here. *)

open Lnd_support
open Lnd_runtime

type config = { n : int; f : int }

type regs = {
  cfg : config;
  q : Quorum.t;  (** the thresholds derived from [cfg] (central arithmetic) *)
  rstar : Cell.t;
  r : Cell.t array;
  rjk : Cell.t array array; (** [rjk.(j).(k)]; column k = 0 unused *)
  c : Cell.t array; (** [c.(0)] unused *)
}

module VSet = Value.Set

val alloc_with : Cell.allocator -> config -> regs
(** Allocate the register layout through an arbitrary cell allocator: the
    shared-memory one (the base model), an emulated one (Section 9), or
    a regular-register one (E13). [alloc_with] deliberately does not
    insist on n > 3f: the Section 8 optimality experiments instantiate
    the algorithm outside its safe zone on purpose. *)

val alloc : Lnd_shm.Space.t -> config -> regs
(** [alloc_with (Cell.shm_allocator space)]. *)

val cell_of : regs -> Verifiable_core.reg -> Cell.t
(** Map the pure core's abstract register names onto this layout (used
    by every driver that runs {!Verifiable_core} programs over these
    cells). *)

(** {2 Writer (p0)} *)

type writer = {
  w_regs : regs;
  mutable written : VSet.t; (** the local set r* of lines 2/4 *)
}

val writer : regs -> writer

val write : writer -> Value.t -> unit
(** WRITE(v): lines 1-3. *)

val sign : writer -> Value.t -> bool
(** SIGN(v): lines 4-8. [true] = SUCCESS, [false] = FAIL (v was never
    written by this writer). *)

(** {2 Readers (p1 .. p(n-1))} *)

type reader = { rd_regs : regs; rd_pid : int; mutable ck : int }
(** Keep ONE reader handle per (process, register) for the process's
    lifetime: the round counter [ck] must be monotone across all of that
    reader's operations. *)

val reader : regs -> pid:int -> reader

val read : reader -> Value.t
(** READ(): lines 9-10. *)

val verify : reader -> Value.t -> bool
(** VERIFY(v): lines 11-24. Terminates for any correct reader when
    n > 3f (Theorem 40); outside that bound it may loop, so callers
    running deliberately-broken configurations should bound scheduler
    steps. *)

(** {2 Background helper} *)

val help : regs -> pid:int -> unit
(** Help(): lines 25-36. Runs forever; spawn as a daemon fiber of
    process [pid]. Maintains the witness set R_pid and answers ongoing
    VERIFY operations through the R_pid,k mailboxes. *)
