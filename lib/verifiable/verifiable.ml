(* Algorithm 1 — signature-free SWMR multivalued verifiable register,
   writable by process p0 (the paper's p1) and readable by p1..p(n-1),
   for n >= 3f + 1.

   Register layout (one [regs] per verifiable register instance):
     rstar        R*    SWMR, owner p0, holds the current value (init v0)
     r.(i)        R_i   SWMR, owner p_i, set of values p_i witnesses
     rjk.(j).(k)  R_jk  SWSR, owner p_j, reader p_k (k >= 1),
                        holds ⟨witness set, timestamp⟩
     c.(k)        C_k   SWMR, owner p_k (k >= 1), round counter

   Every correct process must run [help] as a background fiber; operations
   are called from the owner process's operation fiber. All register reads
   decode defensively: ill-typed contents written by a Byzantine owner are
   treated as the register's initial value.

   The protocol itself lives in Verifiable_core as pure state-machine
   programs; this module owns the register layout and drives those
   programs on the deterministic simulator (Lnd_runtime.Drive), emitting
   the Obs spans around them. *)

open Lnd_support
open Lnd_runtime
module Obs = Lnd_obs.Obs

type config = { n : int; f : int }

let[@lnd.pure] check_config { n; f } =
  if f < 0 || n < 2 then invalid_arg "Verifiable: need n >= 2, f >= 0"

(* [alloc] does not insist on n > 3f: the optimality experiments of
   Section 8 deliberately instantiate the algorithm outside its safe zone
   (n <= 3f) to exhibit the impossibility of Theorem 23. *)

type regs = {
  cfg : config;
  q : Quorum.t;
  rstar : Cell.t;
  r : Cell.t array;
  rjk : Cell.t array array; (* rjk.(j).(k); row k = 0 unused *)
  c : Cell.t array; (* c.(0) unused *)
}

module VSet = Value.Set

(* Allocate the register layout through an arbitrary cell allocator: the
   shared-memory one (the base model) or an emulated one (Section 9). *)
let alloc_with (mk : Cell.allocator) (cfg : config) : regs =
  check_config cfg;
  let n = cfg.n in
  (* [make_relaxed]: Section 8 deliberately instantiates n <= 3f. *)
  let q = Quorum.make_relaxed ~n:cfg.n ~f:cfg.f in
  let rstar = mk ~name:"R*" ~owner:0 ~init:(Univ.inj Codecs.value Value.v0) () in
  let r =
    Array.init n (fun i ->
        mk
          ~name:(Printf.sprintf "R_%d" i)
          ~owner:i
          ~init:(Univ.inj Codecs.vset VSet.empty)
          ())
  in
  let rjk =
    Array.init n (fun j ->
        Array.init n (fun k ->
            if k = 0 then r.(0) (* placeholder, never used *)
            else
              mk
                ~name:(Printf.sprintf "R_{%d,%d}" j k)
                ~owner:j ~single_reader:k
                ~init:(Univ.inj Codecs.vset_stamped (VSet.empty, 0))
                ()))
  in
  let c =
    Array.init n (fun k ->
        if k = 0 then rstar (* placeholder, never used *)
        else
          mk
            ~name:(Printf.sprintf "C_%d" k)
            ~owner:k
            ~init:(Univ.inj Codecs.counter 0)
            ())
  in
  { cfg; q; rstar; r; rjk; c }

let alloc space (cfg : config) : regs = alloc_with (Cell.shm_allocator space) cfg

(* Map the core's abstract register names onto this layout. *)
let cell_of (rg : regs) : Verifiable_core.reg -> Cell.t = function
  | Verifiable_core.Rstar -> rg.rstar
  | Verifiable_core.R i -> rg.r.(i)
  | Verifiable_core.Rjk (j, k) -> rg.rjk.(j).(k)
  | Verifiable_core.C k -> rg.c.(k)

(* ---------------- Writer (p0) ---------------- *)

type writer = { w_regs : regs; mutable written : VSet.t (* the local set r* *) }

let writer (rg : regs) : writer = { w_regs = rg; written = VSet.empty }

(* WRITE(v): lines 1-3. *)
let write (w : writer) (v : Value.t) : unit =
  let sp =
    if Obs.enabled () then Obs.span_open ~name:"WRITE" ~arg:v () else 0
  in
  Drive.run ~cell:(cell_of w.w_regs) (Verifiable_core.write_prog v);
  w.written <- VSet.add v w.written;
  if Obs.enabled () then Obs.span_close ~result:"done" ~name:"WRITE" sp

(* SIGN(v): lines 4-8. Returns true for SUCCESS, false for FAIL. *)
let sign (w : writer) (v : Value.t) : bool =
  let sp =
    if Obs.enabled () then Obs.span_open ~name:"SIGN" ~arg:v () else 0
  in
  let res =
    Drive.run ~cell:(cell_of w.w_regs)
      (Verifiable_core.sign_prog ~written:w.written v)
  in
  if Obs.enabled () then
    Obs.span_close ~result:(string_of_bool res) ~name:"SIGN" sp;
  res

(* ---------------- Readers (p1 .. p(n-1)) ---------------- *)

type reader = { rd_regs : regs; rd_pid : int; mutable ck : int }

let reader (rg : regs) ~pid : reader =
  if pid <= 0 || pid >= rg.cfg.n then invalid_arg "Verifiable.reader: bad pid";
  { rd_regs = rg; rd_pid = pid; ck = 0 }

(* READ(): lines 9-10. *)
let read (rd : reader) : Value.t =
  let sp = if Obs.enabled () then Obs.span_open ~name:"READ" () else 0 in
  let v = Drive.run ~cell:(cell_of rd.rd_regs) Verifiable_core.read_prog in
  if Obs.enabled () then Obs.span_close ~result:("v:" ^ v) ~name:"READ" sp;
  v

(* VERIFY(v): lines 11-24. Terminates for any correct reader when n > 3f
   (Theorem 40); outside that bound it may loop, so callers running
   deliberately-broken configurations should bound scheduler steps. *)
let verify (rd : reader) (v : Value.t) : bool =
  let rg = rd.rd_regs in
  let sp =
    if Obs.enabled () then Obs.span_open ~name:"VERIFY" ~arg:v () else 0
  in
  let res, ck =
    Drive.run ~cell:(cell_of rg)
      (Verifiable_core.verify_prog ~n:rg.cfg.n ~q:rg.q ~pid:rd.rd_pid
         ~ck:rd.ck v)
  in
  rd.ck <- ck;
  if Obs.enabled () then
    Obs.span_close ~result:(string_of_bool res) ~name:"VERIFY" sp;
  res

(* ---------------- Help() — lines 25-36 ---------------- *)

(* Run forever as a daemon fiber of process [pid]; assists all ongoing
   VERIFY operations by maintaining the witness set R_pid and answering
   askers through R_{pid,k}. *)
let help (rg : regs) ~pid : unit =
  (* one HELP span per round actually serving askers; the core marks
     those rounds with Serving/Served notes *)
  let sp = ref 0 in
  let on_note : Machine.note -> unit = function
    | Machine.Serving askers ->
        if Obs.enabled () then
          sp :=
            Obs.span_open ~name:"HELP"
              ~arg:(String.concat "," (List.map string_of_int askers))
              ()
    | Machine.Served ->
        if Obs.enabled () then Obs.span_close ~result:"done" ~name:"HELP" !sp
  in
  Drive.run ~on_note ~cell:(cell_of rg)
    (Verifiable_core.help_prog ~n:rg.cfg.n ~q:rg.q ~pid)
