(* Algorithm 1 — signature-free SWMR multivalued verifiable register,
   writable by process p0 (the paper's p1) and readable by p1..p(n-1),
   for n >= 3f + 1.

   Register layout (one [regs] per verifiable register instance):
     rstar        R*    SWMR, owner p0, holds the current value (init v0)
     r.(i)        R_i   SWMR, owner p_i, set of values p_i witnesses
     rjk.(j).(k)  R_jk  SWSR, owner p_j, reader p_k (k >= 1),
                        holds ⟨witness set, timestamp⟩
     c.(k)        C_k   SWMR, owner p_k (k >= 1), round counter

   Every correct process must run [help] as a background fiber; operations
   are called from the owner process's operation fiber. All register reads
   decode defensively: ill-typed contents written by a Byzantine owner are
   treated as the register's initial value. *)

open Lnd_support
open Lnd_runtime
module Obs = Lnd_obs.Obs

type config = { n : int; f : int }

let[@lnd.pure] check_config { n; f } =
  if f < 0 || n < 2 then invalid_arg "Verifiable: need n >= 2, f >= 0"

(* [alloc] does not insist on n > 3f: the optimality experiments of
   Section 8 deliberately instantiate the algorithm outside its safe zone
   (n <= 3f) to exhibit the impossibility of Theorem 23. *)

type regs = {
  cfg : config;
  q : Quorum.t;
  rstar : Cell.t;
  r : Cell.t array;
  rjk : Cell.t array array; (* rjk.(j).(k); row k = 0 unused *)
  c : Cell.t array; (* c.(0) unused *)
}

module VSet = Value.Set

(* Allocate the register layout through an arbitrary cell allocator: the
   shared-memory one (the base model) or an emulated one (Section 9). *)
let alloc_with (mk : Cell.allocator) (cfg : config) : regs =
  check_config cfg;
  let n = cfg.n in
  (* [make_relaxed]: Section 8 deliberately instantiates n <= 3f. *)
  let q = Quorum.make_relaxed ~n:cfg.n ~f:cfg.f in
  let rstar = mk ~name:"R*" ~owner:0 ~init:(Univ.inj Codecs.value Value.v0) () in
  let r =
    Array.init n (fun i ->
        mk
          ~name:(Printf.sprintf "R_%d" i)
          ~owner:i
          ~init:(Univ.inj Codecs.vset VSet.empty)
          ())
  in
  let rjk =
    Array.init n (fun j ->
        Array.init n (fun k ->
            if k = 0 then r.(0) (* placeholder, never used *)
            else
              mk
                ~name:(Printf.sprintf "R_{%d,%d}" j k)
                ~owner:j ~single_reader:k
                ~init:(Univ.inj Codecs.vset_stamped (VSet.empty, 0))
                ()))
  in
  let c =
    Array.init n (fun k ->
        if k = 0 then rstar (* placeholder, never used *)
        else
          mk
            ~name:(Printf.sprintf "C_%d" k)
            ~owner:k
            ~init:(Univ.inj Codecs.counter 0)
            ())
  in
  { cfg; q; rstar; r; rjk; c }

let alloc space (cfg : config) : regs = alloc_with (Cell.shm_allocator space) cfg

(* Defensive decoders. *)
let read_value reg = Univ.prj_default Codecs.value ~default:Value.v0 (Cell.read reg)
let read_vset reg = Univ.prj_default Codecs.vset ~default:VSet.empty (Cell.read reg)

let read_stamped reg =
  Univ.prj_default Codecs.vset_stamped ~default:(VSet.empty, 0) (Cell.read reg)

let read_counter reg = Univ.prj_default Codecs.counter ~default:0 (Cell.read reg)

(* ---------------- Writer (p0) ---------------- *)

type writer = { w_regs : regs; mutable written : VSet.t (* the local set r* *) }

let writer (rg : regs) : writer = { w_regs = rg; written = VSet.empty }

(* WRITE(v): lines 1-3. *)
let write (w : writer) (v : Value.t) : unit =
  let sp =
    if Obs.enabled () then Obs.span_open ~name:"WRITE" ~arg:v () else 0
  in
  Cell.write w.w_regs.rstar (Univ.inj Codecs.value v);
  w.written <- VSet.add v w.written;
  if Obs.enabled () then Obs.span_close ~result:"done" ~name:"WRITE" sp

(* SIGN(v): lines 4-8. Returns true for SUCCESS, false for FAIL. *)
let sign (w : writer) (v : Value.t) : bool =
  let sp =
    if Obs.enabled () then Obs.span_open ~name:"SIGN" ~arg:v () else 0
  in
  let res =
    if VSet.mem v w.written then begin
      let r1 = read_vset w.w_regs.r.(0) in
      Cell.write w.w_regs.r.(0) (Univ.inj Codecs.vset (VSet.add v r1));
      true
    end
    else false
  in
  if Obs.enabled () then
    Obs.span_close ~result:(string_of_bool res) ~name:"SIGN" sp;
  res

(* ---------------- Readers (p1 .. p(n-1)) ---------------- *)

type reader = { rd_regs : regs; rd_pid : int; mutable ck : int }

let reader (rg : regs) ~pid : reader =
  if pid <= 0 || pid >= rg.cfg.n then invalid_arg "Verifiable.reader: bad pid";
  { rd_regs = rg; rd_pid = pid; ck = 0 }

(* READ(): lines 9-10. *)
let read (rd : reader) : Value.t =
  let sp = if Obs.enabled () then Obs.span_open ~name:"READ" () else 0 in
  let v = read_value rd.rd_regs.rstar in
  if Obs.enabled () then Obs.span_close ~result:("v:" ^ v) ~name:"READ" sp;
  v

module PidSet = Set.Make (Int)

(* VERIFY(v): lines 11-24. Terminates for any correct reader when n > 3f
   (Theorem 40); outside that bound it may loop, so callers running
   deliberately-broken configurations should bound scheduler steps. *)
let verify (rd : reader) (v : Value.t) : bool =
  let n = rd.rd_regs.cfg.n in
  let q = rd.rd_regs.q in
  let sp =
    if Obs.enabled () then Obs.span_open ~name:"VERIFY" ~arg:v () else 0
  in
  let set0 = ref PidSet.empty and set1 = ref PidSet.empty in
  let result = ref None in
  while !result = None do
    (* line 13: announce a new round *)
    rd.ck <- rd.ck + 1;
    Cell.write rd.rd_regs.c.(rd.rd_pid) (Univ.inj Codecs.counter rd.ck);
    (* lines 14-17: poll processes outside set0 ∪ set1 until one has
       replied for this round (c_j >= C_k) *)
    let reply = ref None in
    while !reply = None do
      let polled_any = ref false in
      for j = 0 to n - 1 do
        if
          !reply = None
          && (not (PidSet.mem j !set0))
          && not (PidSet.mem j !set1)
        then begin
          polled_any := true;
          let rj, cj = read_stamped rd.rd_regs.rjk.(j).(rd.rd_pid) in
          if cj >= rd.ck then reply := Some (j, rj)
        end
      done;
      ignore !polled_any;
      (* an unsuccessful poll pass is a voluntary scheduling point (and
         keeps the fiber live on deliberately broken configurations
         where the poll set empties — unreachable when n > 3f,
         Lemma 35) *)
      if !reply = None then Sched.yield ()
    done;
    (match !reply with
    | None -> assert false
    | Some (j, rj) ->
        if VSet.mem v rj then begin
          (* lines 18-20 *)
          set1 := PidSet.add j !set1;
          set0 := PidSet.empty
        end
        else
          (* lines 21-22 *)
          set0 := PidSet.add j !set0);
    (* lines 23-24 *)
    if Quorum.has_availability q (PidSet.cardinal !set1) then
      result := Some true
    else if Quorum.exceeds_faults q (PidSet.cardinal !set0) then
      result := Some false
  done;
  let res = Option.get !result in
  if Obs.enabled () then
    Obs.span_close ~result:(string_of_bool res) ~name:"VERIFY" sp;
  res

(* ---------------- Help() — lines 25-36 ---------------- *)

(* Run forever as a daemon fiber of process [pid]; assists all ongoing
   VERIFY operations by maintaining the witness set R_pid and answering
   askers through R_{pid,k}. *)
let help (rg : regs) ~pid : unit =
  let n = rg.cfg.n in
  let prev_c = Array.make n 0 in
  while true do
    (* line 27: read every reader's round counter *)
    let cks = Array.make n 0 in
    for k = 1 to n - 1 do
      cks.(k) <- read_counter rg.c.(k)
    done;
    (* line 28 *)
    let askers = ref [] in
    for k = n - 1 downto 1 do
      if cks.(k) > prev_c.(k) then askers := k :: !askers
    done;
    if !askers <> [] then begin
      (* one HELP span per round actually serving askers *)
      let sp =
        if Obs.enabled () then
          Obs.span_open ~name:"HELP"
            ~arg:(String.concat "," (List.map string_of_int !askers))
            ()
        else 0
      in
      (* line 30: read every witness set *)
      let rsets = Array.init n (fun i -> read_vset rg.r.(i)) in
      (* lines 31-32: become a witness of every value v that the writer
         signed (v ∈ R_0) or that already has f+1 witnesses *)
      let mine = ref (read_vset rg.r.(pid)) in
      let candidates =
        Array.fold_left (fun acc s -> VSet.union acc s) VSet.empty rsets
      in
      let adopted =
        VSet.filter
          (fun v ->
            VSet.mem v rsets.(0)
            || Quorum.has_one_correct rg.q
                 (Array.fold_left
                    (fun cnt s -> if VSet.mem v s then cnt + 1 else cnt)
                    0 rsets))
          candidates
      in
      let updated = VSet.union !mine adopted in
      if not (VSet.equal updated !mine) then begin
        Cell.write rg.r.(pid) (Univ.inj Codecs.vset updated);
        mine := updated
      end;
      (* line 33 *)
      let rj = read_vset rg.r.(pid) in
      (* lines 34-36: answer each asker for its current round *)
      List.iter
        (fun k ->
          Cell.write rg.rjk.(pid).(k)
            (Univ.inj Codecs.vset_stamped (rj, cks.(k)));
          prev_c.(k) <- cks.(k))
        !askers;
      if Obs.enabled () then Obs.span_close ~result:"done" ~name:"HELP" sp
    end
    else Sched.yield ()
  done
