(* Ablation: the Section 5.1 strawman VERIFY.

   The paper motivates Algorithm 1's round structure by showing why the
   obvious approach fails: "q can ask all processes whether they are now
   willing to be witnesses of v, and then wait for 2f+1 processes to
   reply: if at least 2f+1 reply Yes then TRUE; if strictly less than f+1
   reply Yes then FALSE" — and a reader caught between f and 2f+1 Yes
   votes is stuck, because answering either way can break the relay
   property (Observation 13).

   [naive_verify] implements that strawman directly over the witness
   registers: collect the current witness sets of the first 2f+1
   processes (one snapshot, no rounds, no set_1/set_0 bookkeeping) and
   return yes-count >= f+1. It terminates always — but the test suite
   demonstrates a schedule where it returns TRUE and a later
   [naive_verify] returns FALSE for the same value: the relay violation
   Algorithm 1 exists to prevent. *)

open Lnd_support
open Lnd_runtime

let read_vset reg =
  Univ.prj_default Codecs.vset ~default:Value.Set.empty (Cell.read reg)

(* One-shot strawman verify, runnable by any process. *)
let naive_verify (rg : Verifiable.regs) (v : Value.t) : bool =
  let q = rg.Verifiable.q in
  let replies = min (Quorum.n q) (Quorum.byz_quorum q) in
  let yes = ref 0 in
  for j = 0 to replies - 1 do
    if Value.Set.mem v (read_vset rg.r.(j)) then incr yes
  done;
  Quorum.has_one_correct q !yes

(* A one-shot naive verify that polls every register (a seemingly
   stronger strawman — same flaw). *)
let naive_verify_all (rg : Verifiable.regs) (v : Value.t) : bool =
  let q = rg.Verifiable.q in
  let yes = ref 0 in
  for j = 0 to Quorum.n q - 1 do
    if Value.Set.mem v (read_vset rg.r.(j)) then incr yes
  done;
  Quorum.has_one_correct q !yes
