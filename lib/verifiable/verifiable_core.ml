(* Algorithm 1 as a pure state machine (see Lnd_support.Machine).

   Every register access of WRITE/SIGN/READ/VERIFY and the Help daemon,
   in exactly the order of the paper (and of the pre-refactor inlined
   implementation), expressed as resumable programs over abstract
   register names — no scheduler, Obs or transport calls.
   Verifiable.write/sign/read/verify/help drive these programs on the
   simulator (Lnd_runtime.Drive); the domains backend (Lnd_parallel)
   drives the same programs with real preemption. The access order is
   load-bearing: the differential suite's golden baselines and the DPOR
   exhaustion counts both pin it. *)

open Lnd_support
open Machine

type reg =
  | Rstar  (** R*: the current value, owner p0 *)
  | R of int  (** witness-set register R_i, owner p_i *)
  | Rjk of int * int  (** R_{j,k}: owner p_j, single reader p_k (k >= 1) *)
  | C of int  (** round counter C_k, owner p_k (k >= 1) *)

module VSet = Value.Set

(* Defensive decoders: ill-typed content reads as the initial value. *)
let[@lnd.pure] dec_value u = Univ.prj_default Codecs.value ~default:Value.v0 u
let[@lnd.pure] dec_vset u = Univ.prj_default Codecs.vset ~default:VSet.empty u

let[@lnd.pure] dec_stamped u =
  Univ.prj_default Codecs.vset_stamped ~default:(VSet.empty, 0) u

let[@lnd.pure] dec_counter u = Univ.prj_default Codecs.counter ~default:0 u
let[@lnd.pure] enc_value v = Univ.inj Codecs.value v
let[@lnd.pure] enc_vset s = Univ.inj Codecs.vset s
let[@lnd.pure] enc_stamped s c = Univ.inj Codecs.vset_stamped (s, c)
let[@lnd.pure] enc_counter c = Univ.inj Codecs.counter c

(* Read registers [mk 0 .. mk (n-1)] in ascending order. *)
let[@lnd.pure] read_all ~n (mk : int -> reg) (dec : Univ.t -> 'b) :
    (reg, 'b array) prog =
  let rec go i acc =
    if i >= n then ret (Array.of_list (List.rev acc))
    else
      let* u = read (mk i) in
      go (i + 1) (dec u :: acc)
  in
  go 0 []

(* ---------------- Writer (p0) ---------------- *)

(* WRITE(v): lines 1-3. The writer's local set r* of written values is
   driver state (it lives in no shared register). *)
let[@lnd.pure] write_prog (v : Value.t) : (reg, unit) prog =
  write Rstar (enc_value v)

(* SIGN(v): lines 4-8. [written] is the writer's local r* set; returns
   true for SUCCESS, false for FAIL (no accesses in the FAIL case). *)
let[@lnd.pure] sign_prog ~(written : VSet.t) (v : Value.t) : (reg, bool) prog =
  if VSet.mem v written then
    let* r1_u = read (R 0) in
    let r1 = dec_vset r1_u in
    let* () = write (R 0) (enc_vset (VSet.add v r1)) in
    ret true
  else ret false

(* ---------------- Readers (p1 .. p(n-1)) ---------------- *)

(* READ(): lines 9-10. *)
let[@lnd.pure] read_prog : (reg, Value.t) prog =
  let* u = read Rstar in
  ret (dec_value u)

module PidSet = Set.Make (Int)

(* VERIFY(v): lines 11-24. Terminates for any correct reader when
   n > 3f (Theorem 40); outside that bound it may loop, so drivers
   running deliberately-broken configurations should bound steps. The
   reader's persistent round counter [ck] is threaded through. *)
let[@lnd.pure] verify_prog ~n ~(q : Quorum.t) ~pid ~ck (v : Value.t) :
    (reg, bool * int) prog =
  let rec round set0 set1 ck =
    (* line 13: announce a new round *)
    let ck = ck + 1 in
    let* () = write (C pid) (enc_counter ck) in
    (* lines 14-17: poll processes outside set0 ∪ set1 until one has
       replied for this round (c_j >= C_k); an unsuccessful poll pass is
       a voluntary scheduling point *)
    let rec poll j =
      if j >= n then
        let* () = yield in
        poll 0
      else if PidSet.mem j set0 || PidSet.mem j set1 then poll (j + 1)
      else
        let* u = read (Rjk (j, pid)) in
        let rj, cj = dec_stamped u in
        if cj >= ck then ret (j, rj) else poll (j + 1)
    in
    let* j, rj = poll 0 in
    let set0, set1 =
      if VSet.mem v rj then
        (* lines 18-20 *)
        (PidSet.empty, PidSet.add j set1)
      else
        (* lines 21-22 *)
        (PidSet.add j set0, set1)
    in
    (* lines 23-24 *)
    if Quorum.has_availability q (PidSet.cardinal set1) then ret (true, ck)
    else if Quorum.exceeds_faults q (PidSet.cardinal set0) then ret (false, ck)
    else round set0 set1 ck
  in
  round PidSet.empty PidSet.empty ck

(* ---------------- Help() — lines 25-36 ---------------- *)

module PidMap = Map.Make (Int)

(* Runs forever (the program never returns); assists all ongoing VERIFY
   operations by maintaining the witness set R_pid and answering askers
   through R_{pid,k}. [prev] is threaded functionally. *)
let[@lnd.pure] help_prog ~n ~(q : Quorum.t) ~pid : (reg, unit) prog =
  let rec round (prev : int PidMap.t) =
    let prev_of k = match PidMap.find_opt k prev with Some c -> c | None -> 0 in
    (* line 27: read every reader's round counter *)
    let rec counters k acc =
      if k >= n then ret (List.rev acc)
      else
        let* u = read (C k) in
        counters (k + 1) ((k, dec_counter u) :: acc)
    in
    let* cks = counters 1 [] in
    (* line 28 *)
    let askers = List.filter (fun (k, ck) -> ck > prev_of k) cks in
    if askers <> [] then
      let* () = note (Serving (List.map fst askers)) in
      (* line 30: read every witness set *)
      let* rsets = read_all ~n (fun i -> R i) dec_vset in
      (* lines 31-32: become a witness of every value v that the writer
         signed (v ∈ R_0) or that already has f+1 witnesses *)
      let* mine_u = read (R pid) in
      let mine = dec_vset mine_u in
      let candidates =
        Array.fold_left (fun acc s -> VSet.union acc s) VSet.empty rsets
      in
      let adopted =
        VSet.filter
          (fun v ->
            VSet.mem v rsets.(0)
            || Quorum.has_one_correct q
                 (Array.fold_left
                    (fun cnt s -> if VSet.mem v s then cnt + 1 else cnt)
                    0 rsets))
          candidates
      in
      let updated = VSet.union mine adopted in
      let* () =
        if not (VSet.equal updated mine) then write (R pid) (enc_vset updated)
        else ret ()
      in
      (* line 33 *)
      let* rj_u = read (R pid) in
      let rj = dec_vset rj_u in
      (* lines 34-36: answer each asker for its current round *)
      let rec answer = function
        | [] -> ret ()
        | (k, ck) :: rest ->
            let* () = write (Rjk (pid, k)) (enc_stamped rj ck) in
            answer rest
      in
      let* () = answer askers in
      let prev =
        List.fold_left (fun m (k, ck) -> PidMap.add k ck m) prev askers
      in
      let* () = note Served in
      round prev
    else
      let* () = yield in
      round prev
  in
  round PidMap.empty
