(* Algorithm 2 — signature-free SWMR sticky register, writable by p0 (the
   paper's p1) and readable by p1..p(n-1), for n >= 3f + 1.

   Register layout:
     e.(i)        E_i   SWMR, owner p_i: "echo" register  (init ⊥)
     r.(i)        R_i   SWMR, owner p_i: "witness" register (init ⊥)
     rjk.(j).(k)  R_jk  SWSR, owner p_j, reader p_k (k >= 1):
                        ⟨witnessed value or ⊥, timestamp⟩
     c.(k)        C_k   SWMR, owner p_k (k >= 1): round counter

   Once any correct process reads v ≠ ⊥, every later read returns v, even
   if the writer is Byzantine (Observation 18). Correct processes must run
   [help] in the background. *)

open Lnd_support
open Lnd_runtime
module Obs = Lnd_obs.Obs

type config = { n : int; f : int }

let[@lnd.pure] check_config { n; f } =
  if f < 0 || n < 2 then invalid_arg "Sticky: need n >= 2, f >= 0"

type regs = {
  cfg : config;
  q : Quorum.t;
  e : Cell.t array;
  r : Cell.t array;
  rjk : Cell.t array array; (* rjk.(j).(k); column k = 0 unused *)
  c : Cell.t array; (* c.(0) unused *)
}

(* Allocate the register layout through an arbitrary cell allocator: the
   shared-memory one (the base model) or an emulated one (Section 9).
   [Quorum.make_relaxed]: the Section 8 experiments instantiate the
   algorithm outside its safe zone (n <= 3f) on purpose. *)
let alloc_with (mk : Cell.allocator) (cfg : config) : regs =
  check_config cfg;
  let n = cfg.n in
  let q = Quorum.make_relaxed ~n:cfg.n ~f:cfg.f in
  let vopt_init = Univ.inj Codecs.value_opt None in
  let e =
    Array.init n (fun i ->
        mk ~name:(Printf.sprintf "E_%d" i) ~owner:i ~init:vopt_init ())
  in
  let r =
    Array.init n (fun i ->
        mk ~name:(Printf.sprintf "R_%d" i) ~owner:i ~init:vopt_init ())
  in
  let rjk =
    Array.init n (fun j ->
        Array.init n (fun k ->
            if k = 0 then e.(0) (* placeholder, never used *)
            else
              mk
                ~name:(Printf.sprintf "R_{%d,%d}" j k)
                ~owner:j ~single_reader:k
                ~init:(Univ.inj Codecs.vopt_stamped (None, 0))
                ()))
  in
  let c =
    Array.init n (fun k ->
        if k = 0 then e.(0) (* placeholder, never used *)
        else
          mk
            ~name:(Printf.sprintf "C_%d" k)
            ~owner:k
            ~init:(Univ.inj Codecs.counter 0)
            ())
  in
  { cfg; q; e; r; rjk; c }

let alloc space (cfg : config) : regs = alloc_with (Cell.shm_allocator space) cfg

(* Defensive decoders: ill-typed content reads as the initial value. *)
let read_vopt reg = Univ.prj_default Codecs.value_opt ~default:None (Cell.read reg)

let read_stamped reg =
  Univ.prj_default Codecs.vopt_stamped ~default:(None, 0) (Cell.read reg)

let read_counter reg = Univ.prj_default Codecs.counter ~default:0 (Cell.read reg)

(* Count, over an array of optional values, how many equal [v]. *)
let[@lnd.pure] count_eq (arr : Value.t option array) (v : Value.t) : int =
  Array.fold_left
    (fun acc u -> match u with Some x when Value.equal x v -> acc + 1 | _ -> acc)
    0 arr

(* The (unique, per Lemma 98-style counting) value reaching [threshold]
   copies in [arr], if any. *)
let[@lnd.pure] value_with_quorum (arr : Value.t option array) ~threshold : Value.t option =
  let found = ref None in
  Array.iter
    (fun u ->
      match (u, !found) with
      | Some v, None -> if count_eq arr v >= threshold then found := Some v
      | _ -> ())
    arr;
  !found

(* ---------------- Writer (p0): WRITE(v), lines 1-6 ---------------- *)

type writer = { w_regs : regs }

let writer (rg : regs) : writer = { w_regs = rg }

let write (w : writer) (v : Value.t) : unit =
  let rg = w.w_regs in
  let n = rg.cfg.n in
  let sp =
    if Obs.enabled () then Obs.span_open ~name:"WRITE" ~arg:v () else 0
  in
  (* line 1: a second write is a no-op returning done *)
  if read_vopt rg.e.(0) = None then begin
    (* line 2 *)
    Cell.write rg.e.(0) (Univ.inj Codecs.value_opt (Some v));
    (* lines 3-5: wait until n-f processes witness v; yield between
       poll passes — the wait is a voluntary scheduling point *)
    let witnessed = ref false in
    while not !witnessed do
      let rs = Array.init n (fun i -> read_vopt rg.r.(i)) in
      if Quorum.has_availability rg.q (count_eq rs v) then witnessed := true
      else Sched.yield ()
    done
  end;
  if Obs.enabled () then Obs.span_close ~result:"done" ~name:"WRITE" sp

(* ---------------- Readers: READ(), lines 7-22 ---------------- *)

type reader = { rd_regs : regs; rd_pid : int; mutable ck : int }

let reader (rg : regs) ~pid : reader =
  if pid <= 0 || pid >= rg.cfg.n then invalid_arg "Sticky.reader: bad pid";
  { rd_regs = rg; rd_pid = pid; ck = 0 }

module PidSet = Set.Make (Int)
module PidMap = Map.Make (Int)

let read (rd : reader) : Value.t option =
  let n = rd.rd_regs.cfg.n in
  let q = rd.rd_regs.q in
  let sp = if Obs.enabled () then Obs.span_open ~name:"READ" () else 0 in
  let set_bot = ref PidSet.empty in
  let set_val = ref PidMap.empty (* pid -> witnessed value *) in
  let result = ref None in
  let finished = ref false in
  while not !finished do
    (* line 9 *)
    rd.ck <- rd.ck + 1;
    Cell.write rd.rd_regs.c.(rd.rd_pid) (Univ.inj Codecs.counter rd.ck);
    (* line 10: S = processes not yet classified *)
    let in_s j = (not (PidSet.mem j !set_bot)) && not (PidMap.mem j !set_val) in
    (* lines 11-14: poll S until someone answered this round *)
    let reply = ref None in
    while !reply = None do
      let polled_any = ref false in
      for j = 0 to n - 1 do
        if !reply = None && in_s j then begin
          polled_any := true;
          let uj, cj = read_stamped rd.rd_regs.rjk.(j).(rd.rd_pid) in
          if cj >= rd.ck then reply := Some (j, uj)
        end
      done;
      ignore !polled_any;
      (* an unsuccessful poll pass is a voluntary scheduling point (and
         keeps the fiber live on deliberately broken configurations
         where S empties — unreachable when n > 3f, Lemma 105) *)
      if !reply = None then Sched.yield ()
    done;
    (match !reply with
    | None -> assert false
    | Some (j, uj) -> (
        match uj with
        | Some v ->
            (* lines 15-17 *)
            set_val := PidMap.add j v !set_val;
            set_bot := PidSet.empty
        | None ->
            (* lines 18-19 *)
            set_bot := PidSet.add j !set_bot));
    (* line 20: some value witnessed by >= n-f processes in set_val? *)
    let counts =
      PidMap.fold
        (fun _ v acc ->
          let cur = try List.assoc v acc with Not_found -> 0 in
          (v, cur + 1) :: List.remove_assoc v acc)
        !set_val []
    in
    (match
       List.find_opt (fun (_, cnt) -> Quorum.has_availability q cnt) counts
     with
    | Some (v, _) ->
        result := Some v;
        finished := true
    | None ->
        (* line 22 *)
        if Quorum.exceeds_faults q (PidSet.cardinal !set_bot) then begin
          result := None;
          finished := true
        end)
  done;
  if Obs.enabled () then
    Obs.span_close
      ~result:(match !result with None -> "⊥" | Some v -> "v:" ^ v)
      ~name:"READ" sp;
  !result

(* ---------------- Help() — lines 23-40 ---------------- *)

let help (rg : regs) ~pid : unit =
  let n = rg.cfg.n in
  let prev_c = Array.make n 0 in
  while true do
    (* lines 25-27: echo the writer's value, once *)
    if read_vopt rg.e.(pid) = None then begin
      let e1 = read_vopt rg.e.(0) in
      match e1 with
      | Some _ -> Cell.write rg.e.(pid) (Univ.inj Codecs.value_opt e1)
      | None -> ()
    end;
    (* lines 28-30: become a witness of a value echoed by n-f processes *)
    if read_vopt rg.r.(pid) = None then begin
      let es = Array.init n (fun i -> read_vopt rg.e.(i)) in
      match value_with_quorum es ~threshold:(Quorum.availability rg.q) with
      | Some v -> Cell.write rg.r.(pid) (Univ.inj Codecs.value_opt (Some v))
      | None -> ()
    end;
    (* lines 31-32 *)
    let cks = Array.make n 0 in
    for k = 1 to n - 1 do
      cks.(k) <- read_counter rg.c.(k)
    done;
    let askers = ref [] in
    for k = n - 1 downto 1 do
      if cks.(k) > prev_c.(k) then askers := k :: !askers
    done;
    if !askers <> [] then begin
      (* one HELP span per round actually serving askers, so the trace
         shows helping work without one span per idle poll *)
      let sp =
        if Obs.enabled () then
          Obs.span_open ~name:"HELP"
            ~arg:
              (String.concat "," (List.map string_of_int !askers))
            ()
        else 0
      in
      (* lines 34-36: become a witness of a value with f+1 witnesses *)
      if read_vopt rg.r.(pid) = None then begin
        let rs = Array.init n (fun i -> read_vopt rg.r.(i)) in
        match value_with_quorum rs ~threshold:(Quorum.one_correct rg.q) with
        | Some v -> Cell.write rg.r.(pid) (Univ.inj Codecs.value_opt (Some v))
        | None -> ()
      end;
      (* line 37 *)
      let rj = read_vopt rg.r.(pid) in
      (* lines 38-40 *)
      List.iter
        (fun k ->
          Cell.write rg.rjk.(pid).(k)
            (Univ.inj Codecs.vopt_stamped (rj, cks.(k)));
          prev_c.(k) <- cks.(k))
        !askers;
      if Obs.enabled () then Obs.span_close ~result:"done" ~name:"HELP" sp
    end
    else Sched.yield ()
  done
