(* Algorithm 2 — signature-free SWMR sticky register, writable by p0 (the
   paper's p1) and readable by p1..p(n-1), for n >= 3f + 1.

   Register layout:
     e.(i)        E_i   SWMR, owner p_i: "echo" register  (init ⊥)
     r.(i)        R_i   SWMR, owner p_i: "witness" register (init ⊥)
     rjk.(j).(k)  R_jk  SWSR, owner p_j, reader p_k (k >= 1):
                        ⟨witnessed value or ⊥, timestamp⟩
     c.(k)        C_k   SWMR, owner p_k (k >= 1): round counter

   Once any correct process reads v ≠ ⊥, every later read returns v, even
   if the writer is Byzantine (Observation 18). Correct processes must run
   [help] in the background.

   The protocol itself lives in Sticky_core as pure state-machine
   programs; this module owns the register layout and drives those
   programs on the deterministic simulator (Lnd_runtime.Drive), emitting
   the Obs spans around them. *)

open Lnd_support
open Lnd_runtime
module Obs = Lnd_obs.Obs

type config = { n : int; f : int }

let[@lnd.pure] check_config { n; f } =
  if f < 0 || n < 2 then invalid_arg "Sticky: need n >= 2, f >= 0"

type regs = {
  cfg : config;
  q : Quorum.t;
  e : Cell.t array;
  r : Cell.t array;
  rjk : Cell.t array array; (* rjk.(j).(k); column k = 0 unused *)
  c : Cell.t array; (* c.(0) unused *)
}

(* Allocate the register layout through an arbitrary cell allocator: the
   shared-memory one (the base model) or an emulated one (Section 9).
   [Quorum.make_relaxed]: the Section 8 experiments instantiate the
   algorithm outside its safe zone (n <= 3f) on purpose. *)
let alloc_with (mk : Cell.allocator) (cfg : config) : regs =
  check_config cfg;
  let n = cfg.n in
  let q = Quorum.make_relaxed ~n:cfg.n ~f:cfg.f in
  let vopt_init = Univ.inj Codecs.value_opt None in
  let e =
    Array.init n (fun i ->
        mk ~name:(Printf.sprintf "E_%d" i) ~owner:i ~init:vopt_init ())
  in
  let r =
    Array.init n (fun i ->
        mk ~name:(Printf.sprintf "R_%d" i) ~owner:i ~init:vopt_init ())
  in
  let rjk =
    Array.init n (fun j ->
        Array.init n (fun k ->
            if k = 0 then e.(0) (* placeholder, never used *)
            else
              mk
                ~name:(Printf.sprintf "R_{%d,%d}" j k)
                ~owner:j ~single_reader:k
                ~init:(Univ.inj Codecs.vopt_stamped (None, 0))
                ()))
  in
  let c =
    Array.init n (fun k ->
        if k = 0 then e.(0) (* placeholder, never used *)
        else
          mk
            ~name:(Printf.sprintf "C_%d" k)
            ~owner:k
            ~init:(Univ.inj Codecs.counter 0)
            ())
  in
  { cfg; q; e; r; rjk; c }

let alloc space (cfg : config) : regs = alloc_with (Cell.shm_allocator space) cfg

let value_with_quorum = Sticky_core.value_with_quorum

(* Map the core's abstract register names onto this layout (shared by
   every sim-side driver of Sticky_core programs, including the scripted
   adversaries in Lnd_byz). *)
let cell_of (rg : regs) : Sticky_core.reg -> Cell.t = function
  | Sticky_core.E i -> rg.e.(i)
  | Sticky_core.R i -> rg.r.(i)
  | Sticky_core.Rjk (j, k) -> rg.rjk.(j).(k)
  | Sticky_core.C k -> rg.c.(k)

(* ---------------- Writer (p0): WRITE(v), lines 1-6 ---------------- *)

type writer = { w_regs : regs }

let writer (rg : regs) : writer = { w_regs = rg }

let write (w : writer) (v : Value.t) : unit =
  let rg = w.w_regs in
  let sp =
    if Obs.enabled () then Obs.span_open ~name:"WRITE" ~arg:v () else 0
  in
  Drive.run ~cell:(cell_of rg) (Sticky_core.write_prog ~n:rg.cfg.n ~q:rg.q v);
  if Obs.enabled () then Obs.span_close ~result:"done" ~name:"WRITE" sp

(* ---------------- Readers: READ(), lines 7-22 ---------------- *)

type reader = { rd_regs : regs; rd_pid : int; mutable ck : int }

let reader (rg : regs) ~pid : reader =
  if pid <= 0 || pid >= rg.cfg.n then invalid_arg "Sticky.reader: bad pid";
  { rd_regs = rg; rd_pid = pid; ck = 0 }

let read (rd : reader) : Value.t option =
  let rg = rd.rd_regs in
  let sp = if Obs.enabled () then Obs.span_open ~name:"READ" () else 0 in
  let result, ck =
    Drive.run ~cell:(cell_of rg)
      (Sticky_core.read_prog ~n:rg.cfg.n ~q:rg.q ~pid:rd.rd_pid ~ck:rd.ck)
  in
  rd.ck <- ck;
  if Obs.enabled () then
    Obs.span_close
      ~result:(match result with None -> "⊥" | Some v -> "v:" ^ v)
      ~name:"READ" sp;
  result

(* ---------------- Help() — lines 23-40 ---------------- *)

let help (rg : regs) ~pid : unit =
  (* one HELP span per round actually serving askers, so the trace shows
     helping work without one span per idle poll; the core marks those
     rounds with Serving/Served notes *)
  let sp = ref 0 in
  let on_note : Machine.note -> unit = function
    | Machine.Serving askers ->
        if Obs.enabled () then
          sp :=
            Obs.span_open ~name:"HELP"
              ~arg:(String.concat "," (List.map string_of_int askers))
              ()
    | Machine.Served ->
        if Obs.enabled () then Obs.span_close ~result:"done" ~name:"HELP" !sp
  in
  Drive.run ~on_note ~cell:(cell_of rg)
    (Sticky_core.help_prog ~n:rg.cfg.n ~q:rg.q ~pid)
