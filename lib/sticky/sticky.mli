(** Algorithm 2 — signature-free SWMR sticky register, writable by p0
    (the paper's p1) and readable by p1..p(n-1), for n >= 3f + 1
    (Theorem 19).

    Register layout:
    {ul
    {- [e.(i)] — E_i, SWMR, owner p_i: "echo" register (init ⊥);}
    {- [r.(i)] — R_i, SWMR, owner p_i: "witness" register (init ⊥);}
    {- [rjk.(j).(k)] — R_jk, SWSR, owner p_j, reader p_k (k >= 1):
       ⟨witnessed value or ⊥, timestamp⟩ mailboxes;}
    {- [c.(k)] — C_k, SWMR, owner p_k (k >= 1): round counter.}}

    Once any correct process reads v ≠ ⊥, every later read returns v,
    even if the writer is Byzantine (Observation 18). Correct processes
    must run {!help} in the background. The [regs] record is transparent
    for the same reason as in {!Lnd_verifiable.Verifiable}. *)

open Lnd_support
open Lnd_runtime

type config = { n : int; f : int }

type regs = {
  cfg : config;
  q : Quorum.t;  (** the thresholds derived from [cfg] (central arithmetic) *)
  e : Cell.t array;
  r : Cell.t array;
  rjk : Cell.t array array; (** [rjk.(j).(k)]; column k = 0 unused *)
  c : Cell.t array; (** [c.(0)] unused *)
}

val alloc_with : Cell.allocator -> config -> regs
(** Allocate through an arbitrary cell allocator (shared memory,
    emulated, or regular — see [Lnd_runtime.Cell]). *)

val alloc : Lnd_shm.Space.t -> config -> regs

val value_with_quorum : Value.t option array -> threshold:int -> Value.t option
(** The (unique, by quorum-intersection counting) value reaching
    [threshold] copies, if any. Exposed for the ablation variants. *)

val cell_of : regs -> Sticky_core.reg -> Cell.t
(** Map the pure core's abstract register names onto this layout (used
    by every driver that runs {!Sticky_core} programs over these
    cells). *)

(** {2 Writer (p0)} *)

type writer = { w_regs : regs }

val writer : regs -> writer

val write : writer -> Value.t -> unit
(** WRITE(v): lines 1-6 — writes the echo register, then waits until
    n-f processes witness the value (see the §7.1 ablation for why the
    wait is load-bearing). A second WRITE is a no-op returning done. *)

(** {2 Readers (p1 .. p(n-1))} *)

type reader = { rd_regs : regs; rd_pid : int; mutable ck : int }
(** Keep ONE reader handle per (process, register) for the process's
    lifetime: [ck] must be monotone across all of that reader's reads. *)

val reader : regs -> pid:int -> reader

val read : reader -> Value.t option
(** READ(): lines 7-22; [None] is ⊥. Terminates for correct readers when
    n > 3f (Lemma 110). *)

(** {2 Background helper} *)

val help : regs -> pid:int -> unit
(** Help(): lines 23-40. Runs forever; spawn as a daemon fiber of
    process [pid]. Echoes the writer's value, becomes a witness via the
    strict (echo-quorum) policy, and answers ongoing READs. *)
