(* Algorithm 2 as a pure state machine (see Lnd_support.Machine).

   This module is the protocol: every register access of the writer's
   WRITE, a reader's READ and the Help daemon, in exactly the order the
   paper (and the pre-refactor inlined implementation) performs them —
   but expressed as a resumable program over abstract register names,
   with no scheduler, Obs or transport calls. Sticky.write/read/help
   drive these programs on the simulator (Lnd_runtime.Drive); the
   domains backend (Lnd_parallel) drives the same programs with real
   preemption. The access order is load-bearing: the differential
   suite's golden baselines and the DPOR exhaustion counts both pin
   it. *)

open Lnd_support
open Machine

(* Register names; the driver maps them to concrete cells. *)
type reg =
  | E of int  (** echo register E_i, owner p_i *)
  | R of int  (** witness register R_i, owner p_i *)
  | Rjk of int * int  (** R_{j,k}: owner p_j, single reader p_k (k >= 1) *)
  | C of int  (** round counter C_k, owner p_k (k >= 1) *)

(* Defensive decoders: ill-typed content reads as the initial value. *)
let[@lnd.pure] dec_vopt u = Univ.prj_default Codecs.value_opt ~default:None u

let[@lnd.pure] dec_stamped u =
  Univ.prj_default Codecs.vopt_stamped ~default:(None, 0) u

let[@lnd.pure] dec_counter u = Univ.prj_default Codecs.counter ~default:0 u
let[@lnd.pure] enc_vopt v = Univ.inj Codecs.value_opt v
let[@lnd.pure] enc_stamped u c = Univ.inj Codecs.vopt_stamped (u, c)
let[@lnd.pure] enc_counter c = Univ.inj Codecs.counter c

(* Count, over an array of optional values, how many equal [v]. *)
let[@lnd.pure] count_eq (arr : Value.t option array) (v : Value.t) : int =
  Array.fold_left
    (fun acc u -> match u with Some x when Value.equal x v -> acc + 1 | _ -> acc)
    0 arr

(* The (unique, per Lemma 98-style counting) value reaching [threshold]
   copies in [arr], if any. *)
let[@lnd.pure] value_with_quorum (arr : Value.t option array) ~threshold :
    Value.t option =
  let found = ref None in
  Array.iter
    (fun u ->
      match (u, !found) with
      | Some v, None -> if count_eq arr v >= threshold then found := Some v
      | _ -> ())
    arr;
  !found

(* Read registers [mk 0 .. mk (n-1)] in ascending order. *)
let[@lnd.pure] read_all ~n (mk : int -> reg) (dec : Univ.t -> 'b) :
    (reg, 'b array) prog =
  let rec go i acc =
    if i >= n then ret (Array.of_list (List.rev acc))
    else
      let* u = read (mk i) in
      go (i + 1) (dec u :: acc)
  in
  go 0 []

(* ---------------- Writer (p0): WRITE(v), lines 1-6 ---------------- *)

let[@lnd.pure] write_prog ~n ~(q : Quorum.t) (v : Value.t) : (reg, unit) prog =
  (* line 1: a second write is a no-op returning done *)
  let* e0 = read (E 0) in
  if dec_vopt e0 <> None then ret ()
  else
    (* line 2 *)
    let* () = write (E 0) (enc_vopt (Some v)) in
    (* lines 3-5: wait until n-f processes witness v; yield between
       poll passes — the wait is a voluntary scheduling point *)
    let rec wait () =
      let* rs = read_all ~n (fun i -> R i) dec_vopt in
      if Quorum.has_availability q (count_eq rs v) then ret ()
      else
        let* () = yield in
        wait ()
    in
    wait ()

(* ---------------- Readers: READ(), lines 7-22 ---------------- *)

module PidSet = Set.Make (Int)
module PidMap = Map.Make (Int)

(* The reader's persistent round counter [ck] is threaded through: the
   driver owns the mutable reader record and stores the returned value
   back. *)
let[@lnd.pure] read_prog ~n ~(q : Quorum.t) ~pid ~ck :
    (reg, Value.t option * int) prog =
  let rec round set_bot set_val ck =
    (* line 9 *)
    let ck = ck + 1 in
    let* () = write (C pid) (enc_counter ck) in
    (* line 10: S = processes not yet classified *)
    let in_s j = (not (PidSet.mem j set_bot)) && not (PidMap.mem j set_val) in
    (* lines 11-14: poll S until someone answered this round; an
       unsuccessful poll pass is a voluntary scheduling point *)
    let rec poll j =
      if j >= n then
        let* () = yield in
        poll 0
      else if not (in_s j) then poll (j + 1)
      else
        let* u = read (Rjk (j, pid)) in
        let uj, cj = dec_stamped u in
        if cj >= ck then ret (j, uj) else poll (j + 1)
    in
    let* j, uj = poll 0 in
    let set_bot, set_val =
      match uj with
      | Some v ->
          (* lines 15-17 *)
          (PidSet.empty, PidMap.add j v set_val)
      | None ->
          (* lines 18-19 *)
          (PidSet.add j set_bot, set_val)
    in
    (* line 20: some value witnessed by >= n-f processes in set_val? *)
    let counts =
      PidMap.fold
        (fun _ v acc ->
          let cur = try List.assoc v acc with Not_found -> 0 in
          (v, cur + 1) :: List.remove_assoc v acc)
        set_val []
    in
    match
      List.find_opt (fun (_, cnt) -> Quorum.has_availability q cnt) counts
    with
    | Some (v, _) -> ret (Some v, ck)
    | None ->
        (* line 22 *)
        if Quorum.exceeds_faults q (PidSet.cardinal set_bot) then
          ret (None, ck)
        else round set_bot set_val ck
  in
  round PidSet.empty PidMap.empty ck

(* ---------------- Help() — lines 23-40 ---------------- *)

(* Runs forever (the program never returns); [prev] — the last counter
   value served per asker — is threaded functionally. *)
let[@lnd.pure] help_prog ~n ~(q : Quorum.t) ~pid : (reg, unit) prog =
  let rec round (prev : int PidMap.t) =
    let prev_of k = match PidMap.find_opt k prev with Some c -> c | None -> 0 in
    (* lines 25-27: echo the writer's value, once *)
    let* () =
      let* e_pid = read (E pid) in
      if dec_vopt e_pid <> None then ret ()
      else
        let* e1 = read (E 0) in
        match dec_vopt e1 with
        | Some _ as u -> write (E pid) (enc_vopt u)
        | None -> ret ()
    in
    (* lines 28-30: become a witness of a value echoed by n-f processes *)
    let* () =
      let* r_pid = read (R pid) in
      if dec_vopt r_pid <> None then ret ()
      else
        let* es = read_all ~n (fun i -> E i) dec_vopt in
        match value_with_quorum es ~threshold:(Quorum.availability q) with
        | Some v -> write (R pid) (enc_vopt (Some v))
        | None -> ret ()
    in
    (* lines 31-32 *)
    let rec counters k acc =
      if k >= n then ret (List.rev acc)
      else
        let* u = read (C k) in
        counters (k + 1) ((k, dec_counter u) :: acc)
    in
    let* cks = counters 1 [] in
    let askers = List.filter (fun (k, ck) -> ck > prev_of k) cks in
    if askers <> [] then
      let* () = note (Serving (List.map fst askers)) in
      (* lines 34-36: become a witness of a value with f+1 witnesses *)
      let* () =
        let* r_pid = read (R pid) in
        if dec_vopt r_pid <> None then ret ()
        else
          let* rs = read_all ~n (fun i -> R i) dec_vopt in
          match value_with_quorum rs ~threshold:(Quorum.one_correct q) with
          | Some v -> write (R pid) (enc_vopt (Some v))
          | None -> ret ()
      in
      (* line 37 *)
      let* rj_u = read (R pid) in
      let rj = dec_vopt rj_u in
      (* lines 38-40 *)
      let rec answer = function
        | [] -> ret ()
        | (k, ck) :: rest ->
            let* () = write (Rjk (pid, k)) (enc_stamped rj ck) in
            answer rest
      in
      let* () = answer askers in
      let prev =
        List.fold_left (fun m (k, ck) -> PidMap.add k ck m) prev askers
      in
      let* () = note Served in
      round prev
    else
      let* () = yield in
      round prev
  in
  round PidMap.empty
