(** Algorithm 2 as a pure state machine.

    Programs over abstract register names ({!reg}); no scheduler, Obs or
    transport calls. {!Sticky} drives them on the simulator,
    [Lnd_parallel] on OCaml 5 domains. The register-access order is
    load-bearing (golden baselines + DPOR counts pin it). *)

open Lnd_support

type reg =
  | E of int  (** echo register E_i, owner p_i *)
  | R of int  (** witness register R_i, owner p_i *)
  | Rjk of int * int  (** R_{j,k}: owner p_j, single reader p_k (k >= 1) *)
  | C of int  (** round counter C_k, owner p_k (k >= 1) *)

(** {2 Pure helpers (shared with ablation experiments)} *)

val count_eq : Value.t option array -> Value.t -> int

val value_with_quorum :
  Value.t option array -> threshold:int -> Value.t option

(** {2 Decoders/encoders (defensive: ill-typed content reads as the
    initial value)} *)

val dec_vopt : Univ.t -> Value.t option
val dec_stamped : Univ.t -> Value.t option * int
val dec_counter : Univ.t -> int
val enc_vopt : Value.t option -> Univ.t
val enc_stamped : Value.t option -> int -> Univ.t
val enc_counter : int -> Univ.t

(** {2 The protocol programs} *)

val write_prog : n:int -> q:Quorum.t -> Value.t -> (reg, unit) Machine.prog
(** WRITE(v), lines 1-6 (a second write is a no-op). *)

val read_prog :
  n:int -> q:Quorum.t -> pid:int -> ck:int ->
  (reg, Value.t option * int) Machine.prog
(** READ(), lines 7-22. Returns (result, new round counter); the driver
    owns the reader's persistent [ck]. *)

val help_prog : n:int -> q:Quorum.t -> pid:int -> (reg, unit) Machine.prog
(** Help(), lines 23-40; never returns. Emits [Serving askers]/[Served]
    notes around each round that answers askers. *)
