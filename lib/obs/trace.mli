(** Recording sink: turns {!Obs} events into replayable artifacts.

    A trace is an in-memory event buffer plus enough bookkeeping to
    force-close spans whose fiber was killed mid-operation (Help daemons
    at scenario teardown). Export formats:

    - JSONL: one event per line, fixed field order — byte-identical for
      a fixed seed, suitable as a committed golden fixture;
    - Chrome trace ([chrome://tracing] / Perfetto): spans as async b/e
      pairs keyed by span id, everything else as instant events. *)

type t

val create : ?keep:(Obs.event -> bool) -> unit -> t
(** [create ~keep ()] records events satisfying [keep] (default: all).
    Span open/close events are always recorded regardless of [keep] so
    the causal skeleton stays intact. *)

val sink : t -> Obs.sink
(** The sink to pass to {!Obs.install}. *)

val finish : t -> unit
(** Close every span still open, deepest first, with synthetic
    [Span_close { aborted = true }] events stamped at the last recorded
    time. Idempotent. Call after the run, before export. *)

val events : t -> Obs.event list
(** Recorded events in emission order. *)

val size : t -> int
(** Number of recorded events. *)

val event_to_json : Obs.event -> string
(** One event as a single-line JSON object with fixed field order. *)

val to_jsonl : t -> string
(** All events, one JSON object per line, trailing newline. *)

val to_chrome : t -> string
(** Chrome-trace JSON array of the recorded events. *)

val check_nesting : Obs.event list -> string option
(** [None] if spans are well-nested: every close matches an open, no
    span closes while a child is open, no id opens twice, and nothing is
    left open at the end. Otherwise a description of the first
    violation. *)

val diff : expected:string -> actual:string -> string option
(** Compare two JSONL exports. [None] when byte-identical; otherwise a
    structured description of the first divergent event (index, expected
    line, actual line). *)
