(** Recording sink: turns {!Obs} events into replayable artifacts.

    A trace is a set of {e per-domain event arenas} — fixed-capacity
    buffers preallocated once per recording domain, so the record hot
    path writes into an array slot and allocates no heap words — plus
    enough bookkeeping to force-close spans whose fiber was killed
    mid-operation (Help daemons at scenario teardown). Overflowing an
    arena never truncates silently: further events bump a per-domain
    [dropped] counter surfaced by {!dropped} and {!check}.

    A single-domain trace reads back in emission order, byte-identical
    to the pre-arena recorder. A multi-domain trace merges
    deterministically on the clock stamps: the domains backend stamps
    every event through one fetch-and-add clock, so stamps are unique
    and the merged stream is totally ordered regardless of how the
    domains raced; equal stamps (custom clocks only) tie-break stably on
    arena registration order.

    Export formats:

    - JSONL: one event per line, fixed field order — byte-identical for
      a fixed seed, suitable as a committed golden fixture;
    - Chrome trace ([chrome://tracing] / Perfetto): spans as async b/e
      pairs keyed by span id, everything else as instant events. *)

type t

val default_capacity : int
(** Default per-domain arena capacity (events), [2^20] — sized so the
    heaviest seeded chaos runs (~676k full-trace events) fit with
    headroom. *)

val create : ?keep:(Obs.event -> bool) -> ?capacity:int -> unit -> t
(** [create ~keep ()] records events satisfying [keep] (default: all).
    Span open/close events are always recorded regardless of [keep] so
    the causal skeleton stays intact. [capacity] bounds each domain's
    arena (default {!default_capacity}); arenas are allocated lazily on
    a domain's first recorded event. *)

val sink : t -> Obs.sink
(** The sink to pass to {!Obs.install}. Safe for concurrent emission
    from multiple domains: each domain records into its own arena. *)

val finish : t -> unit
(** Close every span still open, deepest first, with synthetic
    [Span_close { aborted = true }] events stamped at the last recorded
    time. Idempotent. Call after the run — and after worker domains have
    joined — before export. *)

val events : t -> Obs.event list
(** Recorded events, merged across arenas into clock order (see the
    module doc); emission order for a single-domain trace. *)

val size : t -> int
(** Number of recorded events (dropped events excluded). *)

val dropped : t -> int
(** Events discarded on arena overflow, summed across domains. [0]
    means the trace is complete. *)

val domains : t -> int
(** Number of per-domain arenas registered (= domains that recorded at
    least one event). *)

val event_to_json : Obs.event -> string
(** One event as a single-line JSON object with fixed field order. *)

val to_jsonl : t -> string
(** All events, one JSON object per line, trailing newline. *)

val to_chrome : t -> string
(** Chrome-trace JSON array of the recorded events. *)

val check_nesting : Obs.event list -> string option
(** [None] if spans are well-nested: every close matches an open, no
    span closes while a child is open, no id opens twice, and nothing is
    left open at the end. Otherwise a description of the first
    violation. *)

val check : t -> string option
(** Dropped-aware well-nestedness: a trace that lost events to arena
    overflow fails loudly as known-incomplete (naming the dropped count
    and capacity) instead of letting a truncated stream masquerade as a
    nesting violation — or worse, pass. Otherwise {!check_nesting} on
    the merged events. *)

val diff : expected:string -> actual:string -> string option
(** Compare two JSONL exports. [None] when byte-identical; otherwise a
    structured description of the first divergent event (index, expected
    line, actual line). *)
