(** Trace-derived profiling: flamegraph "folded stack" export.

    Folds the span tree of a recorded event stream into one line per
    distinct call stack, weighted by {e self} time in logical clock
    steps: a span's inclusive interval ([close.at - open.at]) minus the
    inclusive time of its direct children. Stacks are rooted at the
    opening process ([p<pid>]) and follow the span's ancestor chain
    ([parent] links recorded at open), e.g. [p0;domain;WRITE 42].

    The output is aggregated and sorted, so it is deterministic for a
    deterministic trace (byte-identical across replays of the same sim
    seed) and ready for flamegraph.pl, inferno or speedscope. Aborted
    spans contribute the interval up to their synthesized close
    ({!Trace.finish}); spans never closed contribute nothing. *)

val stacks : Obs.event list -> (string * int) list
(** [(folded stack, total self time)] rows, sorted by stack. *)

val to_folded : Obs.event list -> string
(** The rows of {!stacks}, one ["stack value\n"] line each. *)
