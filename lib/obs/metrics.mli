(** Metrics registry: counters, gauges and histograms with a
    deterministic dump, plus derivation of a standard metric set from a
    recorded event stream.

    Histogram samples are logical-step integers; percentiles use the
    nearest-rank method on the sorted sample list, so dumps are exact
    and reproducible. *)

type t

type hstats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
  p99 : int;
}

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val set_gauge : t -> string -> int -> unit
val observe : t -> string -> int -> unit

val counter : t -> string -> int
(** Current counter value; [0] if never incremented. *)

val gauge : t -> string -> int option
val histogram : t -> string -> hstats option

val names : t -> string list
(** All registered metric names, sorted. *)

val dump : t -> string
(** One line per metric, sorted by name:
    [counter <name> <value>], [gauge <name> <value>],
    [hist <name> count=.. sum=.. min=.. max=.. p50=.. p95=.. p99=..]. *)

val to_json : t -> string
(** The same content as {!dump} as a single JSON object
    [{"counters":{..},"gauges":{..},"hists":{..}}] with sorted keys —
    a deterministic, diffable metrics snapshot. *)

val of_events : ?dropped:int -> Obs.event list -> t
(** Derive the standard metric set from a trace: [sched.*], [shm.*],
    [net.*], [rlink.*], [reg.*] (including the [reg.quorum.count]
    wait-depth histogram), [wal.*] (including [wal.fsync.latency] and
    [wal.bytes] journalled), [disk.*], and per-operation span counts and
    step-latency histograms ([span.<NAME>.count] / [span.<NAME>.steps]).
    [dropped] (default 0) is the recording trace's arena-overflow count
    ({!Trace.dropped}); when positive it is surfaced as the
    [trace.dropped] counter, so metrics derived from a known-incomplete
    trace say so instead of under-counting silently. *)
