(** Observability seam: structured events with causal span ids.

    Every layer of the stack (scheduler, shared memory, links, register
    emulation, WAL, the register algorithms themselves) emits typed events
    through this module. By default no sink is installed and every
    emission is a no-op behind a single [enabled] check, so instrumented
    code costs one branch per probe and allocates nothing. Installing a
    sink (see {!Trace}) turns the same probes into an exact, replayable
    record of a run.

    Span discipline: a span is opened for each register operation
    (WRITE/READ/SIGN/VERIFY, Help rounds, emulated-register ops) and
    every event emitted while it is ambient carries its id. The ambient
    span follows the {e fiber}, not the call stack: {!Lnd_runtime.Sched}
    saves and restores it at every fiber switch, so concurrent operations
    interleave without stealing each other's children.

    Domain safety: the sink and clock hook live in [Atomic] cells
    (installed by the driving domain before workers spawn, read
    everywhere), span ids come from one fetch-and-add counter so they
    are unique across domains, and the ambient span/pid plus the
    parent links of open spans are per-domain state in [Domain.DLS] —
    each domain owns its span chain and domains never race on each
    other's ambient. The sink itself must be domain-safe when domains
    emit concurrently (see {!Trace.arena}).

    Determinism contract: with a sink installed, a fixed seed produces a
    byte-identical event stream on the deterministic simulator; with no
    sink, instrumented code behaves identically to uninstrumented code
    (same scheduling, same output). *)

type access = [ `Read | `Write ]

type verdict =
  | Deliver  (** the network let the message through untouched *)
  | Dropped  (** fair-lossy loss *)
  | Cut  (** partition: link administratively severed *)
  | Dup  (** an extra copy was injected *)
  | Delayed of int  (** held back this many poll rounds *)

(** A message-level claim, emitted by the {e receiver} the moment a
    protocol payload is decoded and before it is acted on. A claim
    attributes the payload to [src] (the transport-level sender), so an
    auditor can cross-examine what each process {e said} independently of
    what any correct process later did about it. *)
type claim =
  | Cl_init of { sender : int; seq : int }
      (** broadcast Init: [src] claims to originate slot [(sender, seq)] *)
  | Cl_vouch of { sender : int; seq : int; tag : string }
      (** broadcast Echo/Ready ([tag]): [src] vouches for [(sender, seq)] *)
  | Cl_wreq of { reg : int; ts : int }  (** emulated-register write request *)
  | Cl_wecho of { reg : int; ts : int }  (** write echo (vouch) *)
  | Cl_wack of { reg : int; ts : int }  (** write acknowledgement *)
  | Cl_rrep of { reg : int; rid : int; ts : int }  (** read reply *)
  | Cl_state of { reg : int; ts : int }
      (** one register triple inside a state-transfer reply *)
  | Cl_garbage  (** a payload that failed to decode at all *)

type kind =
  | Span_open of { name : string; arg : string option; parent : int }
  | Span_close of { name : string; result : string option; aborted : bool }
      (** [aborted] marks spans force-closed by {!Trace.finish} (their
          fiber was killed mid-operation, e.g. a Help daemon). *)
  | Sched_spawn of { fid : int; fname : string; daemon : bool }
  | Sched_switch of { fid : int; fname : string }
  | Sched_exit of { fid : int; fname : string; failed : bool }
  | Shm_access of { access : access; reg : string; value : Lnd_support.Univ.t }
  | Net_verdict of { dst : int; verdict : verdict }
  | Link_data of { dst : int; seq : int; retrans : bool }
  | Link_ack of { dst : int; seq : int }
  | Link_deliver of { src : int; seq : int }
  | Link_dedup of { src : int; seq : int }
  | Link_stale of { src : int }
  | Link_epoch of { src : int; epoch : int }
  | Reg_round of { reg : int; round : string; rid : int }
  | Reg_reply of { reg : int; rid : int; src : int; count : int }
  | Reg_quorum of { reg : int; rid : int; count : int }
  | Wal_append of { bytes : int }
  | Wal_sync of { records : int; latency : int }
      (** [latency]: logical steps between the first unsynced append and
          this barrier. *)
  | Wal_snapshot of { records : int }
  | Wal_recover of { records : int }
  | Disk_crash of { torn : int }
  | Claim of { src : int; claim : claim; fp : string }
      (** receiver-side record of a decoded payload from [src]; [fp] is
          the value fingerprint ([""] where the payload carries none) *)
  | Reg_write_ann of { reg : int; ts : int; fp : string }
      (** the owner declares a write (emitted before the Wreq broadcast,
          so every derived claim has an earlier justification on stream) *)
  | Reg_alloc of { reg : int; owner : int; fp : string }
      (** an emulated register is allocated with this initial value *)
  | Link_incarnation of { epoch : int }
      (** an rlink endpoint (re)starts with this incarnation epoch *)
  | Watchdog_stall of { fid : int; fname : string; op : string; deadline : int }
      (** liveness diagnosis: [fid]/[fname] missed [op]'s [deadline] —
          evidence of slowness, never of lying *)
  | Explore_run of { mode : string; idx : int; depth : int; reason : string }
      (** one explored schedule: [mode] is ["dfs"]/["dpor"]/["swarm"],
          [reason] is ["quiescent"]/["pruned"]/["blocked"] *)
  | Explore_stats of {
      mode : string;
      runs : int;
      pruned : int;
      blocked : int;
      races : int;
      exhausted : bool;
    }
      (** end-of-exploration summary (see {!Lnd_runtime.Explore.result}) *)

type event = { at : int; pid : int; span : int; kind : kind }
(** [at] is the logical clock (see {!set_clock}); [pid] the emitting
    process ([-1] when outside any fiber); [span] the ambient span id
    ([0] = no span). *)

type sink = { emit : event -> unit }

val fanout : sink list -> sink
(** A sink that forwards every event to each of [sinks] in order, so a
    trace recorder and an online auditor can observe the same run. The
    combinator is pure composition: the Null fast-path (no sink
    installed) is untouched and still allocation-free. *)

val install : ?clock:(unit -> int) -> sink -> unit
(** Install a sink and reset span state (the global span counter and the
    calling domain's ambient/parent context). At most one sink is
    active; installing replaces the previous one. *)

val uninstall : unit -> unit
(** Remove the sink: all probes become no-ops again. Resets the clock
    hook, the span counter and the calling domain's ambient/parent
    context, so install/uninstall cycles within one process do not leak
    span ids or parent links into the next trace. *)

val enabled : unit -> bool
(** Cheap guard for call sites: skip argument construction when no sink
    is installed. *)

val set_clock : (unit -> int) -> unit
(** Set the logical-clock hook. [Sched.create] installs one reading its
    step counter whenever a sink is active, so events are stamped with
    scheduler time; the hook must be callable outside any fiber. *)

val now : unit -> int
(** Current logical time per the installed clock hook (0 by default). *)

val emit : ?pid:int -> kind -> unit
(** Emit an event stamped with the current clock, ambient span and — if
    [pid] is omitted — the ambient pid. No-op without a sink. *)

(** {2 Spans} *)

val span_open : ?pid:int -> name:string -> ?arg:string -> unit -> int
(** Open a span as a child of the ambient span, make it ambient, and
    return its id. Returns [0] (the null span) without a sink. *)

val span_close : ?pid:int -> ?result:string -> name:string -> int -> unit
(** Close a span and restore its parent as ambient. Closing the null
    span [0] is a no-op. *)

(** {2 Ambient state (scheduler use)} *)

val ambient : unit -> int
(** The ambient span id (what an [emit] would be tagged with). *)

val set_ambient : span:int -> pid:int -> unit
(** Swap the calling domain's ambient span and pid wholesale. The
    scheduler calls this at each fiber switch so spans follow fibers,
    not the host call stack; the domains backend calls it before each
    process turn so events land under that process's span. *)
