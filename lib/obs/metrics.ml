type hstats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
  p99 : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, int list ref) Hashtbl.t; (* samples, reverse order *)
}

let create () =
  { counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16 }

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add tbl name r;
      r

let incr ?(by = 1) t name =
  let r = cell t.counters name in
  r := !r + by

let set_gauge t name v = cell t.gauges name := v

let observe t name v =
  match Hashtbl.find_opt t.hists name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add t.hists name (ref [ v ])

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

let nearest_rank sorted n p =
  (* nearest-rank percentile on a sorted array of n > 0 samples *)
  let rank = ((p * n) + 99) / 100 in
  let idx = if rank <= 0 then 0 else rank - 1 in
  sorted.(if idx >= n then n - 1 else idx)

let hstats_of samples =
  let sorted = Array.of_list samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let sum = Array.fold_left ( + ) 0 sorted in
  { count = n;
    sum;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = nearest_rank sorted n 50;
    p95 = nearest_rank sorted n 95;
    p99 = nearest_rank sorted n 99 }

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | Some { contents = [] } | None -> None
  | Some r -> Some (hstats_of !r)

let names t =
  let acc = ref [] in
  Hashtbl.iter (fun k _ -> acc := k :: !acc) t.counters;
  Hashtbl.iter (fun k _ -> acc := k :: !acc) t.gauges;
  Hashtbl.iter (fun k _ -> acc := k :: !acc) t.hists;
  List.sort_uniq compare !acc

let dump t =
  let b = Buffer.create 512 in
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "counter %s %d\n" k !v))
    (sorted t.counters);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "gauge %s %d\n" k !v))
    (sorted t.gauges);
  List.iter
    (fun (k, v) ->
      let h = hstats_of !v in
      Buffer.add_string b
        (Printf.sprintf
           "hist %s count=%d sum=%d min=%d max=%d p50=%d p95=%d p99=%d\n" k
           h.count h.sum h.min h.max h.p50 h.p95 h.p99))
    (List.filter (fun (_, v) -> !v <> []) (sorted t.hists));
  Buffer.contents b

(* --- JSON snapshot ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Same content as [dump], as one JSON object — sorted keys, so the
   snapshot is deterministic and diffable. *)
let to_json t =
  let b = Buffer.create 1024 in
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let obj name render entries =
    Buffer.add_string b (Printf.sprintf "\"%s\":{" name);
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape k));
        render v)
      entries;
    Buffer.add_char b '}'
  in
  Buffer.add_char b '{';
  obj "counters" (fun v -> Buffer.add_string b (string_of_int !v))
    (sorted t.counters);
  Buffer.add_char b ',';
  obj "gauges" (fun v -> Buffer.add_string b (string_of_int !v))
    (sorted t.gauges);
  Buffer.add_char b ',';
  obj "hists"
    (fun v ->
      let h = hstats_of !v in
      Buffer.add_string b
        (Printf.sprintf
           "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\
            \"p95\":%d,\"p99\":%d}"
           h.count h.sum h.min h.max h.p50 h.p95 h.p99))
    (List.filter (fun (_, v) -> !v <> []) (sorted t.hists));
  Buffer.add_char b '}';
  Buffer.contents b

(* --- Standard derivation from a trace ---------------------------------- *)

let of_events ?(dropped = 0) evs =
  let m = create () in
  (* Reconciliation: a trace that lost events on arena overflow says so
     in its own metrics, so derived counts are never silently short. *)
  if dropped > 0 then incr ~by:dropped m "trace.dropped";
  (* open span id -> (name, opened-at) for latency histograms *)
  let opens : (int, string * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Obs.event) ->
      match e.kind with
      | Span_open { name; _ } -> Hashtbl.replace opens e.span (name, e.at)
      | Span_close { name; aborted; _ } ->
          incr m ("span." ^ name ^ ".count");
          if aborted then incr m ("span." ^ name ^ ".aborted");
          (match Hashtbl.find_opt opens e.span with
          | Some (_, at0) ->
              Hashtbl.remove opens e.span;
              observe m ("span." ^ name ^ ".steps") (e.at - at0)
          | None -> ())
      | Sched_spawn _ -> incr m "sched.spawns"
      | Sched_switch _ -> incr m "sched.switches"
      | Sched_exit { failed; _ } ->
          incr m "sched.exits";
          if failed then incr m "sched.failures"
      | Shm_access { access = `Read; _ } -> incr m "shm.reads"
      | Shm_access { access = `Write; _ } -> incr m "shm.writes"
      | Net_verdict { verdict; _ } -> (
          match verdict with
          | Deliver -> incr m "net.deliver"
          | Dropped -> incr m "net.drop"
          | Cut -> incr m "net.cut"
          | Dup -> incr m "net.dup"
          | Delayed n ->
              incr m "net.delay";
              observe m "net.delay.ticks" n)
      | Link_data { retrans; _ } ->
          if retrans then incr m "rlink.retransmissions"
          else incr m "rlink.data_sent"
      | Link_ack _ -> incr m "rlink.acks"
      | Link_deliver _ -> incr m "rlink.delivered"
      | Link_dedup _ -> incr m "rlink.redundant"
      | Link_stale _ -> incr m "rlink.stale"
      | Link_epoch _ -> incr m "rlink.epoch_bumps"
      | Reg_round { round; _ } -> incr m ("reg.rounds." ^ round)
      | Reg_reply _ -> incr m "reg.replies"
      | Reg_quorum { count; _ } ->
          incr m "reg.quorums";
          observe m "reg.quorum.count" count
      | Wal_append { bytes } ->
          incr m "wal.appends";
          incr ~by:bytes m "wal.bytes"
      | Wal_sync { records; latency } ->
          incr m "wal.fsyncs";
          observe m "wal.fsync.latency" latency;
          observe m "wal.sync.batch" records
      | Wal_snapshot _ -> incr m "wal.snapshots"
      | Wal_recover { records } ->
          incr m "wal.recovers";
          observe m "wal.recover.records" records
      | Disk_crash { torn } ->
          incr m "disk.crashes";
          incr ~by:torn m "disk.torn_files"
      | Claim { claim = Cl_garbage; _ } -> incr m "audit.claims.garbage"
      | Claim _ -> incr m "audit.claims"
      | Reg_write_ann _ -> incr m "reg.write_anns"
      | Reg_alloc _ -> incr m "reg.allocs"
      | Link_incarnation _ -> incr m "rlink.incarnations"
      | Watchdog_stall _ -> incr m "watchdog.stalls"
      | Explore_run { depth; reason; _ } -> (
          observe m "explore.depth" depth;
          match reason with
          | "pruned" -> incr m "explore.pruned"
          | "blocked" -> incr m "explore.blocked"
          | _ -> incr m "explore.runs")
      | Explore_stats { races; exhausted; _ } ->
          incr ~by:races m "explore.races";
          set_gauge m "explore.exhausted" (if exhausted then 1 else 0))
    evs;
  m
