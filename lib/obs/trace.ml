module Univ = Lnd_support.Univ

(* --- Per-domain event arenas ------------------------------------------- *)

(* One preallocated buffer owned by exactly one domain: the owner is the
   only writer of [len]/[dropped], so the record hot path touches no
   shared state and allocates no heap words. The merge reads the slots
   after the worker domains have joined. *)
type slot = {
  buf : Obs.event array;
  mutable len : int;
  mutable dropped : int;
  dom : int; (* Domain id of the owning domain, for slot reuse *)
}

type t = {
  id : int; (* unique arena-set id, keys the per-domain slot cache *)
  keep : Obs.event -> bool;
  capacity : int;
  mu : Mutex.t; (* guards slot registration only, never the hot path *)
  mutable slots : slot list; (* reverse registration order *)
  mutable nslots : int;
  mutable finished : bool;
  mutable extra : Obs.event list; (* aborted closes appended by [finish] *)
}

let ids = Atomic.make 0
let default_capacity = 1 lsl 20

let dummy_event =
  { Obs.at = 0; pid = -1; span = 0; kind = Obs.Link_stale { src = -1 } }

let create ?(keep = fun _ -> true) ?(capacity = default_capacity) () =
  { id = Atomic.fetch_and_add ids 1;
    keep;
    capacity;
    mu = Mutex.create ();
    slots = [];
    nslots = 0;
    finished = false;
    extra = [] }

(* One cached (arena id, slot) pair per domain: after the first event a
   domain records into a trace, every further record hits the cache and
   never takes the lock. A domain interleaving two live traces thrashes
   the cache through the registration lock but never duplicates slots
   (the slot registered for this domain is found and reused); memory
   pinned by stale cache entries is bounded by one buffer per domain. *)
type cache = { mutable owner : int; mutable cached : slot option }

let cache_key = Domain.DLS.new_key (fun () -> { owner = -1; cached = None })
let self_dom () = (Domain.self () :> int)

let slot_for t =
  let c = Domain.DLS.get cache_key in
  match c.cached with
  | Some s when c.owner = t.id -> s
  | _ ->
      let dom = self_dom () in
      Mutex.lock t.mu;
      let s =
        match List.find_opt (fun s -> s.dom = dom) t.slots with
        | Some s -> s
        | None ->
            let s =
              { buf = Array.make t.capacity dummy_event;
                len = 0;
                dropped = 0;
                dom }
            in
            t.slots <- s :: t.slots;
            t.nslots <- t.nslots + 1;
            s
      in
      Mutex.unlock t.mu;
      c.owner <- t.id;
      c.cached <- Some s;
      s

let record t (e : Obs.event) =
  let s = slot_for t in
  if s.len < t.capacity then begin
    s.buf.(s.len) <- e;
    s.len <- s.len + 1
  end
  else s.dropped <- s.dropped + 1

let sink t =
  { Obs.emit =
      (fun e ->
        match e.kind with
        | Span_open _ | Span_close _ -> record t e
        | _ -> if t.keep e then record t e) }

(* --- Deterministic merge ----------------------------------------------- *)

(* A single-domain trace is already in emission order, which the
   deterministic simulator pins byte-for-byte — return it untouched. A
   multi-domain trace merges by the (atomic, fetch-and-add) clock stamp;
   the sort is stable over slot registration order, so equal stamps —
   impossible when the domains backend installs the tick clock, since
   every stamp is unique — still break ties deterministically for a
   fixed registration order. *)
let merged t =
  let slots = List.rev t.slots in
  let evs =
    List.concat_map (fun s -> Array.to_list (Array.sub s.buf 0 s.len)) slots
  in
  if t.nslots > 1 then
    List.stable_sort
      (fun (a : Obs.event) (b : Obs.event) -> Int.compare a.at b.at)
      evs
  else evs

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let evs = merged t in
    let opens : (int, string * int) Hashtbl.t = Hashtbl.create 64 in
    let last_at = ref 0 in
    List.iter
      (fun (e : Obs.event) ->
        if e.at > !last_at then last_at := e.at;
        match e.kind with
        | Span_open { name; _ } -> Hashtbl.replace opens e.span (name, e.pid)
        | Span_close _ -> Hashtbl.remove opens e.span
        | _ -> ())
      evs;
    (* Children always carry a larger id than their parent (ids are
       allocated at open time), so closing in descending id order keeps
       the stream well-nested. *)
    let dangling =
      Hashtbl.fold (fun id info acc -> (id, info) :: acc) opens []
      |> List.sort (fun (a, _) (b, _) -> compare b a)
    in
    t.extra <-
      List.map
        (fun (id, (name, pid)) ->
          { Obs.at = !last_at;
            pid;
            span = id;
            kind = Obs.Span_close { name; result = None; aborted = true } })
        dangling
  end

let events t = merged t @ t.extra

let size t =
  List.fold_left (fun acc s -> acc + s.len) (List.length t.extra) t.slots

let dropped t = List.fold_left (fun acc s -> acc + s.dropped) 0 t.slots
let domains t = t.nslots

(* --- JSONL export ------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let fld_str b k v =
  Buffer.add_string b ",\"";
  Buffer.add_string b k;
  Buffer.add_string b "\":\"";
  escape b v;
  Buffer.add_char b '"'

let fld_int b k v =
  Buffer.add_string b ",\"";
  Buffer.add_string b k;
  Buffer.add_string b "\":";
  Buffer.add_string b (string_of_int v)

let fld_bool b k v =
  Buffer.add_string b ",\"";
  Buffer.add_string b k;
  Buffer.add_string b (if v then "\":true" else "\":false")

let verdict_name = function
  | Obs.Deliver -> "deliver"
  | Obs.Dropped -> "drop"
  | Obs.Cut -> "cut"
  | Obs.Dup -> "dup"
  | Obs.Delayed _ -> "delay"

let add_kind b (k : Obs.kind) =
  match k with
  | Span_open { name; arg; parent } ->
      fld_str b "name" name;
      fld_int b "parent" parent;
      (match arg with Some a -> fld_str b "arg" a | None -> ())
  | Span_close { name; result; aborted } ->
      fld_str b "name" name;
      fld_bool b "aborted" aborted;
      (match result with Some r -> fld_str b "result" r | None -> ())
  | Sched_spawn { fid; fname; daemon } ->
      fld_int b "fid" fid;
      fld_str b "fname" fname;
      fld_bool b "daemon" daemon
  | Sched_switch { fid; fname } ->
      fld_int b "fid" fid;
      fld_str b "fname" fname
  | Sched_exit { fid; fname; failed } ->
      fld_int b "fid" fid;
      fld_str b "fname" fname;
      fld_bool b "failed" failed
  | Shm_access { access; reg; value } ->
      fld_str b "access" (match access with `Read -> "read" | `Write -> "write");
      fld_str b "reg" reg;
      fld_str b "key" (Univ.key_name value);
      fld_str b "value" (Fmt.str "%a" Univ.pp value)
  | Net_verdict { dst; verdict } -> (
      fld_int b "dst" dst;
      fld_str b "verdict" (verdict_name verdict);
      match verdict with Delayed n -> fld_int b "ticks" n | _ -> ())
  | Link_data { dst; seq; retrans } ->
      fld_int b "dst" dst;
      fld_int b "seq" seq;
      fld_bool b "retrans" retrans
  | Link_ack { dst; seq } ->
      fld_int b "dst" dst;
      fld_int b "seq" seq
  | Link_deliver { src; seq } ->
      fld_int b "src" src;
      fld_int b "seq" seq
  | Link_dedup { src; seq } ->
      fld_int b "src" src;
      fld_int b "seq" seq
  | Link_stale { src } -> fld_int b "src" src
  | Link_epoch { src; epoch } ->
      fld_int b "src" src;
      fld_int b "epoch" epoch
  | Reg_round { reg; round; rid } ->
      fld_int b "reg" reg;
      fld_str b "round" round;
      fld_int b "rid" rid
  | Reg_reply { reg; rid; src; count } ->
      fld_int b "reg" reg;
      fld_int b "rid" rid;
      fld_int b "src" src;
      fld_int b "count" count
  | Reg_quorum { reg; rid; count } ->
      fld_int b "reg" reg;
      fld_int b "rid" rid;
      fld_int b "count" count
  | Wal_append { bytes } -> fld_int b "bytes" bytes
  | Wal_sync { records; latency } ->
      fld_int b "records" records;
      fld_int b "latency" latency
  | Wal_snapshot { records } -> fld_int b "records" records
  | Wal_recover { records } -> fld_int b "records" records
  | Disk_crash { torn } -> fld_int b "torn" torn
  | Claim { src; claim; fp } ->
      fld_int b "src" src;
      (match claim with
      | Cl_init { sender; seq } ->
          fld_str b "claim" "init";
          fld_int b "sender" sender;
          fld_int b "seq" seq
      | Cl_vouch { sender; seq; tag } ->
          fld_str b "claim" "vouch";
          fld_str b "tag" tag;
          fld_int b "sender" sender;
          fld_int b "seq" seq
      | Cl_wreq { reg; ts } ->
          fld_str b "claim" "wreq";
          fld_int b "reg" reg;
          fld_int b "ts" ts
      | Cl_wecho { reg; ts } ->
          fld_str b "claim" "wecho";
          fld_int b "reg" reg;
          fld_int b "ts" ts
      | Cl_wack { reg; ts } ->
          fld_str b "claim" "wack";
          fld_int b "reg" reg;
          fld_int b "ts" ts
      | Cl_rrep { reg; rid; ts } ->
          fld_str b "claim" "rrep";
          fld_int b "reg" reg;
          fld_int b "rid" rid;
          fld_int b "ts" ts
      | Cl_state { reg; ts } ->
          fld_str b "claim" "state";
          fld_int b "reg" reg;
          fld_int b "ts" ts
      | Cl_garbage -> fld_str b "claim" "garbage");
      if fp <> "" then fld_str b "fp" fp
  | Reg_write_ann { reg; ts; fp } ->
      fld_int b "reg" reg;
      fld_int b "ts" ts;
      fld_str b "fp" fp
  | Reg_alloc { reg; owner; fp } ->
      fld_int b "reg" reg;
      fld_int b "owner" owner;
      fld_str b "fp" fp
  | Link_incarnation { epoch } -> fld_int b "epoch" epoch
  | Watchdog_stall { fid; fname; op; deadline } ->
      fld_int b "fid" fid;
      fld_str b "fname" fname;
      fld_str b "op" op;
      fld_int b "deadline" deadline
  | Explore_run { mode; idx; depth; reason } ->
      fld_str b "mode" mode;
      fld_int b "idx" idx;
      fld_int b "depth" depth;
      fld_str b "reason" reason
  | Explore_stats { mode; runs; pruned; blocked; races; exhausted } ->
      fld_str b "mode" mode;
      fld_int b "runs" runs;
      fld_int b "pruned" pruned;
      fld_int b "blocked" blocked;
      fld_int b "races" races;
      fld_bool b "exhausted" exhausted

let kind_name (k : Obs.kind) =
  match k with
  | Span_open _ -> "span_open"
  | Span_close _ -> "span_close"
  | Sched_spawn _ -> "sched_spawn"
  | Sched_switch _ -> "sched_switch"
  | Sched_exit _ -> "sched_exit"
  | Shm_access _ -> "shm"
  | Net_verdict _ -> "net"
  | Link_data _ -> "link_data"
  | Link_ack _ -> "link_ack"
  | Link_deliver _ -> "link_deliver"
  | Link_dedup _ -> "link_dedup"
  | Link_stale _ -> "link_stale"
  | Link_epoch _ -> "link_epoch"
  | Reg_round _ -> "reg_round"
  | Reg_reply _ -> "reg_reply"
  | Reg_quorum _ -> "reg_quorum"
  | Wal_append _ -> "wal_append"
  | Wal_sync _ -> "wal_sync"
  | Wal_snapshot _ -> "wal_snapshot"
  | Wal_recover _ -> "wal_recover"
  | Disk_crash _ -> "disk_crash"
  | Claim _ -> "claim"
  | Reg_write_ann _ -> "reg_write_ann"
  | Reg_alloc _ -> "reg_alloc"
  | Link_incarnation _ -> "link_incarnation"
  | Watchdog_stall _ -> "watchdog_stall"
  | Explore_run _ -> "explore_run"
  | Explore_stats _ -> "explore_stats"

let add_event_json b (e : Obs.event) =
  Buffer.add_string b "{\"at\":";
  Buffer.add_string b (string_of_int e.at);
  Buffer.add_string b ",\"pid\":";
  Buffer.add_string b (string_of_int e.pid);
  Buffer.add_string b ",\"span\":";
  Buffer.add_string b (string_of_int e.span);
  Buffer.add_string b ",\"ev\":\"";
  Buffer.add_string b (kind_name e.kind);
  Buffer.add_char b '"';
  add_kind b e.kind;
  Buffer.add_char b '}'

let event_to_json e =
  let b = Buffer.create 128 in
  add_event_json b e;
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create (64 * size t) in
  List.iter
    (fun e ->
      add_event_json b e;
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

(* --- Chrome trace export ----------------------------------------------- *)

let to_chrome t =
  let b = Buffer.create (96 * size t) in
  Buffer.add_string b "[";
  let first = ref true in
  List.iter
    (fun (e : Obs.event) ->
      if !first then first := false else Buffer.add_string b ",\n";
      let common ph name cat =
        Buffer.add_string b "{\"name\":\"";
        escape b name;
        Buffer.add_string b "\",\"cat\":\"";
        Buffer.add_string b cat;
        Buffer.add_string b "\",\"ph\":\"";
        Buffer.add_string b ph;
        Buffer.add_string b "\",\"ts\":";
        Buffer.add_string b (string_of_int e.at);
        Buffer.add_string b ",\"pid\":";
        Buffer.add_string b (string_of_int e.pid);
        Buffer.add_string b ",\"tid\":";
        Buffer.add_string b (string_of_int e.pid)
      in
      (match e.kind with
      | Span_open { name; _ } ->
          common "b" name "op";
          Buffer.add_string b (Printf.sprintf ",\"id\":%d" e.span)
      | Span_close { name; _ } ->
          common "e" name "op";
          Buffer.add_string b (Printf.sprintf ",\"id\":%d" e.span)
      | k ->
          common "i" (kind_name k) "ev";
          Buffer.add_string b ",\"s\":\"t\"");
      (* Full event payload in args so nothing is lost in the viewer. *)
      Buffer.add_string b ",\"args\":{\"json\":\"";
      escape b (event_to_json e);
      Buffer.add_string b "\"}}")
    (events t);
  Buffer.add_string b "]\n";
  Buffer.contents b

(* --- Span nesting check ------------------------------------------------ *)

let check_nesting evs =
  let open_spans : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* span id -> number of open children *)
  let parent_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let violation = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt in
  List.iter
    (fun (e : Obs.event) ->
      if !violation = None then
        match e.kind with
        | Span_open { parent; name; _ } ->
            if Hashtbl.mem open_spans e.span then
              fail "span %d (%s) opened twice (at=%d)" e.span name e.at
            else if parent <> 0 && not (Hashtbl.mem open_spans parent) then
              fail "span %d (%s) opened under closed parent %d (at=%d)"
                e.span name parent e.at
            else begin
              Hashtbl.replace open_spans e.span 0;
              Hashtbl.replace parent_of e.span parent;
              if parent <> 0 then
                Hashtbl.replace open_spans parent
                  (Hashtbl.find open_spans parent + 1)
            end
        | Span_close { name; _ } -> (
            match Hashtbl.find_opt open_spans e.span with
            | None -> fail "span %d (%s) closed but not open (at=%d)" e.span name e.at
            | Some kids when kids > 0 ->
                fail "span %d (%s) closed with %d open children (at=%d)"
                  e.span name kids e.at
            | Some _ ->
                Hashtbl.remove open_spans e.span;
                let parent = Hashtbl.find parent_of e.span in
                if parent <> 0 then
                  match Hashtbl.find_opt open_spans parent with
                  | Some k -> Hashtbl.replace open_spans parent (k - 1)
                  | None -> ())
        | _ -> ())
    evs;
  (match !violation with
  | None ->
      let leaked =
        Hashtbl.fold (fun id _ acc -> id :: acc) open_spans [] |> List.sort compare
      in
      if leaked <> [] then
        fail "%d span(s) never closed: %s" (List.length leaked)
          (String.concat "," (List.map string_of_int leaked))
  | Some _ -> ());
  !violation

let check t =
  let d = dropped t in
  if d > 0 then
    Some
      (Printf.sprintf
         "trace known-incomplete: %d event(s) dropped on arena overflow \
          (capacity %d per domain) — well-nestedness not checkable"
         d t.capacity)
  else check_nesting (events t)

(* --- Golden diff ------------------------------------------------------- *)

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let diff ~expected ~actual =
  if String.equal expected actual then None
  else begin
    let le = lines expected and la = lines actual in
    let ne = List.length le and na = List.length la in
    let rec first_div i = function
      | e :: es, a :: as_ ->
          if String.equal e a then first_div (i + 1) (es, as_)
          else
            Some
              (Printf.sprintf
                 "trace diverges at event %d:\n  expected: %s\n  actual:   %s\n\
                  (%d expected events, %d actual)"
                 i e a ne na)
      | e :: _, [] ->
          Some
            (Printf.sprintf
               "actual trace truncated at event %d (expected %d events, got %d):\n\
               \  next expected: %s" i ne na e)
      | [], a :: _ ->
          Some
            (Printf.sprintf
               "actual trace has %d extra event(s) past expected end (%d):\n\
               \  first extra: %s" (na - ne) ne a)
      | [], [] ->
          Some "traces differ only in whitespace/newline layout"
    in
    first_div 0 (le, la)
  end
