(* Trace-derived profiling: fold the span tree of a recorded event
   stream into flamegraph "folded stack" lines.

   Each closed span contributes its SELF time — inclusive interval
   (close.at - open.at, in logical clock steps) minus the inclusive
   time of its direct children — to the stack path formed by its
   ancestor chain, rooted at the opening process ("p<pid>"). Identical
   stacks aggregate, and the output is sorted, so the export is
   deterministic for a deterministic trace and diffable across runs.
   The format is the one flamegraph.pl / speedscope / inferno consume:

     p0;domain;WRITE 42
     p2;domain;READ 17
     p2;HELP 5 *)

type open_span = {
  name : string;
  o_pid : int;
  parent : int;
  opened_at : int;
  mutable children_incl : int; (* sum of direct children's inclusive time *)
}

let stacks (evs : Obs.event list) : (string * int) list =
  let open_spans : (int, open_span) Hashtbl.t = Hashtbl.create 64 in
  (* closed spans keep their name so a late sibling can still render its
     ancestor path (well-nested traces never need this, but an ill-nested
     one should not crash the profiler) *)
  let names : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let totals : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec path acc parent =
    if parent = 0 then acc
    else
      match Hashtbl.find_opt open_spans parent with
      | Some o -> path (o.name :: acc) o.parent
      | None -> (
          match Hashtbl.find_opt names parent with
          | Some n -> n :: acc (* closed parent: chain ends here *)
          | None -> acc)
  in
  List.iter
    (fun (e : Obs.event) ->
      match e.kind with
      | Obs.Span_open { name; parent; _ } ->
          Hashtbl.replace open_spans e.span
            { name; o_pid = e.pid; parent; opened_at = e.at; children_incl = 0 };
          Hashtbl.replace names e.span name
      | Obs.Span_close _ -> (
          match Hashtbl.find_opt open_spans e.span with
          | None -> ()
          | Some o ->
              Hashtbl.remove open_spans e.span;
              let incl = e.at - o.opened_at in
              let self = Stdlib.max 0 (incl - o.children_incl) in
              (match Hashtbl.find_opt open_spans o.parent with
              | Some p -> p.children_incl <- p.children_incl + incl
              | None -> ());
              let stack =
                String.concat ";"
                  (Printf.sprintf "p%d" o.o_pid :: path [ o.name ] o.parent)
              in
              Hashtbl.replace totals stack
                (self
                + match Hashtbl.find_opt totals stack with
                  | Some v -> v
                  | None -> 0))
      | _ -> ())
    evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_folded evs =
  let b = Buffer.create 1024 in
  List.iter
    (fun (stack, self) ->
      Buffer.add_string b stack;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int self);
      Buffer.add_char b '\n')
    (stacks evs);
  Buffer.contents b
