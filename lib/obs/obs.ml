type access = [ `Read | `Write ]

type verdict = Deliver | Dropped | Cut | Dup | Delayed of int

type claim =
  | Cl_init of { sender : int; seq : int }
  | Cl_vouch of { sender : int; seq : int; tag : string }
  | Cl_wreq of { reg : int; ts : int }
  | Cl_wecho of { reg : int; ts : int }
  | Cl_wack of { reg : int; ts : int }
  | Cl_rrep of { reg : int; rid : int; ts : int }
  | Cl_state of { reg : int; ts : int }
  | Cl_garbage

type kind =
  | Span_open of { name : string; arg : string option; parent : int }
  | Span_close of { name : string; result : string option; aborted : bool }
  | Sched_spawn of { fid : int; fname : string; daemon : bool }
  | Sched_switch of { fid : int; fname : string }
  | Sched_exit of { fid : int; fname : string; failed : bool }
  | Shm_access of { access : access; reg : string; value : Lnd_support.Univ.t }
  | Net_verdict of { dst : int; verdict : verdict }
  | Link_data of { dst : int; seq : int; retrans : bool }
  | Link_ack of { dst : int; seq : int }
  | Link_deliver of { src : int; seq : int }
  | Link_dedup of { src : int; seq : int }
  | Link_stale of { src : int }
  | Link_epoch of { src : int; epoch : int }
  | Reg_round of { reg : int; round : string; rid : int }
  | Reg_reply of { reg : int; rid : int; src : int; count : int }
  | Reg_quorum of { reg : int; rid : int; count : int }
  | Wal_append of { bytes : int }
  | Wal_sync of { records : int; latency : int }
  | Wal_snapshot of { records : int }
  | Wal_recover of { records : int }
  | Disk_crash of { torn : int }
  | Claim of { src : int; claim : claim; fp : string }
  | Reg_write_ann of { reg : int; ts : int; fp : string }
  | Reg_alloc of { reg : int; owner : int; fp : string }
  | Link_incarnation of { epoch : int }
  | Watchdog_stall of { fid : int; fname : string; op : string; deadline : int }
  | Explore_run of { mode : string; idx : int; depth : int; reason : string }
  | Explore_stats of {
      mode : string;
      runs : int;
      pruned : int;
      blocked : int;
      races : int;
      exhausted : bool;
    }

type event = { at : int; pid : int; span : int; kind : kind }
type sink = { emit : event -> unit }

let fanout sinks =
  { emit = (fun e -> List.iter (fun s -> s.emit e) sinks) }

let sink_r : sink option ref = ref None
let clock_r : (unit -> int) ref = ref (fun () -> 0)
let ambient_span = ref 0
let ambient_pid = ref (-1)
let next_span = ref 1

(* Parent of each still-open span, so [span_close] can restore the
   ambient chain even when closes arrive out of stack order (each fiber
   closes its own spans, but fibers interleave). *)
let parents : (int, int) Hashtbl.t = Hashtbl.create 64

let enabled () = !sink_r <> None

let install ?clock s =
  sink_r := Some s;
  (match clock with Some c -> clock_r := c | None -> ());
  ambient_span := 0;
  ambient_pid := -1;
  next_span := 1;
  Hashtbl.reset parents

let uninstall () =
  sink_r := None;
  clock_r := (fun () -> 0);
  ambient_span := 0;
  ambient_pid := -1

let set_clock c = clock_r := c
let now () = !clock_r ()

let emit ?pid kind =
  match !sink_r with
  | None -> ()
  | Some s ->
      let pid = match pid with Some p -> p | None -> !ambient_pid in
      s.emit { at = now (); pid; span = !ambient_span; kind }

let span_open ?pid ~name ?arg () =
  match !sink_r with
  | None -> 0
  | Some s ->
      let id = !next_span in
      incr next_span;
      let parent = !ambient_span in
      Hashtbl.replace parents id parent;
      let pid = match pid with Some p -> p | None -> !ambient_pid in
      s.emit { at = now (); pid; span = id; kind = Span_open { name; arg; parent } };
      ambient_span := id;
      id

let span_close ?pid ?result ~name id =
  match !sink_r with
  | None -> ()
  | Some s ->
      if id <> 0 then begin
        let parent = try Hashtbl.find parents id with Not_found -> 0 in
        Hashtbl.remove parents id;
        let pid = match pid with Some p -> p | None -> !ambient_pid in
        s.emit
          { at = now (); pid; span = id;
            kind = Span_close { name; result; aborted = false } };
        ambient_span := parent
      end

let ambient () = !ambient_span

let set_ambient ~span ~pid =
  ambient_span := span;
  ambient_pid := pid
