type access = [ `Read | `Write ]

type verdict = Deliver | Dropped | Cut | Dup | Delayed of int

type claim =
  | Cl_init of { sender : int; seq : int }
  | Cl_vouch of { sender : int; seq : int; tag : string }
  | Cl_wreq of { reg : int; ts : int }
  | Cl_wecho of { reg : int; ts : int }
  | Cl_wack of { reg : int; ts : int }
  | Cl_rrep of { reg : int; rid : int; ts : int }
  | Cl_state of { reg : int; ts : int }
  | Cl_garbage

type kind =
  | Span_open of { name : string; arg : string option; parent : int }
  | Span_close of { name : string; result : string option; aborted : bool }
  | Sched_spawn of { fid : int; fname : string; daemon : bool }
  | Sched_switch of { fid : int; fname : string }
  | Sched_exit of { fid : int; fname : string; failed : bool }
  | Shm_access of { access : access; reg : string; value : Lnd_support.Univ.t }
  | Net_verdict of { dst : int; verdict : verdict }
  | Link_data of { dst : int; seq : int; retrans : bool }
  | Link_ack of { dst : int; seq : int }
  | Link_deliver of { src : int; seq : int }
  | Link_dedup of { src : int; seq : int }
  | Link_stale of { src : int }
  | Link_epoch of { src : int; epoch : int }
  | Reg_round of { reg : int; round : string; rid : int }
  | Reg_reply of { reg : int; rid : int; src : int; count : int }
  | Reg_quorum of { reg : int; rid : int; count : int }
  | Wal_append of { bytes : int }
  | Wal_sync of { records : int; latency : int }
  | Wal_snapshot of { records : int }
  | Wal_recover of { records : int }
  | Disk_crash of { torn : int }
  | Claim of { src : int; claim : claim; fp : string }
  | Reg_write_ann of { reg : int; ts : int; fp : string }
  | Reg_alloc of { reg : int; owner : int; fp : string }
  | Link_incarnation of { epoch : int }
  | Watchdog_stall of { fid : int; fname : string; op : string; deadline : int }
  | Explore_run of { mode : string; idx : int; depth : int; reason : string }
  | Explore_stats of {
      mode : string;
      runs : int;
      pruned : int;
      blocked : int;
      races : int;
      exhausted : bool;
    }

type event = { at : int; pid : int; span : int; kind : kind }
type sink = { emit : event -> unit }

let fanout sinks =
  { emit = (fun e -> List.iter (fun s -> s.emit e) sinks) }

(* The sink and clock hook are installed once, from the driving domain,
   before any worker domain spawns, and then read from every domain —
   so both live in Atomic cells (publication is a release/acquire
   pair, never a data race). *)
let sink_r : sink option Atomic.t = Atomic.make None
let clock_r : (unit -> int) Atomic.t = Atomic.make (fun () -> 0)

(* Span ids must be unique across domains: a single fetch-and-add
   counter. On one domain this yields the same 1, 2, 3, ... sequence the
   pre-domains seam produced, so sim traces are unchanged. *)
let next_span = Atomic.make 1

(* Everything that follows the control flow of one domain — the ambient
   span/pid and the parent links of the spans that domain opened — is
   per-domain state in DLS, so domains never race on each other's span
   chains. Within a domain the ambient still follows the fiber, not the
   call stack: Sched saves and restores it at every switch. *)
type ctx = {
  mutable ambient_span : int;
  mutable ambient_pid : int;
  parents : (int, int) Hashtbl.t;
      (* Parent of each still-open span this domain opened, so
         [span_close] can restore the ambient chain even when closes
         arrive out of stack order (each fiber closes its own spans, but
         fibers interleave). *)
}

let ctx_key =
  Domain.DLS.new_key (fun () ->
      { ambient_span = 0; ambient_pid = -1; parents = Hashtbl.create 64 })

let ctx () = Domain.DLS.get ctx_key

let reset_ctx () =
  let c = ctx () in
  c.ambient_span <- 0;
  c.ambient_pid <- -1;
  Hashtbl.reset c.parents

let enabled () = Atomic.get sink_r <> None

let install ?clock s =
  Atomic.set sink_r (Some s);
  (match clock with Some c -> Atomic.set clock_r c | None -> ());
  Atomic.set next_span 1;
  reset_ctx ()

let uninstall () =
  Atomic.set sink_r None;
  Atomic.set clock_r (fun () -> 0);
  Atomic.set next_span 1;
  reset_ctx ()

let set_clock c = Atomic.set clock_r c
let now () = (Atomic.get clock_r) ()

let emit ?pid kind =
  match Atomic.get sink_r with
  | None -> ()
  | Some s ->
      let c = ctx () in
      let pid = match pid with Some p -> p | None -> c.ambient_pid in
      s.emit { at = now (); pid; span = c.ambient_span; kind }

let span_open ?pid ~name ?arg () =
  match Atomic.get sink_r with
  | None -> 0
  | Some s ->
      let c = ctx () in
      let id = Atomic.fetch_and_add next_span 1 in
      let parent = c.ambient_span in
      Hashtbl.replace c.parents id parent;
      let pid = match pid with Some p -> p | None -> c.ambient_pid in
      s.emit
        { at = now (); pid; span = id; kind = Span_open { name; arg; parent } };
      c.ambient_span <- id;
      id

let span_close ?pid ?result ~name id =
  match Atomic.get sink_r with
  | None -> ()
  | Some s ->
      if id <> 0 then begin
        let c = ctx () in
        let parent = try Hashtbl.find c.parents id with Not_found -> 0 in
        Hashtbl.remove c.parents id;
        let pid = match pid with Some p -> p | None -> c.ambient_pid in
        s.emit
          { at = now (); pid; span = id;
            kind = Span_close { name; result; aborted = false } };
        c.ambient_span <- parent
      end

let ambient () = (ctx ()).ambient_span

let set_ambient ~span ~pid =
  let c = ctx () in
  c.ambient_span <- span;
  c.ambient_pid <- pid
