(* Genome-scripted Byzantine adversaries.

   A script is a plain int array that fully determines one Byzantine
   responder's behaviour: two leading "posture" genes choose what the
   process advertises in its owned protocol registers, and every
   subsequent gene is consumed — one per reply — to decide what the
   process claims to the next asker it answers. The interpretation is
   deterministic (no RNG, no wall clock), so a (schedule, genome) pair
   replays a whole adversarial execution exactly; the synthesiser
   (Lnd_fuzz.Synth) searches this space by mutating genes.

   Gene decoding is total: any int is reduced mod 3, so random mutation
   never produces an invalid script. Genomes cycle once exhausted; the
   empty genome behaves as all-zeroes. The scripted space covers the
   named adversaries of Byz_sticky/Byz_verifiable that matter for
   safety: all-zero replies is a naysayer, all-one a false witness,
   all-two an honest-but-slow helper, and mixed genes express the
   support-then-retract colluders behind the weakened-quorum attacks. *)

open Lnd_support
open Lnd_runtime

type t = { pid : int; genome : int array; value : Value.t }

let make ~pid ~genome ~value : t = { pid; genome = Array.of_list genome; value }
let genome (sc : t) : int list = Array.to_list sc.genome

let describe (sc : t) : string =
  Printf.sprintf "p%d:%s[%s]" sc.pid sc.value
    (String.concat "," (List.map string_of_int (genome sc)))

(* Total decoding: gene [i] of the (cycling) genome, reduced mod 3.
   0 = silent/deny, 1 = claim [value], 2 = honest. *)
let gene (sc : t) i : int =
  let len = Array.length sc.genome in
  if len = 0 then 0 else abs sc.genome.(i mod len) mod 3

let mutate rng (sc : t) : t =
  let len = Array.length sc.genome in
  if len = 0 then { sc with genome = [| Rng.int rng 6 |] }
  else if Rng.int rng 4 = 0 then
    (* occasionally grow: a longer genome can change behaviour later in
       the run than any point mutation *)
    { sc with genome = Array.append sc.genome [| Rng.int rng 6 |] }
  else begin
    let g = Array.copy sc.genome in
    g.(Rng.int rng len) <- Rng.int rng 6;
    { sc with genome = g }
  end

(* ---------------- Sticky register (Algorithm 2) ---------------- *)

let spawn_sticky sched (regs : Lnd_sticky.Sticky.regs) (sc : t) : Sched.fiber =
  let open Lnd_sticky.Sticky in
  let vopt v = Univ.inj Codecs.value_opt v in
  let stamped u c = Univ.inj Codecs.vopt_stamped (u, c) in
  let read_vopt reg =
    Univ.prj_default Codecs.value_opt ~default:None (Cell.read reg)
  in
  let n = regs.cfg.n in
  Sched.spawn sched ~pid:sc.pid
    ~name:(Printf.sprintf "byz-script%d" sc.pid)
    ~daemon:true
    (fun () ->
      let prev = Array.make n 0 in
      let replies = ref 0 in
      let echoed = ref false and witnessed = ref false in
      while true do
        (* gene 0: posture on the echo register E_pid (once) *)
        (if not !echoed then
           match gene sc 0 with
           | 1 ->
               Cell.write regs.e.(sc.pid) (vopt (Some sc.value));
               echoed := true
           | 2 -> (
               (* honest: copy the writer's echo once it appears *)
               match read_vopt regs.e.(0) with
               | Some _ as u ->
                   Cell.write regs.e.(sc.pid) (vopt u);
                   echoed := true
               | None -> ())
           | _ -> echoed := true (* stay silent for good *));
        (* gene 1: posture on the witness register R_pid (once) *)
        (if not !witnessed then
           match gene sc 1 with
           | 1 ->
               Cell.write regs.r.(sc.pid) (vopt (Some sc.value));
               witnessed := true
           | 2 -> (
               match read_vopt regs.e.(0) with
               | Some _ as u ->
                   Cell.write regs.r.(sc.pid) (vopt u);
                   witnessed := true
               | None -> ())
           | _ -> witnessed := true);
        (* answer askers; one reply gene per reply sent *)
        let answered = ref false in
        for k = 1 to n - 1 do
          if k <> sc.pid then begin
            let ck =
              Univ.prj_default Codecs.counter ~default:0 (Cell.read regs.c.(k))
            in
            if ck > prev.(k) then begin
              let payload =
                match gene sc (2 + !replies) with
                | 1 -> Some sc.value
                | 2 -> read_vopt regs.r.(sc.pid)
                | _ -> None
              in
              incr replies;
              Cell.write regs.rjk.(sc.pid).(k) (stamped payload ck);
              prev.(k) <- ck;
              answered := true
            end
          end
        done;
        if not !answered then Sched.yield ()
      done)

(* ---------------- Verifiable register (Algorithm 1) ---------------- *)

let spawn_verifiable sched (regs : Lnd_verifiable.Verifiable.regs) (sc : t) :
    Sched.fiber =
  let open Lnd_verifiable.Verifiable in
  let vset_of s = Univ.inj Codecs.vset s in
  let stamped s c = Univ.inj Codecs.vset_stamped (s, c) in
  let read_vset reg =
    Univ.prj_default Codecs.vset ~default:Value.Set.empty (Cell.read reg)
  in
  let n = regs.cfg.n in
  Sched.spawn sched ~pid:sc.pid
    ~name:(Printf.sprintf "byz-script%d" sc.pid)
    ~daemon:true
    (fun () ->
      let prev = Array.make n 0 in
      let replies = ref 0 in
      let announced = ref false and witnessed = ref false in
      while true do
        (* gene 0: posture on R* — only its owner (the writer) can act *)
        (if not !announced then
           if sc.pid <> 0 then announced := true
           else
             match gene sc 0 with
             | 1 ->
                 Cell.write regs.rstar (Univ.inj Codecs.value sc.value);
                 announced := true
             | _ -> announced := true);
        (* gene 1: posture on the witness register R_pid (once) *)
        (if not !witnessed then
           match gene sc 1 with
           | 1 ->
               Cell.write regs.r.(sc.pid) (vset_of (Value.Set.singleton sc.value));
               witnessed := true
           | 2 ->
               let s = read_vset regs.r.(0) in
               if not (Value.Set.is_empty s) then begin
                 Cell.write regs.r.(sc.pid) (vset_of s);
                 witnessed := true
               end
           | _ -> witnessed := true);
        let answered = ref false in
        for k = 1 to n - 1 do
          if k <> sc.pid then begin
            let ck =
              Univ.prj_default Codecs.counter ~default:0 (Cell.read regs.c.(k))
            in
            if ck > prev.(k) then begin
              let payload =
                match gene sc (2 + !replies) with
                | 1 -> Value.Set.singleton sc.value
                | 2 -> read_vset regs.r.(sc.pid)
                | _ -> Value.Set.empty
              in
              incr replies;
              Cell.write regs.rjk.(sc.pid).(k) (stamped payload ck);
              prev.(k) <- ck;
              answered := true
            end
          end
        done;
        if not !answered then Sched.yield ()
      done)
