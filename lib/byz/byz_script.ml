(* Genome-scripted Byzantine adversaries.

   A script is a plain int array that fully determines one Byzantine
   responder's behaviour: two leading "posture" genes choose what the
   process advertises in its owned protocol registers, and every
   subsequent gene is consumed — one per reply — to decide what the
   process claims to the next asker it answers. The interpretation is
   deterministic (no RNG, no wall clock), so a (schedule, genome) pair
   replays a whole adversarial execution exactly; the synthesiser
   (Lnd_fuzz.Synth) searches this space by mutating genes.

   Gene decoding is total: any int is reduced mod 3, so random mutation
   never produces an invalid script. Genomes cycle once exhausted; the
   empty genome behaves as all-zeroes. The scripted space covers the
   named adversaries of Byz_sticky/Byz_verifiable that matter for
   safety: all-zero replies is a naysayer, all-one a false witness,
   all-two an honest-but-slow helper, and mixed genes express the
   support-then-retract colluders behind the weakened-quorum attacks. *)

open Lnd_support
open Lnd_runtime

type t = { pid : int; genome : int array; value : Value.t }

let make ~pid ~genome ~value : t = { pid; genome = Array.of_list genome; value }
let genome (sc : t) : int list = Array.to_list sc.genome

let describe (sc : t) : string =
  Printf.sprintf "p%d:%s[%s]" sc.pid sc.value
    (String.concat "," (List.map string_of_int (genome sc)))

let mutate rng (sc : t) : t =
  let len = Array.length sc.genome in
  if len = 0 then { sc with genome = [| Rng.int rng 6 |] }
  else if Rng.int rng 4 = 0 then
    (* occasionally grow: a longer genome can change behaviour later in
       the run than any point mutation *)
    { sc with genome = Array.append sc.genome [| Rng.int rng 6 |] }
  else begin
    let g = Array.copy sc.genome in
    g.(Rng.int rng len) <- Rng.int rng 6;
    { sc with genome = g }
  end

(* ---------------- Sticky register (Algorithm 2) ---------------- *)

let spawn_sticky sched (regs : Lnd_sticky.Sticky.regs) (sc : t) : Sched.fiber =
  let n = regs.Lnd_sticky.Sticky.cfg.Lnd_sticky.Sticky.n in
  Sched.spawn sched ~pid:sc.pid
    ~name:(Printf.sprintf "byz-script%d" sc.pid)
    ~daemon:true
    (fun () ->
      Drive.run
        ~cell:(Lnd_sticky.Sticky.cell_of regs)
        (Byz_script_core.sticky_prog ~n ~pid:sc.pid ~genome:sc.genome
           ~value:sc.value))

(* ---------------- Verifiable register (Algorithm 1) ---------------- *)

let spawn_verifiable sched (regs : Lnd_verifiable.Verifiable.regs) (sc : t) :
    Sched.fiber =
  let n = regs.Lnd_verifiable.Verifiable.cfg.Lnd_verifiable.Verifiable.n in
  Sched.spawn sched ~pid:sc.pid
    ~name:(Printf.sprintf "byz-script%d" sc.pid)
    ~daemon:true
    (fun () ->
      Drive.run
        ~cell:(Lnd_verifiable.Verifiable.cell_of regs)
        (Byz_script_core.verifiable_prog ~n ~pid:sc.pid ~genome:sc.genome
           ~value:sc.value))
