(** Genome-scripted Byzantine adversaries as pure state machines.

    The genome interpreter (see {!Byz_script} for the gene layout) as
    resumable Machine programs over the sticky / verifiable register
    names. {!Byz_script} spawns these on the simulator; [Lnd_parallel]
    runs the same genomes on OCaml 5 domains, so a scripted adversary
    misbehaves identically — access for access — on both backends. *)

open Lnd_support

val gene : int array -> int -> int
(** Total decoding: gene [i] of the (cycling) genome, reduced mod 3.
    0 = silent/deny, 1 = claim the scripted value, 2 = honest. *)

val sticky_prog :
  n:int -> pid:int -> genome:int array -> value:Value.t ->
  (Lnd_sticky.Sticky_core.reg, unit) Machine.prog
(** The scripted responder against the sticky layout; never returns. *)

val verifiable_prog :
  n:int -> pid:int -> genome:int array -> value:Value.t ->
  (Lnd_verifiable.Verifiable_core.reg, unit) Machine.prog
(** The scripted responder against the verifiable layout; never
    returns. *)
