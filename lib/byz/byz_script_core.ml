(* Genome-scripted Byzantine adversaries as pure state machines.

   The interpreter for a genome (see Byz_script for the gene layout) is
   itself a protocol core: a resumable Machine program over the sticky or
   verifiable register names, with the adversary's bookkeeping (which
   askers were already answered, how many replies were sent, whether the
   posture registers were settled) threaded functionally. Byz_script
   spawns these programs on the simulator; the domains backend
   (Lnd_parallel) runs the same genomes with real preemption, so a
   scripted adversary misbehaves identically — access for access — on
   both backends. *)

open Lnd_support
open Machine

(* Total decoding: gene [i] of the (cycling) genome, reduced mod 3.
   0 = silent/deny, 1 = claim the scripted value, 2 = honest. *)
let[@lnd.pure] gene (genome : int array) i : int =
  let len = Array.length genome in
  if len = 0 then 0 else abs genome.(i mod len) mod 3

module PidMap = Map.Make (Int)

(* ---------------- Sticky register (Algorithm 2) ---------------- *)

let[@lnd.pure] sticky_prog ~n ~pid ~(genome : int array) ~(value : Value.t) :
    (Lnd_sticky.Sticky_core.reg, unit) prog =
  let open Lnd_sticky.Sticky_core in
  let rec round prev replies echoed witnessed =
    let prev_of k = match PidMap.find_opt k prev with Some c -> c | None -> 0 in
    (* gene 0: posture on the echo register E_pid (once) *)
    let* echoed =
      if echoed then ret true
      else
        match gene genome 0 with
        | 1 ->
            let* () = write (E pid) (enc_vopt (Some value)) in
            ret true
        | 2 -> (
            (* honest: copy the writer's echo once it appears *)
            let* u = read (E 0) in
            match dec_vopt u with
            | Some _ as e1 ->
                let* () = write (E pid) (enc_vopt e1) in
                ret true
            | None -> ret false)
        | _ -> ret true (* stay silent for good *)
    in
    (* gene 1: posture on the witness register R_pid (once) *)
    let* witnessed =
      if witnessed then ret true
      else
        match gene genome 1 with
        | 1 ->
            let* () = write (R pid) (enc_vopt (Some value)) in
            ret true
        | 2 -> (
            let* u = read (E 0) in
            match dec_vopt u with
            | Some _ as e1 ->
                let* () = write (R pid) (enc_vopt e1) in
                ret true
            | None -> ret false)
        | _ -> ret true
    in
    (* answer askers; one reply gene per reply sent *)
    let rec answer k prev replies answered =
      if k >= n then ret (prev, replies, answered)
      else if k = pid then answer (k + 1) prev replies answered
      else
        let* cku = read (C k) in
        let ck = dec_counter cku in
        if ck > prev_of k then
          let* payload =
            match gene genome (2 + replies) with
            | 1 -> ret (Some value)
            | 2 ->
                let* u = read (R pid) in
                ret (dec_vopt u)
            | _ -> ret None
          in
          let replies = replies + 1 in
          let* () = write (Rjk (pid, k)) (enc_stamped payload ck) in
          answer (k + 1) (PidMap.add k ck prev) replies true
        else answer (k + 1) prev replies answered
    in
    let* prev, replies, answered = answer 1 prev replies false in
    if answered then round prev replies echoed witnessed
    else
      let* () = yield in
      round prev replies echoed witnessed
  in
  round PidMap.empty 0 false false

(* ---------------- Verifiable register (Algorithm 1) ---------------- *)

let[@lnd.pure] verifiable_prog ~n ~pid ~(genome : int array) ~(value : Value.t)
    : (Lnd_verifiable.Verifiable_core.reg, unit) prog =
  let open Lnd_verifiable.Verifiable_core in
  let rec round prev replies announced witnessed =
    let prev_of k = match PidMap.find_opt k prev with Some c -> c | None -> 0 in
    (* gene 0: posture on R* — only its owner (the writer) can act *)
    let* announced =
      if announced then ret true
      else if pid <> 0 then ret true
      else
        match gene genome 0 with
        | 1 ->
            let* () = write Rstar (enc_value value) in
            ret true
        | _ -> ret true
    in
    (* gene 1: posture on the witness register R_pid (once) *)
    let* witnessed =
      if witnessed then ret true
      else
        match gene genome 1 with
        | 1 ->
            let* () = write (R pid) (enc_vset (Value.Set.singleton value)) in
            ret true
        | 2 ->
            let* u = read (R 0) in
            let s = dec_vset u in
            if not (Value.Set.is_empty s) then
              let* () = write (R pid) (enc_vset s) in
              ret true
            else ret false
        | _ -> ret true
    in
    let rec answer k prev replies answered =
      if k >= n then ret (prev, replies, answered)
      else if k = pid then answer (k + 1) prev replies answered
      else
        let* cku = read (C k) in
        let ck = dec_counter cku in
        if ck > prev_of k then
          let* payload =
            match gene genome (2 + replies) with
            | 1 -> ret (Value.Set.singleton value)
            | 2 ->
                let* u = read (R pid) in
                ret (dec_vset u)
            | _ -> ret Value.Set.empty
          in
          let replies = replies + 1 in
          let* () = write (Rjk (pid, k)) (enc_stamped payload ck) in
          answer (k + 1) (PidMap.add k ck prev) replies true
        else answer (k + 1) prev replies answered
    in
    let* prev, replies, answered = answer 1 prev replies false in
    if answered then round prev replies announced witnessed
    else
      let* () = yield in
      round prev replies announced witnessed
  in
  round PidMap.empty 0 false false
