(** Genome-scripted Byzantine adversaries.

    A script is a plain int array that fully determines one Byzantine
    responder's behaviour, so a (schedule, genome) pair replays a whole
    adversarial execution exactly. The adversary-synthesis loop
    (Lnd_fuzz.Synth) searches this space by mutating genes; the model
    checker (Lnd_fuzz.Mcheck) uses fixed scripts as deterministic
    adversaries inside DPOR exploration.

    Layout (every gene is reduced mod 3, so any int list is a valid
    genome; the genome cycles once exhausted, and the empty genome
    behaves as all-zeroes):

    - gene 0 — posture on the process's announcement register (sticky:
      its echo [E_pid]; verifiable: [R*], writer only): [0] stay
      silent, [1] claim [value], [2] honestly copy the writer.
    - gene 1 — posture on its witness register [R_pid], same decoding.
    - genes 2.. — one per reply sent to an asker: [0] deny (⊥ / empty
      witness set), [1] claim [value], [2] honestly forward its own
      witness register. *)

open Lnd_support
open Lnd_runtime

type t = { pid : int; genome : int array; value : Value.t }

val make : pid:int -> genome:int list -> value:Value.t -> t
val genome : t -> int list

val describe : t -> string
(** Compact one-line rendering, e.g. ["p3:a[1,1,0]"]. *)

val mutate : Rng.t -> t -> t
(** One mutation step: change a random gene, or occasionally append
    one. Deterministic in the RNG state. *)

val spawn_sticky : Sched.t -> Lnd_sticky.Sticky.regs -> t -> Sched.fiber
(** Run the script against the sticky register's layout (a daemon
    fiber, like every lnd_byz adversary). *)

val spawn_verifiable :
  Sched.t -> Lnd_verifiable.Verifiable.regs -> t -> Sched.fiber
(** Run the script against the verifiable register's layout. *)
