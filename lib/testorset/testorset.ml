(* Test-or-set (Definition 20) implemented from a sticky register and from
   a verifiable register — the two constructions of Observation 25.

   - From a sticky register R: SET = WRITE(1); TEST = READ, returning 1
     iff the read returns 1.
   - From a verifiable register R (v0 = 0): SET = WRITE(1); SIGN(1);
     TEST = VERIFY(1), returning 1 iff the verify returns true. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module T = Lnd_history.Spec.Testorset_spec
module Obs = Lnd_obs.Obs

let one : Value.t = "1"

type impl = Sticky_based | Verifiable_based

type backend =
  | B_sticky of Lnd_sticky.Sticky.regs * Lnd_sticky.Sticky.writer
      * Lnd_sticky.Sticky.reader option array
  | B_verifiable of Lnd_verifiable.Verifiable.regs
      * Lnd_verifiable.Verifiable.writer
      * Lnd_verifiable.Verifiable.reader option array

type t = {
  n : int;
  f : int;
  space : Space.t;
  sched : Sched.t;
  backend : backend;
  history : (T.op, T.res) Lnd_history.History.t;
  correct : bool array;
}

let make ?(policy : Policy.t option) ?(byzantine : int list = []) ~impl ~n ~f
    () : t =
  let space = Space.create ~n in
  let choose =
    match policy with Some p -> p | None -> Policy.random ~seed:42
  in
  let sched = Sched.create ~space ~choose in
  let correct = Array.make n true in
  List.iter (fun pid -> correct.(pid) <- false) byzantine;
  let backend =
    match impl with
    | Sticky_based ->
        let regs = Lnd_sticky.Sticky.alloc space { Lnd_sticky.Sticky.n; f } in
        let readers =
          Array.init n (fun pid ->
              if pid = 0 then None
              else Some (Lnd_sticky.Sticky.reader regs ~pid))
        in
        for pid = 0 to n - 1 do
          if correct.(pid) then
            ignore
              (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
                 ~daemon:true (fun () -> Lnd_sticky.Sticky.help regs ~pid))
        done;
        B_sticky (regs, Lnd_sticky.Sticky.writer regs, readers)
    | Verifiable_based ->
        let regs =
          Lnd_verifiable.Verifiable.alloc space
            { Lnd_verifiable.Verifiable.n; f }
        in
        let readers =
          Array.init n (fun pid ->
              if pid = 0 then None
              else Some (Lnd_verifiable.Verifiable.reader regs ~pid))
        in
        for pid = 0 to n - 1 do
          if correct.(pid) then
            ignore
              (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
                 ~daemon:true (fun () -> Lnd_verifiable.Verifiable.help regs ~pid))
        done;
        B_verifiable (regs, Lnd_verifiable.Verifiable.writer regs, readers)
  in
  { n; f; space; sched; backend; history = Lnd_history.History.create (); correct }

(* SET, by the setter (pid 0); recorded. The SET span brackets the
   recorded [inv, ret] interval (the underlying WRITE/SIGN spans nest
   inside it), so a trace folded by Trace_replay.testorset_history
   carries no precedence pair the direct history lacks. *)
let op_set (t : t) : unit =
  let sp = if Obs.enabled () then Obs.span_open ~name:"SET" () else 0 in
  Lnd_history.History.record t.history ~pid:0 T.Set (fun () ->
      (match t.backend with
      | B_sticky (_, w, _) -> Lnd_sticky.Sticky.write w one
      | B_verifiable (_, w, _) ->
          Lnd_verifiable.Verifiable.write w one;
          let signed = Lnd_verifiable.Verifiable.sign w one in
          assert signed);
      T.Done)
  |> ignore;
  if Obs.enabled () then Obs.span_close ~result:"done" ~name:"SET" sp

(* TEST, by any tester (pid >= 1); recorded. Returns 0 or 1. *)
let op_test (t : t) ~pid : int =
  let sp = if Obs.enabled () then Obs.span_open ~name:"TEST" () else 0 in
  let bit =
    match
      Lnd_history.History.record t.history ~pid T.Test (fun () ->
          let bit =
            match t.backend with
            | B_sticky (_, _, readers) -> (
                let rd = Option.get readers.(pid) in
                match Lnd_sticky.Sticky.read rd with
                | Some v when Value.equal v one -> 1
                | Some _ | None -> 0)
            | B_verifiable (_, _, readers) ->
                let rd = Option.get readers.(pid) in
                if Lnd_verifiable.Verifiable.verify rd one then 1 else 0
          in
          T.Bit bit)
    with
    | T.Bit b -> b
    | T.Done -> assert false
  in
  if Obs.enabled () then
    Obs.span_close ~result:(string_of_int bit) ~name:"TEST" sp;
  bit

let client t ~pid ~name body : Sched.fiber = Sched.spawn t.sched ~pid ~name body
let run ?max_steps ?until t = Sched.run ?max_steps ?until t.sched

let byz_linearizable ?node_budget t : bool =
  Lnd_history.Byzlin.testorset ?node_budget ~setter:0
    ~correct:(fun pid -> t.correct.(pid))
    t.history
