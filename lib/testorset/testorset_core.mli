(** Test-or-set (Definition 20) as a pure state machine: both
    Observation 25 constructions, composed from {!Lnd_sticky.Sticky_core}
    / {!Lnd_verifiable.Verifiable_core} under one register namespace via
    [Machine.map_reg]. The sim backend ({!Testorset}) reaches the same
    cores through the sticky/verifiable sim drivers; the domains backend
    ([Lnd_parallel]) drives these composed programs directly. *)

open Lnd_support

val one : Value.t
(** The value standing for the set bit. *)

type reg =
  | Sreg of Lnd_sticky.Sticky_core.reg
  | Vreg of Lnd_verifiable.Verifiable_core.reg

val sreg : Lnd_sticky.Sticky_core.reg -> reg
val vreg : Lnd_verifiable.Verifiable_core.reg -> reg

(** {2 From a sticky register} *)

val set_sticky_prog : n:int -> q:Quorum.t -> (reg, unit) Machine.prog

val test_sticky_prog :
  n:int -> q:Quorum.t -> pid:int -> ck:int -> (reg, int * int) Machine.prog
(** Returns (bit, new round counter); the driver owns the tester's
    persistent [ck]. *)

val help_sticky_prog :
  n:int -> q:Quorum.t -> pid:int -> (reg, unit) Machine.prog

(** {2 From a verifiable register} *)

val set_verifiable_prog :
  written:Value.Set.t -> (reg, bool * Value.Set.t) Machine.prog
(** SET = WRITE(1); SIGN(1). Returns (signed, the setter's updated local
    written-set). *)

val test_verifiable_prog :
  n:int -> q:Quorum.t -> pid:int -> ck:int -> (reg, int * int) Machine.prog

val help_verifiable_prog :
  n:int -> q:Quorum.t -> pid:int -> (reg, unit) Machine.prog
