(* Test-or-set (Definition 20) as a pure state machine: the two
   Observation 25 constructions, expressed by composing the underlying
   register cores under a shared register namespace (Machine.map_reg).

   - From a sticky register R: SET = WRITE(1); TEST = READ, returning 1
     iff the read returns 1.
   - From a verifiable register R (v0 = 0): SET = WRITE(1); SIGN(1);
     TEST = VERIFY(1), returning 1 iff the verify returns true.

   The sim backend (Testorset) reaches these same cores through the
   sticky/verifiable sim drivers, which additionally emit the historical
   Obs spans; the domains backend (Lnd_parallel) drives the composed
   programs below directly. Both execute identical access sequences. *)

open Lnd_support
open Machine
module S_core = Lnd_sticky.Sticky_core
module V_core = Lnd_verifiable.Verifiable_core

let one : Value.t = "1"

(* One namespace over both backends' registers; a concrete instance maps
   only the half its construction uses. *)
type reg = Sreg of S_core.reg | Vreg of V_core.reg

let[@lnd.pure] sreg r = Sreg r
let[@lnd.pure] vreg r = Vreg r

(* ---------------- From a sticky register ---------------- *)

let[@lnd.pure] set_sticky_prog ~n ~(q : Quorum.t) : (reg, unit) prog =
  map_reg sreg (S_core.write_prog ~n ~q one)

(* Returns (bit, new round counter); the driver owns the tester's
   persistent [ck]. *)
let[@lnd.pure] test_sticky_prog ~n ~(q : Quorum.t) ~pid ~ck :
    (reg, int * int) prog =
  let* res, ck = map_reg sreg (S_core.read_prog ~n ~q ~pid ~ck) in
  let bit =
    match res with Some v when Value.equal v one -> 1 | Some _ | None -> 0
  in
  ret (bit, ck)

let[@lnd.pure] help_sticky_prog ~n ~(q : Quorum.t) ~pid : (reg, unit) prog =
  map_reg sreg (S_core.help_prog ~n ~q ~pid)

(* ---------------- From a verifiable register ---------------- *)

(* SET = WRITE(1); SIGN(1). Returns (signed, the setter's updated local
   written-set); a correct setter's SIGN always succeeds. *)
let[@lnd.pure] set_verifiable_prog ~(written : Value.Set.t) :
    (reg, bool * Value.Set.t) prog =
  let* () = map_reg vreg (V_core.write_prog one) in
  let written = Value.Set.add one written in
  let* signed = map_reg vreg (V_core.sign_prog ~written one) in
  ret (signed, written)

let[@lnd.pure] test_verifiable_prog ~n ~(q : Quorum.t) ~pid ~ck :
    (reg, int * int) prog =
  let* ok, ck = map_reg vreg (V_core.verify_prog ~n ~q ~pid ~ck one) in
  ret ((if ok then 1 else 0), ck)

let[@lnd.pure] help_verifiable_prog ~n ~(q : Quorum.t) ~pid : (reg, unit) prog
    =
  map_reg vreg (V_core.help_prog ~n ~q ~pid)
