(* The register space of one simulated system.

   Allocation records ownership; [read]/[write] enforce the model's only
   restriction on Byzantine processes: nobody — Byzantine or not — can
   access the write port of a register it does not own, and SWSR registers
   are readable only by their designated reader. Access counters feed the
   cost tables of the benchmark harness. *)

open Lnd_support
module Obs = Lnd_obs.Obs

exception Permission_violation of { pid : int; reg : string; op : string }

(* One recorded access, for the optional execution trace. *)
type access = {
  acc_seq : int; (* global access sequence number *)
  acc_pid : int;
  acc_kind : [ `Read | `Write ];
  acc_reg : string;
  acc_value : Univ.t; (* value read, or value written *)
}

let pp_access fmt a =
  Format.fprintf fmt "#%d p%d %s %s = %a" a.acc_seq a.acc_pid
    (match a.acc_kind with `Read -> "reads " | `Write -> "writes")
    a.acc_reg Univ.pp a.acc_value

type t = {
  n : int; (* number of processes; pids are 0 .. n-1 *)
  mutable regs : Register.t list; (* most recent first *)
  mutable next_id : int;
  mutable total_reads : int;
  mutable total_writes : int;
  reads_by : int array; (* per-pid counters *)
  writes_by : int array;
  (* Optional bounded execution trace (a ring of the most recent
     accesses); enable with [set_trace]. *)
  mutable trace : access array option;
  mutable trace_next : int;
  (* Optional push-based access stream; enable with [set_observer].
     Called synchronously from [read]/[write], inside the accessing
     fiber's step, so the callback must not perform scheduler effects. *)
  mutable observer : (access -> unit) option;
}

let create ~n =
  if n < 1 then invalid_arg "Space.create: n must be >= 1";
  {
    n;
    regs = [];
    next_id = 0;
    total_reads = 0;
    total_writes = 0;
    reads_by = Array.make n 0;
    writes_by = Array.make n 0;
    trace = None;
    trace_next = 0;
    observer = None;
  }

(* Keep the last [capacity] accesses. *)
let set_trace t ~capacity =
  if capacity <= 0 then invalid_arg "Space.set_trace: capacity must be > 0";
  t.trace <-
    Some
      (Array.make capacity
         { acc_seq = -1; acc_pid = -1; acc_kind = `Read; acc_reg = "";
           acc_value = Univ.inj Univ.unit () });
  t.trace_next <- 0

let set_observer t f = t.observer <- f

let record_access t ~pid ~kind ~(reg : Register.t) ~value =
  if t.trace <> None || t.observer <> None then begin
    let seq = t.trace_next in
    let a =
      { acc_seq = seq; acc_pid = pid; acc_kind = kind;
        acc_reg = reg.Register.name; acc_value = value }
    in
    (match t.trace with
    | None -> ()
    | Some ring -> ring.(seq mod Array.length ring) <- a);
    t.trace_next <- seq + 1;
    match t.observer with None -> () | Some f -> f a
  end

(* The recorded accesses, oldest first. *)
let trace t : access list =
  match t.trace with
  | None -> []
  | Some ring ->
      let len = Array.length ring in
      let count = min t.trace_next len in
      List.init count (fun i ->
          ring.((t.trace_next - count + i) mod len))

let n t = t.n

let alloc t ~name ~owner ?single_reader ~init () : Register.t =
  if owner < 0 || owner >= t.n then invalid_arg "Space.alloc: bad owner";
  let readability =
    match single_reader with
    | None -> Register.Any_reader
    | Some p -> Register.Single_reader p
  in
  let r =
    {
      Register.id = t.next_id;
      name;
      owner;
      readability;
      init;
      value = init;
      read_count = 0;
      write_count = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.regs <- r :: t.regs;
  r

let read t ~by (r : Register.t) : Univ.t =
  if not (Register.may_read r ~by) then
    raise (Permission_violation { pid = by; reg = r.name; op = "read" });
  r.read_count <- r.read_count + 1;
  t.total_reads <- t.total_reads + 1;
  t.reads_by.(by) <- t.reads_by.(by) + 1;
  record_access t ~pid:by ~kind:`Read ~reg:r ~value:r.value;
  if Obs.enabled () then
    Obs.emit ~pid:by
      (Obs.Shm_access { access = `Read; reg = r.name; value = r.value });
  r.value

let write t ~by (r : Register.t) (v : Univ.t) : unit =
  if not (Register.may_write r ~by) then
    raise (Permission_violation { pid = by; reg = r.name; op = "write" });
  r.write_count <- r.write_count + 1;
  t.total_writes <- t.total_writes + 1;
  t.writes_by.(by) <- t.writes_by.(by) + 1;
  record_access t ~pid:by ~kind:`Write ~reg:r ~value:v;
  if Obs.enabled () then
    Obs.emit ~pid:by (Obs.Shm_access { access = `Write; reg = r.name; value = v });
  r.value <- v

(* Registers owned by [pid]; the "reset" adversary of Theorem 23 rewrites
   each of these back to its initial value (through ordinary writes). *)
let owned t ~pid = List.filter (fun (r : Register.t) -> r.owner = pid) t.regs

type stats = { reads : int; writes : int }

let stats t = { reads = t.total_reads; writes = t.total_writes }

let stats_of_pid t pid = { reads = t.reads_by.(pid); writes = t.writes_by.(pid) }

let diff ~before ~after =
  { reads = after.reads - before.reads; writes = after.writes - before.writes }

let pp_stats fmt { reads; writes } =
  Format.fprintf fmt "%d reads, %d writes" reads writes
