(** The register space of one simulated system.

    Allocation records ownership; {!read} and {!write} enforce the
    model's only restriction on Byzantine processes: nobody — Byzantine
    or not — can access the write port of a register it does not own, and
    SWSR registers are readable only by their designated reader. Access
    counters feed the benchmark cost tables. *)

open Lnd_support

exception Permission_violation of { pid : int; reg : string; op : string }

(** One recorded access, for the optional execution trace. *)
type access = {
  acc_seq : int; (** global access sequence number *)
  acc_pid : int;
  acc_kind : [ `Read | `Write ];
  acc_reg : string;
  acc_value : Univ.t; (** value read, or value written *)
}

val pp_access : Format.formatter -> access -> unit

type t

val create : n:int -> t
(** A space for processes [0 .. n-1]. *)

val n : t -> int

val set_trace : t -> capacity:int -> unit
(** Record the last [capacity] accesses (off by default). *)

val trace : t -> access list
(** The recorded accesses, oldest first; empty when tracing is off. *)

val set_observer : t -> (access -> unit) option -> unit
(** Push-based access stream: [f] is called synchronously on every
    read/write, inside the accessing fiber's step. The callback must not
    perform scheduler effects (no yields, no register accesses through
    {!Lnd_runtime.Sched}); it is meant for counters and footprint
    cross-checks in the model-checking harness. [None] disables it. *)

val alloc :
  t ->
  name:string ->
  owner:int ->
  ?single_reader:int ->
  init:Univ.t ->
  unit ->
  Register.t
(** Allocate a register. With [single_reader] it is SWSR; otherwise
    SWMR. *)

val read : t -> by:int -> Register.t -> Univ.t
(** Raises {!Permission_violation} if [by] may not read. *)

val write : t -> by:int -> Register.t -> Univ.t -> unit
(** Raises {!Permission_violation} if [by] is not the owner. *)

val owned : t -> pid:int -> Register.t list
(** Registers owned by [pid]; the Theorem 23 "reset" adversary rewrites
    each of these back to its initial value through ordinary writes. *)

(** {2 Access accounting} *)

type stats = { reads : int; writes : int }

val stats : t -> stats
val stats_of_pid : t -> int -> stats
val diff : before:stats -> after:stats -> stats
val pp_stats : Format.formatter -> stats -> unit
