(* A deterministic in-memory "disk" with explicit fsync barriers and
   injectable crash faults.

   Every file is a pair of byte buffers: the DURABLE bytes (what survives
   a crash) and the PENDING bytes (appended but not yet fsynced). [append]
   only touches the pending buffer; [fsync] moves pending into durable —
   that is the only durability barrier the disk offers, exactly like a
   POSIX file opened without O_SYNC.

   Crashes are injected two ways, both fully seeded through
   [Lnd_support.Rng] (no wall clock, no global randomness):

   - [arm_crash ~at_fsync:k] makes the k-th [fsync] call (counting every
     call on this disk, 1-based) fail mid-barrier: a seeded prefix of the
     file's pending bytes becomes durable — possibly with its last byte
     corrupted, modelling a torn sector write — and [Crashed] is raised.
     The arm is consumed by the crash, so recovery code can fsync freely.

   - [crash] models a whole-process crash at an arbitrary instant: every
     file's pending buffer is torn the same way (a seeded, possibly
     corrupted prefix survives; the rest is lost), and the disk remains
     usable for the recovery path.

   Readers ([read]) only ever see durable bytes, so "what would recovery
   find" is always directly observable. Consumers that need integrity
   against torn prefixes must checksum their records — that is {!Wal}'s
   job, not the disk's. *)

open Lnd_support
module Obs = Lnd_obs.Obs

exception Crashed

type file = { durable : Buffer.t; pending : Buffer.t }

type t = {
  files : (string, file) Hashtbl.t;
  rng : Rng.t; (* drives torn-write prefixes and corruption *)
  mutable fsyncs : int; (* fsync calls so far (attempts, crashed included) *)
  mutable crash_at : int option; (* absolute fsync index to crash at *)
  mutable crashes : int; (* crashes injected so far *)
}

let create ?(torn_seed = 0) () : t =
  {
    files = Hashtbl.create 8;
    rng = Rng.create ((torn_seed * 7919) + 5);
    fsyncs = 0;
    crash_at = None;
    crashes = 0;
  }

let find t ~file =
  match Hashtbl.find_opt t.files file with
  | Some f -> f
  | None ->
      let f = { durable = Buffer.create 256; pending = Buffer.create 256 } in
      Hashtbl.replace t.files file f;
      f

let append t ~file bytes = Buffer.add_string (find t ~file).pending bytes

(* A torn flush: a seeded prefix of [pending] reaches durable storage,
   and half the time the last surviving byte is corrupted (a torn sector
   write). The remainder of the buffer is lost. *)
let tear t (f : file) =
  let pending = Buffer.contents f.pending in
  Buffer.clear f.pending;
  let len = String.length pending in
  if len > 0 then begin
    let keep = Rng.int t.rng (len + 1) in
    let kept = Bytes.of_string (String.sub pending 0 keep) in
    if keep > 0 && Rng.bool t.rng then
      Bytes.set kept (keep - 1)
        (Char.chr (Char.code (Bytes.get kept (keep - 1)) lxor 0x5a));
    Buffer.add_bytes f.durable kept
  end

let fsync t ~file =
  let f = find t ~file in
  t.fsyncs <- t.fsyncs + 1;
  match t.crash_at with
  | Some k when t.fsyncs >= k ->
      t.crash_at <- None (* the arm is consumed: recovery fsyncs succeed *);
      t.crashes <- t.crashes + 1;
      if Obs.enabled () then
        Obs.emit
          (Obs.Disk_crash { torn = (if Buffer.length f.pending > 0 then 1 else 0) });
      tear t f;
      raise Crashed
  | _ ->
      Buffer.add_buffer f.durable f.pending;
      Buffer.clear f.pending

let crash t =
  t.crashes <- t.crashes + 1;
  t.crash_at <- None;
  let files = Tables.sorted_bindings t.files in
  if Obs.enabled () then begin
    let torn =
      List.length
        (List.filter (fun (_, f) -> Buffer.length f.pending > 0) files)
    in
    Obs.emit (Obs.Disk_crash { torn })
  end;
  List.iter (fun (_, f) -> tear t f) files

let read t ~file =
  match Hashtbl.find_opt t.files file with
  | Some f -> Buffer.contents f.durable
  | None -> ""

let exists t ~file = Hashtbl.mem t.files file
let delete t ~file = Hashtbl.remove t.files file

let list_files t =
  List.map fst (Tables.sorted_bindings t.files)

let fsync_count t = t.fsyncs
let crash_count t = t.crashes
let arm_crash t ~at_fsync = t.crash_at <- Some at_fsync
let disarm t = t.crash_at <- None
