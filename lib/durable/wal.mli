(** A checksummed append-only write-ahead log over {!Disk}, with
    periodic snapshots that truncate the log.

    Records are opaque newline-free strings. Each is framed with a kind
    byte, a length prefix and an FNV-1a 64 checksum; decoding stops at
    the first torn or corrupted frame, so the prefix a crash leaves
    behind is recovered exactly and nothing corrupt is ever replayed.

    The log for [name] lives in one generation file at a time
    ("name.<gen>"). {!snapshot} writes the compacted state as the
    leading frame of a fresh generation, fsyncs it, and only then
    deletes the old generation — at every instant at least one durable,
    decodable generation exists, and {!recover} replays the newest valid
    one (snapshot records first, tail records after, in one list —
    callers use a single replayable record grammar for both).

    Durability contract for callers: a record is durable once {!sync}
    (or {!snapshot}) returns after its {!append}. "Journal, sync, only
    then speak": state a process exposes to others must be synced
    first — that is what makes recovery monotone (see
    [Lnd_msgpass.Rlink] / [Lnd_msgpass.Regemu]). *)

type t

val create : Disk.t -> name:string -> t
(** A fresh, empty log (generation 0). Use {!recover} to reopen one. *)

val append : t -> string -> unit
(** Buffer one record (not durable until {!sync}). Raises
    [Invalid_argument] on records containing a newline. *)

val sync : t -> unit
(** Durability barrier: fsync the log file iff records were appended
    since the last barrier. May raise {!Disk.Crashed} under injection. *)

val appended : t -> int
(** Records appended since the last snapshot — the input to a periodic
    snapshot policy. *)

val snapshot : t -> string list -> unit
(** Write [records] (the caller's compacted state, in the same grammar
    as appended records) as a new generation and truncate the old log.
    May raise {!Disk.Crashed} under injection; the old generation then
    survives intact. *)

val recover : Disk.t -> name:string -> string list * t
(** Replay the newest valid generation: all durable records (snapshot
    records first), and a log handle positioned to keep appending to
    that generation. Stale and torn generations are deleted. *)

type stats = {
  appends : int;
  syncs : int;  (** fsync barriers actually issued (dirty-only) *)
  snapshots : int;
  bytes : int;  (** payload bytes framed *)
}

val stats : t -> stats
