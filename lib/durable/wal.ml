(* A checksummed append-only write-ahead log over {!Disk}, with periodic
   snapshots that truncate the log.

   Frame layout (binary, little-endian):

     [kind: 1 byte 'R'|'S'] [len: 4 bytes] [fnv1a64(payload): 8 bytes]
     [payload: len bytes]

   'R' frames carry one record; an 'S' frame carries a whole snapshot
   (the caller's records joined by '\n') and is only ever the FIRST
   frame of a generation file. Decoding stops at the first frame that is
   short, oversized, of unknown kind, or checksum-mismatched — exactly
   the torn tail a crash between append and fsync leaves behind, so a
   torn prefix can never smuggle a corrupted record into recovery.

   Generations: the log for [name] lives in the single file
   "name.<gen>". [snapshot] writes a fresh generation — snapshot frame,
   fsync, only THEN delete the old generation — so at every instant at
   least one durable, decodable generation exists: a crash during the
   new generation's fsync leaves its first frame torn (the generation is
   invalid and recovery falls back to the old one); a crash after the
   fsync but before the delete leaves two valid generations and recovery
   prefers the newer. [recover] scans generations newest-first and
   replays the first one whose leading frame decodes.

   Records must not contain '\n' (they are newline-joined inside
   snapshot frames); [append] enforces this. *)

module Obs = Lnd_obs.Obs

type t = {
  disk : Disk.t;
  name : string;
  mutable gen : int;
  mutable dirty : bool; (* appended frames not yet fsynced *)
  mutable since_snapshot : int; (* records appended since the last snapshot *)
  mutable dirty_at : int; (* clock at the first unsynced append *)
  mutable unsynced : int; (* records appended since the last barrier *)
  mutable st_appends : int;
  mutable st_syncs : int;
  mutable st_snapshots : int;
  mutable st_bytes : int; (* payload bytes framed *)
}

let gen_file name gen = Printf.sprintf "%s.%d" name gen

let file t = gen_file t.name t.gen

(* FNV-1a 64-bit over the payload. *)
let fnv1a64 (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let frame ~kind payload =
  let len = String.length payload in
  let b = Bytes.create (13 + len) in
  Bytes.set b 0 kind;
  Bytes.set_int32_le b 1 (Int32.of_int len);
  Bytes.set_int64_le b 5 (fnv1a64 payload);
  Bytes.blit_string payload 0 b 13 len;
  Bytes.to_string b

(* Decode the frames of [bytes]; stop at the first torn/corrupt frame. *)
let decode (bytes : string) : (char * string) list =
  let total = String.length bytes in
  let out = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos + 13 <= total do
    let b = Bytes.unsafe_of_string bytes in
    let kind = Bytes.get b !pos in
    let len = Int32.to_int (Bytes.get_int32_le b (!pos + 1)) in
    let sum = Bytes.get_int64_le b (!pos + 5) in
    if (kind <> 'R' && kind <> 'S') || len < 0 || !pos + 13 + len > total
    then ok := false
    else begin
      let payload = String.sub bytes (!pos + 13) len in
      if fnv1a64 payload <> sum then ok := false
      else begin
        out := (kind, payload) :: !out;
        pos := !pos + 13 + len
      end
    end
  done;
  List.rev !out

let create disk ~name : t =
  {
    disk;
    name;
    gen = 0;
    dirty = false;
    since_snapshot = 0;
    dirty_at = 0;
    unsynced = 0;
    st_appends = 0;
    st_syncs = 0;
    st_snapshots = 0;
    st_bytes = 0;
  }

let append t record =
  if String.contains record '\n' then
    invalid_arg "Wal.append: records must not contain newlines";
  Disk.append t.disk ~file:(file t) (frame ~kind:'R' record);
  if not t.dirty then t.dirty_at <- Obs.now ();
  t.dirty <- true;
  t.since_snapshot <- t.since_snapshot + 1;
  t.unsynced <- t.unsynced + 1;
  t.st_appends <- t.st_appends + 1;
  t.st_bytes <- t.st_bytes + String.length record;
  if Obs.enabled () then
    Obs.emit (Obs.Wal_append { bytes = String.length record })

let sync t =
  if t.dirty then begin
    t.st_syncs <- t.st_syncs + 1;
    t.dirty <- false (* even a crashed fsync consumes the pending bytes *);
    if Obs.enabled () then begin
      Obs.emit
        (Obs.Wal_sync
           { records = t.unsynced; latency = Obs.now () - t.dirty_at })
    end;
    t.unsynced <- 0;
    Disk.fsync t.disk ~file:(file t)
  end

let appended t = t.since_snapshot

let split_snapshot payload =
  if payload = "" then [] else String.split_on_char '\n' payload

let snapshot t records =
  List.iter
    (fun r ->
      if String.contains r '\n' then
        invalid_arg "Wal.snapshot: records must not contain newlines")
    records;
  let old = file t in
  let next = t.gen + 1 in
  Disk.append t.disk ~file:(gen_file t.name next)
    (frame ~kind:'S' (String.concat "\n" records));
  t.st_snapshots <- t.st_snapshots + 1;
  t.st_syncs <- t.st_syncs + 1;
  (* the crash window: an armed crash here tears the NEW generation,
     whose snapshot frame then fails to decode — the old generation is
     still durable and recovery falls back to it *)
  Disk.fsync t.disk ~file:(gen_file t.name next);
  Disk.delete t.disk ~file:old;
  t.gen <- next;
  t.dirty <- false;
  t.unsynced <- 0;
  if Obs.enabled () then
    Obs.emit (Obs.Wal_snapshot { records = List.length records });
  t.since_snapshot <- 0;
  t.st_bytes <- t.st_bytes + List.fold_left (fun a r -> a + String.length r) 0 records

(* All generations of [name] on [disk], newest first. *)
let generations disk ~name =
  let prefix = name ^ "." in
  List.filter_map
    (fun f ->
      if String.starts_with ~prefix f then
        int_of_string_opt
          (String.sub f (String.length prefix)
             (String.length f - String.length prefix))
      else None)
    (Disk.list_files disk)
  |> List.sort (fun a b -> compare b a)

let recover disk ~name : string list * t =
  let rec pick = function
    | [] -> (0, [])
    | gen :: rest -> (
        let frames = decode (Disk.read disk ~file:(gen_file name gen)) in
        match frames with
        | ('S', payload) :: records ->
            (gen, split_snapshot payload @ List.map snd records)
        | ('R', _) :: _ when gen = 0 ->
            (* generation 0 never starts with a snapshot *)
            (gen, List.map snd frames)
        | _ ->
            (* torn leading frame: this generation never became durable *)
            pick rest)
  in
  let gen, records =
    match generations disk ~name with [] -> (0, []) | gens -> pick gens
  in
  (* drop stale generations (an interrupted truncation leaves the old
     one behind) and any torn newer generation *)
  List.iter
    (fun g -> if g <> gen then Disk.delete disk ~file:(gen_file name g))
    (generations disk ~name);
  (* Truncate the torn tail before reuse: a crash mid-fsync can leave a
     corrupt partial frame after the last valid one. Appending new
     frames BEHIND that garbage would make them undecodable — a later
     recovery would silently roll the log back to the tear, losing
     records that were fsynced after this recovery (e.g. the new
     incarnation's epoch). Rewriting the surviving frames restores the
     invariant that the durable file is a clean frame sequence. *)
  let raw = Disk.read disk ~file:(gen_file name gen) in
  let frames = decode raw in
  let clean =
    String.concat "" (List.map (fun (k, p) -> frame ~kind:k p) frames)
  in
  if String.length clean <> String.length raw then begin
    Disk.delete disk ~file:(gen_file name gen);
    Disk.append disk ~file:(gen_file name gen) clean;
    Disk.fsync disk ~file:(gen_file name gen)
  end;
  let t = create disk ~name in
  t.gen <- gen;
  if Obs.enabled () then
    Obs.emit (Obs.Wal_recover { records = List.length records });
  (records, t)

type stats = { appends : int; syncs : int; snapshots : int; bytes : int }

let stats t =
  {
    appends = t.st_appends;
    syncs = t.st_syncs;
    snapshots = t.st_snapshots;
    bytes = t.st_bytes;
  }
