(** A deterministic in-memory "disk" with explicit fsync barriers and
    injectable crash faults.

    Files are append-only byte streams split into a durable part (what a
    crash preserves) and a pending part ({!append}ed but not yet
    {!fsync}ed). Crashes — armed at a chosen fsync boundary with
    {!arm_crash}, or injected at an arbitrary instant with {!crash} —
    lose the pending bytes except for a seeded, possibly
    corrupted-at-the-tail prefix, modelling torn sector writes. All tear
    decisions flow from [Lnd_support.Rng], so crash outcomes replay
    exactly from [torn_seed].

    The disk offers no integrity: rejecting torn prefixes is the log
    layer's job ({!Wal} checksums its frames). Protocol code must not
    touch this module directly (the [lnd_lint] rule [durable-seam]);
    persistence goes through {!Wal}. *)

exception Crashed
(** Raised by {!fsync} when an armed crash fires. The fiber performing
    the fsync dies mid-barrier, exactly like a process crashing inside
    [fsync(2)]. *)

type t

val create : ?torn_seed:int -> unit -> t

val append : t -> file:string -> string -> unit
(** Append to the file's pending buffer. Not durable until {!fsync}. *)

val fsync : t -> file:string -> unit
(** Durability barrier: move the file's pending bytes into its durable
    bytes. Raises {!Crashed} (after a seeded torn flush) when an armed
    crash fires at this call. *)

val read : t -> file:string -> string
(** The durable bytes only — what recovery would find. *)

val exists : t -> file:string -> bool

val delete : t -> file:string -> unit
(** Remove a file (assumed atomic, like a journalled unlink). *)

val list_files : t -> string list
(** All file names, sorted. *)

val fsync_count : t -> int
(** Total fsync calls so far (crashed attempts included). *)

val crash_count : t -> int
(** Crashes injected so far ({!crash} calls plus fired arms). *)

val arm_crash : t -> at_fsync:int -> unit
(** Make the [at_fsync]-th fsync call (1-based, counted from disk
    creation) crash. Firing consumes the arm. *)

val disarm : t -> unit

val crash : t -> unit
(** Whole-process crash now: tear every file's pending buffer. The disk
    stays usable for the recovery path. *)
