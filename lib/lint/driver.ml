(* File discovery + parse + rule dispatch. Kept CLI-free so the test
   suite can drive the identical pipeline in-process. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?ctx path : Findings.t list =
  let ctx = match ctx with Some c -> c | None -> Rules.default_ctx ~path in
  let has_mli = Sys.file_exists (path ^ "i") in
  match
    let source = read_file path in
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf path;
    Parse.implementation lexbuf
  with
  | str -> Rules.run ctx ~file:path ~has_mli str
  | exception exn ->
      let line, col =
        match exn with
        | Syntaxerr.Error e ->
            let p = (Syntaxerr.location_of_error e).Location.loc_start in
            (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
        | _ -> (1, 0)
      in
      [
        {
          Findings.rule = "parse-error";
          file = path;
          line;
          col;
          msg = Printexc.to_string exn;
        };
      ]

(* Directories that must never be linted: build artefacts, VCS state,
   and the deliberately-bad fixture trees the lint tests feed on. *)
let skip_dirs = [ "_build"; ".git"; "fixtures" ]

let scan (paths : string list) : (string list, string) result =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             if List.mem entry skip_dirs then acc
             else walk acc (Filename.concat path entry))
           acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some missing -> Error (Printf.sprintf "no such file or directory: %s" missing)
  | None -> Ok (List.fold_left walk [] paths |> List.sort String.compare)

let lint_paths (paths : string list) : (Findings.t list, string) result =
  match scan paths with
  | Error _ as e -> e
  | Ok files ->
      Ok
        (List.concat_map (fun f -> lint_file f) files
        |> List.sort Findings.compare)
