type t = {
  rule : string;
  file : string;
  line : int; (* 1-based *)
  col : int; (* 0-based, bytes *)
  msg : string;
}

let compare (a : t) (b : t) =
  Stdlib.compare (a.file, a.line, a.col, a.rule, a.msg)
    (b.file, b.line, b.col, b.rule, b.msg)

let pp_human fmt (f : t) =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

(* Minimal JSON string escaping — enough for file paths and the messages
   the rules produce (no dependency on a JSON library). *)
let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_json fmt (f : t) =
  Format.fprintf fmt
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg)

let report ~json fmt (fs : t list) =
  if json then begin
    Format.fprintf fmt "[";
    List.iteri
      (fun i f ->
        if i > 0 then Format.fprintf fmt ",";
        Format.fprintf fmt "@\n  %a" pp_json f)
      fs;
    if fs <> [] then Format.fprintf fmt "@\n";
    Format.fprintf fmt "]@."
  end
  else begin
    List.iter (fun f -> Format.fprintf fmt "%a@\n" pp_human f) fs;
    Format.fprintf fmt "%d finding%s@."
      (List.length fs)
      (if List.length fs = 1 then "" else "s")
  end
