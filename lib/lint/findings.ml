type t = {
  rule : string;
  file : string;
  line : int; (* 1-based *)
  col : int; (* 0-based, bytes *)
  msg : string;
}

let compare (a : t) (b : t) =
  Stdlib.compare (a.file, a.line, a.col, a.rule, a.msg)
    (b.file, b.line, b.col, b.rule, b.msg)

let pp_human fmt (f : t) =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

(* Minimal JSON string escaping — enough for file paths and the messages
   the rules produce (no dependency on a JSON library). *)
let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_json fmt (f : t) =
  Format.fprintf fmt
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg)

(* SARIF 2.1.0, the interchange format code-scanning UIs ingest. One
   run, one driver, rule metadata from the tool's catalogue, one result
   per finding. Emitted by hand like pp_json — strict RFC 8259 output,
   no JSON library dependency (test/jsonchk.ml validates it). *)
let to_sarif ~(tool : string) ~(rules : (string * string) list)
    (fs : t list) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n";
  add "    {\n";
  add "      \"tool\": {\n";
  add "        \"driver\": {\n";
  add "          \"name\": \"%s\",\n" (json_escape tool);
  add "          \"rules\": [";
  List.iteri
    (fun i (name, desc) ->
      add "%s\n            {\"id\": \"%s\", \"shortDescription\": {\"text\": \
           \"%s\"}}"
        (if i > 0 then "," else "")
        (json_escape name) (json_escape desc))
    rules;
  add "\n          ]\n";
  add "        }\n";
  add "      },\n";
  add "      \"results\": [";
  List.iteri
    (fun i f ->
      add
        "%s\n        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": \
         {\"text\": \"%s\"}, \"locations\": [{\"physicalLocation\": \
         {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": \
         {\"startLine\": %d, \"startColumn\": %d}}}]}"
        (if i > 0 then "," else "")
        (json_escape f.rule) (json_escape f.msg) (json_escape f.file) f.line
        (f.col + 1))
    fs;
  add "\n      ]\n";
  add "    }\n";
  add "  ]\n";
  add "}\n";
  Buffer.contents b

let report ~json fmt (fs : t list) =
  if json then begin
    Format.fprintf fmt "[";
    List.iteri
      (fun i f ->
        if i > 0 then Format.fprintf fmt ",";
        Format.fprintf fmt "@\n  %a" pp_json f)
      fs;
    if fs <> [] then Format.fprintf fmt "@\n";
    Format.fprintf fmt "]@."
  end
  else begin
    List.iter (fun f -> Format.fprintf fmt "%a@\n" pp_human f) fs;
    Format.fprintf fmt "%d finding%s@."
      (List.length fs)
      (if List.length fs = 1 then "" else "s")
  end
