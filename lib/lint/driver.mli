(** The lint driver: file discovery, parsing, and per-file rule
    dispatch. The CLI in [bin/lnd_lint.ml] is a thin shell over this so
    the test suite can run the whole pipeline in-process. *)

val lint_file : ?ctx:Rules.ctx -> string -> Findings.t list
(** Parse one [.ml] file and run every rule over it. [ctx] defaults to
    {!Rules.default_ctx} for the file's path; tests override it to force
    protocol rules on for fixtures. A file that does not parse yields a
    single [parse-error] finding. The [interface-hygiene] check consults
    the filesystem for a sibling [.mli]. *)

val scan : string list -> (string list, string) result
(** Expand paths into the sorted list of [.ml] files beneath them
    (files are taken as-is), skipping [_build], [.git], and [fixtures]
    directories — fixture trees are deliberately-bad lint food, not part
    of the production surface. [Error] names the first missing path. *)

val lint_paths : string list -> (Findings.t list, string) result
(** [scan], then {!lint_file} on each with default contexts; findings
    come back sorted by {!Findings.compare}. *)
