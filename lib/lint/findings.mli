(** Lint findings: the one record every rule produces, with a
    deterministic ordering and the driver's two output formats. *)

type t = {
  rule : string;  (** rule name from {!Rules.catalogue} *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, in bytes *)
  msg : string;
}

val compare : t -> t -> int
(** Order by (file, line, col, rule, msg) — the report order. *)

val pp_human : Format.formatter -> t -> unit
(** [file:line:col: [rule] message] — one line, editor-clickable. *)

val pp_json : Format.formatter -> t -> unit
(** One JSON object with fields [file], [line], [col], [rule],
    [message]. *)

val to_sarif : tool:string -> rules:(string * string) list -> t list -> string
(** A complete SARIF 2.1.0 log (one run, [level] "error" results,
    1-based columns) for code-scanning ingestion. [rules] is the tool's
    catalogue, embedded as driver rule metadata. Strict RFC 8259
    output. *)

val report : json:bool -> Format.formatter -> t list -> unit
(** Print a full (already sorted) report: a JSON array, or one human
    line per finding plus a trailing count. *)
