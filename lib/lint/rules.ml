(* The protocol-aware rules, as one Ast_iterator pass per file.

   The walk accumulates raw findings and [@lnd.allow] suppression spans
   side by side, then filters: a finding survives unless an enclosing
   expression/binding (or the whole file, for floating [@@@lnd.allow])
   allows its rule. Spans are compared by byte offset, which is robust
   against any pretty-printing concerns — we only ever look at locations
   the parser produced for this exact source text. *)

open Parsetree

type ctx = {
  rng_free : bool;
  ordered_iter : bool;
  quorum : bool;
  seam : bool;
  swallow : bool;
  need_mli : bool;
  durable : bool;
  obs : bool;
}

let catalogue =
  [
    ( "determinism",
      "no Random.*/Sys.time/Unix.gettimeofday outside lib/support/rng.ml; \
       no unordered Hashtbl.iter/fold/to_seq* in protocol, fuzz or \
       runtime code (the scheduler and the Explore model checker replay \
       schedules step-for-step; bucket order would diverge them)" );
    ( "quorum-arithmetic",
      "no inline n-f / f+1 / 2*f+1 / 3*f+1 in protocol libraries; \
       thresholds come from Lnd_support.Quorum" );
    ( "transport-seam",
      "protocol code talks through the Transport record, never Net.* \
       directly" );
    ( "durable-seam",
      "protocol code never constructs or touches Lnd_durable.Disk \
       directly; persistence flows through the Wal append/sync/snapshot \
       API (which owns the checksummed framing and crash semantics)" );
    ( "obs-seam",
      "protocol code never prints to the std streams directly \
       (print_* / Printf.printf / Format.eprintf); diagnostics flow \
       through the Lnd_obs.Obs sink, which stays silent and free under \
       the default Null sink" );
    ("exception-swallowing", "no catch-all `try ... with _ ->`");
    ("interface-hygiene", "every lib/**/*.ml has a sibling .mli");
    ( "suppression-hygiene",
      "[@lnd.allow] must name a known rule and justify itself: \
       \"rule: why this is sound\"" );
    ("parse-error", "the file must parse (driver-level)");
  ]

(* The typedtree-level rules enforced by lnd_sem (lib/sem). They live in
   the same namespace so [@lnd.allow "sem-...: justification"] passes
   suppression-hygiene here, and so the two drivers present one combined
   rule catalogue. *)
let sem_catalogue =
  [
    ( "sem-ordering",
      "journal, sync, only then speak: on every intraprocedural path, a \
       Wal.append must reach a Wal.sync/snapshot barrier before any \
       Transport send exposes the journalled state (interprocedural via \
       per-function effect summaries)" );
    ( "sem-sign",
      "sign before send: a locally fabricated signature-carrying claim \
       (cert, signature record) may not reach a send or register write \
       unless Sigoracle.sign was called first on that path; \
       constructing a signature record outside lib/crypto is always a \
       finding" );
    ( "sem-verify",
      "verify before trust: signature-carrying data obtained from a \
       register read or transport poll may not flow into register state \
       or a send unless Sigoracle.verify (or a verify-calling helper) \
       appears on the path before the sink" );
    ( "sem-pure",
      "[@lnd.pure] bodies are effect-free: no mutation of non-local \
       state, no Effect.perform, no scheduler/Transport/Wal/Obs calls, \
       no ambient randomness or printing; local callees must be \
       transitively pure" );
  ]

let rule_names = List.map fst catalogue @ List.map fst sem_catalogue

(* ---------------- Path classification ---------------- *)

let norm path = String.map (fun c -> if c = '\\' then '/' else c) path

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let in_dir dir p =
  String.starts_with ~prefix:(dir ^ "/") p || contains ~needle:("/" ^ dir ^ "/") p

let protocol_dirs =
  [
    "lib/sticky";
    "lib/verifiable";
    "lib/msgpass";
    "lib/broadcast";
    "lib/byz";
    "lib/fuzz";
    "lib/durable";
    "lib/audit";
  ]

(* The determinism rule's unordered-iteration arm additionally covers
   the runtime: Sched replays recorded fiber trails and Explore proves
   schedule-space exhaustion by replaying prefixes step-for-step, so an
   unspecified (and randomizable) Hashtbl bucket order anywhere in that
   machinery silently breaks counterexample replay. lib/parallel rides
   along: its sim driver renders the byte-identical golden baselines,
   so its iteration order is equally load-bearing. *)
let ordered_iter_dirs = "lib/runtime" :: "lib/parallel" :: protocol_dirs

let quorum_dirs =
  [ "lib/sticky"; "lib/verifiable"; "lib/msgpass"; "lib/audit" ]

(* lib/runtime and lib/parallel ride along: the domains driver and the
   differential suite run with the Null sink in tests, so a stray
   print_* there would break the byte-identical golden baselines just
   as surely as one in a protocol core. *)
let obs_dirs =
  [
    "lib/sticky";
    "lib/verifiable";
    "lib/msgpass";
    "lib/broadcast";
    "lib/audit";
    "lib/runtime";
    "lib/parallel";
  ]

(* The files that ARE the transport: they implement the stack below the
   seam, so of course they touch Net. *)
let transport_layer_files =
  [
    "lib/msgpass/net.ml";
    "lib/msgpass/faultnet.ml";
    "lib/msgpass/rlink.ml";
    "lib/msgpass/transport.ml";
  ]

let default_ctx ~path =
  let p = norm path in
  let protocol = List.exists (fun d -> in_dir d p) protocol_dirs in
  let transport_layer =
    List.exists (fun t -> String.ends_with ~suffix:t p) transport_layer_files
  in
  {
    rng_free = not (String.ends_with ~suffix:"lib/support/rng.ml" p);
    ordered_iter = List.exists (fun d -> in_dir d p) ordered_iter_dirs;
    quorum = List.exists (fun d -> in_dir d p) quorum_dirs;
    seam = protocol && not transport_layer;
    swallow = true;
    need_mli = in_dir "lib" p;
    (* lib/durable IS the durable layer (Wal sits on Disk by design) *)
    durable = protocol && not (in_dir "lib/durable" p);
    obs = List.exists (fun d -> in_dir d p) obs_dirs;
  }

(* ---------------- Suppressions ---------------- *)

type span = { sp_rule : string; sp_start : int; sp_end : int }

let allow_payload (attr : attribute) : string option option =
  (* [Some (Some s)] = string payload, [Some None] = malformed payload,
     [None] = not an [@lnd.allow] at all. *)
  if attr.attr_name.txt <> "lnd.allow" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some (Some s)
    | _ -> Some None

let parse_allow (s : string) : string * string =
  match String.index_opt s ':' with
  | None -> (String.trim s, "")
  | Some i ->
      ( String.trim (String.sub s 0 i),
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )

(* ---------------- The per-file pass ---------------- *)

let run (ctx : ctx) ~file ~has_mli (str : structure) : Findings.t list =
  let raw : (int * Findings.t) list ref = ref [] in
  let spans : span list ref = ref [] in
  let file_allows : string list ref = ref [] in
  let add ~(loc : Location.t) rule msg =
    let p = loc.Location.loc_start in
    raw :=
      ( p.Lexing.pos_cnum,
        {
          Findings.rule;
          file;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          msg;
        } )
      :: !raw
  in
  (* Record one [@lnd.allow] and police its shape. [span = None] means a
     floating attribute: the whole file. *)
  let note_allow ~(span : Location.t option) (attr : attribute) =
    match allow_payload attr with
    | None -> ()
    | Some None ->
        add ~loc:attr.attr_loc "suppression-hygiene"
          "[@lnd.allow] payload must be a string literal \
           \"rule: justification\""
    | Some (Some s) ->
        let rule, justification = parse_allow s in
        if not (List.mem rule rule_names) then
          add ~loc:attr.attr_loc "suppression-hygiene"
            (Printf.sprintf "[@lnd.allow] names unknown rule %S" rule);
        if justification = "" then
          add ~loc:attr.attr_loc "suppression-hygiene"
            (Printf.sprintf
               "suppression of %S carries no justification (want \
                \"%s: why this is sound\")"
               rule rule);
        (match span with
        | None -> file_allows := rule :: !file_allows
        | Some l ->
            spans :=
              {
                sp_rule = rule;
                sp_start = l.Location.loc_start.Lexing.pos_cnum;
                sp_end = l.Location.loc_end.Lexing.pos_cnum;
              }
              :: !spans)
  in
  (* -------- determinism + transport-seam: banned identifiers -------- *)
  let check_ident ~loc (id : Longident.t) =
    match id with
    | Ldot (Lident "Random", _) when ctx.rng_free ->
        add ~loc "determinism"
          "direct Random.* use; all randomness flows through \
           Lnd_support.Rng (lib/support/rng.ml) so runs replay from seeds"
    | Ldot (Lident "Sys", "time") when ctx.rng_free ->
        add ~loc "determinism"
          "wall-clock read (Sys.time); the simulator's only clock is the \
           scheduler's logical clock"
    | Ldot (Lident "Unix", ("time" | "gettimeofday")) when ctx.rng_free ->
        add ~loc "determinism"
          "wall-clock read (Unix.*); the simulator's only clock is the \
           scheduler's logical clock"
    | Ldot (Lident "Hashtbl", (("iter" | "fold") as op))
      when ctx.ordered_iter ->
        add ~loc "determinism"
          (Printf.sprintf
             "unordered Hashtbl.%s in protocol/fuzz code (bucket order is \
              unspecified and randomizable); use \
              Lnd_support.Tables.%s_sorted or justify with [@lnd.allow]"
             op
             (if op = "iter" then "iter" else "fold"))
    | Ldot (Lident "Hashtbl", (("to_seq" | "to_seq_keys" | "to_seq_values") as op))
      when ctx.ordered_iter ->
        add ~loc "determinism"
          (Printf.sprintf
             "Hashtbl.%s enumerates in unspecified (randomizable) bucket \
              order, exactly like Hashtbl.iter; sort through \
              Lnd_support.Tables or justify with [@lnd.allow]"
             op)
    | (Ldot (Lident "Net", _) | Ldot (Ldot (_, "Net"), _)) when ctx.seam ->
        add ~loc "transport-seam"
          "direct Net access in protocol code; send and receive through \
           the Transport record seam so the same code runs over Net, \
           Faultnet and Rlink"
    | (Ldot (Lident "Disk", _) | Ldot (Ldot (_, "Disk"), _))
      when ctx.durable ->
        add ~loc "durable-seam"
          "direct Disk access in protocol code; journal through the Wal \
           append/sync/snapshot API, which owns the checksummed framing \
           and crash semantics"
    | Lident
        (( "print_string" | "print_endline" | "print_newline" | "print_int"
         | "print_char" | "print_float" | "prerr_string" | "prerr_endline" )
         as fn)
      when ctx.obs ->
        add ~loc "obs-seam"
          (Printf.sprintf
             "direct %s in protocol code; emit a typed event through the \
              Lnd_obs.Obs sink instead — the default Null sink keeps runs \
              silent, replayable and byte-identical"
             fn)
    | Ldot (Lident (("Printf" | "Format") as m), (("printf" | "eprintf") as fn))
      when ctx.obs ->
        add ~loc "obs-seam"
          (Printf.sprintf
             "direct %s.%s in protocol code; emit a typed event through \
              the Lnd_obs.Obs sink instead — the default Null sink keeps \
              runs silent, replayable and byte-identical"
             m fn)
    | _ -> ()
  in
  (* -------- quorum-arithmetic: inline threshold formulas -------- *)
  let last_name (e : expression) : string option =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match Longident.flatten txt with
        | [] -> None
        | l -> Some (List.nth l (List.length l - 1)))
    | Pexp_field (_, { txt; _ }) -> (
        match Longident.flatten txt with
        | [] -> None
        | l -> Some (List.nth l (List.length l - 1)))
    | _ -> None
  in
  let is_f_like e =
    match last_name e with
    | Some s -> s = "f" || String.ends_with ~suffix:"_f" s
    | None -> false
  in
  let is_int_const k e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_integer (s, None)) -> s = string_of_int k
    | _ -> false
  in
  let check_quorum ~loc (e : expression) =
    if ctx.quorum then
      match e.pexp_desc with
      | Pexp_apply
          ({ pexp_desc = Pexp_ident { txt = Lident op; _ }; _ },
           [ (Nolabel, a); (Nolabel, b) ]) -> (
          match op with
          | "-" when is_f_like b ->
              add ~loc "quorum-arithmetic"
                "inline availability threshold (… - f); use \
                 Quorum.availability / Quorum.has_availability"
          | "*" when (is_int_const 2 a && is_f_like b)
                     || (is_int_const 2 b && is_f_like a) ->
              add ~loc "quorum-arithmetic"
                "inline Byzantine quorum (2*f …); use Quorum.byz_quorum / \
                 Quorum.has_byz_quorum"
          | "*" when (is_int_const 3 a && is_f_like b)
                     || (is_int_const 3 b && is_f_like a) ->
              add ~loc "quorum-arithmetic"
                "inline minimal system size (3*f …); use Quorum.min_system"
          | "+" when (is_f_like a && is_int_const 1 b)
                     || (is_f_like b && is_int_const 1 a) ->
              add ~loc "quorum-arithmetic"
                "inline one-correct threshold (f + 1); use \
                 Quorum.one_correct / Quorum.has_one_correct"
          | _ -> ())
      | _ -> ()
  in
  (* -------- the iterator -------- *)
  let super = Ast_iterator.default_iterator in
  let expr it (e : expression) =
    List.iter (note_allow ~span:(Some e.pexp_loc)) e.pexp_attributes;
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ~loc txt
    | Pexp_try (_, cases) when ctx.swallow ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_any ->
                add ~loc:c.pc_lhs.ppat_loc "exception-swallowing"
                  "catch-all `with _ ->` swallows assertion failures and \
                   scheduler-kill exceptions; match the specific \
                   exceptions you mean to handle"
            | _ -> ())
          cases
    | _ -> ());
    check_quorum ~loc:e.pexp_loc e;
    super.expr it e
  in
  let value_binding it (vb : value_binding) =
    List.iter (note_allow ~span:(Some vb.pvb_loc)) vb.pvb_attributes;
    super.value_binding it vb
  in
  let structure_item it (si : structure_item) =
    (match si.pstr_desc with
    | Pstr_attribute attr -> note_allow ~span:None attr
    | _ -> ());
    super.structure_item it si
  in
  let it = { super with expr; value_binding; structure_item } in
  it.structure it str;
  if ctx.need_mli && not has_mli then
    raw :=
      ( 0,
        {
          Findings.rule = "interface-hygiene";
          file;
          line = 1;
          col = 0;
          msg =
            "no .mli: every library module declares its interface (the \
             transparent-record idiom included — transparency is a \
             deliberate, documented choice, not an accident of omission)";
        } )
      :: !raw;
  let suppressed (off, (fd : Findings.t)) =
    List.mem fd.rule !file_allows
    || List.exists
         (fun s ->
           s.sp_rule = fd.rule && s.sp_start <= off && off <= s.sp_end)
         !spans
  in
  !raw |> List.filter (fun r -> not (suppressed r)) |> List.map snd
