(** The protocol-aware lint rules.

    Each rule encodes a repo-wide discipline that the type checker cannot
    enforce:

    {ul
    {- [determinism] — no ambient randomness ([Random.*]) or wall-clock
       reads ([Sys.time], [Unix.gettimeofday]) outside the sanctioned
       seeded generator ([lib/support/rng.ml]); no unordered
       [Hashtbl.iter]/[Hashtbl.fold]/[Hashtbl.to_seq]/[to_seq_keys]/
       [to_seq_values] in protocol or fuzz code (bucket order is
       unspecified and randomizable via [OCAMLRUNPARAM=R], which would
       break seed-replayability).}
    {- [quorum-arithmetic] — no inline Byzantine threshold formulas
       ([n - f], [2*f + 1], [3*f + 1], [f + 1]) in the protocol
       libraries; they must go through [Lnd_support.Quorum] so each
       threshold has exactly one audited definition.}
    {- [transport-seam] — protocol code sends and receives only through
       the [Transport] record seam, never through [Net.*] directly
       (the transport-layer files themselves are exempt).}
    {- [durable-seam] — protocol code never constructs or touches
       [Lnd_durable.Disk] directly; persistence flows through the [Wal]
       append/sync/snapshot API, which owns the checksummed framing and
       crash semantics ([lib/durable] itself is exempt — it IS the
       layer).}
    {- [obs-seam] — protocol code never prints to the std streams
       directly ([print_*], [Printf.printf]/[eprintf],
       [Format.printf]/[eprintf]); diagnostics are typed events emitted
       through the [Lnd_obs.Obs] sink, so the default Null sink keeps
       runs silent and byte-identical.}
    {- [exception-swallowing] — no [try ... with _ ->]: a catch-all
       silently absorbs assertion failures and scheduler-kill exceptions.}
    {- [interface-hygiene] — every [lib/**/*.ml] has an [.mli]
       (checked by the driver, which knows the filesystem).}
    {- [suppression-hygiene] — every [[\@lnd.allow]] suppression names a
       known rule AND carries a justification:
       [[\@lnd.allow "rule: why this is sound"]].}}

    A finding is suppressed when it falls inside the source span of an
    expression or [let]-binding carrying [[\@lnd.allow "rule: ..."]] for
    its rule, or when the file carries a floating
    [[\@\@\@lnd.allow "rule: ..."]]. *)

type ctx = {
  rng_free : bool;  (** randomness / wall-clock ban active *)
  ordered_iter : bool;  (** [Hashtbl.iter]/[fold] ban active *)
  quorum : bool;  (** inline-threshold ban active *)
  seam : bool;  (** [Net.*] ban active *)
  swallow : bool;  (** catch-all ban active *)
  need_mli : bool;  (** the file must have a sibling [.mli] *)
  durable : bool;  (** [Disk.*] ban active *)
  obs : bool;  (** direct-printing ban active *)
}

val catalogue : (string * string) list
(** [(rule name, one-line description)] — the registry, also rendered by
    the driver's [--rules] flag and quoted in DESIGN.md. *)

val sem_catalogue : (string * string) list
(** The typedtree-level rules enforced by [lnd_sem] ([lib/sem]):
    [sem-ordering], [sem-sign], [sem-verify], [sem-pure]. Registered
    here so their [[\@lnd.allow]] suppressions pass suppression-hygiene
    and the two drivers share one rule namespace. *)

val rule_names : string list
(** Every known rule name — [catalogue] plus [sem_catalogue] — the set
    suppression-hygiene accepts. *)

val allow_payload : Parsetree.attribute -> string option option
(** Decode one attribute: [None] = not an [[\@lnd.allow]] at all,
    [Some None] = an [[\@lnd.allow]] with a malformed (non-string)
    payload, [Some (Some s)] = the payload string. Shared with the
    typedtree pass, which reads the same attributes off the
    [Typedtree]. *)

val parse_allow : string -> string * string
(** Split an [[\@lnd.allow]] payload into (rule, justification) at the
    first colon; both sides trimmed, empty justification when no colon
    is present. *)

val default_ctx : path:string -> ctx
(** The path-derived context used by the driver: protocol directories
    ([lib/sticky], [lib/verifiable], [lib/msgpass], [lib/broadcast],
    [lib/byz], [lib/fuzz]) get the full discipline; the transport-layer
    files ([net.ml], [faultnet.ml], [rlink.ml], [transport.ml]) are
    exempt from [transport-seam]; [lib/support/rng.ml] is exempt from the
    randomness ban and [lib/support/quorum.ml] from the threshold ban
    (they ARE the sanctioned homes); everything under [lib/] needs an
    [.mli]. Tests override this to force rules on for fixtures. *)

val run :
  ctx -> file:string -> has_mli:bool -> Parsetree.structure -> Findings.t list
(** Run every AST-level rule over one parsed file, apply suppressions,
    and return the surviving findings (unsorted). *)
