(** The CLI surface [lnd_lint] and [lnd_sem] share: one flag set
    ([--json], [--sarif FILE], [--rules], and [--build DIR] for the
    cmt-based tool), one report path, one exit-status contract
    (0 = clean, 1 = findings, 2 = usage/I-O error). *)

type opts = {
  json : bool;
  sarif : string option;  (** write a SARIF 2.1.0 log here too *)
  build : string;  (** dune build root (default [_build/default]) *)
  paths : string list;  (** positional paths, defaulted *)
}

val parse :
  tool:string ->
  accept_build:bool ->
  default_paths:string list ->
  catalogue:(string * string) list ->
  string array ->
  opts
(** Parse [argv]. Handles [--rules] (prints [catalogue], exits 0) and
    usage errors (exits 2) itself. *)

val finish :
  tool:string -> catalogue:(string * string) list -> opts -> Findings.t list -> 'a
(** Write the SARIF log if requested, print the report, and exit with
    the contract status. Findings must already be sorted. *)
