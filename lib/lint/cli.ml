(* The CLI surface lnd_lint and lnd_sem share: same flags, same report
   formats, same exit-status contract, so CI and editors drive both
   tools identically.

   Flags: [--json] (machine-readable findings on stdout), [--sarif FILE]
   (additionally write a SARIF 2.1.0 log), [--rules] (print the tool's
   rule catalogue and exit 0), [--build DIR] (lnd_sem only: the dune
   build root the .cmt files live under). Exit status: 0 = clean,
   1 = findings, 2 = usage or I/O error. *)

type opts = {
  json : bool;
  sarif : string option;
  build : string;  (* only surfaced when [accept_build] *)
  paths : string list;
}

let usage ~tool ~accept_build ~default_paths () : 'a =
  Printf.eprintf "usage: %s [--json] [--sarif FILE]%s [--rules] [PATH ...]\n"
    tool
    (if accept_build then " [--build DIR]" else "");
  Printf.eprintf "  default PATHs: %s\n" (String.concat " " default_paths);
  exit 2

let parse ~tool ~accept_build ~default_paths
    ~(catalogue : (string * string) list) (argv : string array) : opts =
  let json = ref false
  and sarif = ref None
  and build = ref "_build/default"
  and paths = ref [] in
  let usage () = usage ~tool ~accept_build ~default_paths () in
  let n = Array.length argv in
  let rec go i =
    if i < n then
      match argv.(i) with
      | "--json" ->
          json := true;
          go (i + 1)
      | "--sarif" when i + 1 < n ->
          sarif := Some argv.(i + 1);
          go (i + 2)
      | "--build" when accept_build && i + 1 < n ->
          build := argv.(i + 1);
          go (i + 2)
      | "--rules" ->
          List.iter
            (fun (name, desc) -> Printf.printf "%-22s %s\n" name desc)
            catalogue;
          exit 0
      | "--help" | "-h" -> usage ()
      | p when String.length p > 0 && p.[0] = '-' -> usage ()
      | p ->
          paths := p :: !paths;
          go (i + 1)
  in
  go 1;
  {
    json = !json;
    sarif = !sarif;
    build = !build;
    paths = (match List.rev !paths with [] -> default_paths | ps -> ps);
  }

(* Report, write the SARIF log if requested, exit per contract. *)
let finish ~tool ~(catalogue : (string * string) list) (o : opts)
    (findings : Findings.t list) : 'a =
  (match o.sarif with
  | None -> ()
  | Some file -> (
      let log = Findings.to_sarif ~tool ~rules:catalogue findings in
      try
        let oc = open_out_bin file in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc log)
      with Sys_error msg ->
        Printf.eprintf "%s: %s\n" tool msg;
        exit 2));
  Findings.report ~json:o.json Format.std_formatter findings;
  exit (if findings = [] then 0 else 1)
