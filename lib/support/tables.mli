(** Deterministic iteration over hash tables.

    [Hashtbl.iter]/[Hashtbl.fold] visit bindings in bucket order — an
    artefact of the hash function and resize history, and outright
    randomized under [OCAMLRUNPARAM=R]. Every E1-E16 experiment must be
    replayable by seed, so protocol and fuzz code iterates tables
    through this module instead: bindings are snapshotted and sorted by
    key first. The [lnd_lint] determinism rule bans raw
    [Hashtbl.iter]/[fold] in [lib/] and points here.

    All helpers assume tables maintained with [Hashtbl.replace] (at most
    one binding per key), which is how every table in this codebase is
    used. *)

val sorted_bindings :
  ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings, sorted by key ([Stdlib.compare] by default). *)

val iter_sorted :
  ?compare:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [Hashtbl.iter], but in ascending key order. *)

val fold_sorted :
  ?compare:('a -> 'a -> int) ->
  ('a -> 'b -> 'acc -> 'acc) ->
  ('a, 'b) Hashtbl.t ->
  'acc ->
  'acc
(** [Hashtbl.fold], but in ascending key order. *)
