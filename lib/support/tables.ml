(* Deterministic iteration over hash tables: snapshot, sort by key,
   then visit. This file is the one whitelisted user of raw
   Hashtbl.iter/fold in lib/ (see the lnd_lint determinism rule). *)

let sorted_bindings ?(compare = Stdlib.compare) tbl =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (ka, _) (kb, _) -> compare ka kb) all

let iter_sorted ?compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ?compare tbl)

let fold_sorted ?compare f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ?compare tbl)
