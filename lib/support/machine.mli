(** Pure protocol state machines.

    A protocol core is a resumable program over abstract register names
    with no scheduler, transport, or Obs calls inside. The residual
    program is the machine state, and {!step} exposes the uniform
    [state -> event -> state * action list] shape; drivers interpret the
    actions against a concrete substrate (the deterministic simulator,
    or the OCaml 5 domains backend). See DESIGN.md, "Pure cores and
    drivers". *)

type note = Serving of int list | Served
    (** Protocol-level annotations: a helper starts serving the listed
        askers / finished serving them. The sim driver maps these to the
        HELP Obs spans the inlined implementations used to emit. *)

type ('reg, 'a) prog =
  | Ret of 'a
  | Read of 'reg * (Univ.t -> ('reg, 'a) prog)
  | Write of 'reg * Univ.t * (unit -> ('reg, 'a) prog)
  | Yield of (unit -> ('reg, 'a) prog)
  | Note of note * (unit -> ('reg, 'a) prog)

(** {2 Combinators} *)

val ret : 'a -> ('reg, 'a) prog
val read : 'reg -> ('reg, Univ.t) prog
val write : 'reg -> Univ.t -> ('reg, unit) prog
val yield : ('reg, unit) prog
val note : note -> ('reg, unit) prog
val bind : ('reg, 'a) prog -> ('a -> ('reg, 'b) prog) -> ('reg, 'b) prog
val ( let* ) : ('reg, 'a) prog -> ('a -> ('reg, 'b) prog) -> ('reg, 'b) prog

val map_reg : ('r1 -> 'r2) -> ('r1, 'a) prog -> ('r2, 'a) prog
(** Rename registers — used to compose cores (test-or-set runs a sticky
    or verifiable core under an injected register namespace). *)

(** {2 The step function} *)

type 'reg action =
  | A_write of 'reg * Univ.t
  | A_note of note
  | A_read of 'reg  (** blocking: answer with [Got value] *)
  | A_yield  (** blocking: answer with [Ack] after rescheduling *)
  | A_done  (** the program returned; {!result} is now [Some _] *)

type event = Start | Got of Univ.t | Ack

exception Protocol_error of string
(** A driver delivered an event the state cannot consume (answered a
    yield with a value, resumed a finished machine, ...). *)

val step : ('reg, 'a) prog -> event -> ('reg, 'a) prog * 'reg action list
(** [step st ev] consumes the pending event and runs the machine to its
    next blocking point. The action list is zero or more non-blocking
    actions ([A_write]/[A_note]), in program order, followed by exactly
    one blocking action ([A_read r] — answer with [Got v]; [A_yield] —
    answer with [Ack]; or [A_done]). The first call uses [Start]. *)

val result : ('reg, 'a) prog -> 'a option
(** [Some a] once the machine has returned. *)
