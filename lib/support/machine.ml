(* Pure protocol state machines.

   A protocol core is written as a ('reg, 'a) prog — a resumable program
   over abstract register names — with no scheduler, transport, or Obs
   calls inside: the only things a program can do are read/write a named
   register, mark a voluntary scheduling point, annotate itself for
   observability, or return. The residual program IS the machine state,
   and {!step} exposes the uniform

     step : state -> event -> state * action list

   shape: feed the pending event in, get back the new state plus zero or
   more non-blocking actions (writes, notes) followed by exactly one
   blocking action (a read to answer, a yield to grant, or done).

   Drivers interpret actions against a concrete substrate: the
   deterministic effects-based simulator maps A_read/A_write to
   Cell.read/Cell.write (one scheduler step each) and A_yield to
   Sched.yield, reproducing the pre-refactor effect sequences exactly;
   the OCaml 5 domains backend maps them to mutex-protected shared
   registers with real preemption. Notes carry protocol-level
   annotations (which askers a helper is serving) so the sim driver can
   emit the same Obs spans the inlined implementations used to. *)

type note = Serving of int list | Served

type ('reg, 'a) prog =
  | Ret of 'a
  | Read of 'reg * (Univ.t -> ('reg, 'a) prog)
  | Write of 'reg * Univ.t * (unit -> ('reg, 'a) prog)
  | Yield of (unit -> ('reg, 'a) prog)
  | Note of note * (unit -> ('reg, 'a) prog)

(* ---------------- Combinators ---------------- *)

let[@lnd.pure] ret a = Ret a
let[@lnd.pure] read r = Read (r, fun u -> Ret u)
let[@lnd.pure] write r u = Write (r, u, fun () -> Ret ())
let[@lnd.pure] yield = Yield (fun () -> Ret ())
let[@lnd.pure] note n = Note (n, fun () -> Ret ())

let[@lnd.pure] rec bind (p : ('reg, 'a) prog) (f : 'a -> ('reg, 'b) prog) :
    ('reg, 'b) prog =
  match p with
  | Ret a -> f a
  | Read (r, k) -> Read (r, fun u -> bind (k u) f)
  | Write (r, u, k) -> Write (r, u, fun () -> bind (k ()) f)
  | Yield k -> Yield (fun () -> bind (k ()) f)
  | Note (n, k) -> Note (n, fun () -> bind (k ()) f)

let ( let* ) = bind

let[@lnd.pure] rec map_reg (g : 'r1 -> 'r2) (p : ('r1, 'a) prog) :
    ('r2, 'a) prog =
  match p with
  | Ret a -> Ret a
  | Read (r, k) -> Read (g r, fun u -> map_reg g (k u))
  | Write (r, u, k) -> Write (g r, u, fun () -> map_reg g (k ()))
  | Yield k -> Yield (fun () -> map_reg g (k ()))
  | Note (n, k) -> Note (n, fun () -> map_reg g (k ()))

(* ---------------- The step function ---------------- *)

type 'reg action =
  | A_write of 'reg * Univ.t
  | A_note of note
  | A_read of 'reg  (** blocking: answer with [Got value] *)
  | A_yield  (** blocking: answer with [Ack] after rescheduling *)
  | A_done  (** the program returned; {!result} is now [Some _] *)

type event = Start | Got of Univ.t | Ack

exception Protocol_error of string

(* Peel the non-blocking prefix off the residual program: emit every
   Write/Note as an action and stop at the first blocking point (Read,
   Yield or Ret), which stays as the new state awaiting its event. *)
let[@lnd.pure] rec drain (p : ('reg, 'a) prog) (acc : 'reg action list) :
    ('reg, 'a) prog * 'reg action list =
  match p with
  | Ret _ -> (p, List.rev (A_done :: acc))
  | Read (r, _) -> (p, List.rev (A_read r :: acc))
  | Yield _ -> (p, List.rev (A_yield :: acc))
  | Write (r, u, k) -> drain (k ()) (A_write (r, u) :: acc)
  | Note (n, k) -> drain (k ()) (A_note n :: acc)

let[@lnd.pure] step (st : ('reg, 'a) prog) (ev : event) :
    ('reg, 'a) prog * 'reg action list =
  let resumed =
    match (st, ev) with
    | _, Start -> st
    | Read (_, k), Got u -> k u
    | Yield k, Ack -> k ()
    | Ret _, (Got _ | Ack) ->
        raise (Protocol_error "Machine.step: event delivered to a finished machine")
    | Read _, Ack -> raise (Protocol_error "Machine.step: Ack answers a read")
    | Yield _, Got _ -> raise (Protocol_error "Machine.step: value answers a yield")
    | (Write _ | Note _), _ ->
        raise (Protocol_error "Machine.step: state not at a blocking point")
  in
  drain resumed []

let[@lnd.pure] result (st : ('reg, 'a) prog) : 'a option =
  match st with Ret a -> Some a | _ -> None
