(** Central quorum arithmetic for the n > 3f protocol stack.

    Every correctness claim in the reproduction hinges on the same three
    thresholds over one (n, f) pair — Algorithms 1-2 (Theorems 14/19)
    in shared memory and the Srikanth-Toueg / Bracha / register-emulation
    stack over message passing:

    {ul
    {- [availability t = n - f] — the number of replies an operation can
       always wait for: correct processes alone can furnish them, so
       waiting never blocks on Byzantine silence;}
    {- [one_correct t = f + 1] — any set of this many distinct processes
       contains at least one correct process, so a claim vouched for by
       f+1 processes is genuine;}
    {- [byz_quorum t = 2f + 1] — two sets of this many processes
       intersect in at least f+1, hence in a correct process; the
       acceptance threshold of echo-broadcast protocols.}}

    The [lnd_lint] quorum-arithmetic rule bans inlining these expressions
    in [lib/sticky], [lib/verifiable] and [lib/msgpass]: all threshold
    arithmetic must flow through this module, so a refactor cannot
    silently bend a bound the proofs depend on. *)

type t
(** An (n, f) system configuration. Immutable. *)

val make : n:int -> f:int -> t
(** [make ~n ~f] checks the paper's resilience precondition [n > 3f]
    (and [n >= 2], [f >= 0]); raises [Invalid_argument] otherwise. Use
    for components whose very construction requires the bound — e.g. the
    register emulation of Section 9. *)

val make_relaxed : n:int -> f:int -> t
(** Like {!make} but only sanity-checks [n >= 2] and [f >= 0] — for the
    Section 8 optimality experiments, which deliberately instantiate the
    algorithms outside their safe zone (n <= 3f) to exhibit the
    impossibility of Theorem 23. *)

val n : t -> int
val f : t -> int

val is_safe : t -> bool
(** [n > 3f]: the configuration is inside the algorithms' safe zone. *)

(** {2 Thresholds} *)

val availability : t -> int
(** [n - f]: replies that can always be awaited (witness quorums, write
    acks, read reply collection). *)

val one_correct : t -> int
(** [f + 1]: smallest set guaranteed to contain a correct process
    (echo amplification, witness adoption, read vouchers). *)

val byz_quorum : t -> int
(** [2f + 1]: Byzantine quorum — two such sets intersect in a correct
    process (echo-broadcast acceptance). *)

val min_system : t -> int
(** [3f + 1]: the smallest system size satisfying [n > 3f]. *)

(** {2 Predicates over reply counts} *)

val has_availability : t -> int -> bool
(** [has_availability t c] is [c >= availability t]. *)

val has_one_correct : t -> int -> bool
(** [has_one_correct t c] is [c >= one_correct t]. *)

val has_byz_quorum : t -> int -> bool
(** [has_byz_quorum t c] is [c >= byz_quorum t]. *)

val exceeds_faults : t -> int -> bool
(** [exceeds_faults t c] is [c > f]: more vouchers than there can be
    liars — e.g. Algorithm 2's line 22, where more than f ⊥-replies
    prove the writer never completed a write. *)

val pp : Format.formatter -> t -> unit
