(* Central quorum arithmetic for the n > 3f protocol stack; see the
   interface for the threshold taxonomy. This module is the ONLY place
   in lib/{sticky,verifiable,msgpass} allowed to spell out n - f /
   f + 1 / 2f + 1 — the lnd_lint quorum-arithmetic rule enforces it. *)

type t = { n : int; f : int }

let sanity ~n ~f =
  if f < 0 || n < 2 then invalid_arg "Quorum: need n >= 2, f >= 0"

let make ~n ~f =
  sanity ~n ~f;
  if n <= 3 * f then
    invalid_arg
      (Printf.sprintf "Quorum.make: n > 3f required (got n=%d, f=%d)" n f);
  { n; f }

let make_relaxed ~n ~f =
  sanity ~n ~f;
  { n; f }

let n t = t.n
let f t = t.f
let is_safe t = t.n > 3 * t.f
let availability t = t.n - t.f
let one_correct t = t.f + 1
let byz_quorum t = (2 * t.f) + 1
let min_system t = (3 * t.f) + 1
let has_availability t c = c >= availability t
let has_one_correct t c = c >= one_correct t
let has_byz_quorum t c = c >= byz_quorum t
let exceeds_faults t c = c > t.f

let pp fmt t =
  Format.fprintf fmt "(n=%d, f=%d%s)" t.n t.f
    (if is_safe t then "" else ", UNSAFE: n <= 3f")
