(* Differential conformance suite: one seed derives one workload (system
   size, Byzantine genome scripts, per-reader programs) that is executed
   by BOTH backends — the deterministic effects-based simulator (driver
   #1) and the OCaml 5 domains backend (driver #2, Parallel) — and each
   run is folded into a Lnd_history op history and judged by the same
   monitors + Byzantine-linearizability checkers.

   The suite asserts three things:
   - the sim run is accepted (monitors + Byzlin) and its history renders
     byte-identically to the committed pre-refactor golden baselines
     (test/fixtures/diff/golden_sim.txt), which pins the pure-core
     extraction to the old effects-based behaviour;
   - the domains run is accepted by the same checkers — real parallelism
     may produce a different (legal) interleaving, so histories are
     compared through the spec, not byte-for-byte;
   - a deliberately broken core (Parallel.run_* ~flip_reads:true) makes
     the suite fail, so "green" is evidence, not vacuity.

   Workload generation is deterministic in (seed, protocol) and stays in
   the paper's safe zone (n >= 3f + 1, at most f actually-faulty pids,
   correct writer) so operations terminate on the free-running domains
   backend, not just under the step-bounded simulator. *)

open Lnd_support
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module History = Lnd_history.History
module Monitors = Lnd_history.Monitors
module Byzlin = Lnd_history.Byzlin
module Trace_replay = Lnd_history.Trace_replay
module Obs = Lnd_obs.Obs
module Trace = Lnd_obs.Trace
module Byz_script = Lnd_byz.Byz_script

type proto = Sticky | Verifiable | Testorset

let proto_name = function
  | Sticky -> "sticky"
  | Verifiable -> "verifiable"
  | Testorset -> "testorset"

let proto_of_name = function
  | "sticky" -> Some Sticky
  | "verifiable" -> Some Verifiable
  | "testorset" -> Some Testorset
  | _ -> None

let all_protos = [ Sticky; Verifiable; Testorset ]

(* One client-program item; which constructors apply depends on the
   protocol (readers only Read on sticky, only Test on test-or-set). *)
type item = I_read | I_verify of Value.t | I_test

type work = {
  seed : int;
  proto : proto;
  n : int;
  f : int;
  tos_verifiable : bool; (* test-or-set backend: Observation 25 choice *)
  scripts : (int * int list) list; (* Byz_script genome per faulty pid *)
  script_value : Value.t; (* the value scripted adversaries claim *)
  writes : int; (* writer values (testorset: SETs) *)
  programs : (int * item list) list; (* per correct reader pid *)
}

let value_pool = [| "a"; "b"; "c" |]

(* Deterministic in (proto, seed); all structure is drawn up front so the
   two backends execute the *same* workload. *)
let generate ~(proto : proto) (seed : int) : work =
  let salt = match proto with Sticky -> 1 | Verifiable -> 2 | Testorset -> 3 in
  let rng = Rng.create ((seed * 7907) + salt) in
  let f = 1 + Rng.int rng 2 in
  let n = (3 * f) + 1 + Rng.int rng 2 in
  let nbyz = Rng.int rng (f + 1) in
  let byz = List.init nbyz (fun i -> n - 1 - i) in
  let script_value =
    match proto with
    | Testorset -> "1"
    | Sticky | Verifiable -> if Rng.bool rng then "a" else "x"
  in
  let scripts =
    List.map
      (fun pid ->
        let len = 2 + Rng.int rng 4 in
        (pid, List.init len (fun _ -> Rng.int rng 6)))
      byz
  in
  let writes = 1 + Rng.int rng 2 in
  let programs =
    List.filter_map
      (fun pid ->
        if pid = 0 || List.mem pid byz then None
        else
          let k = 1 + Rng.int rng 2 in
          Some
            ( pid,
              List.init k (fun _ ->
                  match proto with
                  | Sticky -> I_read
                  | Testorset -> I_test
                  | Verifiable ->
                      if Rng.int rng 4 = 0 then I_read
                      else I_verify (Rng.pick_arr rng value_pool)) ))
      (List.init n (fun i -> i))
  in
  {
    seed;
    proto;
    n;
    f;
    tos_verifiable = Rng.bool rng;
    scripts;
    script_value;
    writes;
    programs;
  }

let byzantine_pids (w : work) : int list = List.map fst w.scripts

let describe (w : work) : string =
  Printf.sprintf "seed=%d proto=%s n=%d f=%d%s byz=[%s] claim=%s writes=%d progs=[%s]"
    w.seed (proto_name w.proto) w.n w.f
    (match w.proto with
    | Testorset -> if w.tos_verifiable then "/verifiable" else "/sticky"
    | Sticky | Verifiable -> "")
    (String.concat ";"
       (List.map
          (fun (pid, g) ->
            Printf.sprintf "%d:%s" pid
              (String.concat "," (List.map string_of_int g)))
          w.scripts))
    w.script_value w.writes
    (String.concat ";"
       (List.map
          (fun (pid, prog) ->
            Printf.sprintf "%d:%s" pid
              (String.concat ""
                 (List.map
                    (function
                      | I_read -> "r"
                      | I_test -> "t"
                      | I_verify v -> "v(" ^ v ^ ")")
                    prog)))
          w.programs))

(* ---------------- Spec-level acceptance (shared by both backends) ----- *)

(* Cap for the exhaustive linearizability search (cf. Fuzz.byzlin_op_cap);
   larger histories are judged by the monitors only. *)
let byzlin_op_cap = 14

let check_sticky_history ~(correct : int -> bool)
    (h : (Lnd_history.Spec.Sticky_spec.op, Lnd_history.Spec.Sticky_spec.res) History.t) :
    (unit, string) result =
  match
    Monitors.check_all
      (Monitors.uniqueness ~correct h
      @ Monitors.sticky_validity ~correct ~writer:0 h)
  with
  | Error m -> Error m
  | Ok () ->
      if List.length (History.complete_entries h) > byzlin_op_cap then Ok ()
      else if
        try Byzlin.sticky ~writer:0 ~correct h
        with Lnd_history.Spec.Search_too_large -> true
      then Ok ()
      else Error "history not Byzantine linearizable (sticky)"

let check_verifiable_history ~(correct : int -> bool)
    (h :
      (Lnd_history.Spec.Verifiable_spec.op, Lnd_history.Spec.Verifiable_spec.res)
      History.t) : (unit, string) result =
  match
    Monitors.check_all
      (Monitors.relay ~correct h
      @ Monitors.validity ~correct h
      @ Monitors.unforgeability ~correct ~writer:0 h)
  with
  | Error m -> Error m
  | Ok () ->
      if List.length (History.complete_entries h) > byzlin_op_cap then Ok ()
      else if
        try Byzlin.verifiable ~writer:0 ~correct h
        with Lnd_history.Spec.Search_too_large -> true
      then Ok ()
      else Error "history not Byzantine linearizable (verifiable)"

let check_testorset_history ~(correct : int -> bool)
    (h :
      (Lnd_history.Spec.Testorset_spec.op, Lnd_history.Spec.Testorset_spec.res)
      History.t) : (unit, string) result =
  let module T = Lnd_history.Spec.Testorset_spec in
  let entries = History.complete_entries (History.restrict h ~correct) in
  let bit (e : (T.op, T.res) History.entry) =
    match (e.op, e.ret) with T.Test, Some (T.Bit b, _) -> Some b | _ -> None
  in
  let monotone =
    List.for_all
      (fun a ->
        match bit a with
        | Some 1 ->
            List.for_all
              (fun b ->
                match bit b with
                | Some 0 -> not (History.precedes a b)
                | _ -> true)
              entries
        | _ -> true)
      entries
  in
  if not monotone then
    Error "test-or-set stickiness violated: TEST=1 then a later TEST=0"
  else if List.length (History.complete_entries h) > byzlin_op_cap then Ok ()
  else if
    try Byzlin.testorset ~setter:0 ~correct h
    with Lnd_history.Spec.Search_too_large -> true
  then Ok ()
  else Error "history not Byzantine linearizable (test-or-set)"

(* ---------------- Canonical history rendering ---------------- *)

(* One stable token per operation instance, ordered by invocation time.
   The sim driver's rendering for a fixed seed is byte-identical across
   refactors of the protocol internals — that is the golden gate. *)

let render_entry ~op ~res (e : ('o, 'r) History.entry) : string =
  match e.ret with
  | Some (r, t) -> Printf.sprintf "p%d:%s[%d,%d]=%s" e.pid (op e.op) e.inv t (res r)
  | None -> Printf.sprintf "p%d:%s[%d,?)" e.pid (op e.op) e.inv

let render_sticky h : string =
  let module S = Lnd_history.Spec.Sticky_spec in
  String.concat " "
    (List.map
       (render_entry
          ~op:(function S.Write v -> "W(" ^ v ^ ")" | S.Read -> "R")
          ~res:(function
            | S.Done -> "done"
            | S.Val None -> "bot"
            | S.Val (Some v) -> v))
       (History.entries h))

let render_verifiable h : string =
  let module V = Lnd_history.Spec.Verifiable_spec in
  String.concat " "
    (List.map
       (render_entry
          ~op:(function
            | V.Write v -> "W(" ^ v ^ ")"
            | V.Read -> "R"
            | V.Sign v -> "S(" ^ v ^ ")"
            | V.Verify v -> "V(" ^ v ^ ")")
          ~res:(function
            | V.Done -> "done"
            | V.Val v -> v
            | V.Signed b -> "signed:" ^ string_of_bool b
            | V.Verified b -> string_of_bool b))
       (History.entries h))

let render_testorset h : string =
  let module T = Lnd_history.Spec.Testorset_spec in
  String.concat " "
    (List.map
       (render_entry
          ~op:(function T.Set -> "SET" | T.Test -> "TEST")
          ~res:(function T.Done -> "done" | T.Bit b -> string_of_int b))
       (History.entries h))

(* ---------------- Driver #1: the deterministic simulator ---------------- *)

type run = {
  ops : int; (* completed operations in the history *)
  steps : int; (* scheduler steps (sim) or machine turns (domains) *)
  verdict : (unit, string) result;
  rendered : string; (* canonical history *)
}

let sim_max_steps = 8_000_000

let correct_failure ~(correct : bool array) sched : string option =
  match
    List.filter
      (fun ((fb : Sched.fiber), _) -> correct.(fb.Sched.pid))
      (Sched.failures sched)
  with
  | [] -> None
  | (fb, e) :: _ ->
      Some
        (Printf.sprintf "correct fiber %s failed: %s" fb.Sched.fname
           (Printexc.to_string e))

let policy_of (w : work) = Policy.random ~seed:((w.seed * 31) + 17)

let sim_sticky (w : work) : run =
  let module Sys = Lnd_sticky.System in
  let byz = byzantine_pids w in
  let t = Sys.make ~policy:(policy_of w) ~byzantine:byz ~n:w.n ~f:w.f () in
  List.iter
    (fun (pid, genome) ->
      ignore
        (Byz_script.spawn_sticky t.sched t.regs
           (Byz_script.make ~pid ~genome ~value:w.script_value)))
    w.scripts;
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         for i = 0 to w.writes - 1 do
           Sys.op_write t value_pool.(i mod Array.length value_pool)
         done));
  List.iter
    (fun (pid, prog) ->
      ignore
        (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
             List.iter
               (function
                 | I_read -> ignore (Sys.op_read t ~pid)
                 | I_verify _ | I_test -> invalid_arg "Diff: sticky program")
               prog)))
    w.programs;
  let stop = Sys.run ~max_steps:sim_max_steps t in
  let verdict =
    match stop with
    | Sched.Budget_exhausted -> Error "step budget exhausted"
    | Sched.Condition_met -> Error "unexpected stop"
    | Sched.Quiescent -> (
        match correct_failure ~correct:t.correct t.sched with
        | Some m -> Error m
        | None ->
            check_sticky_history ~correct:(fun pid -> t.correct.(pid)) t.history)
  in
  {
    ops = List.length (History.complete_entries t.history);
    steps = Sched.steps t.sched;
    verdict;
    rendered = render_sticky t.history;
  }

let sim_verifiable (w : work) : run =
  let module Sys = Lnd_verifiable.System in
  let byz = byzantine_pids w in
  let t = Sys.make ~policy:(policy_of w) ~byzantine:byz ~n:w.n ~f:w.f () in
  List.iter
    (fun (pid, genome) ->
      ignore
        (Byz_script.spawn_verifiable t.sched t.regs
           (Byz_script.make ~pid ~genome ~value:w.script_value)))
    w.scripts;
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         for i = 0 to w.writes - 1 do
           let v = value_pool.(i mod Array.length value_pool) in
           Sys.op_write t v;
           ignore (Sys.op_sign t v)
         done));
  List.iter
    (fun (pid, prog) ->
      ignore
        (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
             List.iter
               (function
                 | I_read -> ignore (Sys.op_read t ~pid)
                 | I_verify v -> ignore (Sys.op_verify t ~pid v)
                 | I_test -> invalid_arg "Diff: verifiable program")
               prog)))
    w.programs;
  let stop = Sys.run ~max_steps:sim_max_steps t in
  let verdict =
    match stop with
    | Sched.Budget_exhausted -> Error "step budget exhausted"
    | Sched.Condition_met -> Error "unexpected stop"
    | Sched.Quiescent -> (
        match correct_failure ~correct:t.correct t.sched with
        | Some m -> Error m
        | None ->
            check_verifiable_history
              ~correct:(fun pid -> t.correct.(pid))
              t.history)
  in
  {
    ops = List.length (History.complete_entries t.history);
    steps = Sched.steps t.sched;
    verdict;
    rendered = render_verifiable t.history;
  }

let sim_testorset (w : work) : run =
  let module Sys = Lnd_testorset.Testorset in
  let byz = byzantine_pids w in
  let impl = if w.tos_verifiable then Sys.Verifiable_based else Sys.Sticky_based in
  let t = Sys.make ~policy:(policy_of w) ~byzantine:byz ~impl ~n:w.n ~f:w.f () in
  (match t.backend with
  | Sys.B_sticky (regs, _, _) ->
      List.iter
        (fun (pid, genome) ->
          ignore
            (Byz_script.spawn_sticky t.sched regs
               (Byz_script.make ~pid ~genome ~value:w.script_value)))
        w.scripts
  | Sys.B_verifiable (regs, _, _) ->
      List.iter
        (fun (pid, genome) ->
          ignore
            (Byz_script.spawn_verifiable t.sched regs
               (Byz_script.make ~pid ~genome ~value:w.script_value)))
        w.scripts);
  ignore
    (Sys.client t ~pid:0 ~name:"setter" (fun () ->
         for _ = 1 to w.writes do
           Sys.op_set t
         done));
  List.iter
    (fun (pid, prog) ->
      ignore
        (Sys.client t ~pid ~name:(Printf.sprintf "t%d" pid) (fun () ->
             List.iter
               (function
                 | I_test -> ignore (Sys.op_test t ~pid)
                 | I_read | I_verify _ -> invalid_arg "Diff: testorset program")
               prog)))
    w.programs;
  let stop = Sys.run ~max_steps:sim_max_steps t in
  let verdict =
    match stop with
    | Sched.Budget_exhausted -> Error "step budget exhausted"
    | Sched.Condition_met -> Error "unexpected stop"
    | Sched.Quiescent -> (
        match correct_failure ~correct:t.correct t.sched with
        | Some m -> Error m
        | None ->
            check_testorset_history
              ~correct:(fun pid -> t.correct.(pid))
              t.history)
  in
  {
    ops = List.length (History.complete_entries t.history);
    steps = Sched.steps t.sched;
    verdict;
    rendered = render_testorset t.history;
  }

let sim (w : work) : run =
  match w.proto with
  | Sticky -> sim_sticky w
  | Verifiable -> sim_verifiable w
  | Testorset -> sim_testorset w

(* ---------------- Golden baselines (sim driver) ---------------- *)

(* One line per (seed, protocol): workload description, verdict, and the
   canonical history. Generated once from the pre-refactor effects-based
   implementations and committed; the suite re-renders and compares
   byte-for-byte, so any drift in the sim driver's schedules, timestamps
   or results fails loudly. *)

let sim_line (w : work) : string =
  let r = sim w in
  Printf.sprintf "%s | %s ops=%d steps=%d | %s" (describe w)
    (match r.verdict with Ok () -> "ok" | Error m -> "FAIL(" ^ m ^ ")")
    r.ops r.steps r.rendered

let golden_lines ~from ~count : string list =
  List.concat_map
    (fun i ->
      let seed = from + i in
      List.map (fun proto -> sim_line (generate ~proto seed)) all_protos)
    (List.init count (fun i -> i))

let golden_seed_from = 1
let golden_seed_count = 60

let write_golden path =
  let oc = open_out path in
  List.iter
    (fun l -> output_string oc (l ^ "\n"))
    (golden_lines ~from:golden_seed_from ~count:golden_seed_count);
  close_out oc

(* Re-render the golden workloads with the current sim driver and diff
   against the committed fixture. Returns the mismatching line pairs
   (expected, got). *)
let check_golden path : (int * string * string) list =
  let ic = open_in path in
  let expected = ref [] in
  (try
     while true do
       expected := input_line ic :: !expected
     done
   with End_of_file -> close_in ic);
  let expected = List.rev !expected in
  let got = golden_lines ~from:golden_seed_from ~count:golden_seed_count in
  let rec pair i es gs acc =
    match (es, gs) with
    | [], [] -> List.rev acc
    | e :: es, g :: gs ->
        pair (i + 1) es gs (if String.equal e g then acc else (i, e, g) :: acc)
    | e :: es, [] -> pair (i + 1) es [] ((i, e, "<missing>") :: acc)
    | [], g :: gs -> pair (i + 1) [] gs ((i, "<missing>", g) :: acc)
  in
  pair 1 expected got []

(* ---------------- Trace parity (both drivers) ---------------- *)

(* Keep only operation spans. The help daemons spin on the domains
   backend, so their Shm_access volume is unbounded and nondeterministic
   — it would overflow any fixed arena — while the spans the parity fold
   actually consumes are bounded by the workload. *)
let parity_keep (e : Obs.event) : bool =
  match e.kind with
  | Obs.Span_open _ | Obs.Span_close _ -> true
  | _ -> false

type trace_info = {
  t_ops : int;
  t_verdict : (unit, string) result;
  t_nesting : string option;
  t_dropped : int;
  t_events : int;
  t_trace : Trace.t;
}

let fold_trace (w : work) (tr : Trace.t) : trace_info =
  let byz = byzantine_pids w in
  let correct pid = not (List.mem pid byz) in
  let evs = Trace.events tr in
  let t_ops, t_verdict =
    match w.proto with
    | Sticky ->
        let h = Trace_replay.sticky_history evs in
        ( List.length (History.complete_entries h),
          check_sticky_history ~correct h )
    | Verifiable ->
        let h = Trace_replay.verifiable_history evs in
        ( List.length (History.complete_entries h),
          check_verifiable_history ~correct h )
    | Testorset ->
        let h = Trace_replay.testorset_history evs in
        ( List.length (History.complete_entries h),
          check_testorset_history ~correct h )
  in
  {
    t_ops;
    t_verdict;
    t_nesting = Trace.check tr;
    t_dropped = Trace.dropped tr;
    t_events = Trace.size tr;
    t_trace = tr;
  }

let sim_traced ?(keep = parity_keep) (w : work) : run * trace_info =
  let tr = Trace.create ~keep () in
  Obs.install (Trace.sink tr);
  let r = Fun.protect ~finally:Obs.uninstall (fun () -> sim w) in
  Trace.finish tr;
  (r, fold_trace w tr)
