(** Differential conformance suite between the two protocol drivers.

    A [work] value — derived deterministically from a (protocol, seed)
    pair — fully describes one workload: system size, which pids run
    scripted Byzantine adversaries (and their {!Lnd_byz.Byz_script}
    genomes), how many values the writer writes, and each correct
    reader's explicit operation program. The same [work] is executed by
    the deterministic effects-based simulator (driver #1, here) and by
    the OCaml 5 domains backend (driver #2, {!Parallel}); each run folds
    into a {!Lnd_history.History.t} and is judged by the same monitors +
    Byzantine-linearizability checkers.

    The sim driver additionally renders each history to a canonical
    one-line string and compares it byte-for-byte against the committed
    pre-refactor golden baselines
    ([test/fixtures/diff/golden_sim.txt]). *)

open Lnd_support

type proto = Sticky | Verifiable | Testorset

val proto_name : proto -> string
val proto_of_name : string -> proto option
val all_protos : proto list

type item = I_read | I_verify of Value.t | I_test

type work = {
  seed : int;
  proto : proto;
  n : int;
  f : int;
  tos_verifiable : bool;
      (** test-or-set backend: which Observation 25 construction *)
  scripts : (int * int list) list;
      (** Byz_script genome per actually-faulty pid *)
  script_value : Value.t;  (** the value scripted adversaries claim *)
  writes : int;  (** writer values (testorset: SETs) *)
  programs : (int * item list) list;  (** per correct reader pid *)
}

val value_pool : Value.t array
(** The values the (correct) writer writes, in order, cycling. *)

val generate : proto:proto -> int -> work
(** Deterministic in (proto, seed). Always n >= 3f + 1 with at most f
    actually-faulty pids and a correct writer (pid 0), so every correct
    operation terminates on both backends. *)

val byzantine_pids : work -> int list
val describe : work -> string

(** {2 Spec-level acceptance (shared by both backends)} *)

val byzlin_op_cap : int
(** Histories above this many completed operations are judged by the
    monitors only (the exhaustive search is exponential). *)

val check_sticky_history :
  correct:(int -> bool) ->
  (Lnd_history.Spec.Sticky_spec.op, Lnd_history.Spec.Sticky_spec.res)
  Lnd_history.History.t ->
  (unit, string) result

val check_verifiable_history :
  correct:(int -> bool) ->
  (Lnd_history.Spec.Verifiable_spec.op, Lnd_history.Spec.Verifiable_spec.res)
  Lnd_history.History.t ->
  (unit, string) result

val check_testorset_history :
  correct:(int -> bool) ->
  (Lnd_history.Spec.Testorset_spec.op, Lnd_history.Spec.Testorset_spec.res)
  Lnd_history.History.t ->
  (unit, string) result

(** {2 Canonical history rendering} *)

val render_sticky :
  (Lnd_history.Spec.Sticky_spec.op, Lnd_history.Spec.Sticky_spec.res)
  Lnd_history.History.t ->
  string

val render_verifiable :
  (Lnd_history.Spec.Verifiable_spec.op, Lnd_history.Spec.Verifiable_spec.res)
  Lnd_history.History.t ->
  string

val render_testorset :
  (Lnd_history.Spec.Testorset_spec.op, Lnd_history.Spec.Testorset_spec.res)
  Lnd_history.History.t ->
  string

(** {2 Driver #1: the deterministic simulator} *)

type run = {
  ops : int;  (** completed operations in the history *)
  steps : int;  (** scheduler steps (sim) or machine turns (domains) *)
  verdict : (unit, string) result;
  rendered : string;  (** canonical history *)
}

val sim : work -> run
(** Execute the workload on the effects-based simulator, to quiescence,
    under [Policy.random] seeded from the work. *)

val sim_line : work -> string
(** [describe] + verdict + canonical history: one golden-baseline line. *)

(** {2 Trace parity}

    A traced run derives a {e second}, independent history from the
    recorded operation spans ({!Lnd_history.Trace_replay}) and judges it
    with the same checkers as the direct one. Operation spans bracket
    the recorded [[inv, ret]] intervals on both backends, so the
    trace-derived precedence order is a subset of the direct history's
    and a direct [Ok] forces a trace [Ok]. *)

val parity_keep : Lnd_obs.Obs.event -> bool
(** Keep only operation spans: the help daemons spin on the domains
    backend, so their [Shm_access] volume is unbounded and would
    overflow any fixed arena, while span volume is bounded by the
    workload. *)

type trace_info = {
  t_ops : int;  (** completed operations in the trace-derived history *)
  t_verdict : (unit, string) result;  (** same checkers as {!run} *)
  t_nesting : string option;  (** {!Lnd_obs.Trace.check} verdict *)
  t_dropped : int;  (** arena-overflow drops (0 = trace complete) *)
  t_events : int;  (** merged events, including synthesized closes *)
  t_trace : Lnd_obs.Trace.t;  (** the finished trace, for export *)
}

val fold_trace : work -> Lnd_obs.Trace.t -> trace_info
(** Fold a finished trace of [work] into the spec history of its
    protocol and judge it. Call {!Lnd_obs.Trace.finish} first. *)

val sim_traced : ?keep:(Lnd_obs.Obs.event -> bool) -> work -> run * trace_info
(** {!sim} with an arena sink installed for the duration ([keep]
    defaults to {!parity_keep}); the golden-baseline path stays
    untraced. *)

(** {2 Golden baselines (sim driver)} *)

val golden_seed_from : int
val golden_seed_count : int

val golden_lines : from:int -> count:int -> string list
(** [sim_line] over seeds [from .. from+count-1] times {!all_protos}. *)

val write_golden : string -> unit

val check_golden : string -> (int * string * string) list
(** Mismatching (line number, expected, got) triples against the
    committed fixture; [[]] means byte-identical. *)
