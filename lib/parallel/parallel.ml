(* Driver #2: the OCaml 5 domains backend, wired to the pure cores.

   Executes the same Diff.work workloads as the simulator, but on
   Lnd_runtime.Domains: one domain per process over mutex-protected
   register cells, real preemption, and a global atomic clock stamping
   the operation history. The protocol logic is exactly the pure
   Sticky_core / Verifiable_core / Testorset_core / Byz_script_core
   machines the simulator drives — this module only owns register
   allocation and history bookkeeping, so any verdict disagreement
   between the backends indicts the cores (or a driver), not a second
   implementation of the protocol.

   [~broken:true] swaps in deliberately broken cores — the protocol
   programs with their final decision step corrupted (a reader that
   reports a value it never adopted, a verifier that always accepts, a
   tester that returns an impossible bit). The corruption is pure and
   termination-preserving, and the conformance suite uses it to prove
   the checkers actually reject divergent behaviour (green = evidence,
   not vacuity). *)

open Lnd_support
module Domains = Lnd_runtime.Domains
module Dcell = Lnd_runtime.Domains.Dcell
module History = Lnd_history.History
module Spec = Lnd_history.Spec
module S_core = Lnd_sticky.Sticky_core
module V_core = Lnd_verifiable.Verifiable_core
module T_core = Lnd_testorset.Testorset_core
module B_core = Lnd_byz.Byz_script_core
module VSet = Value.Set
module Obs = Lnd_obs.Obs
module Trace = Lnd_obs.Trace
open Machine

(* The value broken cores claim; never written by any workload, so the
   validity monitors reject it on sight. *)
let broken_value : Value.t = "zzz"

(* Entries land in a per-pid accumulator: each slot is written only by
   its own domain, and Domain.join orders those writes before the merge
   below reads them. *)
let merge_history (recs : ('op, 'res) History.entry list array) :
    ('op, 'res) History.t =
  { History.entries = List.concat (Array.to_list recs) }

let entry pid op ~inv ~ret res : ('op, 'res) History.entry =
  { History.pid; op; inv; ret = Some (res, ret) }

(* One HELP span per round actually serving askers (the cores mark those
   rounds with Serving/Served notes), mirroring the sim-side protocol
   wrappers; one closure per daemon, since the span id must survive from
   Serving to Served across turns. *)
let help_note () : Machine.note -> unit =
  let sp = ref 0 in
  function
  | Machine.Serving askers ->
      if Obs.enabled () then
        sp :=
          Obs.span_open ~name:"HELP"
            ~arg:(String.concat "," (List.map string_of_int askers))
            ()
  | Machine.Served ->
      if Obs.enabled () then Obs.span_close ~result:"done" ~name:"HELP" !sp

let correct_of (w : Diff.work) : bool array =
  let correct = Array.make w.Diff.n true in
  List.iter (fun pid -> correct.(pid) <- false) (Diff.byzantine_pids w);
  correct

let program_of (w : Diff.work) pid : Diff.item list =
  match List.assoc_opt pid w.Diff.programs with Some p -> p | None -> []

let finish_run (type o r) ~correct
    ~(check : correct:(int -> bool) -> (o, r) History.t -> (unit, string) result)
    ~(render : (o, r) History.t -> string)
    (recs : (o, r) History.entry list array) (outcome : (int, string) result) :
    Diff.run =
  let h = merge_history recs in
  let verdict =
    match outcome with
    | Error m -> Error m
    | Ok _ -> check ~correct:(fun pid -> correct.(pid)) h
  in
  {
    Diff.ops = List.length (History.complete_entries h);
    steps = (match outcome with Ok s -> s | Error _ -> 0);
    verdict;
    rendered = render h;
  }

(* ---------------- Sticky ---------------- *)

let sticky_cells n : S_core.reg -> Dcell.t =
  let vopt_init = Univ.inj Codecs.value_opt None in
  let e =
    Array.init n (fun i ->
        Dcell.make ~name:(Printf.sprintf "E_%d" i) ~init:vopt_init)
  in
  let r =
    Array.init n (fun i ->
        Dcell.make ~name:(Printf.sprintf "R_%d" i) ~init:vopt_init)
  in
  let rjk =
    Array.init n (fun j ->
        Array.init n (fun k ->
            if k = 0 then e.(0) (* placeholder, never used *)
            else
              Dcell.make
                ~name:(Printf.sprintf "R_{%d,%d}" j k)
                ~init:(Univ.inj Codecs.vopt_stamped (None, 0))))
  in
  let c =
    Array.init n (fun k ->
        if k = 0 then e.(0) (* placeholder, never used *)
        else
          Dcell.make
            ~name:(Printf.sprintf "C_%d" k)
            ~init:(Univ.inj Codecs.counter 0))
  in
  function
  | S_core.E i -> e.(i)
  | S_core.R i -> r.(i)
  | S_core.Rjk (j, k) -> rjk.(j).(k)
  | S_core.C k -> c.(k)

let run_sticky ~broken (w : Diff.work) : Diff.run =
  let module S = Spec.Sticky_spec in
  let n = w.Diff.n in
  let q = Quorum.make_relaxed ~n ~f:w.Diff.f in
  let cell = sticky_cells n in
  let correct = correct_of w in
  let recs : (S.op, S.res) History.entry list array = Array.make n [] in
  let record pid op ~inv ~ret res =
    recs.(pid) <- entry pid op ~inv ~ret res :: recs.(pid)
  in
  let d = Domains.create () in
  let help pid =
    Domains.daemon
      ~label:(Printf.sprintf "help%d" pid)
      ~on_note:(help_note ()) ~cell
      (S_core.help_prog ~n ~q ~pid)
  in
  Domains.add_process d ~pid:0 ~daemons:[ help 0 ]
    (List.init w.Diff.writes (fun i ->
         let v = Diff.value_pool.(i mod Array.length Diff.value_pool) in
         Domains.job ~cell
           ~span:("WRITE", Some v)
           ~render:(fun () -> "done")
           ~finish:(fun ~inv ~ret () -> record 0 (S.Write v) ~inv ~ret S.Done)
           (fun () -> S_core.write_prog ~n ~q v)));
  List.iter
    (fun (pid, genome) ->
      Domains.add_process d ~pid
        ~daemons:
          [
            Domains.daemon
              ~label:(Printf.sprintf "byz%d" pid)
              ~critical:false ~cell
              (B_core.sticky_prog ~n ~pid ~genome:(Array.of_list genome)
                 ~value:w.Diff.script_value);
          ]
        [])
    w.Diff.scripts;
  for pid = 1 to n - 1 do
    if correct.(pid) then begin
      let ck = ref 0 in
      let jobs =
        List.map
          (function
            | Diff.I_read ->
                Domains.job ~cell
                  ~span:("READ", None)
                  ~render:(fun (res, _) ->
                    match res with None -> "\xe2\x8a\xa5" | Some v -> "v:" ^ v)
                  ~finish:(fun ~inv ~ret (res, ck') ->
                    ck := ck';
                    record pid S.Read ~inv ~ret (S.Val res))
                  (fun () ->
                    let prog = S_core.read_prog ~n ~q ~pid ~ck:!ck in
                    if broken then
                      let* _, ck' = prog in
                      ret (Some broken_value, ck')
                    else prog)
            | Diff.I_verify _ | Diff.I_test ->
                invalid_arg "Parallel: sticky program")
          (program_of w pid)
      in
      Domains.add_process d ~pid ~daemons:[ help pid ] jobs
    end
  done;
  finish_run ~correct ~check:Diff.check_sticky_history
    ~render:Diff.render_sticky recs (Domains.run d)

(* ---------------- Verifiable ---------------- *)

let verifiable_cells n : V_core.reg -> Dcell.t =
  let rstar = Dcell.make ~name:"R*" ~init:(Univ.inj Codecs.value Value.v0) in
  let r =
    Array.init n (fun i ->
        Dcell.make
          ~name:(Printf.sprintf "R_%d" i)
          ~init:(Univ.inj Codecs.vset VSet.empty))
  in
  let rjk =
    Array.init n (fun j ->
        Array.init n (fun k ->
            if k = 0 then r.(0) (* placeholder, never used *)
            else
              Dcell.make
                ~name:(Printf.sprintf "R_{%d,%d}" j k)
                ~init:(Univ.inj Codecs.vset_stamped (VSet.empty, 0))))
  in
  let c =
    Array.init n (fun k ->
        if k = 0 then rstar (* placeholder, never used *)
        else
          Dcell.make
            ~name:(Printf.sprintf "C_%d" k)
            ~init:(Univ.inj Codecs.counter 0))
  in
  function
  | V_core.Rstar -> rstar
  | V_core.R i -> r.(i)
  | V_core.Rjk (j, k) -> rjk.(j).(k)
  | V_core.C k -> c.(k)

let run_verifiable ~broken (w : Diff.work) : Diff.run =
  let module V = Spec.Verifiable_spec in
  let n = w.Diff.n in
  let q = Quorum.make_relaxed ~n ~f:w.Diff.f in
  let cell = verifiable_cells n in
  let correct = correct_of w in
  let recs : (V.op, V.res) History.entry list array = Array.make n [] in
  let record pid op ~inv ~ret res =
    recs.(pid) <- entry pid op ~inv ~ret res :: recs.(pid)
  in
  let d = Domains.create () in
  let help pid =
    Domains.daemon
      ~label:(Printf.sprintf "help%d" pid)
      ~on_note:(help_note ()) ~cell
      (V_core.help_prog ~n ~q ~pid)
  in
  let written = ref VSet.empty in
  Domains.add_process d ~pid:0 ~daemons:[ help 0 ]
    (List.concat
       (List.init w.Diff.writes (fun i ->
            let v = Diff.value_pool.(i mod Array.length Diff.value_pool) in
            [
              Domains.job ~cell
                ~span:("WRITE", Some v)
                ~render:(fun () -> "done")
                ~finish:(fun ~inv ~ret () ->
                  written := VSet.add v !written;
                  record 0 (V.Write v) ~inv ~ret V.Done)
                (fun () -> V_core.write_prog v);
              Domains.job ~cell
                ~span:("SIGN", Some v)
                ~render:string_of_bool
                ~finish:(fun ~inv ~ret ok ->
                  record 0 (V.Sign v) ~inv ~ret (V.Signed ok))
                (fun () -> V_core.sign_prog ~written:!written v);
            ])));
  List.iter
    (fun (pid, genome) ->
      Domains.add_process d ~pid
        ~daemons:
          [
            Domains.daemon
              ~label:(Printf.sprintf "byz%d" pid)
              ~critical:false ~cell
              (B_core.verifiable_prog ~n ~pid ~genome:(Array.of_list genome)
                 ~value:w.Diff.script_value);
          ]
        [])
    w.Diff.scripts;
  for pid = 1 to n - 1 do
    if correct.(pid) then begin
      let ck = ref 0 in
      let jobs =
        List.map
          (function
            | Diff.I_read ->
                Domains.job ~cell
                  ~span:("READ", None)
                  ~render:(fun v -> "v:" ^ v)
                  ~finish:(fun ~inv ~ret v ->
                    record pid V.Read ~inv ~ret (V.Val v))
                  (fun () ->
                    if broken then
                      let* _ = V_core.read_prog in
                      ret broken_value
                    else V_core.read_prog)
            | Diff.I_verify v ->
                Domains.job ~cell
                  ~span:("VERIFY", Some v)
                  ~render:(fun (ok, _) -> string_of_bool ok)
                  ~finish:(fun ~inv ~ret (ok, ck') ->
                    ck := ck';
                    record pid (V.Verify v) ~inv ~ret (V.Verified ok))
                  (fun () ->
                    let prog = V_core.verify_prog ~n ~q ~pid ~ck:!ck v in
                    if broken then
                      let* _, ck' = prog in
                      ret (true, ck')
                    else prog)
            | Diff.I_test -> invalid_arg "Parallel: verifiable program")
          (program_of w pid)
      in
      Domains.add_process d ~pid ~daemons:[ help pid ] jobs
    end
  done;
  finish_run ~correct ~check:Diff.check_verifiable_history
    ~render:Diff.render_verifiable recs (Domains.run d)

(* ---------------- Test-or-set ---------------- *)

let run_testorset ~broken (w : Diff.work) : Diff.run =
  let module T = Spec.Testorset_spec in
  let n = w.Diff.n in
  let q = Quorum.make_relaxed ~n ~f:w.Diff.f in
  let correct = correct_of w in
  let recs : (T.op, T.res) History.entry list array = Array.make n [] in
  let record pid op ~inv ~ret res =
    recs.(pid) <- entry pid op ~inv ~ret res :: recs.(pid)
  in
  let d = Domains.create () in
  (* Allocate only the half of the composed namespace this construction
     uses; scripted adversaries run against the underlying register's
     own namespace directly. *)
  let cell, help_prog, set_job, test_prog, byz_daemon =
    if w.Diff.tos_verifiable then begin
      let vcell = verifiable_cells n in
      let cell : T_core.reg -> Dcell.t = function
        | T_core.Vreg r -> vcell r
        | T_core.Sreg _ -> invalid_arg "Parallel: sticky reg in verifiable tos"
      in
      let written = ref VSet.empty in
      let set_job () =
        Domains.job ~cell
          ~span:("SET", None)
          ~render:(fun _ -> "done")
          ~finish:(fun ~inv ~ret (signed, written') ->
            written := written';
            if not signed then failwith "SET: sign failed for correct setter";
            record 0 T.Set ~inv ~ret T.Done)
          (fun () -> T_core.set_verifiable_prog ~written:!written)
      in
      ( cell,
        (fun pid -> T_core.help_verifiable_prog ~n ~q ~pid),
        set_job,
        (fun ~pid ~ck -> T_core.test_verifiable_prog ~n ~q ~pid ~ck),
        fun pid genome ->
          Domains.daemon
            ~label:(Printf.sprintf "byz%d" pid)
            ~critical:false ~cell:vcell
            (B_core.verifiable_prog ~n ~pid ~genome ~value:w.Diff.script_value)
      )
    end
    else begin
      let scell = sticky_cells n in
      let cell : T_core.reg -> Dcell.t = function
        | T_core.Sreg r -> scell r
        | T_core.Vreg _ -> invalid_arg "Parallel: verifiable reg in sticky tos"
      in
      let set_job () =
        Domains.job ~cell
          ~span:("SET", None)
          ~render:(fun () -> "done")
          ~finish:(fun ~inv ~ret () -> record 0 T.Set ~inv ~ret T.Done)
          (fun () -> T_core.set_sticky_prog ~n ~q)
      in
      ( cell,
        (fun pid -> T_core.help_sticky_prog ~n ~q ~pid),
        set_job,
        (fun ~pid ~ck -> T_core.test_sticky_prog ~n ~q ~pid ~ck),
        fun pid genome ->
          Domains.daemon
            ~label:(Printf.sprintf "byz%d" pid)
            ~critical:false ~cell:scell
            (B_core.sticky_prog ~n ~pid ~genome ~value:w.Diff.script_value) )
    end
  in
  let help pid =
    Domains.daemon
      ~label:(Printf.sprintf "help%d" pid)
      ~on_note:(help_note ()) ~cell (help_prog pid)
  in
  Domains.add_process d ~pid:0 ~daemons:[ help 0 ]
    (List.init w.Diff.writes (fun _ -> set_job ()));
  List.iter
    (fun (pid, genome) ->
      Domains.add_process d ~pid
        ~daemons:[ byz_daemon pid (Array.of_list genome) ]
        [])
    w.Diff.scripts;
  for pid = 1 to n - 1 do
    if correct.(pid) then begin
      let ck = ref 0 in
      let jobs =
        List.map
          (function
            | Diff.I_test ->
                Domains.job ~cell
                  ~span:("TEST", None)
                  ~render:(fun (bit, _) -> string_of_int bit)
                  ~finish:(fun ~inv ~ret (bit, ck') ->
                    ck := ck';
                    record pid T.Test ~inv ~ret (T.Bit bit))
                  (fun () ->
                    let prog = test_prog ~pid ~ck:!ck in
                    if broken then
                      (* bit 2 is outside the spec's alphabet: no
                         linearization can ever produce it *)
                      let* _, ck' = prog in
                      ret (2, ck')
                    else prog)
            | Diff.I_read | Diff.I_verify _ ->
                invalid_arg "Parallel: testorset program")
          (program_of w pid)
      in
      Domains.add_process d ~pid ~daemons:[ help pid ] jobs
    end
  done;
  finish_run ~correct ~check:Diff.check_testorset_history
    ~render:Diff.render_testorset recs (Domains.run d)

(* ---------------- Entry point ---------------- *)

let run ?(broken = false) (w : Diff.work) : Diff.run =
  match w.Diff.proto with
  | Diff.Sticky -> run_sticky ~broken w
  | Diff.Verifiable -> run_verifiable ~broken w
  | Diff.Testorset -> run_testorset ~broken w

(* Run with a per-domain arena sink installed: every domain records into
   its own preallocated buffer, the arenas merge on the run's unique
   fetch-and-add stamps, and the merged trace folds — through
   Trace_replay — into a second, independently derived history judged by
   the same checkers as the direct one. Operation spans bracket the
   recorded [inv, ret] intervals, so the trace verdict must agree
   whenever the direct verdict is Ok. *)
let run_traced ?(broken = false) ?(keep = Diff.parity_keep) (w : Diff.work) :
    Diff.run * Diff.trace_info =
  let tr = Trace.create ~keep () in
  Obs.install (Trace.sink tr);
  let r = Fun.protect ~finally:Obs.uninstall (fun () -> run ~broken w) in
  Trace.finish tr;
  (r, Diff.fold_trace w tr)

let line ?broken (w : Diff.work) : string =
  let r = run ?broken w in
  Printf.sprintf "%s | %s ops=%d steps=%d | %s" (Diff.describe w)
    (match r.Diff.verdict with Ok () -> "ok" | Error m -> "FAIL(" ^ m ^ ")")
    r.Diff.ops r.Diff.steps r.Diff.rendered
