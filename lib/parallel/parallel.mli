(** Driver #2: the OCaml 5 domains backend.

    Executes {!Diff.work} workloads on {!Lnd_runtime.Domains} — one
    domain per process, mutex-protected registers, real preemption — by
    driving the very same pure cores ([Sticky_core], [Verifiable_core],
    [Testorset_core], [Byz_script_core]) the simulator drives. The run
    folds into a {!Lnd_history.History.t} stamped by the backend's
    atomic clock and is judged by the spec-level checkers of {!Diff}. *)

val broken_value : Lnd_support.Value.t
(** The value the deliberately broken cores claim; never written by any
    workload. *)

val run : ?broken:bool -> Diff.work -> Diff.run
(** Execute a workload on the domains backend. [Diff.run.steps] counts
    machine steps across all domains. [~broken:true] substitutes cores
    whose final decision step is corrupted (pure and
    termination-preserving): a sticky reader that reports
    {!broken_value}, a verifiable reader that reports {!broken_value}
    and a verifier that always accepts, a tester that returns the
    impossible bit 2. The conformance suite uses it to prove the
    checkers reject divergent behaviour. *)

val run_traced :
  ?broken:bool ->
  ?keep:(Lnd_obs.Obs.event -> bool) ->
  Diff.work ->
  Diff.run * Diff.trace_info
(** [run] with a per-domain arena sink installed for the duration:
    domains record into preallocated per-domain buffers, the arenas
    merge deterministically on the run's unique fetch-and-add clock
    stamps, and the merged trace folds (via
    {!Lnd_history.Trace_replay}) into a second, independently derived
    history judged by the same checkers — see {!Diff.fold_trace}.
    [keep] defaults to {!Diff.parity_keep} (operation spans only).
    Operation spans bracket the recorded [[inv, ret]] intervals, so on
    an [Ok] direct verdict the trace verdict is [Ok] too. *)

val line : ?broken:bool -> Diff.work -> string
(** [describe] + verdict + rendered history (same shape as
    {!Diff.sim_line}); for the CLI. Not stable across runs — the domains
    interleaving is real. *)
