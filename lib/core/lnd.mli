(** lie_not_deny — public facade.

    Reproduction of Hu & Toueg, "You can lie but not deny: SWMR registers
    with signature properties in systems with Byzantine processes"
    (PODC 2025). See README.md for a tour and DESIGN.md for the system
    inventory and faithfulness notes.

    The modules below are aliases into the underlying libraries; see each
    module's own interface for its documentation. *)

(** {1 Substrate} *)

module Value = Lnd_support.Value
module Univ = Lnd_support.Univ
module Codecs = Lnd_support.Codecs
module Rng = Lnd_support.Rng
module Register = Lnd_shm.Register
module Space = Lnd_shm.Space
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module Cell = Lnd_runtime.Cell
module Explore = Lnd_runtime.Explore

(** {1 Histories and correctness checking} *)

module History = Lnd_history.History
module Spec = Lnd_history.Spec
module Byzlin = Lnd_history.Byzlin
module Monitors = Lnd_history.Monitors

(** {1 The paper's contributions} *)

module Verifiable = Lnd_verifiable.Verifiable
(** Algorithm 1. *)

module Verifiable_system = Lnd_verifiable.System

module Sticky = Lnd_sticky.Sticky
(** Algorithm 2. *)

module Sticky_system = Lnd_sticky.System

module Testorset = Lnd_testorset.Testorset
(** Observation 25. *)

module Impossibility = Lnd_testorset.Impossibility
(** Theorem 23 / Figures 1-3, executable. *)

(** {1 Adversaries} *)

module Byz_verifiable = Lnd_byz.Byz_verifiable
module Byz_sticky = Lnd_byz.Byz_sticky

(** {1 Baselines and derived systems} *)

module Sigoracle = Lnd_crypto.Sigoracle
module Sig_verifiable = Lnd_sigbase.Sig_verifiable
module Net = Lnd_msgpass.Net
module Auth_broadcast = Lnd_msgpass.Auth_broadcast
module Regemu = Lnd_msgpass.Regemu
module Broadcast = Lnd_broadcast.Broadcast
module Reliable_broadcast = Lnd_broadcast.Reliable
module Bracha = Lnd_msgpass.Bracha
module Snapshot = Lnd_snapshot.Snapshot
module Asset = Lnd_asset.Asset
module Fuzz = Lnd_fuzz.Fuzz

(** {1 Crash-recovery: durability and liveness diagnosis} *)

module Disk = Lnd_durable.Disk
module Wal = Lnd_durable.Wal
module Watchdog = Lnd_runtime.Watchdog
module Chaos = Lnd_fuzz.Chaos

(** {1 Observability: causal op-tracing and metrics} *)

module Obs = Lnd_obs.Obs
module Trace = Lnd_obs.Trace
module Metrics = Lnd_obs.Metrics
module Profile = Lnd_obs.Profile
module Trace_replay = Lnd_history.Trace_replay

(** {1 Accountability: forensic Byzantine blame attribution} *)

module Audit = Lnd_audit.Audit

(** {1 Model checking & adversary synthesis} *)

module Byz_script = Lnd_byz.Byz_script
module Mcheck = Lnd_fuzz.Mcheck
module Scenario = Lnd_fuzz.Scenario
module Synth = Lnd_fuzz.Synth

(** {1 Parallel backend & differential conformance} *)

module Diff = Lnd_parallel.Diff
module Parallel = Lnd_parallel.Parallel
module Domains = Lnd_runtime.Domains
