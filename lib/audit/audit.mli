(** Forensic accountability: online Byzantine blame attribution.

    An auditor is a passive {!Lnd_obs.Obs.sink} — attach it next to a
    recording trace with {!Lnd_obs.Obs.fanout} — that maintains a
    per-process evidence ledger over the event stream and files an
    {!accusation} whenever a process's claims or register writes
    contradict what a correct process could have done.

    The input is receiver-side attribution: every protocol payload is
    recorded as an [Obs.Claim] by its receiver the moment it is decoded
    (before the receiver acts on it), so each utterance on the wire is
    charged to its author independently of anybody's later behaviour —
    the paper's "you can lie but not deny", operationalised.

    Soundness contract — the two guarantees the test suite enforces over
    seeded chaos sweeps:

    - {b zero false blame}: every rule fires only on behaviour no
      correct process can exhibit under any schedule, message faults
      (drops, duplications, delays, partitions) or crash-restarts.
      Justification thresholds are deliberately weaker than the
      protocols' trigger conditions (f+1 where protocols wait for 2f+1),
      and claims always causally follow their justification on the
      stream, so an online check never outruns the evidence. Slowness
      ([Watchdog_stall]) is counted but never charged, and a consistent
      liar (e.g. a false witness that sticks to its story) is never
      accused — such lies are admissible by the model.
    - {b recall}: every detectable injected lie — equivocation, forged
      or unjustified claims, garbage payloads, sticky/witness
      retractions, stale or ill-typed register writes, replayed link
      incarnation epochs, verified-but-never-signed values — produces an
      accusation against the lying pid, with event indices as evidence.

    Detector catalogue (see DESIGN.md §4h for the full table):
    equivocation, forged-init, unjustified-vouch, write-equivocation,
    forged-wreq, unannounced-write, unjustified-wecho, unjustified-wack,
    unjustified-reply, unjustified-state, garbage, epoch-replay,
    counter-regression, witness-retraction, sticky-overwrite,
    mailbox-retraction, stale-stamp, ill-typed-write,
    verify-without-sign. *)

type t

val create :
  ?keep:(Lnd_obs.Obs.event -> bool) -> q:Lnd_support.Quorum.t -> unit -> t
(** [create ~q ()] builds an auditor judging with the thresholds of
    quorum configuration [q] (the same (n, f) the audited protocols
    run under). [keep] mirrors {!Lnd_obs.Trace.create}: span open/close
    events are always processed, other events only when [keep] accepts
    them — give the auditor and the recording trace the same filter and
    every {!evidence} index equals the line number of the exported
    JSONL trace. Default: keep everything. *)

val sink : t -> Lnd_obs.Obs.sink
(** The sink to fan out to (see {!Lnd_obs.Obs.fanout}). *)

val observe : t -> Lnd_obs.Obs.event -> unit
(** Feed one event directly — for replaying recorded event lists in
    tests; [sink] is [observe] behind the seam. *)

type evidence = {
  ev_index : int;  (** index into the kept event stream (= JSONL line) *)
  ev_at : int;  (** logical-clock stamp of the event *)
  ev_pid : int;  (** pid the event was attributed to (the observer) *)
  ev_note : string;
}

type accusation = {
  acc_pid : int;  (** the process being blamed *)
  acc_rule : string;  (** detector that fired, e.g. ["equivocation"] *)
  acc_detail : string;
  acc_evidence : evidence list;
}

type report = {
  rp_accusations : accusation list;
      (** deduplicated per (pid, rule), sorted by (pid, rule); each
          carries the first evidence that proved it *)
  rp_events : int;  (** events processed (after [keep]) *)
  rp_claims : int;  (** receiver-side claims among them *)
  rp_stalls : int;  (** watchdog stall diagnoses — never accusations *)
}

val finalize : ?writer:int -> t -> report
(** Close the ledger and return the verdicts. Runs the one end-of-stream
    detector, verify-without-sign: a VERIFY span that returned [true]
    for a value the [writer] (default pid 0) never successfully SIGNed
    accuses the writer. Idempotent. *)

val accused : report -> int list
(** Distinct accused pids, ascending. *)

val report_to_json : report -> string
(** The whole report as one JSON object (stable field order). *)

val pp_report : Format.formatter -> report -> unit
val pp_accusation : Format.formatter -> accusation -> unit
