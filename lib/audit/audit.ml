(* Online forensic accountability auditor over the Obs event stream.

   The auditor is a passive [Obs.sink]: it watches the same events a
   recording trace sees and maintains a per-process evidence ledger.
   Whenever a process's *claims* (receiver-side [Obs.Claim] records of
   what the process said on the wire) or its register writes contradict
   what a correct process could have done, the auditor files an
   accusation against that process — with the event indices that prove
   it.

   The design constraint is the paper's: "you can lie but not deny".
   A Byzantine process may answer inconsistently, forge, retract or
   garble — but every utterance is attributed to its author (sender
   authenticity is part of the model), so lies leave evidence. The
   auditor must therefore satisfy two asymmetric obligations:

     - ZERO FALSE BLAME. Every accusation rule is sound: it only fires
       on behaviour no correct process can exhibit, under any schedule,
       any message drops/duplications/delays/partitions and any
       crash-restart of the *accused or anyone else*. Slowness is never
       evidence ([Obs.Watchdog_stall] events are counted, never
       charged); neither is consistent lying (a false witness that
       sticks to its story is unimpeachable by construction — that is
       the paper's point).

     - EVIDENCE-BACKED RECALL. When a lie is detectable at all, the
       ledger catches it: equivocation, forgery (claims with no
       justification anywhere in the causal past), retraction of sticky
       or witness state, stale or ill-typed register writes, replayed
       link epochs, verified-but-never-signed values.

   Justification logic: every claim a correct process makes is caused
   by protocol events it witnessed FIRST — and each of those events was
   itself claimed (receiver-side, before acting) or announced
   (writer-side, before broadcasting). Claims are emitted at decode
   time, strictly before the triggered send leaves, and any observer's
   receipt of that send is strictly later on the event stream; so when
   the auditor checks a claim ONLINE, at its own index, the entire
   justifying causal past is already in the ledger. The thresholds are
   deliberately weaker than any correct trigger condition (f+1 vouchers
   where protocols wait for 2f+1), so drops and crash-recovery replays
   can only make a correct process's claims MORE justified, never
   less. *)

open Lnd_support
module Obs = Lnd_obs.Obs

module PidSet = Set.Make (Int)

type evidence = { ev_index : int; ev_at : int; ev_pid : int; ev_note : string }

type accusation = {
  acc_pid : int;
  acc_rule : string;
  acc_detail : string;
  acc_evidence : evidence list;
}

type report = {
  rp_accusations : accusation list;
  rp_events : int;
  rp_claims : int;
  rp_stalls : int;
}

type t = {
  keep : Obs.event -> bool;
  q : Quorum.t;
  mutable seen : int;
  mutable claims : int;
  mutable stalls : int;
  (* (pid, rule) -> accusation; first evidence wins, later duplicates
     are dropped so a chatty liar cannot flood the report *)
  accs : (int * string, accusation) Hashtbl.t;
  (* ---- message-passing ledgers (receiver-side claims) ---- *)
  (* (sender, seq) -> fingerprint -> first evidence; only claims whose
     src IS the sender count (an init relayed by a third party is a
     forgery, not a justification) *)
  inits : (int * int, (string, evidence) Hashtbl.t) Hashtbl.t;
  (* (sender, seq, tag, fingerprint) -> voucher src -> first evidence *)
  vouches : (int * int * string * string, (int, evidence) Hashtbl.t) Hashtbl.t;
  (* reg -> (owner, init fingerprint) *)
  allocs : (int, int * string) Hashtbl.t;
  (* (reg, ts, fingerprint) declared by the owner before its Wreq *)
  anns : (int * int * string, evidence) Hashtbl.t;
  (* (reg, ts) -> fingerprint -> first evidence (owner claims only) *)
  wreqs : (int * int, (string, evidence) Hashtbl.t) Hashtbl.t;
  (* (reg, ts) -> fingerprint -> echoing src set *)
  wechoes : (int * int, (string, (int, evidence) Hashtbl.t) Hashtbl.t) Hashtbl.t;
  (* (reg, ts, fingerprint) -> state-claiming src set *)
  states : (int * int * string, (int, evidence) Hashtbl.t) Hashtbl.t;
  (* pid -> highest rlink incarnation epoch seen *)
  epochs : (int, int * evidence) Hashtbl.t;
  (* ---- shared-memory ledgers (keyed by register name) ---- *)
  ctr_last : (string, int) Hashtbl.t;
  vset_last : (string, Value.Set.t) Hashtbl.t;
  vopt_lock : (string, Value.t) Hashtbl.t;
  row_vset : (string, Value.Set.t) Hashtbl.t;
  row_vopt : (string, Value.t) Hashtbl.t;
  row_stamp : (string, int) Hashtbl.t;
  (* ---- span ledgers (signature properties) ---- *)
  open_spans : (int, string * string option * int) Hashtbl.t;
  signs : (int * string, evidence) Hashtbl.t;
  verifies : (int * string, evidence) Hashtbl.t;
}

let create ?(keep = fun (_ : Obs.event) -> true) ~q () : t =
  {
    keep;
    q;
    seen = 0;
    claims = 0;
    stalls = 0;
    accs = Hashtbl.create 16;
    inits = Hashtbl.create 64;
    vouches = Hashtbl.create 256;
    allocs = Hashtbl.create 16;
    anns = Hashtbl.create 64;
    wreqs = Hashtbl.create 64;
    wechoes = Hashtbl.create 64;
    states = Hashtbl.create 64;
    epochs = Hashtbl.create 16;
    ctr_last = Hashtbl.create 16;
    vset_last = Hashtbl.create 16;
    vopt_lock = Hashtbl.create 16;
    row_vset = Hashtbl.create 64;
    row_vopt = Hashtbl.create 64;
    row_stamp = Hashtbl.create 64;
    open_spans = Hashtbl.create 32;
    signs = Hashtbl.create 16;
    verifies = Hashtbl.create 16;
  }

let accuse t ~pid ~rule ~detail evidence =
  if not (Hashtbl.mem t.accs (pid, rule)) then
    Hashtbl.replace t.accs (pid, rule)
      { acc_pid = pid; acc_rule = rule; acc_detail = detail;
        acc_evidence = evidence }

let sub_table tbl key =
  match Hashtbl.find_opt tbl key with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace tbl key s;
      s

let distinct_srcs srcs = Hashtbl.length srcs

(* Distinct vouchers for (sender, seq, tag, fp). *)
let vouch_count t key =
  match Hashtbl.find_opt t.vouches key with
  | Some srcs -> distinct_srcs srcs
  | None -> 0

let init_claimed t ~sender ~seq ~fp =
  match Hashtbl.find_opt t.inits (sender, seq) with
  | Some fps -> Hashtbl.mem fps fp
  | None -> false

let echo_srcs_of t ~reg ~ts ~fp =
  match Hashtbl.find_opt t.wechoes (reg, ts) with
  | Some by_fp -> Hashtbl.find_opt by_fp fp
  | None -> None

let wecho_count t ~reg ~ts ~fp =
  match echo_srcs_of t ~reg ~ts ~fp with
  | Some srcs -> distinct_srcs srcs
  | None -> 0

(* Distinct processes that either echoed or state-transferred
   (reg, ts, fp): the vouching universe for read replies. *)
let reply_support t ~reg ~ts ~fp =
  let add srcs set =
    Tables.fold_sorted (fun src _ acc -> PidSet.add src acc) srcs set
  in
  let set =
    match echo_srcs_of t ~reg ~ts ~fp with
    | Some srcs -> add srcs PidSet.empty
    | None -> PidSet.empty
  in
  let set =
    match Hashtbl.find_opt t.states (reg, ts, fp) with
    | Some srcs -> add srcs set
    | None -> set
  in
  PidSet.cardinal set

let announced t ~reg ~ts ~fp = Hashtbl.mem t.anns (reg, ts, fp)

let wreq_from_owner t ~reg ~ts ~fp =
  match Hashtbl.find_opt t.wreqs (reg, ts) with
  | Some fps -> Hashtbl.mem fps fp
  | None -> false

(* A read reply / state-transfer triple (reg, ts, fp) a correct replica
   could hold: the register's initial value, or a value vouched for by
   f+1 distinct processes (at least one correct, which itself only held
   ST-accepted state). *)
let triple_justified t ~reg ~ts ~fp =
  let initial =
    ts = 0
    &&
    match Hashtbl.find_opt t.allocs reg with
    | Some (_, init_fp) -> String.equal fp init_fp
    | None -> true (* allocation predates the sink: cannot falsify *)
  in
  initial || Quorum.has_one_correct t.q (reply_support t ~reg ~ts ~fp)

(* ---------------- Claim detectors ---------------- *)

let on_claim t ev ~src (claim : Obs.claim) ~fp =
  t.claims <- t.claims + 1;
  match claim with
  | Obs.Cl_garbage ->
      accuse t ~pid:src ~rule:"garbage"
        ~detail:"sent a payload no protocol codec accepts" [ ev ]
  | Obs.Cl_init { sender; seq } ->
      if sender <> src then
        accuse t ~pid:src ~rule:"forged-init"
          ~detail:
            (Printf.sprintf "sent init(p%d,#%d) impersonating p%d" sender seq
               sender)
          [ ev ]
      else begin
        let fps = sub_table t.inits (sender, seq) in
        match Hashtbl.find_opt fps fp with
        | Some _ -> ()
        | None ->
            Hashtbl.replace fps fp ev;
            if Hashtbl.length fps >= 2 then
              let conflicting =
                Tables.fold_sorted (fun _ e acc -> e :: acc) fps []
              in
              accuse t ~pid:sender ~rule:"equivocation"
                ~detail:
                  (Printf.sprintf "two different slot-#%d messages" seq)
                (List.rev conflicting)
      end
  | Obs.Cl_vouch { sender; seq; tag } ->
      let justified =
        if String.equal tag "echo" then
          init_claimed t ~sender ~seq ~fp
          || Quorum.has_one_correct t.q
               (vouch_count t (sender, seq, "echo", fp))
        else
          Quorum.has_one_correct t.q (vouch_count t (sender, seq, "echo", fp))
          || Quorum.has_one_correct t.q (vouch_count t (sender, seq, tag, fp))
      in
      if not justified then
        accuse t ~pid:src ~rule:"unjustified-vouch"
          ~detail:
            (Printf.sprintf "%s for (p%d,#%d,%s) with no initiation and no \
                             f+1 support in its causal past"
               tag sender seq fp)
          [ ev ];
      let srcs = sub_table t.vouches (sender, seq, tag, fp) in
      if not (Hashtbl.mem srcs src) then Hashtbl.replace srcs src ev
  | Obs.Cl_wreq { reg; ts } -> (
      match Hashtbl.find_opt t.allocs reg with
      | None -> () (* unknown register: ownership cannot be established *)
      | Some (owner, _) ->
          if src <> owner then
            accuse t ~pid:src ~rule:"forged-wreq"
              ~detail:
                (Printf.sprintf "wrote reg %d owned by p%d" reg owner)
              [ ev ]
          else begin
            let fps = sub_table t.wreqs (reg, ts) in
            (match Hashtbl.find_opt fps fp with
            | Some _ -> ()
            | None ->
                Hashtbl.replace fps fp ev;
                if Hashtbl.length fps >= 2 then
                  let conflicting =
                    Tables.fold_sorted (fun _ e acc -> e :: acc) fps []
                  in
                  accuse t ~pid:owner ~rule:"write-equivocation"
                    ~detail:
                      (Printf.sprintf
                         "two different values for write ts%d of reg %d" ts
                         reg)
                    (List.rev conflicting));
            if not (announced t ~reg ~ts ~fp) then
              accuse t ~pid:owner ~rule:"unannounced-write"
                ~detail:
                  (Printf.sprintf
                     "write ts%d of reg %d was never declared on the \
                      owner's own stream"
                     ts reg)
                [ ev ]
          end)
  | Obs.Cl_wecho { reg; ts } ->
      let justified =
        announced t ~reg ~ts ~fp
        || wreq_from_owner t ~reg ~ts ~fp
        || Quorum.has_one_correct t.q (wecho_count t ~reg ~ts ~fp)
      in
      if not justified then
        accuse t ~pid:src ~rule:"unjustified-wecho"
          ~detail:
            (Printf.sprintf
               "echoed (reg %d, ts%d, %s) the owner never requested" reg ts
               fp)
          [ ev ];
      let by_fp = sub_table t.wechoes (reg, ts) in
      let srcs = sub_table by_fp fp in
      if not (Hashtbl.mem srcs src) then Hashtbl.replace srcs src ev
  | Obs.Cl_wack { reg; ts } ->
      let justified =
        match Hashtbl.find_opt t.wechoes (reg, ts) with
        | None -> false
        | Some by_fp ->
            Tables.fold_sorted
              (fun _ srcs ok ->
                ok || Quorum.has_one_correct t.q (distinct_srcs srcs))
              by_fp false
      in
      if not justified then
        accuse t ~pid:src ~rule:"unjustified-wack"
          ~detail:
            (Printf.sprintf
               "acknowledged write ts%d of reg %d without any f+1-echoed \
                value"
               ts reg)
          [ ev ]
  | Obs.Cl_rrep { reg; rid; ts } ->
      if not (triple_justified t ~reg ~ts ~fp) then
        accuse t ~pid:src ~rule:"unjustified-reply"
          ~detail:
            (Printf.sprintf
               "answered read #%d of reg %d with (ts%d, %s), a value no \
                correct replica could hold"
               rid reg ts fp)
          [ ev ]
  | Obs.Cl_state { reg; ts } ->
      if not (triple_justified t ~reg ~ts ~fp) then
        accuse t ~pid:src ~rule:"unjustified-state"
          ~detail:
            (Printf.sprintf
               "state-transferred (reg %d, ts%d, %s), a value no correct \
                replica could hold"
               reg ts fp)
          [ ev ];
      let srcs = sub_table t.states (reg, ts, fp) in
      if not (Hashtbl.mem srcs src) then Hashtbl.replace srcs src ev

(* ---------------- Shared-memory detectors ---------------- *)

let is_prefixed ~prefix name =
  String.length name > String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

(* "C_3" yes; "R_{3,4}" no; "R*" no. *)
let is_simple ~prefix name =
  is_prefixed ~prefix name && not (String.contains name '{')

let pp_set s = String.concat "," (Value.Set.elements s)

let on_shm_write t ev ~pid ~reg value =
  let ill_typed expected =
    accuse t ~pid ~rule:"ill-typed-write"
      ~detail:(Printf.sprintf "wrote non-%s garbage into %s" expected reg)
      [ ev ]
  in
  if is_simple ~prefix:"C_" reg then begin
    match Univ.prj Codecs.counter value with
    | None -> ill_typed "counter"
    | Some c ->
        let prev =
          Option.value ~default:min_int (Hashtbl.find_opt t.ctr_last reg)
        in
        if c < prev then
          accuse t ~pid ~rule:"counter-regression"
            ~detail:(Printf.sprintf "%s went %d -> %d" reg prev c)
            [ ev ];
        Hashtbl.replace t.ctr_last reg c
  end
  else if is_simple ~prefix:"E_" reg || is_simple ~prefix:"R_" reg then begin
    (* Two worlds share the R_ prefix: Algorithm 2 keeps a sticky
       [Value.t option], Algorithm 1 a growing witness [Value.Set.t].
       The codec of the write tells them apart; a write decoding as
       neither is garbage under every reading. *)
    match Univ.prj Codecs.value_opt value with
    | Some vo -> (
        match (Hashtbl.find_opt t.vopt_lock reg, vo) with
        | None, Some v -> Hashtbl.replace t.vopt_lock reg v
        | None, None -> ()
        | Some v0, Some v when Value.equal v0 v -> ()
        | Some v0, Some v ->
            accuse t ~pid ~rule:"sticky-overwrite"
              ~detail:(Printf.sprintf "%s changed %s -> %s" reg v0 v)
              [ ev ]
        | Some v0, None ->
            accuse t ~pid ~rule:"sticky-overwrite"
              ~detail:(Printf.sprintf "%s retracted %s back to ⊥" reg v0)
              [ ev ])
    | None -> (
        match Univ.prj Codecs.vset value with
        | Some s ->
            let prev =
              Option.value ~default:Value.Set.empty
                (Hashtbl.find_opt t.vset_last reg)
            in
            if not (Value.Set.subset prev s) then
              accuse t ~pid ~rule:"witness-retraction"
                ~detail:
                  (Printf.sprintf "%s dropped {%s} down to {%s}" reg
                     (pp_set prev) (pp_set s))
                [ ev ];
            Hashtbl.replace t.vset_last reg s
        | None ->
            if is_simple ~prefix:"E_" reg then ill_typed "value"
            else ill_typed "value/witness-set")
  end
  else if is_prefixed ~prefix:"R_{" reg then begin
    let stamp =
      match Univ.prj Codecs.vset_stamped value with
      | Some (s, c) -> Some (`Set s, c)
      | None -> (
          match Univ.prj Codecs.vopt_stamped value with
          | Some (vo, c) -> Some (`Opt vo, c)
          | None -> None)
    in
    match stamp with
    | None -> ill_typed "stamped-reply"
    | Some (content, c) ->
        let prev =
          Option.value ~default:min_int (Hashtbl.find_opt t.row_stamp reg)
        in
        if c <= prev then
          accuse t ~pid ~rule:"stale-stamp"
            ~detail:(Printf.sprintf "%s answered round %d after %d" reg c prev)
            [ ev ];
        Hashtbl.replace t.row_stamp reg c;
        (match content with
        | `Set s ->
            let prev_s =
              Option.value ~default:Value.Set.empty
                (Hashtbl.find_opt t.row_vset reg)
            in
            if not (Value.Set.subset prev_s s) then
              accuse t ~pid ~rule:"mailbox-retraction"
                ~detail:
                  (Printf.sprintf "%s dropped {%s} down to {%s}" reg
                     (pp_set prev_s) (pp_set s))
                [ ev ];
            Hashtbl.replace t.row_vset reg s
        | `Opt vo -> (
            match (Hashtbl.find_opt t.row_vopt reg, vo) with
            | None, Some v -> Hashtbl.replace t.row_vopt reg v
            | None, None -> ()
            | Some v0, Some v when Value.equal v0 v -> ()
            | Some v0, Some v ->
                accuse t ~pid ~rule:"mailbox-retraction"
                  ~detail:(Printf.sprintf "%s changed %s -> %s" reg v0 v)
                  [ ev ]
            | Some v0, None ->
                accuse t ~pid ~rule:"mailbox-retraction"
                  ~detail:(Printf.sprintf "%s retracted %s back to ⊥" reg v0)
                  [ ev ]))
  end

(* ---------------- Event dispatch ---------------- *)

let observe t (e : Obs.event) =
  let is_span =
    match e.Obs.kind with
    | Obs.Span_open _ | Obs.Span_close _ -> true
    | _ -> false
  in
  (* Mirror [Trace.create ~keep]: spans are always part of the record,
     so evidence indices line up with the exported JSONL line numbers
     when both are given the same [keep]. *)
  if is_span || t.keep e then begin
    let idx = t.seen in
    t.seen <- idx + 1;
    let ev note =
      { ev_index = idx; ev_at = e.Obs.at; ev_pid = e.Obs.pid; ev_note = note }
    in
    match e.Obs.kind with
    | Obs.Claim { src; claim; fp } ->
        on_claim t (ev "claim") ~src claim ~fp
    | Obs.Reg_write_ann { reg; ts; fp } ->
        Hashtbl.replace t.anns (reg, ts, fp) (ev "write-announcement")
    | Obs.Reg_alloc { reg; owner; fp } ->
        if not (Hashtbl.mem t.allocs reg) then
          Hashtbl.replace t.allocs reg (owner, fp)
    | Obs.Link_incarnation { epoch } when e.Obs.pid >= 0 -> (
        let pid = e.Obs.pid in
        match Hashtbl.find_opt t.epochs pid with
        | None -> Hashtbl.replace t.epochs pid (epoch, ev "first incarnation")
        | Some (prev, prev_ev) ->
            if epoch <= prev then
              accuse t ~pid ~rule:"epoch-replay"
                ~detail:
                  (Printf.sprintf
                     "restarted with incarnation epoch %d, not above %d"
                     epoch prev)
                [ prev_ev; ev "replayed incarnation" ]
            else Hashtbl.replace t.epochs pid (epoch, ev "incarnation"))
    | Obs.Link_incarnation _ -> ()
    | Obs.Watchdog_stall _ ->
        (* Slowness is diagnosed, never charged: a process can be late
           without lying. *)
        t.stalls <- t.stalls + 1
    | Obs.Shm_access { access = `Write; reg; value } when e.Obs.pid >= 0 ->
        on_shm_write t (ev "register write") ~pid:e.Obs.pid ~reg value
    | Obs.Shm_access _ -> ()
    | Obs.Span_open { name; arg; _ } ->
        Hashtbl.replace t.open_spans e.Obs.span (name, arg, e.Obs.pid)
    | Obs.Span_close { name; result; _ } -> (
        let opened = Hashtbl.find_opt t.open_spans e.Obs.span in
        Hashtbl.remove t.open_spans e.Obs.span;
        match (opened, result) with
        | Some (oname, Some arg, opid), Some "true"
          when String.equal oname name ->
            if String.equal name "SIGN" then begin
              if not (Hashtbl.mem t.signs (opid, arg)) then
                Hashtbl.replace t.signs (opid, arg) (ev "successful SIGN")
            end
            else if String.equal name "VERIFY" then
              if not (Hashtbl.mem t.verifies (opid, arg)) then
                Hashtbl.replace t.verifies (opid, arg) (ev "VERIFY returned \
                                                            true")
        | _ -> ())
    | Obs.Sched_spawn _ | Obs.Sched_switch _ | Obs.Sched_exit _
    | Obs.Net_verdict _ | Obs.Link_data _ | Obs.Link_ack _
    | Obs.Link_deliver _ | Obs.Link_dedup _ | Obs.Link_stale _
    | Obs.Link_epoch _ | Obs.Reg_round _ | Obs.Reg_reply _ | Obs.Reg_quorum _
    | Obs.Wal_append _ | Obs.Wal_sync _ | Obs.Wal_snapshot _
    | Obs.Wal_recover _ | Obs.Disk_crash _ | Obs.Explore_run _
    | Obs.Explore_stats _ ->
        ()
  end

let sink t : Obs.sink = { Obs.emit = (fun e -> observe t e) }

(* ---------------- Finalisation ---------------- *)

let finalize ?(writer = 0) t : report =
  (* Signature property, judged once the stream is complete: VERIFY
     returning true for v certifies that the writer signed v; if no
     successful SIGN span for v exists anywhere in the writer's record,
     the writer smuggled v into its witness register without running the
     protocol — only a Byzantine writer can do that. The reader is never
     accused: it faithfully reported what the registers showed. *)
  Tables.iter_sorted
    (fun (_, v) ev ->
      if not (Hashtbl.mem t.signs (writer, v)) then
        accuse t ~pid:writer ~rule:"verify-without-sign"
          ~detail:
            (Printf.sprintf
               "%s was verified but the writer never ran a successful \
                SIGN(%s)"
               v v)
          [ ev ])
    t.verifies;
  {
    rp_accusations =
      List.rev (Tables.fold_sorted (fun _ a acc -> a :: acc) t.accs []);
    rp_events = t.seen;
    rp_claims = t.claims;
    rp_stalls = t.stalls;
  }

let accused (r : report) : int list =
  List.sort_uniq compare (List.map (fun a -> a.acc_pid) r.rp_accusations)

(* ---------------- Rendering ---------------- *)

let esc b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let report_to_json (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"events\":%d,\"claims\":%d,\"stalls\":%d,\"accused\":["
       r.rp_events r.rp_claims r.rp_stalls);
  List.iteri
    (fun i pid ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int pid))
    (accused r);
  Buffer.add_string b "],\"accusations\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"pid\":%d,\"rule\":\"" a.acc_pid);
      esc b a.acc_rule;
      Buffer.add_string b "\",\"detail\":\"";
      esc b a.acc_detail;
      Buffer.add_string b "\",\"evidence\":[";
      List.iteri
        (fun j e ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"index\":%d,\"at\":%d,\"pid\":%d,\"note\":\""
               e.ev_index e.ev_at e.ev_pid);
          esc b e.ev_note;
          Buffer.add_string b "\"}")
        a.acc_evidence;
      Buffer.add_string b "]}")
    r.rp_accusations;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_evidence fmt e =
  Format.fprintf fmt "event #%d (t=%d, p%d: %s)" e.ev_index e.ev_at e.ev_pid
    e.ev_note

let pp_accusation fmt a =
  Format.fprintf fmt "@[<v 2>p%d: %s — %s@,%a@]" a.acc_pid a.acc_rule
    a.acc_detail
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_evidence)
    a.acc_evidence

let pp_report fmt (r : report) =
  Format.fprintf fmt "@[<v>%d events, %d claims, %d stalls@," r.rp_events
    r.rp_claims r.rp_stalls;
  (match r.rp_accusations with
  | [] -> Format.fprintf fmt "no accusations@]"
  | accs ->
      Format.fprintf fmt "accused: %s@,%a@]"
        (String.concat ", "
           (List.map (fun p -> Printf.sprintf "p%d" p) (accused r)))
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_accusation)
        accs)
