(* Link-fault fuzzer: generate a random network-fault scenario from a
   seed — a Faultnet plan with aggressive drop/duplication/delay and a
   healing partition, optionally composed with a Byzantine adversary —
   run one of the three message-passing protocols (Srikanth-Toueg
   broadcast, Bracha reliable broadcast, the SWMR register emulation)
   over the retransmission-hardened stack (Rlink over Faultnet), and
   check that safety holds and liveness is recovered.

   One seed = one fully deterministic scenario (sizes, fault plan,
   adversary, schedule), so any failure is replayable from its seed
   alone. Used by the test suite and by `lnd_cli chaos`. *)

open Lnd_support
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module Watchdog = Lnd_runtime.Watchdog
module Space = Lnd_shm.Space
module Net = Lnd_msgpass.Net
module Faultnet = Lnd_msgpass.Faultnet
module Rlink = Lnd_msgpass.Rlink
module Transport = Lnd_msgpass.Transport
module St = Lnd_msgpass.Auth_broadcast
module Bracha = Lnd_msgpass.Bracha
module Regemu = Lnd_msgpass.Regemu
module Disk = Lnd_durable.Disk
module Wal = Lnd_durable.Wal
module Obs = Lnd_obs.Obs
module Trace = Lnd_obs.Trace

type protocol = St_broadcast | Bracha_broadcast | Register

let protocol_name = function
  | St_broadcast -> "st-broadcast"
  | Bracha_broadcast -> "bracha"
  | Register -> "register"

(* Byzantine behaviours composed with the link faults. Byzantine pids
   inject raw traffic through a bare [Net] port — un-enveloped payloads
   pass through the fault and retransmission layers unsequenced, exactly
   the attack surface a real Byzantine process has. *)
type adversary =
  | No_adversary
  | Crash (* Byzantine processes take no steps *)
  | Equivocator (* conflicting init messages for the same slot *)
  | Forger (* forged protocol replies / garbage payloads *)

let adversary_name = function
  | No_adversary -> "none"
  | Crash -> "crash"
  | Equivocator -> "equivocator"
  | Forger -> "forger"

(* A crash-restart injection against one CORRECT pure-replica process
   (register scenarios only). The victim's volatile state dies, its disk
   suffers a seeded torn flush, and a new incarnation recovers from the
   journal, catches up via state transfer, and rejoins. *)
type crash_event = {
  victim : int;
  at_clock : int; (* logical-clock crash instant (and fsync fallback) *)
  at_fsync : int option;
      (* [Some k]: crash mid-barrier at the k-th fsync instead (torn
         write), with [at_clock] as fallback if it never fires *)
}

let pp_crash_event fmt (c : crash_event) =
  match c.at_fsync with
  | None -> Format.fprintf fmt "p%d@%d" c.victim c.at_clock
  | Some k -> Format.fprintf fmt "p%d@fsync%d" c.victim k

type scenario = {
  seed : int;
  protocol : protocol;
  n : int;
  f : int;
  plan : Faultnet.plan;
  adversary : adversary;
  msgs : int; (* broadcasts per correct sender / writes by the owner *)
  crashes : crash_event list; (* sorted by [at_clock] at run time *)
  epoch_bump : bool;
      (* false = restart WITHOUT a new rlink incarnation epoch — the
         pre-epoch bug, kept reproducible: restarted senders collide
         with stale dedup state and the run stalls *)
}

let pp_scenario fmt s =
  Format.fprintf fmt "seed=%d %s n=%d f=%d adversary=%s msgs=%d %a" s.seed
    (protocol_name s.protocol) s.n s.f
    (adversary_name s.adversary)
    s.msgs Faultnet.pp_plan s.plan;
  if s.crashes <> [] then begin
    Format.fprintf fmt " crashes=%a"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
         pp_crash_event)
      s.crashes;
    if not s.epoch_bump then Format.fprintf fmt " legacy-epochs"
  end

(* Derive a scenario deterministically from a seed. Fault rates start at
   20% — the point of the chaos fuzzer is sustained abuse, not an
   occasional lost message. *)
let generate (seed : int) : scenario =
  let rng = Rng.create ((seed * 6007) + 11) in
  let protocol =
    Rng.pick rng [ St_broadcast; Bracha_broadcast; Register ]
  in
  let f = 1 + Rng.int rng 2 in
  let n = (3 * f) + 1 + Rng.int rng 2 in
  let partitions =
    if Rng.bool rng then []
    else begin
      let cut_from = 100 + Rng.int rng 1500 in
      let len = 400 + Rng.int rng 2600 in
      [
        {
          Faultnet.cut_from;
          cut_until = cut_from + len;
          island = [ Rng.int rng n ];
        };
      ]
    end
  in
  let plan =
    {
      Faultnet.fault_seed = (seed * 131) + 3;
      drop_pct = 20 + Rng.int rng 41;
      dup_pct = 20 + Rng.int rng 31;
      delay_pct = 20 + Rng.int rng 41;
      max_delay = 50 + Rng.int rng 450;
      fair_burst = 1 + Rng.int rng 3;
      partitions;
    }
  in
  let adversary =
    let all =
      match protocol with
      | Register ->
          (* the owner stays correct: a Byzantine owner voids the read
             guarantees by design (that case belongs to the sticky layer
             stacked on top, exercised by the main fuzzer) *)
          [ No_adversary; Crash; Forger ]
      | St_broadcast | Bracha_broadcast ->
          [ No_adversary; Crash; Equivocator; Forger ]
    in
    Rng.pick rng all
  in
  {
    seed;
    protocol;
    n;
    f;
    plan;
    adversary;
    msgs = 1 + Rng.int rng 2;
    crashes = [];
    epoch_bump = true;
  }

(* Derive a crash-restart scenario deterministically from a seed: always
   the register emulation (the stateful protocol with something to
   lose), a modest fault plan composed with 1-2 crash events against
   correct pure-replica processes, optionally composed with a Byzantine
   adversary. Victims are drawn from pids [3 .. n-1-f] — never a client
   (0..2) and never a Byzantine pid (the top f) — so every crash hits a
   process whose durable state matters to everyone else's liveness. *)
let generate_crash (seed : int) : scenario =
  let rng = Rng.create ((seed * 9241) + 17) in
  let f = 1 + Rng.int rng 2 in
  let n = max ((3 * f) + 2) (f + 4) + Rng.int rng 2 in
  let plan =
    {
      Faultnet.fault_seed = (seed * 197) + 7;
      drop_pct = 10 + Rng.int rng 21;
      dup_pct = 10 + Rng.int rng 16;
      delay_pct = 10 + Rng.int rng 21;
      max_delay = 30 + Rng.int rng 200;
      fair_burst = 1 + Rng.int rng 2;
      partitions = [];
    }
  in
  let adversary = Rng.pick rng [ No_adversary; Crash; Forger ] in
  let replicas = List.init (n - f - 3) (fun i -> i + 3) in
  let n_events = if Rng.int rng 100 < 35 then 2 else 1 in
  let crashes = ref [] in
  let base = ref (200 + Rng.int rng 2500) in
  for _ = 1 to n_events do
    let victim = Rng.pick rng replicas in
    let at_fsync =
      if Rng.int rng 100 < 30 then Some (1 + Rng.int rng 60) else None
    in
    crashes := { victim; at_clock = !base; at_fsync } :: !crashes;
    base := !base + 600 + Rng.int rng 1500
  done;
  {
    seed;
    protocol = Register;
    n;
    f;
    plan;
    adversary;
    msgs = 1 + Rng.int rng 2;
    crashes = List.rev !crashes;
    epoch_bump = true;
  }

type report = {
  scenario : scenario;
  steps : int;
  net_stats : Faultnet.stats;
  data_sent : int;
  retransmissions : int;
  redundant : int;
  fsyncs : int; (* fsync barriers across all victims' disks; 0 without
                   crash injection *)
}

type outcome = (report, string) result

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "steps=%d sent=%d dropped=%d cut=%d dup=%d delayed=%d data=%d \
     retrans=%d redundant=%d"
    r.steps r.net_stats.Faultnet.sent r.net_stats.Faultnet.dropped
    r.net_stats.Faultnet.cut r.net_stats.Faultnet.duplicated
    r.net_stats.Faultnet.delayed r.data_sent r.retransmissions r.redundant;
  if r.scenario.crashes <> [] then
    Format.fprintf fmt " crashes=%d fsyncs=%d"
      (List.length r.scenario.crashes)
      r.fsyncs

let max_steps = 4_000_000

let value_pool = [| "a"; "b"; "c" |]

let byzantine_pids (s : scenario) : int list =
  match s.adversary with
  | No_adversary -> []
  | Crash | Equivocator | Forger -> List.init s.f (fun i -> s.n - 1 - i)

(* Broadcasters are pids 0 and 1 — never Byzantine (the Byzantine pids
   are the top f of n >= 3f+1 >= 4). *)
let broadcasters (_ : scenario) = [ 0; 1 ]

let sent_value b i = value_pool.((b + i) mod Array.length value_pool)

(* Shared run scaffolding: space, scheduler, fault-wrapped network, and
   one Rlink endpoint per correct pid. *)
type 'p harness = {
  sched : Sched.t;
  net : Net.t;
  fnet : Faultnet.t;
  rlinks : Rlink.t option array;
  correct : bool array;
  procs : 'p option array;
  wd : Watchdog.t;
  disks : Disk.t option array; (* per-victim durable state (crash runs) *)
}

(* Client operations that outlive this many logical-clock ticks are
   reported as stalled — a diagnosable liveness verdict well before the
   step budget burns out (the clock advances at >= 1 per step). *)
let stall_timeout = 3_000_000

let mk_harness (s : scenario) : 'p harness =
  let space = Space.create ~n:s.n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:(s.seed + 1)) in
  let net =
    (Net.create space ~n:s.n
    [@lnd.allow
      "transport-seam: the harness is the one place that builds the stack \
       below the seam (Net, then Faultnet, then Rlink endpoints)"])
  in
  let fnet = Faultnet.wrap net s.plan in
  let correct = Array.make s.n true in
  List.iter (fun pid -> correct.(pid) <- false) (byzantine_pids s);
  {
    sched;
    net;
    fnet;
    rlinks = Array.make s.n None;
    correct;
    procs = Array.make s.n None;
    wd = Watchdog.create sched;
    disks = Array.make s.n None;
  }

(* Spawn a client fiber under watchdog surveillance. The watchdog is
   passive, so watched runs schedule identically to unwatched ones. *)
let spawn_watched (h : 'p harness) ~pid ~name (body : unit -> unit) : unit =
  let fb = Sched.spawn h.sched ~pid ~name body in
  ignore (Watchdog.arm h.wd ~fiber:fb ~op:name ~timeout:stall_timeout)

let rlink (h : 'p harness) ~pid : Rlink.t =
  match h.rlinks.(pid) with
  | Some r -> r
  | None ->
      let r = Rlink.create (Faultnet.transport h.fnet ~pid) in
      h.rlinks.(pid) <- Some r;
      r

let sum_rlink_stats (h : 'p harness) =
  Array.fold_left
    (fun (d, r, red) -> function
      | None -> (d, r, red)
      | Some l ->
          let st = Rlink.stats l in
          ( d + st.Rlink.data_sent,
            r + st.Rlink.retransmissions,
            red + st.Rlink.redundant ))
    (0, 0, 0) h.rlinks

let sum_fsyncs (h : 'p harness) =
  (Array.fold_left
     (fun acc -> function
       | None -> acc
       | Some d -> acc + Disk.fsync_count d)
     0 h.disks
  [@lnd.allow
    "durable-seam: reading the fsync counter for the report is \
     observational — no bytes move"])

(* The full stall diagnosis: which operations are overdue on which
   fibers, plus each correct pid's unacked rlink backlog — enough to see
   WHERE liveness died, and replayable from the seed alone. *)
let stall_diagnosis (s : scenario) (h : 'p harness) : string =
  let pending =
    List.filter_map
      (fun pid ->
        match h.rlinks.(pid) with
        | Some rl when h.correct.(pid) && Rlink.pending rl > 0 ->
            Some (Printf.sprintf "p%d:%d" pid (Rlink.pending rl))
        | _ -> None)
      (List.init s.n Fun.id)
  in
  Format.asprintf
    "stalled at clock %d: %a; rlink unacked [%s]; replay: lnd_cli chaos \
     %s--seed %d"
    (Sched.clock h.sched) Watchdog.pp_stalled
    (Watchdog.stalled h.wd)
    (String.concat " " pending)
    (if s.crashes <> [] then "--crash " else "")
    s.seed

let finish (s : scenario) (h : 'p harness) ~(post : unit -> string option) :
    outcome =
  match
    Sched.run ~max_steps
      ~until:(fun _ -> Watchdog.stalled h.wd <> [])
      h.sched
  with
  | Sched.Budget_exhausted ->
      Error "step budget exhausted (liveness lost under fault plan?)"
  | Sched.Condition_met ->
      (* publish the diagnosis as typed events too, so a recorded trace
         (and the auditor behind it) can tell "slow" from "lying" *)
      Watchdog.emit_stalled h.wd;
      Error (stall_diagnosis s h)
  | Sched.Quiescent -> (
      match
        List.filter
          (fun ((fb : Sched.fiber), e) ->
            (* an injected Disk.Crashed is the crash, not a bug *)
            h.correct.(fb.Sched.pid) && e <> Disk.Crashed)
          (Sched.failures h.sched)
      with
      | (fb, e) :: _ ->
          Error
            (Printf.sprintf "correct fiber %s failed: %s" fb.Sched.fname
               (Printexc.to_string e))
      | [] -> (
          match post () with
          | Some msg -> Error msg
          | None ->
              let data_sent, retransmissions, redundant = sum_rlink_stats h in
              Ok
                {
                  scenario = s;
                  steps = Sched.steps h.sched;
                  net_stats = Faultnet.stats h.fnet;
                  data_sent;
                  retransmissions;
                  redundant;
                  fsyncs = sum_fsyncs h;
                }))

(* ---------------- Srikanth-Toueg broadcast under chaos ---------------- *)

let run_st (s : scenario) : outcome =
  let h = mk_harness s in
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then begin
      let t =
        St.create
          (Rlink.as_transport (rlink h ~pid))
          ~n:s.n ~f:s.f
          ~accept_cb:(fun ~sender:_ ~value:_ ~seq:_ -> ())
      in
      h.procs.(pid) <- Some t;
      ignore
        (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "st%d" pid)
           ~daemon:true (fun () -> St.daemon t))
    end
  done;
  (* Byzantine adversary: raw injection, subject to nothing *)
  ((match s.adversary with
   | No_adversary | Crash -> ()
   | Equivocator ->
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"equiv" (fun () ->
                  let port = Net.port h.net ~pid in
                  Net.broadcast port
                    (Univ.inj St.bmsg_key
                       { St.tag = St.Init; sender = pid; value = "x"; seq = 0 });
                  Net.broadcast port
                    (Univ.inj St.bmsg_key
                       { St.tag = St.Init; sender = pid; value = "y"; seq = 0 }))))
         (byzantine_pids s)
   | Forger ->
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"forger" (fun () ->
                  let port = Net.port h.net ~pid in
                  (* echoes for a message nobody broadcast, plus garbage *)
                  Net.broadcast port
                    (Univ.inj St.bmsg_key
                       { St.tag = St.Echo; sender = 0; value = "z"; seq = 99 });
                  Net.broadcast port (Univ.inj Univ.int 12345))))
         (byzantine_pids s))
  [@lnd.allow
    "transport-seam: Byzantine adversaries inject raw un-enveloped traffic \
     through a bare Net port below the seam by design — that is exactly a \
     real Byzantine process's attack surface"]);
  (* correct broadcasters *)
  List.iter
    (fun b ->
      spawn_watched h ~pid:b ~name:(Printf.sprintf "bc%d" b) (fun () ->
          let t = Option.get h.procs.(b) in
          for i = 0 to s.msgs - 1 do
            ignore (St.broadcast t (sent_value b i))
          done))
    (broadcasters s);
  (* waiters: correctness + relay for correct senders — every correct
     process eventually accepts every correct broadcast, despite the
     fault plan *)
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then
      spawn_watched h ~pid ~name:(Printf.sprintf "wait%d" pid) (fun () ->
          let t = Option.get h.procs.(pid) in
          let all_in () =
            List.for_all
              (fun b ->
                let ok = ref true in
                for i = 0 to s.msgs - 1 do
                  if
                    not (St.accepted t ~sender:b ~value:(sent_value b i) ~seq:i)
                  then ok := false
                done;
                !ok)
              (broadcasters s)
          in
          while not (all_in ()) do
            Sched.yield ()
          done)
  done;
  finish s h ~post:(fun () -> None)

(* ---------------- Bracha reliable broadcast under chaos -------------- *)

let run_bracha (s : scenario) : outcome =
  let h = mk_harness s in
  (* per-pid delivered map for the agreement check *)
  let delivered :
      (int * int, Value.t) Hashtbl.t array =
    Array.init s.n (fun _ -> Hashtbl.create 16)
  in
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then begin
      let p =
        Bracha.create
          (Rlink.as_transport (rlink h ~pid))
          ~n:s.n ~f:s.f
          ~deliver_cb:(fun ~sender ~value ~seq ->
            Hashtbl.replace delivered.(pid) (sender, seq) value)
      in
      h.procs.(pid) <- Some p;
      ignore
        (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "br%d" pid)
           ~daemon:true (fun () -> Bracha.daemon p))
    end
  done;
  ((match s.adversary with
   | No_adversary | Crash -> ()
   | Equivocator ->
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"equiv" (fun () ->
                  let port = Net.port h.net ~pid in
                  Net.broadcast port
                    (Univ.inj Bracha.bmsg_key
                       {
                         Bracha.tag = Bracha.Init;
                         sender = pid;
                         value = "x";
                         seq = 0;
                       });
                  Net.broadcast port
                    (Univ.inj Bracha.bmsg_key
                       {
                         Bracha.tag = Bracha.Init;
                         sender = pid;
                         value = "y";
                         seq = 0;
                       }))))
         (byzantine_pids s)
   | Forger ->
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"forger" (fun () ->
                  let port = Net.port h.net ~pid in
                  Net.broadcast port
                    (Univ.inj Bracha.bmsg_key
                       {
                         Bracha.tag = Bracha.Ready;
                         sender = 0;
                         value = "z";
                         seq = 7;
                       });
                  Net.broadcast port (Univ.inj Univ.int 54321))))
         (byzantine_pids s))
  [@lnd.allow
    "transport-seam: Byzantine adversaries inject raw un-enveloped traffic \
     through a bare Net port below the seam by design"]);
  List.iter
    (fun b ->
      spawn_watched h ~pid:b ~name:(Printf.sprintf "bc%d" b) (fun () ->
          let p = Option.get h.procs.(b) in
          for i = 0 to s.msgs - 1 do
            ignore (Bracha.broadcast p (sent_value b i))
          done))
    (broadcasters s);
  (* totality + validity waiters for correct-sender slots *)
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then
      spawn_watched h ~pid ~name:(Printf.sprintf "wait%d" pid) (fun () ->
          let p = Option.get h.procs.(pid) in
          let all_in () =
            List.for_all
              (fun b ->
                let ok = ref true in
                for i = 0 to s.msgs - 1 do
                  match Bracha.delivered p ~sender:b ~seq:i with
                  | Some v when v = sent_value b i -> ()
                  | _ -> ok := false
                done;
                !ok)
              (broadcasters s)
          in
          while not (all_in ()) do
            Sched.yield ()
          done)
  done;
  (* agreement across correct pids for EVERY delivered slot, including a
     Byzantine equivocator's *)
  let post () =
    let viol = ref None in
    for a = 0 to s.n - 1 do
      for b = a + 1 to s.n - 1 do
        if h.correct.(a) && h.correct.(b) then
          Tables.iter_sorted
            (fun slot va ->
              match Hashtbl.find_opt delivered.(b) slot with
              | Some vb when not (Value.equal va vb) ->
                  let sender, seq = slot in
                  viol :=
                    Some
                      (Printf.sprintf
                         "agreement violated: p%d and p%d delivered %s vs %s \
                          for (p%d,#%d)"
                         a b va vb sender seq)
              | _ -> ())
            delivered.(a)
      done
    done;
    !viol
  in
  finish s h ~post

(* ---------------- Register emulation under chaos --------------------- *)

(* Snapshot-and-truncate period for persistent victims: small enough
   that chaos runs regularly cross generation boundaries (exercising the
   snapshot path under crashes), large enough not to dominate. *)
let snap_every = 48

let run_register (s : scenario) : outcome =
  let h = mk_harness s in
  let emu =
    Regemu.create_on
      ~mk_ep:(fun ~pid -> Rlink.as_transport (rlink h ~pid))
      ~n:s.n ~f:s.f
  in
  let cell =
    Regemu.allocator emu ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 0) ()
  in
  (* Crash victims run the durable stack: a seeded disk, a WAL shared by
     the pid's rlink (epochs, dedup) and regemu (register state), and
     periodic snapshot truncation. Non-victims stay volatile — only the
     processes that can crash pay for durability, and crash-free
     scenarios are byte-identical to the pre-durability fuzzer. *)
  let victims = List.sort_uniq compare (List.map (fun c -> c.victim) s.crashes) in
  if victims <> [] then begin
    Regemu.set_codec emu
      ~enc:(fun v ->
        match Univ.prj Univ.int v with
        | Some i -> string_of_int i
        | None -> "?")
      ~dec:(fun st -> Univ.inj Univ.int (int_of_string st));
    List.iter
      (fun v ->
        let disk =
          (Disk.create ~torn_seed:((s.seed * 77) + v) ()
          [@lnd.allow
            "durable-seam: the chaos harness is the one place that builds \
             (and crashes) the disk under the Wal by design"])
        in
        h.disks.(v) <- Some disk;
        let wal = Wal.create disk ~name:"wal" in
        (* epoch 0 durable BEFORE the incarnation's first send *)
        Rlink.journal_epoch wal 0;
        let rl = Rlink.create ~epoch:0 ~wal (Faultnet.transport h.fnet ~pid:v) in
        Rlink.enable_snapshots rl ~every:snap_every
          ~extra:(fun () -> Regemu.snapshot_records emu ~pid:v);
        h.rlinks.(v) <- Some rl;
        Regemu.attach_wal emu ~pid:v wal)
      victims
  end;
  let rep_fibers : Sched.fiber option array = Array.make s.n None in
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then
      rep_fibers.(pid) <-
        Some
          (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "rep%d" pid)
             ~daemon:true (fun () -> Regemu.replica_daemon emu ~pid))
  done;
  ((match s.adversary with
   | No_adversary | Crash | Equivocator -> ()
   | Forger ->
       (* a Byzantine replica answering reads with a forged, huge
          timestamp — must stay below the f+1 voucher threshold. A real
          Byzantine process reads the wire format, so it unwraps the
          faultnet delivery stamps and rlink Data envelopes correct
          readers send through. *)
       let unwrap payload =
         let payload =
           match Univ.prj Faultnet.fenv_key payload with
           | Some (_, p) -> p
           | None -> payload
         in
         match Univ.prj Rlink.renv_key payload with
         | Some (Rlink.Data (_, _, p)) -> Some p
         | Some (Rlink.Ack _) -> None
         | None -> Some payload
       in
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"forger" ~daemon:true (fun () ->
                  let port = Net.port h.net ~pid in
                  while true do
                    List.iter
                      (fun (src, payload) ->
                        match
                          Option.bind (unwrap payload)
                            (Univ.prj Regemu.emsg_key)
                        with
                        | Some (Regemu.Rreq (reg, rid)) ->
                            Net.send port ~dst:src
                              (Univ.inj Regemu.emsg_key
                                 (Regemu.Rrep
                                    (reg, rid, 999, Univ.inj Univ.int 666)))
                        | _ -> ())
                      (Net.poll_all port);
                    Sched.yield ()
                  done)))
         (byzantine_pids s))
  [@lnd.allow
    "transport-seam: Byzantine adversaries inject raw un-enveloped traffic \
     through a bare Net port below the seam by design"]);
  let wrote_all = ref false in
  let last = s.msgs in
  spawn_watched h ~pid:0 ~name:"writer" (fun () ->
      for i = 1 to last do
        cell.Lnd_runtime.Cell.cell_write (Univ.inj Univ.int i)
      done;
      wrote_all := true);
  (* one concurrent reader: every value read must be genuine *)
  let concurrent = ref [] in
  spawn_watched h ~pid:1 ~name:"reader-c" (fun () ->
      while not !wrote_all do
        concurrent := cell.Lnd_runtime.Cell.cell_read () :: !concurrent;
        Sched.yield ()
      done);
  (* final readers: after the last write completes, a read must return
     the last written value *)
  let final = Array.make s.n None in
  List.iter
    (fun pid ->
      if pid <> 0 && h.correct.(pid) then
        spawn_watched h ~pid ~name:(Printf.sprintf "reader%d" pid) (fun () ->
            while not !wrote_all do
              Sched.yield ()
            done;
            final.(pid) <- Some (cell.Lnd_runtime.Cell.cell_read ())))
    [ 1; 2 ];
  (* The crash controller: for each event (in clock order) run the
     scheduler up to the crash instant — or until an armed fsync fault
     fires and kills the victim's daemon from inside — then tear the
     disk, kill the incarnation's fibers, and boot a successor that
     recovers from the journal, re-announces with a fresh rlink epoch,
     catches up via state transfer, and rejoins as an ordinary replica. *)
  List.iter
    (fun ev ->
      let v = ev.victim in
      let disk = Option.get h.disks.(v) in
      let fiber_dead () =
        match rep_fibers.(v) with
        | Some fb -> (
            match fb.Sched.state with
            | Sched.Finished _ -> true
            | Sched.Ready _ -> false)
        | None -> true
      in
      ((match ev.at_fsync with
       | Some k ->
           Disk.arm_crash disk ~at_fsync:(max k (Disk.fsync_count disk + 1))
       | None -> ())
      [@lnd.allow
        "durable-seam: arming the seeded crash point is the harness's \
         job — protocol code never sees the disk"]);
      ignore
        (Sched.run ~max_steps
           ~until:(fun sch -> fiber_dead () || Sched.clock sch >= ev.at_clock)
           h.sched);
      (Disk.disarm disk
      [@lnd.allow "durable-seam: crash-point bookkeeping, harness-only"]);
      if not (fiber_dead ()) then begin
        (* whole-process crash at this instant: pending bytes torn *)
        (Disk.crash disk
        [@lnd.allow
          "durable-seam: crash injection is the harness's job"]);
        match rep_fibers.(v) with
        | Some fb -> Sched.kill fb
        | None -> ()
      end;
      (* ---- restart: a new incarnation of pid v ---- *)
      let records, wal = Wal.recover disk ~name:"wal" in
      let prev = Rlink.epoch_of_records records in
      let epoch = if s.epoch_bump then prev + 1 else max 0 prev in
      Rlink.journal_epoch wal epoch;
      let rl = Rlink.create ~epoch ~wal (Faultnet.transport h.fnet ~pid:v) in
      Rlink.enable_snapshots rl ~every:snap_every
        ~extra:(fun () -> Regemu.snapshot_records emu ~pid:v);
      h.rlinks.(v) <- Some rl;
      Regemu.forget emu ~pid:v;
      Regemu.attach_wal emu ~pid:v wal;
      Regemu.begin_recovery emu ~pid:v;
      List.iter
        (fun r ->
          if not (Rlink.restore_record rl r) then
            ignore (Regemu.restore_record emu ~pid:v r))
        records;
      rep_fibers.(v) <-
        Some
          (Sched.spawn h.sched ~pid:v ~name:(Printf.sprintf "rec%d" v)
             ~daemon:true (fun () ->
               Regemu.recover_and_serve emu ~pid:v)))
    (List.sort (fun a b -> compare a.at_clock b.at_clock) s.crashes);
  let post () =
    let genuine v =
      match Univ.prj Univ.int v with
      | Some i -> i >= 0 && i <= last
      | None -> false
    in
    match List.find_opt (fun v -> not (genuine v)) !concurrent with
    | Some v ->
        Some
          (Format.asprintf "concurrent read returned non-genuine value %a"
             Univ.pp v)
    | None ->
        let bad = ref None in
        Array.iteri
          (fun pid -> function
            | Some v when Univ.prj Univ.int v <> Some last ->
                bad :=
                  Some
                    (Format.asprintf
                       "final read on p%d returned %a, expected %d" pid
                       Univ.pp v last)
            | _ -> ())
          final;
        !bad
  in
  finish s h ~post

let run (s : scenario) : outcome =
  match s.protocol with
  | St_broadcast -> run_st s
  | Bracha_broadcast -> run_bracha s
  | Register -> run_register s

let run_seed (seed : int) : outcome = run (generate seed)

(* Run a scenario with a recording trace sink installed for the whole
   run (installed BEFORE the harness so [Sched.create] wires the event
   clock), then finish the trace: dangling spans — Help daemons and any
   operation a crash injection killed mid-flight — are force-closed as
   aborted so exports are always well-nested. *)
(* Default export filter: drop the two per-step event classes (fiber
   switches and raw shared-memory accesses) and keep protocol-level
   causality. Span opens/closes survive any filter by construction. *)
let compact_keep (e : Obs.event) =
  match e.kind with
  | Obs.Sched_switch _ | Obs.Shm_access _ -> false
  | _ -> true

let run_traced ?keep (s : scenario) : outcome * Trace.t =
  let tr = Trace.create ?keep () in
  Obs.install (Trace.sink tr);
  let out =
    Fun.protect ~finally:(fun () -> Obs.uninstall ()) (fun () -> run s)
  in
  Trace.finish tr;
  (out, tr)

(* The ground truth an accountability auditor can be held to: Byzantine
   pids that actually LIE on the wire. A Crash adversary's processes
   merely fall silent — silence is slowness, not evidence, so they are
   (correctly) unattributable. *)
let detectable (s : scenario) : int list =
  match s.adversary with
  | No_adversary | Crash -> []
  | Equivocator | Forger -> byzantine_pids s

let run_audited ?keep (s : scenario) :
    outcome * Trace.t * Lnd_audit.Audit.report =
  let tr = Trace.create ?keep () in
  let au =
    Lnd_audit.Audit.create ?keep
      ~q:(Quorum.make_relaxed ~n:s.n ~f:s.f)
      ()
  in
  (* trace first in the fan-out: evidence indices cite trace lines *)
  Obs.install (Obs.fanout [ Trace.sink tr; Lnd_audit.Audit.sink au ]);
  let out =
    Fun.protect ~finally:(fun () -> Obs.uninstall ()) (fun () -> run s)
  in
  Trace.finish tr;
  (out, tr, Lnd_audit.Audit.finalize au)
