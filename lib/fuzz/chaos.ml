(* Link-fault fuzzer: generate a random network-fault scenario from a
   seed — a Faultnet plan with aggressive drop/duplication/delay and a
   healing partition, optionally composed with a Byzantine adversary —
   run one of the three message-passing protocols (Srikanth-Toueg
   broadcast, Bracha reliable broadcast, the SWMR register emulation)
   over the retransmission-hardened stack (Rlink over Faultnet), and
   check that safety holds and liveness is recovered.

   One seed = one fully deterministic scenario (sizes, fault plan,
   adversary, schedule), so any failure is replayable from its seed
   alone. Used by the test suite and by `lnd_cli chaos`. *)

open Lnd_support
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module Space = Lnd_shm.Space
module Net = Lnd_msgpass.Net
module Faultnet = Lnd_msgpass.Faultnet
module Rlink = Lnd_msgpass.Rlink
module Transport = Lnd_msgpass.Transport
module St = Lnd_msgpass.Auth_broadcast
module Bracha = Lnd_msgpass.Bracha
module Regemu = Lnd_msgpass.Regemu

type protocol = St_broadcast | Bracha_broadcast | Register

let protocol_name = function
  | St_broadcast -> "st-broadcast"
  | Bracha_broadcast -> "bracha"
  | Register -> "register"

(* Byzantine behaviours composed with the link faults. Byzantine pids
   inject raw traffic through a bare [Net] port — un-enveloped payloads
   pass through the fault and retransmission layers unsequenced, exactly
   the attack surface a real Byzantine process has. *)
type adversary =
  | No_adversary
  | Crash (* Byzantine processes take no steps *)
  | Equivocator (* conflicting init messages for the same slot *)
  | Forger (* forged protocol replies / garbage payloads *)

let adversary_name = function
  | No_adversary -> "none"
  | Crash -> "crash"
  | Equivocator -> "equivocator"
  | Forger -> "forger"

type scenario = {
  seed : int;
  protocol : protocol;
  n : int;
  f : int;
  plan : Faultnet.plan;
  adversary : adversary;
  msgs : int; (* broadcasts per correct sender / writes by the owner *)
}

let pp_scenario fmt s =
  Format.fprintf fmt "seed=%d %s n=%d f=%d adversary=%s msgs=%d %a" s.seed
    (protocol_name s.protocol) s.n s.f
    (adversary_name s.adversary)
    s.msgs Faultnet.pp_plan s.plan

(* Derive a scenario deterministically from a seed. Fault rates start at
   20% — the point of the chaos fuzzer is sustained abuse, not an
   occasional lost message. *)
let generate (seed : int) : scenario =
  let rng = Rng.create ((seed * 6007) + 11) in
  let protocol =
    Rng.pick rng [ St_broadcast; Bracha_broadcast; Register ]
  in
  let f = 1 + Rng.int rng 2 in
  let n = (3 * f) + 1 + Rng.int rng 2 in
  let partitions =
    if Rng.bool rng then []
    else begin
      let cut_from = 100 + Rng.int rng 1500 in
      let len = 400 + Rng.int rng 2600 in
      [
        {
          Faultnet.cut_from;
          cut_until = cut_from + len;
          island = [ Rng.int rng n ];
        };
      ]
    end
  in
  let plan =
    {
      Faultnet.fault_seed = (seed * 131) + 3;
      drop_pct = 20 + Rng.int rng 41;
      dup_pct = 20 + Rng.int rng 31;
      delay_pct = 20 + Rng.int rng 41;
      max_delay = 50 + Rng.int rng 450;
      fair_burst = 1 + Rng.int rng 3;
      partitions;
    }
  in
  let adversary =
    let all =
      match protocol with
      | Register ->
          (* the owner stays correct: a Byzantine owner voids the read
             guarantees by design (that case belongs to the sticky layer
             stacked on top, exercised by the main fuzzer) *)
          [ No_adversary; Crash; Forger ]
      | St_broadcast | Bracha_broadcast ->
          [ No_adversary; Crash; Equivocator; Forger ]
    in
    Rng.pick rng all
  in
  { seed; protocol; n; f; plan; adversary; msgs = 1 + Rng.int rng 2 }

type report = {
  scenario : scenario;
  steps : int;
  net_stats : Faultnet.stats;
  data_sent : int;
  retransmissions : int;
  redundant : int;
}

type outcome = (report, string) result

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "steps=%d sent=%d dropped=%d cut=%d dup=%d delayed=%d data=%d \
     retrans=%d redundant=%d"
    r.steps r.net_stats.Faultnet.sent r.net_stats.Faultnet.dropped
    r.net_stats.Faultnet.cut r.net_stats.Faultnet.duplicated
    r.net_stats.Faultnet.delayed r.data_sent r.retransmissions r.redundant

let max_steps = 4_000_000

let value_pool = [| "a"; "b"; "c" |]

let byzantine_pids (s : scenario) : int list =
  match s.adversary with
  | No_adversary -> []
  | Crash | Equivocator | Forger -> List.init s.f (fun i -> s.n - 1 - i)

(* Broadcasters are pids 0 and 1 — never Byzantine (the Byzantine pids
   are the top f of n >= 3f+1 >= 4). *)
let broadcasters (_ : scenario) = [ 0; 1 ]

let sent_value b i = value_pool.((b + i) mod Array.length value_pool)

(* Shared run scaffolding: space, scheduler, fault-wrapped network, and
   one Rlink endpoint per correct pid. *)
type 'p harness = {
  sched : Sched.t;
  net : Net.t;
  fnet : Faultnet.t;
  rlinks : Rlink.t option array;
  correct : bool array;
  procs : 'p option array;
}

let mk_harness (s : scenario) : 'p harness =
  let space = Space.create ~n:s.n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:(s.seed + 1)) in
  let net =
    (Net.create space ~n:s.n
    [@lnd.allow
      "transport-seam: the harness is the one place that builds the stack \
       below the seam (Net, then Faultnet, then Rlink endpoints)"])
  in
  let fnet = Faultnet.wrap net s.plan in
  let correct = Array.make s.n true in
  List.iter (fun pid -> correct.(pid) <- false) (byzantine_pids s);
  {
    sched;
    net;
    fnet;
    rlinks = Array.make s.n None;
    correct;
    procs = Array.make s.n None;
  }

let rlink (h : 'p harness) ~pid : Rlink.t =
  match h.rlinks.(pid) with
  | Some r -> r
  | None ->
      let r = Rlink.create (Faultnet.transport h.fnet ~pid) in
      h.rlinks.(pid) <- Some r;
      r

let sum_rlink_stats (h : 'p harness) =
  Array.fold_left
    (fun (d, r, red) -> function
      | None -> (d, r, red)
      | Some l ->
          let st = Rlink.stats l in
          ( d + st.Rlink.data_sent,
            r + st.Rlink.retransmissions,
            red + st.Rlink.redundant ))
    (0, 0, 0) h.rlinks

let finish (s : scenario) (h : 'p harness) ~(post : unit -> string option) :
    outcome =
  match Sched.run ~max_steps h.sched with
  | Sched.Budget_exhausted ->
      Error "step budget exhausted (liveness lost under fault plan?)"
  | Sched.Condition_met -> Error "unexpected stop"
  | Sched.Quiescent -> (
      match
        List.filter
          (fun ((fb : Sched.fiber), _) -> h.correct.(fb.Sched.pid))
          (Sched.failures h.sched)
      with
      | (fb, e) :: _ ->
          Error
            (Printf.sprintf "correct fiber %s failed: %s" fb.Sched.fname
               (Printexc.to_string e))
      | [] -> (
          match post () with
          | Some msg -> Error msg
          | None ->
              let data_sent, retransmissions, redundant = sum_rlink_stats h in
              Ok
                {
                  scenario = s;
                  steps = Sched.steps h.sched;
                  net_stats = Faultnet.stats h.fnet;
                  data_sent;
                  retransmissions;
                  redundant;
                }))

(* ---------------- Srikanth-Toueg broadcast under chaos ---------------- *)

let run_st (s : scenario) : outcome =
  let h = mk_harness s in
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then begin
      let t =
        St.create
          (Rlink.as_transport (rlink h ~pid))
          ~n:s.n ~f:s.f
          ~accept_cb:(fun ~sender:_ ~value:_ ~seq:_ -> ())
      in
      h.procs.(pid) <- Some t;
      ignore
        (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "st%d" pid)
           ~daemon:true (fun () -> St.daemon t))
    end
  done;
  (* Byzantine adversary: raw injection, subject to nothing *)
  ((match s.adversary with
   | No_adversary | Crash -> ()
   | Equivocator ->
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"equiv" (fun () ->
                  let port = Net.port h.net ~pid in
                  Net.broadcast port
                    (Univ.inj St.bmsg_key
                       { St.tag = St.Init; sender = pid; value = "x"; seq = 0 });
                  Net.broadcast port
                    (Univ.inj St.bmsg_key
                       { St.tag = St.Init; sender = pid; value = "y"; seq = 0 }))))
         (byzantine_pids s)
   | Forger ->
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"forger" (fun () ->
                  let port = Net.port h.net ~pid in
                  (* echoes for a message nobody broadcast, plus garbage *)
                  Net.broadcast port
                    (Univ.inj St.bmsg_key
                       { St.tag = St.Echo; sender = 0; value = "z"; seq = 99 });
                  Net.broadcast port (Univ.inj Univ.int 12345))))
         (byzantine_pids s))
  [@lnd.allow
    "transport-seam: Byzantine adversaries inject raw un-enveloped traffic \
     through a bare Net port below the seam by design — that is exactly a \
     real Byzantine process's attack surface"]);
  (* correct broadcasters *)
  List.iter
    (fun b ->
      ignore
        (Sched.spawn h.sched ~pid:b ~name:(Printf.sprintf "bc%d" b) (fun () ->
             let t = Option.get h.procs.(b) in
             for i = 0 to s.msgs - 1 do
               ignore (St.broadcast t (sent_value b i))
             done)))
    (broadcasters s);
  (* waiters: correctness + relay for correct senders — every correct
     process eventually accepts every correct broadcast, despite the
     fault plan *)
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then
      ignore
        (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "wait%d" pid)
           (fun () ->
             let t = Option.get h.procs.(pid) in
             let all_in () =
               List.for_all
                 (fun b ->
                   let ok = ref true in
                   for i = 0 to s.msgs - 1 do
                     if
                       not
                         (St.accepted t ~sender:b ~value:(sent_value b i)
                            ~seq:i)
                     then ok := false
                   done;
                   !ok)
                 (broadcasters s)
             in
             while not (all_in ()) do
               Sched.yield ()
             done))
  done;
  finish s h ~post:(fun () -> None)

(* ---------------- Bracha reliable broadcast under chaos -------------- *)

let run_bracha (s : scenario) : outcome =
  let h = mk_harness s in
  (* per-pid delivered map for the agreement check *)
  let delivered :
      (int * int, Value.t) Hashtbl.t array =
    Array.init s.n (fun _ -> Hashtbl.create 16)
  in
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then begin
      let p =
        Bracha.create
          (Rlink.as_transport (rlink h ~pid))
          ~n:s.n ~f:s.f
          ~deliver_cb:(fun ~sender ~value ~seq ->
            Hashtbl.replace delivered.(pid) (sender, seq) value)
      in
      h.procs.(pid) <- Some p;
      ignore
        (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "br%d" pid)
           ~daemon:true (fun () -> Bracha.daemon p))
    end
  done;
  ((match s.adversary with
   | No_adversary | Crash -> ()
   | Equivocator ->
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"equiv" (fun () ->
                  let port = Net.port h.net ~pid in
                  Net.broadcast port
                    (Univ.inj Bracha.bmsg_key
                       {
                         Bracha.tag = Bracha.Init;
                         sender = pid;
                         value = "x";
                         seq = 0;
                       });
                  Net.broadcast port
                    (Univ.inj Bracha.bmsg_key
                       {
                         Bracha.tag = Bracha.Init;
                         sender = pid;
                         value = "y";
                         seq = 0;
                       }))))
         (byzantine_pids s)
   | Forger ->
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"forger" (fun () ->
                  let port = Net.port h.net ~pid in
                  Net.broadcast port
                    (Univ.inj Bracha.bmsg_key
                       {
                         Bracha.tag = Bracha.Ready;
                         sender = 0;
                         value = "z";
                         seq = 7;
                       });
                  Net.broadcast port (Univ.inj Univ.int 54321))))
         (byzantine_pids s))
  [@lnd.allow
    "transport-seam: Byzantine adversaries inject raw un-enveloped traffic \
     through a bare Net port below the seam by design"]);
  List.iter
    (fun b ->
      ignore
        (Sched.spawn h.sched ~pid:b ~name:(Printf.sprintf "bc%d" b) (fun () ->
             let p = Option.get h.procs.(b) in
             for i = 0 to s.msgs - 1 do
               ignore (Bracha.broadcast p (sent_value b i))
             done)))
    (broadcasters s);
  (* totality + validity waiters for correct-sender slots *)
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then
      ignore
        (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "wait%d" pid)
           (fun () ->
             let p = Option.get h.procs.(pid) in
             let all_in () =
               List.for_all
                 (fun b ->
                   let ok = ref true in
                   for i = 0 to s.msgs - 1 do
                     match Bracha.delivered p ~sender:b ~seq:i with
                     | Some v when v = sent_value b i -> ()
                     | _ -> ok := false
                   done;
                   !ok)
                 (broadcasters s)
             in
             while not (all_in ()) do
               Sched.yield ()
             done))
  done;
  (* agreement across correct pids for EVERY delivered slot, including a
     Byzantine equivocator's *)
  let post () =
    let viol = ref None in
    for a = 0 to s.n - 1 do
      for b = a + 1 to s.n - 1 do
        if h.correct.(a) && h.correct.(b) then
          Tables.iter_sorted
            (fun slot va ->
              match Hashtbl.find_opt delivered.(b) slot with
              | Some vb when not (Value.equal va vb) ->
                  let sender, seq = slot in
                  viol :=
                    Some
                      (Printf.sprintf
                         "agreement violated: p%d and p%d delivered %s vs %s \
                          for (p%d,#%d)"
                         a b va vb sender seq)
              | _ -> ())
            delivered.(a)
      done
    done;
    !viol
  in
  finish s h ~post

(* ---------------- Register emulation under chaos --------------------- *)

let run_register (s : scenario) : outcome =
  let h = mk_harness s in
  let emu =
    Regemu.create_on
      ~mk_ep:(fun ~pid -> Rlink.as_transport (rlink h ~pid))
      ~n:s.n ~f:s.f
  in
  let cell =
    Regemu.allocator emu ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 0) ()
  in
  for pid = 0 to s.n - 1 do
    if h.correct.(pid) then
      ignore
        (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "rep%d" pid)
           ~daemon:true (fun () -> Regemu.replica_daemon emu ~pid))
  done;
  ((match s.adversary with
   | No_adversary | Crash | Equivocator -> ()
   | Forger ->
       (* a Byzantine replica answering reads with a forged, huge
          timestamp — must stay below the f+1 voucher threshold *)
       List.iter
         (fun pid ->
           ignore
             (Sched.spawn h.sched ~pid ~name:"forger" ~daemon:true (fun () ->
                  let port = Net.port h.net ~pid in
                  while true do
                    List.iter
                      (fun (src, payload) ->
                        match Univ.prj Regemu.emsg_key payload with
                        | Some (Regemu.Rreq (reg, rid)) ->
                            Net.send port ~dst:src
                              (Univ.inj Regemu.emsg_key
                                 (Regemu.Rrep
                                    (reg, rid, 999, Univ.inj Univ.int 666)))
                        | _ -> ())
                      (Net.poll_all port);
                    Sched.yield ()
                  done)))
         (byzantine_pids s))
  [@lnd.allow
    "transport-seam: Byzantine adversaries inject raw un-enveloped traffic \
     through a bare Net port below the seam by design"]);
  let wrote_all = ref false in
  let last = s.msgs in
  ignore
    (Sched.spawn h.sched ~pid:0 ~name:"writer" (fun () ->
         for i = 1 to last do
           cell.Lnd_runtime.Cell.cell_write (Univ.inj Univ.int i)
         done;
         wrote_all := true));
  (* one concurrent reader: every value read must be genuine *)
  let concurrent = ref [] in
  ignore
    (Sched.spawn h.sched ~pid:1 ~name:"reader-c" (fun () ->
         while not !wrote_all do
           concurrent := cell.Lnd_runtime.Cell.cell_read () :: !concurrent;
           Sched.yield ()
         done));
  (* final readers: after the last write completes, a read must return
     the last written value *)
  let final = Array.make s.n None in
  List.iter
    (fun pid ->
      if pid <> 0 && h.correct.(pid) then
        ignore
          (Sched.spawn h.sched ~pid ~name:(Printf.sprintf "reader%d" pid)
             (fun () ->
               while not !wrote_all do
                 Sched.yield ()
               done;
               final.(pid) <- Some (cell.Lnd_runtime.Cell.cell_read ()))))
    [ 1; 2 ];
  let post () =
    let genuine v =
      match Univ.prj Univ.int v with
      | Some i -> i >= 0 && i <= last
      | None -> false
    in
    match List.find_opt (fun v -> not (genuine v)) !concurrent with
    | Some v ->
        Some
          (Format.asprintf "concurrent read returned non-genuine value %a"
             Univ.pp v)
    | None ->
        let bad = ref None in
        Array.iteri
          (fun pid -> function
            | Some v when Univ.prj Univ.int v <> Some last ->
                bad :=
                  Some
                    (Format.asprintf
                       "final read on p%d returned %a, expected %d" pid
                       Univ.pp v last)
            | _ -> ())
          final;
        !bad
  in
  finish s h ~post

let run (s : scenario) : outcome =
  match s.protocol with
  | St_broadcast -> run_st s
  | Bracha_broadcast -> run_bracha s
  | Register -> run_register s

let run_seed (seed : int) : outcome = run (generate seed)
