(** Link-fault fuzzer: one seed = one deterministic network-fault
    scenario — a {!Lnd_msgpass.Faultnet} plan with aggressive
    drop/duplication/delay (>= 20% each) and a healing partition,
    optionally composed with a Byzantine adversary — run over the
    retransmission-hardened stack ({!Lnd_msgpass.Rlink} over
    {!Lnd_msgpass.Faultnet}) for one of the three message-passing
    protocols. Safety is checked unconditionally (sender authenticity,
    agreement, genuine reads); liveness (every correct broadcast
    accepted / delivered everywhere, writes and reads terminating) is
    checked because every generated plan is fair-lossy. Any failure
    replays from its seed alone. Used by the test suite and
    [lnd_cli chaos]. *)

type protocol = St_broadcast | Bracha_broadcast | Register

val protocol_name : protocol -> string

(** Byzantine behaviours composed with the link faults; Byzantine pids
    inject raw traffic through a bare [Net] port, below the fault and
    retransmission layers. *)
type adversary =
  | No_adversary
  | Crash  (** Byzantine processes take no steps *)
  | Equivocator  (** conflicting init messages for the same slot *)
  | Forger  (** forged protocol replies / garbage payloads *)

val adversary_name : adversary -> string

type scenario = {
  seed : int;
  protocol : protocol;
  n : int;
  f : int;
  plan : Lnd_msgpass.Faultnet.plan;
  adversary : adversary;
  msgs : int;  (** broadcasts per correct sender / writes by the owner *)
}

val pp_scenario : Format.formatter -> scenario -> unit

val generate : int -> scenario
(** Derive a scenario deterministically from a seed. *)

type report = {
  scenario : scenario;
  steps : int;
  net_stats : Lnd_msgpass.Faultnet.stats;
  data_sent : int;  (** rlink data messages, summed over correct pids *)
  retransmissions : int;
  redundant : int;  (** duplicate deliveries suppressed by rlink *)
}

type outcome = (report, string) result

val pp_report : Format.formatter -> report -> unit

val run : scenario -> outcome
val run_seed : int -> outcome
