(** Link-fault fuzzer: one seed = one deterministic network-fault
    scenario — a {!Lnd_msgpass.Faultnet} plan with aggressive
    drop/duplication/delay (>= 20% each) and a healing partition,
    optionally composed with a Byzantine adversary — run over the
    retransmission-hardened stack ({!Lnd_msgpass.Rlink} over
    {!Lnd_msgpass.Faultnet}) for one of the three message-passing
    protocols. Safety is checked unconditionally (sender authenticity,
    agreement, genuine reads); liveness (every correct broadcast
    accepted / delivered everywhere, writes and reads terminating) is
    checked because every generated plan is fair-lossy. Any failure
    replays from its seed alone. Used by the test suite and
    [lnd_cli chaos]. *)

type protocol = St_broadcast | Bracha_broadcast | Register

val protocol_name : protocol -> string

(** Byzantine behaviours composed with the link faults; Byzantine pids
    inject raw traffic through a bare [Net] port, below the fault and
    retransmission layers. *)
type adversary =
  | No_adversary
  | Crash  (** Byzantine processes take no steps *)
  | Equivocator  (** conflicting init messages for the same slot *)
  | Forger  (** forged protocol replies / garbage payloads *)

val adversary_name : adversary -> string

(** A crash-restart injection against one correct pure-replica process
    (register scenarios only): the victim's volatile state dies, its
    disk suffers a seeded torn flush, and a new incarnation recovers
    from the journal, catches up via state transfer from [n-f] peers,
    and rejoins. *)
type crash_event = {
  victim : int;
  at_clock : int;  (** logical-clock crash instant (and fsync fallback) *)
  at_fsync : int option;
      (** [Some k]: crash mid-barrier at the k-th fsync instead (torn
          write), with [at_clock] as fallback if it never fires *)
}

val pp_crash_event : Format.formatter -> crash_event -> unit

type scenario = {
  seed : int;
  protocol : protocol;
  n : int;
  f : int;
  plan : Lnd_msgpass.Faultnet.plan;
  adversary : adversary;
  msgs : int;  (** broadcasts per correct sender / writes by the owner *)
  crashes : crash_event list;  (** sorted by [at_clock] at run time *)
  epoch_bump : bool;
      (** [false] restarts WITHOUT a new rlink incarnation epoch — the
          pre-epoch bug, kept reproducible: the restarted sender's
          messages are swallowed by stale dedup state and the run
          stalls *)
}

val pp_scenario : Format.formatter -> scenario -> unit

val generate : int -> scenario
(** Derive a scenario deterministically from a seed ([crashes = []]:
    plain link-fault chaos, byte-identical to the pre-durability
    fuzzer). *)

val generate_crash : int -> scenario
(** Derive a crash-restart scenario deterministically from a seed:
    always the register emulation, a modest fault plan, 1-2 crash
    events against correct pure-replica pids (never a client, never a
    Byzantine pid), optionally composed with a Byzantine adversary. *)

type report = {
  scenario : scenario;
  steps : int;
  net_stats : Lnd_msgpass.Faultnet.stats;
  data_sent : int;  (** rlink data messages, summed over correct pids *)
  retransmissions : int;
  redundant : int;  (** duplicate deliveries suppressed by rlink *)
  fsyncs : int;
      (** fsync barriers across all victims' disks; 0 without crash
          injection *)
}

type outcome = (report, string) result

val pp_report : Format.formatter -> report -> unit

val run : scenario -> outcome
val run_seed : int -> outcome

val byzantine_pids : scenario -> int list
(** The pids the adversary controls (the top [f] of [n]); [[]] under
    [No_adversary]. *)

val detectable : scenario -> int list
(** The Byzantine pids an accountability auditor can be held to
    attributing: those that actually lie on the wire ([Equivocator] and
    [Forger] pids). A [Crash] adversary's processes merely fall silent,
    which is indistinguishable from slowness — accusing them would be
    false blame. *)

val compact_keep : Lnd_obs.Obs.event -> bool
(** Default export filter: keeps everything except per-step
    [Sched_switch] and [Shm_access] events. Shared by [lnd_cli trace]
    and the golden-trace fixtures. *)

val run_traced :
  ?keep:(Lnd_obs.Obs.event -> bool) -> scenario -> outcome * Lnd_obs.Trace.t
(** Run with a recording {!Lnd_obs.Trace} sink installed for the whole
    run, then {!Lnd_obs.Trace.finish} it (dangling daemon/killed-fiber
    spans are closed as aborted). [keep] filters non-span events. The
    sink is uninstalled on return, even if the run raises. *)

val run_audited :
  ?keep:(Lnd_obs.Obs.event -> bool) ->
  scenario ->
  outcome * Lnd_obs.Trace.t * Lnd_audit.Audit.report
(** Like {!run_traced}, but with an {!Lnd_audit.Audit} accountability
    auditor fanned out next to the recording trace (same [keep], so
    every evidence index in the report is a line number of the trace's
    JSONL export). Returns the finalized blame report: the auditor's
    accusations must cover {!detectable} pids and never name a correct
    one. *)
