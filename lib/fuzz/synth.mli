(** Adversary synthesis: guided search over schedules × Byzantine
    scripts.

    Where {!Mcheck.explore} checks every schedule of one fixed
    adversary, the synthesiser also searches the adversary space: a
    candidate is a batch of schedule seeds plus one
    {!Lnd_byz.Byz_script} genome per scripted pid, its fitness is
    derived from the run's event trace (correct reads driven to ⊥,
    then worst READ latency), and hill-climbing mutates one seed or
    one gene per round. The first run whose check raises becomes a
    {!Scenario.t} expecting a violation. *)

type outcome = {
  found : Scenario.t option;  (** the violating scenario, if any *)
  evals : int;  (** schedules executed *)
  rounds_used : int;
  best_fitness : int;
}

val fitness_of_events : Lnd_obs.Obs.event list -> int
(** [1000 ×] (completed correct READs returning ⊥ / TESTs returning 0)
    [+] the worst READ span latency in steps. Exposed for tests. *)

val hillclimb :
  ?rounds:int ->
  ?batch:int ->
  ?max_steps:int ->
  seed:int ->
  name:string ->
  Mcheck.config ->
  outcome
(** Deterministic in [seed]. [base.scripts] is the starting genome;
    exploration runs with [audit = true] so traces (and hence fitness)
    are available. Defaults: 50 rounds of 6 seeds, 20k-step runs. *)
