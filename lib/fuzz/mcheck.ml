(* Model-checking harness: paper configurations as explorable systems.

   Mcheck turns one declarative [config] — protocol, (n, f), which pids
   are actually Byzantine (possibly more than the declared f: the
   deliberately weakened configurations), their Byz_script genomes and
   the correct clients' programs — into the (make, check) pair the
   Lnd_runtime.Explore engines drive. [make] builds a fresh
   deterministic system for every explored schedule; [check] runs at
   quiescence and raises [Property_violated] when the run breaks a
   paper property:

   - no correct fiber crashed;
   - the observational monitors (uniqueness/validity for sticky,
     relay/validity/unforgeability for verifiable);
   - stickiness: a completed correct read that returned v ≠ ⊥ (or a
     TEST that returned 1) is never followed by a correct read
     returning ⊥ (resp. 0) — Observation 18 / Definition 20;
   - Byzantine linearizability of the recorded history (Theorems 14,
     19, Observation 25) via the exhaustive Lnd_history.Byzlin checker;
   - blame soundness: with [audit = true] every run also streams its
     events through the forensic auditor, and an accusation against a
     correct pid is itself a violation (zero false blame must hold on
     every schedule, not just the sampled ones).

   The per-run event trace (audit mode) and a Space-observer access
   counter are exposed so the synthesiser can derive fitness metrics
   and the T15 benchmark can report work per schedule. *)

open Lnd_support
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module Explore = Lnd_runtime.Explore
module Space = Lnd_shm.Space
module History = Lnd_history.History
module Monitors = Lnd_history.Monitors
module Obs = Lnd_obs.Obs
module Trace = Lnd_obs.Trace
module Audit = Lnd_audit.Audit
module Byz_script = Lnd_byz.Byz_script

type model = Verifiable | Sticky | Testorset

let model_name = function
  | Verifiable -> "verifiable"
  | Sticky -> "sticky"
  | Testorset -> "testorset"

let model_of_name = function
  | "verifiable" -> Some Verifiable
  | "sticky" -> Some Sticky
  | "testorset" -> Some Testorset
  | _ -> None

type config = {
  model : model;
  n : int;
  f : int; (* declared f: fixes every quorum threshold *)
  byzantine : int list; (* actually faulty pids; may exceed f *)
  scripts : (int * int list) list; (* Byz_script genome per scripted pid *)
  script_value : Value.t; (* the value scripted adversaries claim *)
  readers : int list; (* pids running a client read program *)
  reads : int; (* operations per reader *)
  writes : int; (* writer operations (testorset: SETs) *)
  audit : bool; (* stream every run through trace + auditor *)
}

exception Property_violated of string

let violated fmt = Printf.ksprintf (fun m -> raise (Property_violated m)) fmt

let note (c : config) : string =
  Printf.sprintf "%s n=%d f=%d byz=[%s]%s readers=[%s] reads=%d writes=%d"
    (model_name c.model) c.n c.f
    (String.concat "," (List.map string_of_int c.byzantine))
    (match c.scripts with
    | [] -> ""
    | ss ->
        " scripts="
        ^ String.concat "+"
            (List.map
               (fun (pid, g) ->
                 Printf.sprintf "%d:[%s]" pid
                   (String.concat "," (List.map string_of_int g)))
               ss))
    (String.concat "," (List.map string_of_int c.readers))
    c.reads c.writes

(* The default exploration target: the smallest paper configuration,
   n = 3f + 1 = 4 with one naysaying colluder. *)
let default : config =
  {
    model = Sticky;
    n = 4;
    f = 1;
    byzantine = [ 3 ];
    scripts = [ (3, [ 2; 2; 0 ]) ];
    script_value = "a";
    readers = [ 1 ];
    reads = 1;
    writes = 1;
    audit = false;
  }

(* The deliberately weakened configuration for adversary synthesis:
   two actual colluders against quorums sized for f = 1, so a schedule
   plus a support-then-retract script pair can drive a correct reader
   to ⊥ after another correct read returned the value. *)
let weakened : config =
  {
    default with
    byzantine = [ 2; 3 ];
    scripts = [ (2, [ 2; 2; 2; 0 ]); (3, [ 2; 2; 2; 0 ]) ];
    readers = [ 1 ];
    reads = 2;
  }

let value_pool = [| "a"; "b"; "c" |]

(* ---------------- Per-run state shared between make and check -------- *)

type runstate = {
  rs_correct : bool array;
  rs_sched : Sched.t;
  rs_failures : unit -> (Sched.fiber * exn) list;
  rs_check_protocol : unit -> unit; (* monitors + stickiness + byzlin *)
  rs_audit : Audit.t option;
  rs_trace : Trace.t option;
}

type instance = {
  cfg : config;
  make : Policy.t -> Sched.t;
  check : Sched.t -> unit;
  last_events : unit -> Obs.event list;
      (* the last run's event trace; empty unless [audit] *)
  last_accesses : unit -> int; (* register accesses in the last run *)
  teardown : unit -> unit; (* detach the Obs sink, if any was installed *)
}

(* Cap for the exhaustive linearizability search (cf. Fuzz.byzlin_op_cap);
   mcheck client programs stay far below it. *)
let byzlin_op_cap = 14

(* Stickiness over the correct sub-history: [vret e] maps an entry to
   [Some v-or-bottom] for read-like completions. *)
let check_sticky_order ~what entries ~(vret : 'e -> Value.t option option)
    ~(precedes : 'e -> 'e -> bool) =
  List.iter
    (fun a ->
      match vret a with
      | Some (Some v) ->
          List.iter
            (fun b ->
              match vret b with
              | Some None when precedes a b ->
                  violated "%s violated: a correct read returned %s, a later one ⊥"
                    what v
              | _ -> ())
            entries
      | _ -> ())
    entries

let make_sticky (c : config) (policy : Policy.t) =
  let module Sys = Lnd_sticky.System in
  let t = Sys.make ~policy ~byzantine:c.byzantine ~n:c.n ~f:c.f () in
  List.iter
    (fun (pid, genome) ->
      ignore
        (Byz_script.spawn_sticky t.sched t.regs
           (Byz_script.make ~pid ~genome ~value:c.script_value)))
    c.scripts;
  if t.correct.(0) then
    ignore
      (Sys.client t ~pid:0 ~name:"writer" (fun () ->
           for i = 0 to c.writes - 1 do
             Sys.op_write t value_pool.(i mod Array.length value_pool)
           done));
  List.iter
    (fun pid ->
      if pid <= 0 || pid >= c.n then invalid_arg "Mcheck: bad reader pid";
      if t.correct.(pid) then
        ignore
          (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
               for _ = 1 to c.reads do
                 ignore (Sys.op_read t ~pid)
               done)))
    c.readers;
  let check_protocol () =
    let correct pid = t.correct.(pid) in
    (match
       Monitors.check_all
         (Monitors.uniqueness ~correct t.history
         @ Monitors.sticky_validity ~correct ~writer:0 t.history)
     with
    | Ok () -> ()
    | Error msg -> violated "%s" msg);
    let module S = Lnd_history.Spec.Sticky_spec in
    check_sticky_order ~what:"stickiness"
      (History.complete_entries (History.restrict t.history ~correct))
      ~vret:(fun (e : (S.op, S.res) History.entry) ->
        match (e.op, e.ret) with
        | S.Read, Some (S.Val v, _) -> Some v
        | _ -> None)
      ~precedes:History.precedes;
    if List.length (History.complete_entries t.history) <= byzlin_op_cap then
      if
        not
          (try Sys.byz_linearizable t
           with Lnd_history.Spec.Search_too_large -> true)
      then violated "history not Byzantine linearizable (sticky)"
  in
  (t.space, t.sched, t.correct, check_protocol)

let make_verifiable (c : config) (policy : Policy.t) =
  let module Sys = Lnd_verifiable.System in
  let t = Sys.make ~policy ~byzantine:c.byzantine ~n:c.n ~f:c.f () in
  List.iter
    (fun (pid, genome) ->
      ignore
        (Byz_script.spawn_verifiable t.sched t.regs
           (Byz_script.make ~pid ~genome ~value:c.script_value)))
    c.scripts;
  if t.correct.(0) then
    ignore
      (Sys.client t ~pid:0 ~name:"writer" (fun () ->
           for i = 0 to c.writes - 1 do
             let v = value_pool.(i mod Array.length value_pool) in
             Sys.op_write t v;
             ignore (Sys.op_sign t v)
           done));
  List.iter
    (fun pid ->
      if pid <= 0 || pid >= c.n then invalid_arg "Mcheck: bad reader pid";
      if t.correct.(pid) then
        ignore
          (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
               for i = 1 to c.reads do
                 if i mod 2 = 1 then ignore (Sys.op_verify t ~pid "a")
                 else ignore (Sys.op_read t ~pid)
               done)))
    c.readers;
  let check_protocol () =
    let correct pid = t.correct.(pid) in
    (match
       Monitors.check_all
         (Monitors.relay ~correct t.history
         @ Monitors.validity ~correct t.history
         @ Monitors.unforgeability ~correct ~writer:0 t.history)
     with
    | Ok () -> ()
    | Error msg -> violated "%s" msg);
    if List.length (History.complete_entries t.history) <= byzlin_op_cap then
      if
        not
          (try Sys.byz_linearizable t
           with Lnd_history.Spec.Search_too_large -> true)
      then violated "history not Byzantine linearizable (verifiable)"
  in
  (t.space, t.sched, t.correct, check_protocol)

let make_testorset (c : config) (policy : Policy.t) =
  let module Sys = Lnd_testorset.Testorset in
  let t =
    Sys.make ~policy ~byzantine:c.byzantine ~impl:Sys.Sticky_based ~n:c.n
      ~f:c.f ()
  in
  (match t.backend with
  | Sys.B_sticky (regs, _, _) ->
      List.iter
        (fun (pid, genome) ->
          ignore
            (Byz_script.spawn_sticky t.sched regs
               (Byz_script.make ~pid ~genome ~value:"1")))
        c.scripts
  | Sys.B_verifiable (regs, _, _) ->
      List.iter
        (fun (pid, genome) ->
          ignore
            (Byz_script.spawn_verifiable t.sched regs
               (Byz_script.make ~pid ~genome ~value:"1")))
        c.scripts);
  if t.correct.(0) then
    ignore
      (Sys.client t ~pid:0 ~name:"setter" (fun () ->
           for _ = 1 to c.writes do
             Sys.op_set t
           done));
  List.iter
    (fun pid ->
      if pid <= 0 || pid >= c.n then invalid_arg "Mcheck: bad reader pid";
      if t.correct.(pid) then
        ignore
          (Sys.client t ~pid ~name:(Printf.sprintf "t%d" pid) (fun () ->
               for _ = 1 to c.reads do
                 ignore (Sys.op_test t ~pid)
               done)))
    c.readers;
  let check_protocol () =
    let correct pid = t.correct.(pid) in
    let module T = Lnd_history.Spec.Testorset_spec in
    check_sticky_order ~what:"test-or-set stickiness"
      (History.complete_entries (History.restrict t.history ~correct))
      ~vret:(fun (e : (T.op, T.res) History.entry) ->
        match (e.op, e.ret) with
        | T.Test, Some (T.Bit 1, _) -> Some (Some "1")
        | T.Test, Some (T.Bit _, _) -> Some None
        | _ -> None)
      ~precedes:History.precedes;
    if List.length (History.complete_entries t.history) <= byzlin_op_cap then
      if
        not
          (try Sys.byz_linearizable t
           with Lnd_history.Spec.Search_too_large -> true)
      then violated "history not Byzantine linearizable (test-or-set)"
  in
  (t.space, t.sched, t.correct, check_protocol)

let instance (c : config) : instance =
  if c.n < 2 then invalid_arg "Mcheck: n must be >= 2";
  List.iter
    (fun (pid, _) ->
      if not (List.mem pid c.byzantine) then
        invalid_arg "Mcheck: scripted pid must be listed as byzantine")
    c.scripts;
  let state : runstate option ref = ref None in
  let accesses = ref 0 in
  let installed = ref false in
  let make policy =
    accesses := 0;
    let space, sched, correct, check_protocol =
      match c.model with
      | Sticky -> make_sticky c policy
      | Verifiable -> make_verifiable c policy
      | Testorset -> make_testorset c policy
    in
    Space.set_observer space (Some (fun _ -> incr accesses));
    let trace, audit =
      if not c.audit then (None, None)
      else begin
        let tr = Trace.create () in
        let au =
          Audit.create ~q:(Quorum.make_relaxed ~n:c.n ~f:c.f) ()
        in
        Obs.install (Obs.fanout [ Trace.sink tr; Audit.sink au ]);
        installed := true;
        (Some tr, Some au)
      end
    in
    state :=
      Some
        {
          rs_correct = correct;
          rs_sched = sched;
          rs_failures = (fun () -> Sched.failures sched);
          rs_check_protocol = check_protocol;
          rs_audit = audit;
          rs_trace = trace;
        };
    sched
  in
  let check _sched =
    match !state with
    | None -> ()
    | Some rs ->
        (match
           List.filter
             (fun ((fb : Sched.fiber), _) -> rs.rs_correct.(fb.Sched.pid))
             (rs.rs_failures ())
         with
        | (fb, e) :: _ ->
            violated "correct fiber %s failed: %s" fb.Sched.fname
              (Printexc.to_string e)
        | [] -> ());
        rs.rs_check_protocol ();
        (match rs.rs_audit with
        | None -> ()
        | Some au ->
            let report = Audit.finalize au in
            List.iter
              (fun pid ->
                if rs.rs_correct.(pid) then
                  violated "auditor blamed correct pid %d" pid)
              (Audit.accused report))
  in
  {
    cfg = c;
    make;
    check;
    last_events =
      (fun () ->
        match !state with
        | Some { rs_trace = Some tr; _ } -> Trace.events tr
        | _ -> []);
    last_accesses = (fun () -> !accesses);
    teardown = (fun () -> if !installed then Obs.uninstall ());
  }

(* ---------------- Exploration entry points ---------------- *)

let explore ?(mode = `Dpor) ?max_steps ?max_runs ?max_preempts (c : config) :
    Explore.result =
  let i = instance c in
  Fun.protect ~finally:i.teardown (fun () ->
      match mode with
      | `Dpor ->
          Explore.dpor ~make:i.make ~check:i.check ?max_steps ?max_runs
            ?max_preempts ~note:(note c) ()
      | `Naive ->
          Explore.exhaustive ~make:i.make ~check:i.check ?max_steps ?max_runs
            ~note:(note c) ())

let swarm ?max_steps ~seeds (c : config) : Explore.result =
  let i = instance c in
  Fun.protect ~finally:i.teardown (fun () ->
      Explore.swarm ~make:i.make ~check:i.check ?max_steps ~note:(note c)
        ~seeds ())

let replay ?max_steps (c : config) (s : Explore.schedule) :
    (unit, exn) result =
  let i = instance c in
  Fun.protect ~finally:i.teardown (fun () ->
      Explore.replay ~make:i.make ~check:i.check ?max_steps s)
