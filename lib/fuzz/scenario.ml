(* Serialised counterexamples: the "lnd-scenario v1" format.

   A scenario is one Mcheck configuration plus one Explore schedule and
   an expectation — everything needed to re-execute a synthesised or
   model-checked run deterministically. Violating scenarios found by
   Explore/Synth are saved under test/fixtures/scenarios/ and re-run by
   the regression suite (and the CI explore job), so every
   counterexample the explorers ever surfaced stays reproducible.

   The format is line-based so fixtures diff well:

     lnd-scenario v1
     name: weakened-retract
     note: sticky n=4 f=1 byz=[2,3] ...
     model: sticky
     n: 4
     f: 1
     byzantine: 2,3
     script: 2 = 2,2,2,0
     script: 3 = 2,2,2,0
     value: a
     readers: 1
     reads: 2
     writes: 1
     audit: false
     expect: violation
     schedule: fids 1,2,2,0,...

   Blank lines and lines starting with '#' are ignored; unknown keys are
   an error (a format extension must bump the version line). *)

module Explore = Lnd_runtime.Explore

type expect = Violation | Pass

type t = {
  sc_name : string;
  sc_note : string; (* free text; newlines are not representable *)
  sc_cfg : Mcheck.config;
  sc_expect : expect;
  sc_schedule : Explore.schedule;
}

let magic = "lnd-scenario v1"

(* ---------------- Rendering ---------------- *)

let oneline s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let ints_to l = String.concat "," (List.map string_of_int l)

let schedule_to = function
  | Explore.Fids l -> "fids " ^ ints_to l
  | Explore.Indices l -> "indices " ^ ints_to l
  | Explore.Seed s -> "seed " ^ string_of_int s

let to_string (s : t) : string =
  let c = s.sc_cfg in
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "%s" magic;
  line "name: %s" (oneline s.sc_name);
  if s.sc_note <> "" then line "note: %s" (oneline s.sc_note);
  line "model: %s" (Mcheck.model_name c.Mcheck.model);
  line "n: %d" c.Mcheck.n;
  line "f: %d" c.Mcheck.f;
  line "byzantine: %s" (ints_to c.Mcheck.byzantine);
  List.iter
    (fun (pid, g) -> line "script: %d = %s" pid (ints_to g))
    c.Mcheck.scripts;
  line "value: %s" (oneline c.Mcheck.script_value);
  line "readers: %s" (ints_to c.Mcheck.readers);
  line "reads: %d" c.Mcheck.reads;
  line "writes: %d" c.Mcheck.writes;
  line "audit: %b" c.Mcheck.audit;
  line "expect: %s"
    (match s.sc_expect with Violation -> "violation" | Pass -> "pass");
  line "schedule: %s" (schedule_to s.sc_schedule);
  Buffer.contents b

(* ---------------- Parsing ---------------- *)

let ( let* ) = Result.bind

let ints_of s =
  let s = String.trim s in
  if s = "" then Ok []
  else
    try
      Ok
        (List.map
           (fun x -> int_of_string (String.trim x))
           (String.split_on_char ',' s))
    with Failure _ -> Error (Printf.sprintf "bad integer list %S" s)

let int_of key s =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer for %s: %S" key s)

let schedule_of s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> Error (Printf.sprintf "bad schedule %S" s)
  | Some i -> (
      let tag = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "fids" ->
          let* l = ints_of rest in
          Ok (Explore.Fids l)
      | "indices" ->
          let* l = ints_of rest in
          Ok (Explore.Indices l)
      | "seed" ->
          let* v = int_of "seed" rest in
          Ok (Explore.Seed v)
      | _ -> Error (Printf.sprintf "unknown schedule kind %S" tag))

let of_string (text : string) : (t, string) result =
  let lines =
    List.filteri (fun _ l -> String.trim l <> "" && (String.trim l).[0] <> '#')
      (String.split_on_char '\n' text)
    |> List.map String.trim
  in
  match lines with
  | [] -> Error "empty scenario"
  | hd :: rest when hd = magic ->
      let cfg = ref Mcheck.default in
      let cfg_scripts = ref [] in
      let name = ref None in
      let note = ref "" in
      let expect = ref None in
      let schedule = ref None in
      let kv l =
        match String.index_opt l ':' with
        | None -> Error (Printf.sprintf "not a key: value line: %S" l)
        | Some i ->
            Ok
              ( String.trim (String.sub l 0 i),
                String.trim (String.sub l (i + 1) (String.length l - i - 1)) )
      in
      let field l =
        let* k, v = kv l in
        match k with
        | "name" ->
            name := Some v;
            Ok ()
        | "note" ->
            note := v;
            Ok ()
        | "model" -> (
            match Mcheck.model_of_name v with
            | Some m ->
                cfg := { !cfg with Mcheck.model = m };
                Ok ()
            | None -> Error (Printf.sprintf "unknown model %S" v))
        | "n" ->
            let* n = int_of k v in
            cfg := { !cfg with Mcheck.n };
            Ok ()
        | "f" ->
            let* f = int_of k v in
            cfg := { !cfg with Mcheck.f };
            Ok ()
        | "byzantine" ->
            let* l = ints_of v in
            cfg := { !cfg with Mcheck.byzantine = l };
            Ok ()
        | "script" -> (
            match String.index_opt v '=' with
            | None -> Error (Printf.sprintf "bad script line %S" v)
            | Some i ->
                let* pid = int_of "script pid" (String.sub v 0 i) in
                let* g =
                  ints_of (String.sub v (i + 1) (String.length v - i - 1))
                in
                cfg_scripts := !cfg_scripts @ [ (pid, g) ];
                Ok ())
        | "value" ->
            cfg := { !cfg with Mcheck.script_value = v };
            Ok ()
        | "readers" ->
            let* l = ints_of v in
            cfg := { !cfg with Mcheck.readers = l };
            Ok ()
        | "reads" ->
            let* r = int_of k v in
            cfg := { !cfg with Mcheck.reads = r };
            Ok ()
        | "writes" ->
            let* w = int_of k v in
            cfg := { !cfg with Mcheck.writes = w };
            Ok ()
        | "audit" -> (
            match bool_of_string_opt v with
            | Some b ->
                cfg := { !cfg with Mcheck.audit = b };
                Ok ()
            | None -> Error (Printf.sprintf "bad audit flag %S" v))
        | "expect" -> (
            match v with
            | "violation" ->
                expect := Some Violation;
                Ok ()
            | "pass" ->
                expect := Some Pass;
                Ok ()
            | _ -> Error (Printf.sprintf "unknown expectation %S" v))
        | "schedule" ->
            let* s = schedule_of v in
            schedule := Some s;
            Ok ()
        | _ -> Error (Printf.sprintf "unknown key %S" k)
      in
      let* () =
        List.fold_left
          (fun acc l ->
            let* () = acc in
            field l)
          (Ok ()) rest
      in
      let* name =
        match !name with Some n -> Ok n | None -> Error "missing name"
      in
      let* expect =
        match !expect with Some e -> Ok e | None -> Error "missing expect"
      in
      let* schedule =
        match !schedule with Some s -> Ok s | None -> Error "missing schedule"
      in
      Ok
        {
          sc_name = name;
          sc_note = !note;
          sc_cfg = { !cfg with Mcheck.scripts = !cfg_scripts };
          sc_expect = expect;
          sc_schedule = schedule;
        }
  | hd :: _ -> Error (Printf.sprintf "bad magic line %S (want %S)" hd magic)

(* ---------------- Files ---------------- *)

let save (path : string) (s : t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s))

let load (path : string) : (t, string) result =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error e -> Error e

(* ---------------- Execution ---------------- *)

let of_violation ~name (cfg : Mcheck.config) (cx : Explore.counterexample) : t =
  {
    sc_name = name;
    sc_note =
      Printf.sprintf "%s | %s" cx.Explore.cx_note
        (Printexc.to_string cx.Explore.cx_exn);
    sc_cfg = cfg;
    sc_expect = Violation;
    sc_schedule = cx.Explore.cx_schedule;
  }

let run ?max_steps (s : t) : (unit, string) result =
  match Mcheck.replay ?max_steps s.sc_cfg s.sc_schedule with
  | Ok () -> (
      match s.sc_expect with
      | Pass -> Ok ()
      | Violation -> Error "expected a violation, but the check passed")
  | Error e -> (
      match s.sc_expect with
      | Violation -> Ok ()
      | Pass ->
          Error
            (Printf.sprintf "expected a clean run, but the check raised: %s"
               (Printexc.to_string e)))
  | exception Explore.Replay_diverged { at; reason } ->
      Error (Printf.sprintf "replay diverged at step %d: %s" at reason)
