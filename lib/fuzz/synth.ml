(* Adversary synthesis: guided search over the joint space of schedules
   and Byzantine scripts.

   DPOR answers "does ANY schedule of THIS adversary violate"; the
   synthesiser inverts the quantifier and searches for the adversary
   too. A candidate is (seed batch, script genomes); its fitness is
   derived from the last run's event trace — completed correct reads
   that returned ⊥ dominate (each is one classification away from a
   stickiness violation), with the worst observed READ span latency as
   a tie-breaker (contention means the adversary is interfering).
   Hill-climbing mutates either one seed (move through schedule space)
   or one genome gene (move through adversary space, via
   Byz_script.mutate) and keeps the candidate iff fitness does not
   drop. The moment any run's check raises, the counterexample is
   packaged as a Scenario expecting a violation — ready to save under
   test/fixtures/scenarios/ and replay forever. *)

open Lnd_support
module Explore = Lnd_runtime.Explore
module Obs = Lnd_obs.Obs
module Metrics = Lnd_obs.Metrics
module Byz_script = Lnd_byz.Byz_script

type outcome = {
  found : Scenario.t option; (* the violating scenario, if any *)
  evals : int; (* schedules executed *)
  rounds_used : int;
  best_fitness : int;
}

(* Fitness of one quiescent run, from its event trace. *)
let fitness_of_events (evs : Obs.event list) : int =
  let bots =
    List.fold_left
      (fun acc (e : Obs.event) ->
        match e.Obs.kind with
        | Obs.Span_close { name = "READ"; result = Some "⊥"; _ }
        | Obs.Span_close { name = "TEST"; result = Some "0"; _ } ->
            acc + 1
        | _ -> acc)
      0 evs
  in
  let worst_read =
    match Metrics.histogram (Metrics.of_events evs) "span.READ.steps" with
    | Some h -> h.Metrics.max
    | None -> 0
  in
  (bots * 1000) + worst_read

type cand = { cd_seeds : int list; cd_scripts : (int * int list) list }

let mutate_cand (rng : Rng.t) (base : Mcheck.config) (c : cand) : cand =
  if c.cd_scripts = [] || Rng.bool rng then
    (* move in schedule space: replace one seed *)
    let arr = Array.of_list c.cd_seeds in
    let i = Rng.int rng (Array.length arr) in
    arr.(i) <- Rng.int rng 1_000_000;
    { c with cd_seeds = Array.to_list arr }
  else begin
    (* move in adversary space: mutate one genome *)
    let arr = Array.of_list c.cd_scripts in
    let i = Rng.int rng (Array.length arr) in
    let pid, genome = arr.(i) in
    let sc =
      Byz_script.mutate rng
        (Byz_script.make ~pid ~genome ~value:base.Mcheck.script_value)
    in
    arr.(i) <- (pid, Byz_script.genome sc);
    { c with cd_scripts = Array.to_list arr }
  end

(* Run every seed of the candidate; the best per-run fitness, or the
   counterexample if any check raised. *)
let eval ~max_steps (base : Mcheck.config) (c : cand) :
    [ `Fitness of int | `Violation of Mcheck.config * Explore.counterexample ]
    =
  let cfg = { base with Mcheck.scripts = c.cd_scripts; audit = true } in
  let i = Mcheck.instance cfg in
  Fun.protect ~finally:i.Mcheck.teardown (fun () ->
      let best = ref 0 in
      try
        List.iter
          (fun seed ->
            ignore
              (Explore.swarm ~make:i.Mcheck.make ~check:i.Mcheck.check
                 ~max_steps ~note:(Mcheck.note cfg) ~seeds:[ seed ] ());
            let f = fitness_of_events (i.Mcheck.last_events ()) in
            if f > !best then best := f)
          c.cd_seeds;
        `Fitness !best
      with Explore.Violation cx -> `Violation (cfg, cx))

let hillclimb ?(rounds = 50) ?(batch = 6) ?(max_steps = 20_000) ~seed ~name
    (base : Mcheck.config) : outcome =
  let rng = Rng.create seed in
  let evals = ref 0 in
  let current =
    ref
      {
        cd_seeds = List.init batch (fun _ -> Rng.int rng 1_000_000);
        cd_scripts = base.Mcheck.scripts;
      }
  in
  let best_fit = ref (-1) in
  let found = ref None in
  let round = ref 0 in
  while !found = None && !round < rounds do
    incr round;
    let cand =
      if !round = 1 then !current else mutate_cand rng base !current
    in
    evals := !evals + List.length cand.cd_seeds;
    match eval ~max_steps base cand with
    | `Violation (cfg, cx) -> found := Some (Scenario.of_violation ~name cfg cx)
    | `Fitness f ->
        if f >= !best_fit then begin
          best_fit := f;
          current := cand
        end
  done;
  {
    found = !found;
    evals = !evals;
    rounds_used = !round;
    best_fitness = !best_fit;
  }
