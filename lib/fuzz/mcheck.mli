(** Model-checking harness: paper configurations as explorable systems.

    One declarative {!config} — protocol, (n, f), the actually-faulty
    pids (possibly more than the declared [f]: the deliberately
    weakened configurations), their {!Lnd_byz.Byz_script} genomes and
    the correct clients' programs — becomes the (make, check) pair the
    {!Lnd_runtime.Explore} engines drive. [check] runs at quiescence
    and raises {!Property_violated} when a run breaks a paper
    property: a correct fiber crashed, an observational monitor fired,
    stickiness was broken (a correct read of v ≠ ⊥ followed by a
    correct read of ⊥; Observation 18 / Definition 20), the recorded
    history is not Byzantine linearizable, or — with [audit = true] —
    the forensic auditor blamed a correct pid. *)

open Lnd_support
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module Explore = Lnd_runtime.Explore

type model = Verifiable | Sticky | Testorset

val model_name : model -> string
val model_of_name : string -> model option

type config = {
  model : model;
  n : int;
  f : int;  (** declared f: fixes every quorum threshold *)
  byzantine : int list;  (** actually faulty pids; may exceed [f] *)
  scripts : (int * int list) list;
      (** {!Lnd_byz.Byz_script} genome per scripted pid; a Byzantine
          pid without a script simply crashes (takes no steps) *)
  script_value : Value.t;  (** the value scripted adversaries claim *)
  readers : int list;  (** pids running a client read program *)
  reads : int;  (** operations per reader *)
  writes : int;  (** writer operations (testorset: SETs) *)
  audit : bool;  (** stream every run through trace + auditor *)
}

exception Property_violated of string

val note : config -> string
(** One-line rendering, used as the counterexample note. *)

val default : config
(** The smallest paper configuration: sticky, n = 4, f = 1, one
    honest-then-naysaying colluder, one reader, one write. *)

val weakened : config
(** The deliberately weakened synthesis target: two actual colluders
    against quorums sized for f = 1 (support-then-retract scripts can
    break stickiness on the right schedule). *)

type instance = {
  cfg : config;
  make : Policy.t -> Sched.t;  (** fresh deterministic system per run *)
  check : Sched.t -> unit;  (** raises {!Property_violated} *)
  last_events : unit -> Lnd_obs.Obs.event list;
      (** the last run's event trace; empty unless [audit] *)
  last_accesses : unit -> int;
      (** register accesses in the last run (Space observer) *)
  teardown : unit -> unit;
      (** detach the Obs sink, if one was installed *)
}

val instance : config -> instance

val explore :
  ?mode:[ `Dpor | `Naive ] ->
  ?max_steps:int ->
  ?max_runs:int ->
  ?max_preempts:int ->
  config ->
  Explore.result
(** Systematic exploration of the configuration (default: DPOR).
    Raises {!Explore.Violation} whose [cx_exn] is the
    {!Property_violated}. *)

val swarm : ?max_steps:int -> seeds:int list -> config -> Explore.result
(** Seeded-random sampling of the configuration's schedules. *)

val replay :
  ?max_steps:int -> config -> Explore.schedule -> (unit, exn) result
(** Re-execute one schedule against a fresh instance of the
    configuration and re-run the check. *)
