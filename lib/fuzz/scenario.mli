(** Serialised counterexamples — the "lnd-scenario v1" format.

    A scenario bundles an {!Mcheck.config}, an {!Lnd_runtime.Explore}
    schedule and an expectation into one line-based text file, so every
    counterexample the explorers or the synthesiser ever surfaced can be
    committed under [test/fixtures/scenarios/] and re-executed
    deterministically by the regression suite. *)

module Explore = Lnd_runtime.Explore

type expect = Violation | Pass

type t = {
  sc_name : string;
  sc_note : string;  (** free text; newlines are not representable *)
  sc_cfg : Mcheck.config;
  sc_expect : expect;
  sc_schedule : Explore.schedule;
}

val magic : string
(** The required first line, ["lnd-scenario v1"]. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. Blank lines and [#] comments are ignored;
    unknown keys are an error. Omitted config fields default to the
    corresponding {!Mcheck.default} field. *)

val save : string -> t -> unit
val load : string -> (t, string) result

val of_violation : name:string -> Mcheck.config -> Explore.counterexample -> t
(** Package a counterexample raised while exploring [cfg] as a scenario
    expecting a violation; the note records the configuration and the
    exception the check raised. *)

val run : ?max_steps:int -> t -> (unit, string) result
(** Re-execute the schedule against a fresh instance of the
    configuration and compare the outcome against the expectation:
    [Ok ()] iff a [Violation] scenario still violates (resp. a [Pass]
    scenario still passes). Replay divergence is an [Error]. *)
