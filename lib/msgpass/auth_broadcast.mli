(** Srikanth-Toueg authenticated broadcast without signatures [10] — the
    message-passing ancestor of Algorithm 1 (paper, Section 2).

    Guarantees for n > 3f: correctness (a correct sender's broadcast is
    eventually accepted by every correct process), unforgeability, and
    relay. NOT guaranteed: uniqueness — a Byzantine sender can get two
    different k-th messages accepted, the gap the paper's sticky register
    closes in shared memory (Section 1.2); the test suite demonstrates
    the difference explicitly. *)

open Lnd_support

type tag = Init | Echo

type bmsg = { tag : tag; sender : int; value : Value.t; seq : int }

val bmsg_key : bmsg Univ.key
(** Exposed so Byzantine test fibers can inject raw protocol messages. *)

type t
(** Per-process protocol state. *)

val create :
  Transport.t ->
  n:int ->
  f:int ->
  accept_cb:(sender:int -> value:Value.t -> seq:int -> unit) ->
  t
(** Network-agnostic: pass [Transport.of_net] for reliable links, or an
    {!Rlink} transport over {!Faultnet} for the fault-hardened stack. *)

val accepted : t -> sender:int -> value:Value.t -> seq:int -> bool

val broadcast : t -> Value.t -> int
(** Broadcast my next message; returns its sequence number. *)

val poll : t -> unit
(** Handle all pending messages once (n register reads). *)

val daemon : t -> unit
(** Run as a daemon fiber: poll forever. *)
