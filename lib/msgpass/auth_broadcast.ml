(* Srikanth-Toueg authenticated broadcast without signatures [10], the
   message-passing ancestor of Algorithm 1 (Section 2 of the paper).

   To broadcast the k-th message m of sender s:
     - s sends (init, s, m, k) to all;
     - on receiving (init, s, m, k) from s, a correct process sends
       (echo, s, m, k) to all;
     - on receiving (echo, s, m, k) from f+1 distinct processes, a correct
       process sends (echo, s, m, k) to all (if it has not already);
     - on receiving (echo, s, m, k) from 2f+1 distinct processes, a
       correct process accepts (s, m, k).

   Guarantees for n > 3f: correctness (a correct sender's broadcast is
   eventually accepted by every correct process), unforgeability (if a
   correct process accepts (s,m,k) and s is correct, then s broadcast m as
   its k-th message), and relay (if any correct process accepts (s,m,k),
   every correct process eventually accepts it).

   Note what is NOT guaranteed: uniqueness. A Byzantine sender can get two
   different k-th messages accepted — the gap the paper's sticky register
   closes in shared memory (Section 1.2). The test suite demonstrates
   this difference explicitly. *)

open Lnd_support

type tag = Init | Echo

type bmsg = { tag : tag; sender : int; value : Value.t; seq : int }

let bmsg_key : bmsg Univ.key =
  Univ.key ~name:"st-bcast"
    ~pp:(fun fmt m ->
      Format.fprintf fmt "(%s,p%d,%a,#%d)"
        (match m.tag with Init -> "init" | Echo -> "echo")
        m.sender Value.pp m.value m.seq)
    ~equal:( = )

module Key = struct
  type t = int * Value.t * int (* sender, value, seq *)

  let compare = compare
end

module KeyMap = Map.Make (Key)
module PidSet = Set.Make (Int)
module KeySet = Set.Make (Key)

type t = {
  st_ep : Transport.t;
  st_q : Quorum.t;
  mutable st_echoes : PidSet.t KeyMap.t;
  mutable st_echoed : KeySet.t; (* keys this process has echoed *)
  mutable st_accepted : KeySet.t;
  mutable st_next_seq : int;
  accept_cb : sender:int -> value:Value.t -> seq:int -> unit;
}

(* [Quorum.make] (strict): the guarantees need n > 3f (Section 2). *)
let create (ep : Transport.t) ~n ~f ~accept_cb : t =
  {
    st_ep = ep;
    st_q = Quorum.make ~n ~f;
    st_echoes = KeyMap.empty;
    st_echoed = KeySet.empty;
    st_accepted = KeySet.empty;
    st_next_seq = 0;
    accept_cb;
  }

let[@lnd.pure] accepted (t : t) ~sender ~value ~seq =
  KeySet.mem (sender, value, seq) t.st_accepted

(* Broadcast my next message. *)
let broadcast (t : t) (value : Value.t) : int =
  let seq = t.st_next_seq in
  t.st_next_seq <- seq + 1;
  Transport.broadcast t.st_ep
    (Univ.inj bmsg_key
       { tag = Init; sender = t.st_ep.Transport.pid; value; seq });
  seq

let send_echo (t : t) ((sender, value, seq) as key : Key.t) : unit =
  if not (KeySet.mem key t.st_echoed) then begin
    t.st_echoed <- KeySet.add key t.st_echoed;
    Transport.broadcast t.st_ep
      (Univ.inj bmsg_key { tag = Echo; sender; value; seq })
  end

let note_echo (t : t) (key : Key.t) ~(from : int) : unit =
  let cur =
    match KeyMap.find_opt key t.st_echoes with
    | Some s -> s
    | None -> PidSet.empty
  in
  let cur = PidSet.add from cur in
  t.st_echoes <- KeyMap.add key cur t.st_echoes;
  let count = PidSet.cardinal cur in
  if Quorum.has_one_correct t.st_q count then send_echo t key;
  if Quorum.has_byz_quorum t.st_q count && not (KeySet.mem key t.st_accepted)
  then begin
    t.st_accepted <- KeySet.add key t.st_accepted;
    let sender, value, seq = key in
    t.accept_cb ~sender ~value ~seq
  end

(* Handle all pending messages once (n register reads). Each decoded
   payload is recorded as a receiver-side [Obs.Claim] before it is acted
   on, attributing what [src] said for the accountability auditor. *)
let poll (t : t) : unit =
  let module Obs = Lnd_obs.Obs in
  let pid = t.st_ep.Transport.pid in
  List.iter
    (fun (src, payload) ->
      match Univ.prj bmsg_key payload with
      | None ->
          (* garbage from a Byzantine sender *)
          if Obs.enabled () then
            Obs.emit ~pid (Obs.Claim { src; claim = Cl_garbage; fp = "" })
      | Some m -> (
          if Obs.enabled () then begin
            let fp = Format.asprintf "%a" Value.pp m.value in
            let cl =
              match m.tag with
              | Init -> Obs.Cl_init { sender = m.sender; seq = m.seq }
              | Echo ->
                  Obs.Cl_vouch { sender = m.sender; seq = m.seq; tag = "echo" }
            in
            Obs.emit ~pid (Obs.Claim { src; claim = cl; fp })
          end;
          match m.tag with
          | Init ->
              (* only the sender's own channel counts as an init *)
              if src = m.sender then send_echo t (m.sender, m.value, m.seq)
          | Echo -> note_echo t (m.sender, m.value, m.seq) ~from:src))
    (t.st_ep.Transport.poll_all ())

(* Run as a daemon fiber: keep processing messages forever. *)
let daemon (t : t) : unit =
  while true do
    poll t;
    Lnd_runtime.Sched.yield ()
  done
