(** Bracha-style reliable broadcast over Byzantine message passing
    (n > 3f) — the protocol that, unlike Srikanth-Toueg authenticated
    broadcast, also provides per-(sender, seq) agreement: a correct
    process echoes at most one value per slot, and two 2f+1 echo quorums
    intersect in a correct process, so an equivocating sender cannot get
    two different k-th messages delivered. Totality comes from the f+1
    ready amplification.

    Section 2 of the paper explains why simulating such a protocol over
    registers still does not yield a {e linearizable} shared object —
    eventual delivery is not an instantaneous read. The test suite
    contrasts all three: ST broadcast (no uniqueness), Bracha
    (uniqueness, eventual), sticky register (uniqueness, linearizable). *)

open Lnd_support

type tag = Init | Echo | Ready

type bmsg = { tag : tag; sender : int; value : Value.t; seq : int }

val bmsg_key : bmsg Univ.key
(** Exposed so Byzantine test fibers can inject raw protocol messages. *)

type proc
(** Per-process protocol state. *)

val create :
  Transport.t ->
  n:int ->
  f:int ->
  deliver_cb:(sender:int -> value:Value.t -> seq:int -> unit) ->
  proc
(** Network-agnostic: pass [Transport.of_net] for reliable links, or an
    {!Rlink} transport over {!Faultnet} for the fault-hardened stack. *)

val delivered : proc -> sender:int -> seq:int -> Value.t option

val broadcast : proc -> Value.t -> int
(** Broadcast my next message; returns its sequence number. *)

val poll : proc -> unit
val daemon : proc -> unit
