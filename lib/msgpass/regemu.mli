(** SWMR register emulation over Byzantine message passing — the
    Section 9 corollary: everything in the paper lifts to message-passing
    systems because SWMR registers are implementable there for n > 3f
    (citing Mostéfaoui-Petrolia-Raynal-Jard [9]).

    Writes are disseminated with Srikanth-Toueg echo thresholds
    (unforgeability + relay: what one correct replica accepts, all
    eventually accept); replicas keep the largest accepted
    (timestamp, value) per register and ack the owner; a write returns
    after n-f acks. Reads collect replies from n-f distinct replicas and
    trust the largest pair reported identically by >= f+1 of them (at
    least one correct voucher), retrying while replicas converge.
    Replies are batched per destination per poll iteration — without
    batching, aggregate reply work exceeds the replicas' fair share of
    scheduling steps and backlogs grow without bound.

    Each process owns a single transport endpoint and the replica daemon
    is its sole pump: it dispatches replica-bound traffic into replica
    state and client-bound traffic (acks, read replies) into the client
    tables that blocking operations observe between yields. This is what
    lets the whole emulation run unchanged over the fault-hardened stack
    ({!Rlink} over {!Faultnet}) via {!create_on}.

    Fidelity note (DESIGN.md §4.7): simpler than [9]'s full atomic
    construction; genuineness and per-replica monotonicity are
    guaranteed, full atomicity is validated empirically per recorded run.
    A Byzantine {e owner} can feed the emulation inconsistent writes —
    exactly what the sticky register stacked on top must survive. *)

open Lnd_support

(** Protocol messages; exposed so Byzantine test fibers can inject raw
    (even fabricated) protocol traffic. *)
type emsg =
  | Wreq of int * int * Univ.t (** reg, ts, v — write request from the owner *)
  | Wecho of int * int * Univ.t
  | Wack of int * int (** reg, ts *)
  | Rreq of int * int (** reg, rid *)
  | Rrep of int * int * int * Univ.t (** reg, rid, ts, v *)
  | Sreq of int (** rid — state-transfer request from a recovering peer *)
  | Srep of int * (int * int * Univ.t) list
      (** rid, full view: one (reg, ts, v) per register the replier holds *)
  | Batch of emsg list
      (** a replica's bundled replies to one destination from one poll
          iteration (caps the per-iteration reply cost at n sends) *)

val emsg_equal : emsg -> emsg -> bool
val emsg_key : emsg Univ.key

val fp : Univ.t -> string
(** Value fingerprint used for deterministic tie-breaking and echo-count
    bucketing. *)

type t = {
  mk_ep : pid:int -> Transport.t;
  n : int;
  q : Quorum.t;
  metas : (int, meta) Hashtbl.t;
  mutable next_reg : int;
  mutable sent : int;  (** endpoint-level sends (see {!messages_sent}) *)
  eps : Transport.t option array;
  replicas : replica option array;
  clients : client option array;
  pwals : Lnd_durable.Wal.t option array;
      (** per-pid journal; [None] (the default) keeps the emulation
          byte-identical to the volatile implementation *)
  mutable codec : ((Univ.t -> string) * (string -> Univ.t)) option;
}

and meta = { owner : int; init : Univ.t }

(** Per-process replica state (transparent for test introspection). *)
and replica = {
  current : (int, int * string * Univ.t) Hashtbl.t;
      (** reg -> accepted (ts, fingerprint, value) *)
  rep_echoes : (int * int * string, Univ.t * Set.Make(Int).t ref) Hashtbl.t;
  rep_echoed : (int * int * string, unit) Hashtbl.t;
  rep_accepted : (int * int * string, unit) Hashtbl.t;
  rep_last_rreq : (int, int * int) Hashtbl.t;
      (** src -> (reg, rid): latest outstanding read request per
          requester — what a recovered incarnation must re-answer *)
  mutable serving : bool;
      (** [false] while recovering: read requests are recorded but
          answered only once state transfer completes *)
}

(** Per-process client state. *)
and client = {
  mutable next_rid : int;
  wts : (int, int ref) Hashtbl.t;
  acks : (int * int, Set.Make(Int).t ref) Hashtbl.t;
  reps : (int, (int * int * Univ.t) list ref) Hashtbl.t;
  sreps : (int, (int * (int * int * Univ.t) list) list ref) Hashtbl.t;
      (** rid -> (src, full view) state-transfer replies *)
}

val create : Lnd_shm.Space.t -> n:int -> f:int -> t
(** Fresh emulation over a perfectly reliable network in [space] — each
    pid's endpoint comes from [Transport.endpoints]. Requires n > 3f. *)

val create_on : mk_ep:(pid:int -> Transport.t) -> n:int -> f:int -> t
(** General constructor: [mk_ep ~pid] builds the single endpoint each
    pid's traffic flows through — e.g. an {!Rlink} transport over a
    {!Faultnet} port for the fault-hardened stack. The emulation never
    looks below this seam; harnesses that want raw Byzantine injection
    keep their own handle on the underlying network. Requires n > 3f. *)

val replica_daemon : t -> pid:int -> unit
(** The replica daemon each correct process must run (daemon fiber). It
    is also the pid's only message pump: blocking client operations on
    the same pid rely on it for their acks and read replies. *)

val allocator : t -> Lnd_runtime.Cell.allocator
(** Allocate emulated registers (call during system setup, before running
    fibers). Feed the cells straight into [Verifiable.alloc_with] /
    [Sticky.alloc_with]. Ownership is enforced; SWSR readability is not. *)

val messages_sent : t -> int
(** Total endpoint-level sends across all pids (counted at the
    {!Transport} seam, so it is stack-agnostic). *)

(** {2 Crash-recovery}

    Durability discipline: every state mutation is journalled at
    mutation time; a WAL sync barrier runs before any send that EXPOSES
    the mutated state (write acks here; everything else behind
    {!Rlink}'s deferred-ack barrier). A recovered incarnation therefore
    restores state at least as advanced as anything another process
    observed from its predecessor — crashes can lose progress, never
    promises.

    Record grammar (shared log with {!Rlink}'s ["E"]/["S"]/["U"]
    records; the value encoding is always the last field and must be
    newline-free): ["W <reg> <ts>"], ["A <reg> <ts> <venc>"] (adopted),
    ["H ..."] (echoed), ["X <src> ..."] (echo received), ["P ..."]
    (accepted), ["R <src> <reg> <rid>"] (outstanding read request). *)

val set_codec :
  t -> enc:(Univ.t -> string) -> dec:(string -> Univ.t) -> unit
(** Register the value codec journal records use. [dec (enc v)] must
    fingerprint ({!fp}) equal to [v]; [enc v] must be newline-free.
    Required before {!attach_wal}. *)

val attach_wal : t -> pid:int -> Lnd_durable.Wal.t -> unit
(** Journal [pid]'s protocol state through [wal] from now on. Share the
    same WAL with the pid's {!Rlink} so one sync barrier covers both
    layers. Raises [Invalid_argument] if no codec is set. *)

val forget : t -> pid:int -> unit
(** Drop [pid]'s volatile state (endpoint, replica, client tables) — the
    crash. The next [pid] state access starts empty, ready for
    {!restore_record} replay. *)

val begin_recovery : t -> pid:int -> unit
(** Enter recovery mode: [pid] records (and journals) incoming read
    requests but defers the replies until {!recover_and_serve} finishes
    state transfer. *)

val restore_record : t -> pid:int -> string -> bool
(** Replay one recovered journal record if this layer owns it
    (["W"/"A"/"H"/"X"/"P"/"R"]); [false] means the record belongs to
    another grammar (feed {!Rlink.restore_record} first). Replay is
    idempotent and order-insensitive. *)

val snapshot_records : t -> pid:int -> string list
(** [pid]'s protocol state compacted to records — feed to
    {!Rlink.enable_snapshots} as the [extra] thunk. *)

val recover_and_serve : t -> pid:int -> unit
(** The fiber body a restarted process runs: state-transfer catch-up
    (full views from >= n-f peers, adopting any (reg, ts, v) vouched by
    >= f+1 of them that beats the restored state), re-announce of
    everything the predecessor may have had in flight (echoes, acks,
    read replies — all idempotent downstream), then the ordinary
    {!replica_daemon} loop. *)
