(** SWMR register emulation over Byzantine message passing — the
    Section 9 corollary: everything in the paper lifts to message-passing
    systems because SWMR registers are implementable there for n > 3f
    (citing Mostéfaoui-Petrolia-Raynal-Jard [9]).

    Writes are disseminated with Srikanth-Toueg echo thresholds
    (unforgeability + relay: what one correct replica accepts, all
    eventually accept); replicas keep the largest accepted
    (timestamp, value) per register and ack the owner; a write returns
    after n-f acks. Reads collect replies from n-f distinct replicas and
    trust the largest pair reported identically by >= f+1 of them (at
    least one correct voucher), retrying while replicas converge.
    Replies are batched per destination per poll iteration — without
    batching, aggregate reply work exceeds the replicas' fair share of
    scheduling steps and backlogs grow without bound.

    Each process owns a single transport endpoint and the replica daemon
    is its sole pump: it dispatches replica-bound traffic into replica
    state and client-bound traffic (acks, read replies) into the client
    tables that blocking operations observe between yields. This is what
    lets the whole emulation run unchanged over the fault-hardened stack
    ({!Rlink} over {!Faultnet}) via {!create_on}.

    Fidelity note (DESIGN.md §4.7): simpler than [9]'s full atomic
    construction; genuineness and per-replica monotonicity are
    guaranteed, full atomicity is validated empirically per recorded run.
    A Byzantine {e owner} can feed the emulation inconsistent writes —
    exactly what the sticky register stacked on top must survive. *)

open Lnd_support

(** Protocol messages; exposed so Byzantine test fibers can inject raw
    (even fabricated) protocol traffic. *)
type emsg =
  | Wreq of int * int * Univ.t (** reg, ts, v — write request from the owner *)
  | Wecho of int * int * Univ.t
  | Wack of int * int (** reg, ts *)
  | Rreq of int * int (** reg, rid *)
  | Rrep of int * int * int * Univ.t (** reg, rid, ts, v *)
  | Batch of emsg list
      (** a replica's bundled replies to one destination from one poll
          iteration (caps the per-iteration reply cost at n sends) *)

val emsg_equal : emsg -> emsg -> bool
val emsg_key : emsg Univ.key

val fp : Univ.t -> string
(** Value fingerprint used for deterministic tie-breaking and echo-count
    bucketing. *)

type t = {
  mk_ep : pid:int -> Transport.t;
  n : int;
  q : Quorum.t;
  metas : (int, meta) Hashtbl.t;
  mutable next_reg : int;
  mutable sent : int;  (** endpoint-level sends (see {!messages_sent}) *)
  eps : Transport.t option array;
  replicas : replica option array;
  clients : client option array;
}

and meta = { owner : int; init : Univ.t }

(** Per-process replica state (transparent for test introspection). *)
and replica = {
  current : (int, int * string * Univ.t) Hashtbl.t;
      (** reg -> accepted (ts, fingerprint, value) *)
  rep_echoes : (int * int * string, Univ.t * Set.Make(Int).t ref) Hashtbl.t;
  rep_echoed : (int * int * string, unit) Hashtbl.t;
  rep_accepted : (int * int * string, unit) Hashtbl.t;
}

(** Per-process client state. *)
and client = {
  mutable next_rid : int;
  wts : (int, int ref) Hashtbl.t;
  acks : (int * int, Set.Make(Int).t ref) Hashtbl.t;
  reps : (int, (int * int * Univ.t) list ref) Hashtbl.t;
}

val create : Lnd_shm.Space.t -> n:int -> f:int -> t
(** Fresh emulation over a perfectly reliable network in [space] — each
    pid's endpoint comes from [Transport.endpoints]. Requires n > 3f. *)

val create_on : mk_ep:(pid:int -> Transport.t) -> n:int -> f:int -> t
(** General constructor: [mk_ep ~pid] builds the single endpoint each
    pid's traffic flows through — e.g. an {!Rlink} transport over a
    {!Faultnet} port for the fault-hardened stack. The emulation never
    looks below this seam; harnesses that want raw Byzantine injection
    keep their own handle on the underlying network. Requires n > 3f. *)

val replica_daemon : t -> pid:int -> unit
(** The replica daemon each correct process must run (daemon fiber). It
    is also the pid's only message pump: blocking client operations on
    the same pid rely on it for their acks and read replies. *)

val allocator : t -> Lnd_runtime.Cell.allocator
(** Allocate emulated registers (call during system setup, before running
    fibers). Feed the cells straight into [Verifiable.alloc_with] /
    [Sticky.alloc_with]. Ownership is enforced; SWSR readability is not. *)

val messages_sent : t -> int
(** Total endpoint-level sends across all pids (counted at the
    {!Transport} seam, so it is stack-agnostic). *)
