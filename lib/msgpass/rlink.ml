(* Reliable links over a lossy transport: sequence numbers, ack-driven
   retransmission with capped exponential backoff, and duplicate
   suppression.

   Every outgoing payload is wrapped as DATA(seq, payload) with a
   per-destination sequence number and kept in an unacked table; the
   receiver answers every DATA with ACK(seq) (every copy — the previous
   ack may itself have been lost) and delivers the payload at most once,
   suppressing retransmitted and network-duplicated copies. Unacked
   messages are retransmitted whenever a poll finds their backoff timer
   expired; the timer is measured in logical-clock ticks (the scheduler
   clock advances once per step, so ticks are the simulator's notion of
   time) and doubles on every retransmission up to a cap.

   Safety (at-most-once, sender authenticity) holds over ANY fault plan;
   liveness (exactly-once eventual delivery) needs the transport to be
   fair-lossy — infinitely many retransmissions cannot all be lost —
   which [Faultnet]'s fair_burst cap guarantees, provided partitions
   heal. Over a perfectly reliable transport the layer is inert: no
   backoff timer fires before the first ack arrives (retransmissions
   stay at 0), and the only overhead is one ACK per DATA.

   Raw payloads that are not rlink envelopes — Byzantine fibers
   injecting protocol messages straight into the channel logs — are
   passed through to the consumer unsequenced and unacked: Byzantine
   senders do not get reliability, which is their problem, not ours.

   The layer is deliberately NOT FIFO: delivery order is whatever the
   network produces (the consumers — threshold broadcast protocols and
   the register emulation — are insensitive to reordering, and holding
   back gaps would add latency for nothing). Sequence numbers exist for
   dedup and retransmission only. *)

open Lnd_support
open Lnd_runtime

type renv = Data of int * Univ.t | Ack of int

let renv_key : renv Univ.key =
  Univ.key ~name:"rlink"
    ~pp:(fun fmt -> function
      | Data (seq, p) -> Format.fprintf fmt "data#%d:%a" seq Univ.pp p
      | Ack seq -> Format.fprintf fmt "ack#%d" seq)
    ~equal:(fun a b ->
      match (a, b) with
      | Data (s1, p1), Data (s2, p2) -> s1 = s2 && Univ.equal p1 p2
      | Ack s1, Ack s2 -> s1 = s2
      | (Data _ | Ack _), _ -> false)

type cfg = {
  base_backoff : int; (* ticks before the first retransmission *)
  max_backoff : int; (* backoff cap (doubling stops here) *)
}

let default_cfg = { base_backoff = 1_500; max_backoff = 24_000 }

type out_entry = {
  o_dst : int;
  o_seq : int;
  o_payload : Univ.t;
  mutable o_last_tx : int; (* clock at last transmission *)
  mutable o_backoff : int;
}

type t = {
  tr : Transport.t;
  cfg : cfg;
  out : (int * int, out_entry) Hashtbl.t; (* (dst, seq) -> in flight *)
  next_seq : int array; (* per destination *)
  seen_upto : int array; (* per source: all seq < this delivered *)
  seen_ahead : (int * int, unit) Hashtbl.t; (* (src, seq) past the prefix *)
  mutable st_data : int; (* first transmissions *)
  mutable st_retrans : int; (* retransmissions *)
  mutable st_acks : int; (* acks sent *)
  mutable st_redundant : int; (* duplicate DATA suppressed *)
  mutable st_raw : int; (* un-enveloped payloads passed through *)
}

let create ?(cfg = default_cfg) (tr : Transport.t) : t =
  {
    tr;
    cfg;
    out = Hashtbl.create 64;
    next_seq = Array.make tr.Transport.n 0;
    seen_upto = Array.make tr.Transport.n 0;
    seen_ahead = Hashtbl.create 64;
    st_data = 0;
    st_retrans = 0;
    st_acks = 0;
    st_redundant = 0;
    st_raw = 0;
  }

type stats = {
  data_sent : int;
  retransmissions : int;
  acks_sent : int;
  redundant : int;
  raw_passed : int;
}

let stats (t : t) : stats =
  {
    data_sent = t.st_data;
    retransmissions = t.st_retrans;
    acks_sent = t.st_acks;
    redundant = t.st_redundant;
    raw_passed = t.st_raw;
  }

let pending (t : t) : int = Hashtbl.length t.out

let send (t : t) ~(dst : int) (payload : Univ.t) : unit =
  let seq = t.next_seq.(dst) in
  t.next_seq.(dst) <- seq + 1;
  let e =
    {
      o_dst = dst;
      o_seq = seq;
      o_payload = payload;
      o_last_tx = Sched.now ();
      o_backoff = t.cfg.base_backoff;
    }
  in
  Hashtbl.replace t.out (dst, seq) e;
  t.st_data <- t.st_data + 1;
  t.tr.Transport.send ~dst (Univ.inj renv_key (Data (seq, payload)))

let broadcast (t : t) (payload : Univ.t) : unit =
  for dst = 0 to t.tr.Transport.n - 1 do
    send t ~dst payload
  done

let is_new (t : t) ~src ~seq =
  seq >= t.seen_upto.(src) && not (Hashtbl.mem t.seen_ahead (src, seq))

let mark_seen (t : t) ~src ~seq =
  Hashtbl.replace t.seen_ahead (src, seq) ();
  (* advance the contiguous prefix to keep the ahead-set small *)
  while Hashtbl.mem t.seen_ahead (src, t.seen_upto.(src)) do
    Hashtbl.remove t.seen_ahead (src, t.seen_upto.(src));
    t.seen_upto.(src) <- t.seen_upto.(src) + 1
  done

(* One pump: classify incoming, then ack, then retransmit due entries.
   Every transport send is a scheduling point, so all table reads are
   snapshotted into lists first — a concurrent fiber of the same pid
   (client op vs protocol daemon sharing one rlink) may mutate the
   tables between sends; at worst a message just acked is retransmitted
   once more, which the receiver's dedup absorbs. *)
let poll_all (t : t) : (int * Univ.t) list =
  let incoming = t.tr.Transport.poll_all () in
  let delivered = ref [] and to_ack = ref [] in
  List.iter
    (fun (src, u) ->
      match Univ.prj renv_key u with
      | Some (Data (seq, payload)) ->
          (* ack every copy: the previous ack may have been lost *)
          to_ack := (src, seq) :: !to_ack;
          if is_new t ~src ~seq then begin
            mark_seen t ~src ~seq;
            delivered := (src, payload) :: !delivered
          end
          else t.st_redundant <- t.st_redundant + 1
      | Some (Ack seq) -> Hashtbl.remove t.out (src, seq)
      | None ->
          (* raw Byzantine traffic: pass through, unsequenced *)
          t.st_raw <- t.st_raw + 1;
          delivered := (src, u) :: !delivered)
    incoming;
  List.iter
    (fun (src, seq) ->
      t.st_acks <- t.st_acks + 1;
      t.tr.Transport.send ~dst:src (Univ.inj renv_key (Ack seq)))
    (List.rev !to_ack);
  let now = Sched.now () in
  (* [sorted_bindings] orders by the table key (dst, seq) — exactly the
     retransmission order the explicit sort used to impose. *)
  let due =
    Tables.sorted_bindings t.out
    |> List.filter_map (fun (_, e) ->
           if now - e.o_last_tx >= e.o_backoff then Some e else None)
  in
  List.iter
    (fun e ->
      e.o_last_tx <- now;
      e.o_backoff <- min (2 * e.o_backoff) t.cfg.max_backoff;
      t.st_retrans <- t.st_retrans + 1;
      t.tr.Transport.send ~dst:e.o_dst
        (Univ.inj renv_key (Data (e.o_seq, e.o_payload))))
    due;
  List.rev !delivered

let as_transport (t : t) : Transport.t =
  {
    Transport.pid = t.tr.Transport.pid;
    n = t.tr.Transport.n;
    send = (fun ~dst payload -> send t ~dst payload);
    poll_all = (fun () -> poll_all t);
  }
