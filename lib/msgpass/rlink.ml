(* Reliable links over a lossy transport: sequence numbers, ack-driven
   retransmission with capped exponential backoff, duplicate
   suppression, and incarnation epochs for crash-recovery.

   Every outgoing payload is wrapped as DATA(epoch, seq, payload) with a
   per-destination sequence number and kept in an unacked table; the
   receiver answers every DATA with ACK(epoch, seq) (every copy — the
   previous ack may itself have been lost) and delivers the payload at
   most once, suppressing retransmitted and network-duplicated copies.
   Unacked messages are retransmitted whenever a poll finds their
   backoff timer expired; the timer is measured in logical-clock ticks
   (the scheduler clock advances once per step, so ticks are the
   simulator's notion of time) and doubles on every retransmission up to
   a cap.

   INCARNATION EPOCHS. Dedup state keyed only by pid collides across
   restarts: a recovered peer restarting its sequence space at 0 would
   have every fresh message swallowed as a "duplicate" by receivers that
   remember its previous life — silent message loss — while its own
   stale dedup tables would swallow fresh traffic as replays. Each
   incarnation therefore stamps an epoch into every envelope: a receiver
   seeing a HIGHER epoch from a source resets that source's dedup state
   (the old incarnation can never speak again); a LOWER epoch is a stale
   straggler and is dropped; acks only count for the epoch that sent the
   data. Epochs are made durable by the owner (journal + sync BEFORE the
   new incarnation's first send — see [journal_epoch]), so no two
   incarnations of a correct process ever share an epoch.

   PERSISTENCE. With a {!Lnd_durable.Wal} attached, each fresh delivery
   is journalled ("S src epoch seq") and its ack DEFERRED: acks
   accumulate and are flushed at the start of the next poll, AFTER a WAL
   sync barrier. That closes the acked-but-lost window — an ack on the
   wire implies the delivery (and every protocol-level record the
   consumer journalled while handling it in between) is durable, so a
   crashed receiver either remembers a delivery or was never acked for
   it and the sender retransmits. Without a WAL the layer acks
   immediately and is behaviourally identical to the pre-recovery
   implementation.

   Safety (at-most-once, sender authenticity) holds over ANY fault plan;
   liveness (exactly-once eventual delivery) needs the transport to be
   fair-lossy — infinitely many retransmissions cannot all be lost —
   which [Faultnet]'s fair_burst cap guarantees, provided partitions
   heal. Over a perfectly reliable transport the layer is inert: no
   backoff timer fires before the first ack arrives (retransmissions
   stay at 0), and the only overhead is one ACK per DATA.

   Raw payloads that are not rlink envelopes — Byzantine fibers
   injecting protocol messages straight into the channel logs — are
   passed through to the consumer unsequenced and unacked: Byzantine
   senders do not get reliability, which is their problem, not ours.

   The layer is deliberately NOT FIFO: delivery order is whatever the
   network produces (the consumers — threshold broadcast protocols and
   the register emulation — are insensitive to reordering, and holding
   back gaps would add latency for nothing). Sequence numbers exist for
   dedup and retransmission only. *)

open Lnd_support
open Lnd_runtime
module Wal = Lnd_durable.Wal
module Obs = Lnd_obs.Obs

type renv = Data of int * int * Univ.t | Ack of int * int

let renv_key : renv Univ.key =
  Univ.key ~name:"rlink"
    ~pp:(fun fmt -> function
      | Data (e, seq, p) -> Format.fprintf fmt "data@%d#%d:%a" e seq Univ.pp p
      | Ack (e, seq) -> Format.fprintf fmt "ack@%d#%d" e seq)
    ~equal:(fun a b ->
      match (a, b) with
      | Data (e1, s1, p1), Data (e2, s2, p2) ->
          e1 = e2 && s1 = s2 && Univ.equal p1 p2
      | Ack (e1, s1), Ack (e2, s2) -> e1 = e2 && s1 = s2
      | (Data _ | Ack _), _ -> false)

type cfg = {
  base_backoff : int; (* ticks before the first retransmission *)
  max_backoff : int; (* backoff cap (doubling stops here) *)
}

let default_cfg = { base_backoff = 1_500; max_backoff = 24_000 }

type out_entry = {
  o_dst : int;
  o_seq : int;
  o_payload : Univ.t;
  mutable o_last_tx : int; (* clock at last transmission *)
  mutable o_backoff : int;
}

type t = {
  tr : Transport.t;
  cfg : cfg;
  epoch : int; (* this incarnation's epoch, stamped into every DATA *)
  wal : Wal.t option; (* journal for delivery state; None = volatile *)
  out : (int * int, out_entry) Hashtbl.t; (* (dst, seq) -> in flight *)
  next_seq : int array; (* per destination *)
  peer_epoch : int array; (* per source: highest epoch seen *)
  seen_upto : int array; (* per source: all seq < this delivered *)
  seen_ahead : (int * int, unit) Hashtbl.t; (* (src, seq) past the prefix *)
  mutable deferred : (int * int * int) list; (* (dst, epoch, seq) acks *)
  mutable jpend : string list;
      (* "S" records awaiting the next barrier, newest first. Deferring
         the append (not just the sync) keeps the WAL byte order
         consumer-records-first: a torn flush keeps a PREFIX of the
         pending bytes, so an "S" written at delivery time could survive
         a crash that loses the consumer's records for that same
         delivery — recovery would then suppress the retransmission (and
         ack it!) with the delivery's effect gone. Appended at the
         barrier, an "S" is always preceded by everything the consumer
         journalled while handling it. *)
  mutable snap_every : int; (* snapshot when appended >= this; 0 = off *)
  mutable snap_extra : unit -> string list; (* the consumer's records *)
  mutable st_data : int; (* first transmissions *)
  mutable st_retrans : int; (* retransmissions *)
  mutable st_acks : int; (* acks sent *)
  mutable st_redundant : int; (* duplicate DATA suppressed *)
  mutable st_stale : int; (* stale-epoch envelopes dropped *)
  mutable st_raw : int; (* un-enveloped payloads passed through *)
}

let create ?(cfg = default_cfg) ?(epoch = 0) ?wal (tr : Transport.t) : t =
  (* Announce the incarnation: the auditor checks that a pid's epochs
     only ever move forward, so replaying a pre-crash incarnation is
     attributable evidence. *)
  if Obs.enabled () then
    Obs.emit ~pid:tr.Transport.pid (Obs.Link_incarnation { epoch });
  {
    tr;
    cfg;
    epoch;
    wal;
    out = Hashtbl.create 64;
    next_seq = Array.make tr.Transport.n 0;
    peer_epoch = Array.make tr.Transport.n 0;
    seen_upto = Array.make tr.Transport.n 0;
    seen_ahead = Hashtbl.create 64;
    deferred = [];
    jpend = [];
    snap_every = 0;
    snap_extra = (fun () -> []);
    st_data = 0;
    st_retrans = 0;
    st_acks = 0;
    st_redundant = 0;
    st_stale = 0;
    st_raw = 0;
  }

let epoch t = t.epoch

let enable_snapshots t ~every ~extra =
  t.snap_every <- every;
  t.snap_extra <- extra

type stats = {
  data_sent : int;
  retransmissions : int;
  acks_sent : int;
  redundant : int;
  stale : int;
  raw_passed : int;
}

let stats (t : t) : stats =
  {
    data_sent = t.st_data;
    retransmissions = t.st_retrans;
    acks_sent = t.st_acks;
    redundant = t.st_redundant;
    stale = t.st_stale;
    raw_passed = t.st_raw;
  }

let pending (t : t) : int = Hashtbl.length t.out

let send (t : t) ~(dst : int) (payload : Univ.t) : unit =
  let seq = t.next_seq.(dst) in
  t.next_seq.(dst) <- seq + 1;
  let e =
    {
      o_dst = dst;
      o_seq = seq;
      o_payload = payload;
      o_last_tx = Sched.now ();
      o_backoff = t.cfg.base_backoff;
    }
  in
  Hashtbl.replace t.out (dst, seq) e;
  t.st_data <- t.st_data + 1;
  if Obs.enabled () then
    Obs.emit ~pid:t.tr.Transport.pid (Obs.Link_data { dst; seq; retrans = false });
  t.tr.Transport.send ~dst (Univ.inj renv_key (Data (t.epoch, seq, payload)))

let broadcast (t : t) (payload : Univ.t) : unit =
  for dst = 0 to t.tr.Transport.n - 1 do
    send t ~dst payload
  done

let is_new (t : t) ~src ~seq =
  seq >= t.seen_upto.(src) && not (Hashtbl.mem t.seen_ahead (src, seq))

let mark_seen (t : t) ~src ~seq =
  Hashtbl.replace t.seen_ahead (src, seq) ();
  (* advance the contiguous prefix to keep the ahead-set small *)
  while Hashtbl.mem t.seen_ahead (src, t.seen_upto.(src)) do
    Hashtbl.remove t.seen_ahead (src, t.seen_upto.(src));
    t.seen_upto.(src) <- t.seen_upto.(src) + 1
  done

(* A higher epoch from [src]: its previous incarnation can never speak
   again, so that source's dedup state restarts from scratch. *)
let bump_peer (t : t) ~src ~epoch =
  if Obs.enabled () then
    Obs.emit ~pid:t.tr.Transport.pid (Obs.Link_epoch { src; epoch });
  t.peer_epoch.(src) <- epoch;
  t.seen_upto.(src) <- 0;
  List.iter
    (fun ((s, _) as key, ()) -> if s = src then Hashtbl.remove t.seen_ahead key)
    (Tables.sorted_bindings t.seen_ahead)

(* ---------------- Journal grammar ---------------- *)

(* Records this layer owns (shared WAL, one grammar with the consumer):
     E <epoch>                 this process's incarnation epoch
     S <src> <epoch> <seq>     one delivered sequence number
     U <src> <epoch> <upto>    a delivered contiguous prefix [0, upto)
   "E" is journalled by [journal_epoch] before an incarnation's first
   send; "S" on each fresh delivery; "U"/"S" together compact the seen
   state into snapshots. *)

let journal_seen t ~src ~epoch ~seq =
  match t.wal with
  | None -> ()
  | Some _ -> t.jpend <- Printf.sprintf "S %d %d %d" src epoch seq :: t.jpend

let journal_epoch (w : Wal.t) (epoch : int) : unit =
  Wal.append w (Printf.sprintf "E %d" epoch);
  Wal.sync w

let epoch_of_records (records : string list) : int =
  List.fold_left
    (fun acc r ->
      match Scanf.sscanf_opt r "E %d" (fun e -> e) with
      | Some e -> max acc e
      | None -> acc)
    (-1) records

let restore_seen t ~src ~epoch ~seq =
  if epoch > t.peer_epoch.(src) then bump_peer t ~src ~epoch;
  if epoch = t.peer_epoch.(src) then mark_seen t ~src ~seq

let restore_seen_upto t ~src ~epoch ~upto =
  if epoch > t.peer_epoch.(src) then bump_peer t ~src ~epoch;
  if epoch = t.peer_epoch.(src) then
    t.seen_upto.(src) <- max t.seen_upto.(src) upto

let restore_record t (r : string) : bool =
  match Scanf.sscanf_opt r "S %d %d %d" (fun a b c -> (a, b, c)) with
  | Some (src, epoch, seq) ->
      restore_seen t ~src ~epoch ~seq;
      true
  | None -> (
      match Scanf.sscanf_opt r "U %d %d %d" (fun a b c -> (a, b, c)) with
      | Some (src, epoch, upto) ->
          restore_seen_upto t ~src ~epoch ~upto;
          true
      | None -> (
          match Scanf.sscanf_opt r "E %d" (fun e -> e) with
          | Some _ -> true (* consumed by [epoch_of_records] *)
          | None -> false))

(* The seen state compacted to records, for snapshots. Includes this
   incarnation's own epoch — truncating the log must not lose it. *)
let seen_records t : string list =
  let prefixes =
    List.concat
      (List.init (Array.length t.seen_upto) (fun src ->
           if t.seen_upto.(src) > 0 || t.peer_epoch.(src) > 0 then
             [
               Printf.sprintf "U %d %d %d" src t.peer_epoch.(src)
                 t.seen_upto.(src);
             ]
           else []))
  in
  let ahead =
    List.map
      (fun ((src, seq), ()) ->
        Printf.sprintf "S %d %d %d" src t.peer_epoch.(src) seq)
      (Tables.sorted_bindings t.seen_ahead)
  in
  (Printf.sprintf "E %d" t.epoch :: prefixes) @ ahead

(* One pump: flush deferred acks behind a WAL barrier, classify
   incoming, ack (or defer), retransmit due entries, maybe snapshot.
   Every transport send is a scheduling point, so all table reads are
   snapshotted into lists first — a concurrent fiber of the same pid
   (client op vs protocol daemon sharing one rlink) may mutate the
   tables between sends; at worst a message just acked is retransmitted
   once more, which the receiver's dedup absorbs. *)
let poll_all (t : t) : (int * Univ.t) list =
  (* Deferred acks from the previous poll go out only once every record
     journalled while handling those deliveries is durable: an ack on
     the wire implies the receiver will remember the delivery across a
     crash. The pending "S" records are appended HERE, after the
     consumer's records (see [jpend]), and a due snapshot is taken here
     too — this is the one point where the in-memory state (rlink seen
     marks AND the consumer's tables) reflects exactly the deliveries
     already handled, so the compacted generation is consistent. (A
     crash inside this barrier loses the acks — the sender retransmits,
     the journalled seen-state suppresses the replay, and the ack goes
     out again.) *)
  (match (t.wal, t.deferred) with
  | Some w, _ :: _ ->
      List.iter (Wal.append w) (List.rev t.jpend);
      t.jpend <- [];
      if t.snap_every > 0 && Wal.appended w >= t.snap_every then
        Wal.snapshot w (seen_records t @ t.snap_extra ())
      else Wal.sync w;
      let acks = List.rev t.deferred in
      t.deferred <- [];
      List.iter
        (fun (dst, e, seq) ->
          t.st_acks <- t.st_acks + 1;
          if Obs.enabled () then
            Obs.emit ~pid:t.tr.Transport.pid (Obs.Link_ack { dst; seq });
          t.tr.Transport.send ~dst (Univ.inj renv_key (Ack (e, seq))))
        acks
  | _ -> ());
  let incoming = t.tr.Transport.poll_all () in
  let delivered = ref [] and to_ack = ref [] in
  List.iter
    (fun (src, u) ->
      match Univ.prj renv_key u with
      | Some (Data (e, seq, payload)) ->
          if e < t.peer_epoch.(src) then begin
            (* a straggler from a dead incarnation: not acked, not
               delivered — its dedup space no longer exists *)
            t.st_stale <- t.st_stale + 1;
            if Obs.enabled () then
              Obs.emit ~pid:t.tr.Transport.pid (Obs.Link_stale { src })
          end
          else begin
            if e > t.peer_epoch.(src) then bump_peer t ~src ~epoch:e;
            (* ack every copy: the previous ack may have been lost *)
            (match t.wal with
            | None -> to_ack := (src, e, seq) :: !to_ack
            | Some _ -> t.deferred <- (src, e, seq) :: t.deferred);
            if is_new t ~src ~seq then begin
              journal_seen t ~src ~epoch:e ~seq;
              mark_seen t ~src ~seq;
              if Obs.enabled () then
                Obs.emit ~pid:t.tr.Transport.pid (Obs.Link_deliver { src; seq });
              delivered := (src, payload) :: !delivered
            end
            else begin
              t.st_redundant <- t.st_redundant + 1;
              if Obs.enabled () then
                Obs.emit ~pid:t.tr.Transport.pid (Obs.Link_dedup { src; seq })
            end
          end
      | Some (Ack (e, seq)) ->
          (* acks only settle the incarnation that sent the data *)
          if e = t.epoch then Hashtbl.remove t.out (src, seq)
          else begin
            t.st_stale <- t.st_stale + 1;
            if Obs.enabled () then
              Obs.emit ~pid:t.tr.Transport.pid (Obs.Link_stale { src })
          end
      | None ->
          (* raw Byzantine traffic: pass through, unsequenced *)
          t.st_raw <- t.st_raw + 1;
          delivered := (src, u) :: !delivered)
    incoming;
  List.iter
    (fun (src, e, seq) ->
      t.st_acks <- t.st_acks + 1;
      if Obs.enabled () then
        Obs.emit ~pid:t.tr.Transport.pid (Obs.Link_ack { dst = src; seq });
      t.tr.Transport.send ~dst:src (Univ.inj renv_key (Ack (e, seq))))
    (List.rev !to_ack);
  let now = Sched.now () in
  (* [sorted_bindings] orders by the table key (dst, seq) — exactly the
     retransmission order the explicit sort used to impose. *)
  let due =
    Tables.sorted_bindings t.out
    |> List.filter_map (fun (_, e) ->
           if now - e.o_last_tx >= e.o_backoff then Some e else None)
  in
  List.iter
    (fun e ->
      e.o_last_tx <- now;
      e.o_backoff <- min (2 * e.o_backoff) t.cfg.max_backoff;
      t.st_retrans <- t.st_retrans + 1;
      if Obs.enabled () then
        Obs.emit ~pid:t.tr.Transport.pid
          (Obs.Link_data { dst = e.o_dst; seq = e.o_seq; retrans = true });
      t.tr.Transport.send ~dst:e.o_dst
        (Univ.inj renv_key (Data (t.epoch, e.o_seq, e.o_payload))))
    due;
  List.rev !delivered

let as_transport (t : t) : Transport.t =
  {
    Transport.pid = t.tr.Transport.pid;
    n = t.tr.Transport.n;
    send = (fun ~dst payload -> send t ~dst payload);
    poll_all = (fun () -> poll_all t);
  }
