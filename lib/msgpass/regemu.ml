(* SWMR register emulation over Byzantine message passing (the Section 9
   corollary: everything in the paper lifts to message-passing systems
   because SWMR registers are implementable there for n > 3f, citing
   Mostéfaoui-Petrolia-Raynal-Jard [9]).

   Design (echo-broadcast dissemination + Byzantine-quorum reads):

   - WRITE(reg, v) by the owner: pick the next timestamp ts, send
     (wreq, reg, ts, v) to all. A replica that receives a wreq *on the
     owner's own channel* echoes (wecho, reg, ts, v) to all; a replica
     echoes after f+1 matching echoes even without the owner's wreq, and
     ACCEPTS the triple after 2f+1 matching echoes — the Srikanth-Toueg
     discipline, which gives unforgeability and relay: whatever one
     correct replica accepts, all correct replicas eventually accept.
     A replica stores, per register, the accepted triple with the largest
     (ts, value-fingerprint); on acceptance it acks the owner. The write
     returns after n-f acks.

   - READ(reg): send (rreq, reg, rid) to all; collect (rrep) replies for
     this rid; once >= n-f distinct replicas replied, return the pair
     supported by >= 2f+1 of them, largest first; if no pair has that
     support (replicas mid-convergence), start a new round with a fresh
     rid. Relay-convergence of the echo layer makes every read terminate,
     and 2f+1 support means at least f+1 correct vouchers.

   Each process owns a SINGLE transport endpoint, and the replica daemon
   is its sole pump: it dispatches replica-bound traffic (wreq, wecho,
   rreq) to the replica state and client-bound traffic (wack, rrep) into
   the client-side tables, which the blocking write/read operations
   merely observe between yields. One endpoint per pid is what lets the
   whole emulation sit behind a sequenced reliable link ({!Rlink} over
   {!Faultnet}): a per-pid sequence space, one ack stream, no duplicated
   fault decisions across cursors.

   Semantics note (documented in DESIGN.md): this emulation is simpler
   than [9]'s full atomic construction; it guarantees that reads return
   genuinely-written (or initial) values and that each replica's view is
   monotone, and the recorded histories are checked for linearizability
   empirically in the test suite. A Byzantine *owner* can of course feed
   the emulation inconsistent writes — exactly the situation the sticky
   register stacked on top must survive. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime

module PidSet = Set.Make (Int)

type emsg =
  | Wreq of int * int * Univ.t (* reg, ts, v *)
  | Wecho of int * int * Univ.t
  | Wack of int * int (* reg, ts *)
  | Rreq of int * int (* reg, rid *)
  | Rrep of int * int * int * Univ.t (* reg, rid, ts, v *)
  | Batch of emsg list
      (* A replica bundles all its replies to one destination from one
         poll iteration into a single message. Without batching the
         aggregate reply work (one send per request) exceeds the
         replicas' fair share of scheduling steps once several client
         fibers poll emulated registers continuously, and backlogs grow
         without bound. *)

let rec emsg_equal a b =
  match (a, b) with
  | Wreq (r1, t1, v1), Wreq (r2, t2, v2)
  | Wecho (r1, t1, v1), Wecho (r2, t2, v2) ->
      r1 = r2 && t1 = t2 && Univ.equal v1 v2
  | Wack (r1, t1), Wack (r2, t2) -> r1 = r2 && t1 = t2
  | Rreq (r1, i1), Rreq (r2, i2) -> r1 = r2 && i1 = i2
  | Rrep (r1, i1, t1, v1), Rrep (r2, i2, t2, v2) ->
      r1 = r2 && i1 = i2 && t1 = t2 && Univ.equal v1 v2
  | Batch l1, Batch l2 -> (
      try List.for_all2 emsg_equal l1 l2 with Invalid_argument _ -> false)
  | (Wreq _ | Wecho _ | Wack _ | Rreq _ | Rrep _ | Batch _), _ -> false

let emsg_key : emsg Univ.key =
  Univ.key ~name:"regemu"
    ~pp:(fun fmt -> function
      | Wreq (r, t, _) -> Format.fprintf fmt "wreq(r%d,ts%d)" r t
      | Wecho (r, t, _) -> Format.fprintf fmt "wecho(r%d,ts%d)" r t
      | Wack (r, t) -> Format.fprintf fmt "wack(r%d,ts%d)" r t
      | Rreq (r, i) -> Format.fprintf fmt "rreq(r%d,#%d)" r i
      | Rrep (r, i, t, _) -> Format.fprintf fmt "rrep(r%d,#%d,ts%d)" r i t
      | Batch l -> Format.fprintf fmt "batch(%d)" (List.length l))
    ~equal:emsg_equal

(* Value fingerprint used for deterministic tie-breaking and echo-count
   bucketing. *)
let fp (v : Univ.t) : string = Format.asprintf "%a" Univ.pp v

type meta = { owner : int; init : Univ.t }

type replica = {
  (* reg -> current accepted (ts, fingerprint, value) *)
  current : (int, int * string * Univ.t) Hashtbl.t;
  (* (reg, ts, fingerprint) -> (value, echoers) *)
  rep_echoes : (int * int * string, Univ.t * PidSet.t ref) Hashtbl.t;
  rep_echoed : (int * int * string, unit) Hashtbl.t;
  rep_accepted : (int * int * string, unit) Hashtbl.t;
}

type client = {
  mutable next_rid : int;
  wts : (int, int ref) Hashtbl.t; (* per-register write timestamp *)
  acks : (int * int, PidSet.t ref) Hashtbl.t; (* (reg, ts) -> ackers *)
  reps : (int, (int * int * Univ.t) list ref) Hashtbl.t;
      (* rid -> (src, ts, v) replies *)
}

type t = {
  mk_ep : pid:int -> Transport.t;
  n : int;
  q : Quorum.t;
  metas : (int, meta) Hashtbl.t; (* reg id -> meta *)
  mutable next_reg : int;
  mutable sent : int; (* endpoint-level sends, for messages_sent *)
  (* per-pid endpoint and protocol state, created lazily *)
  eps : Transport.t option array;
  replicas : replica option array;
  clients : client option array;
}

(* [Quorum.make] (strict): the emulation is only sound for n > 3f [9]. *)
let create_on ~mk_ep ~n ~f : t =
  {
    mk_ep;
    n;
    q = Quorum.make ~n ~f;
    metas = Hashtbl.create 64;
    next_reg = 0;
    sent = 0;
    eps = Array.make n None;
    replicas = Array.make n None;
    clients = Array.make n None;
  }

let create space ~n ~f : t =
  create_on ~mk_ep:(Transport.endpoints space ~n) ~n ~f

let endpoint t ~pid : Transport.t =
  match t.eps.(pid) with
  | Some ep -> ep
  | None ->
      let raw = t.mk_ep ~pid in
      (* count sends here, at the seam, so message-complexity accounting
         needs no peek below the transport (and no Net dependency) *)
      let ep =
        {
          raw with
          Transport.send =
            (fun ~dst u ->
              t.sent <- t.sent + 1;
              raw.Transport.send ~dst u);
        }
      in
      t.eps.(pid) <- Some ep;
      ep

let meta t reg =
  match Hashtbl.find_opt t.metas reg with
  | Some m -> m
  | None -> invalid_arg "Regemu: unknown register"

let replica_state t ~pid : replica =
  match t.replicas.(pid) with
  | Some r -> r
  | None ->
      let r =
        {
          current = Hashtbl.create 64;
          rep_echoes = Hashtbl.create 64;
          rep_echoed = Hashtbl.create 64;
          rep_accepted = Hashtbl.create 64;
        }
      in
      t.replicas.(pid) <- Some r;
      r

let client_state t ~pid : client =
  match t.clients.(pid) with
  | Some c -> c
  | None ->
      let c =
        {
          next_rid = 0;
          wts = Hashtbl.create 16;
          acks = Hashtbl.create 16;
          reps = Hashtbl.create 16;
        }
      in
      t.clients.(pid) <- Some c;
      c

(* ---------------- Replica side ---------------- *)

let rep_current t (r : replica) reg : int * string * Univ.t =
  match Hashtbl.find_opt r.current reg with
  | Some c -> c
  | None ->
      let m = meta t reg in
      (0, fp m.init, m.init)

let rep_adopt t (r : replica) reg ts f_ v =
  let cts, cfp, _ = rep_current t r reg in
  if (ts, f_) > (cts, cfp) then Hashtbl.replace r.current reg (ts, f_, v)

let rep_send_echo (r : replica) (ep : Transport.t) reg ts f_ v =
  if not (Hashtbl.mem r.rep_echoed (reg, ts, f_)) then begin
    Hashtbl.replace r.rep_echoed (reg, ts, f_) ();
    Transport.broadcast ep (Univ.inj emsg_key (Wecho (reg, ts, v)))
  end

let rep_note_echo t (r : replica) (ep : Transport.t) reg ts f_ v ~from =
  let _, set =
    match Hashtbl.find_opt r.rep_echoes (reg, ts, f_) with
    | Some p -> p
    | None ->
        let p = (v, ref PidSet.empty) in
        Hashtbl.replace r.rep_echoes (reg, ts, f_) p;
        p
  in
  set := PidSet.add from !set;
  let count = PidSet.cardinal !set in
  if Quorum.has_one_correct t.q count then rep_send_echo r ep reg ts f_ v;
  if Quorum.has_byz_quorum t.q count
     && not (Hashtbl.mem r.rep_accepted (reg, ts, f_))
  then begin
    Hashtbl.replace r.rep_accepted (reg, ts, f_) ();
    rep_adopt t r reg ts f_ v;
    ep.Transport.send ~dst:(meta t reg).owner
      (Univ.inj emsg_key (Wack (reg, ts)))
  end

(* ---------------- Client-bound dispatch ---------------- *)

let cl_note_ack (c : client) reg ts ~src =
  let set =
    match Hashtbl.find_opt c.acks (reg, ts) with
    | Some s -> s
    | None ->
        let s = ref PidSet.empty in
        Hashtbl.replace c.acks (reg, ts) s;
        s
  in
  set := PidSet.add src !set

let cl_note_rep (c : client) rid ts v ~src =
  let l =
    match Hashtbl.find_opt c.reps rid with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace c.reps rid l;
        l
  in
  if not (List.exists (fun (s, _, _) -> s = src) !l) then
    l := (src, ts, v) :: !l

(* ---------------- The per-process pump ---------------- *)

(* Handle one batch of incoming messages; all read-replies to the same
   destination leave as a single Batch message, so the per-iteration
   reply cost is bounded by n sends however large the backlog. The pump
   is the only reader of the pid's endpoint: replica-bound messages go
   to the replica state, client-bound ones into the client tables. *)
let pump t ~pid =
  let ep = endpoint t ~pid in
  let r = replica_state t ~pid in
  let c = client_state t ~pid in
  let outbox : (int, emsg list ref) Hashtbl.t = Hashtbl.create 8 in
  let out ~dst m =
    match Hashtbl.find_opt outbox dst with
    | Some l -> l := m :: !l
    | None -> Hashtbl.replace outbox dst (ref [ m ])
  in
  let rec handle ~src (m : emsg) =
    match m with
    | Wreq (reg, ts, v) ->
        if Hashtbl.mem t.metas reg && src = (meta t reg).owner then
          rep_send_echo r ep reg ts (fp v) v
    | Wecho (reg, ts, v) ->
        if Hashtbl.mem t.metas reg then
          rep_note_echo t r ep reg ts (fp v) v ~from:src
    | Rreq (reg, rid) ->
        if Hashtbl.mem t.metas reg then begin
          let ts, _, v = rep_current t r reg in
          out ~dst:src (Rrep (reg, rid, ts, v))
        end
    | Wack (reg, ts) -> cl_note_ack c reg ts ~src
    | Rrep (_, rid, ts, v) -> cl_note_rep c rid ts v ~src
    | Batch l -> List.iter (handle ~src) l
  in
  List.iter
    (fun (src, payload) ->
      match Univ.prj emsg_key payload with
      | Some m -> handle ~src m
      | None -> ())
    (ep.Transport.poll_all ());
  (Hashtbl.iter
     (fun dst l ->
       let msg = match !l with [ m ] -> m | ms -> Batch (List.rev ms) in
       ep.Transport.send ~dst (Univ.inj emsg_key msg))
     outbox
   [@lnd.allow
     "determinism: batch send order feeds the seeded per-message fault \
      plan (Faultnet draws one decision per send, in send order), so \
      sorting this iteration would silently invalidate every recorded \
      fuzz/chaos seed; outbox insertion order is itself deterministic \
      for a fixed schedule"])

(* The replica daemon each correct process must run. It is also the
   pid's message pump: blocking client operations on the same pid rely
   on it to deliver their acks and read replies. *)
let replica_daemon t ~pid : unit =
  while true do
    pump t ~pid;
    Sched.yield ()
  done

(* ---------------- Client side (the emulated Cell operations) -------- *)

let emu_write t reg (v : Univ.t) : unit =
  let pid = Sched.self () in
  let m = meta t reg in
  if pid <> m.owner then
    raise
      (Space.Permission_violation
         { pid; reg = Printf.sprintf "emu#%d" reg; op = "write" });
  let ep = endpoint t ~pid in
  let c = client_state t ~pid in
  let tsr =
    match Hashtbl.find_opt c.wts reg with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace c.wts reg r;
        r
  in
  incr tsr;
  let ts = !tsr in
  Transport.broadcast ep (Univ.inj emsg_key (Wreq (reg, ts, v)));
  let done_ = ref false in
  while not !done_ do
    (match Hashtbl.find_opt c.acks (reg, ts) with
    | Some s when Quorum.has_availability t.q (PidSet.cardinal !s) ->
        done_ := true
    | _ -> ());
    if not !done_ then Sched.yield ()
  done

let emu_read t reg : Univ.t =
  let pid = Sched.self () in
  let ep = endpoint t ~pid in
  let c = client_state t ~pid in
  let result = ref None in
  while !result = None do
    let rid = c.next_rid in
    c.next_rid <- rid + 1;
    Transport.broadcast ep (Univ.inj emsg_key (Rreq (reg, rid)));
    (* collect replies for this rid from >= n-f distinct replicas *)
    let round_done = ref false in
    while not !round_done do
      match Hashtbl.find_opt c.reps rid with
      | Some l when Quorum.has_availability t.q (List.length !l) ->
          round_done := true
      | _ -> Sched.yield ()
    done;
    let replies = !(Hashtbl.find c.reps rid) in
    (* Bucket by (ts, fingerprint). A bucket with >= f+1 distinct vouchers
       contains at least one correct replica, and correct replicas only
       hold ST-accepted (genuine) triples, so the value is genuine.
       Demanding more support (e.g. 2f+1 of the n-f replies) would
       livelock under continuous writes: at n = 3f+1 it requires unanimity
       of every collected reply. *)
    let buckets : (int * string, Univ.t * int ref) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (_, ts, v) ->
        let key = (ts, fp v) in
        match Hashtbl.find_opt buckets key with
        | Some (_, cnt) -> incr cnt
        | None -> Hashtbl.replace buckets key (v, ref 1))
      replies;
    let best = ref None in
    (* max-selection is order-independent, so sorted iteration is free *)
    Tables.iter_sorted
      (fun (ts, f_) (v, cnt) ->
        if Quorum.has_one_correct t.q !cnt then
          match !best with
          | Some (bts, bf, _) when (bts, bf) >= (ts, f_) -> ()
          | _ -> best := Some (ts, f_, v))
      buckets;
    (match !best with
    | Some (_, _, v) -> result := Some v
    | None -> () (* replicas still converging: new round *));
    Hashtbl.remove c.reps rid
  done;
  Option.get !result

(* ---------------- Allocator ---------------- *)

(* Allocate emulated registers (call during system setup, before running
   fibers). The returned cells can be fed straight into
   [Verifiable.alloc_with] / [Sticky.alloc_with]. *)
let allocator (t : t) : Cell.allocator =
 fun ~name ~owner ?single_reader ~init () ->
  ignore single_reader (* readability not enforced by the emulation *);
  let reg = t.next_reg in
  t.next_reg <- reg + 1;
  Hashtbl.replace t.metas reg { owner; init };
  {
    Cell.cell_name = Printf.sprintf "emu:%s" name;
    cell_read = (fun () -> emu_read t reg);
    cell_write = (fun v -> emu_write t reg v);
  }

let messages_sent t = t.sent
