(* SWMR register emulation over Byzantine message passing (the Section 9
   corollary: everything in the paper lifts to message-passing systems
   because SWMR registers are implementable there for n > 3f, citing
   Mostéfaoui-Petrolia-Raynal-Jard [9]).

   Design (echo-broadcast dissemination + Byzantine-quorum reads):

   - WRITE(reg, v) by the owner: pick the next timestamp ts, send
     (wreq, reg, ts, v) to all. A replica that receives a wreq *on the
     owner's own channel* echoes (wecho, reg, ts, v) to all; a replica
     echoes after f+1 matching echoes even without the owner's wreq, and
     ACCEPTS the triple after 2f+1 matching echoes — the Srikanth-Toueg
     discipline, which gives unforgeability and relay: whatever one
     correct replica accepts, all correct replicas eventually accept.
     A replica stores, per register, the accepted triple with the largest
     (ts, value-fingerprint); on acceptance it acks the owner. The write
     returns after n-f acks.

   - READ(reg): send (rreq, reg, rid) to all; collect (rrep) replies for
     this rid; once >= n-f distinct replicas replied, return the pair
     supported by >= 2f+1 of them, largest first; if no pair has that
     support (replicas mid-convergence), start a new round with a fresh
     rid. Relay-convergence of the echo layer makes every read terminate,
     and 2f+1 support means at least f+1 correct vouchers.

   Each process owns a SINGLE transport endpoint, and the replica daemon
   is its sole pump: it dispatches replica-bound traffic (wreq, wecho,
   rreq) to the replica state and client-bound traffic (wack, rrep) into
   the client-side tables, which the blocking write/read operations
   merely observe between yields. One endpoint per pid is what lets the
   whole emulation sit behind a sequenced reliable link ({!Rlink} over
   {!Faultnet}): a per-pid sequence space, one ack stream, no duplicated
   fault decisions across cursors.

   Semantics note (documented in DESIGN.md): this emulation is simpler
   than [9]'s full atomic construction; it guarantees that reads return
   genuinely-written (or initial) values and that each replica's view is
   monotone, and the recorded histories are checked for linearizability
   empirically in the test suite. A Byzantine *owner* can of course feed
   the emulation inconsistent writes — exactly the situation the sticky
   register stacked on top must survive. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Wal = Lnd_durable.Wal
module Obs = Lnd_obs.Obs

module PidSet = Set.Make (Int)

type emsg =
  | Wreq of int * int * Univ.t (* reg, ts, v *)
  | Wecho of int * int * Univ.t
  | Wack of int * int (* reg, ts *)
  | Rreq of int * int (* reg, rid *)
  | Rrep of int * int * int * Univ.t (* reg, rid, ts, v *)
  | Sreq of int (* rid — full-state transfer request (recovery) *)
  | Srep of int * (int * int * Univ.t) list
      (* rid, per-register (reg, ts, v) — the replier's whole view *)
  | Batch of emsg list
      (* A replica bundles all its replies to one destination from one
         poll iteration into a single message. Without batching the
         aggregate reply work (one send per request) exceeds the
         replicas' fair share of scheduling steps once several client
         fibers poll emulated registers continuously, and backlogs grow
         without bound. *)

let[@lnd.pure] rec emsg_equal a b =
  match (a, b) with
  | Wreq (r1, t1, v1), Wreq (r2, t2, v2)
  | Wecho (r1, t1, v1), Wecho (r2, t2, v2) ->
      r1 = r2 && t1 = t2 && Univ.equal v1 v2
  | Wack (r1, t1), Wack (r2, t2) -> r1 = r2 && t1 = t2
  | Rreq (r1, i1), Rreq (r2, i2) -> r1 = r2 && i1 = i2
  | Rrep (r1, i1, t1, v1), Rrep (r2, i2, t2, v2) ->
      r1 = r2 && i1 = i2 && t1 = t2 && Univ.equal v1 v2
  | Sreq i1, Sreq i2 -> i1 = i2
  | Srep (i1, l1), Srep (i2, l2) -> (
      i1 = i2
      &&
      try
        List.for_all2
          (fun (r1, t1, v1) (r2, t2, v2) ->
            r1 = r2 && t1 = t2 && Univ.equal v1 v2)
          l1 l2
      with Invalid_argument _ -> false)
  | Batch l1, Batch l2 -> (
      try List.for_all2 emsg_equal l1 l2 with Invalid_argument _ -> false)
  | (Wreq _ | Wecho _ | Wack _ | Rreq _ | Rrep _ | Sreq _ | Srep _ | Batch _), _
    ->
      false

let emsg_key : emsg Univ.key =
  Univ.key ~name:"regemu"
    ~pp:(fun fmt -> function
      | Wreq (r, t, _) -> Format.fprintf fmt "wreq(r%d,ts%d)" r t
      | Wecho (r, t, _) -> Format.fprintf fmt "wecho(r%d,ts%d)" r t
      | Wack (r, t) -> Format.fprintf fmt "wack(r%d,ts%d)" r t
      | Rreq (r, i) -> Format.fprintf fmt "rreq(r%d,#%d)" r i
      | Rrep (r, i, t, _) -> Format.fprintf fmt "rrep(r%d,#%d,ts%d)" r i t
      | Sreq i -> Format.fprintf fmt "sreq(#%d)" i
      | Srep (i, l) -> Format.fprintf fmt "srep(#%d,%d)" i (List.length l)
      | Batch l -> Format.fprintf fmt "batch(%d)" (List.length l))
    ~equal:emsg_equal

(* Value fingerprint used for deterministic tie-breaking and echo-count
   bucketing. *)
let[@lnd.pure] fp (v : Univ.t) : string = Format.asprintf "%a" Univ.pp v

type meta = { owner : int; init : Univ.t }

type replica = {
  (* reg -> current accepted (ts, fingerprint, value) *)
  current : (int, int * string * Univ.t) Hashtbl.t;
  (* (reg, ts, fingerprint) -> (value, echoers) *)
  rep_echoes : (int * int * string, Univ.t * PidSet.t ref) Hashtbl.t;
  rep_echoed : (int * int * string, unit) Hashtbl.t;
  rep_accepted : (int * int * string, unit) Hashtbl.t;
  (* src -> (reg, rid): the latest read request per requester. A reader
     runs one round at a time, so this is exactly the set of replies
     that may still be outstanding — what a recovered replica must
     re-answer (its retransmission state died with the crash). *)
  rep_last_rreq : (int, int * int) Hashtbl.t;
  mutable serving : bool;
      (* false while recovering: read requests are recorded (and
         journalled) but answered only once state transfer completes *)
}

type client = {
  mutable next_rid : int;
  wts : (int, int ref) Hashtbl.t; (* per-register write timestamp *)
  acks : (int * int, PidSet.t ref) Hashtbl.t; (* (reg, ts) -> ackers *)
  reps : (int, (int * int * Univ.t) list ref) Hashtbl.t;
      (* rid -> (src, ts, v) replies *)
  sreps : (int, (int * (int * int * Univ.t) list) list ref) Hashtbl.t;
      (* rid -> (src, full view) state-transfer replies *)
}

type t = {
  mk_ep : pid:int -> Transport.t;
  n : int;
  q : Quorum.t;
  metas : (int, meta) Hashtbl.t; (* reg id -> meta *)
  mutable next_reg : int;
  mutable sent : int; (* endpoint-level sends, for messages_sent *)
  (* per-pid endpoint and protocol state, created lazily *)
  eps : Transport.t option array;
  replicas : replica option array;
  clients : client option array;
  (* crash-recovery: per-pid journal and one value codec. Both optional —
     with no WAL attached the emulation is byte-identical to the
     volatile implementation. *)
  pwals : Wal.t option array;
  mutable codec : ((Univ.t -> string) * (string -> Univ.t)) option;
}

(* [Quorum.make] (strict): the emulation is only sound for n > 3f [9]. *)
let create_on ~mk_ep ~n ~f : t =
  {
    mk_ep;
    n;
    q = Quorum.make ~n ~f;
    metas = Hashtbl.create 64;
    next_reg = 0;
    sent = 0;
    eps = Array.make n None;
    replicas = Array.make n None;
    clients = Array.make n None;
    pwals = Array.make n None;
    codec = None;
  }

let create space ~n ~f : t =
  create_on ~mk_ep:(Transport.endpoints space ~n) ~n ~f

let endpoint t ~pid : Transport.t =
  match t.eps.(pid) with
  | Some ep -> ep
  | None ->
      let raw = t.mk_ep ~pid in
      (* count sends here, at the seam, so message-complexity accounting
         needs no peek below the transport (and no Net dependency) *)
      let ep =
        {
          raw with
          Transport.send =
            (fun ~dst u ->
              t.sent <- t.sent + 1;
              raw.Transport.send ~dst u);
        }
      in
      t.eps.(pid) <- Some ep;
      ep

let meta t reg =
  match Hashtbl.find_opt t.metas reg with
  | Some m -> m
  | None -> invalid_arg "Regemu: unknown register"

let replica_state t ~pid : replica =
  match t.replicas.(pid) with
  | Some r -> r
  | None ->
      let r =
        {
          current = Hashtbl.create 64;
          rep_echoes = Hashtbl.create 64;
          rep_echoed = Hashtbl.create 64;
          rep_accepted = Hashtbl.create 64;
          rep_last_rreq = Hashtbl.create 16;
          serving = true;
        }
      in
      t.replicas.(pid) <- Some r;
      r

let client_state t ~pid : client =
  match t.clients.(pid) with
  | Some c -> c
  | None ->
      let c =
        {
          next_rid = 0;
          wts = Hashtbl.create 16;
          acks = Hashtbl.create 16;
          reps = Hashtbl.create 16;
          sreps = Hashtbl.create 4;
        }
      in
      t.clients.(pid) <- Some c;
      c

(* ---------------- Crash-recovery: journalling ---------------- *)

(* Record grammar (one shared WAL per pid; Rlink's E/S/U records live in
   the same log). The value encoding [venc] is always the LAST field —
   it may contain spaces but never newlines.

     W <reg> <ts>                    client write timestamp
     A <reg> <ts> <venc>             replica adopted (reg, ts, v)
     H <reg> <ts> <venc>             replica echoed (reg, ts, v)
     X <src> <reg> <ts> <venc>       echo for (reg, ts, v) received from src
     P <reg> <ts> <venc>             replica accepted (reg, ts, v)
     R <src> <reg> <rid>             latest read request from src

   Discipline ("journal, sync, only then speak"): every mutation is
   journalled at mutation time; a sync barrier runs before any send that
   EXPOSES the mutated state (wacks, and — via Rlink's deferred-ack
   barrier — everything handled since the last poll). Re-sending state
   that was journalled but whose send was lost is always safe: every
   consumer below is idempotent (PidSet echo/ack counting, per-src reply
   dedup). *)

let set_codec t ~enc ~dec = t.codec <- Some (enc, dec)

let attach_wal t ~pid wal =
  if t.codec = None then invalid_arg "Regemu.attach_wal: set_codec first";
  t.pwals.(pid) <- Some wal

let enc_v t v =
  match t.codec with Some (e, _) -> e v | None -> assert false

let dec_v t s =
  match t.codec with Some (_, d) -> d s | None -> assert false

let jot t ~pid fmt =
  Printf.ksprintf
    (fun record ->
      match t.pwals.(pid) with
      | Some w -> Wal.append w record
      | None -> ())
    fmt

let psync t ~pid =
  match t.pwals.(pid) with Some w -> Wal.sync w | None -> ()

let journalling t ~pid = t.pwals.(pid) <> None

let forget t ~pid =
  t.eps.(pid) <- None;
  t.replicas.(pid) <- None;
  t.clients.(pid) <- None

let begin_recovery t ~pid = (replica_state t ~pid).serving <- false

(* ---------------- Replica side ---------------- *)

let rep_current t (r : replica) reg : int * string * Univ.t =
  match Hashtbl.find_opt r.current reg with
  | Some c -> c
  | None ->
      let m = meta t reg in
      (0, fp m.init, m.init)

let rep_adopt t (r : replica) ~pid reg ts f_ v =
  let cts, cfp, _ = rep_current t r reg in
  if (ts, f_) > (cts, cfp) then begin
    Hashtbl.replace r.current reg (ts, f_, v);
    if journalling t ~pid then jot t ~pid "A %d %d %s" reg ts (enc_v t v)
  end

let rep_send_echo t (r : replica) (ep : Transport.t) reg ts f_ v =
  if not (Hashtbl.mem r.rep_echoed (reg, ts, f_)) then begin
    Hashtbl.replace r.rep_echoed (reg, ts, f_) ();
    (* keep the value reachable from the echo table even before any echo
       arrives — snapshots reconstruct "H" records from it *)
    if not (Hashtbl.mem r.rep_echoes (reg, ts, f_)) then
      Hashtbl.replace r.rep_echoes (reg, ts, f_) (v, ref PidSet.empty);
    let pid = ep.Transport.pid in
    if journalling t ~pid then jot t ~pid "H %d %d %s" reg ts (enc_v t v);
    (Transport.broadcast ep (Univ.inj emsg_key (Wecho (reg, ts, v)))
     [@lnd.allow
       "sem-ordering: the echo's own journal record is deliberately not \
        synced before the broadcast — acceptance (the \"P\" record) is the \
        promise this replica must not forget, and rep_note_echo syncs it \
        before any ack leaves; a crash that loses an unsynced \"H\" only \
        re-derives and re-broadcasts the echo during recovery, which every \
        consumer treats idempotently. Syncing here would put one fsync on \
        every echo path"])
  end

let rep_note_echo t (r : replica) (ep : Transport.t) reg ts f_ v ~from =
  let pid = ep.Transport.pid in
  let _, set =
    match Hashtbl.find_opt r.rep_echoes (reg, ts, f_) with
    | Some p -> p
    | None ->
        let p = (v, ref PidSet.empty) in
        Hashtbl.replace r.rep_echoes (reg, ts, f_) p;
        p
  in
  if not (PidSet.mem from !set) then begin
    set := PidSet.add from !set;
    if journalling t ~pid then
      jot t ~pid "X %d %d %d %s" from reg ts (enc_v t v)
  end;
  let count = PidSet.cardinal !set in
  if Quorum.has_one_correct t.q count then rep_send_echo t r ep reg ts f_ v;
  if Quorum.has_byz_quorum t.q count
     && not (Hashtbl.mem r.rep_accepted (reg, ts, f_))
  then begin
    Hashtbl.replace r.rep_accepted (reg, ts, f_) ();
    if journalling t ~pid then jot t ~pid "P %d %d %s" reg ts (enc_v t v);
    rep_adopt t r ~pid reg ts f_ v;
    (* the ack EXPOSES acceptance: it must not outlive a crash that the
       journal does not remember, so the sync barrier comes first *)
    psync t ~pid;
    ep.Transport.send ~dst:(meta t reg).owner
      (Univ.inj emsg_key (Wack (reg, ts)))
  end

(* ---------------- Client-bound dispatch ---------------- *)

let cl_note_ack (c : client) reg ts ~src =
  let set =
    match Hashtbl.find_opt c.acks (reg, ts) with
    | Some s -> s
    | None ->
        let s = ref PidSet.empty in
        Hashtbl.replace c.acks (reg, ts) s;
        s
  in
  set := PidSet.add src !set

let cl_note_rep (c : client) rid ts v ~src =
  let l =
    match Hashtbl.find_opt c.reps rid with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace c.reps rid l;
        l
  in
  if not (List.exists (fun (s, _, _) -> s = src) !l) then
    l := (src, ts, v) :: !l

let cl_note_srep (c : client) rid view ~src =
  let l =
    match Hashtbl.find_opt c.sreps rid with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace c.sreps rid l;
        l
  in
  if not (List.exists (fun (s, _) -> s = src) !l) then l := (src, view) :: !l

(* The full register view a replica hands to a recovering peer: one
   (reg, ts, v) triple per register it holds ST-accepted state for.
   Correct replicas only hold genuine triples, so a state-transfer reply
   never needs more trust than a read reply does. *)
let rep_view t (r : replica) : (int * int * Univ.t) list =
  List.rev
    (Tables.fold_sorted
       (fun reg _ acc ->
         let ts, _, v = rep_current t r reg in
         (reg, ts, v) :: acc)
       t.metas [])

(* ---------------- The per-process pump ---------------- *)

(* Handle one batch of incoming messages; all read-replies to the same
   destination leave as a single Batch message, so the per-iteration
   reply cost is bounded by n sends however large the backlog. The pump
   is the only reader of the pid's endpoint: replica-bound messages go
   to the replica state, client-bound ones into the client tables. *)
let pump t ~pid =
  let ep = endpoint t ~pid in
  let r = replica_state t ~pid in
  let c = client_state t ~pid in
  let outbox : (int, emsg list ref) Hashtbl.t = Hashtbl.create 8 in
  let out ~dst m =
    match Hashtbl.find_opt outbox dst with
    | Some l -> l := m :: !l
    | None -> Hashtbl.replace outbox dst (ref [ m ])
  in
  (* Every decoded payload is recorded as a receiver-side [Obs.Claim]
     BEFORE it is acted on: the claim attributes what [src] said, so an
     auditor can cross-examine senders without trusting any receiver's
     subsequent behaviour. *)
  let claim ~src cl f_ =
    if Obs.enabled () then Obs.emit ~pid (Obs.Claim { src; claim = cl; fp = f_ })
  in
  let rec handle ~src (m : emsg) =
    match m with
    | Wreq (reg, ts, v) ->
        claim ~src (Obs.Cl_wreq { reg; ts }) (fp v);
        if Hashtbl.mem t.metas reg && src = (meta t reg).owner then
          rep_send_echo t r ep reg ts (fp v) v
    | Wecho (reg, ts, v) ->
        claim ~src (Obs.Cl_wecho { reg; ts }) (fp v);
        if Hashtbl.mem t.metas reg then
          rep_note_echo t r ep reg ts (fp v) v ~from:src
    | Rreq (reg, rid) ->
        if Hashtbl.mem t.metas reg then begin
          (* remember the latest outstanding request per requester: a
             recovered incarnation re-answers it (the reply — or its
             retransmission state — may have died with the crash) *)
          Hashtbl.replace r.rep_last_rreq src (reg, rid);
          if journalling t ~pid then jot t ~pid "R %d %d %d" src reg rid;
          if r.serving then begin
            let ts, _, v = rep_current t r reg in
            out ~dst:src (Rrep (reg, rid, ts, v))
          end
        end
    | Wack (reg, ts) ->
        claim ~src (Obs.Cl_wack { reg; ts }) "";
        cl_note_ack c reg ts ~src;
        if Obs.enabled () then begin
          let count =
            match Hashtbl.find_opt c.acks (reg, ts) with
            | Some s -> PidSet.cardinal !s
            | None -> 0
          in
          Obs.emit ~pid (Obs.Reg_reply { reg; rid = ts; src; count })
        end
    | Rrep (reg, rid, ts, v) ->
        claim ~src (Obs.Cl_rrep { reg; rid; ts }) (fp v);
        cl_note_rep c rid ts v ~src;
        if Obs.enabled () then begin
          let count =
            match Hashtbl.find_opt c.reps rid with
            | Some l -> List.length !l
            | None -> 0
          in
          Obs.emit ~pid (Obs.Reg_reply { reg; rid; src; count })
        end
    | Sreq rid ->
        (* state transfer: answered even while recovering — the view is
           whatever is ST-accepted so far, always genuine *)
        out ~dst:src (Srep (rid, rep_view t r))
    | Srep (rid, view) ->
        List.iter
          (fun (reg, ts, v) -> claim ~src (Obs.Cl_state { reg; ts }) (fp v))
          view;
        cl_note_srep c rid view ~src
    | Batch l -> List.iter (handle ~src) l
  in
  List.iter
    (fun (src, payload) ->
      match Univ.prj emsg_key payload with
      | Some m -> handle ~src m
      | None -> claim ~src Obs.Cl_garbage "")
    (ep.Transport.poll_all ());
  (Hashtbl.iter
     (fun dst l ->
       let msg = match !l with [ m ] -> m | ms -> Batch (List.rev ms) in
       ep.Transport.send ~dst (Univ.inj emsg_key msg))
     outbox
   [@lnd.allow
     "determinism: batch send order feeds the seeded per-message fault \
      plan (Faultnet draws one decision per send, in send order), so \
      sorting this iteration would silently invalidate every recorded \
      fuzz/chaos seed; outbox insertion order is itself deterministic \
      for a fixed schedule"]
   [@lnd.allow
     "sem-ordering: the outbox carries only read and state-transfer \
      replies, which expose state already made durable by the acceptance \
      barrier (rep_note_echo syncs before its ack; recovery syncs before \
      re-answering); the outstanding-request \"R\" record this flush may \
      leave unsynced is a retransmission aid whose loss costs one client \
      retry, never a forgotten promise"])

(* The replica daemon each correct process must run. It is also the
   pid's message pump: blocking client operations on the same pid rely
   on it to deliver their acks and read replies. *)
let replica_daemon t ~pid : unit =
  while true do
    pump t ~pid;
    Sched.yield ()
  done

(* ---------------- Client side (the emulated Cell operations) -------- *)

let emu_write t reg (v : Univ.t) : unit =
  let pid = Sched.self () in
  let m = meta t reg in
  if pid <> m.owner then
    raise
      (Space.Permission_violation
         { pid; reg = Printf.sprintf "emu#%d" reg; op = "write" });
  let ep = endpoint t ~pid in
  let c = client_state t ~pid in
  let tsr =
    match Hashtbl.find_opt c.wts reg with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace c.wts reg r;
        r
  in
  incr tsr;
  let ts = !tsr in
  let sp =
    if Obs.enabled () then begin
      let sp =
        Obs.span_open ~pid ~name:"EMU_WRITE"
          ~arg:(Printf.sprintf "r%d=%s" reg (fp v)) ()
      in
      Obs.emit ~pid (Obs.Reg_round { reg; round = "write"; rid = ts });
      (* declare the write before the Wreq broadcast: every claim a
         replica later derives from it (echo, ack, reply) then has an
         earlier justification on the event stream *)
      Obs.emit ~pid (Obs.Reg_write_ann { reg; ts; fp = fp v });
      sp
    end
    else 0
  in
  (* the broadcast exposes ts: journal it first so a restarted writer
     never reuses a timestamp it already spoke for *)
  jot t ~pid "W %d %d" reg ts;
  psync t ~pid;
  Transport.broadcast ep (Univ.inj emsg_key (Wreq (reg, ts, v)));
  let done_ = ref false in
  while not !done_ do
    (match Hashtbl.find_opt c.acks (reg, ts) with
    | Some s when Quorum.has_availability t.q (PidSet.cardinal !s) ->
        if Obs.enabled () then
          Obs.emit ~pid
            (Obs.Reg_quorum { reg; rid = ts; count = PidSet.cardinal !s });
        done_ := true
    | _ -> ());
    if not !done_ then Sched.yield ()
  done;
  if Obs.enabled () then Obs.span_close ~pid ~result:"done" ~name:"EMU_WRITE" sp

(* Clock ticks a read round waits for availability before retrying with a
   fresh rid.  Only reachable when a replica restart orphaned a reply. *)
let round_patience = 400_000

let emu_read t reg : Univ.t =
  let pid = Sched.self () in
  let ep = endpoint t ~pid in
  let c = client_state t ~pid in
  let sp =
    if Obs.enabled () then
      Obs.span_open ~pid ~name:"EMU_READ" ~arg:(Printf.sprintf "r%d" reg) ()
    else 0
  in
  let result = ref None in
  while !result = None do
    let rid = c.next_rid in
    c.next_rid <- rid + 1;
    if Obs.enabled () then
      Obs.emit ~pid (Obs.Reg_round { reg; round = "read"; rid });
    Transport.broadcast ep (Univ.inj emsg_key (Rreq (reg, rid)));
    (* Collect replies for this rid from >= n-f distinct replicas — but
       not forever.  A replica that crashed after we broadcast may have
       sent its reply from an incarnation whose retransmission state died
       with it, and its successor only re-answers the *latest* request it
       journalled per source; with several reader fibres on one pid the
       older round would then hang.  After a patience window (far above
       any crash-free round, far below the watchdog) we abandon the rid
       and open a fresh round, which the recovered replica answers
       normally.  [Sched.now] is not a scheduling point, so crash-free
       runs are bit-for-bit unchanged. *)
    let t0 = Sched.now () in
    let round_done = ref false in
    while not !round_done do
      match Hashtbl.find_opt c.reps rid with
      | Some l when Quorum.has_availability t.q (List.length !l) ->
          round_done := true
      | _ ->
          if Sched.now () - t0 > round_patience then round_done := true
          else Sched.yield ()
    done;
    let replies =
      match Hashtbl.find_opt c.reps rid with Some l -> !l | None -> []
    in
    (* Bucket by (ts, fingerprint). A bucket with >= f+1 distinct vouchers
       contains at least one correct replica, and correct replicas only
       hold ST-accepted (genuine) triples, so the value is genuine.
       Demanding more support (e.g. 2f+1 of the n-f replies) would
       livelock under continuous writes: at n = 3f+1 it requires unanimity
       of every collected reply. *)
    let buckets : (int * string, Univ.t * int ref) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (_, ts, v) ->
        let key = (ts, fp v) in
        match Hashtbl.find_opt buckets key with
        | Some (_, cnt) -> incr cnt
        | None -> Hashtbl.replace buckets key (v, ref 1))
      replies;
    let best = ref None in
    (* max-selection is order-independent, so sorted iteration is free *)
    Tables.iter_sorted
      (fun (ts, f_) (v, cnt) ->
        if Quorum.has_one_correct t.q !cnt then
          match !best with
          | Some (bts, bf, _) when (bts, bf) >= (ts, f_) -> ()
          | _ -> best := Some (ts, f_, v))
      buckets;
    (match !best with
    | Some (bts, bf, v) ->
        if Obs.enabled () then begin
          let count =
            match Hashtbl.find_opt buckets (bts, bf) with
            | Some (_, cnt) -> !cnt
            | None -> 0
          in
          Obs.emit ~pid (Obs.Reg_quorum { reg; rid; count })
        end;
        result := Some v
    | None -> () (* replicas still converging: new round *));
    Hashtbl.remove c.reps rid
  done;
  let v = Option.get !result in
  if Obs.enabled () then Obs.span_close ~pid ~result:(fp v) ~name:"EMU_READ" sp;
  v

(* ---------------- Allocator ---------------- *)

(* Allocate emulated registers (call during system setup, before running
   fibers). The returned cells can be fed straight into
   [Verifiable.alloc_with] / [Sticky.alloc_with]. *)
let allocator (t : t) : Cell.allocator =
 fun ~name ~owner ?single_reader ~init () ->
  ignore single_reader (* readability not enforced by the emulation *);
  let reg = t.next_reg in
  t.next_reg <- reg + 1;
  Hashtbl.replace t.metas reg { owner; init };
  if Obs.enabled () then
    Obs.emit ~pid:owner (Obs.Reg_alloc { reg; owner; fp = fp init });
  {
    Cell.cell_name = Printf.sprintf "emu:%s" name;
    cell_read = (fun () -> emu_read t reg);
    cell_write = (fun v -> emu_write t reg v);
  }

let messages_sent t = t.sent

(* ---------------- Crash-recovery: restore and catch-up ---------------- *)

let[@lnd.pure] tail_from record pos = String.sub record pos (String.length record - pos)

let restore_record t ~pid (record : string) : bool =
  let r = replica_state t ~pid in
  let c = client_state t ~pid in
  let adopt reg ts v =
    let f_ = fp v in
    let cts, cfp, _ = rep_current t r reg in
    if (ts, f_) > (cts, cfp) then Hashtbl.replace r.current reg (ts, f_, v)
  in
  let ensure_echoes reg ts v =
    let f_ = fp v in
    match Hashtbl.find_opt r.rep_echoes (reg, ts, f_) with
    | Some (_, set) -> set
    | None ->
        let set = ref PidSet.empty in
        Hashtbl.replace r.rep_echoes (reg, ts, f_) (v, set);
        set
  in
  if record = "" then false
  else
    match record.[0] with
    | 'W' -> (
        match Scanf.sscanf_opt record "W %d %d" (fun reg ts -> (reg, ts)) with
        | Some (reg, ts) ->
            (match Hashtbl.find_opt c.wts reg with
            | Some tsr -> if ts > !tsr then tsr := ts
            | None -> Hashtbl.replace c.wts reg (ref ts));
            true
        | None -> false)
    | 'A' -> (
        match
          Scanf.sscanf_opt record "A %d %d %n" (fun reg ts pos ->
              (reg, ts, pos))
        with
        | Some (reg, ts, pos) ->
            adopt reg ts (dec_v t (tail_from record pos));
            true
        | None -> false)
    | 'H' -> (
        match
          Scanf.sscanf_opt record "H %d %d %n" (fun reg ts pos ->
              (reg, ts, pos))
        with
        | Some (reg, ts, pos) ->
            let v = dec_v t (tail_from record pos) in
            ignore (ensure_echoes reg ts v);
            Hashtbl.replace r.rep_echoed (reg, ts, fp v) ();
            true
        | None -> false)
    | 'X' -> (
        match
          Scanf.sscanf_opt record "X %d %d %d %n" (fun src reg ts pos ->
              (src, reg, ts, pos))
        with
        | Some (src, reg, ts, pos) ->
            let v = dec_v t (tail_from record pos) in
            let set = ensure_echoes reg ts v in
            set := PidSet.add src !set;
            true
        | None -> false)
    | 'P' -> (
        match
          Scanf.sscanf_opt record "P %d %d %n" (fun reg ts pos ->
              (reg, ts, pos))
        with
        | Some (reg, ts, pos) ->
            let v = dec_v t (tail_from record pos) in
            ignore (ensure_echoes reg ts v);
            Hashtbl.replace r.rep_accepted (reg, ts, fp v) ();
            true
        | None -> false)
    | 'R' -> (
        match
          Scanf.sscanf_opt record "R %d %d %d" (fun src reg rid ->
              (src, reg, rid))
        with
        | Some (src, reg, rid) ->
            Hashtbl.replace r.rep_last_rreq src (reg, rid);
            true
        | None -> false)
    | _ -> false

let snapshot_records t ~pid : string list =
  let r = replica_state t ~pid in
  let c = client_state t ~pid in
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  Tables.iter_sorted (fun reg tsr -> add "W %d %d" reg !tsr) c.wts;
  Tables.iter_sorted
    (fun reg (ts, _, v) -> add "A %d %d %s" reg ts (enc_v t v))
    r.current;
  Tables.iter_sorted
    (fun (reg, ts, f_) (v, set) ->
      if Hashtbl.mem r.rep_echoed (reg, ts, f_) then
        add "H %d %d %s" reg ts (enc_v t v);
      if Hashtbl.mem r.rep_accepted (reg, ts, f_) then
        add "P %d %d %s" reg ts (enc_v t v);
      PidSet.iter
        (fun src -> add "X %d %d %d %s" src reg ts (enc_v t v))
        !set)
    r.rep_echoes;
  Tables.iter_sorted
    (fun src (reg, rid) -> add "R %d %d %d" src reg rid)
    r.rep_last_rreq;
  List.rev !out

(* The fiber body a restarted process runs: catch up on what it missed
   while down, re-announce what its predecessor may have had in flight,
   then serve as an ordinary replica.

   Safety does not depend on the state transfer: everything the crashed
   incarnation EXPOSED (acks it sent, replies it answered) was journalled
   and synced first, so the restored state is at least as advanced as any
   state another process observed. The transfer is a liveness
   accelerator — it catches the replica up past writes that completed
   entirely while it was down, without waiting for writer
   retransmissions. *)
let recover_and_serve t ~pid : unit =
  let ep = endpoint t ~pid in
  let r = replica_state t ~pid in
  let c = client_state t ~pid in
  (* state transfer round: full views from >= n-f distinct peers *)
  let rid = c.next_rid in
  c.next_rid <- rid + 1;
  let sp =
    if Obs.enabled () then begin
      let sp = Obs.span_open ~pid ~name:"RECOVER" () in
      Obs.emit ~pid (Obs.Reg_round { reg = -1; round = "recover"; rid });
      sp
    end
    else 0
  in
  Transport.broadcast ep (Univ.inj emsg_key (Sreq rid));
  let enough () =
    match Hashtbl.find_opt c.sreps rid with
    | Some l -> Quorum.has_availability t.q (List.length !l)
    | None -> false
  in
  while not (enough ()) do
    pump t ~pid;
    Sched.yield ()
  done;
  let views = !(Hashtbl.find c.sreps rid) in
  Hashtbl.remove c.sreps rid;
  (* bucket by (reg, ts, fingerprint); adopt any bucket vouched by >= f+1
     distinct repliers (one of them correct, so the triple is genuine)
     that beats the restored state — same trust rule as a read round *)
  let buckets : (int * int * string, Univ.t * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (_, view) ->
      List.iter
        (fun (reg, ts, v) ->
          let key = (reg, ts, fp v) in
          match Hashtbl.find_opt buckets key with
          | Some (_, cnt) -> incr cnt
          | None -> Hashtbl.replace buckets key (v, ref 1))
        view)
    views;
  Tables.iter_sorted
    (fun (reg, ts, f_) (v, cnt) ->
      if Quorum.has_one_correct t.q !cnt then rep_adopt t r ~pid reg ts f_ v)
    buckets;
  (* re-run thresholds and re-announce: the predecessor's unacked sends
     (echoes, acks, replies) died with its retransmission state, and a
     journalled echo set may already be past a threshold whose triggered
     send was lost. Every consumer below is idempotent, so resending is
     always safe. *)
  Tables.iter_sorted
    (fun (reg, ts, f_) (v, set) ->
      let count = PidSet.cardinal !set in
      if
        Quorum.has_one_correct t.q count
        || Hashtbl.mem r.rep_echoed (reg, ts, f_)
      then begin
        if journalling t ~pid && not (Hashtbl.mem r.rep_echoed (reg, ts, f_))
        then jot t ~pid "H %d %d %s" reg ts (enc_v t v);
        Hashtbl.replace r.rep_echoed (reg, ts, f_) ();
        (Transport.broadcast ep (Univ.inj emsg_key (Wecho (reg, ts, v)))
         [@lnd.allow
           "sem-ordering: recovery's re-announce is the replay path of \
            rep_send_echo's deferred-sync echo — the psync below makes \
            every acceptance durable before any ack leaves, and a crash \
            during re-announce just re-derives these same echoes on the \
            next recovery"])
      end;
      if
        Quorum.has_byz_quorum t.q count
        && not (Hashtbl.mem r.rep_accepted (reg, ts, f_))
      then begin
        Hashtbl.replace r.rep_accepted (reg, ts, f_) ();
        if journalling t ~pid then jot t ~pid "P %d %d %s" reg ts (enc_v t v);
        rep_adopt t r ~pid reg ts f_ v
      end)
    r.rep_echoes;
  (* acceptance durable before any ack leaves *)
  psync t ~pid;
  Tables.iter_sorted
    (fun (reg, ts, _) () ->
      if Hashtbl.mem t.metas reg then
        ep.Transport.send ~dst:(meta t reg).owner
          (Univ.inj emsg_key (Wack (reg, ts))))
    r.rep_accepted;
  (* re-answer the read requests the crash left hanging *)
  Tables.iter_sorted
    (fun src (reg, rid) ->
      if Hashtbl.mem t.metas reg then begin
        let ts, _, v = rep_current t r reg in
        ep.Transport.send ~dst:src (Univ.inj emsg_key (Rrep (reg, rid, ts, v)))
      end)
    r.rep_last_rreq;
  r.serving <- true;
  if Obs.enabled () then Obs.span_close ~pid ~result:"done" ~name:"RECOVER" sp;
  replica_daemon t ~pid
