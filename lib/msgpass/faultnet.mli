(** Seeded network fault injection over {!Net}: fair-lossy links.

    Interposes on send/poll with a fully deterministic fault plan — per
    directed link message drop, duplication, bounded delay (which
    doubles as reordering: a delayed message is overtaken by later,
    less-delayed ones), and dynamic partitions that heal. All decisions
    are drawn from per-link PRNG streams derived from the plan seed, and
    delivery times are logical-clock stamps, so one (plan, policy) pair
    replays an identical delivery trace — the lnd_fuzz
    one-seed-one-scenario contract.

    Fairness: random drops on a link are capped at [fair_burst]
    consecutive losses, so a message retransmitted forever is eventually
    delivered (the fair-lossy assumption {!Rlink} needs for liveness).
    Partition losses are exempt — a cut link delivers nothing until the
    partition heals. Self-links (src = dst) are exempt from all faults.

    With the {!zero} plan the wrapper is behaviourally identical to
    {!Net}: same delivery order, same scheduling points, zero overhead.

    Sender authentication is inherited from {!Net}: the wrapper uses the
    same owner-enforced per-(src,dst) channel registers, so a Byzantine
    process still cannot forge another pid's messages. *)

open Lnd_support

val fenv_key : (int * Univ.t) Univ.key
(** The wire envelope: (deliver-at-clock, payload). Exposed for
    introspection in tests; raw un-enveloped payloads (Byzantine
    injection through a bare [Net] port) are delivered immediately. *)

type partition = {
  cut_from : int;  (** first clock tick of the cut *)
  cut_until : int;  (** first tick after healing *)
  island : int list;  (** pids on one side of the cut *)
}

type plan = {
  fault_seed : int;
  drop_pct : int;  (** random per-message loss, percent *)
  dup_pct : int;  (** duplicate delivery, percent *)
  delay_pct : int;  (** chance of nonzero latency, percent *)
  max_delay : int;  (** latency bound in logical-clock ticks *)
  fair_burst : int;
      (** max consecutive random drops per link; [<= 0] disables the cap
          (the link is then lossy but NOT fair-lossy) *)
  partitions : partition list;
}

val zero : plan
(** The all-zero plan: no faults, behaviourally identical to {!Net}. *)

val pp_plan : Format.formatter -> plan -> unit

type stats = {
  sent : int;  (** messages offered to the fault layer *)
  dropped : int;  (** random losses *)
  cut : int;  (** partition losses *)
  duplicated : int;  (** extra copies injected *)
  delayed : int;  (** messages given nonzero latency *)
}

type t

val wrap : Net.t -> plan -> t
(** Wrap a network in a fault plan. Fault state is per directed link and
    shared by every port of the wrapper. *)

val stats : t -> stats

type port

val port : t -> pid:int -> port
(** A fault-injecting endpoint for [pid] (independent receive cursors
    and delay queues per port, like {!Net.port}). *)

val send : port -> dst:int -> Univ.t -> unit
val broadcast : port -> Univ.t -> unit

val poll_from : port -> src:int -> Univ.t list
(** Deliverable messages from [src]: new arrivals plus any previously
    held-back messages whose delivery stamp has been reached, ordered by
    (stamp, arrival). *)

val poll_all : port -> (int * Univ.t) list

val transport : t -> pid:int -> Transport.t
(** A fresh {!port} packaged as a {!Transport.t}. *)
