(* Asynchronous message passing, modelled on top of the shared-register
   scheduler: the channel from i to j is an append-only log register owned
   by i and readable by j. Receivers poll with a private cursor, so a
   message is delivered whenever the receiver's fiber is next scheduled —
   i.e. delivery is asynchronous (arbitrary finite delay), exactly the
   model of Srikanth-Toueg [10] and MPRJ [9].

   Channel identity gives authenticated channels: a receiver knows which
   process a message came from, because only pid i can write the i→j log;
   a Byzantine process can send arbitrary and inconsistent messages but
   cannot forge the sender identity. Multiple fibers of one pid (a client
   and a protocol daemon) each use their own [port]: logs are never
   consumed, so independent cursors see every message. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime

(* A channel log is (count, messages-newest-first); carrying the count in
   the payload keeps every poll O(new messages) instead of O(log length). *)
let log_key : (int * Univ.t list) Univ.key =
  Univ.key ~name:"msglog"
    ~pp:(fun fmt (c, _) -> Format.fprintf fmt "[%d msgs]" c)
    ~equal:(fun (c1, a) (c2, b) ->
      c1 = c2
      && (try List.for_all2 Univ.equal a b with Invalid_argument _ -> false))

type t = {
  n : int;
  chan : Register.t array array; (* chan.(src).(dst) *)
  mutable sends : int; (* messages sent, for the cost tables *)
}

let create space ~n : t =
  let chan =
    Array.init n (fun src ->
        Array.init n (fun dst ->
            Space.alloc space
              ~name:(Printf.sprintf "chan_%d_%d" src dst)
              ~owner:src ~single_reader:dst
              ~init:(Univ.inj log_key (0, []))
              ()))
  in
  { n; chan; sends = 0 }

(* A process endpoint: [pid] plus receive cursors. Create one port per
   fiber that wants to receive independently. *)
type port = { net : t; pid : int; cursors : int array }

let port (net : t) ~pid : port = { net; pid; cursors = Array.make net.n 0 }

(* Append atomically: a process's client fiber and its protocol daemon may
   send on the same channel concurrently, and a read-then-write append
   across a scheduling point would lose messages. *)
let send (p : port) ~(dst : int) (payload : Univ.t) : unit =
  let reg = p.net.chan.(p.pid).(dst) in
  p.net.sends <- p.net.sends + 1;
  ignore
    (Sched.rmw reg (fun old ->
         let count, log = Univ.prj_default log_key ~default:(0, []) old in
         Univ.inj log_key (count + 1, payload :: log)))

let broadcast (p : port) (payload : Univ.t) : unit =
  for dst = 0 to p.net.n - 1 do
    send p ~dst payload
  done

(* All not-yet-seen messages from [src], oldest first. One register read. *)
let poll_from (p : port) ~(src : int) : Univ.t list =
  let reg = p.net.chan.(src).(p.pid) in
  let total, log = Univ.prj_default log_key ~default:(0, []) (Sched.read reg) in
  let fresh_count = total - p.cursors.(src) in
  if fresh_count <= 0 then []
  else begin
    p.cursors.(src) <- total;
    (* the first [fresh_count] entries are the new ones (newest first) *)
    let rec take k acc = function
      | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
      | _ -> acc
    in
    take fresh_count [] log
  end

(* Poll every channel once; returns (src, payload) pairs, oldest first per
   source. n register reads. *)
let poll_all (p : port) : (int * Univ.t) list =
  (* Accumulate reversed and flip once at the end: one cons per message,
     no per-source list append. *)
  let acc = ref [] in
  for src = 0 to p.net.n - 1 do
    List.iter (fun m -> acc := (src, m) :: !acc) (poll_from p ~src)
  done;
  List.rev !acc
