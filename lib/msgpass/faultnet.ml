(* Seeded network fault injection over [Net]: fair-lossy links.

   [Net] is perfectly reliable — every send is durably appended to a
   channel log and delivered exactly once, in FIFO order. That silently
   under-tests the paper's Section 9 substrate, which assumes only
   *eventual* delivery over asynchronous links (Srikanth-Toueg [10],
   MPRJ [9]). [Faultnet] interposes on send/poll with a fully
   deterministic, seeded fault plan:

   - DROP: each message is lost with probability [drop_pct]%.
   - DUPLICATION: each delivered message is delivered twice with
     probability [dup_pct]% (the copies get independent delays, so a
     duplicate can arrive much later than the original).
   - DELAY / REORDERING: with probability [delay_pct]% a message is
     held back for 1..[max_delay] logical-clock ticks; later messages
     with smaller delays overtake it, so bounded delay doubles as
     reordering.
   - DYNAMIC PARTITIONS: during [cut_from, cut_until) messages crossing
     the [island] cut are lost; the partition heals when the clock
     passes [cut_until].

   Fairness (honest fair-lossy semantics): random drops on a link are
   capped at [fair_burst] consecutive losses — after that many in a row
   the next message on the link gets through. So any message that is
   retransmitted forever is eventually delivered, which is exactly the
   fair-lossy assumption the retransmission layer [Rlink] needs for
   liveness. Partition losses are exempt from the cap (a cut link
   delivers nothing), which is why plans must heal their partitions for
   liveness claims to apply.

   Determinism: all decisions are drawn from per-link SplitMix64 streams
   derived from [fault_seed], in send order on that link, and delivery
   times are logical-clock stamps — so (plan, scheduling policy) replays
   an identical delivery trace, in the one-seed-one-scenario style of
   lnd_fuzz.

   Self-links (src = dst) are exempt from all faults: a process's
   messages to itself are local, not network traffic.

   The wire format wraps each payload in a (deliver_at, payload)
   envelope under [fenv_key]; receivers hold back envelopes whose stamp
   is in the future. Raw (un-enveloped) payloads — e.g. injected by a
   Byzantine fiber writing straight to a [Net] port on the same
   channels — are delivered immediately, so adversarial raw traffic
   still flows. Sender authentication is untouched: Faultnet uses the
   same owner-enforced per-(src,dst) channel registers as Net. *)

open Lnd_support
open Lnd_runtime
module Obs = Lnd_obs.Obs

(* (deliver-at-clock, payload) *)
let fenv_key : (int * Univ.t) Univ.key =
  Univ.key ~name:"fenv"
    ~pp:(fun fmt (at, p) -> Format.fprintf fmt "@%d:%a" at Univ.pp p)
    ~equal:(fun (a1, p1) (a2, p2) -> a1 = a2 && Univ.equal p1 p2)

type partition = {
  cut_from : int; (* first clock tick of the cut *)
  cut_until : int; (* first tick after healing *)
  island : int list; (* pids on one side of the cut *)
}

type plan = {
  fault_seed : int;
  drop_pct : int; (* random per-message loss, percent *)
  dup_pct : int; (* duplicate delivery, percent *)
  delay_pct : int; (* chance of nonzero latency, percent *)
  max_delay : int; (* latency bound in logical-clock ticks *)
  fair_burst : int;
      (* max consecutive random drops per link; <= 0 disables the cap
         (the link is then lossy but NOT fair) *)
  partitions : partition list;
}

let zero : plan =
  {
    fault_seed = 0;
    drop_pct = 0;
    dup_pct = 0;
    delay_pct = 0;
    max_delay = 0;
    fair_burst = 0;
    partitions = [];
  }

let pp_partition fmt p =
  Format.fprintf fmt "[%s]@%d-%d"
    (String.concat "," (List.map string_of_int p.island))
    p.cut_from p.cut_until

let pp_plan fmt (p : plan) =
  Format.fprintf fmt "seed=%d drop=%d%% dup=%d%% delay=%d%%/%d fair=%d%a"
    p.fault_seed p.drop_pct p.dup_pct p.delay_pct p.max_delay p.fair_burst
    (fun fmt -> function
      | [] -> ()
      | ps ->
          Format.fprintf fmt " cut=%s"
            (String.concat "+"
               (List.map (Format.asprintf "%a" pp_partition) ps)))
    p.partitions

(* Per-directed-link fault state. *)
type link = { rng : Rng.t; mutable burst : int (* consecutive random drops *) }

type stats = {
  sent : int; (* messages offered to the fault layer *)
  dropped : int; (* random losses *)
  cut : int; (* partition losses *)
  duplicated : int; (* extra copies injected *)
  delayed : int; (* messages given nonzero latency *)
}

type t = {
  net : Net.t;
  plan : plan;
  links : link array array;
  mutable st_sent : int;
  mutable st_dropped : int;
  mutable st_cut : int;
  mutable st_duplicated : int;
  mutable st_delayed : int;
}

let wrap (net : Net.t) (plan : plan) : t =
  let master = Rng.create (plan.fault_seed * 0x9E37 + 0x79B9) in
  let n = net.Net.n in
  {
    net;
    plan;
    links =
      Array.init n (fun src ->
          Array.init n (fun dst ->
              { rng = Rng.derive master ((src * n) + dst); burst = 0 }));
    st_sent = 0;
    st_dropped = 0;
    st_cut = 0;
    st_duplicated = 0;
    st_delayed = 0;
  }

let stats (t : t) : stats =
  {
    sent = t.st_sent;
    dropped = t.st_dropped;
    cut = t.st_cut;
    duplicated = t.st_duplicated;
    delayed = t.st_delayed;
  }

let partitioned (t : t) ~src ~dst ~now =
  List.exists
    (fun p ->
      now >= p.cut_from && now < p.cut_until
      && List.mem src p.island <> List.mem dst p.island)
    t.plan.partitions

(* A message held back because its delivery stamp is in the future. *)
type held = { h_at : int; h_arr : int; h_payload : Univ.t }

type port = {
  fnet : t;
  nport : Net.port;
  pending : held list ref array; (* per source, unordered *)
  mutable arrivals : int; (* tiebreak: preserves arrival order *)
}

let port (t : t) ~pid : port =
  {
    fnet = t;
    nport = Net.port t.net ~pid;
    pending = Array.init t.net.Net.n (fun _ -> ref []);
    arrivals = 0;
  }

let send (p : port) ~(dst : int) (payload : Univ.t) : unit =
  let t = p.fnet in
  let src = p.nport.Net.pid in
  let now = Sched.now () in
  t.st_sent <- t.st_sent + 1;
  if src = dst then
    (* self-links are local, not network traffic: always perfect *)
    Net.send p.nport ~dst (Univ.inj fenv_key (now, payload))
  else if partitioned t ~src ~dst ~now then begin
    t.st_cut <- t.st_cut + 1;
    if Obs.enabled () then
      Obs.emit ~pid:src (Obs.Net_verdict { dst; verdict = Obs.Cut })
  end
  else begin
    let link = t.links.(src).(dst) in
    let forced = t.plan.fair_burst > 0 && link.burst >= t.plan.fair_burst in
    let drop =
      (not forced) && t.plan.drop_pct > 0
      && Rng.int link.rng 100 < t.plan.drop_pct
    in
    if drop then begin
      link.burst <- link.burst + 1;
      t.st_dropped <- t.st_dropped + 1;
      if Obs.enabled () then
        Obs.emit ~pid:src (Obs.Net_verdict { dst; verdict = Obs.Dropped })
    end
    else begin
      link.burst <- 0;
      let copies =
        if t.plan.dup_pct > 0 && Rng.int link.rng 100 < t.plan.dup_pct then begin
          t.st_duplicated <- t.st_duplicated + 1;
          if Obs.enabled () then
            Obs.emit ~pid:src (Obs.Net_verdict { dst; verdict = Obs.Dup });
          2
        end
        else 1
      in
      for _ = 1 to copies do
        let delay =
          if
            t.plan.max_delay > 0 && t.plan.delay_pct > 0
            && Rng.int link.rng 100 < t.plan.delay_pct
          then begin
            t.st_delayed <- t.st_delayed + 1;
            1 + Rng.int link.rng t.plan.max_delay
          end
          else 0
        in
        if Obs.enabled () then
          Obs.emit ~pid:src
            (Obs.Net_verdict
               { dst;
                 verdict = (if delay > 0 then Obs.Delayed delay else Obs.Deliver) });
        Net.send p.nport ~dst (Univ.inj fenv_key (now + delay, payload))
      done
    end
  end

let broadcast (p : port) (payload : Univ.t) : unit =
  for dst = 0 to p.fnet.net.Net.n - 1 do
    send p ~dst payload
  done

(* Messages from [src] whose delivery stamp has been reached, ordered by
   (stamp, arrival); later-stamped messages stay pending until a later
   poll — the delay queue that realises reordering. *)
let poll_from (p : port) ~(src : int) : Univ.t list =
  let now = Sched.now () in
  List.iter
    (fun u ->
      let at, payload =
        match Univ.prj fenv_key u with
        | Some e -> e
        | None -> (0, u) (* raw Byzantine traffic: deliver immediately *)
      in
      p.arrivals <- p.arrivals + 1;
      p.pending.(src) :=
        { h_at = at; h_arr = p.arrivals; h_payload = payload }
        :: !(p.pending.(src)))
    (Net.poll_from p.nport ~src);
  let due, later = List.partition (fun h -> h.h_at <= now) !(p.pending.(src)) in
  p.pending.(src) := later;
  List.sort (fun a b -> compare (a.h_at, a.h_arr) (b.h_at, b.h_arr)) due
  |> List.map (fun h -> h.h_payload)

let poll_all (p : port) : (int * Univ.t) list =
  let acc = ref [] in
  for src = 0 to p.fnet.net.Net.n - 1 do
    List.iter (fun m -> acc := (src, m) :: !acc) (poll_from p ~src)
  done;
  List.rev !acc

let transport (t : t) ~pid : Transport.t =
  let p = port t ~pid in
  {
    Transport.pid;
    n = t.net.Net.n;
    send = (fun ~dst payload -> send p ~dst payload);
    poll_all = (fun () -> poll_all p);
  }
