(* Bracha-style reliable broadcast over Byzantine message passing
   (n > 3f), the message-passing protocol that — unlike Srikanth-Toueg
   authenticated broadcast — also provides per-(sender, seq) agreement:

     - sender s sends (init, s, m, k) to all;
     - on (init, s, m, k) from s: if no echo was sent for (s, k) yet,
       send (echo, s, m, k) to all — at most one echo per (s, k);
     - on 2f+1 echoes or f+1 readies for (s, m, k): send (ready, s, m, k)
       to all (once per (s, k));
     - on 2f+1 readies for (s, m, k): deliver m as the k-th message of s.

   Agreement: two echo quorums of size 2f+1 intersect in >= f+1 processes,
   at least one correct — and a correct process echoes at most one value
   per (s, k) — so no two correct processes deliver different k-th
   messages of s, even when s equivocates. Totality: f+1 readies make
   every correct process ready (amplification), so if one correct process
   delivers, all eventually do.

   This is the message-passing analogue of the sticky register's
   uniqueness; Section 2 of the paper explains why simulating such a
   protocol over registers still does not yield a *linearizable* shared
   object — eventual delivery is not an instantaneous read. The test
   suite contrasts all three: ST broadcast (no uniqueness), Bracha
   (uniqueness, eventual), sticky register (uniqueness, linearizable). *)

open Lnd_support

type tag = Init | Echo | Ready

type bmsg = { tag : tag; sender : int; value : Value.t; seq : int }

let bmsg_key : bmsg Univ.key =
  Univ.key ~name:"bracha"
    ~pp:(fun fmt m ->
      Format.fprintf fmt "(%s,p%d,%a,#%d)"
        (match m.tag with Init -> "init" | Echo -> "echo" | Ready -> "ready")
        m.sender Value.pp m.value m.seq)
    ~equal:( = )

module Slot = struct
  type t = int * int (* sender, seq *)

  let compare = compare
end

module SlotMap = Map.Make (Slot)
module PidSet = Set.Make (Int)

(* Per-(sender,seq,value) support counters. *)
type support = {
  mutable echoes : PidSet.t;
  mutable readies : PidSet.t;
}

type proc = {
  ep : Transport.t;
  q : Quorum.t;
  mutable echoed_for : Value.t SlotMap.t; (* the unique value echoed per slot *)
  mutable ready_for : Value.t SlotMap.t;
  mutable delivered : Value.t SlotMap.t;
  support : (int * int * Value.t, support) Hashtbl.t;
  mutable next_seq : int;
  deliver_cb : sender:int -> value:Value.t -> seq:int -> unit;
}

(* [Quorum.make] (strict): agreement needs intersecting 2f+1 quorums,
   i.e. n > 3f. *)
let create (ep : Transport.t) ~n ~f ~deliver_cb : proc =
  {
    ep;
    q = Quorum.make ~n ~f;
    echoed_for = SlotMap.empty;
    ready_for = SlotMap.empty;
    delivered = SlotMap.empty;
    support = Hashtbl.create 32;
    next_seq = 0;
    deliver_cb;
  }

let[@lnd.pure] delivered (p : proc) ~sender ~seq : Value.t option =
  SlotMap.find_opt (sender, seq) p.delivered

let broadcast (p : proc) (value : Value.t) : int =
  let seq = p.next_seq in
  p.next_seq <- seq + 1;
  Transport.broadcast p.ep
    (Univ.inj bmsg_key { tag = Init; sender = p.ep.Transport.pid; value; seq });
  seq

let support_of (p : proc) key =
  match Hashtbl.find_opt p.support key with
  | Some s -> s
  | None ->
      let s = { echoes = PidSet.empty; readies = PidSet.empty } in
      Hashtbl.replace p.support key s;
      s

let send_echo (p : proc) ~sender ~value ~seq =
  if not (SlotMap.mem (sender, seq) p.echoed_for) then begin
    p.echoed_for <- SlotMap.add (sender, seq) value p.echoed_for;
    Transport.broadcast p.ep
      (Univ.inj bmsg_key { tag = Echo; sender; value; seq })
  end

let send_ready (p : proc) ~sender ~value ~seq =
  if not (SlotMap.mem (sender, seq) p.ready_for) then begin
    p.ready_for <- SlotMap.add (sender, seq) value p.ready_for;
    Transport.broadcast p.ep
      (Univ.inj bmsg_key { tag = Ready; sender; value; seq })
  end

let try_deliver (p : proc) ~sender ~value ~seq =
  if not (SlotMap.mem (sender, seq) p.delivered) then begin
    p.delivered <- SlotMap.add (sender, seq) value p.delivered;
    p.deliver_cb ~sender ~value ~seq
  end

let handle (p : proc) ~src (m : bmsg) =
  let key = (m.sender, m.seq, m.value) in
  match m.tag with
  | Init ->
      if src = m.sender then
        send_echo p ~sender:m.sender ~value:m.value ~seq:m.seq
  | Echo ->
      let s = support_of p key in
      s.echoes <- PidSet.add src s.echoes;
      if Quorum.has_byz_quorum p.q (PidSet.cardinal s.echoes) then
        send_ready p ~sender:m.sender ~value:m.value ~seq:m.seq
  | Ready ->
      let s = support_of p key in
      s.readies <- PidSet.add src s.readies;
      if Quorum.has_one_correct p.q (PidSet.cardinal s.readies) then
        send_ready p ~sender:m.sender ~value:m.value ~seq:m.seq;
      if Quorum.has_byz_quorum p.q (PidSet.cardinal s.readies) then
        try_deliver p ~sender:m.sender ~value:m.value ~seq:m.seq

(* Each decoded payload is recorded as a receiver-side [Obs.Claim]
   before [handle] acts on it, attributing what [src] said for the
   accountability auditor. *)
let poll (p : proc) : unit =
  let module Obs = Lnd_obs.Obs in
  let pid = p.ep.Transport.pid in
  List.iter
    (fun (src, payload) ->
      match Univ.prj bmsg_key payload with
      | Some m ->
          if Obs.enabled () then begin
            let fp = Format.asprintf "%a" Value.pp m.value in
            let cl =
              match m.tag with
              | Init -> Obs.Cl_init { sender = m.sender; seq = m.seq }
              | Echo ->
                  Obs.Cl_vouch { sender = m.sender; seq = m.seq; tag = "echo" }
              | Ready ->
                  Obs.Cl_vouch { sender = m.sender; seq = m.seq; tag = "ready" }
            in
            Obs.emit ~pid (Obs.Claim { src; claim = cl; fp })
          end;
          handle p ~src m
      | None ->
          if Obs.enabled () then
            Obs.emit ~pid (Obs.Claim { src; claim = Cl_garbage; fp = "" }))
    (p.ep.Transport.poll_all ())

let daemon (p : proc) : unit =
  while true do
    poll p;
    Lnd_runtime.Sched.yield ()
  done
