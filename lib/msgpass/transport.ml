(* A process's sending/receiving endpoint, as a record of functions: the
   seam between the protocol layer (Srikanth-Toueg broadcast, Bracha,
   the register emulation) and whatever network stack it runs over —
   the perfectly reliable [Net], the fault-injecting [Faultnet], or the
   retransmission layer [Rlink] stacked on either. Protocols written
   against this interface are network-agnostic, so the same code runs
   over reliable FIFO links in the unit tests and over seeded fair-lossy
   links in the chaos harness. *)

open Lnd_support

type t = {
  pid : int; (* the process this endpoint belongs to *)
  n : int; (* system size (for broadcast) *)
  send : dst:int -> Univ.t -> unit;
  poll_all : unit -> (int * Univ.t) list;
      (* all pending deliveries, (src, payload) pairs; also the layer's
         pump — acks and retransmissions happen inside poll_all calls *)
}

let broadcast (t : t) (payload : Univ.t) : unit =
  for dst = 0 to t.n - 1 do
    t.send ~dst payload
  done

let of_net (p : Net.port) : t =
  {
    pid = p.Net.pid;
    n = p.Net.net.Net.n;
    send = (fun ~dst payload -> Net.send p ~dst payload);
    poll_all = (fun () -> Net.poll_all p);
  }

(* A full set of endpoints over one fresh reliable network — the default
   wiring for consumers (e.g. [Regemu.create]) that only need "n plain
   connected endpoints" and should not touch [Net] themselves. *)
let endpoints space ~n : pid:int -> t =
  let net = Net.create space ~n in
  fun ~pid -> of_net (Net.port net ~pid)
