(** A process's sending/receiving endpoint, as a record of functions:
    the seam between the protocol layer and whatever network stack it
    runs over — the perfectly reliable {!Net}, the fault-injecting
    {!Faultnet}, or the retransmission layer {!Rlink} stacked on either.
    Protocols written against this interface are network-agnostic. *)

open Lnd_support

type t = {
  pid : int;  (** the process this endpoint belongs to *)
  n : int;  (** system size (for broadcast) *)
  send : dst:int -> Univ.t -> unit;
  poll_all : unit -> (int * Univ.t) list;
      (** all pending deliveries, [(src, payload)] pairs; also the
          layer's pump — acks and retransmissions happen inside
          [poll_all] calls *)
}

val broadcast : t -> Univ.t -> unit
(** Send to every process, including self. *)

val of_net : Net.port -> t
(** The trivial endpoint over a reliable FIFO network port. *)

val endpoints : Lnd_shm.Space.t -> n:int -> pid:int -> t
(** [endpoints space ~n] creates one fresh reliable network and returns
    the per-pid endpoint factory over it — the default wiring for
    consumers that only need [n] plain connected endpoints and should
    not touch {!Net} themselves. Call the factory at most once per
    pid. *)
