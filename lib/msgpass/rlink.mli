(** Reliable links over a lossy transport: sequence numbers, ack-driven
    retransmission with capped exponential backoff (in logical-clock
    ticks), and duplicate suppression.

    Stack this on a {!Faultnet} transport to recover exactly-once
    delivery for the protocol layer: safety (at-most-once delivery,
    sender authenticity) holds over any fault plan; liveness
    (exactly-once eventual delivery) holds over fair-lossy plans —
    bounded drop bursts, healed partitions. Over a perfectly reliable
    transport the layer is inert: retransmissions stay at 0 and the only
    overhead is one ack per data message.

    Delivery is deliberately NOT FIFO: consumers (threshold broadcasts,
    the register emulation) are reorder-insensitive, and sequence
    numbers exist for dedup and retransmission only. Raw payloads that
    are not rlink envelopes (Byzantine injection) pass through
    unsequenced and unacked.

    Retransmission is driven by {!poll_all} — the owner must pump it
    regularly (protocol daemons poll in a loop, so they do). *)

open Lnd_support

(** The wire envelope. Exposed so tests and Byzantine fibers can forge
    protocol traffic. *)
type renv = Data of int * Univ.t | Ack of int

val renv_key : renv Univ.key

type cfg = {
  base_backoff : int;  (** ticks before the first retransmission *)
  max_backoff : int;  (** backoff cap (doubling stops here) *)
}

val default_cfg : cfg
(** Safely above the ack round-trip of fault-free scheduling, so a
    reliable network sees zero retransmissions. *)

type t

val create : ?cfg:cfg -> Transport.t -> t

val send : t -> dst:int -> Univ.t -> unit
val broadcast : t -> Univ.t -> unit

val poll_all : t -> (int * Univ.t) list
(** Deliver new messages (duplicates suppressed, acks consumed), ack
    every received data copy, and retransmit every unacked message whose
    backoff expired. *)

val as_transport : t -> Transport.t
(** The reliable link packaged as a {!Transport.t} — the protocol layer
    cannot tell it from a raw network. *)

val pending : t -> int
(** Unacked in-flight messages (0 at quiescence on a fair-lossy link). *)

type stats = {
  data_sent : int;
  retransmissions : int;
  acks_sent : int;
  redundant : int;  (** duplicate data suppressed *)
  raw_passed : int;  (** un-enveloped payloads passed through *)
}

val stats : t -> stats
