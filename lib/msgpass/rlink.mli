(** Reliable links over a lossy transport: sequence numbers, ack-driven
    retransmission with capped exponential backoff (in logical-clock
    ticks), duplicate suppression, and incarnation epochs for
    crash-recovery.

    Stack this on a {!Faultnet} transport to recover exactly-once
    delivery for the protocol layer: safety (at-most-once delivery,
    sender authenticity) holds over any fault plan; liveness
    (exactly-once eventual delivery) holds over fair-lossy plans —
    bounded drop bursts, healed partitions. Over a perfectly reliable
    transport the layer is inert: retransmissions stay at 0 and the only
    overhead is one ack per data message.

    {b Epochs.} Dedup state keyed only by pid collides across restarts:
    a recovered peer restarting its sequence space would have every
    fresh message swallowed as a duplicate. Every envelope therefore
    carries the sender's incarnation epoch; a receiver seeing a higher
    epoch resets that source's dedup state, drops lower-epoch
    stragglers, and acks name the epoch they settle. Owners make a new
    epoch durable with {!journal_epoch} BEFORE the incarnation's first
    send, so no two incarnations of a correct process share an epoch.

    {b Persistence.} With a {!Lnd_durable.Wal} attached, fresh
    deliveries are journalled and their acks deferred to the next poll,
    behind a WAL sync barrier: an ack on the wire implies the delivery —
    and everything the consumer journalled while handling it — is
    durable, so a crashed receiver either remembers a delivery or gets
    it retransmitted. Without a WAL behaviour is identical to the
    volatile implementation (immediate acks, no journalling).

    Delivery is deliberately NOT FIFO: consumers (threshold broadcasts,
    the register emulation) are reorder-insensitive, and sequence
    numbers exist for dedup and retransmission only. Raw payloads that
    are not rlink envelopes (Byzantine injection) pass through
    unsequenced and unacked.

    Retransmission is driven by {!poll_all} — the owner must pump it
    regularly (protocol daemons poll in a loop, so they do). *)

open Lnd_support

(** The wire envelope — [Data (epoch, seq, payload)] / [Ack (epoch,
    seq)]. Exposed so tests and Byzantine fibers can forge protocol
    traffic. *)
type renv = Data of int * int * Univ.t | Ack of int * int

val renv_key : renv Univ.key

type cfg = {
  base_backoff : int;  (** ticks before the first retransmission *)
  max_backoff : int;  (** backoff cap (doubling stops here) *)
}

val default_cfg : cfg
(** Safely above the ack round-trip of fault-free scheduling, so a
    reliable network sees zero retransmissions. *)

type t

val create : ?cfg:cfg -> ?epoch:int -> ?wal:Lnd_durable.Wal.t -> Transport.t -> t
(** [epoch] (default 0) is this incarnation's epoch — after a restart,
    recover it with {!epoch_of_records} and pass the successor. [wal]
    turns on delivery journalling and deferred acks. *)

val epoch : t -> int

val send : t -> dst:int -> Univ.t -> unit
val broadcast : t -> Univ.t -> unit

val poll_all : t -> (int * Univ.t) list
(** Deliver new messages (duplicates and stale epochs suppressed, acks
    consumed), ack every received data copy (deferred behind a WAL sync
    when persistent), retransmit every unacked message whose backoff
    expired, and snapshot the journal when due. *)

val as_transport : t -> Transport.t
(** The reliable link packaged as a {!Transport.t} — the protocol layer
    cannot tell it from a raw network. *)

val pending : t -> int
(** Unacked in-flight messages (0 at quiescence on a fair-lossy link). *)

(** {2 Crash-recovery} *)

val journal_epoch : Lnd_durable.Wal.t -> int -> unit
(** Journal and sync an incarnation epoch ("E <epoch>"). MUST complete
    before the incarnation's first send: a crash during this sync means
    the incarnation never spoke, so its epoch was never observed. *)

val epoch_of_records : string list -> int
(** The highest epoch journalled in a recovered record list; [-1] if
    none (a fresh log). The next incarnation uses the successor. *)

val restore_record : t -> string -> bool
(** Replay one recovered record if this layer owns it ("E"/"S"/"U" —
    epochs and delivered sequence numbers); [false] means the record
    belongs to the consumer's grammar. *)

val restore_seen : t -> src:int -> epoch:int -> seq:int -> unit
val restore_seen_upto : t -> src:int -> epoch:int -> upto:int -> unit

val seen_records : t -> string list
(** The dedup state (and own epoch) compacted to records — what a
    snapshot must preserve. *)

val enable_snapshots : t -> every:int -> extra:(unit -> string list) -> unit
(** Snapshot-and-truncate the journal whenever [every] records
    accumulated since the last truncation; [extra ()] contributes the
    consumer's compacted records (e.g.
    [Regemu.snapshot_records]). *)

type stats = {
  data_sent : int;
  retransmissions : int;
  acks_sent : int;
  redundant : int;  (** duplicate data suppressed *)
  stale : int;  (** stale-epoch envelopes dropped *)
  raw_passed : int;  (** un-enveloped payloads passed through *)
}

val stats : t -> stats
