(* Driver #2: OCaml 5 domains.

   The same pure Machine programs the simulator drives (Drive.run) are
   executed here with real preemption: one domain per process, shared
   registers as mutex-protected cells, and a global atomic logical clock
   stamping operation invocations/responses for the history.

   Within a domain, the process's machines — the current client
   operation plus its background daemons (help, scripted adversaries) —
   are interleaved cooperatively at their Yield points, mirroring the
   per-process fiber structure of the simulator. Across domains there is
   no schedule at all: interleavings are whatever the hardware and the
   OS produce, which is exactly what the differential conformance suite
   wants to confront the cores with.

   Termination discipline: client operations ("jobs") run to completion
   in program order; daemons are abandoned once every job in the whole
   run has completed (they are just values — nothing to clean up). A
   per-domain step budget turns a deadlocked or diverging run into an
   [Error] instead of a hang. *)

open Lnd_support
module Obs = Lnd_obs.Obs

(* ---------------- Shared registers ---------------- *)

module Dcell = struct
  type t = { name : string; m : Mutex.t; mutable v : Univ.t }

  let make ~name ~init : t = { name; m = Mutex.create (); v = init }
  let name (c : t) = c.name

  (* Shm_access probes fire after the mutex is released: the event is a
     record of the access, not part of the critical section, and the
     per-domain arena sink must never run under a cell lock. *)
  let read (c : t) : Univ.t =
    Mutex.lock c.m;
    let v = c.v in
    Mutex.unlock c.m;
    if Obs.enabled () then
      Obs.emit (Obs.Shm_access { access = `Read; reg = c.name; value = v });
    v

  let write (c : t) (u : Univ.t) : unit =
    Mutex.lock c.m;
    c.v <- u;
    Mutex.unlock c.m;
    if Obs.enabled () then
      Obs.emit (Obs.Shm_access { access = `Write; reg = c.name; value = u })
end

(* ---------------- Logical clock ---------------- *)

type clock = int Atomic.t

let tick (c : clock) : int = Atomic.fetch_and_add c 1

(* ---------------- Machines ---------------- *)

(* A job is one client operation: built lazily (its program may depend
   on state left by earlier jobs, e.g. a reader's round counter), and
   stamped with invocation/response times from the global clock. *)
type job =
  | Job : {
      prog : unit -> ('reg, 'a) Machine.prog;
      cell : 'reg -> Dcell.t;
      span : string * string option; (* Obs span name/arg; "" = none *)
      render : ('a -> string) option;
      on_note : Machine.note -> unit;
      finish : inv:int -> ret:int -> 'a -> unit;
    }
      -> job

let job ?(span = ("", None)) ?render ?(on_note = fun _ -> ()) ~cell ~finish
    prog =
  Job { prog; cell; span; render; on_note; finish }

(* A daemon never returns a result; [critical = false] marks machines
   (scripted adversaries) whose failure must not fail the run, matching
   the simulator's treatment of Byzantine fibers. *)
type daemon =
  | Daemon : {
      label : string;
      critical : bool;
      prog : ('reg, unit) Machine.prog;
      cell : 'reg -> Dcell.t;
      on_note : Machine.note -> unit;
    }
      -> daemon

let daemon ~label ?(critical = true) ?(on_note = fun _ -> ()) ~cell prog =
  Daemon { label; critical; prog; cell; on_note }

(* A machine in flight. [ospan] is the machine's ambient Obs span, saved
   across turns the way Sched saves it across fiber switches: jobs start
   under their operation span, daemons at top level, and note callbacks
   (HELP rounds) may push/pop spans in between. *)
type runnable =
  | Run : {
      label : string;
      critical : bool;
      mutable st : ('reg, 'a) Machine.prog;
      mutable ev : Machine.event;
      cell : 'reg -> Dcell.t;
      onote : Machine.note -> unit;
      mutable ospan : int;
      fin : 'a -> unit;
      mutable dead : bool;
    }
      -> runnable

type proc = { pid : int; jobs : job list; daemons : daemon list }

type t = {
  clock : clock;
  step_budget : int;
  mutable procs : proc list; (* newest first; sorted at [run] *)
}

let default_step_budget = 50_000_000

let create ?(step_budget = default_step_budget) () : t =
  { clock = Atomic.make 1; step_budget; procs = [] }

let now (t : t) : int = Atomic.get t.clock
let clock (t : t) : clock = t.clock

let add_process (t : t) ~pid ?(daemons = []) (jobs : job list) : unit =
  if List.exists (fun p -> p.pid = pid) t.procs then
    invalid_arg "Domains.add_process: duplicate pid";
  t.procs <- { pid; jobs; daemons } :: t.procs

exception Abort of string

(* ---------------- The per-domain loop ---------------- *)

(* Advance one machine to its next Yield (one "turn"), answering reads
   inline: on the domains backend a register read never blocks, so the
   only preemption points *within* a domain are the cores' explicit
   yields — between domains, every shared access races for real. *)
let turn ~steps ~budget ~pid (Run m) : [ `Yielded | `Done | `Dead ] =
  if m.dead then `Dead
  else begin
    (* The ambient span follows the machine across turns, the way Sched
       carries it across fiber switches: restore before stepping, save
       after (note callbacks may have pushed/popped HELP spans). *)
    if Obs.enabled () then Obs.set_ambient ~span:m.ospan ~pid;
    let save () = if Obs.enabled () then m.ospan <- Obs.ambient () in
    try
      let rec go () =
        incr steps;
        if !steps > budget then
          raise
            (Abort (Printf.sprintf "p%d: domain step budget exhausted" pid));
        let st, acts = Machine.step m.st m.ev in
        m.st <- st;
        let out = ref `Continue in
        List.iter
          (fun a ->
            match a with
            | Machine.A_write (r, u) -> Dcell.write (m.cell r) u
            | Machine.A_note n -> m.onote n
            | Machine.A_read r -> m.ev <- Machine.Got (Dcell.read (m.cell r))
            | Machine.A_yield ->
                m.ev <- Machine.Ack;
                out := `Yielded
            | Machine.A_done ->
                m.fin (Option.get (Machine.result m.st));
                out := `Done)
          acts;
        match !out with `Continue -> go () | (`Yielded | `Done) as r -> r
      in
      let r = go () in
      save ();
      r
    with
    | Abort _ as e -> raise e
    | e ->
        m.dead <- true;
        save ();
        if m.critical then
          raise
            (Abort
               (Printf.sprintf "correct machine %s failed: %s" m.label
                  (Printexc.to_string e)))
        else `Dead
  end

let run (t : t) : (int, string) result =
  (* Traced runs stamp every event through the same fetch-and-add clock
     that stamps operation intervals: stamps are unique across domains,
     so the per-domain arenas merge into one total order no matter how
     the domains raced. *)
  if Obs.enabled () then Obs.set_clock (fun () -> tick t.clock);
  let procs = List.sort (fun a b -> compare a.pid b.pid) t.procs in
  let total_jobs =
    List.fold_left (fun acc p -> acc + List.length p.jobs) 0 procs
  in
  let remaining = Atomic.make total_jobs in
  let aborted : string option Atomic.t = Atomic.make None in
  let steps_total = Atomic.make 0 in
  let body (p : proc) () =
    let steps = ref 0 in
    (* Per-domain root span: every operation span of this process nests
       under it, so a merged multi-domain trace keeps one subtree per
       domain. Daemons stay at top level (parent 0), mirroring the
       simulator's daemon fibers — they are abandoned at teardown and
       their dangling spans are abort-closed by Trace.finish. *)
    let dspan =
      if Obs.enabled () then begin
        Obs.set_ambient ~span:0 ~pid:p.pid;
        Obs.span_open ~pid:p.pid ~name:"domain"
          ~arg:(Printf.sprintf "p%d" p.pid) ()
      end
      else 0
    in
    let daemons =
      List.map
        (fun (Daemon d) ->
          Run
            {
              label = d.label;
              critical = d.critical;
              st = d.prog;
              ev = Machine.Start;
              cell = d.cell;
              onote = d.on_note;
              ospan = 0;
              fin = (fun () -> ());
              dead = false;
            })
        p.daemons
    in
    let jobs = ref p.jobs in
    let current : runnable option ref = ref None in
    let has_current () = match !current with Some _ -> true | None -> false in
    let has_jobs () = match !jobs with [] -> false | _ :: _ -> true in
    let has_daemons = match daemons with [] -> false | _ :: _ -> true in
    (try
       let continue () =
         (match Atomic.get aborted with Some _ -> false | None -> true)
         && (has_current () || has_jobs ()
            || (has_daemons && Atomic.get remaining > 0))
       in
       while continue () do
         (match (!current, !jobs) with
         | None, Job j :: rest ->
             jobs := rest;
             let name, arg = j.span in
             (* The operation span must BRACKET the [inv, ret] interval:
                open before the inv tick, close after the ret tick. The
                trace-derived precedence order is then a subset of the
                direct history's, so folding the trace back into a
                history can never add precedence pairs the checkers
                didn't already judge. *)
             let ospan =
               if name <> "" && Obs.enabled () then begin
                 Obs.set_ambient ~span:dspan ~pid:p.pid;
                 Obs.span_open ~pid:p.pid ~name ?arg ()
               end
               else dspan
             in
             let inv = tick t.clock in
             current :=
               Some
                 (Run
                    {
                      label = Printf.sprintf "p%d-op" p.pid;
                      critical = true;
                      st = j.prog ();
                      ev = Machine.Start;
                      cell = j.cell;
                      onote = j.on_note;
                      ospan;
                      fin =
                        (fun a ->
                          let ret = tick t.clock in
                          j.finish ~inv ~ret a;
                          if name <> "" && ospan <> dspan then
                            Obs.span_close ~pid:p.pid
                              ?result:(Option.map (fun r -> r a) j.render)
                              ~name ospan;
                          Atomic.decr remaining);
                      dead = false;
                    })
         | _ -> ());
         (match !current with
         | Some r -> (
             match turn ~steps ~budget:t.step_budget ~pid:p.pid r with
             | `Done | `Dead -> current := None
             | `Yielded -> ())
         | None -> ());
         List.iter
           (fun d ->
             ignore (turn ~steps ~budget:t.step_budget ~pid:p.pid d))
           daemons;
         if (not (has_current ())) && not (has_jobs ()) then Domain.cpu_relax ()
       done
     with Abort m -> ignore (Atomic.compare_and_set aborted None (Some m)));
    (* Close the domain root span on a clean exit; an aborted run leaves
       it (and any open operation span) dangling for Trace.finish to
       abort-close, so the incomplete run is visible in the trace. *)
    (match !current with
    | None when dspan <> 0 && Atomic.get aborted = None ->
        Obs.span_close ~pid:p.pid ~name:"domain" dspan
    | _ -> ());
    ignore (Atomic.fetch_and_add steps_total !steps)
  in
  let spawned = List.map (fun p -> Domain.spawn (body p)) procs in
  List.iter Domain.join spawned;
  match Atomic.get aborted with
  | Some m -> Error m
  | None ->
      if Atomic.get remaining > 0 then
        Error "domains run ended with incomplete operations"
      else Ok (Atomic.get steps_total)
