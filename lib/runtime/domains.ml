(* Driver #2: OCaml 5 domains.

   The same pure Machine programs the simulator drives (Drive.run) are
   executed here with real preemption: one domain per process, shared
   registers as mutex-protected cells, and a global atomic logical clock
   stamping operation invocations/responses for the history.

   Within a domain, the process's machines — the current client
   operation plus its background daemons (help, scripted adversaries) —
   are interleaved cooperatively at their Yield points, mirroring the
   per-process fiber structure of the simulator. Across domains there is
   no schedule at all: interleavings are whatever the hardware and the
   OS produce, which is exactly what the differential conformance suite
   wants to confront the cores with.

   Termination discipline: client operations ("jobs") run to completion
   in program order; daemons are abandoned once every job in the whole
   run has completed (they are just values — nothing to clean up). A
   per-domain step budget turns a deadlocked or diverging run into an
   [Error] instead of a hang. *)

open Lnd_support

(* ---------------- Shared registers ---------------- *)

module Dcell = struct
  type t = { name : string; m : Mutex.t; mutable v : Univ.t }

  let make ~name ~init : t = { name; m = Mutex.create (); v = init }
  let name (c : t) = c.name

  let read (c : t) : Univ.t =
    Mutex.lock c.m;
    let v = c.v in
    Mutex.unlock c.m;
    v

  let write (c : t) (u : Univ.t) : unit =
    Mutex.lock c.m;
    c.v <- u;
    Mutex.unlock c.m
end

(* ---------------- Logical clock ---------------- *)

type clock = int Atomic.t

let tick (c : clock) : int = Atomic.fetch_and_add c 1

(* ---------------- Machines ---------------- *)

(* A job is one client operation: built lazily (its program may depend
   on state left by earlier jobs, e.g. a reader's round counter), and
   stamped with invocation/response times from the global clock. *)
type job =
  | Job : {
      prog : unit -> ('reg, 'a) Machine.prog;
      cell : 'reg -> Dcell.t;
      finish : inv:int -> ret:int -> 'a -> unit;
    }
      -> job

let job ~cell ~finish prog = Job { prog; cell; finish }

(* A daemon never returns a result; [critical = false] marks machines
   (scripted adversaries) whose failure must not fail the run, matching
   the simulator's treatment of Byzantine fibers. *)
type daemon =
  | Daemon : {
      label : string;
      critical : bool;
      prog : ('reg, unit) Machine.prog;
      cell : 'reg -> Dcell.t;
    }
      -> daemon

let daemon ~label ?(critical = true) ~cell prog =
  Daemon { label; critical; prog; cell }

(* A machine in flight. *)
type runnable =
  | Run : {
      label : string;
      critical : bool;
      mutable st : ('reg, 'a) Machine.prog;
      mutable ev : Machine.event;
      cell : 'reg -> Dcell.t;
      fin : 'a -> unit;
      mutable dead : bool;
    }
      -> runnable

type proc = { pid : int; jobs : job list; daemons : daemon list }

type t = {
  clock : clock;
  step_budget : int;
  mutable procs : proc list; (* newest first; sorted at [run] *)
}

let default_step_budget = 50_000_000

let create ?(step_budget = default_step_budget) () : t =
  { clock = Atomic.make 1; step_budget; procs = [] }

let now (t : t) : int = Atomic.get t.clock

let add_process (t : t) ~pid ?(daemons = []) (jobs : job list) : unit =
  if List.exists (fun p -> p.pid = pid) t.procs then
    invalid_arg "Domains.add_process: duplicate pid";
  t.procs <- { pid; jobs; daemons } :: t.procs

exception Abort of string

(* ---------------- The per-domain loop ---------------- *)

(* Advance one machine to its next Yield (one "turn"), answering reads
   inline: on the domains backend a register read never blocks, so the
   only preemption points *within* a domain are the cores' explicit
   yields — between domains, every shared access races for real. *)
let turn ~steps ~budget ~pid (Run m) : [ `Yielded | `Done | `Dead ] =
  if m.dead then `Dead
  else
    try
      let rec go () =
        incr steps;
        if !steps > budget then
          raise
            (Abort (Printf.sprintf "p%d: domain step budget exhausted" pid));
        let st, acts = Machine.step m.st m.ev in
        m.st <- st;
        let out = ref `Continue in
        List.iter
          (fun a ->
            match a with
            | Machine.A_write (r, u) -> Dcell.write (m.cell r) u
            | Machine.A_note _ -> ()
            | Machine.A_read r -> m.ev <- Machine.Got (Dcell.read (m.cell r))
            | Machine.A_yield ->
                m.ev <- Machine.Ack;
                out := `Yielded
            | Machine.A_done ->
                m.fin (Option.get (Machine.result m.st));
                out := `Done)
          acts;
        match !out with `Continue -> go () | (`Yielded | `Done) as r -> r
      in
      go ()
    with
    | Abort _ as e -> raise e
    | e ->
        m.dead <- true;
        if m.critical then
          raise
            (Abort
               (Printf.sprintf "correct machine %s failed: %s" m.label
                  (Printexc.to_string e)))
        else `Dead

let run (t : t) : (int, string) result =
  let procs = List.sort (fun a b -> compare a.pid b.pid) t.procs in
  let total_jobs =
    List.fold_left (fun acc p -> acc + List.length p.jobs) 0 procs
  in
  let remaining = Atomic.make total_jobs in
  let aborted : string option Atomic.t = Atomic.make None in
  let steps_total = Atomic.make 0 in
  let body (p : proc) () =
    let steps = ref 0 in
    let daemons =
      List.map
        (fun (Daemon d) ->
          Run
            {
              label = d.label;
              critical = d.critical;
              st = d.prog;
              ev = Machine.Start;
              cell = d.cell;
              fin = (fun () -> ());
              dead = false;
            })
        p.daemons
    in
    let jobs = ref p.jobs in
    let current : runnable option ref = ref None in
    let has_current () = match !current with Some _ -> true | None -> false in
    let has_jobs () = match !jobs with [] -> false | _ :: _ -> true in
    let has_daemons = match daemons with [] -> false | _ :: _ -> true in
    (try
       let continue () =
         (match Atomic.get aborted with Some _ -> false | None -> true)
         && (has_current () || has_jobs ()
            || (has_daemons && Atomic.get remaining > 0))
       in
       while continue () do
         (match (!current, !jobs) with
         | None, Job j :: rest ->
             jobs := rest;
             let inv = tick t.clock in
             current :=
               Some
                 (Run
                    {
                      label = Printf.sprintf "p%d-op" p.pid;
                      critical = true;
                      st = j.prog ();
                      ev = Machine.Start;
                      cell = j.cell;
                      fin =
                        (fun a ->
                          let ret = tick t.clock in
                          j.finish ~inv ~ret a;
                          Atomic.decr remaining);
                      dead = false;
                    })
         | _ -> ());
         (match !current with
         | Some r -> (
             match turn ~steps ~budget:t.step_budget ~pid:p.pid r with
             | `Done | `Dead -> current := None
             | `Yielded -> ())
         | None -> ());
         List.iter
           (fun d ->
             ignore (turn ~steps ~budget:t.step_budget ~pid:p.pid d))
           daemons;
         if (not (has_current ())) && not (has_jobs ()) then Domain.cpu_relax ()
       done
     with Abort m -> ignore (Atomic.compare_and_set aborted None (Some m)));
    ignore (Atomic.fetch_and_add steps_total !steps)
  in
  let spawned = List.map (fun p -> Domain.spawn (body p)) procs in
  List.iter Domain.join spawned;
  match Atomic.get aborted with
  | Some m -> Error m
  | None ->
      if Atomic.get remaining > 0 then
        Error "domains run ended with incomplete operations"
      else Ok (Atomic.get steps_total)
