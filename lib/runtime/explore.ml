(* Bounded systematic schedule exploration.

   Three modes, one result shape:

   - [exhaustive]: the naive baseline. Enumerates scheduling decision
     sequences depth-first, branching on EVERY step over EVERY ready
     fiber; each run is driven by a scripted policy and the trail of
     (choice, branching-degree) pairs it records tells the explorer
     which sibling schedule to try next. Kept as the reference point the
     T15 benchmark measures the reduction against.

   - [dpor]: a stateless model checker with dynamic partial-order
     reduction (Flanagan–Godefroid) plus sleep sets. The scheduler knows
     each ready fiber's next register access before executing it
     ([Sched.footprint]); two steps are dependent iff they belong to the
     same fiber or touch the same register with at least one write.
     Happens-before is tracked with vector clocks; when an executed step
     races with an earlier non-ordered step, the earlier step's
     pre-state gains a backtrack point. Sleep sets prune schedules whose
     difference from an explored sibling is a commutation of independent
     steps. The net effect: one representative per Mazurkiewicz trace,
     not one run per interleaving.

   - [swarm]: many independent seeded-random schedules; sparse sampling
     for programs too large to enumerate.

   All modes are bounded safety checkers: runs exceeding [max_steps] are
   pruned as inconclusive (an adversarial schedule can starve the Help
   daemons indefinitely, so unbounded termination cannot be decided by
   exploration). "Exhausted" therefore means: every schedule of at most
   [max_steps] steps was covered up to commutation of independent steps.
   See DESIGN.md §4i for the soundness argument and its caveats. *)

open Lnd_shm
module Obs = Lnd_obs.Obs
module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

(* ---------------- Counterexamples ---------------- *)

type schedule =
  | Indices of int list (* Policy.scripted choices, the naive DFS trail *)
  | Fids of int list (* one fiber id per step, the DPOR trail *)
  | Seed of int (* Policy.random seed, the swarm trail *)

type counterexample = {
  cx_schedule : schedule;
  cx_note : string; (* caller-supplied description of the configuration *)
  cx_steps : int; (* length of the violating run *)
  cx_exn : exn; (* what the caller's check raised *)
}

exception Violation of counterexample

exception Replay_diverged of { at : int; reason : string }

let pp_ints fmt l =
  Format.fprintf fmt "[%s]" (String.concat ";" (List.map string_of_int l))

let pp_schedule fmt = function
  | Indices l -> Format.fprintf fmt "indices %a" pp_ints l
  | Fids l -> Format.fprintf fmt "fids %a" pp_ints l
  | Seed s -> Format.fprintf fmt "seed %d" s

let pp_counterexample fmt cx =
  Format.fprintf fmt "@[<v>violation%s after %d steps@,schedule: %a@,check raised: %s@]"
    (if cx.cx_note = "" then "" else " in " ^ cx.cx_note)
    cx.cx_steps pp_schedule cx.cx_schedule
    (Printexc.to_string cx.cx_exn)

type result = {
  runs : int; (* schedules fully explored to quiescence *)
  pruned : int; (* schedules cut off by the step budget *)
  exhausted : bool; (* true iff the whole bounded space was covered *)
  blocked : int; (* sleep-set-blocked (redundant) schedules, DPOR only *)
  races : int; (* backtrack points seeded by race detection, DPOR only *)
  max_depth : int; (* deepest schedule explored *)
}

let emit_run ~mode ~idx ~depth ~reason =
  if Obs.enabled () then
    Obs.emit (Obs.Explore_run { mode; idx; depth; reason })

let emit_stats ~mode (r : result) =
  if Obs.enabled () then
    Obs.emit
      (Obs.Explore_stats
         { mode; runs = r.runs; pruned = r.pruned; blocked = r.blocked;
           races = r.races; exhausted = r.exhausted })

(* ---------------- Naive DFS (the baseline) ---------------- *)

let exhaustive ~(make : Policy.t -> Sched.t) ~(check : Sched.t -> unit)
    ?(max_steps = 400) ?(max_runs = 20_000) ?(note = "") () : result =
  let runs = ref 0 in
  let pruned = ref 0 in
  let exhausted = ref false in
  let max_depth = ref 0 in
  let script = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let trail = ref [] in
    let policy = Policy.scripted ~script:!script ~trail in
    let sched = make policy in
    Sched.set_park_on_yield sched true;
    let reason = Sched.run ~max_steps sched in
    let depth = List.length !trail in
    if depth > !max_depth then max_depth := depth;
    (match reason with
    | Sched.Quiescent | Sched.Condition_met -> begin
        incr runs;
        emit_run ~mode:"dfs" ~idx:(!runs + !pruned) ~depth ~reason:"quiescent";
        try check sched
        with e ->
          raise
            (Violation
               { cx_schedule = Indices (List.rev_map fst !trail);
                 cx_note = note; cx_steps = Sched.steps sched; cx_exn = e })
      end
    | Sched.Budget_exhausted ->
        incr pruned;
        emit_run ~mode:"dfs" ~idx:(!runs + !pruned) ~depth ~reason:"pruned");
    (* Compute the next schedule: backtrack to the deepest choice point
       with an unexplored sibling. The trail was built most-recent-first. *)
    let tr = List.rev !trail in
    let arr = Array.of_list tr in
    let next = ref None in
    for i = Array.length arr - 1 downto 0 do
      if !next = None then
        let choice, degree = arr.(i) in
        if choice + 1 < degree then next := Some i
    done;
    (match !next with
    | None ->
        exhausted := true;
        continue_ := false
    | Some i ->
        let fresh =
          List.init (i + 1) (fun j -> if j = i then fst arr.(j) + 1 else fst arr.(j))
        in
        script := fresh);
    if !runs + !pruned >= max_runs then continue_ := false
  done;
  let r =
    { runs = !runs; pruned = !pruned; exhausted = !exhausted; blocked = 0;
      races = 0; max_depth = !max_depth }
  in
  emit_stats ~mode:"dfs" r;
  r

(* ---------------- DPOR ---------------- *)

(* Two footprints conflict iff they touch the same register and at least
   one of them writes it. Yields and spawn prefixes ([A_none]) conflict
   with nothing; steps of the same fiber are always dependent through
   program order (handled separately). *)
let is_read = function Sched.A_read _ -> true | _ -> false

let reg_of = function
  | Sched.A_none -> None
  | Sched.A_read r | Sched.A_write r | Sched.A_update r -> Some r

let conflict (a : Sched.footprint) (b : Sched.footprint) : bool =
  match (reg_of a, reg_of b) with
  | None, _ | _, None -> false
  | Some ra, Some rb ->
      ra.Register.id = rb.Register.id && not (is_read a && is_read b)

(* Raised by the DPOR policy when every enabled fiber is in the sleep
   set: the continuation of this schedule only commutes with already
   explored ones, so the run is abandoned as redundant. *)
exception Sleep_blocked

(* Raised under a preemption bound when every non-sleeping enabled fiber
   would need a preemption the budget no longer allows: the continuation
   lies outside the bounded space, so the run counts as pruned. *)
exception Preempt_blocked

(* One node per step of the current execution prefix. [nd_backtrack] is
   the set of fiber ids scheduled for exploration from this state (seeded
   with the first choice, grown by race detection); [nd_done] the ones
   whose subtrees are complete; [nd_sleep] the sleep set on entry for the
   current run. [nd_enabled] is recorded for the "else add all enabled"
   arm of the backtrack rule. *)
type node = {
  mutable nd_chosen : int;
  mutable nd_backtrack : IntSet.t;
  mutable nd_done : IntSet.t;
  mutable nd_sleep : IntSet.t;
  mutable nd_enabled : int list;
  mutable nd_alpha : Sched.footprint; (* footprint the chosen step executed *)
  mutable nd_preempts : int; (* preemptions consumed up to and incl. this step *)
}

let dpor ~(make : Policy.t -> Sched.t) ~(check : Sched.t -> unit)
    ?(max_steps = 2_000) ?(max_runs = 200_000) ?max_preempts ?(note = "") () :
    result =
  let dummy =
    { nd_chosen = -1; nd_backtrack = IntSet.empty; nd_done = IntSet.empty;
      nd_sleep = IntSet.empty; nd_enabled = []; nd_alpha = Sched.A_none;
      nd_preempts = 0 }
  in
  let stack = ref (Array.make 256 dummy) in
  let len = ref 0 in
  let push nd =
    if !len = Array.length !stack then begin
      let bigger = Array.make (2 * !len) dummy in
      Array.blit !stack 0 bigger 0 !len;
      stack := bigger
    end;
    !stack.(!len) <- nd;
    incr len
  in
  let plan_len = ref 0 in
  (* forced prefix: nodes [0, plan_len) replay their recorded choice *)
  (* Preemption accounting (CHESS-style context bounding): scheduling
     [c] at node [d] is a preemption iff the previous step's fiber is
     still enabled, was not at a voluntary switch point (its executed
     footprint was a real access, not a yield/spawn [A_none]), and
     [c] is a different fiber. Voluntary switch points branch freely. *)
  let cost d c enabled =
    if d = 0 then 0
    else begin
      let pv = !stack.(d - 1) in
      let involuntary =
        match pv.nd_alpha with Sched.A_none -> false | _ -> true
      in
      if c <> pv.nd_chosen && involuntary && List.mem pv.nd_chosen enabled
      then pv.nd_preempts + 1
      else pv.nd_preempts
    end
  in
  let afford d c enabled =
    match max_preempts with None -> true | Some p -> cost d c enabled <= p
  in
  let runs = ref 0 and pruned = ref 0 and blocked = ref 0 in
  let races = ref 0 in
  let max_depth = ref 0 in
  let exhausted = ref false in
  let continue_ = ref true in
  while !continue_ do
    (* Per-run dependency state. Vector clocks map fiber id -> the
       latest step index of that fiber that happens-before the holder;
       each register carries its last write and the reads since (any two
       conflicting accesses to one register are totally ordered by
       happens-before, so these are exactly the race candidates). *)
    let depth = ref 0 in
    let cur_sleep = ref IntSet.empty in
    let clocks : (int, int IntMap.t) Hashtbl.t = Hashtbl.create 16 in
    let reg_lw : (int, int * int * int IntMap.t) Hashtbl.t =
      Hashtbl.create 64
    in
    let reg_rd : (int, (int * int * int IntMap.t) list) Hashtbl.t =
      Hashtbl.create 64
    in
    let last_rot = ref (-1) in
    let choose (_sched : Sched.t) (ready : Sched.fiber array) : int =
      let d = !depth in
      let m = Array.length ready in
      let fid_of i = ready.(i).Sched.fid in
      let fiber_of_fid q =
        let rec go i =
          if i >= m then None
          else if fid_of i = q then Some ready.(i)
          else go (i + 1)
        in
        go 0
      in
      let enabled = List.sort compare (List.init m fid_of) in
      (* sleep members that got disabled are dropped (conservative:
         re-exploring them elsewhere is sound, just redundant) *)
      let sleep_in =
        IntSet.filter (fun q -> fiber_of_fid q <> None) !cur_sleep
      in
      let nd =
        if d < !plan_len then begin
          let nd = !stack.(d) in
          (* replaying a committed prefix: refresh the volatile fields
             (deterministic replay recomputes the same values, except
             that done/backtrack sets have grown since) *)
          nd.nd_sleep <- sleep_in;
          nd.nd_enabled <- enabled;
          nd
        end
        else begin
          let free =
            List.filter (fun q -> not (IntSet.mem q sleep_in)) enabled
          in
          if free = [] then raise Sleep_blocked;
          let c =
            match max_preempts with
            | None -> (
                (* default choice: rotate over the non-sleeping enabled
                   fibers so base runs are fair and reach quiescence *)
                match List.find_opt (fun q -> q > !last_rot) free with
                | Some q -> q
                | None -> List.hd free)
            | Some _ -> (
                let affordable =
                  List.filter (fun q -> afford d q enabled) free
                in
                if affordable = [] then raise Preempt_blocked;
                (* prefer running the previous fiber on (preemptions
                   cost budget); rotate freely at voluntary points *)
                let continuation =
                  if d = 0 then None
                  else
                    let pv = !stack.(d - 1) in
                    match pv.nd_alpha with
                    | Sched.A_none -> None
                    | _ ->
                        if List.mem pv.nd_chosen affordable then
                          Some pv.nd_chosen
                        else None
                in
                match continuation with
                | Some q -> q
                | None -> (
                    match
                      List.find_opt (fun q -> q > !last_rot) affordable
                    with
                    | Some q -> q
                    | None -> List.hd affordable))
          in
          let nd =
            { nd_chosen = c; nd_backtrack = IntSet.singleton c;
              nd_done = IntSet.empty; nd_sleep = sleep_in;
              nd_enabled = enabled; nd_alpha = Sched.A_none;
              nd_preempts = 0 }
          in
          push nd;
          nd
        end
      in
      let c = nd.nd_chosen in
      last_rot := c;
      let fb =
        match fiber_of_fid c with
        | Some f -> f
        | None ->
            raise (Replay_diverged { at = d; reason = "planned fiber not ready" })
      in
      let alpha = fb.Sched.next_access in
      nd.nd_alpha <- alpha;
      nd.nd_preempts <- cost d c nd.nd_enabled;
      let cp =
        match Hashtbl.find_opt clocks c with
        | Some v -> v
        | None -> IntMap.empty
      in
      (* Race detection: an earlier conflicting access (i, q, _) not
         ordered before this step is a reversible race — the pre-state
         of step i must also try running [c] (or, if [c] was not enabled
         there, every enabled fiber). *)
      let hb_before (i, q, _vc) =
        q = c
        || (match IntMap.find_opt q cp with Some s -> s >= i | None -> false)
      in
      let add_backtrack i =
        let ni = !stack.(i) in
        let grow q =
          if not (IntSet.mem q ni.nd_backtrack) then begin
            ni.nd_backtrack <- IntSet.add q ni.nd_backtrack;
            incr races
          end
        in
        if List.mem c ni.nd_enabled then grow c
        else List.iter grow ni.nd_enabled
      in
      let race ((i, _, _) as cand) =
        if not (hb_before cand) then add_backtrack i
      in
      let lw r =
        Hashtbl.find_opt reg_lw r.Register.id
      in
      let rds r =
        match Hashtbl.find_opt reg_rd r.Register.id with
        | Some l -> l
        | None -> []
      in
      (match alpha with
      | Sched.A_none -> ()
      | Sched.A_read r -> Option.iter race (lw r)
      | Sched.A_write r | Sched.A_update r ->
          Option.iter race (lw r);
          List.iter race (rds r));
      (* Advance [c]'s clock past everything this step depends on, then
         record the access for future race checks. *)
      let join = IntMap.union (fun _ x y -> Some (max x y)) in
      let base =
        match alpha with
        | Sched.A_none -> cp
        | Sched.A_read r -> (
            match lw r with Some (_, _, vc) -> join cp vc | None -> cp)
        | Sched.A_write r | Sched.A_update r ->
            let b =
              match lw r with Some (_, _, vc) -> join cp vc | None -> cp
            in
            List.fold_left (fun acc (_, _, vc) -> join acc vc) b (rds r)
      in
      let nvc = IntMap.add c d base in
      Hashtbl.replace clocks c nvc;
      (match alpha with
      | Sched.A_none -> ()
      | Sched.A_read r ->
          Hashtbl.replace reg_rd r.Register.id ((d, c, nvc) :: rds r)
      | Sched.A_write r | Sched.A_update r ->
          Hashtbl.replace reg_lw r.Register.id (d, c, nvc);
          Hashtbl.replace reg_rd r.Register.id []);
      (* Sleep-set propagation: siblings already explored from this node
         join the sleep set; fibers whose pending step depends on the
         executed one wake up. *)
      let out = IntSet.union sleep_in nd.nd_done in
      cur_sleep :=
        IntSet.filter
          (fun q ->
            match fiber_of_fid q with
            | None -> false
            | Some fq -> not (conflict alpha fq.Sched.next_access))
          out;
      depth := d + 1;
      let rec idx i = if fid_of i = c then i else idx (i + 1) in
      idx 0
    in
    let sched = make choose in
    Sched.set_park_on_yield sched true;
    (match Sched.run ~max_steps sched with
    | exception Sleep_blocked ->
        incr blocked;
        emit_run ~mode:"dpor" ~idx:(!runs + !pruned + !blocked) ~depth:!depth
          ~reason:"blocked"
    | exception Preempt_blocked ->
        incr pruned;
        emit_run ~mode:"dpor" ~idx:(!runs + !pruned + !blocked) ~depth:!depth
          ~reason:"pruned"
    | Sched.Quiescent | Sched.Condition_met -> begin
        incr runs;
        emit_run ~mode:"dpor" ~idx:(!runs + !pruned + !blocked) ~depth:!depth
          ~reason:"quiescent";
        try check sched
        with e ->
          let fids = List.init !len (fun i -> (!stack.(i)).nd_chosen) in
          raise
            (Violation
               { cx_schedule = Fids fids; cx_note = note;
                 cx_steps = Sched.steps sched; cx_exn = e })
      end
    | Sched.Budget_exhausted ->
        incr pruned;
        emit_run ~mode:"dpor" ~idx:(!runs + !pruned + !blocked) ~depth:!depth
          ~reason:"pruned");
    if !depth > !max_depth then max_depth := !depth;
    (* Backtrack: deepest node with an unexplored, non-sleeping
       backtrack candidate; everything below it is discarded. *)
    let rec back d =
      if d < 0 then begin
        exhausted := true;
        continue_ := false
      end
      else begin
        let ndd = !stack.(d) in
        ndd.nd_done <- IntSet.add ndd.nd_chosen ndd.nd_done;
        let cands =
          IntSet.filter
            (fun c -> afford d c ndd.nd_enabled)
            (IntSet.diff (IntSet.diff ndd.nd_backtrack ndd.nd_done)
               ndd.nd_sleep)
        in
        match IntSet.min_elt_opt cands with
        | Some c ->
            ndd.nd_chosen <- c;
            len := d + 1;
            plan_len := d + 1
        | None ->
            len := d;
            back (d - 1)
      end
    in
    back (!len - 1);
    if !continue_ && !runs + !pruned + !blocked >= max_runs then
      continue_ := false
  done;
  let r =
    { runs = !runs; pruned = !pruned; exhausted = !exhausted;
      blocked = !blocked; races = !races; max_depth = !max_depth }
  in
  emit_stats ~mode:"dpor" r;
  r

(* ---------------- Swarm ---------------- *)

let swarm ~(make : Policy.t -> Sched.t) ~(check : Sched.t -> unit)
    ?(max_steps = 2_000_000) ?(note = "") ~seeds () : result =
  let runs = ref 0 in
  let pruned = ref 0 in
  let max_depth = ref 0 in
  List.iter
    (fun seed ->
      let sched = make (Policy.random ~seed) in
      Sched.set_park_on_yield sched true;
      let reason = Sched.run ~max_steps sched in
      let depth = Sched.steps sched in
      if depth > !max_depth then max_depth := depth;
      match reason with
      | Sched.Quiescent | Sched.Condition_met -> begin
          incr runs;
          emit_run ~mode:"swarm" ~idx:(!runs + !pruned) ~depth
            ~reason:"quiescent";
          try check sched
          with e ->
            raise
              (Violation
                 { cx_schedule = Seed seed; cx_note = note;
                   cx_steps = depth; cx_exn = e })
        end
      | Sched.Budget_exhausted ->
          incr pruned;
          emit_run ~mode:"swarm" ~idx:(!runs + !pruned) ~depth ~reason:"pruned")
    seeds;
  let r =
    { runs = !runs; pruned = !pruned; exhausted = false; blocked = 0;
      races = 0; max_depth = !max_depth }
  in
  emit_stats ~mode:"swarm" r;
  r

(* ---------------- Replay ---------------- *)

(* Re-execute one schedule against a fresh system and re-run the check:
   the one-call reproduction path for a serialised counterexample.
   [Ok ()] means the check passed; [Error e] reproduces the violation. *)
let replay ~(make : Policy.t -> Sched.t) ~(check : Sched.t -> unit)
    ?(max_steps = 1_000_000) (s : schedule) : (unit, exn) Stdlib.result =
  let sched =
    match s with
    | Seed seed -> make (Policy.random ~seed)
    | Indices script ->
        let trail = ref [] in
        make (Policy.scripted ~script ~trail)
    | Fids fids ->
        let remaining = ref fids in
        let at = ref 0 in
        make (fun _sched ready ->
            match !remaining with
            | [] ->
                raise
                  (Replay_diverged
                     { at = !at; reason = "trail exhausted before quiescence" })
            | q :: rest ->
                remaining := rest;
                let m = Array.length ready in
                let rec idx i =
                  if i >= m then
                    raise
                      (Replay_diverged
                         { at = !at;
                           reason = Printf.sprintf "fiber %d not ready" q })
                  else if ready.(i).Sched.fid = q then i
                  else idx (i + 1)
                in
                let i = idx 0 in
                incr at;
                i)
  in
  Sched.set_park_on_yield sched true;
  ignore (Sched.run ~max_steps sched);
  match check sched with () -> Ok () | exception e -> Error e
