(** Cooperative scheduler over OCaml effects.

    Each simulated process contributes one or more fibers (operation
    fibers, plus the background Help() fiber the paper's algorithms
    require). A fiber runs as ordinary OCaml code; every shared-register
    access is an effect, and the scheduler resumes exactly one fiber per
    step — so register accesses are atomic and the set of possible
    interleavings is precisely that of the paper's asynchronous model.

    Scheduling is driven by a pluggable deterministic policy; runs replay
    exactly from (program, policy) because all randomness is seeded.

    The records below are deliberately transparent: scenario harnesses
    (the impossibility construction, the ablation tests) script phases by
    reading fiber states and setting the [enabled] mask directly. *)

exception Killed
(** Carried by fibers terminated with {!kill}. *)

type outcome = Completed | Failed of exn

(** The register access a fiber's {e next} step will perform. Access
    effects suspend the fiber and the installed continuation performs the
    access at resumption, so each step's footprint is known {e before}
    the step runs — the DPOR explorer ({!Explore.dpor}) uses this to
    decide whether two pending steps conflict without executing them.
    [A_none] covers yields and the spawn-to-first-effect prefix;
    [A_update] (read-modify-write) conflicts like a write. *)
type footprint =
  | A_none
  | A_read of Lnd_shm.Register.t
  | A_write of Lnd_shm.Register.t
  | A_update of Lnd_shm.Register.t

type fiber = {
  fid : int;
  pid : int; (** the simulated process this fiber belongs to *)
  fname : string;
  daemon : bool; (** daemons (Help loops) never block quiescence *)
  mutable state : state;
  mutable next_access : footprint;
      (** footprint of the next step, maintained by the effect handlers *)
  mutable parked_at : int;
      (** park-on-yield mode: the scheduler's write count when this fiber
          yielded, or [-1] when runnable (see {!set_park_on_yield}) *)
  mutable ospan : int;
      (** ambient {!Lnd_obs.Obs} span, saved/restored at fiber switches *)
}

and state = Ready of (unit -> unit) | Finished of outcome

type t = {
  space : Lnd_shm.Space.t;
  mutable fibers : fiber list; (** in spawn order, oldest first *)
  mutable next_fid : int;
  mutable steps : int; (** scheduler steps taken so far *)
  mutable writes : int;
      (** register writes executed so far; drives park-on-yield *)
  mutable park_on_yield : bool;  (** see {!set_park_on_yield} *)
  mutable clock : int; (** logical time: steps plus {!tick} stamps *)
  mutable enabled : fiber -> bool;
      (** scheduling mask, used by targeted phase scenarios *)
  mutable choose : t -> fiber array -> int;
      (** the policy: pick the index of the next fiber among the ready *)
  mutable on_failure : (fiber -> exn -> unit) option;
      (** failure hook, see {!set_on_failure} *)
  mutable last_fid : int;
      (** last fiber stepped, for observability switch events *)
}

val create : space:Lnd_shm.Space.t -> choose:(t -> fiber array -> int) -> t
(** Also points the {!Lnd_obs.Obs} logical-clock hook at this scheduler's
    clock (last-created wins), so trace events are stamped with scheduler
    time. With no sink installed the instrumentation is inert. *)

val set_on_failure : t -> (fiber -> exn -> unit) option -> unit
(** Install (or clear) a hook invoked the moment any fiber terminates
    with an exception other than {!Killed}. Harnesses use it to surface
    fiber failures loudly — e.g. re-raise, or log and fail the run —
    instead of discovering them in a post-run {!failures} sweep (or
    silently missing them). The hook runs inside the dying fiber's last
    scheduler step and must not perform scheduler effects. *)

val set_park_on_yield : t -> bool -> unit
(** Fair-scheduling reduction used by the {!Explore} engines: when on, a
    {!yield} parks the fiber until the next register write by any fiber.
    Sound for the spin-polling protocols — a fiber only yields after an
    unsuccessful read-only poll pass, and re-running that pass against
    unchanged shared state re-enters the yield with identical local
    state (pure stutter) — and it makes the bounded schedule space
    finite where raw yields make it astronomical (DESIGN.md §4i). If
    every runnable fiber ends up parked the run is a livelock and {!run}
    returns [Budget_exhausted] (inconclusive). Off by default: normal
    runs keep the paper's fully asynchronous semantics. *)

val space : t -> Lnd_shm.Space.t
val steps : t -> int
val clock : t -> int

(** {2 Effects available inside fiber bodies} *)

val read : Lnd_shm.Register.t -> Lnd_support.Univ.t
(** One atomic register read (one scheduler step). *)

val write : Lnd_shm.Register.t -> Lnd_support.Univ.t -> unit
(** One atomic register write (one scheduler step). *)

val yield : unit -> unit
(** Give up the step without touching memory. *)

val tick : unit -> int
(** Read-and-advance the logical clock; not a scheduling point. Used to
    stamp operation invocations/responses. *)

val now : unit -> int
(** Read the logical clock without advancing it; not a scheduling point.
    Used by the message-passing fault layer to stamp deliveries and by
    retransmission backoff timers. *)

val self : unit -> int
(** The pid of the running fiber; not a scheduling point. *)

val rmw : Lnd_shm.Register.t -> (Lnd_support.Univ.t -> Lnd_support.Univ.t) -> Lnd_support.Univ.t
(** Atomic owner-only read-modify-write, used ONLY by the message-passing
    substrate to append to channel logs (channels are FIFO queues, not
    registers). The paper's algorithms never use this. *)

(** {2 Fibers and running} *)

val spawn : t -> pid:int -> name:string -> ?daemon:bool -> (unit -> unit) -> fiber

val kill : fiber -> unit
(** Deliberate termination; not reported by {!failures}. *)

val ready_fibers : t -> fiber list
(** Ready fibers that pass the [enabled] mask. *)

val step_fiber : t -> fiber -> unit
(** Run one step of one ready fiber (exposed for custom drivers). *)

type stop_reason = Quiescent | Budget_exhausted | Condition_met

val run : ?max_steps:int -> ?until:(t -> bool) -> t -> stop_reason
(** Run until every enabled non-daemon fiber has finished ([Quiescent]),
    the predicate holds ([Condition_met]), or [max_steps] elapse.
    Daemons keep getting scheduled while clients run but never keep the
    run alive on their own. *)

val failures : t -> (fiber * exn) list
(** Fibers that terminated with an exception (other than {!kill}). *)

val pp_fiber : Format.formatter -> fiber -> unit

val pp_footprint : Format.formatter -> footprint -> unit
(** ["·"] for {!A_none}, ["R(name)"]/["W(name)"]/["U(name)"] otherwise. *)
