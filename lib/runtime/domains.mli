(** Driver #2: OCaml 5 domains.

    Runs the same pure {!Lnd_support.Machine} programs the simulator
    drives, but with real preemption: one domain per process, shared
    registers as mutex-protected cells ({!Dcell}), and a global atomic
    logical clock stamping operation intervals for the history. Within a
    domain the process's machines (current operation + background
    daemons) interleave cooperatively at Yield points; across domains
    the interleaving is whatever the hardware produces. See DESIGN.md,
    "Pure cores and drivers". *)

open Lnd_support

(** Mutex-protected shared register. *)
module Dcell : sig
  type t

  val make : name:string -> init:Univ.t -> t
  val name : t -> string
  val read : t -> Univ.t
  val write : t -> Univ.t -> unit
end

type clock = int Atomic.t

val tick : clock -> int
(** Next logical timestamp (atomic fetch-and-add). *)

type job
(** One client operation: a lazily-built machine program plus a [finish]
    callback receiving the invocation/response timestamps and the
    result. Jobs of one process run sequentially, in order. *)

val job :
  ?span:string * string option ->
  ?render:('a -> string) ->
  ?on_note:(Machine.note -> unit) ->
  cell:('reg -> Dcell.t) ->
  finish:(inv:int -> ret:int -> 'a -> unit) ->
  (unit -> ('reg, 'a) Machine.prog) ->
  job
(** [span] names the Obs operation span (name, optional argument) the
    job runs under when a sink is installed; it is opened {e before} the
    invocation tick and closed — with [render result] — {e after} the
    response tick, so the traced interval brackets [[inv, ret]] and
    trace-derived precedence is a subset of the direct history's.
    [on_note] receives the core's protocol annotations in program order
    (default: ignore), mirroring {!Drive.run}. *)

type daemon
(** A background machine (help loop, scripted adversary). Daemons are
    abandoned once every job of the whole run has completed.
    [critical:false] marks machines whose failure must not fail the run
    (Byzantine processes, mirroring the simulator's treatment). *)

val daemon :
  label:string ->
  ?critical:bool ->
  ?on_note:(Machine.note -> unit) ->
  cell:('reg -> Dcell.t) ->
  ('reg, unit) Machine.prog ->
  daemon

type t

val create : ?step_budget:int -> unit -> t
(** [step_budget] bounds Machine steps per domain, turning deadlock or
    divergence into [Error] instead of a hang. *)

val now : t -> int

val clock : t -> clock
(** The run's logical clock. A traced run installs
    [Obs.install ~clock:(fun () -> tick (clock t))] so every event gets
    a {e unique} stamp from the same fetch-and-add counter that stamps
    operation intervals: the merged multi-domain trace is then totally
    ordered by [at], independent of how the domains raced. *)

val add_process : t -> pid:int -> ?daemons:daemon list -> job list -> unit

val run : t -> (int, string) result
(** Spawns one domain per registered process, joins them all. [Ok steps]
    (total machine steps across domains) once every job completed;
    [Error _] if a correct machine raised, a budget was exhausted, or
    jobs were left incomplete. *)
