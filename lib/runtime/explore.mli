(** Bounded systematic schedule exploration.

    Three modes over one result shape: {!exhaustive} (naive DFS over
    every scheduling decision — the baseline), {!dpor} (dynamic
    partial-order reduction with sleep sets over register-access
    interleavings — the model checker), and {!swarm} (seeded-random
    sampling for programs too large to enumerate).

    All modes are bounded safety checkers: runs exceeding [max_steps]
    are pruned as inconclusive (an adversarial schedule can starve the
    Help daemons indefinitely, so termination cannot be decided by
    exploration). [exhausted = true] means every schedule of at most
    [max_steps] steps was covered — for {!dpor}, up to commutation of
    independent steps (see DESIGN.md §4i for the soundness argument). *)

(** How to reproduce one specific run. *)
type schedule =
  | Indices of int list
      (** choice indices for {!Policy.scripted} (naive DFS trail) *)
  | Fids of int list  (** one fiber id per step (DPOR trail) *)
  | Seed of int  (** a {!Policy.random} seed (swarm trail) *)

type counterexample = {
  cx_schedule : schedule;  (** replays the offending run *)
  cx_note : string;  (** caller-supplied configuration description *)
  cx_steps : int;  (** length of the violating run *)
  cx_exn : exn;  (** what the caller's [check] raised *)
}

exception Violation of counterexample
(** Raised when [check] fails; the payload is self-describing and can be
    re-executed in one call with {!replay}. *)

exception Replay_diverged of { at : int; reason : string }
(** Raised when a {!Fids} trail does not match the program it is driven
    against (wrong system, truncated trail, trail/branching mismatch). *)

val pp_schedule : Format.formatter -> schedule -> unit
val pp_counterexample : Format.formatter -> counterexample -> unit

type result = {
  runs : int;  (** schedules fully explored to quiescence *)
  pruned : int;  (** schedules cut off by the step budget *)
  exhausted : bool;  (** whole bounded space covered *)
  blocked : int;
      (** sleep-set-blocked (redundant) schedules, {!dpor} only *)
  races : int;
      (** backtrack points seeded by race detection, {!dpor} only *)
  max_depth : int;  (** deepest schedule explored *)
}

val exhaustive :
  make:(Policy.t -> Sched.t) ->
  check:(Sched.t -> unit) ->
  ?max_steps:int ->
  ?max_runs:int ->
  ?note:string ->
  unit ->
  result
(** The naive baseline: branch on every step over every ready fiber.
    [make policy] must build a fresh system (same program every time);
    [check] is called on each quiescent schedule. *)

val dpor :
  make:(Policy.t -> Sched.t) ->
  check:(Sched.t -> unit) ->
  ?max_steps:int ->
  ?max_runs:int ->
  ?max_preempts:int ->
  ?note:string ->
  unit ->
  result
(** The model checker: branch only at steps that conflict (same
    register, at least one write, tracked via {!Sched.footprint} and
    vector-clock happens-before), prune commutation-equivalent
    schedules with sleep sets. Explores one representative per
    Mazurkiewicz trace; on the register protocols this is typically
    orders of magnitude fewer runs than {!exhaustive} (benchmark T15).

    [max_preempts] adds CHESS-style iterative context bounding: a
    preemption is scheduling away from a fiber that is still enabled
    and whose last step was a real register access (switches at
    yields/spawns are voluntary and always free). With the bound set,
    the covered space is "every schedule with at most [max_steps]
    steps and at most [max_preempts] preemptions, up to commutation";
    schedules needing more preemptions count as [pruned]. The
    spin-polling register protocols are unbounded without it — see
    DESIGN.md §4i.

    [make] must build a fresh, deterministic system on every call — the
    explorer replays committed prefixes and relies on them reaching the
    same states. *)

val swarm :
  make:(Policy.t -> Sched.t) ->
  check:(Sched.t -> unit) ->
  ?max_steps:int ->
  ?note:string ->
  seeds:int list ->
  unit ->
  result
(** Swarm exploration: many independent seeded-random schedules of the
    same program, [check]ed at quiescence. Complements {!dpor} for
    programs too large to enumerate; a {!Violation}'s schedule carries
    the offending seed. [exhausted] is always [false]. *)

val replay :
  make:(Policy.t -> Sched.t) ->
  check:(Sched.t -> unit) ->
  ?max_steps:int ->
  schedule ->
  (unit, exn) Stdlib.result
(** Re-execute one schedule against a fresh system and re-run the
    check. [Ok ()] means the check passed; [Error e] reproduces the
    violation. Raises {!Replay_diverged} if a {!Fids} trail does not
    fit the program. *)
