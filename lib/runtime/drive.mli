(** Driver #1: run a pure protocol core ({!Lnd_support.Machine}) on the
    deterministic effects-based simulator.

    One [A_read]/[A_write] action is one {!Cell.read}/{!Cell.write} (one
    scheduler step each, in program order); one [A_yield] is one
    {!Sched.yield}. A core driven here performs exactly the effect
    sequence of the inlined implementation it was extracted from. *)

open Lnd_support

val run :
  ?on_note:(Machine.note -> unit) ->
  cell:('reg -> Cell.t) ->
  ('reg, 'a) Machine.prog ->
  'a
(** Must be invoked from within a fiber. [on_note] receives protocol
    annotations in program order (default: ignore); protocol drivers map
    them to Obs spans. *)
