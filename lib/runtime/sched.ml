(* Cooperative scheduler over OCaml effects.

   Each simulated process contributes one or more fibers (an operation
   fiber, plus the background Help() fiber the algorithms of the paper
   require). A fiber runs as ordinary OCaml code; every shared-register
   access is an effect, and the scheduler resumes exactly one fiber per
   step — so register accesses are atomic and the set of possible
   interleavings is precisely that of the paper's asynchronous model.

   Scheduling is driven by a pluggable, deterministic policy; runs replay
   exactly from (program, policy) because all randomness is seeded. *)

open Lnd_support
open Lnd_shm
module Obs = Lnd_obs.Obs

type _ Effect.t +=
  | E_read : Register.t -> Univ.t Effect.t
  | E_write : Register.t * Univ.t -> unit Effect.t
  | E_yield : unit Effect.t
  | E_clock : int Effect.t (* read-and-advance the logical clock; no scheduling point *)
  | E_now : int Effect.t (* read the logical clock without advancing it; no scheduling point *)
  | E_self : int Effect.t (* pid of the running fiber; no scheduling point *)
  | E_rmw : Register.t * (Univ.t -> Univ.t) -> Univ.t Effect.t
    (* Atomic owner-only read-modify-write, used ONLY by the
       message-passing substrate to append to channel logs (channels are
       FIFO queues, not registers; two fibers of the same process may
       send concurrently). The paper's algorithms never use this — their
       registers are plain read/write. *)

exception Killed

type outcome = Completed | Failed of exn

(* The register access a fiber's NEXT step will perform. Because every
   access effect suspends the fiber and the installed continuation does
   the access at resumption, the footprint of a step is known BEFORE the
   step executes — this is what lets the DPOR explorer (see Explore)
   decide whether two pending steps conflict without running them.
   [A_none] covers yields and the spawn-to-first-effect prefix (which
   touches no shared register: fibers run between scheduling points on
   private state only). [A_update] is a read-modify-write: it conflicts
   like a write. *)
type footprint =
  | A_none
  | A_read of Register.t
  | A_write of Register.t
  | A_update of Register.t

type fiber = {
  fid : int;
  pid : int;
  fname : string;
  daemon : bool; (* daemons (Help loops) never block quiescence *)
  mutable state : state;
  mutable next_access : footprint;
      (* footprint of the next step; maintained by the effect handlers *)
  mutable parked_at : int;
      (* park-on-yield mode: the scheduler's write count when this fiber
         yielded, or -1 when runnable. A parked fiber re-enables only
         after some fiber writes — re-running a read-only poll pass
         against unchanged shared state is pure stutter. *)
  mutable ospan : int;
      (* ambient Obs span, saved/restored at fiber switches so spans
         follow fibers rather than the host call stack *)
}

and state = Ready of (unit -> unit) | Finished of outcome

type t = {
  space : Space.t;
  mutable fibers : fiber list; (* in spawn order, oldest first *)
  mutable next_fid : int;
  mutable steps : int;
  mutable writes : int; (* register writes executed; drives park-on-yield *)
  mutable park_on_yield : bool;
      (* fair-scheduling reduction for the explorers: a yield parks the
         fiber until the next write by anyone. Off by default — normal
         runs keep the paper's fully asynchronous semantics. *)
  mutable clock : int; (* logical time: advanced by steps and by E_clock *)
  mutable enabled : fiber -> bool; (* scheduling mask, used by targeted scenarios *)
  mutable choose : t -> fiber array -> int; (* policy: pick among ready fibers *)
  mutable on_failure : (fiber -> exn -> unit) option;
      (* invoked the moment any fiber dies with an exception other than
         Killed — so harnesses surface failures loudly instead of
         discovering them (or not) in a post-run [failures] sweep *)
  mutable last_fid : int; (* last fiber stepped, for Obs switch events *)
}

let create ~space ~choose =
  let t =
    {
      space;
      fibers = [];
      next_fid = 0;
      steps = 0;
      writes = 0;
      park_on_yield = false;
      clock = 0;
      enabled = (fun _ -> true);
      choose;
      on_failure = None;
      last_fid = -1;
    }
  in
  (* Events carry scheduler time; the hook is a plain field read so it
     stays callable outside any fiber (unlike the E_now effect). *)
  Obs.set_clock (fun () -> t.clock);
  t

let set_on_failure t h = t.on_failure <- h
let set_park_on_yield t b = t.park_on_yield <- b

let space t = t.space
let steps t = t.steps
let clock t = t.clock

(* --- Effects available inside fiber bodies --- *)

let read (r : Register.t) : Univ.t = Effect.perform (E_read r)
let write (r : Register.t) (v : Univ.t) : unit = Effect.perform (E_write (r, v))
let yield () : unit = Effect.perform E_yield
let tick () : int = Effect.perform E_clock
let now () : int = Effect.perform E_now
let self () : int = Effect.perform E_self
let rmw (r : Register.t) (f : Univ.t -> Univ.t) : Univ.t = Effect.perform (E_rmw (r, f))

(* --- Fiber machinery --- *)

let spawn t ~pid ~name ?(daemon = false) (body : unit -> unit) : fiber =
  if pid < 0 || pid >= Space.n t.space then invalid_arg "Sched.spawn: bad pid";
  let fiber =
    { fid = t.next_fid; pid; fname = name; daemon; state = Finished Completed;
      next_access = A_none; parked_at = -1; ospan = 0 }
  in
  t.next_fid <- t.next_fid + 1;
  if Obs.enabled () then
    Obs.emit ~pid
      (Obs.Sched_spawn { fid = fiber.fid; fname = name; daemon });
  let start () =
    let open Effect.Deep in
    match_with body ()
      {
        retc =
          (fun () ->
            fiber.state <- Finished Completed;
            if Obs.enabled () then
              Obs.emit ~pid
                (Obs.Sched_exit { fid = fiber.fid; fname = name; failed = false }));
        exnc =
          (fun e ->
            fiber.state <- Finished (Failed e);
            if Obs.enabled () then
              Obs.emit ~pid
                (Obs.Sched_exit { fid = fiber.fid; fname = name; failed = true });
            match e with
            | Killed -> ()
            | e -> Option.iter (fun h -> h fiber e) t.on_failure);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | E_read r ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    fiber.next_access <- A_read r;
                    fiber.state <-
                      Ready
                        (fun () ->
                          match Space.read t.space ~by:fiber.pid r with
                          | v -> continue k v
                          | exception e -> discontinue k e))
            | E_write (r, v) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    fiber.next_access <- A_write r;
                    fiber.state <-
                      Ready
                        (fun () ->
                          match Space.write t.space ~by:fiber.pid r v with
                          | () -> continue k ()
                          | exception e -> discontinue k e))
            | E_yield ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    fiber.next_access <- A_none;
                    if t.park_on_yield then fiber.parked_at <- t.writes;
                    fiber.state <- Ready (fun () -> continue k ()))
            | E_clock ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    t.clock <- t.clock + 1;
                    continue k t.clock)
            | E_now ->
                Some
                  (fun (k : (a, unit) continuation) -> continue k t.clock)
            | E_self ->
                Some
                  (fun (k : (a, unit) continuation) -> continue k fiber.pid)
            | E_rmw (r, f) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    fiber.next_access <- A_update r;
                    fiber.state <-
                      Ready
                        (fun () ->
                          match
                            let old = Space.read t.space ~by:fiber.pid r in
                            let v = f old in
                            Space.write t.space ~by:fiber.pid r v;
                            v
                          with
                          | v -> continue k v
                          | exception e -> discontinue k e))
            | _ -> None);
      }
  in
  fiber.state <- Ready start;
  t.fibers <- t.fibers @ [ fiber ];
  fiber

let kill (f : fiber) : unit =
  match f.state with
  | Ready _ -> f.state <- Finished (Failed Killed)
  | Finished _ -> ()

(* Runnable = Ready + passing the scenario mask; parked fibers (see
   [park_on_yield]) additionally wait for the next write by anyone. *)
let runnable t f =
  (match f.state with Ready _ -> true | _ -> false) && t.enabled f

let ready_fibers t =
  List.filter
    (fun f -> runnable t f && (f.parked_at < 0 || t.writes > f.parked_at))
    t.fibers

(* Run one step of one chosen fiber. Raises nothing: fiber exceptions are
   captured in the fiber's outcome. *)
let step_fiber t (f : fiber) : unit =
  match f.state with
  | Finished _ -> invalid_arg "Sched.step_fiber: fiber not ready"
  | Ready go ->
      (* Mark running; [go] re-installs Ready on the next effect. *)
      f.state <- Finished Completed;
      f.parked_at <- -1;
      (match f.next_access with
      | A_write _ | A_update _ -> t.writes <- t.writes + 1
      | A_none | A_read _ -> ());
      t.steps <- t.steps + 1;
      t.clock <- t.clock + 1;
      if Obs.enabled () then begin
        if t.last_fid <> f.fid then begin
          t.last_fid <- f.fid;
          Obs.emit ~pid:f.pid (Obs.Sched_switch { fid = f.fid; fname = f.fname })
        end;
        (* Make the fiber's saved span ambient for the duration of its
           step, then stash whatever it left ambient. *)
        Obs.set_ambient ~span:f.ospan ~pid:f.pid;
        go ();
        f.ospan <- Obs.ambient ();
        Obs.set_ambient ~span:0 ~pid:(-1)
      end
      else go ()

type stop_reason = Quiescent | Budget_exhausted | Condition_met

(* Run until every enabled non-daemon fiber has finished, the predicate
   [until] holds, or [max_steps] elapse. Daemons keep getting scheduled
   while clients run, but never keep the run alive on their own. *)
let run ?(max_steps = 1_000_000) ?(until = fun (_ : t) -> false) (t : t) :
    stop_reason =
  let rec loop () =
    if until t then Condition_met
    else
      let ready = ready_fibers t in
      let clients_pending =
        List.exists (fun (f : fiber) -> (not f.daemon) && runnable t f) t.fibers
      in
      if not clients_pending then Quiescent
      else if ready = [] then
        (* park-on-yield livelock: every runnable fiber waits for a write
           that can never come. Inconclusive, like a blown step budget. *)
        Budget_exhausted
      else if t.steps >= max_steps then Budget_exhausted
      else begin
        let arr = Array.of_list ready in
        let i = t.choose t arr in
        step_fiber t arr.(i);
        loop ()
      end
  in
  loop ()

(* Fibers that terminated with an exception (other than deliberate kills). *)
let failures t =
  List.filter_map
    (fun f ->
      match f.state with
      | Finished (Failed Killed) -> None
      | Finished (Failed e) -> Some (f, e)
      | _ -> None)
    t.fibers

let pp_fiber fmt (f : fiber) =
  Format.fprintf fmt "fiber#%d p%d %s%s" f.fid f.pid f.fname
    (if f.daemon then " (daemon)" else "")

let pp_footprint fmt (a : footprint) =
  match a with
  | A_none -> Format.pp_print_string fmt "·"
  | A_read r -> Format.fprintf fmt "R(%s)" r.Register.name
  | A_write r -> Format.fprintf fmt "W(%s)" r.Register.name
  | A_update r -> Format.fprintf fmt "U(%s)" r.Register.name
