(** A liveness watchdog over the scheduler's logical clock.

    Arm one {!entry} per pending operation; an operation whose fiber is
    still unfinished past its logical-clock deadline shows up in
    {!stalled} with the responsible fiber — a silent hang becomes a
    diagnosable report instead of an opaque step-budget exhaustion.

    The watchdog is passive (no scheduler effects, no randomness): it
    never perturbs a run, so harnesses keep it always-on and runs remain
    replayable byte-for-byte from their seeds. Drive detection with
    [Sched.run ~until:(fun _ -> Watchdog.stalled w <> [])]. *)

type entry = {
  wd_fiber : Sched.fiber;
  wd_op : string;  (** what the fiber is trying to complete *)
  mutable wd_deadline : int;
}

type t

val create : Sched.t -> t

val arm : t -> fiber:Sched.fiber -> op:string -> timeout:int -> entry
(** Watch [fiber] until it finishes; it stalls if still running
    [timeout] logical-clock ticks from now. *)

val touch : t -> entry -> timeout:int -> unit
(** Progress observed: push the deadline out to now + [timeout]. *)

val stalled : t -> entry list
(** Entries whose fiber is unfinished past its deadline, in arm order.
    Pure — safe to call every scheduler step. *)

val emit_stalled : t -> unit
(** Publish the current {!stalled} diagnosis as typed
    [Lnd_obs.Obs.Watchdog_stall] events (one per stalled entry, tagged
    with the stalled fiber's pid), so stalls land in recorded traces and
    an auditor can tell "slow" from "lying". No-op under the Null sink;
    emission is observation-only and never perturbs the run. *)

val pp_entry : Format.formatter -> entry -> unit
val pp_stalled : Format.formatter -> entry list -> unit
