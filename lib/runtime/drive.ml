(* Driver #1: interpret a pure protocol core (Lnd_support.Machine) on the
   deterministic effects-based simulator.

   The driver is a strict event loop over Machine.step: every A_read /
   A_write becomes exactly one Cell.read / Cell.write (one scheduler step
   each, in program order) and every A_yield one Sched.yield, so a core
   driven here performs the same effect sequence — and therefore the same
   schedules, logical clocks, traces and DPOR exploration — as the
   pre-refactor inlined implementation it was extracted from. Notes are
   handed to the caller (protocol drivers map them to Obs HELP spans);
   they are not scheduler steps, exactly like the Obs calls they
   replace. *)

open Lnd_support

let run ?(on_note : Machine.note -> unit = fun _ -> ())
    ~(cell : 'reg -> Cell.t) (p : ('reg, 'a) Machine.prog) : 'a =
  let state = ref p in
  let ev = ref Machine.Start in
  let result = ref None in
  while !result = None do
    let st, acts = Machine.step !state !ev in
    state := st;
    List.iter
      (fun (a : 'reg Machine.action) ->
        match a with
        | Machine.A_write (r, u) -> Cell.write (cell r) u
        | Machine.A_note n -> on_note n
        | Machine.A_read r -> ev := Machine.Got (Cell.read (cell r))
        | Machine.A_yield ->
            Sched.yield ();
            ev := Machine.Ack
        | Machine.A_done -> result := Machine.result !state)
      acts
  done;
  Option.get !result
