(* A liveness watchdog over the scheduler's logical clock.

   Harnesses arm an entry per pending operation (a WRITE, a READ, a
   broadcast wait) with a logical-clock deadline; a silent hang — a
   fiber that never finishes because the message it is waiting for will
   never arrive — then surfaces as a diagnosable [stalled] entry naming
   the responsible fiber and operation, instead of as an opaque
   step-budget exhaustion.

   The watchdog is completely passive: it performs no scheduler effects,
   draws no randomness, and never perturbs the run. [stalled] is a pure
   function of (entries, fiber states, clock), so driving a run with
   [Sched.run ~until:(fun _ -> Watchdog.stalled w <> [])] keeps the
   execution trace byte-identical to an unwatched run that does not
   stall. *)

type entry = {
  wd_fiber : Sched.fiber;
  wd_op : string;
  mutable wd_deadline : int; (* logical-clock deadline *)
}

type t = { sched : Sched.t; mutable entries : entry list }

let create sched = { sched; entries = [] }

let arm t ~fiber ~op ~timeout =
  let e = { wd_fiber = fiber; wd_op = op; wd_deadline = Sched.clock t.sched + timeout } in
  t.entries <- e :: t.entries;
  e

let touch t e ~timeout = e.wd_deadline <- Sched.clock t.sched + timeout

let live (e : entry) =
  match e.wd_fiber.Sched.state with
  | Sched.Finished _ -> false
  | Sched.Ready _ -> true

let stalled t =
  let clock = Sched.clock t.sched in
  List.filter (fun e -> live e && clock > e.wd_deadline) (List.rev t.entries)

(* Publish the current stall diagnosis as typed events, one per stalled
   entry, each attributed to the stalled fiber's pid. Stalls land in
   traces as evidence of SLOWNESS — the accountability auditor never
   turns one into an accusation, which is exactly the paper's asymmetry:
   a process can be late without lying. Emission is observation-only
   (no scheduler effects), so runs stay byte-identical under the Null
   sink. *)
let emit_stalled t =
  if Lnd_obs.Obs.enabled () then
    List.iter
      (fun e ->
        Lnd_obs.Obs.emit ~pid:e.wd_fiber.Sched.pid
          (Lnd_obs.Obs.Watchdog_stall
             {
               fid = e.wd_fiber.Sched.fid;
               fname = e.wd_fiber.Sched.fname;
               op = e.wd_op;
               deadline = e.wd_deadline;
             }))
      (stalled t)

let pp_entry fmt e =
  Format.fprintf fmt "%s (fiber %s, pid %d, deadline %d)" e.wd_op
    e.wd_fiber.Sched.fname e.wd_fiber.Sched.pid e.wd_deadline

let pp_stalled fmt es =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
    pp_entry fmt es
