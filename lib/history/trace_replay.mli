(** Reconstruct checker inputs from a recorded {!Lnd_obs} trace.

    Operation spans carry their argument at open and their result at
    close, and shared-memory events carry the full register access, so a
    trace is a complete substitute for the bespoke history plumbing: the
    same {!Byzlin} and {!Trace_invariants} verdicts must come out of a
    replayed trace as out of the directly recorded history (the
    trace-driven checker test in [test_obs.ml] asserts exactly that).

    Spans whose close is missing or marked [aborted] become incomplete
    history entries ([ret = None]) — the same treatment an in-flight
    operation gets from {!History.record} when its fiber dies. Spans
    with names that are not operations of the target spec (HELP rounds,
    EMU_* emulation internals) are ignored. *)

val verifiable_history :
  Lnd_obs.Obs.event list ->
  (Spec.Verifiable_spec.op, Spec.Verifiable_spec.res) History.t
(** WRITE/READ/SIGN/VERIFY spans as a verifiable-register history. *)

val sticky_history :
  Lnd_obs.Obs.event list ->
  (Spec.Sticky_spec.op, Spec.Sticky_spec.res) History.t
(** WRITE/READ spans as a sticky-register history. *)

val testorset_history :
  Lnd_obs.Obs.event list ->
  (Spec.Testorset_spec.op, Spec.Testorset_spec.res) History.t
(** SET/TEST spans as a test-or-set history. The WRITE/SIGN/READ/VERIFY
    spans of the underlying register construction nest inside them and
    are ignored here, so both Observation 25 constructions fold to the
    same spec-level history. *)

val accesses : Lnd_obs.Obs.event list -> Lnd_shm.Space.access list
(** The shared-memory access sequence, renumbered from 0 — identical to
    {!Lnd_shm.Space.trace} output when the space's ring capacity was not
    exceeded. *)
