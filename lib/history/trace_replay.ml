module Obs = Lnd_obs.Obs

(* Fold span opens/closes into history entries through a per-spec parser:
   [parse_op name arg] recognises the spec's operations, [parse_res op
   result] decodes the close payload. A close that is aborted, missing,
   or unparseable leaves the entry incomplete. *)
let spans_to_history ~parse_op ~parse_res (evs : Obs.event list) :
    ('op, 'res) History.t =
  let open_entries : (int, ('op, 'res) History.entry) Hashtbl.t =
    Hashtbl.create 64
  in
  let entries = ref [] in
  List.iter
    (fun (e : Obs.event) ->
      match e.kind with
      | Span_open { name; arg; _ } -> (
          match parse_op name arg with
          | Some op ->
              let entry = { History.pid = e.pid; op; inv = e.at; ret = None } in
              Hashtbl.replace open_entries e.span entry;
              entries := entry :: !entries
          | None -> ())
      | Span_close { result; aborted; _ } -> (
          match Hashtbl.find_opt open_entries e.span with
          | None -> ()
          | Some entry ->
              Hashtbl.remove open_entries e.span;
              if not aborted then
                match Option.bind result (parse_res entry.History.op) with
                | Some res -> entry.History.ret <- Some (res, e.at)
                | None -> ())
      | _ -> ())
    evs;
  { History.entries = !entries }

let value_of s =
  (* "v:<value>" *)
  if String.length s >= 2 && String.sub s 0 2 = "v:" then
    Some (String.sub s 2 (String.length s - 2))
  else None

let verifiable_history evs =
  let open Spec.Verifiable_spec in
  spans_to_history evs
    ~parse_op:(fun name arg ->
      match (name, arg) with
      | "WRITE", Some v -> Some (Write v)
      | "READ", _ -> Some Read
      | "SIGN", Some v -> Some (Sign v)
      | "VERIFY", Some v -> Some (Verify v)
      | _ -> None)
    ~parse_res:(fun op result ->
      match op with
      | Write _ -> if result = "done" then Some Done else None
      | Read -> Option.map (fun v -> Val v) (value_of result)
      | Sign _ -> Option.map (fun b -> Signed b) (bool_of_string_opt result)
      | Verify _ -> Option.map (fun b -> Verified b) (bool_of_string_opt result))

let sticky_history evs =
  let open Spec.Sticky_spec in
  spans_to_history evs
    ~parse_op:(fun name arg ->
      match (name, arg) with
      | "WRITE", Some v -> Some (Write v)
      | "READ", _ -> Some Read
      | _ -> None)
    ~parse_res:(fun op result ->
      match op with
      | Write _ -> if result = "done" then Some Done else None
      | Read ->
          if result = "\xe2\x8a\xa5" (* ⊥ *) then Some (Val None)
          else Option.map (fun v -> Val (Some v)) (value_of result))

let testorset_history evs =
  let open Spec.Testorset_spec in
  spans_to_history evs
    ~parse_op:(fun name _arg ->
      match name with "SET" -> Some Set | "TEST" -> Some Test | _ -> None)
    ~parse_res:(fun op result ->
      match op with
      | Set -> if result = "done" then Some Done else None
      | Test -> Option.map (fun b -> Bit b) (int_of_string_opt result))

let accesses evs =
  let seq = ref (-1) in
  List.filter_map
    (fun (e : Obs.event) ->
      match e.kind with
      | Shm_access { access; reg; value } ->
          incr seq;
          Some
            { Lnd_shm.Space.acc_seq = !seq;
              acc_pid = e.pid;
              acc_kind = access;
              acc_reg = reg;
              acc_value = value }
      | _ -> None)
    evs
