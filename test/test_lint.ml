(* The lint engine against its known-bad fixtures — each fixture is
   flagged by exactly its intended rule at the intended line, a justified
   suppression silences a finding, a bare suppression is itself a
   finding — and the production tree lints clean end to end. *)

open Lnd_lint_core

(* Fixtures live outside the production path layout, so force every
   AST-level rule on explicitly instead of relying on path-derived
   contexts. *)
let strict =
  {
    Rules.rng_free = true;
    ordered_iter = true;
    quorum = true;
    seam = true;
    swallow = true;
    need_mli = false;
    durable = true;
    obs = true;
  }

let fixture name = Filename.concat "fixtures/lint" name

let lint ?(ctx = strict) name = Driver.lint_file ~ctx (fixture name)

let simplify (fs : Findings.t list) =
  List.sort Findings.compare fs
  |> List.map (fun (f : Findings.t) -> (f.Findings.rule, f.Findings.line))

let check name expected got =
  Alcotest.(check (list (pair string int))) name expected (simplify got)

let test_determinism () =
  check "randomness + unordered iteration flagged"
    [ ("determinism", 4); ("determinism", 7); ("determinism", 10) ]
    (lint "bad_determinism.ml")

let test_quorum () =
  check "every inline threshold shape flagged"
    [
      ("quorum-arithmetic", 4);
      ("quorum-arithmetic", 5);
      ("quorum-arithmetic", 6);
      ("quorum-arithmetic", 7);
    ]
    (lint "bad_quorum.ml")

let test_seam () =
  check "raw Net access flagged"
    [ ("transport-seam", 5); ("transport-seam", 6) ]
    (lint "bad_seam.ml")

let test_durable () =
  check "raw Disk access flagged"
    [ ("durable-seam", 5); ("durable-seam", 6); ("durable-seam", 8) ]
    (lint "bad_durable.ml")

let test_obs () =
  check "direct printing flagged"
    [
      ("obs-seam", 6);
      ("obs-seam", 7);
      ("obs-seam", 8);
      ("obs-seam", 9);
    ]
    (lint "bad_obs.ml")

let test_swallow () =
  check "catch-all handler flagged"
    [ ("exception-swallowing", 4) ]
    (lint "bad_swallow.ml")

(* The determinism contract the model checker is held to: schedule
   choices, sleep-set iteration, budgets and vector clocks must all be
   replay-stable — no ambient randomness, no wall clock, no bucket
   order. *)
let test_explore_fixture () =
  check "model-checker determinism violations flagged"
    [
      ("determinism", 5);
      ("determinism", 8);
      ("determinism", 10);
      ("determinism", 12);
    ]
    (lint "bad_explore.ml")

(* The rules the auditor is held to, all tripped in one fixture:
   hash-ordered ledger iteration, an inline witness threshold, and an
   accusation printed past the Obs sink. *)
let test_audit_fixture () =
  check "auditor contract violations flagged"
    [ ("determinism", 8); ("quorum-arithmetic", 10); ("obs-seam", 12) ]
    (lint "bad_audit.ml")

(* The parallel backend is held to the same silence contract as the
   protocol cores: a stray print in the domains driver or the merge
   path would break the byte-identical golden baselines. *)
let test_domains_fixture () =
  check "parallel-backend printing flagged"
    [
      ("obs-seam", 8);
      ("obs-seam", 9);
      ("obs-seam", 10);
      ("obs-seam", 11);
    ]
    (lint "bad_domains.ml")

let test_suppressed_ok () =
  check "justified [@lnd.allow] silences the finding" []
    (lint "suppressed_ok.ml")

let test_suppressed_bare () =
  check "bare [@lnd.allow] is itself the finding"
    [ ("suppression-hygiene", 8) ]
    (lint "suppressed_bare.ml")

let test_iface () =
  check "missing .mli flagged"
    [ ("interface-hygiene", 1) ]
    (lint ~ctx:{ strict with Rules.need_mli = true } "no_mli/bad_iface.ml")

let test_default_ctx () =
  let c = Rules.default_ctx ~path:"lib/msgpass/regemu.ml" in
  Alcotest.(check bool) "regemu: seam rule on" true c.Rules.seam;
  Alcotest.(check bool) "regemu: quorum rule on" true c.Rules.quorum;
  let t = Rules.default_ctx ~path:"lib/msgpass/faultnet.ml" in
  Alcotest.(check bool) "faultnet: seam-exempt (IS the transport)" false
    t.Rules.seam;
  let r = Rules.default_ctx ~path:"lib/support/rng.ml" in
  Alcotest.(check bool) "rng.ml: randomness allowed (IS the rng)" false
    r.Rules.rng_free;
  Alcotest.(check bool) "rng.ml: still needs an .mli" true r.Rules.need_mli;
  Alcotest.(check bool) "regemu: durable rule on" true c.Rules.durable;
  let d = Rules.default_ctx ~path:"lib/durable/wal.ml" in
  Alcotest.(check bool) "wal.ml: durable-exempt (IS the layer)" false
    d.Rules.durable;
  Alcotest.(check bool) "wal.ml: determinism still on" true d.Rules.rng_free;
  Alcotest.(check bool) "regemu: obs rule on" true c.Rules.obs;
  let o = Rules.default_ctx ~path:"lib/fuzz/chaos.ml" in
  Alcotest.(check bool) "chaos.ml: may print (harness, not protocol)" false
    o.Rules.obs;
  let a = Rules.default_ctx ~path:"lib/audit/audit.ml" in
  Alcotest.(check bool) "audit: ordered-iteration rule on" true
    a.Rules.ordered_iter;
  Alcotest.(check bool) "audit: quorum rule on" true a.Rules.quorum;
  Alcotest.(check bool) "audit: obs rule on" true a.Rules.obs;
  let e = Rules.default_ctx ~path:"lib/runtime/explore.ml" in
  Alcotest.(check bool) "explore: ordered-iteration rule on" true
    e.Rules.ordered_iter;
  Alcotest.(check bool) "explore: randomness still banned" true e.Rules.rng_free;
  Alcotest.(check bool) "explore: no seam rule (below the transport)" false
    e.Rules.seam;
  let dm = Rules.default_ctx ~path:"lib/runtime/domains.ml" in
  Alcotest.(check bool) "domains: obs rule on (Null sink must stay silent)"
    true dm.Rules.obs;
  let pl = Rules.default_ctx ~path:"lib/parallel/parallel.ml" in
  Alcotest.(check bool) "parallel: obs rule on" true pl.Rules.obs;
  Alcotest.(check bool) "parallel: ordered-iteration rule on" true
    pl.Rules.ordered_iter;
  let b = Rules.default_ctx ~path:"bin/lnd_cli.ml" in
  Alcotest.(check bool) "bin: no .mli demanded" false b.Rules.need_mli;
  Alcotest.(check bool) "bin: no seam rule" false b.Rules.seam;
  Alcotest.(check bool) "bin: no obs rule" false b.Rules.obs

(* The acceptance gate: the real tree, linted with the real contexts,
   has zero findings. Skipped when the sources are not reachable from
   the test cwd (e.g. a sandboxed runner). *)
let test_production_clean () =
  let root = "../../.." in
  if not (Sys.file_exists (Filename.concat root "lib")) then ()
  else
    match
      Driver.lint_paths
        (List.map (Filename.concat root) [ "lib"; "bin"; "bench"; "test" ])
    with
    | Error msg -> Alcotest.fail msg
    | Ok [] -> ()
    | Ok (f :: _ as fs) ->
        Alcotest.failf "production tree has %d lint finding(s), first: %s"
          (List.length fs)
          (Format.asprintf "%a" Findings.pp_human f)

let tests =
  [
    Alcotest.test_case "determinism fixture" `Quick test_determinism;
    Alcotest.test_case "quorum-arithmetic fixture" `Quick test_quorum;
    Alcotest.test_case "transport-seam fixture" `Quick test_seam;
    Alcotest.test_case "durable-seam fixture" `Quick test_durable;
    Alcotest.test_case "obs-seam fixture" `Quick test_obs;
    Alcotest.test_case "exception-swallowing fixture" `Quick test_swallow;
    Alcotest.test_case "model-checker determinism fixture" `Quick
      test_explore_fixture;
    Alcotest.test_case "auditor-contract fixture" `Quick test_audit_fixture;
    Alcotest.test_case "parallel-backend obs fixture" `Quick
      test_domains_fixture;
    Alcotest.test_case "justified suppression lints clean" `Quick
      test_suppressed_ok;
    Alcotest.test_case "bare suppression is flagged" `Quick
      test_suppressed_bare;
    Alcotest.test_case "interface-hygiene fixture" `Quick test_iface;
    Alcotest.test_case "path-derived rule contexts" `Quick test_default_ctx;
    Alcotest.test_case "production tree lints clean" `Quick
      test_production_clean;
  ]
