(* Forensic accountability (lib/audit): the online blame auditor.

   The contract is asymmetric and both halves are enforced here over
   seeded sweeps and targeted adversaries:

   - zero false blame: accused ⊆ Byzantine pids, always — under link
     chaos, crash-restarts, and consistent liars (naysayers, false
     witnesses, stale replayers) who are unimpeachable by the model;
   - recall: every detectable lie (Chaos.detectable, plus the shm
     adversaries of lnd_byz that retract/garble/overwrite) yields an
     accusation against the lying pid, backed by event indices that
     line up with the exported JSONL trace. *)

module Audit = Lnd_audit.Audit
module Chaos = Lnd_fuzz.Chaos
module Obs = Lnd_obs.Obs
module Trace = Lnd_obs.Trace
module Quorum = Lnd_support.Quorum
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy

let pids = Alcotest.(list int)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* ---- chaos sweeps: the acceptance bar of the auditor ---- *)

let sweep ~gen ~from ~count () =
  let adversarial = ref 0 in
  for seed = from to from + count - 1 do
    let s = gen seed in
    let out, tr, rp = Chaos.run_audited ~keep:Chaos.compact_keep s in
    (match out with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "seed %d failed: %s" seed msg);
    let acc = Audit.accused rp in
    let byz = Chaos.byzantine_pids s in
    let det = Chaos.detectable s in
    if det <> [] then incr adversarial;
    if not (subset acc byz) then
      Alcotest.failf "seed %d: FALSE BLAME — accused %s, byzantine %s" seed
        (String.concat "," (List.map string_of_int acc))
        (String.concat "," (List.map string_of_int byz));
    if not (subset det acc) then
      Alcotest.failf "seed %d: MISSED — detectable %s, accused %s" seed
        (String.concat "," (List.map string_of_int det))
        (String.concat "," (List.map string_of_int acc));
    (* evidence indices are line numbers of the JSONL export *)
    let lines =
      List.filter
        (fun l -> l <> "")
        (String.split_on_char '\n' (Trace.to_jsonl tr))
    in
    Alcotest.(check bool)
      "auditor saw no more events than the trace recorded" true
      (rp.Audit.rp_events <= List.length lines);
    List.iter
      (fun (a : Audit.accusation) ->
        List.iter
          (fun (e : Audit.evidence) ->
            if e.Audit.ev_index < 0 || e.Audit.ev_index >= List.length lines
            then
              Alcotest.failf "seed %d: evidence index %d out of trace range"
                seed e.Audit.ev_index;
            let line = List.nth lines e.Audit.ev_index in
            let stamp = Printf.sprintf "\"at\":%d" e.Audit.ev_at in
            let m = String.length stamp and n = String.length line in
            let rec found i =
              i + m <= n && (String.sub line i m = stamp || found (i + 1))
            in
            if not (found 0) then
              Alcotest.failf
                "seed %d: evidence #%d cites t=%d but trace line reads %s"
                seed e.Audit.ev_index e.Audit.ev_at line)
          a.Audit.acc_evidence)
      rp.Audit.rp_accusations;
    Jsonchk.check ~what:"audit report" (Audit.report_to_json rp)
  done;
  (* guard against a degenerate generator silently weakening the sweep *)
  if count >= 30 && !adversarial < 3 then
    Alcotest.failf "only %d adversarial scenarios in %d seeds" !adversarial
      count

(* ---- shm adversaries: Algorithms 1 and 2 under the lnd_byz strategies ---- *)

(* Run [body] with the auditor installed behind the seam (full event
   stream — the shm detectors need the per-write [Shm_access] records
   that [Chaos.compact_keep] drops), then return the finalized report. *)
let with_audit ~n ~f body =
  let au = Audit.create ~q:(Quorum.make_relaxed ~n ~f) () in
  Obs.install (Audit.sink au);
  Fun.protect ~finally:(fun () -> Obs.uninstall ()) body;
  au

let check_verdict ~what ~byz ~expect rp =
  let acc = Audit.accused rp in
  if not (subset acc byz) then
    Alcotest.failf "%s: FALSE BLAME — accused %s" what
      (String.concat "," (List.map string_of_int acc));
  match expect with
  | [] ->
      Alcotest.(check pids) (what ^ ": consistent liar stays unaccused") []
        acc
  | _ ->
      List.iter
        (fun p ->
          if not (List.mem p acc) then
            Alcotest.failf "%s: p%d lied but was not accused (report: %s)"
              what p
              (Format.asprintf "%a" Audit.pp_report rp))
        expect

let run_to_quiescence ~what sched_run =
  match sched_run () with
  | Sched.Quiescent | Sched.Condition_met -> ()
  | Sched.Budget_exhausted -> Alcotest.failf "%s: step budget exhausted" what

let sticky_case ~what ~byzantine ~expect spawn () =
  let module Sys = Lnd_sticky.System in
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed:7) ~n ~f ~byzantine () in
  let au =
    with_audit ~n ~f (fun () ->
        spawn t;
        (if not (List.mem 0 byzantine) then
           ignore
             (Sys.client t ~pid:0 ~name:"w" (fun () -> Sys.op_write t "w")));
        (* asymmetric read counts: once the short readers finish, the
           survivor's rounds are the only ones a per-reply liar answers,
           so a flip-flopping story lands in one mailbox row *)
        List.iter
          (fun (pid, reads) ->
            if not (List.mem pid byzantine) then
              ignore
                (Sys.client t ~pid
                   ~name:(Printf.sprintf "r%d" pid)
                   (fun () ->
                     for _ = 1 to reads do
                       ignore (Sys.op_read t ~pid)
                     done)))
          [ (1, 4); (2, 1); (3, 1) ];
        run_to_quiescence ~what (fun () -> Sys.run ~max_steps:4_000_000 t))
  in
  check_verdict ~what ~byz:byzantine ~expect (Audit.finalize au)

let verifiable_case ~what ~byzantine ~expect ?(value = "v") spawn () =
  let module Sys = Lnd_verifiable.System in
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed:7) ~n ~f ~byzantine () in
  let au =
    with_audit ~n ~f (fun () ->
        spawn t;
        (if not (List.mem 0 byzantine) then
           ignore
             (Sys.client t ~pid:0 ~name:"w" (fun () ->
                  Sys.op_write t value;
                  ignore (Sys.op_sign t value))));
        List.iter
          (fun pid ->
            if not (List.mem pid byzantine) then
              ignore
                (Sys.client t ~pid
                   ~name:(Printf.sprintf "v%d" pid)
                   (fun () ->
                     ignore (Sys.op_verify t ~pid value);
                     ignore (Sys.op_verify t ~pid value))))
          [ 1; 2; 3 ];
        run_to_quiescence ~what (fun () -> Sys.run ~max_steps:4_000_000 t))
  in
  check_verdict ~what ~byz:byzantine ~expect (Audit.finalize au)

module Bs = Lnd_byz.Byz_sticky
module Bv = Lnd_byz.Byz_verifiable

let sticky_tests =
  [
    ( "sticky: equivocating writer caught",
      sticky_case ~what:"sticky equivocator" ~byzantine:[ 0 ] ~expect:[ 0 ]
        (fun t ->
          ignore
            (Bs.spawn_equivocating_writer t.sched t.regs ~va:"a" ~vb:"b"
               ~flip_after:2 ())) );
    ( "sticky: denying writer caught",
      sticky_case ~what:"sticky denier" ~byzantine:[ 0 ] ~expect:[ 0 ]
        (fun t ->
          ignore
            (Bs.spawn_denying_writer t.sched t.regs ~v:"kept" ~deny_after:4 ()))
    );
    ( "sticky: flip-flopping helper caught",
      sticky_case ~what:"sticky flipflop" ~byzantine:[ 3 ] ~expect:[ 3 ]
        (fun t -> ignore (Bs.spawn_flipflop t.sched t.regs ~pid:3 ~v:"w")) );
    ( "sticky: garbage writer caught",
      sticky_case ~what:"sticky garbage" ~byzantine:[ 3 ] ~expect:[ 3 ]
        (fun t -> ignore (Bs.spawn_garbage t.sched t.regs ~pid:3)) );
    ( "sticky: naysayer is a consistent liar — unaccused",
      sticky_case ~what:"sticky naysayer" ~byzantine:[ 3 ] ~expect:[]
        (fun t -> ignore (Bs.spawn_naysayer t.sched t.regs ~pid:3)) );
    ( "sticky: stale replayer is consistent — unaccused",
      sticky_case ~what:"sticky stale-replayer" ~byzantine:[ 3 ] ~expect:[]
        (fun t -> ignore (Bs.spawn_stale_replayer t.sched t.regs ~pid:3)) );
    ( "sticky: false witness sticks to its story — unaccused",
      sticky_case ~what:"sticky false-witness" ~byzantine:[ 3 ] ~expect:[]
        (fun t ->
          ignore (Bs.spawn_false_witness t.sched t.regs ~pid:3 ~v:"fake")) );
  ]

let verifiable_tests =
  [
    ( "verifiable: equivocating writer caught",
      verifiable_case ~what:"verifiable equivocator" ~byzantine:[ 0 ]
        ~expect:[ 0 ] ~value:"a" (fun t ->
          ignore (Bv.spawn_equivocating_writer t.sched t.regs ~va:"a" ~vb:"b"))
    );
    ( "verifiable: denying writer caught",
      verifiable_case ~what:"verifiable denier" ~byzantine:[ 0 ] ~expect:[ 0 ]
        ~value:"lie" (fun t ->
          ignore
            (Bv.spawn_denying_writer t.sched t.regs ~v:"lie" ~deny_after:4 ()))
    );
    ( "verifiable: flip-flopping colluder caught",
      verifiable_case ~what:"verifiable flipflop" ~byzantine:[ 3 ]
        ~expect:[ 3 ] (fun t ->
          ignore (Bv.spawn_flipflop t.sched t.regs ~pid:3 ~v:"v")) );
    ( "verifiable: garbage writer caught",
      verifiable_case ~what:"verifiable garbage" ~byzantine:[ 3 ] ~expect:[ 3 ]
        (fun t -> ignore (Bv.spawn_garbage t.sched t.regs ~pid:3)) );
    ( "verifiable: sign-without-write pinned on the writer",
      verifiable_case ~what:"sign-without-write" ~byzantine:[ 0 ]
        ~expect:[ 0 ] ~value:"ghost" (fun t ->
          ignore (Bv.spawn_sign_without_write t.sched t.regs ~v:"ghost")) );
    ( "verifiable: naysayer unaccused",
      verifiable_case ~what:"verifiable naysayer" ~byzantine:[ 3 ] ~expect:[]
        (fun t -> ignore (Bv.spawn_naysayer t.sched t.regs ~pid:3)) );
    ( "verifiable: stale replayer unaccused",
      verifiable_case ~what:"verifiable stale-replayer" ~byzantine:[ 3 ]
        ~expect:[] (fun t ->
          ignore (Bv.spawn_stale_replayer t.sched t.regs ~pid:3)) );
    ( "verifiable: false witness unaccused",
      verifiable_case ~what:"verifiable false-witness" ~byzantine:[ 3 ]
        ~expect:[] (fun t ->
          ignore (Bv.spawn_false_witness t.sched t.regs ~pid:3 ~v:"evil")) );
    ( "verifiable: selective responder unaccused",
      verifiable_case ~what:"verifiable selective" ~byzantine:[ 3 ] ~expect:[]
        (fun t -> ignore (Bv.spawn_selective t.sched t.regs ~pid:3 ~v:"v")) );
  ]

(* ---- signature property: VERIFY without a SIGN, judged end-of-stream ---- *)

let test_verify_without_sign () =
  let au = Audit.create ~q:(Quorum.make_relaxed ~n:4 ~f:1) () in
  Obs.install (Audit.sink au);
  Fun.protect
    ~finally:(fun () -> Obs.uninstall ())
    (fun () ->
      let s = Obs.span_open ~pid:2 ~name:"VERIFY" ~arg:"ghost" () in
      Obs.span_close ~pid:2 ~result:"true" ~name:"VERIFY" s);
  let rp = Audit.finalize ~writer:0 au in
  Alcotest.(check pids) "the writer is accused, not the reader" [ 0 ]
    (Audit.accused rp);
  match rp.Audit.rp_accusations with
  | [ a ] ->
      Alcotest.(check string) "rule" "verify-without-sign" a.Audit.acc_rule
  | l -> Alcotest.failf "expected one accusation, got %d" (List.length l)

let test_verify_with_sign_ok () =
  let au = Audit.create ~q:(Quorum.make_relaxed ~n:4 ~f:1) () in
  Obs.install (Audit.sink au);
  Fun.protect
    ~finally:(fun () -> Obs.uninstall ())
    (fun () ->
      let s = Obs.span_open ~pid:0 ~name:"SIGN" ~arg:"v" () in
      Obs.span_close ~pid:0 ~result:"true" ~name:"SIGN" s;
      let s = Obs.span_open ~pid:2 ~name:"VERIFY" ~arg:"v" () in
      Obs.span_close ~pid:2 ~result:"true" ~name:"VERIFY" s);
  let rp = Audit.finalize ~writer:0 au in
  Alcotest.(check pids) "signed value verifies blamelessly" []
    (Audit.accused rp);
  (* a failed VERIFY certifies nothing either *)
  let au = Audit.create ~q:(Quorum.make_relaxed ~n:4 ~f:1) () in
  Obs.install (Audit.sink au);
  Fun.protect
    ~finally:(fun () -> Obs.uninstall ())
    (fun () ->
      let s = Obs.span_open ~pid:2 ~name:"VERIFY" ~arg:"ghost" () in
      Obs.span_close ~pid:2 ~result:"false" ~name:"VERIFY" s);
  Alcotest.(check pids) "VERIFY=false charges nobody" []
    (Audit.accused (Audit.finalize ~writer:0 au))

(* ---- the legacy-epochs bug is caught as an epoch replay ---- *)

let test_epoch_replay () =
  let s = { (Chaos.generate_crash 4) with Chaos.epoch_bump = false } in
  (* without the incarnation bump the restarted replica re-announces
     under its old epoch: its traffic may be swallowed by stale dedup
     state (the pre-epoch bug), and whether or not the run happens to
     terminate, the auditor pins the replayed epoch on the restarted
     pid *)
  let _out, _tr, rp = Chaos.run_audited ~keep:Chaos.compact_keep s in
  let victims = List.map (fun c -> c.Chaos.victim) s.Chaos.crashes in
  let replayers =
    List.filter_map
      (fun (a : Audit.accusation) ->
        if a.Audit.acc_rule = "epoch-replay" then Some a.Audit.acc_pid
        else None)
      rp.Audit.rp_accusations
  in
  (* the scenario may also carry a genuine Byzantine adversary — its
     accusations ride along; the epoch-replay ones must name exactly
     the restarted (otherwise-correct) victims *)
  let byz = Chaos.byzantine_pids s in
  List.iter
    (fun (a : Audit.accusation) ->
      if
        a.Audit.acc_rule <> "epoch-replay"
        && not (List.mem a.Audit.acc_pid byz)
      then
        Alcotest.failf "non-epoch accusation under legacy epochs:@.%a"
          Audit.pp_report rp)
    rp.Audit.rp_accusations;
  Alcotest.(check bool) "a restarted victim is named" true
    (List.exists (fun p -> List.mem p victims) replayers);
  Alcotest.(check bool) "only victims (or byzantine pids) replay epochs" true
    (subset replayers (victims @ byz))

(* ---- watchdog stalls are diagnosed, never charged ---- *)

let test_stall_never_charged () =
  let au = Audit.create ~q:(Quorum.make_relaxed ~n:4 ~f:1) () in
  Audit.observe au
    {
      Obs.at = 17;
      pid = 2;
      span = 0;
      kind =
        Obs.Watchdog_stall
          { fid = 1; fname = "r2"; op = "read"; deadline = 10 };
    };
  let rp = Audit.finalize au in
  Alcotest.(check int) "stall counted" 1 rp.Audit.rp_stalls;
  Alcotest.(check pids) "stall not charged" [] (Audit.accused rp)

let tests =
  [
    Alcotest.test_case "link chaos seeds 1-60: full recall, zero false blame"
      `Quick
      (sweep ~gen:Chaos.generate ~from:1 ~count:60);
    Alcotest.test_case "crash chaos seeds 1-60: full recall, zero false blame"
      `Quick
      (sweep ~gen:Chaos.generate_crash ~from:1 ~count:60);
    Alcotest.test_case "link chaos seeds 61-120" `Slow
      (sweep ~gen:Chaos.generate ~from:61 ~count:60);
    Alcotest.test_case "crash chaos seeds 61-120" `Slow
      (sweep ~gen:Chaos.generate_crash ~from:61 ~count:60);
    Alcotest.test_case "verify-without-sign accuses the writer" `Quick
      test_verify_without_sign;
    Alcotest.test_case "verify with sign (or failed verify) accuses nobody"
      `Quick test_verify_with_sign_ok;
    Alcotest.test_case "legacy epochs: replay pinned on restarted pid" `Quick
      test_epoch_replay;
    Alcotest.test_case "watchdog stall is never an accusation" `Quick
      test_stall_never_charged;
  ]
  @ List.map (fun (n, f) -> Alcotest.test_case n `Quick f) sticky_tests
  @ List.map (fun (n, f) -> Alcotest.test_case n `Quick f) verifiable_tests
