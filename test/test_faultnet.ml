(* Network fault layer tests: Faultnet determinism and fairness, the
   Rlink retransmission layer, zero-plan equivalence with the reliable
   Net, and the chaos fuzzer stress sweep (protocols under sustained
   drop/duplication/reorder + healing partitions). *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Net = Lnd_msgpass.Net
module Faultnet = Lnd_msgpass.Faultnet
module Rlink = Lnd_msgpass.Rlink
module Transport = Lnd_msgpass.Transport
module St = Lnd_msgpass.Auth_broadcast
module Chaos = Lnd_fuzz.Chaos

let run_ok ?(max_steps = 2_000_000) sched =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent ->
      (match Sched.failures sched with
      | [] -> ()
      | ((f : Sched.fiber), e) :: _ ->
          Alcotest.failf "fiber %s failed: %s" f.Sched.fname
            (Printexc.to_string e))
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

(* ---------------- Net: independent cursors ---------------- *)

let test_net_two_ports () =
  (* two ports of the same pid each see the whole log: receive cursors
     are per port, not per process *)
  let space = Space.create ~n:2 in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let net = Net.create space ~n:2 in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"sender" (fun () ->
         let p = Net.port net ~pid:0 in
         Net.send p ~dst:1 (Univ.inj Univ.int 7);
         Net.send p ~dst:1 (Univ.inj Univ.int 8)));
  run_ok sched;
  let got_a = ref [] and got_b = ref [] in
  ignore
    (Sched.spawn sched ~pid:1 ~name:"receiver" (fun () ->
         let a = Net.port net ~pid:1 in
         let b = Net.port net ~pid:1 in
         got_a := List.filter_map (Univ.prj Univ.int) (Net.poll_from a ~src:0);
         got_b := List.filter_map (Univ.prj Univ.int) (Net.poll_from b ~src:0)));
  run_ok sched;
  Alcotest.(check (list int)) "port a sees all" [ 7; 8 ] !got_a;
  Alcotest.(check (list int)) "port b sees all independently" [ 7; 8 ] !got_b

(* ---------------- zero plan ≡ Net ---------------- *)

(* Run a small ST-broadcast system over the given endpoint factory and
   return (per-pid accepted check, total steps). *)
let run_st_on ~mk_ep =
  let n = 4 and f = 1 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:11) in
  let net = Net.create space ~n in
  let procs = Array.make n None in
  for pid = 0 to n - 1 do
    let t =
      St.create (mk_ep net ~pid) ~n ~f
        ~accept_cb:(fun ~sender:_ ~value:_ ~seq:_ -> ())
    in
    procs.(pid) <- Some t;
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "st%d" pid) ~daemon:true
         (fun () -> St.daemon t))
  done;
  ignore
    (Sched.spawn sched ~pid:0 ~name:"bc" (fun () ->
         ignore (St.broadcast (Option.get procs.(0)) "a");
         ignore (St.broadcast (Option.get procs.(0)) "b")));
  for pid = 0 to n - 1 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "wait%d" pid) (fun () ->
           let t = Option.get procs.(pid) in
           while
             not
               (St.accepted t ~sender:0 ~value:"a" ~seq:0
               && St.accepted t ~sender:0 ~value:"b" ~seq:1)
           do
             Sched.yield ()
           done))
  done;
  run_ok sched;
  let accepted =
    Array.map
      (function
        | None -> false
        | Some t ->
            St.accepted t ~sender:0 ~value:"a" ~seq:0
            && St.accepted t ~sender:0 ~value:"b" ~seq:1)
      procs
  in
  (accepted, Sched.steps sched)

let test_zero_plan_equivalence () =
  let acc_net, steps_net =
    run_st_on ~mk_ep:(fun net ~pid -> Transport.of_net (Net.port net ~pid))
  in
  let acc_fn, steps_fn =
    run_st_on ~mk_ep:(fun net ~pid ->
        Faultnet.transport (Faultnet.wrap net Faultnet.zero) ~pid)
  in
  Alcotest.(check (array bool)) "same acceptance" acc_net acc_fn;
  Alcotest.(check int) "same step count (no hidden scheduling points)"
    steps_net steps_fn

(* ---------------- determinism ---------------- *)

let lossy_plan seed =
  {
    Faultnet.fault_seed = seed;
    drop_pct = 35;
    dup_pct = 30;
    delay_pct = 50;
    max_delay = 40;
    fair_burst = 2;
    partitions = [];
  }

(* Send 30 numbered messages 0→1 through a faulty link and record the
   receiver-side delivery order. *)
let delivery_trace plan =
  let space = Space.create ~n:2 in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let net = Net.create space ~n:2 in
  let fnet = Faultnet.wrap net plan in
  let got = ref [] in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"sender" (fun () ->
         let p = Faultnet.port fnet ~pid:0 in
         for i = 1 to 30 do
           Faultnet.send p ~dst:1 (Univ.inj Univ.int i);
           Sched.yield ()
         done));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"receiver" (fun () ->
         let p = Faultnet.port fnet ~pid:1 in
         (* drain long enough for every delayed message to mature *)
         for _ = 1 to 200 do
           List.iter
             (fun m ->
               match Univ.prj Univ.int m with
               | Some i -> got := i :: !got
               | None -> ())
             (Faultnet.poll_from p ~src:0);
           Sched.yield ()
         done));
  run_ok sched;
  List.rev !got

let test_same_seed_same_trace () =
  let t1 = delivery_trace (lossy_plan 3) in
  let t2 = delivery_trace (lossy_plan 3) in
  Alcotest.(check (list int)) "identical delivery trace" t1 t2;
  Alcotest.(check bool) "faults actually fired (not a perfect FIFO run)" true
    (t1 <> List.init 30 (fun i -> i + 1))

let test_different_seed_different_trace () =
  let t1 = delivery_trace (lossy_plan 3) in
  let t2 = delivery_trace (lossy_plan 4) in
  Alcotest.(check bool) "different fault seed, different trace" true (t1 <> t2)

let test_reordering_occurs () =
  let plan =
    {
      Faultnet.fault_seed = 9;
      drop_pct = 0;
      dup_pct = 0;
      delay_pct = 60;
      max_delay = 50;
      fair_burst = 0;
      partitions = [];
    }
  in
  let t = delivery_trace plan in
  Alcotest.(check (list int))
    "nothing lost (delay only)"
    (List.init 30 (fun i -> i + 1))
    (List.sort compare t);
  Alcotest.(check bool) "delivery order differs from send order" true
    (t <> List.init 30 (fun i -> i + 1))

let test_fair_burst_forces_delivery () =
  (* drop everything — the fairness cap alone lets every (burst+1)-th
     message through *)
  let plan =
    {
      Faultnet.fault_seed = 1;
      drop_pct = 100;
      dup_pct = 0;
      delay_pct = 0;
      max_delay = 0;
      fair_burst = 2;
      partitions = [];
    }
  in
  let t = delivery_trace plan in
  Alcotest.(check (list int)) "every third message forced through"
    [ 3; 6; 9; 12; 15; 18; 21; 24; 27; 30 ] t

(* ---------------- Rlink ---------------- *)

let test_rlink_exactly_once () =
  (* heavy drop + duplication + reorder; the reliable link must deliver
     every message exactly once *)
  let space = Space.create ~n:2 in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:7) in
  let net = Net.create space ~n:2 in
  let fnet = Faultnet.wrap net (lossy_plan 5) in
  let sender = Rlink.create (Faultnet.transport fnet ~pid:0) in
  let receiver = Rlink.create (Faultnet.transport fnet ~pid:1) in
  let total = 25 in
  let got = ref [] in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"sender" (fun () ->
         for i = 1 to total do
           Rlink.send sender ~dst:1 (Univ.inj Univ.int i)
         done;
         (* pump until everything is acked *)
         while Rlink.pending sender > 0 do
           ignore (Rlink.poll_all sender);
           Sched.yield ()
         done));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"receiver" (fun () ->
         (* keep pumping past the last delivery: the final acks can be
            dropped too, and only a retransmission-reack round heals that *)
         while List.length !got < total || Rlink.pending sender > 0 do
           List.iter
             (fun (_, m) ->
               match Univ.prj Univ.int m with
               | Some i -> got := i :: !got
               | None -> ())
             (Rlink.poll_all receiver);
           Sched.yield ()
         done));
  run_ok sched;
  Alcotest.(check (list int)) "every message exactly once"
    (List.init total (fun i -> i + 1))
    (List.sort compare !got);
  let st = Rlink.stats sender in
  Alcotest.(check bool) "losses actually forced retransmissions" true
    (st.Rlink.retransmissions > 0);
  Alcotest.(check int) "nothing left in flight" 0 (Rlink.pending sender)

let test_rlink_partition_heals () =
  (* the message is sent while the link is cut; retransmission delivers
     it after the partition heals *)
  let space = Space.create ~n:2 in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let net = Net.create space ~n:2 in
  let plan =
    {
      Faultnet.zero with
      Faultnet.partitions =
        [ { Faultnet.cut_from = 0; cut_until = 2_000; island = [ 1 ] } ];
    }
  in
  let fnet = Faultnet.wrap net plan in
  let sender = Rlink.create (Faultnet.transport fnet ~pid:0) in
  let receiver = Rlink.create (Faultnet.transport fnet ~pid:1) in
  let got = ref [] in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"sender" (fun () ->
         Rlink.send sender ~dst:1 (Univ.inj Univ.int 99);
         while Rlink.pending sender > 0 do
           ignore (Rlink.poll_all sender);
           Sched.yield ()
         done));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"receiver" (fun () ->
         while !got = [] do
           List.iter
             (fun (_, m) ->
               match Univ.prj Univ.int m with
               | Some i ->
                   got := i :: !got;
                   Alcotest.(check bool) "delivered only after healing" true
                     (Sched.now () >= 2_000)
               | None -> ())
             (Rlink.poll_all receiver);
           Sched.yield ()
         done));
  run_ok sched;
  Alcotest.(check (list int)) "delivered exactly once" [ 99 ] !got;
  Alcotest.(check bool) "partition cut the first copy" true
    ((Faultnet.stats fnet).Faultnet.cut > 0)

let test_rlink_inert_on_reliable () =
  (* over the zero plan the reliable-link layer must not retransmit *)
  let space = Space.create ~n:2 in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let net = Net.create space ~n:2 in
  let fnet = Faultnet.wrap net Faultnet.zero in
  let sender = Rlink.create (Faultnet.transport fnet ~pid:0) in
  let receiver = Rlink.create (Faultnet.transport fnet ~pid:1) in
  let got = ref [] in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"sender" (fun () ->
         for i = 1 to 10 do
           Rlink.send sender ~dst:1 (Univ.inj Univ.int i)
         done;
         while Rlink.pending sender > 0 do
           ignore (Rlink.poll_all sender);
           Sched.yield ()
         done));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"receiver" (fun () ->
         while List.length !got < 10 do
           List.iter
             (fun (_, m) ->
               match Univ.prj Univ.int m with
               | Some i -> got := i :: !got
               | None -> ())
             (Rlink.poll_all receiver);
           Sched.yield ()
         done));
  run_ok sched;
  Alcotest.(check (list int)) "all delivered in order"
    (List.init 10 (fun i -> i + 1))
    (List.rev !got);
  let st = Rlink.stats sender in
  Alcotest.(check int) "zero retransmissions" 0 st.Rlink.retransmissions;
  Alcotest.(check int) "zero redundant deliveries" 0
    (Rlink.stats receiver).Rlink.redundant

(* ---------------- chaos stress sweep ---------------- *)

let test_chaos_sweep () =
  (* >= 50 seeded scenarios across all three protocols, >= 20% drop,
     duplication and reorder plus healing partitions — liveness and
     safety must survive every one *)
  for seed = 1 to 60 do
    match Chaos.run_seed seed with
    | Ok _ -> ()
    | Error msg ->
        Alcotest.failf "chaos seed %d (%s): %s" seed
          (Format.asprintf "%a" Chaos.pp_scenario (Chaos.generate seed))
          msg
  done

let test_chaos_replayable () =
  (* same seed: identical scenario, identical run, identical stats *)
  match (Chaos.run_seed 9, Chaos.run_seed 9) with
  | Ok a, Ok b ->
      Alcotest.(check int) "same steps" a.Chaos.steps b.Chaos.steps;
      Alcotest.(check int) "same drops" a.Chaos.net_stats.Faultnet.dropped
        b.Chaos.net_stats.Faultnet.dropped;
      Alcotest.(check int) "same retransmissions" a.Chaos.retransmissions
        b.Chaos.retransmissions
  | _ -> Alcotest.fail "seed 9 must pass"

let tests =
  [
    Alcotest.test_case "net: two ports, independent cursors" `Quick
      test_net_two_ports;
    Alcotest.test_case "faultnet: zero plan ≡ net (results and steps)" `Quick
      test_zero_plan_equivalence;
    Alcotest.test_case "faultnet: same seed, same delivery trace" `Quick
      test_same_seed_same_trace;
    Alcotest.test_case "faultnet: different seed, different trace" `Quick
      test_different_seed_different_trace;
    Alcotest.test_case "faultnet: bounded delay reorders" `Quick
      test_reordering_occurs;
    Alcotest.test_case "faultnet: fair burst forces delivery at drop=100"
      `Quick test_fair_burst_forces_delivery;
    Alcotest.test_case "rlink: exactly-once over lossy link" `Quick
      test_rlink_exactly_once;
    Alcotest.test_case "rlink: recovers after partition heals" `Quick
      test_rlink_partition_heals;
    Alcotest.test_case "rlink: inert over reliable link" `Quick
      test_rlink_inert_on_reliable;
    Alcotest.test_case "chaos: 60-seed protocol sweep" `Quick test_chaos_sweep;
    Alcotest.test_case "chaos: replayable from seed" `Quick
      test_chaos_replayable;
  ]
