(* The bounded model checker: DPOR agrees with the naive DFS on outcome
   sets while exploring fewer schedules, finds a planted mutual-exclusion
   bug, reports exhaustion on clean programs, and its counterexamples
   replay deterministically. Plus the Policy.scripted edge cases the
   naive explorer's trail encoding relies on. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime

let int_reg space ~name ~owner =
  Space.alloc space ~name ~owner ~init:(Univ.inj Univ.int 0) ()

let read_int r = Univ.prj_default Univ.int ~default:(-1) (Sched.read r)

(* ---------------- DPOR vs naive DFS on the read/write race ----------- *)

(* Two increment-via-read-then-write fibers plus cross-register reads:
   the final register contents depend on the interleaving. Both explorers
   must observe exactly the same set of outcomes; DPOR must do it in
   fewer runs. *)
let race_program () =
  let regs = ref None in
  let outcomes = ref [] in
  let make policy =
    let space = Space.create ~n:2 in
    let sched = Sched.create ~space ~choose:policy in
    let r = int_reg space ~name:"x" ~owner:0 in
    let r1 = int_reg space ~name:"y" ~owner:1 in
    regs := Some (r, r1);
    ignore
      (Sched.spawn sched ~pid:0 ~name:"a" (fun () ->
           let x = read_int r in
           let y = read_int r1 in
           Sched.write r (Univ.inj Univ.int (x + y + 1))));
    ignore
      (Sched.spawn sched ~pid:1 ~name:"b" (fun () ->
           let x = read_int r in
           Sched.write r1 (Univ.inj Univ.int (x + 1))));
    sched
  in
  let check _sched =
    match !regs with
    | Some (r, r1) ->
        let v = Univ.prj_default Univ.int ~default:(-1) r.Register.value in
        let w = Univ.prj_default Univ.int ~default:(-1) r1.Register.value in
        if not (List.mem (v, w) !outcomes) then outcomes := (v, w) :: !outcomes
    | None -> ()
  in
  (make, check, outcomes)

let test_dpor_agrees_with_dfs () =
  let make, check, outcomes = race_program () in
  let naive = Explore.exhaustive ~make ~check ~max_steps:100 () in
  let dfs_outcomes = List.sort compare !outcomes in
  outcomes := [];
  let make2, check2, outcomes2 = race_program () in
  ignore make;
  let reduced = Explore.dpor ~make:make2 ~check:check2 ~max_steps:100 () in
  ignore check;
  let dpor_outcomes = List.sort compare !outcomes2 in
  Alcotest.(check bool) "naive exhausted" true naive.Explore.exhausted;
  Alcotest.(check bool) "dpor exhausted" true reduced.Explore.exhausted;
  Alcotest.(check (list (pair int int)))
    "same outcome set" dfs_outcomes dpor_outcomes;
  Alcotest.(check bool)
    (Printf.sprintf "dpor explores fewer schedules (%d < %d)"
       reduced.Explore.runs naive.Explore.runs)
    true
    (reduced.Explore.runs < naive.Explore.runs);
  Alcotest.(check bool) "dpor saw a race" true (reduced.Explore.races > 0)

(* ---------------- A known-violating toy protocol --------------------- *)

(* Check-then-act "mutual exclusion" with the classic bug: each process
   checks the other's flag FIRST and only then raises its own; if both
   check before either write lands, both enter the critical section. The
   checker must find that interleaving. *)
exception Mutex_violated

let flags_program () =
  let entered = [| false; false |] in
  let make policy =
    entered.(0) <- false;
    entered.(1) <- false;
    let space = Space.create ~n:2 in
    let sched = Sched.create ~space ~choose:policy in
    let fa = int_reg space ~name:"flagA" ~owner:0 in
    let fb = int_reg space ~name:"flagB" ~owner:1 in
    ignore
      (Sched.spawn sched ~pid:0 ~name:"a" (fun () ->
           if read_int fb = 0 then begin
             Sched.write fa (Univ.inj Univ.int 1);
             entered.(0) <- true
           end));
    ignore
      (Sched.spawn sched ~pid:1 ~name:"b" (fun () ->
           if read_int fa = 0 then begin
             Sched.write fb (Univ.inj Univ.int 1);
             entered.(1) <- true
           end));
    sched
  in
  let check _sched = if entered.(0) && entered.(1) then raise Mutex_violated in
  (make, check)

let test_dpor_finds_mutex_bug () =
  let make, check = flags_program () in
  match Explore.dpor ~make ~check ~max_steps:50 () with
  | _ -> Alcotest.fail "expected a Violation"
  | exception Explore.Violation cx ->
      Alcotest.(check bool)
        "carries the checker's exception" true
        (cx.Explore.cx_exn = Mutex_violated);
      Alcotest.(check bool) "has a fid trail" true
        (match cx.Explore.cx_schedule with
        | Explore.Fids (_ :: _) -> true
        | _ -> false);
      (* one-call replay must reproduce the same violation *)
      let make2, check2 = flags_program () in
      (match Explore.replay ~make:make2 ~check:check2 cx.Explore.cx_schedule with
      | Error Mutex_violated -> ()
      | Error e ->
          Alcotest.failf "replay raised %s instead" (Printexc.to_string e)
      | Ok () -> Alcotest.fail "replay did not reproduce the violation")

(* The fixed variant: process 1 defers whenever it sees the other flag
   raised AND process 0 never checks (a trivially safe asymmetric
   protocol). Clean => exhausted with no violation. *)
let test_dpor_clean_exhausts () =
  let entered = [| false; false |] in
  let make policy =
    entered.(0) <- false;
    entered.(1) <- false;
    let space = Space.create ~n:2 in
    let sched = Sched.create ~space ~choose:policy in
    let fa = int_reg space ~name:"flagA" ~owner:0 in
    let fb = int_reg space ~name:"flagB" ~owner:1 in
    ignore
      (Sched.spawn sched ~pid:0 ~name:"a" (fun () ->
           Sched.write fa (Univ.inj Univ.int 1);
           ignore (read_int fb);
           entered.(0) <- true;
           Sched.write fa (Univ.inj Univ.int 0)));
    ignore
      (Sched.spawn sched ~pid:1 ~name:"b" (fun () ->
           Sched.write fb (Univ.inj Univ.int 1);
           (* enters only when A is finished for good: A lowers its flag
              after its critical section, and never raises it again *)
           if read_int fa = 0 && read_int fa = 0 then entered.(1) <- true));
    sched
  in
  let check _sched = () in
  let r = Explore.dpor ~make ~check ~max_steps:50 () in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check int) "nothing pruned" 0 r.Explore.pruned;
  Alcotest.(check bool) "several runs" true (r.Explore.runs >= 1)

(* ---------------- Policy.scripted edge cases ------------------------- *)

let two_fiber_program () =
  let space = Space.create ~n:2 in
  let steps = ref [] in
  fun policy ->
    let sched = Sched.create ~space:(Space.create ~n:2) ~choose:policy in
    ignore space;
    ignore
      (Sched.spawn sched ~pid:0 ~name:"a" (fun () ->
           steps := 0 :: !steps;
           Sched.yield ();
           steps := 0 :: !steps));
    ignore
      (Sched.spawn sched ~pid:1 ~name:"b" (fun () ->
           steps := 1 :: !steps;
           Sched.yield ();
           steps := 1 :: !steps));
    sched

let test_scripted_empty_script () =
  (* no script: always picks the lowest-fid ready fiber, and the trail
     records every decision with its branching degree *)
  let make = two_fiber_program () in
  let trail = ref [] in
  let sched = make (Policy.scripted ~script:[] ~trail) in
  let reason = Sched.run sched in
  Alcotest.(check bool) "quiescent" true (reason = Sched.Quiescent);
  let tr = List.rev !trail in
  Alcotest.(check (list (pair int int)))
    "all choices default to 0, degrees shrink as fibers finish"
    [ (0, 2); (0, 2); (0, 1); (0, 1) ]
    tr

let test_scripted_long_script () =
  (* a script longer than the run: surplus entries are simply unused;
     the trail length equals the actual number of decisions *)
  let make = two_fiber_program () in
  let trail = ref [] in
  let script = [ 1; 1; 0; 0; 0; 0; 0; 0; 0; 0; 0 ] in
  let sched = make (Policy.scripted ~script ~trail) in
  ignore (Sched.run sched);
  Alcotest.(check int) "four decisions, not eleven" 4 (List.length !trail)

let test_scripted_degree_mismatch () =
  (* a choice index past the branching degree is clamped to the last
     sibling instead of crashing — the explorer depends on this when a
     backtracked script meets a shallower subtree *)
  let make = two_fiber_program () in
  let trail = ref [] in
  let sched = make (Policy.scripted ~script:[ 7; 7; 7; 7 ] ~trail) in
  let reason = Sched.run sched in
  Alcotest.(check bool) "still quiescent" true (reason = Sched.Quiescent);
  List.iter
    (fun (c, d) ->
      Alcotest.(check bool) "choice within degree" true (c < d))
    !trail

let test_replay_diverged () =
  (* a fid trail that names a fiber the program does not have *)
  let make = two_fiber_program () in
  match
    Explore.replay ~make
      ~check:(fun _ -> ())
      (Explore.Fids [ 0; 99 ])
  with
  | _ -> Alcotest.fail "expected Replay_diverged"
  | exception Explore.Replay_diverged { at; _ } ->
      Alcotest.(check int) "diverged at step 1" 1 at

let tests =
  [
    Alcotest.test_case "dpor agrees with naive DFS on outcomes" `Quick
      test_dpor_agrees_with_dfs;
    Alcotest.test_case "dpor finds the flags mutex bug" `Quick
      test_dpor_finds_mutex_bug;
    Alcotest.test_case "dpor exhausts a clean protocol" `Quick
      test_dpor_clean_exhausts;
    Alcotest.test_case "scripted: empty script" `Quick
      test_scripted_empty_script;
    Alcotest.test_case "scripted: script longer than the run" `Quick
      test_scripted_long_script;
    Alcotest.test_case "scripted: degree mismatch clamps" `Quick
      test_scripted_degree_mismatch;
    Alcotest.test_case "replay: fid trail divergence is loud" `Quick
      test_replay_diverged;
  ]
