(* Message-passing substrate tests: the network, Srikanth-Toueg
   authenticated broadcast [10], the register emulation, and the Section 9
   corollary — the sticky register stacked on registers emulated over
   message passing. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Net = Lnd_msgpass.Net
module St = Lnd_msgpass.Auth_broadcast
module Regemu = Lnd_msgpass.Regemu

let run_ok ?(max_steps = 2_000_000) sched =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent ->
      (match Sched.failures sched with
      | [] -> ()
      | ((f : Sched.fiber), e) :: _ ->
          Alcotest.failf "fiber %s failed: %s" f.Sched.fname
            (Printexc.to_string e))
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

(* ---------------- Net ---------------- *)

let test_net_fifo () =
  let space = Space.create ~n:2 in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let net = Net.create space ~n:2 in
  let got = ref [] in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"sender" (fun () ->
         let p = Net.port net ~pid:0 in
         Net.send p ~dst:1 (Univ.inj Univ.int 1);
         Net.send p ~dst:1 (Univ.inj Univ.int 2);
         Net.send p ~dst:1 (Univ.inj Univ.int 3)));
  run_ok sched;
  ignore
    (Sched.spawn sched ~pid:1 ~name:"receiver" (fun () ->
         let p = Net.port net ~pid:1 in
         got :=
           List.filter_map (fun u -> Univ.prj Univ.int u) (Net.poll_from p ~src:0)));
  run_ok sched;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] !got

let test_net_cursor () =
  let space = Space.create ~n:2 in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let net = Net.create space ~n:2 in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"sender" (fun () ->
         let p = Net.port net ~pid:0 in
         Net.send p ~dst:1 (Univ.inj Univ.int 1)));
  run_ok sched;
  let first = ref [] and second = ref [] in
  ignore
    (Sched.spawn sched ~pid:1 ~name:"receiver" (fun () ->
         let p = Net.port net ~pid:1 in
         first := Net.poll_from p ~src:0;
         second := Net.poll_from p ~src:0));
  run_ok sched;
  Alcotest.(check int) "first poll sees it" 1 (List.length !first);
  Alcotest.(check int) "second poll sees nothing new" 0 (List.length !second)

let test_net_no_forgery () =
  (* a process cannot write into another's channel *)
  let space = Space.create ~n:3 in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let net = Net.create space ~n:3 in
  let caught = ref false in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"byz" (fun () ->
         (* try to write the 0→1 channel directly *)
         try Sched.write net.Net.chan.(0).(1) (Univ.inj Univ.int 666)
         with Space.Permission_violation _ -> caught := true));
  run_ok sched;
  Alcotest.(check bool) "channel forgery blocked" true !caught

(* ---------------- Srikanth-Toueg broadcast ---------------- *)

type st_sys = {
  sched : Sched.t;
  net : Net.t;
  procs : St.t option array;
  accepted : (int * Value.t * int) list ref array; (* per pid *)
}

let mk_st ?(seed = 5) ~n ~f ~byzantine () : st_sys =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let net = Net.create space ~n in
  let accepted = Array.init n (fun _ -> ref []) in
  let procs =
    Array.init n (fun pid ->
        if List.mem pid byzantine then None
        else begin
          let ep = Lnd_msgpass.Transport.of_net (Net.port net ~pid) in
          let t =
            St.create ep ~n ~f ~accept_cb:(fun ~sender ~value ~seq ->
                accepted.(pid) := (sender, value, seq) :: !(accepted.(pid)))
          in
          ignore
            (Sched.spawn sched ~pid ~name:(Printf.sprintf "st%d" pid)
               ~daemon:true (fun () -> St.daemon t));
          Some t
        end)
  in
  { sched; net; procs; accepted }

(* A "drain" client that keeps the run alive long enough for daemons to
   converge: takes [steps] no-op scheduling turns. *)
let spawn_drain (s : st_sys) ~steps =
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"drain" (fun () ->
         for _ = 1 to steps do
           Sched.yield ()
         done))

let test_st_correct_sender () =
  let n = 4 and f = 1 in
  let s = mk_st ~n ~f ~byzantine:[] () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"bcast" (fun () ->
         ignore (St.broadcast (Option.get s.procs.(0)) "hello")));
  spawn_drain s ~steps:2000;
  run_ok s.sched;
  for pid = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "p%d accepted" pid)
      true
      (List.mem (0, "hello", 0) !(s.accepted.(pid)))
  done

(* A Byzantine sender that inits only f+1 processes: by the relay rule,
   either nobody or everybody (correct) accepts — and with f+1 correct
   echoes everyone does. *)
let test_st_relay () =
  let n = 4 and f = 1 in
  let s = mk_st ~n ~f ~byzantine:[ 0 ] () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"byz-sender" (fun () ->
         let p = Net.port s.net ~pid:0 in
         (* init only p1 and p2, not p3 *)
         let m =
           Univ.inj St.bmsg_key
             { St.tag = St.Init; sender = 0; value = "partial"; seq = 0 }
         in
         Net.send p ~dst:1 m;
         Net.send p ~dst:2 m));
  spawn_drain s ~steps:4000;
  run_ok s.sched;
  let accepted pid = List.mem (0, "partial", 0) !(s.accepted.(pid)) in
  (* RELAY: all correct processes agree on acceptance *)
  Alcotest.(check bool) "p1 = p2" true (accepted 1 = accepted 2);
  Alcotest.(check bool) "p2 = p3" true (accepted 2 = accepted 3);
  (* and with f+1 = 2 correct echoes they do all accept *)
  Alcotest.(check bool) "all accepted" true (accepted 1 && accepted 3)

(* Unforgeability: f Byzantine processes echoing a message the sender
   never broadcast cannot get it accepted (needs 2f+1 echoes). *)
let test_st_unforgeability () =
  let n = 4 and f = 1 in
  let s = mk_st ~n ~f ~byzantine:[ 3 ] () in
  ignore
    (Sched.spawn s.sched ~pid:3 ~name:"byz-echoer" (fun () ->
         let p = Net.port s.net ~pid:3 in
         let m =
           Univ.inj St.bmsg_key
             { St.tag = St.Echo; sender = 0; value = "fake"; seq = 0 }
         in
         Net.broadcast p m;
         Net.broadcast p m));
  spawn_drain s ~steps:3000;
  run_ok s.sched;
  for pid = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "p%d did not accept fake" pid)
      false
      (List.mem (0, "fake", 0) !(s.accepted.(pid)))
  done

(* NON-uniqueness: a Byzantine sender can get TWO different messages with
   the same sequence number accepted — the gap sticky registers close
   (Section 1.2). *)
let test_st_no_uniqueness () =
  let n = 4 and f = 1 in
  let s = mk_st ~n ~f ~byzantine:[ 0 ] () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"byz-equivocator" (fun () ->
         let p = Net.port s.net ~pid:0 in
         let m v =
           Univ.inj St.bmsg_key { St.tag = St.Init; sender = 0; value = v; seq = 0 }
         in
         Net.broadcast p (m "a");
         Net.broadcast p (m "b")));
  spawn_drain s ~steps:4000;
  run_ok s.sched;
  let p1 = !(s.accepted.(1)) in
  Alcotest.(check bool)
    "both equivocating messages accepted (no uniqueness)" true
    (List.mem (0, "a", 0) p1 && List.mem (0, "b", 0) p1)

(* ---------------- Register emulation ---------------- *)

type emu_sys = { sched : Sched.t; emu : Regemu.t; net : Net.t }

(* The test owns the underlying [Net] (rather than letting [Regemu.create]
   wire it invisibly) so Byzantine fibers can inject raw traffic through a
   bare port — the emulation itself only ever sees the transport seam. *)
let mk_emu ?(seed = 7) ~n ~f ~byzantine () : emu_sys =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let net = Net.create space ~n in
  let emu =
    Regemu.create_on
      ~mk_ep:(fun ~pid -> Lnd_msgpass.Transport.of_net (Net.port net ~pid))
      ~n ~f
  in
  for pid = 0 to n - 1 do
    if not (List.mem pid byzantine) then
      ignore
        (Sched.spawn sched ~pid ~name:(Printf.sprintf "replica%d" pid)
           ~daemon:true (fun () -> Regemu.replica_daemon emu ~pid))
  done;
  { sched; emu; net }

let test_emu_write_read () =
  let s = mk_emu ~n:4 ~f:1 ~byzantine:[] () in
  let cell =
    Regemu.allocator s.emu ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 0) ()
  in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"writer" (fun () ->
         Cell.write cell (Univ.inj Univ.int 41);
         Cell.write cell (Univ.inj Univ.int 42)));
  run_ok s.sched;
  let got = ref (-1) in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"reader" (fun () ->
         got := Univ.prj_default Univ.int ~default:(-1) (Cell.read cell)));
  run_ok s.sched;
  Alcotest.(check int) "emulated read returns last write" 42 !got

let test_emu_initial_value () =
  let s = mk_emu ~n:4 ~f:1 ~byzantine:[] () in
  let cell =
    Regemu.allocator s.emu ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 7) ()
  in
  let got = ref (-1) in
  ignore
    (Sched.spawn s.sched ~pid:2 ~name:"reader" (fun () ->
         got := Univ.prj_default Univ.int ~default:(-1) (Cell.read cell)));
  run_ok s.sched;
  Alcotest.(check int) "initial value" 7 !got

let test_emu_non_owner_write_rejected () =
  let s = mk_emu ~n:4 ~f:1 ~byzantine:[] () in
  let cell =
    Regemu.allocator s.emu ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 0) ()
  in
  let caught = ref false in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"intruder" (fun () ->
         try Cell.write cell (Univ.inj Univ.int 9)
         with Space.Permission_violation _ -> caught := true));
  run_ok s.sched;
  Alcotest.(check bool) "emulated write port enforced" true !caught

(* Crashed replica (f of them silent): operations still complete. *)
let test_emu_with_crash () =
  let s = mk_emu ~n:4 ~f:1 ~byzantine:[ 3 ] () in
  let cell =
    Regemu.allocator s.emu ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 0) ()
  in
  let got = ref (-1) in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"writer" (fun () ->
         Cell.write cell (Univ.inj Univ.int 5)));
  run_ok s.sched;
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"reader" (fun () ->
         got := Univ.prj_default Univ.int ~default:(-1) (Cell.read cell)));
  run_ok s.sched;
  Alcotest.(check int) "write/read with crashed replica" 5 !got

(* Linearizability of emulated-register histories under concurrency, per
   recorded run (see DESIGN.md: empirical check of the emulation). *)
let test_emu_linearizable ~seed () =
  let module R = Lnd_history.Spec.Register_spec in
  let module RC = Lnd_history.Spec.Checker (R) in
  let s = mk_emu ~seed ~n:4 ~f:1 ~byzantine:[] () in
  let cell =
    Regemu.allocator s.emu ~name:"x" ~owner:0
      ~init:(Univ.inj Codecs.value Value.v0) ()
  in
  let h : (R.op, R.res) Lnd_history.History.t = Lnd_history.History.create () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"writer" (fun () ->
         List.iter
           (fun v ->
             ignore
               (Lnd_history.History.record h ~pid:0 (R.Write v) (fun () ->
                    Cell.write cell (Univ.inj Codecs.value v);
                    R.Done)))
           [ "a"; "b" ]));
  for pid = 1 to 3 do
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "reader%d" pid)
         (fun () ->
           for _ = 1 to 2 do
             ignore
               (Lnd_history.History.record h ~pid R.Read (fun () ->
                    R.Val
                      (Univ.prj_default Codecs.value ~default:Value.v0
                         (Cell.read cell))))
           done))
  done;
  run_ok s.sched;
  Alcotest.(check bool) "emulated register linearizable" true
    (RC.linearizable h)

(* ---------------- Section 9: sticky over emulated registers ------- *)

let test_sticky_over_msgpass () =
  let n = 4 and f = 1 in
  let s = mk_emu ~seed:11 ~n ~f ~byzantine:[] () in
  let module Sticky = Lnd_sticky.Sticky in
  let regs = Sticky.alloc_with (Regemu.allocator s.emu) { Sticky.n; f } in
  (* sticky Help daemons on top of the emulation *)
  for pid = 0 to n - 1 do
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "sticky-help%d" pid)
         ~daemon:true (fun () -> Sticky.help regs ~pid))
  done;
  let writer = Sticky.writer regs in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"writer" (fun () ->
         Sticky.write writer "over-msgpass"));
  run_ok ~max_steps:30_000_000 s.sched;
  for pid = 1 to n - 1 do
    let got = ref None in
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "reader%d" pid)
         (fun () -> got := Sticky.read (Sticky.reader regs ~pid)));
    run_ok ~max_steps:30_000_000 s.sched;
    Alcotest.(check (option string))
      (Printf.sprintf "sticky-over-msgpass read at p%d" pid)
      (Some "over-msgpass") !got
  done

(* Algorithm 1 over the emulation: write+sign, then every reader
   verifies. *)
let test_verifiable_over_msgpass () =
  let n = 4 and f = 1 in
  let s = mk_emu ~seed:13 ~n ~f ~byzantine:[] () in
  let module Vr = Lnd_verifiable.Verifiable in
  let regs = Vr.alloc_with (Regemu.allocator s.emu) { Vr.n; f } in
  for pid = 0 to n - 1 do
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "vr-help%d" pid)
         ~daemon:true (fun () -> Vr.help regs ~pid))
  done;
  let writer = Vr.writer regs in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"writer" (fun () ->
         Vr.write writer "lifted";
         let ok = Vr.sign writer "lifted" in
         if not ok then Alcotest.fail "sign failed"));
  run_ok ~max_steps:30_000_000 s.sched;
  for pid = 1 to n - 1 do
    let got = ref false in
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "verify%d" pid)
         (fun () -> got := Vr.verify (Vr.reader regs ~pid) "lifted"));
    run_ok ~max_steps:30_000_000 s.sched;
    Alcotest.(check bool)
      (Printf.sprintf "verify-over-msgpass at p%d" pid)
      true !got
  done

(* A lying replica fabricates replies with a huge timestamp; reads must
   not adopt an unvouched value (needs f+1 matching replies). *)
let test_emu_lying_replica () =
  let n = 4 and f = 1 in
  let s = mk_emu ~seed:17 ~n ~f ~byzantine:[ 3 ] () in
  let cell =
    Regemu.allocator s.emu ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 0) ()
  in
  (* Byzantine replica: answers every read request with a bogus value at
     timestamp 999. *)
  ignore
    (Sched.spawn s.sched ~pid:3 ~name:"byz-replica" ~daemon:true (fun () ->
         let port = Net.port s.net ~pid:3 in
         while true do
           List.iter
             (fun (src, payload) ->
               match Univ.prj Regemu.emsg_key payload with
               | Some (Regemu.Rreq (reg, rid)) ->
                   Net.send port ~dst:src
                     (Univ.inj Regemu.emsg_key
                        (Regemu.Rrep (reg, rid, 999, Univ.inj Univ.int 666)))
               | _ -> ())
             (Net.poll_all port);
           Sched.yield ()
         done));
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"writer" (fun () ->
         Cell.write cell (Univ.inj Univ.int 5)));
  run_ok s.sched;
  let got = ref (-1) in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"reader" (fun () ->
         got := Univ.prj_default Univ.int ~default:(-1) (Cell.read cell)));
  run_ok s.sched;
  Alcotest.(check int) "lying replica cannot poison reads" 5 !got

let tests =
  [
    Alcotest.test_case "net fifo" `Quick test_net_fifo;
    Alcotest.test_case "net cursors" `Quick test_net_cursor;
    Alcotest.test_case "net no forgery" `Quick test_net_no_forgery;
    Alcotest.test_case "ST: correct sender" `Quick test_st_correct_sender;
    Alcotest.test_case "ST: relay" `Quick test_st_relay;
    Alcotest.test_case "ST: unforgeability" `Quick test_st_unforgeability;
    Alcotest.test_case "ST: no uniqueness (motivates sticky)" `Quick
      test_st_no_uniqueness;
    Alcotest.test_case "emu: write/read" `Quick test_emu_write_read;
    Alcotest.test_case "emu: initial value" `Quick test_emu_initial_value;
    Alcotest.test_case "emu: write port enforced" `Quick
      test_emu_non_owner_write_rejected;
    Alcotest.test_case "emu: crashed replica" `Quick test_emu_with_crash;
    Alcotest.test_case "emu: linearizable (seed 21)" `Quick
      (test_emu_linearizable ~seed:21);
    Alcotest.test_case "emu: linearizable (seed 22)" `Quick
      (test_emu_linearizable ~seed:22);
    Alcotest.test_case "emu: linearizable (seed 23)" `Quick
      (test_emu_linearizable ~seed:23);
    Alcotest.test_case "sticky over message passing (Section 9)" `Slow
      test_sticky_over_msgpass;
    Alcotest.test_case "verifiable over message passing (Section 9)" `Slow
      test_verifiable_over_msgpass;
    Alcotest.test_case "emu: lying replica" `Quick test_emu_lying_replica;
  ]
