(* The reliable-broadcast object (Cohen-Keidar translated onto sticky
   registers) and the Bracha message-passing contrast. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Rb = Lnd_broadcast.Reliable
module Bracha = Lnd_msgpass.Bracha
module Net = Lnd_msgpass.Net

let run_ok ?(max_steps = 8_000_000) sched =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent -> ()
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

let mk_rb ?(seed = 3) ~n ~f ~slots ~byzantine () =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let rb = Rb.create space sched ~n ~f ~slots ~byzantine () in
  (sched, rb)

(* Multi-shot, multi-sender delivery. *)
let test_rb_multishot () =
  let sched, rb = mk_rb ~n:4 ~f:1 ~slots:3 ~byzantine:[] () in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"s0" (fun () ->
         ignore (Rb.bcast rb ~sender:0 "m0");
         ignore (Rb.bcast rb ~sender:0 "m1");
         ignore (Rb.bcast rb ~sender:0 "m2")));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"s1" (fun () ->
         ignore (Rb.bcast rb ~sender:1 "x0")));
  run_ok sched;
  let got = ref [] in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"d" (fun () ->
         got :=
           [
             Rb.deliver rb ~reader:2 ~sender:0 ~slot:0;
             Rb.deliver rb ~reader:2 ~sender:0 ~slot:1;
             Rb.deliver rb ~reader:2 ~sender:0 ~slot:2;
             Rb.deliver rb ~reader:2 ~sender:1 ~slot:0;
             Rb.deliver rb ~reader:2 ~sender:1 ~slot:1;
           ]));
  run_ok sched;
  Alcotest.(check (list (option string)))
    "sequence numbers respected"
    [ Some "m0"; Some "m1"; Some "m2"; Some "x0"; None ]
    !got

(* The recorded log is checked for uniqueness violations (none with a
   correct sender; none even with an equivocating Byzantine sender). *)
let test_rb_uniqueness_byz ~seed () =
  let sched, rb = mk_rb ~seed ~n:4 ~f:1 ~slots:1 ~byzantine:[ 0 ] () in
  ignore
    (Lnd_byz.Byz_sticky.spawn_equivocating_writer sched
       rb.Rb.neq.Lnd_broadcast.Broadcast.Neq.instances.(0).(0)
         .Lnd_broadcast.Broadcast.Neq.regs ~va:"yes" ~vb:"no" ~flip_after:2 ());
  for pid = 1 to 3 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "d%d" pid) (fun () ->
           ignore (Rb.deliver rb ~reader:pid ~sender:0 ~slot:0);
           ignore (Rb.deliver rb ~reader:pid ~sender:0 ~slot:0)))
  done;
  run_ok sched;
  Alcotest.(check (list string))
    "no uniqueness violations" []
    (Rb.uniqueness_violations rb ~correct:(fun pid -> pid <> 0))

(* Sequential spec sanity via direct application. *)
let test_rb_spec () =
  let open Rb.Rb_spec in
  let s0 = init in
  let s1, r1 = apply_by s0 ~pid:2 (Bcast "hello") in
  Alcotest.(check bool) "bcast done" true (res_equal r1 Done);
  let _, r2 = apply_by s1 ~pid:5 (Deliver (2, 0)) in
  Alcotest.(check bool) "deliver finds it" true (res_equal r2 (Msg (Some "hello")));
  let _, r3 = apply_by s1 ~pid:5 (Deliver (2, 1)) in
  Alcotest.(check bool) "missing slot" true (res_equal r3 (Msg None));
  let _, r4 = apply_by s1 ~pid:5 (Deliver (3, 0)) in
  Alcotest.(check bool) "other sender empty" true (res_equal r4 (Msg None))

(* ---------------- Bracha over message passing ---------------- *)

type bsys = {
  sched : Sched.t;
  net : Net.t;
  procs : Bracha.proc option array;
  delivered : (int * string * int) list ref array;
}

let mk_bracha ?(seed = 5) ~n ~f ~byzantine () : bsys =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let net = Net.create space ~n in
  let delivered = Array.init n (fun _ -> ref []) in
  let procs =
    Array.init n (fun pid ->
        if List.mem pid byzantine then None
        else begin
          let ep = Lnd_msgpass.Transport.of_net (Net.port net ~pid) in
          let p =
            Bracha.create ep ~n ~f ~deliver_cb:(fun ~sender ~value ~seq ->
                delivered.(pid) := (sender, value, seq) :: !(delivered.(pid)))
          in
          ignore
            (Sched.spawn sched ~pid ~name:(Printf.sprintf "bracha%d" pid)
               ~daemon:true (fun () -> Bracha.daemon p));
          Some p
        end)
  in
  { sched; net; procs; delivered }

let drain (s : bsys) ~steps =
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"drain" (fun () ->
         for _ = 1 to steps do
           Sched.yield ()
         done));
  run_ok s.sched

let test_bracha_correct_sender () =
  let n = 4 and f = 1 in
  let s = mk_bracha ~n ~f ~byzantine:[] () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"b" (fun () ->
         ignore (Bracha.broadcast (Option.get s.procs.(0)) "hello")));
  drain s ~steps:4000;
  for pid = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "p%d delivered" pid)
      true
      (List.mem (0, "hello", 0) !(s.delivered.(pid)))
  done

(* UNIQUENESS: unlike Srikanth-Toueg, an equivocating Byzantine sender
   cannot get two different seq-0 messages delivered. *)
let test_bracha_uniqueness ~seed () =
  let n = 4 and f = 1 in
  let s = mk_bracha ~seed ~n ~f ~byzantine:[ 0 ] () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"byz" (fun () ->
         let p = Net.port s.net ~pid:0 in
         let m v =
           Univ.inj Bracha.bmsg_key
             { Bracha.tag = Bracha.Init; sender = 0; value = v; seq = 0 }
         in
         (* send init "a" to p1/p2 and init "b" to p2/p3 *)
         Net.send p ~dst:1 (m "a");
         Net.send p ~dst:2 (m "a");
         Net.send p ~dst:2 (m "b");
         Net.send p ~dst:3 (m "b")));
  drain s ~steps:6000;
  (* collect all deliveries of (0, _, 0) by correct processes *)
  let values =
    List.concat_map
      (fun pid ->
        List.filter_map
          (fun (sdr, v, sq) -> if sdr = 0 && sq = 0 then Some v else None)
          !(s.delivered.(pid)))
      [ 1; 2; 3 ]
    |> List.sort_uniq compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "at most one value delivered (%s)"
       (String.concat "," values))
    true
    (List.length values <= 1);
  (* totality: if one correct process delivered, all did *)
  let who_delivered =
    List.filter
      (fun pid ->
        List.exists (fun (sdr, _, sq) -> sdr = 0 && sq = 0) !(s.delivered.(pid)))
      [ 1; 2; 3 ]
  in
  Alcotest.(check bool)
    "all-or-nothing among correct" true
    (List.length who_delivered = 0 || List.length who_delivered = 3)

(* Unforgeability: f forged echoes/readies cannot cause delivery. *)
let test_bracha_unforgeability () =
  let n = 4 and f = 1 in
  let s = mk_bracha ~n ~f ~byzantine:[ 3 ] () in
  ignore
    (Sched.spawn s.sched ~pid:3 ~name:"byz" (fun () ->
         let p = Net.port s.net ~pid:3 in
         let m tag =
           Univ.inj Bracha.bmsg_key
             { Bracha.tag; sender = 0; value = "fake"; seq = 0 }
         in
         Net.broadcast p (m Bracha.Echo);
         Net.broadcast p (m Bracha.Ready);
         Net.broadcast p (m Bracha.Ready)));
  drain s ~steps:4000;
  for pid = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "p%d did not deliver fake" pid)
      false
      (List.mem (0, "fake", 0) !(s.delivered.(pid)))
  done


let tests =
  [
    Alcotest.test_case "reliable bcast: multi-shot" `Quick test_rb_multishot;
    Alcotest.test_case "reliable bcast: uniqueness vs equivocation (seed 1)"
      `Quick
      (test_rb_uniqueness_byz ~seed:1);
    Alcotest.test_case "reliable bcast: uniqueness vs equivocation (seed 2)"
      `Quick
      (test_rb_uniqueness_byz ~seed:2);
    Alcotest.test_case "reliable bcast: sequential spec" `Quick test_rb_spec;
    Alcotest.test_case "bracha: correct sender" `Quick
      test_bracha_correct_sender;
    Alcotest.test_case "bracha: uniqueness (seed 11)" `Quick
      (test_bracha_uniqueness ~seed:11);
    Alcotest.test_case "bracha: uniqueness (seed 12)" `Quick
      (test_bracha_uniqueness ~seed:12);
    Alcotest.test_case "bracha: uniqueness (seed 13)" `Quick
      (test_bracha_uniqueness ~seed:13);
    Alcotest.test_case "bracha: unforgeability" `Quick
      test_bracha_unforgeability;
  ]
