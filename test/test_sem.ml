(* The semantic (typedtree) analyses against their compiled known-bad
   fixtures: each seeded violation — unsynced speak, a send over a
   helper's dirty journal, an unsigned outbound claim, an unverified
   inbound claim, an impure [@lnd.pure] body — is flagged by exactly
   its intended rule at the intended line; justified [@lnd.allow]
   suppressions round-trip to silence; the combined lint+sem report and
   its SARIF form are stable; and the production tree analyzes clean
   end to end.

   Unlike the lint fixtures (parsed, never built), the sem fixtures are
   a real dune library: the tests read the .cmt files dune left in its
   objs directory, exactly the artefacts bin/lnd_sem.ml consumes. *)

open Lnd_lint_core
open Lnd_sem_core

let cmt name =
  Filename.concat "fixtures/sem/.lnd_sem_fixtures.objs/byte"
    ("lnd_sem_fixtures__" ^ name ^ ".cmt")

let analyze name =
  match Semdriver.load_cmt (cmt name) with
  | None -> Alcotest.failf "cannot read %s (was the fixture lib built?)" (cmt name)
  | Some (file, str) ->
      Semdriver.analyze_structure Semdriver.all_ctx
        ~file:(Filename.basename file)
        str

let simplify (fs : Findings.t list) =
  List.sort Findings.compare fs
  |> List.map (fun (f : Findings.t) -> (f.Findings.rule, f.Findings.line))

let check name expected got =
  Alcotest.(check (list (pair string int))) name expected (simplify got)

(* -------- analysis 1: sync-before-speak -------- *)

let test_ordering () =
  check
    "unsynced speak, dirty call into a speaking helper, and a \
     sync-on-one-branch all flagged; disciplined and suppressed sends \
     silent"
    [ ("sem-ordering", 10); ("sem-ordering", 25); ("sem-ordering", 32) ]
    (analyze "Sem_bad_ordering")

(* -------- analysis 2: signature discipline -------- *)

let test_sign () =
  check
    "unsigned outbound claim and hand-built signature record flagged; \
     the signed path silent"
    [ ("sem-sign", 18); ("sem-sign", 23) ]
    (analyze "Sem_bad_sign")

let test_verify () =
  check
    "unverified inbound claim flagged; direct and helper-mediated \
     verification both silent"
    [ ("sem-verify", 22) ]
    (analyze "Sem_bad_verify")

(* -------- analysis 3: [@lnd.pure] -------- *)

let test_pure () =
  check
    "non-local mutation, transport, scheduler and a laundered Wal call \
     all flagged; fresh-local mutation and the justified suppression \
     silent"
    [
      ("sem-pure", 12);
      ("sem-pure", 15);
      ("sem-pure", 18);
      ("sem-pure", 24);
    ]
    (analyze "Sem_bad_pure")

(* -------- path-derived contexts -------- *)

let test_default_ctx () =
  let c = Semdriver.default_ctx ~source:"lib/msgpass/regemu.ml" in
  Alcotest.(check bool) "msgpass: ordering on" true c.Semdriver.ordering;
  Alcotest.(check bool) "msgpass: signing on" true c.Semdriver.signing;
  let d = Semdriver.default_ctx ~source:"lib/durable/wal.ml" in
  Alcotest.(check bool) "durable: ordering on" true d.Semdriver.ordering;
  Alcotest.(check bool) "durable: signing off" false d.Semdriver.signing;
  let s = Semdriver.default_ctx ~source:"lib/sigbase/sig_verifiable.ml" in
  Alcotest.(check bool) "sigbase: signing on" true s.Semdriver.signing;
  Alcotest.(check bool) "sigbase: ordering off" false s.Semdriver.ordering;
  let y = Semdriver.default_ctx ~source:"lib/crypto/sigoracle.ml" in
  Alcotest.(check bool) "crypto: signing off (IS the oracle)" false
    y.Semdriver.signing;
  let b = Semdriver.default_ctx ~source:"lib/byz/forger.ml" in
  Alcotest.(check bool) "byz: signing off (adversaries are modelled lying)"
    false b.Semdriver.signing;
  Alcotest.(check bool) "everywhere: purity on" true y.Semdriver.purity

(* -------- shared suppression machinery over the sem namespace -------- *)

(* The lint hygiene pass knows the sem rules: naming one with a
   justification is accepted, naming an unknown rule or skipping the
   justification is itself a finding. (The in-band round-trips — a
   justified sem suppression actually silencing a sem finding — are
   exercised by the ordering and purity fixtures above.) *)
let test_sem_suppression_hygiene () =
  let fs =
    Driver.lint_file
      ~ctx:
        {
          Rules.rng_free = false;
          ordered_iter = true;
          quorum = false;
          seam = false;
          swallow = false;
          need_mli = false;
          durable = false;
          obs = false;
        }
      "fixtures/lint/suppressed_sem.ml"
  in
  check
    "unknown sem rule and justification-free sem suppression flagged; \
     the justified sem-rule suppression parses clean"
    [
      ("determinism", 8);
      ("suppression-hygiene", 9);
      ("determinism", 12);
      ("suppression-hygiene", 13);
      ("determinism", 16);
    ]
    fs

(* -------- one driver surface: combined sorted report + SARIF -------- *)

(* The two tools' findings merge into one deterministically-ordered
   report: golden-checked so the shared format cannot drift. *)
let test_combined_golden () =
  let lint =
    Driver.lint_file
      ~ctx:
        {
          Rules.rng_free = true;
          ordered_iter = true;
          quorum = false;
          seam = false;
          swallow = false;
          need_mli = false;
          durable = false;
          obs = false;
        }
      "fixtures/lint/bad_determinism.ml"
  in
  let sem = analyze "Sem_bad_verify" in
  let all = List.sort Findings.compare (lint @ sem) in
  let got = Format.asprintf "%a" (Findings.report ~json:false) all in
  let expected =
    "fixtures/lint/bad_determinism.ml:4:14: [determinism] direct Random.* \
     use; all randomness flows through Lnd_support.Rng \
     (lib/support/rng.ml) so runs replay from seeds\n\
     fixtures/lint/bad_determinism.ml:7:2: [determinism] unordered \
     Hashtbl.iter in protocol/fuzz code (bucket order is unspecified and \
     randomizable); use Lnd_support.Tables.iter_sorted or justify with \
     [@lnd.allow]\n\
     fixtures/lint/bad_determinism.ml:10:29: [determinism] Hashtbl.to_seq \
     enumerates in unspecified (randomizable) bucket order, exactly like \
     Hashtbl.iter; sort through Lnd_support.Tables or justify with \
     [@lnd.allow]\n\
     sem_bad_verify.ml:22:2: [sem-verify] unverified inbound claim: \
     signature-carrying data obtained from a read reaches this register \
     write with no Sigoracle.verify on the path; verify before trusting, \
     or justify with [@lnd.allow \"sem-verify: ...\"] (in `parrot`)\n\
     4 findings\n"
  in
  Alcotest.(check string) "combined human report is golden" expected got

let test_sarif () =
  let sem =
    analyze "Sem_bad_ordering" @ analyze "Sem_bad_pure"
    |> List.sort Findings.compare
  in
  let log = Findings.to_sarif ~tool:"lnd_sem" ~rules:Rules.sem_catalogue sem in
  Jsonchk.check ~what:"SARIF log" log;
  let has needle =
    let nl = String.length needle and hl = String.length log in
    let rec go i =
      if i + nl > hl then false
      else String.sub log i nl = needle || go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "schema named" true
    (has "https://json.schemastore.org/sarif-2.1.0.json");
  Alcotest.(check bool) "version present" true (has "\"version\": \"2.1.0\"");
  Alcotest.(check bool) "driver named" true (has "\"name\": \"lnd_sem\"");
  Alcotest.(check bool) "rule metadata embedded" true
    (has "{\"id\": \"sem-ordering\"");
  Alcotest.(check bool) "result rule ids present" true
    (has "\"ruleId\": \"sem-pure\"");
  (* empty findings still yield a valid, empty-run log *)
  let empty = Findings.to_sarif ~tool:"lnd_lint" ~rules:Rules.catalogue [] in
  Jsonchk.check ~what:"empty SARIF log" empty

(* -------- acceptance gate: the production tree is sem-clean -------- *)

(* Mirrors test_lint's production sweep: every cmt under the build root
   whose source lives in lib/ analyzes clean under its default context
   — the same pipeline CI's blocking lnd_sem job runs. *)
let test_production_clean () =
  match Semdriver.analyze_paths ~build:".." [ "lib" ] with
  | Error msg -> Alcotest.fail msg
  | Ok [] -> ()
  | Ok (f :: _ as fs) ->
      Alcotest.failf "production tree has %d sem finding(s), first: %s"
        (List.length fs)
        (Format.asprintf "%a" Findings.pp_human f)

let tests =
  [
    Alcotest.test_case "sync-before-speak fixture" `Quick test_ordering;
    Alcotest.test_case "sign-before-send fixture" `Quick test_sign;
    Alcotest.test_case "verify-before-trust fixture" `Quick test_verify;
    Alcotest.test_case "[@lnd.pure] fixture" `Quick test_pure;
    Alcotest.test_case "path-derived analysis contexts" `Quick
      test_default_ctx;
    Alcotest.test_case "sem suppression hygiene" `Quick
      test_sem_suppression_hygiene;
    Alcotest.test_case "combined lint+sem report is golden" `Quick
      test_combined_golden;
    Alcotest.test_case "SARIF output is valid and stable" `Quick test_sarif;
    Alcotest.test_case "production tree analyzes clean" `Quick
      test_production_clean;
  ]
