(* Crash-recovery end to end: the rlink incarnation-epoch regression
   (restart without an epoch bump = messages swallowed by stale dedup
   state), the chaos fuzzer's seeded crash-restart scenarios, the
   legacy-path counterexample, and the liveness watchdog's stall
   diagnosis. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Net = Lnd_msgpass.Net
module Transport = Lnd_msgpass.Transport
module Rlink = Lnd_msgpass.Rlink
module Chaos = Lnd_fuzz.Chaos

let run_ok ?(max_steps = 1_000_000) sched =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent -> ()
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

(* The epoch regression, distilled. Incarnation 1 of pid 0 sends one
   message; a "restart" re-creates the rlink over the same port. With
   the pre-epoch behaviour (same epoch, restarted sequence space) the
   receiver's dedup state swallows the new incarnation's message — and
   even ACKS it, so the sender believes it delivered. With a bumped
   epoch the receiver resets the source's dedup state and the message
   lands. *)
let test_epoch_regression () =
  let space = Space.create ~n:2 in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let net = Net.create space ~n:2 in
  let ep pid = Transport.of_net (Net.port net ~pid) in
  let receiver = Rlink.create (ep 1) in
  let delivered = ref [] in
  let pump_receiver ~rounds =
    ignore
      (Sched.spawn sched ~pid:1 ~name:"rx" (fun () ->
           for _ = 1 to rounds do
             List.iter
               (fun (_, m) ->
                 match Univ.prj Univ.int m with
                 | Some i -> delivered := !delivered @ [ i ]
                 | None -> ())
               (Rlink.poll_all receiver);
             Sched.yield ()
           done))
  in
  let send_and_drain rl v =
    ignore
      (Sched.spawn sched ~pid:0 ~name:"tx" (fun () ->
           Rlink.send rl ~dst:1 (Univ.inj Univ.int v);
           while Rlink.pending rl > 0 do
             ignore (Rlink.poll_all rl);
             Sched.yield ()
           done))
  in
  (* incarnation 1 *)
  let inc1 = Rlink.create (ep 0) in
  send_and_drain inc1 42;
  pump_receiver ~rounds:50;
  run_ok sched;
  Alcotest.(check (list int)) "incarnation 1 delivers" [ 42 ] !delivered;
  (* restart WITHOUT an epoch bump: the pre-PR path. The send is acked
     (pending drains!) yet never delivered — acked-but-lost. *)
  let legacy = Rlink.create ~epoch:(Rlink.epoch inc1) (ep 0) in
  send_and_drain legacy 43;
  pump_receiver ~rounds:50;
  run_ok sched;
  Alcotest.(check int) "legacy incarnation believes it delivered" 0
    (Rlink.pending legacy);
  Alcotest.(check (list int)) "yet the message was swallowed" [ 42 ]
    !delivered;
  Alcotest.(check bool) "swallowed as a duplicate" true
    ((Rlink.stats receiver).Rlink.redundant > 0);
  (* restart WITH the epoch bump: the fixed path *)
  let fixed = Rlink.create ~epoch:(Rlink.epoch inc1 + 1) (ep 0) in
  send_and_drain fixed 44;
  pump_receiver ~rounds:50;
  run_ok sched;
  Alcotest.(check (list int)) "bumped epoch delivers" [ 42; 44 ] !delivered

(* Scenario generation is a pure function of the seed, and so is the
   whole run: same seed, same report, byte for byte. *)
let test_determinism () =
  Alcotest.(check bool)
    "crash-scenario generation deterministic" true
    (Chaos.generate_crash 5 = Chaos.generate_crash 5);
  let s = Chaos.generate_crash 4 in
  Alcotest.(check bool)
    "crash-scenario runs deterministic" true
    (Chaos.run s = Chaos.run s)

(* Every generated crash-restart scenario preserves safety and
   terminates: the victim recovers from its journal, transfers state
   from n-f peers and rejoins. *)
let run_crash_range ~from ~count () =
  for seed = from to from + count - 1 do
    let s = Chaos.generate_crash seed in
    match Chaos.run s with
    | Ok r ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d exercised the disk" seed)
          true
          (r.Chaos.fsyncs > 0)
    | Error msg ->
        Alcotest.failf "crash-chaos failure [%s]: %s"
          (Format.asprintf "%a" Chaos.pp_scenario s)
          msg
  done

(* The legacy counterexample at system scale: the SAME seeded scenario
   that recovers cleanly with epoch bumps stalls forever without them
   (the restarted victim's messages — including its state-transfer
   requests — are swallowed as duplicates by every peer), and the
   watchdog turns that stall into a diagnosable report instead of a
   silent budget exhaustion: the stalled fibers by name, the rlink
   backlog, and the replay command. *)
let test_legacy_epochs_stall () =
  let s = Chaos.generate_crash 1 in
  (match Chaos.run s with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "epoch-bumped run must recover: %s" msg);
  match Chaos.run { s with Chaos.epoch_bump = false } with
  | Ok _ -> Alcotest.fail "legacy epoch-less restart must stall"
  | Error msg ->
      let has needle =
        Alcotest.(check bool)
          (Printf.sprintf "diagnosis names %S" needle)
          true
          (let lm = String.length msg and ln = String.length needle in
           let rec at i = i + ln <= lm && (String.sub msg i ln = needle || at (i + 1)) in
           at 0)
      in
      has "stalled at clock";
      has "writer";
      has "rlink unacked";
      has "replay: lnd_cli chaos --crash --seed 1"

(* A chaos-level crash-point sweep: the same scenario re-run with the
   crash armed at each of the first fsync boundaries in turn — every
   torn-write placement must recover. *)
let test_fsync_sweep () =
  let s = Chaos.generate_crash 5 in
  for k = 1 to 8 do
    let s' =
      {
        s with
        Chaos.crashes =
          List.map
            (fun ev -> { ev with Chaos.at_fsync = Some k })
            s.Chaos.crashes;
      }
    in
    match Chaos.run s' with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "crash at fsync %d: %s" k msg
  done

let tests =
  [
    Alcotest.test_case "rlink epoch regression" `Quick test_epoch_regression;
    Alcotest.test_case "crash-scenario determinism" `Quick test_determinism;
    Alcotest.test_case "crash seeds 0-7" `Slow (run_crash_range ~from:0 ~count:8);
    Alcotest.test_case "legacy epoch-less restart stalls (watchdog diagnosis)"
      `Slow test_legacy_epochs_stall;
    Alcotest.test_case "crash-point sweep over fsync boundaries" `Slow
      test_fsync_sweep;
  ]
