(* Minimal strict JSON validator (RFC 8259 grammar, no extensions).
   The exporters in lib/obs and lib/audit hand-roll their JSON; these
   tests parse every emitted document from scratch so an escaping or
   comma bug cannot hide behind "it looked fine". *)

let validate (s : string) : (unit, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "%s at byte %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit =
    let k = String.length lit in
    if !pos + k <= n && String.sub s !pos k = lit then pos := !pos + k
    else fail (Printf.sprintf "bad literal (wanted %s)" lit)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let d = ref 0 in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            incr d;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if !d = 0 then fail "digits expected"
    in
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "value expected"
  and obj () =
    expect '{';
    skip_ws ();
    match peek () with
    | Some '}' -> advance ()
    | _ ->
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
              advance ();
              members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ()
  and arr () =
    expect '[';
    skip_ws ();
    match peek () with
    | Some ']' -> advance ()
    | _ ->
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
              advance ();
              elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ()
  in
  try
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing bytes";
    Ok ()
  with Failure msg -> Error msg

let check ~what s =
  match validate s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s is not valid JSON: %s" what msg

(* Every line of a JSONL document is itself a JSON value. *)
let check_jsonl ~what s =
  List.iteri
    (fun i line ->
      if line <> "" then
        check ~what:(Printf.sprintf "%s line %d" what (i + 1)) line)
    (String.split_on_char '\n' s)
