(* The model-checking harness end to end: DPOR exhausts the paper's
   smallest configuration (under park-on-yield + preemption bounding),
   finds the weakened-quorum stickiness violation, beats the naive DFS
   on the same config, and every counterexample survives the full
   serialise → parse → replay loop — including the scenario fixtures
   committed under test/fixtures/scenarios/, which the suite re-runs on
   every build. Plus the Space observer hook the harness counts
   accesses with, and the adversary synthesiser mutating an honest
   script into a violating one. *)

open Lnd_support
open Lnd_shm
module Explore = Lnd_runtime.Explore
module M = Lnd_fuzz.Mcheck
module Scenario = Lnd_fuzz.Scenario
module Synth = Lnd_fuzz.Synth

(* ---------------- Exhaustive coverage of the small configs ----------- *)

let test_dpor_exhausts_default () =
  let r = M.explore ~max_steps:600 ~max_preempts:0 M.default in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "explored real runs" true (r.Explore.runs > 0);
  Alcotest.(check int) "no inconclusive runs" 0 r.Explore.pruned

let test_dpor_exhausts_verifiable () =
  let cfg = { M.default with M.model = M.Verifiable; reads = 2 } in
  let r = M.explore ~max_steps:600 ~max_preempts:0 cfg in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "explored real runs" true (r.Explore.runs > 0)

let test_dpor_exhausts_testorset () =
  let cfg = { M.default with M.model = M.Testorset } in
  let r = M.explore ~max_steps:600 ~max_preempts:0 cfg in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "explored real runs" true (r.Explore.runs > 0)

let test_dpor_beats_naive () =
  let budget = 1_000 in
  let naive =
    M.explore ~mode:`Naive ~max_steps:600 ~max_runs:budget M.default
  in
  Alcotest.(check bool) "naive DFS blows the budget" false
    naive.Explore.exhausted;
  let dpor =
    M.explore ~max_steps:600 ~max_runs:budget ~max_preempts:0 M.default
  in
  Alcotest.(check bool) "dpor exhausts within the same budget" true
    dpor.Explore.exhausted;
  Alcotest.(check bool) "dpor needs fewer runs" true
    (dpor.Explore.runs + dpor.Explore.blocked < budget)

(* ---------------- The weakened-quorum violation ---------------------- *)

let find_weakened_cx () =
  match
    M.explore ~max_steps:600 ~max_runs:50_000 ~max_preempts:1 M.weakened
  with
  | (_ : Explore.result) ->
      Alcotest.fail "expected a violation on the weakened config"
  | exception Explore.Violation cx -> cx

let test_dpor_finds_weakened_violation () =
  let cx = find_weakened_cx () in
  (match cx.Explore.cx_exn with
  | M.Property_violated _ -> ()
  | e -> Alcotest.failf "unexpected exception: %s" (Printexc.to_string e));
  match cx.Explore.cx_schedule with
  | Explore.Fids _ -> ()
  | s -> Alcotest.failf "want a Fids trail, got %a" Explore.pp_schedule s

let test_weakened_cx_replays () =
  let cx = find_weakened_cx () in
  match M.replay M.weakened cx.Explore.cx_schedule with
  | Error (M.Property_violated _) -> ()
  | Error e ->
      Alcotest.failf "replay raised something else: %s" (Printexc.to_string e)
  | Ok () -> Alcotest.fail "replay did not reproduce the violation"

(* ---------------- Scenario round-trip -------------------------------- *)

let test_scenario_roundtrip () =
  let cx = find_weakened_cx () in
  let sc = Scenario.of_violation ~name:"rt" M.weakened cx in
  let text = Scenario.to_string sc in
  (match Scenario.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sc2 ->
      Alcotest.(check string) "print/parse/print fixpoint" text
        (Scenario.to_string sc2);
      Alcotest.(check string) "config survives" (M.note sc.Scenario.sc_cfg)
        (M.note sc2.Scenario.sc_cfg));
  match Scenario.run sc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scenario run: %s" e

let test_scenario_rejects_garbage () =
  (match Scenario.of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted empty input");
  (match Scenario.of_string "lnd-scenario v0\nname: x\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bad magic line");
  match
    Scenario.of_string
      "lnd-scenario v1\nname: x\nexpect: violation\nfrobnicate: 3\nschedule: seed 1\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown key"

(* ---------------- Committed fixtures --------------------------------- *)

let test_fixture_scenarios_replay () =
  let dir = Filename.concat "fixtures" "scenarios" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scn")
    |> List.sort compare
  in
  Alcotest.(check bool) "at least two committed scenarios" true
    (List.length files >= 2);
  List.iter
    (fun file ->
      match Scenario.load (Filename.concat dir file) with
      | Error e -> Alcotest.failf "%s: parse failed: %s" file e
      | Ok sc -> (
          match Scenario.run sc with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" file e))
    files

(* ---------------- Adversary synthesis -------------------------------- *)

let test_synth_finds_violating_adversary () =
  (* honest genomes: the hill-climb has to mutate the scripts (and/or
     the seeds) before any run can violate *)
  let honest =
    { M.weakened with M.scripts = [ (2, [ 2; 2 ]); (3, [ 2; 2 ]) ] }
  in
  let o = Synth.hillclimb ~seed:11 ~name:"synth-weakened" honest in
  match o.Synth.found with
  | None ->
      Alcotest.failf "no violation after %d rounds (%d evals)"
        o.Synth.rounds_used o.Synth.evals
  | Some sc -> (
      Alcotest.(check bool) "scripts were mutated" true
        (sc.Scenario.sc_cfg.M.scripts <> honest.M.scripts
        || sc.Scenario.sc_cfg.M.scripts <> M.weakened.M.scripts);
      match Scenario.run sc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "synthesised scenario: %s" e)

(* ---------------- Space observer ------------------------------------- *)

let test_space_observer_counts () =
  let space = Space.create ~n:2 in
  let r = Space.alloc space ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 0) () in
  let count = ref 0 in
  Space.set_observer space (Some (fun _ -> incr count));
  Space.write space ~by:0 r (Univ.inj Univ.int 1);
  ignore (Space.read space ~by:1 r);
  ignore (Space.read space ~by:0 r);
  Alcotest.(check int) "three observed accesses" 3 !count;
  Space.set_observer space None;
  ignore (Space.read space ~by:1 r);
  Alcotest.(check int) "detached observer sees nothing" 3 !count

let tests =
  [
    Alcotest.test_case "dpor exhausts the default sticky config" `Quick
      test_dpor_exhausts_default;
    Alcotest.test_case "dpor exhausts the verifiable config" `Quick
      test_dpor_exhausts_verifiable;
    Alcotest.test_case "dpor exhausts the test-or-set config" `Quick
      test_dpor_exhausts_testorset;
    Alcotest.test_case "dpor beats the naive DFS on the same budget" `Quick
      test_dpor_beats_naive;
    Alcotest.test_case "dpor finds the weakened-quorum violation" `Quick
      test_dpor_finds_weakened_violation;
    Alcotest.test_case "the counterexample replays deterministically" `Quick
      test_weakened_cx_replays;
    Alcotest.test_case "scenarios round-trip and re-violate" `Quick
      test_scenario_roundtrip;
    Alcotest.test_case "scenario parser rejects garbage" `Quick
      test_scenario_rejects_garbage;
    Alcotest.test_case "committed scenario fixtures replay" `Quick
      test_fixture_scenarios_replay;
    Alcotest.test_case "synthesis mutates an honest adversary into a violator"
      `Quick test_synth_finds_violating_adversary;
    Alcotest.test_case "space observer counts accesses" `Quick
      test_space_observer_counts;
  ]
