(* Differential conformance between the two drivers of the pure protocol
   cores: the deterministic effects-based simulator (driver #1) and the
   OCaml 5 domains backend (driver #2).

   Three layers of evidence:
   - the sim driver's histories for the golden workloads are
     byte-identical to the committed pre-refactor baselines
     (fixtures/diff/golden_sim.txt), pinning the pure-core extraction to
     the old inlined implementations, schedule for schedule;
   - every (seed, protocol) workload is accepted by the monitors +
     Byzantine-linearizability checkers on BOTH backends — the domains
     interleavings are real, so agreement is judged through the spec,
     not byte-for-byte;
   - the deliberately broken cores (Parallel.run ~broken:true) are
     rejected, so a green suite is evidence, not vacuity. The broken
     seeds are chosen with few enough operations that the exhaustive
     checker always runs: rejection is schedule-independent.

   The committed counterexample scenarios also replay through the
   (pure-core) sim driver with their recorded verdicts intact. *)

module Diff = Lnd_parallel.Diff
module Parallel = Lnd_parallel.Parallel
module Scenario = Lnd_fuzz.Scenario

let golden_path = "fixtures/diff/golden_sim.txt"

let test_golden_sim () =
  match Diff.check_golden golden_path with
  | [] -> ()
  | (i, e, g) :: rest ->
      Alcotest.failf
        "sim driver drifted from the pre-refactor golden baselines (%d \
         mismatching lines); first: line %d\n\
         expected: %s\n\
         got:      %s"
        (List.length rest + 1)
        i e g

let seeds =
  List.init Diff.golden_seed_count (fun i -> Diff.golden_seed_from + i)

let check_backend ~backend w = function
  | Ok () -> ()
  | Error m ->
      Alcotest.failf "%s driver rejected workload [%s]: %s" backend
        (Diff.describe w) m

(* One traced execution must tell the same story twice: the direct
   history (recorded by the driver) and the trace-derived history
   (operation spans folded back through Trace_replay) are judged by the
   same checkers, and op spans bracket the [inv, ret] intervals, so a
   direct Ok forces a trace Ok. The trace itself must be complete (no
   arena drops) and well-nested. *)
let check_parity ~backend w (r : Diff.run) (ti : Diff.trace_info) =
  check_backend ~backend w r.Diff.verdict;
  (match ti.Diff.t_verdict with
  | Ok () -> ()
  | Error m ->
      Alcotest.failf
        "%s trace-derived history rejected for [%s] (direct was accepted): %s"
        backend (Diff.describe w) m);
  (match ti.Diff.t_nesting with
  | None -> ()
  | Some m ->
      Alcotest.failf "%s trace ill-nested for [%s]: %s" backend
        (Diff.describe w) m);
  if ti.Diff.t_dropped > 0 then
    Alcotest.failf "%s trace dropped %d events for [%s]" backend
      ti.Diff.t_dropped (Diff.describe w);
  if ti.Diff.t_ops <> r.Diff.ops then
    Alcotest.failf
      "%s trace-derived history has %d ops, direct has %d, for [%s]" backend
      ti.Diff.t_ops r.Diff.ops (Diff.describe w)

(* The headline: the same seed-derived workloads — honest, Byzantine
   (scripted genomes) and mixed — through both drivers, every history
   accepted by the same spec-level checkers, and on each driver the
   trace-derived history agrees with the direct one. *)
let test_agreement proto () =
  List.iter
    (fun seed ->
      let w = Diff.generate ~proto seed in
      let s, st = Diff.sim_traced w in
      check_parity ~backend:"sim" w s st;
      let p, pt = Parallel.run_traced w in
      check_parity ~backend:"domains" w p pt;
      if p.Diff.ops <> s.Diff.ops then
        Alcotest.failf
          "backends completed different op counts for [%s]: sim=%d domains=%d"
          (Diff.describe w) s.Diff.ops p.Diff.ops)
    seeds

(* Broken-core fixtures: the same drivers, the same checkers, a core
   with its final decision step corrupted — the suite must go red. The
   chosen seeds keep the history under Diff.byzlin_op_cap, so the
   exhaustive checker runs and rejection does not depend on the (real,
   uncontrolled) domains interleaving. *)
let test_broken proto seed () =
  let w = Diff.generate ~proto seed in
  let ops = Diff.sim w in
  if ops.Diff.ops > Diff.byzlin_op_cap then
    Alcotest.failf
      "fixture seed %d grew past byzlin_op_cap (%d ops): pick another seed"
      seed ops.Diff.ops;
  check_backend ~backend:"domains" w (Parallel.run w).Diff.verdict;
  let b, bt = Parallel.run_traced ~broken:true w in
  (match b.Diff.verdict with
  | Error _ -> ()
  | Ok () ->
      Alcotest.failf
        "broken %s core was ACCEPTED on [%s]: the conformance suite cannot \
         detect divergence"
        (Diff.proto_name proto) (Diff.describe w));
  (* The spans render the value the core actually (falsely) returned, so
     the lie survives the round-trip and the trace checker rejects too. *)
  match bt.Diff.t_verdict with
  | Error _ -> ()
  | Ok () ->
      Alcotest.failf
        "broken %s core was accepted through the TRACE on [%s]: spans do not \
         carry the lying results"
        (Diff.proto_name proto) (Diff.describe w)

(* The committed counterexamples replay through the pure-core sim driver
   with their recorded expectations intact. *)
let test_scenario file () =
  let path = Filename.concat "fixtures/scenarios" file in
  match Scenario.load path with
  | Error e -> Alcotest.failf "%s: parse error: %s" file e
  | Ok sc -> (
      match Scenario.run sc with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s (%s): replay diverged on the pure-core driver: %s"
            file sc.Scenario.sc_name e)

let tests =
  [
    Alcotest.test_case "sim histories byte-identical to golden baselines"
      `Slow test_golden_sim;
    Alcotest.test_case "sticky: 60 seeds agree on sim + domains" `Slow
      (test_agreement Diff.Sticky);
    Alcotest.test_case "verifiable: 60 seeds agree on sim + domains" `Slow
      (test_agreement Diff.Verifiable);
    Alcotest.test_case "testorset: 60 seeds agree on sim + domains" `Slow
      (test_agreement Diff.Testorset);
    Alcotest.test_case "broken sticky core is rejected" `Slow
      (test_broken Diff.Sticky 1);
    Alcotest.test_case "broken verifiable core is rejected" `Slow
      (test_broken Diff.Verifiable 2);
    Alcotest.test_case "broken testorset core is rejected" `Slow
      (test_broken Diff.Testorset 5);
    Alcotest.test_case "weakened_retract_dpor.scn replays on pure cores" `Quick
      (test_scenario "weakened_retract_dpor.scn");
    Alcotest.test_case "weakened_synth.scn replays on pure cores" `Quick
      (test_scenario "weakened_synth.scn");
  ]
