(* The durability layer under test: the deterministic disk's crash
   semantics (torn pending bytes, armed fsync faults) and the
   checksummed WAL on top — replay idempotence, torn-tail rejection,
   snapshot truncation, and a crash-point sweep over every fsync
   boundary of a fixed workload. *)

module Disk = Lnd_durable.Disk
module Wal = Lnd_durable.Wal

let recs = Alcotest.(list string)

let rec is_prefix got full =
  match (got, full) with
  | [], _ -> true
  | g :: gs, f :: fs -> g = f && is_prefix gs fs
  | _ :: _, [] -> false

(* Append / sync / recover round-trip, and recovery is idempotent: the
   journal can be replayed any number of times and keeps accepting
   appends afterwards. *)
let test_roundtrip () =
  let d = Disk.create () in
  let w = Wal.create d ~name:"wal" in
  List.iter (Wal.append w) [ "a"; "b"; "c" ];
  Wal.sync w;
  let r1, _ = Wal.recover d ~name:"wal" in
  Alcotest.check recs "synced records recovered" [ "a"; "b"; "c" ] r1;
  let r2, w2 = Wal.recover d ~name:"wal" in
  Alcotest.check recs "recovery idempotent" r1 r2;
  Wal.append w2 "d";
  Wal.sync w2;
  let r3, _ = Wal.recover d ~name:"wal" in
  Alcotest.check recs "append after recovery lands in the same log"
    [ "a"; "b"; "c"; "d" ] r3

(* A record is durable only once [sync] returned: a crash tears the
   pending bytes and recovery never sees more than a frame-aligned
   prefix of them. *)
let test_unsynced_torn () =
  for torn_seed = 0 to 19 do
    let d = Disk.create ~torn_seed () in
    let w = Wal.create d ~name:"wal" in
    Wal.append w "a";
    Wal.sync w;
    Wal.append w "b";
    Wal.append w "c";
    (* no sync *)
    Disk.crash d;
    let got, _ = Wal.recover d ~name:"wal" in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: synced prefix survives, frames stay whole"
         torn_seed)
      true
      (is_prefix got [ "a"; "b"; "c" ] && is_prefix [ "a" ] got)
  done

(* Recovery truncates the torn tail before reuse: records synced by the
   NEXT incarnation must not hide behind the garbage a torn flush left
   in the durable file — a second crash would otherwise roll the log
   back to the tear, silently losing fsynced records (the restarted
   process's journalled epoch among them: it would reboot as an
   apparent epoch replayer). *)
let test_torn_tail_truncated () =
  for torn_seed = 0 to 19 do
    let d = Disk.create ~torn_seed () in
    let w = Wal.create d ~name:"wal" in
    List.iter (Wal.append w) [ "a"; "b" ];
    Wal.sync w;
    (* crash mid-barrier: a corrupt prefix of the pending frame may
       land behind the synced records *)
    Disk.arm_crash d ~at_fsync:(Disk.fsync_count d + 1);
    Wal.append w "lost";
    (try
       Wal.sync w;
       Alcotest.fail "armed fsync crash did not fire"
     with Disk.Crashed -> ());
    Disk.disarm d;
    let r1, w1 = Wal.recover d ~name:"wal" in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: first recovery sees the synced prefix"
         torn_seed)
      true
      (is_prefix r1 [ "a"; "b"; "lost" ] && is_prefix [ "a"; "b" ] r1);
    Wal.append w1 "epoch";
    Wal.sync w1;
    Disk.crash d;
    let r2, _ = Wal.recover d ~name:"wal" in
    Alcotest.check recs
      (Printf.sprintf "seed %d: post-recovery syncs survive a second crash"
         torn_seed)
      (r1 @ [ "epoch" ]) r2
  done

(* The checksum layer rejects bytes the disk happily persisted: raw
   garbage appended (and fsynced!) behind the WAL's back never reaches
   recovery. *)
let test_garbage_rejected () =
  let d = Disk.create () in
  let w = Wal.create d ~name:"wal" in
  Wal.append w "a";
  Wal.sync w;
  Disk.append d ~file:"wal.0" "XXXXXXXXXXXXXXXXXXXXXXXXXXXX";
  Disk.fsync d ~file:"wal.0";
  let got, _ = Wal.recover d ~name:"wal" in
  Alcotest.check recs "garbage frame rejected" [ "a" ] got

(* Snapshots compact and truncate: recovery replays the snapshot
   records first, then the tail, and exactly one generation file
   remains. *)
let test_snapshot_roundtrip () =
  let d = Disk.create () in
  let w = Wal.create d ~name:"wal" in
  List.iter (Wal.append w) [ "a"; "b"; "c" ];
  Wal.sync w;
  Alcotest.(check int) "appended counts toward the snapshot policy" 3
    (Wal.appended w);
  Wal.snapshot w [ "S1"; "S2" ];
  Alcotest.(check int) "snapshot resets the policy counter" 0 (Wal.appended w);
  Wal.append w "d";
  Wal.sync w;
  let got, _ = Wal.recover d ~name:"wal" in
  Alcotest.check recs "snapshot records first, tail after"
    [ "S1"; "S2"; "d" ] got;
  Alcotest.check recs "old generation truncated" [ "wal.1" ]
    (Disk.list_files d)

(* A crash inside the snapshot's own fsync tears the NEW generation;
   its leading frame fails to decode and recovery falls back to the old
   generation, which the truncation had not yet deleted. *)
let test_crash_during_snapshot () =
  let d = Disk.create ~torn_seed:11 () in
  let w = Wal.create d ~name:"wal" in
  List.iter (Wal.append w) [ "a"; "b" ];
  Wal.sync w;
  Disk.arm_crash d ~at_fsync:(Disk.fsync_count d + 1);
  (match Wal.snapshot w [ "S" ] with
  | () -> Alcotest.fail "armed crash did not fire"
  | exception Disk.Crashed -> ());
  let got, _ = Wal.recover d ~name:"wal" in
  Alcotest.(check bool)
    "either the old generation survives or the snapshot completed" true
    (got = [ "a"; "b" ] || got = [ "S" ])

(* Crash-point sweep: the same fixed workload — two syncs, a snapshot,
   a final sync — killed at EVERY fsync boundary in turn, each with its
   own torn-write seed. Whatever the crash point, recovery lands in one
   of the states the durability contract allows: everything behind a
   completed barrier present, pending frames only as a whole-frame
   prefix, the snapshot either fully durable or fully absent. *)
let test_crash_point_sweep () =
  for k = 1 to 4 do
    let d = Disk.create ~torn_seed:(k * 31) () in
    Disk.arm_crash d ~at_fsync:k;
    let w = Wal.create d ~name:"wal" in
    (match
       Wal.append w "r1";
       Wal.append w "r2";
       Wal.sync w;
       (* fsync 1 *)
       Wal.append w "r3";
       Wal.sync w;
       (* fsync 2 *)
       Wal.snapshot w [ "S" ];
       (* fsync 3 *)
       Wal.append w "t";
       Wal.sync w (* fsync 4 *)
     with
    | () -> Alcotest.failf "crash point %d never fired" k
    | exception Disk.Crashed -> ());
    let got, _ = Wal.recover d ~name:"wal" in
    let ok =
      match k with
      | 1 -> is_prefix got [ "r1"; "r2" ]
      | 2 -> is_prefix [ "r1"; "r2" ] got && is_prefix got [ "r1"; "r2"; "r3" ]
      | 3 -> got = [ "r1"; "r2"; "r3" ] || got = [ "S" ]
      | _ -> is_prefix [ "S" ] got && is_prefix got [ "S"; "t" ]
    in
    Alcotest.(check bool)
      (Printf.sprintf "crash at fsync %d recovers an allowed state" k)
      true ok;
    let again, _ = Wal.recover d ~name:"wal" in
    Alcotest.check recs
      (Printf.sprintf "crash at fsync %d: recovery idempotent" k)
      got again
  done

(* The disk's fault bookkeeping: arms are one-shot and disarmable. *)
let test_arm_disarm () =
  let d = Disk.create () in
  Disk.arm_crash d ~at_fsync:1;
  Disk.disarm d;
  Disk.append d ~file:"f" "x";
  Disk.fsync d ~file:"f";
  Alcotest.(check int) "disarmed fsync survives" 0 (Disk.crash_count d);
  Disk.arm_crash d ~at_fsync:2;
  Disk.append d ~file:"f" "y";
  (match Disk.fsync d ~file:"f" with
  | () -> Alcotest.fail "armed crash did not fire"
  | exception Disk.Crashed -> ());
  Alcotest.(check int) "fired arm counted" 1 (Disk.crash_count d);
  (* the arm is consumed: later fsyncs proceed *)
  Disk.append d ~file:"f" "z";
  Disk.fsync d ~file:"f";
  Alcotest.(check int) "arm consumed by firing" 1 (Disk.crash_count d)

let tests =
  [
    Alcotest.test_case "wal round-trip + idempotent recovery" `Quick
      test_roundtrip;
    Alcotest.test_case "recovery truncates the torn tail" `Quick
      test_torn_tail_truncated;
    Alcotest.test_case "unsynced tail torn, never corrupt" `Quick
      test_unsynced_torn;
    Alcotest.test_case "checksum rejects raw garbage" `Quick
      test_garbage_rejected;
    Alcotest.test_case "snapshot round-trip + truncation" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "crash during snapshot falls back" `Quick
      test_crash_during_snapshot;
    Alcotest.test_case "crash-point sweep over every fsync" `Quick
      test_crash_point_sweep;
    Alcotest.test_case "arm / disarm / one-shot semantics" `Quick
      test_arm_disarm;
  ]
