let () =
  Alcotest.run "lie_not_deny"
    [
      ("support", Test_support.tests);
      ("shm", Test_shm.tests);
      ("runtime", Test_runtime.tests);
      ("explore", Test_explore.tests);
      ("history", Test_history.tests);
      ("verifiable", Test_verifiable.tests);
      ("verifiable-byzantine", Test_verifiable_byz.tests);
      ("sticky", Test_sticky.tests);
      ("sticky-byzantine", Test_sticky_byz.tests);
      ("byzantine-linearizability", Test_byzlin.tests);
      ("test-or-set", Test_testorset.tests);
      ("impossibility", Test_impossibility.tests);
      ("crypto", Test_crypto.tests);
      ("signature-baseline", Test_sigbase.tests);
      ("message-passing", Test_msgpass.tests);
      ("fault-injection", Test_faultnet.tests);
      ("durability", Test_durable.tests);
      ("crash-recovery", Test_crashrec.tests);
      ("broadcast", Test_broadcast.tests);
      ("snapshot", Test_snapshot.tests);
      ("ablation", Test_ablation.tests);
      ("reliable-broadcast", Test_reliable.tests);
      ("asset-transfer", Test_asset.tests);
      ("monitors", Test_monitors.tests);
      ("fuzz", Test_fuzz.tests);
      ("model-checking", Test_mcheck.tests);
      ("differential-conformance", Test_diff.tests);
      ("regular-registers", Test_regular.tests);
      ("trace-invariants", Test_trace_invariants.tests);
      ("observability", Test_obs.tests);
      ("multi-domain observability", Test_obs_domains.tests);
      ("audit", Test_audit.tests);
      ("composition", Test_composition.tests);
      ("policies", Test_policies.tests);
      ("lint", Test_lint.tests);
      ("sem", Test_sem.tests);
      ("properties", Test_properties.tests);
    ]
