(* Unit tests for the effects-based scheduler: atomic step semantics,
   fairness, determinism, masks, kills, and the bounded explorer. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime

let mk_sys ?(n = 3) policy =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:policy in
  (space, sched)

let int_reg space ~owner = Space.alloc space ~name:"x" ~owner ~init:(Univ.inj Univ.int 0) ()

let read_int c = Univ.prj_default Univ.int ~default:0 (Sched.read c)

let test_basic_run () =
  let space, sched = mk_sys (Policy.round_robin ()) in
  let r = int_reg space ~owner:0 in
  let seen = ref (-1) in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"w" (fun () ->
         Sched.write r (Univ.inj Univ.int 42)));
  ignore (Sched.spawn sched ~pid:1 ~name:"r" (fun () -> seen := read_int r));
  (match Sched.run sched with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "expected quiescence");
  Alcotest.(check bool) "reader saw 0 or 42" true (!seen = 0 || !seen = 42)

let test_determinism () =
  let run seed =
    let space, sched = mk_sys (Policy.random ~seed) in
    let r = int_reg space ~owner:0 in
    let order = ref [] in
    for pid = 0 to 2 do
      ignore
        (Sched.spawn sched ~pid ~name:"p" (fun () ->
             ignore (Sched.read r);
             order := pid :: !order;
             ignore (Sched.read r)))
    done;
    ignore (Sched.run sched);
    (!order, Sched.steps sched)
  in
  Alcotest.(check bool) "same seed same run" true (run 9 = run 9);
  (* different seeds usually differ; just check both complete *)
  ignore (run 10)

let test_fairness_round_robin () =
  (* every fiber makes progress under round robin *)
  let space, sched = mk_sys (Policy.round_robin ()) in
  let r = int_reg space ~owner:0 in
  let counts = Array.make 3 0 in
  for pid = 0 to 2 do
    ignore
      (Sched.spawn sched ~pid ~name:"p" (fun () ->
           for _ = 1 to 10 do
             ignore (Sched.read r);
             counts.(pid) <- counts.(pid) + 1
           done))
  done;
  ignore (Sched.run sched);
  Array.iter (fun c -> Alcotest.(check int) "all ran to completion" 10 c) counts

let test_daemon_quiescence () =
  let space, sched = mk_sys (Policy.random ~seed:1) in
  let r = int_reg space ~owner:0 in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"spin" ~daemon:true (fun () ->
         while true do
           ignore (Sched.read r)
         done));
  ignore (Sched.spawn sched ~pid:1 ~name:"client" (fun () -> ignore (Sched.read r)));
  (match Sched.run ~max_steps:100_000 sched with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "daemons must not block quiescence")

let test_budget () =
  let space, sched = mk_sys (Policy.random ~seed:1) in
  let r = int_reg space ~owner:0 in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"forever" (fun () ->
         while true do
           ignore (Sched.read r)
         done));
  match Sched.run ~max_steps:1000 sched with
  | Sched.Budget_exhausted -> ()
  | _ -> Alcotest.fail "expected budget exhaustion"

let test_kill () =
  let space, sched = mk_sys (Policy.round_robin ()) in
  let r = int_reg space ~owner:0 in
  let progressed = ref 0 in
  let f =
    Sched.spawn sched ~pid:0 ~name:"victim" (fun () ->
        while true do
          ignore (Sched.read r);
          incr progressed
        done)
  in
  Sched.kill f;
  (match Sched.run ~max_steps:1000 sched with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "killed fiber should not run");
  Alcotest.(check int) "victim never progressed" 0 !progressed;
  (* deliberate kills are not reported as failures *)
  Alcotest.(check int) "no failures" 0 (List.length (Sched.failures sched))

let test_enabled_mask () =
  let space, sched = mk_sys (Policy.round_robin ()) in
  let r = int_reg space ~owner:0 in
  let ran = Array.make 3 false in
  for pid = 0 to 2 do
    ignore
      (Sched.spawn sched ~pid ~name:"p" (fun () ->
           ignore (Sched.read r);
           ran.(pid) <- true))
  done;
  sched.Sched.enabled <- (fun f -> f.Sched.pid <> 1);
  (match Sched.run ~max_steps:1000 sched with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "expected quiescence of enabled fibers");
  Alcotest.(check bool) "p0 ran" true ran.(0);
  Alcotest.(check bool) "p1 masked" false ran.(1);
  Alcotest.(check bool) "p2 ran" true ran.(2)

let test_exception_captured () =
  let _space, sched = mk_sys (Policy.round_robin ()) in
  ignore (Sched.spawn sched ~pid:0 ~name:"boom" (fun () -> failwith "boom"));
  ignore (Sched.run sched);
  Alcotest.(check int) "failure recorded" 1 (List.length (Sched.failures sched))

let test_on_failure_hook () =
  let _space, sched = mk_sys (Policy.round_robin ()) in
  let seen = ref [] in
  Sched.set_on_failure sched
    (Some
       (fun fb e -> seen := (fb.Sched.fname, Printexc.to_string e) :: !seen));
  ignore (Sched.spawn sched ~pid:0 ~name:"boom" (fun () -> failwith "boom"));
  ignore (Sched.spawn sched ~pid:1 ~name:"victim" (fun () -> raise Sched.Killed));
  ignore (Sched.run sched);
  (* the hook fires for real failures, not for deliberate kills *)
  match !seen with
  | [ (name, msg) ] ->
      Alcotest.(check string) "failing fiber" "boom" name;
      Alcotest.(check bool) "exception carried" true
        (String.length msg > 0)
  | l -> Alcotest.failf "expected exactly one hook call, got %d" (List.length l)

let test_permission_violation_hits_fiber () =
  let space, sched = mk_sys (Policy.round_robin ()) in
  let r = int_reg space ~owner:0 in
  let caught = ref false in
  ignore
    (Sched.spawn sched ~pid:1 ~name:"byz" (fun () ->
         try Sched.write r (Univ.inj Univ.int 1)
         with Space.Permission_violation _ -> caught := true));
  ignore (Sched.run sched);
  Alcotest.(check bool) "violation raised inside fiber" true !caught

let test_clock_monotone () =
  let space, sched = mk_sys (Policy.round_robin ()) in
  let r = int_reg space ~owner:0 in
  let stamps = ref [] in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"t" (fun () ->
         stamps := Sched.tick () :: !stamps;
         ignore (Sched.read r);
         stamps := Sched.tick () :: !stamps;
         ignore (Sched.read r);
         stamps := Sched.tick () :: !stamps));
  ignore (Sched.run sched);
  let l = List.rev !stamps in
  Alcotest.(check bool)
    "strictly increasing" true
    (match l with
    | [ a; b; c ] -> a < b && b < c
    | _ -> false)

let test_self () =
  let _space, sched = mk_sys (Policy.round_robin ()) in
  let me = ref (-1) in
  ignore (Sched.spawn sched ~pid:2 ~name:"who" (fun () -> me := Sched.self ()));
  ignore (Sched.run sched);
  Alcotest.(check int) "self pid" 2 !me

(* The explorer visits schedules producing both outcomes of a classic
   read-modify-write race (registers are atomic; the sequence is not). *)
let test_explore_race () =
  let outcomes = ref [] in
  let reg = ref None in
  let make policy =
    let space = Space.create ~n:2 in
    let sched = Sched.create ~space ~choose:policy in
    let r = int_reg space ~owner:0 in
    let r1 = Space.alloc space ~name:"y" ~owner:1 ~init:(Univ.inj Univ.int 0) () in
    reg := Some (r, r1);
    (* two increment-via-read-then-write fibers on separate registers,
       plus a final sum: the "sum" depends on interleaving of reads *)
    ignore
      (Sched.spawn sched ~pid:0 ~name:"a" (fun () ->
           let x = read_int r in
           let y = read_int r1 in
           Sched.write r (Univ.inj Univ.int (x + y + 1))));
    ignore
      (Sched.spawn sched ~pid:1 ~name:"b" (fun () ->
           let x = read_int r in
           Sched.write r1 (Univ.inj Univ.int (x + 1))));
    sched
  in
  let check _sched =
    match !reg with
    | Some (r, r1) ->
        let v = Univ.prj_default Univ.int ~default:(-1) r.Register.value in
        let w = Univ.prj_default Univ.int ~default:(-1) r1.Register.value in
        if not (List.mem (v, w) !outcomes) then outcomes := (v, w) :: !outcomes
    | None -> ()
  in
  let result = Explore.exhaustive ~make ~check ~max_steps:100 ~max_runs:5000 () in
  Alcotest.(check bool) "space exhausted" true result.Explore.exhausted;
  Alcotest.(check bool) "several runs" true (result.Explore.runs > 1);
  Alcotest.(check bool)
    "multiple distinct outcomes" true
    (List.length !outcomes > 1)

(* Swarm exploration over a sticky uniqueness scenario: 50 random
   schedules, uniqueness checked in each. *)
let test_swarm_sticky_uniqueness () =
  let module St = Lnd_sticky.Sticky in
  let results = ref [] in
  let make policy =
    results := [];
    let space = Space.create ~n:4 in
    let sched = Sched.create ~space ~choose:policy in
    let regs = St.alloc space { St.n = 4; f = 1 } in
    for pid = 0 to 3 do
      ignore
        (Sched.spawn sched ~pid ~name:"h" ~daemon:true (fun () ->
             St.help regs ~pid))
    done;
    ignore
      (Sched.spawn sched ~pid:0 ~name:"w" (fun () ->
           St.write (St.writer regs) "u"));
    for pid = 1 to 3 do
      ignore
        (Sched.spawn sched ~pid ~name:"r" (fun () ->
             results := St.read (St.reader regs ~pid) :: !results))
    done;
    sched
  in
  let check _ =
    let non_bot = List.filter_map (fun x -> x) !results in
    match List.sort_uniq compare non_bot with
    | [] | [ _ ] -> ()
    | vs -> failwith ("disagreement: " ^ String.concat "," vs)
  in
  let r =
    Explore.swarm ~make ~check ~seeds:(List.init 50 (fun i -> i)) ()
  in
  Alcotest.(check int) "all 50 schedules ran" 50 r.Explore.runs;
  Alcotest.(check int) "none pruned" 0 r.Explore.pruned

let tests =
  [
    Alcotest.test_case "basic run" `Quick test_basic_run;
    Alcotest.test_case "swarm: sticky uniqueness over 50 schedules" `Quick
      test_swarm_sticky_uniqueness;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "round-robin fairness" `Quick test_fairness_round_robin;
    Alcotest.test_case "daemons don't block quiescence" `Quick
      test_daemon_quiescence;
    Alcotest.test_case "budget exhaustion" `Quick test_budget;
    Alcotest.test_case "kill" `Quick test_kill;
    Alcotest.test_case "enabled mask" `Quick test_enabled_mask;
    Alcotest.test_case "exception captured" `Quick test_exception_captured;
    Alcotest.test_case "on_failure hook fires (not on kill)" `Quick
      test_on_failure_hook;
    Alcotest.test_case "permission violation reaches fiber" `Quick
      test_permission_violation_hits_fiber;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "self pid" `Quick test_self;
    Alcotest.test_case "explorer covers interleavings" `Quick
      test_explore_race;
  ]
