(* Observability layer (lib/obs): the seam itself, trace export,
   golden-trace regression against committed fixtures, and the
   trace-driven checker path — a recorded event stream must reproduce
   the verdicts of the direct-history checkers.

   To regenerate a golden fixture after an intentional trace change:
     dune exec bin/lnd_cli.exe -- trace --seed 1 \
       --out test/fixtures/traces/chaos_seed1_register.jsonl
   (seed 4 for the broadcast fixture; --seed 4 --crash for recovery). *)

module Obs = Lnd_obs.Obs
module Trace = Lnd_obs.Trace
module Metrics = Lnd_obs.Metrics
module Chaos = Lnd_fuzz.Chaos
module Replay = Lnd_history.Trace_replay
module Inv = Lnd_history.Trace_invariants
module Byzlin = Lnd_history.Byzlin
module History = Lnd_history.History
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module Space = Lnd_shm.Space

(* ---- the seam ---- *)

let test_null_sink () =
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  (* All entry points are no-ops when no sink is installed. *)
  Obs.emit (Obs.Sched_switch { fid = 0; fname = "f" });
  let id = Obs.span_open ~name:"WRITE" ~arg:"v" () in
  Alcotest.(check int) "disabled span id is 0" 0 id;
  Obs.span_close ~name:"WRITE" ~result:"done" id

let with_trace ?keep f =
  let tr = Trace.create ?keep () in
  Obs.install (Trace.sink tr);
  Fun.protect ~finally:(fun () -> Obs.uninstall ()) (fun () -> f tr);
  Trace.finish tr;
  tr

let test_span_nesting () =
  let tr =
    with_trace (fun _ ->
        let a = Obs.span_open ~pid:1 ~name:"READ" () in
        let b = Obs.span_open ~pid:1 ~name:"HELP" () in
        Obs.span_close ~pid:1 ~name:"HELP" ~result:"done" b;
        Obs.span_close ~pid:1 ~name:"READ" ~result:"v:x" a)
  in
  Alcotest.(check (option string)) "well nested" None
    (Trace.check_nesting (Trace.events tr))

let test_finish_closes_dangling () =
  let tr =
    with_trace (fun _ ->
        let a = Obs.span_open ~pid:1 ~name:"WRITE" () in
        let _b = Obs.span_open ~pid:2 ~name:"HELP" () in
        (* [a] and [b] both left open, as if their fibers were killed. *)
        ignore a)
  in
  Alcotest.(check (option string)) "finish repairs nesting" None
    (Trace.check_nesting (Trace.events tr));
  let aborted =
    List.length
      (List.filter
         (fun (e : Obs.event) ->
           match e.kind with
           | Obs.Span_close { aborted = true; _ } -> true
           | _ -> false)
         (Trace.events tr))
  in
  Alcotest.(check int) "both spans force-closed" 2 aborted

let test_nesting_detects_violations () =
  (* A close whose parent closed first must be flagged. *)
  let ev at span kind = { Obs.at; pid = 0; span; kind } in
  let bad =
    [
      ev 0 1 (Obs.Span_open { name = "A"; arg = None; parent = 0 });
      ev 1 2 (Obs.Span_open { name = "B"; arg = None; parent = 1 });
      ev 2 1 (Obs.Span_close { name = "A"; result = None; aborted = false });
      ev 3 2 (Obs.Span_close { name = "B"; result = None; aborted = false });
    ]
  in
  Alcotest.(check bool) "parent-before-child flagged" true
    (Trace.check_nesting bad <> None)

let test_json_escaping () =
  let e =
    {
      Obs.at = 3;
      pid = 1;
      span = 2;
      kind = Obs.Span_open { name = "WRITE"; arg = Some "a\"b\\c\nd"; parent = 0 };
    }
  in
  Alcotest.(check string) "escaped"
    {|{"at":3,"pid":1,"span":2,"ev":"span_open","name":"WRITE","parent":0,"arg":"a\"b\\c\nd"}|}
    (Trace.event_to_json e)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_diff () =
  Alcotest.(check (option string)) "identical" None
    (Trace.diff ~expected:"a\nb\n" ~actual:"a\nb\n");
  (match Trace.diff ~expected:"a\nb\n" ~actual:"a\nc\n" with
  | None -> Alcotest.fail "divergence missed"
  | Some d ->
      Alcotest.(check bool) "reports first divergent event" true
        (contains ~sub:"1" d && contains ~sub:"c" d));
  Alcotest.(check bool) "truncation reported" true
    (Trace.diff ~expected:"a\nb\n" ~actual:"a\n" <> None)

let test_diff_edge_cases () =
  (* two empty traces agree; an empty side diverges at line 0 *)
  Alcotest.(check (option string)) "both empty" None
    (Trace.diff ~expected:"" ~actual:"");
  Alcotest.(check bool) "unexpected first event" true
    (Trace.diff ~expected:"" ~actual:"a\n" <> None);
  Alcotest.(check bool) "expected event missing" true
    (Trace.diff ~expected:"a\n" ~actual:"" <> None);
  (* byte-unequal but event-equal traces are still flagged, with a
     message blaming layout rather than a phantom divergent event *)
  Alcotest.(check bool) "layout-only difference named as such" true
    (match Trace.diff ~expected:"a\nb\n" ~actual:"a\nb" with
    | Some msg -> contains ~sub:"whitespace" msg
    | None -> false)

(* A dangling span closed by [finish] is exported like any other close,
   flagged aborted, after every live event — so evidence indices into
   the live stream stay valid line numbers. *)
let test_aborted_close_exported () =
  let tr =
    with_trace (fun _ ->
        let a = Obs.span_open ~pid:1 ~name:"WRITE" ~arg:"v" () in
        ignore a;
        Obs.emit ~pid:2 (Obs.Link_incarnation { epoch = 0 }))
  in
  let jsonl = Trace.to_jsonl tr in
  Jsonchk.check_jsonl ~what:"jsonl with aborted close" jsonl;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "open + incarnation + synthetic close" 3
    (List.length lines);
  let last = List.nth lines 2 in
  Alcotest.(check bool) "synthetic close is last and aborted" true
    (contains ~sub:"aborted" last && contains ~sub:"WRITE" last);
  Alcotest.(check (option string)) "stream stays well-nested" None
    (Trace.check_nesting (Trace.events tr))

(* ---- exports are real JSON ---- *)

let test_exports_parse () =
  let _, tr =
    Chaos.run_traced ~keep:Chaos.compact_keep (Chaos.generate_crash 4)
  in
  Jsonchk.check_jsonl ~what:"JSONL export" (Trace.to_jsonl tr);
  Jsonchk.check ~what:"Chrome trace export" (Trace.to_chrome tr);
  (* escaping-hostile payloads survive both exporters *)
  let tr =
    with_trace (fun _ ->
        let s =
          Obs.span_open ~pid:0 ~name:"WRITE" ~arg:"quote\" slash\\ nl\n" ()
        in
        Obs.span_close ~pid:0 ~result:"ctrl\x01 done" ~name:"WRITE" s)
  in
  Jsonchk.check_jsonl ~what:"hostile JSONL" (Trace.to_jsonl tr);
  Jsonchk.check ~what:"hostile Chrome trace" (Trace.to_chrome tr)

(* ---- metrics registry ---- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Metrics.incr ~by:4 m "x";
  Metrics.set_gauge m "g" 7;
  List.iter (Metrics.observe m "h") [ 5; 1; 9; 3; 7 ];
  Alcotest.(check int) "counter" 5 (Metrics.counter m "x");
  Alcotest.(check (option int)) "gauge" (Some 7) (Metrics.gauge m "g");
  (match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 5 h.Metrics.count;
      Alcotest.(check int) "sum" 25 h.Metrics.sum;
      Alcotest.(check int) "p50 nearest-rank" 5 h.Metrics.p50;
      Alcotest.(check int) "p95 nearest-rank" 9 h.Metrics.p95;
      Alcotest.(check int) "p99 nearest-rank" 9 h.Metrics.p99);
  Alcotest.(check string) "deterministic dump"
    "counter x 5\ngauge g 7\nhist h count=5 sum=25 min=1 max=9 p50=5 p95=9 \
     p99=9\n"
    (Metrics.dump m);
  Jsonchk.check ~what:"metrics JSON snapshot" (Metrics.to_json m);
  Alcotest.(check string) "deterministic JSON snapshot"
    "{\"counters\":{\"x\":5},\"gauges\":{\"g\":7},\"hists\":{\"h\":{\"count\":5,\
     \"sum\":25,\"min\":1,\"max\":9,\"p50\":5,\"p95\":9,\"p99\":9}}}"
    (Metrics.to_json m);
  (* arena-overflow reconciliation: a lossy trace surfaces its drop
     count; a complete one adds no key *)
  Alcotest.(check int) "trace.dropped surfaced" 3
    (Metrics.counter (Metrics.of_events ~dropped:3 []) "trace.dropped");
  Alcotest.(check int) "no dropped key when complete" 0
    (Metrics.counter (Metrics.of_events []) "trace.dropped")

(* ---- golden-trace regression ---- *)

let fixture name = Filename.concat "fixtures/traces" name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden ~name ~scenario () =
  let _, tr = Chaos.run_traced ~keep:Chaos.compact_keep scenario in
  let actual = Trace.to_jsonl tr in
  (* Determinism: the same seed replays to the same byte stream. *)
  let _, tr2 = Chaos.run_traced ~keep:Chaos.compact_keep scenario in
  (match Trace.diff ~expected:actual ~actual:(Trace.to_jsonl tr2) with
  | None -> ()
  | Some d -> Alcotest.failf "same seed, different trace:\n%s" d);
  (* Regression: byte-identical to the committed fixture. *)
  let expected = read_file (fixture name) in
  match Trace.diff ~expected ~actual with
  | None -> ()
  | Some d ->
      Alcotest.failf
        "trace for %s diverged from fixture (regenerate with lnd_cli trace \
         if intentional):\n\
         %s"
        name d

let golden_register = golden ~name:"chaos_seed1_register.jsonl"
let golden_broadcast = golden ~name:"chaos_seed4_broadcast.jsonl"
let golden_crash = golden ~name:"chaos_crash4_recovery.jsonl"

(* The golden traces stay well-nested and survive the nesting checker
   even with per-step events filtered out. *)
let test_golden_nesting () =
  List.iter
    (fun scenario ->
      let _, tr = Chaos.run_traced ~keep:Chaos.compact_keep scenario in
      Alcotest.(check (option string)) "well nested" None
        (Trace.check_nesting (Trace.events tr)))
    [ Chaos.generate 1; Chaos.generate 4; Chaos.generate_crash 4 ]

(* ---- trace-driven checkers ---- *)

(* Run an adversarial verifiable-register execution with BOTH recording
   paths active — the direct in-memory history + Space access ring, and
   the Obs trace — then check that the trace-reconstructed history and
   access list drive Byzlin / Trace_invariants to the same verdicts. *)
let test_trace_driven_verifiable () =
  let module Sys = Lnd_verifiable.System in
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed:11) ~n ~f ~byzantine:[ 3 ] () in
  Space.set_trace t.space ~capacity:300_000;
  let tr = Trace.create () in
  Obs.install (Trace.sink tr);
  Fun.protect
    ~finally:(fun () -> Obs.uninstall ())
    (fun () ->
      ignore
        (Lnd_byz.Byz_verifiable.spawn_flipflop t.sched t.regs ~pid:3 ~v:"v");
      ignore
        (Sys.client t ~pid:0 ~name:"w" (fun () ->
             Sys.op_write t "v";
             ignore (Sys.op_sign t "v")));
      for pid = 1 to 2 do
        ignore
          (Sys.client t ~pid
             ~name:(Printf.sprintf "r%d" pid)
             (fun () ->
               ignore (Sys.op_read t ~pid);
               ignore (Sys.op_verify t ~pid "v")))
      done;
      match Sys.run ~max_steps:2_000_000 t with
      | Sched.Quiescent -> ()
      | _ -> Alcotest.fail "stuck");
  Trace.finish tr;
  let evs = Trace.events tr in
  let correct pid = t.correct.(pid) in
  (* 1. the reconstructed history matches the directly recorded one *)
  let direct = History.entries t.history in
  let replayed = History.entries (Replay.verifiable_history evs) in
  Alcotest.(check int) "same operation count" (List.length direct)
    (List.length replayed);
  List.iter2
    (fun (d : _ History.entry) (r : _ History.entry) ->
      Alcotest.(check bool) "same op" true (d.History.op = r.History.op);
      Alcotest.(check int) "same pid" d.History.pid r.History.pid;
      Alcotest.(check bool) "same result" true
        (Option.map fst d.History.ret = Option.map fst r.History.ret))
    direct replayed;
  (* 2. Byzlin reaches the same verdict through either path *)
  let v_direct = Sys.byz_linearizable t in
  let v_trace =
    Byzlin.verifiable ~writer:0 ~correct (Replay.verifiable_history evs)
  in
  Alcotest.(check bool) "direct verdict" true v_direct;
  Alcotest.(check bool) "trace-driven verdict agrees" v_direct v_trace;
  (* 3. the trace's access stream equals the Space ring, and the
        appendix invariants agree on it *)
  let ring = Space.trace t.space in
  let mirrored = Replay.accesses evs in
  Alcotest.(check int) "same access count" (List.length ring)
    (List.length mirrored);
  List.iter2
    (fun (a : Space.access) (b : Space.access) ->
      Alcotest.(check int) "seq" a.Space.acc_seq b.Space.acc_seq;
      Alcotest.(check int) "pid" a.Space.acc_pid b.Space.acc_pid;
      Alcotest.(check string) "reg" a.Space.acc_reg b.Space.acc_reg;
      Alcotest.(check bool) "kind" true (a.Space.acc_kind = b.Space.acc_kind))
    ring mirrored;
  Alcotest.(check int) "invariants: direct" 0
    (List.length (Inv.check_verifiable ~correct ring));
  Alcotest.(check int) "invariants: trace-driven" 0
    (List.length (Inv.check_verifiable ~correct mirrored))

(* Same double-path check for the sticky register under an equivocating
   Byzantine writer. *)
let test_trace_driven_sticky () =
  let module Sys = Lnd_sticky.System in
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed:5) ~n ~f ~byzantine:[ 0 ] () in
  Space.set_trace t.space ~capacity:300_000;
  let tr = Trace.create () in
  Obs.install (Trace.sink tr);
  Fun.protect
    ~finally:(fun () -> Obs.uninstall ())
    (fun () ->
      ignore
        (Lnd_byz.Byz_sticky.spawn_equivocating_writer t.sched t.regs ~va:"a"
           ~vb:"b" ~flip_after:2 ());
      for pid = 1 to 3 do
        ignore
          (Sys.client t ~pid
             ~name:(Printf.sprintf "r%d" pid)
             (fun () -> ignore (Sys.op_read t ~pid)))
      done;
      match Sys.run ~max_steps:2_000_000 t with
      | Sched.Quiescent -> ()
      | _ -> Alcotest.fail "stuck");
  Trace.finish tr;
  let evs = Trace.events tr in
  let correct pid = t.correct.(pid) in
  let v_direct = Sys.byz_linearizable t in
  let v_trace = Byzlin.sticky ~writer:0 ~correct (Replay.sticky_history evs) in
  Alcotest.(check bool) "direct verdict" true v_direct;
  Alcotest.(check bool) "trace-driven verdict agrees" v_direct v_trace;
  Alcotest.(check int) "invariants: trace-driven" 0
    (List.length (Inv.check_sticky ~correct (Replay.accesses evs)))

(* ---- trace-derived metrics agree with the harness's own counters ---- *)

let test_metrics_match_report () =
  (* Non-crash scenario: rlinks live for the whole run, so the report's
     link counters must equal the event-derived ones exactly. *)
  let scenario = Chaos.generate 1 in
  let outcome, tr = Chaos.run_traced scenario in
  match outcome with
  | Error msg -> Alcotest.failf "scenario failed: %s" msg
  | Ok r ->
      let m = Metrics.of_events (Trace.events tr) in
      Alcotest.(check int) "data_sent" r.Chaos.data_sent
        (Metrics.counter m "rlink.data_sent");
      Alcotest.(check int) "retransmissions" r.Chaos.retransmissions
        (Metrics.counter m "rlink.retransmissions");
      Alcotest.(check int) "redundant" r.Chaos.redundant
        (Metrics.counter m "rlink.redundant");
      Alcotest.(check int) "fsyncs" r.Chaos.fsyncs
        (Metrics.counter m "wal.fsyncs");
      Alcotest.(check int) "volatile scenario journals nothing" 0
        (Metrics.counter m "wal.fsyncs")

let tests =
  [
    Alcotest.test_case "null sink: disabled and free" `Quick test_null_sink;
    Alcotest.test_case "spans nest and close" `Quick test_span_nesting;
    Alcotest.test_case "finish closes dangling spans as aborted" `Quick
      test_finish_closes_dangling;
    Alcotest.test_case "nesting checker flags violations" `Quick
      test_nesting_detects_violations;
    Alcotest.test_case "JSONL escaping is exact" `Quick test_json_escaping;
    Alcotest.test_case "trace diff pinpoints divergence" `Quick test_diff;
    Alcotest.test_case "trace diff edge cases" `Quick test_diff_edge_cases;
    Alcotest.test_case "aborted close exported after live events" `Quick
      test_aborted_close_exported;
    Alcotest.test_case "JSONL and Chrome exports parse as JSON" `Quick
      test_exports_parse;
    Alcotest.test_case "metrics registry: deterministic dump" `Quick
      test_metrics_registry;
    Alcotest.test_case "golden trace: register links (seed 1)" `Quick
      (golden_register ~scenario:(Chaos.generate 1));
    Alcotest.test_case "golden trace: broadcast links (seed 4)" `Quick
      (golden_broadcast ~scenario:(Chaos.generate 4));
    Alcotest.test_case "golden trace: crash+recovery (seed 4)" `Quick
      (golden_crash ~scenario:(Chaos.generate_crash 4));
    Alcotest.test_case "golden traces stay well-nested" `Quick
      test_golden_nesting;
    Alcotest.test_case "trace-driven Byzlin + invariants: verifiable" `Quick
      test_trace_driven_verifiable;
    Alcotest.test_case "trace-driven Byzlin + invariants: sticky" `Quick
      test_trace_driven_sticky;
    Alcotest.test_case "trace-derived metrics match the chaos report" `Quick
      test_metrics_match_report;
  ]
