(* Sem fixture: seeded sign-before-send violations. Compiled for its
   cmt, never run. *)

module Sigoracle = Lnd_crypto.Sigoracle
module Transport = Lnd_msgpass.Transport
open Lnd_support

type cert = { value : string; who : int; proof : Sigoracle.signature }

let cert_key : cert Univ.key =
  Univ.key ~name:"sem_bad_sign.cert"
    ~pp:(fun fmt c -> Format.fprintf fmt "cert(%s,p%d)" c.value c.who)
    ~equal:(fun a b -> a.value = b.value && a.who = b.who)

(* VIOLATION: a locally fabricated claim goes on the wire unsigned. *)
let brag (ep : Transport.t) =
  let c = { value = "lie"; who = 9; proof = Sigoracle.forge ~signer:9 ~msg:"lie" } in
  Transport.broadcast ep (Univ.inj cert_key c)

(* VIOLATION: hand-building the oracle's signature record is a forgery
   by construction, sink or no sink. *)
let conjure () : Sigoracle.signature =
  { Sigoracle.token = 0; sig_signer = 1; sig_msg = "m" }

(* ok: the claim is signed before it leaves. *)
let honest (oracle : Sigoracle.t) (ep : Transport.t) ~pid msg =
  let proof = Sigoracle.sign oracle ~by:pid msg in
  let c = { value = msg; who = pid; proof } in
  Transport.broadcast ep (Univ.inj cert_key c)
