(* Sem fixture: seeded sync-before-speak violations. Compiled for its
   cmt, never run. *)

module Wal = Lnd_durable.Wal
module Transport = Lnd_msgpass.Transport

(* VIOLATION: journal then speak, no sync barrier. *)
let leak_unsynced w (ep : Transport.t) u =
  Wal.append w "promise";
  ep.Transport.send ~dst:0 u

(* ok: journal, sync, only then speak. *)
let disciplined w ep u =
  Wal.append w "promise";
  Wal.sync w;
  Transport.broadcast ep u

(* Speaking on a clean journal is fine in itself... *)
let speak ep u = Transport.broadcast ep u

(* VIOLATION (interprocedural, flagged at the call site): the helper
   speaks over this caller's dirty journal. *)
let leak_via_helper w ep u =
  Wal.append w "promise";
  speak ep u

(* VIOLATION (path-sensitive): only one branch syncs, the send is still
   reachable with the journal dirty. *)
let leak_one_branch w (ep : Transport.t) u ~hurry =
  Wal.append w "promise";
  if not hurry then Wal.sync w;
  ep.Transport.send ~dst:1 u

(* suppressed: the deliberate deferred-barrier pattern round-trips
   through [@lnd.allow "sem-ordering: ..."]. *)
let deferred_barrier w (ep : Transport.t) u =
  Wal.append w "echo";
  (ep.Transport.send ~dst:2 u
  [@lnd.allow
    "sem-ordering: fixture replica of the deferred-ack barrier pattern \
     — recovery re-derives and re-sends this message"])
