(* Sem fixture: seeded verify-before-trust violations. Compiled for its
   cmt, never run. *)

module Sigoracle = Lnd_crypto.Sigoracle
module Cell = Lnd_runtime.Cell
open Lnd_support

type cert = { value : string; who : int; proof : Sigoracle.signature }

let cert_key : cert Univ.key =
  Univ.key ~name:"sem_bad_verify.cert"
    ~pp:(fun fmt c -> Format.fprintf fmt "cert(%s,p%d)" c.value c.who)
    ~equal:(fun a b -> a.value = b.value && a.who = b.who)

let nocert =
  { value = ""; who = -1; proof = Sigoracle.forge ~signer:(-1) ~msg:"" }

(* VIOLATION: a claim read from a shared register influences register
   state with no verification on the path. *)
let parrot (reg : Cell.t) (out : Cell.t) =
  let c = Univ.prj_default cert_key ~default:nocert (Cell.read reg) in
  Cell.write out (Univ.inj cert_key c)

(* ok: verified before trusted. *)
let skeptic (oracle : Sigoracle.t) (reg : Cell.t) (out : Cell.t) =
  let c = Univ.prj_default cert_key ~default:nocert (Cell.read reg) in
  if Sigoracle.verify oracle ~signer:c.who ~msg:c.value c.proof then
    Cell.write out (Univ.inj cert_key c)

(* ok (interprocedural): the verify happens inside a local helper, seen
   through its may-verify summary. *)
let valid (oracle : Sigoracle.t) (c : cert) =
  Sigoracle.verify oracle ~signer:c.who ~msg:c.value c.proof

let careful (oracle : Sigoracle.t) (reg : Cell.t) (out : Cell.t) =
  let c = Univ.prj_default cert_key ~default:nocert (Cell.read reg) in
  if valid oracle c then Cell.write out (Univ.inj cert_key c)
