(* Sem fixture: seeded [@lnd.pure] violations. Compiled for its cmt,
   never run. *)

module Wal = Lnd_durable.Wal
module Transport = Lnd_msgpass.Transport
module Sched = Lnd_runtime.Sched

(* Non-local state: mutating it from a pure core is the violation. *)
let hits : (string, int) Hashtbl.t = Hashtbl.create 8

(* VIOLATION: mutates a table the function did not allocate. *)
let[@lnd.pure] tally k = Hashtbl.replace hits k 1

(* VIOLATION: a pure core may not touch the transport. *)
let[@lnd.pure] leak_send ep u = Transport.broadcast ep u

(* VIOLATION: calling the scheduler is the driver's job. *)
let[@lnd.pure] impatient () = Sched.yield ()

(* An effectful helper a pure core must not launder through. *)
let log_effect w = Wal.append w "x"

(* VIOLATION (transitive): the effect hides one call deep. *)
let[@lnd.pure] launder w = log_effect w

(* ok: mutating state the function allocated itself is effect-free. *)
let[@lnd.pure] sum_fresh l =
  let acc = ref 0 in
  List.iter (fun x -> acc := !acc + x) l;
  !acc

(* suppressed: a justified exception round-trips. *)
let[@lnd.pure] memoized cache n =
  (Hashtbl.replace cache n n
  [@lnd.allow
    "sem-pure: fixture replica of a justified memo-table write — the \
     cache is observationally pure"]);
  n
