(* Lint fixture: parallel-backend code narrating domain progress to the
   std streams instead of recording typed events through the Obs sink —
   the trace-parity gate depends on runs staying silent and
   byte-identical under the Null sink. Parsed by the lint tests, never
   built. *)

let narrate_merge ~dom ~events =
  print_endline "merging domain arena";
  Printf.printf "domain %d recorded %d events\n" dom events;
  Format.eprintf "arena overflow on domain %d@." dom;
  prerr_endline "dropped events!"
