(* Lint fixture: a catch-all exception handler. Parsed by the lint
   tests, never built. *)

let quietly f = try f () with _ -> ()
