(* Lint fixture: protocol code reaching below the Transport seam.
   Parsed by the lint tests, never built. *)

let blast net ~pid payload =
  let port = Net.port net ~pid in
  Net.broadcast port payload
