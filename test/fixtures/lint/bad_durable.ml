(* Lint fixture: protocol code reaching below the Wal onto the raw disk.
   Parsed by the lint tests, never built. *)

let sneak_past_the_wal disk record =
  Disk.append disk ~file:"wal.0" record;
  Disk.fsync disk ~file:"wal.0"

let peek disk = Lnd_durable.Disk.read disk ~file:"wal.0"
