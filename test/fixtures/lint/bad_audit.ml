(* Lint fixture: an auditor breaking the contracts lib/audit is held to
   — unordered iteration over its evidence ledger (accusation order
   would depend on hash layout), an inline f+1 witness threshold
   instead of Lnd_support.Quorum, and an accusation printed straight to
   stdout instead of flowing through the Obs sink. Parsed by the lint
   tests, never built. *)

let sweep ledger out = Hashtbl.iter (fun pid ev -> out := (pid, ev) :: !out) ledger

let enough_witnesses ~f votes = List.length votes >= f + 1

let publish pid rule = Printf.printf "ACCUSE p%d: %s\n" pid rule
