(* Lint fixture: [@lnd.allow] hygiene over the sem rule namespace — an
   unknown rule and a justification-free sem suppression are findings;
   a justified sem-rule suppression parses clean through the shared
   grammar (it silences nothing here: it names a different rule than
   the one firing). Parsed by the lint tests, never built. *)

let quiet_unknown tbl acc =
  (Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) tbl
  [@lnd.allow "sem-bogus: not a rule either catalogue knows"])

let quiet_nojust tbl acc =
  (Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) tbl
  [@lnd.allow "sem-ordering"])

let quiet_known tbl acc =
  (Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) tbl
  [@lnd.allow
    "sem-ordering: names a known sem rule with a reason, so hygiene \
     accepts it; the determinism finding still fires"])
