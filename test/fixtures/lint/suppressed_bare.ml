(* Lint fixture: a suppression with no justification — the suppression
   itself is the finding. Parsed by the lint tests, never built. *)

let drain tbl acc =
  (Hashtbl.iter
     (fun k v -> acc := (k, v) :: !acc)
     tbl
   [@lnd.allow "determinism"])
