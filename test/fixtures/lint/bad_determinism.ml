(* Lint fixture: two determinism violations — ambient randomness and an
   unordered Hashtbl iteration. Parsed by the lint tests, never built. *)

let roll () = Random.int 6

let drain tbl acc =
  Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) tbl

(* to_seq is iteration in disguise: same unspecified bucket order. *)
let spill tbl = List.of_seq (Hashtbl.to_seq tbl)
