(* Lint fixture: protocol code printing straight to the std streams
   instead of emitting through the Obs sink. Parsed by the lint tests,
   never built. *)

let narrate_round ~round acks =
  print_string "round ";
  print_int round;
  Printf.printf " acks=%d\n" (List.length acks);
  Format.eprintf "still waiting@."
