(* Lint fixture: a violation under a justified [@lnd.allow] — must lint
   clean. Parsed by the lint tests, never built. *)

let drain tbl acc =
  (Hashtbl.iter
     (fun k v -> acc := (k, v) :: !acc)
     tbl
   [@lnd.allow
     "determinism: the accumulator is re-sorted by the caller, so \
      iteration order is immaterial here"])
