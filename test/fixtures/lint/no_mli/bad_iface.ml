(* Lint fixture: a library module with no .mli. Parsed by the lint
   tests, never built. *)

let answer = 42
