(* Lint fixture: determinism violations in model-checker-shaped code —
   exactly the bugs that would silently diverge a replayed schedule.
   Parsed by the lint tests, never built. *)

let pick_branch backtrack = List.nth backtrack (Random.int (List.length backtrack))

let drain_sleep_sets sleeping acc =
  Hashtbl.iter (fun step fids -> acc := (step, fids) :: !acc) sleeping

let budget_left deadline = Sys.time () < deadline

let clocks_of vclocks = List.of_seq (Hashtbl.to_seq vclocks)
