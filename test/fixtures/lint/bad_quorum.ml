(* Lint fixture: every inline threshold shape the quorum-arithmetic rule
   knows. Parsed by the lint tests, never built. *)

let availability n f = n - f
let byz_quorum f = (2 * f) + 1
let min_system f = (3 * f) + 1
let one_correct cfg = cfg.f + 1
