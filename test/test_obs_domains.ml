(* Multi-domain observability (lib/obs arenas + merge): a committed
   golden JSONL trace for a real 4-domain run, merge-determinism across
   repeated runs, a property test that the deterministic merge is
   monotone in the clock stamp with stable tie-breaking, and format
   checks for the profiling exports built on merged traces.

   The golden workload is token-passing: four spawned domains take
   strictly serialized turns (an atomic token gates every emission), so
   even though the domains are real, every clock stamp, span id and
   arena registration is reproducible and the merged JSONL is
   byte-identical run to run. To regenerate the fixture after an
   intentional format change:
     LND_REGEN=1 dune exec test/main.exe -- test multi-domain
   (run from _build/default/test, then copy fixtures/traces/ back). *)

module Obs = Lnd_obs.Obs
module Trace = Lnd_obs.Trace
module Metrics = Lnd_obs.Metrics
module Profile = Lnd_obs.Profile
module Rng = Lnd_support.Rng
module Diff = Lnd_parallel.Diff

(* ---- serialized token-passing harness ---- *)

(* Run [turns] turns across [ndom] spawned domains. Turn [t] belongs to
   [owner t]; its domain spins on the token, runs [act t] (which may
   emit), and passes the token on. Returns the finished trace. *)
let token_run ?keep ?capacity ~ndom ~turns ~owner ~act () =
  let tr = Trace.create ?keep ?capacity () in
  let token = Atomic.make 0 in
  let clk = Atomic.make 0 in
  Obs.install ~clock:(fun () -> Atomic.get clk) (Trace.sink tr);
  let worker d () =
    for t = 0 to turns - 1 do
      if owner t = d then (
        while Atomic.get token <> t do
          Domain.cpu_relax ()
        done;
        act ~clk t;
        Atomic.set token (t + 1))
    done
  in
  let doms = List.init ndom (fun d -> Domain.spawn (worker d)) in
  Fun.protect ~finally:Obs.uninstall (fun () -> List.iter Domain.join doms);
  Trace.finish tr;
  tr

(* ---- golden 4-domain trace ---- *)

(* Each turn: a TOKEN span holding one Reg_round event, stamps from a
   fetch-and-add clock so every stamp is unique and the merge is the
   total clock order. 3 rounds x 4 domains = 12 spans in 4 arenas. *)
let golden_trace () =
  let tick clk = ignore (Atomic.fetch_and_add clk 1) in
  token_run ~ndom:4 ~turns:12
    ~owner:(fun t -> t mod 4)
    ~act:(fun ~clk t ->
      let pid = t mod 4 in
      tick clk;
      let sp =
        Obs.span_open ~pid ~name:"TOKEN" ~arg:(string_of_int (t / 4)) ()
      in
      tick clk;
      Obs.emit ~pid (Obs.Reg_round { reg = 0; round = "hold"; rid = t });
      tick clk;
      Obs.span_close ~pid ~name:"TOKEN" ~result:"passed" sp)
    ()

let fixture = Filename.concat "fixtures/traces" "domains_token4.jsonl"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_domains () =
  let tr = golden_trace () in
  let actual = Trace.to_jsonl tr in
  Alcotest.(check int) "all four domains registered arenas" 4
    (Trace.domains tr);
  Alcotest.(check int) "complete (nothing dropped)" 0 (Trace.dropped tr);
  Alcotest.(check (option string)) "merged trace is well-nested" None
    (Trace.check tr);
  Jsonchk.check_jsonl ~what:"4-domain JSONL" actual;
  (* merge determinism: a second real 4-domain run is byte-identical *)
  let again = Trace.to_jsonl (golden_trace ()) in
  (match Trace.diff ~expected:actual ~actual:again with
  | None -> ()
  | Some d -> Alcotest.failf "same workload, different merged trace:\n%s" d);
  if Sys.getenv_opt "LND_REGEN" = Some "1" then (
    let oc = open_out_bin fixture in
    output_string oc actual;
    close_out oc);
  match Trace.diff ~expected:(read_file fixture) ~actual with
  | None -> ()
  | Some d ->
      Alcotest.failf
        "4-domain trace diverged from fixture (LND_REGEN=1 to regenerate if \
         intentional):\n\
         %s"
        d

(* ---- merge order: monotone stamps, stable tie-breaking ---- *)

(* Seeded schedules with a coarse clock that deliberately produces stamp
   collisions across domains. The oracle is computed from the schedule:
   the merge must equal a stable sort on [at] of the arenas concatenated
   in registration order — equivalently (1) stamps are non-decreasing,
   (2) each domain's events keep their emission order, (3) equal stamps
   order by arena registration. Each emitted event carries a unique id
   in its [fid] so the merged order is fully observable. *)
let test_merge_monotone () =
  for seed = 1 to 25 do
    let rng = Rng.create (0x9e3779b9 + seed) in
    let ndom = 2 + Rng.int rng 3 in
    let turns = ndom + Rng.int rng 20 in
    (* first [ndom] turns visit every domain once in a seeded order, so
       arena registration order is [perm]; later turns are arbitrary *)
    let perm = Array.init ndom (fun i -> i) in
    Rng.shuffle rng perm;
    let owners =
      Array.init turns (fun t ->
          if t < ndom then perm.(t) else Rng.int rng ndom)
    in
    (* per-turn script: (advance clock first?, events to emit) *)
    let uid = ref 0 in
    let script =
      Array.init turns (fun _ ->
          let n = 1 + Rng.int rng 3 in
          Array.init n (fun _ ->
              let u = !uid in
              incr uid;
              (Rng.bool rng, u)))
    in
    let tr =
      token_run ~ndom ~turns
        ~owner:(fun t -> owners.(t))
        ~act:(fun ~clk t ->
          Array.iter
            (fun (adv, u) ->
              if adv then ignore (Atomic.fetch_and_add clk 1);
              Obs.emit ~pid:owners.(t)
                (Obs.Sched_spawn { fid = u; fname = "e"; daemon = false }))
            script.(t))
        ()
    in
    (* oracle: replay the schedule into per-domain arenas, stable-sort *)
    let arenas = Array.make ndom [] in
    let now = ref 0 in
    Array.iteri
      (fun t evs ->
        Array.iter
          (fun (adv, u) ->
            if adv then incr now;
            arenas.(owners.(t)) <- (!now, u) :: arenas.(owners.(t)))
          evs)
      script;
    let expected =
      List.stable_sort
        (fun (a, _) (b, _) -> compare a b)
        (List.concat_map
           (fun d -> List.rev arenas.(d))
           (Array.to_list perm))
    in
    let got =
      List.filter_map
        (fun (e : Obs.event) ->
          match e.kind with
          | Obs.Sched_spawn { fid; _ } -> Some (e.at, fid)
          | _ -> None)
        (Trace.events tr)
    in
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "seed %d: merge = stable sort on stamps" seed)
      expected got;
    (* and the merge is a pure function of the trace *)
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: merge idempotent" seed)
      true
      (Trace.events tr = Trace.events tr)
  done

(* ---- overflow stays loud through the merge ---- *)

let test_overflow_loud () =
  let tr =
    token_run ~capacity:4 ~ndom:2 ~turns:4
      ~owner:(fun t -> t mod 2)
      ~act:(fun ~clk:_ t ->
        for i = 0 to 3 do
          Obs.emit ~pid:(t mod 2)
            (Obs.Sched_spawn { fid = (10 * t) + i; fname = "e"; daemon = false })
        done)
      ()
  in
  Alcotest.(check bool) "events were dropped" true (Trace.dropped tr > 0);
  match Trace.check tr with
  | Some msg ->
      Alcotest.(check bool) "incompleteness named in the verdict" true
        (String.length msg > 0)
  | None -> Alcotest.fail "known-incomplete trace passed Trace.check"

(* ---- profiling exports ---- *)

(* Folded-stack grammar: every line is "frame(;frame)* <int>", the root
   frame is the process ("p<pid>"), values are non-negative, and lines
   arrive sorted (the export is deterministic by construction). *)
let check_folded ~what folded =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' folded)
  in
  Alcotest.(check bool) (what ^ ": non-empty") true (lines <> []);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "%s: no value separator in %S" what line
      | Some i ->
          let stack = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          (match int_of_string_opt v with
          | Some n when n >= 0 -> ()
          | _ -> Alcotest.failf "%s: bad self-time %S in %S" what v line);
          (match String.split_on_char ';' stack with
          | root :: _ when String.length root > 1 && root.[0] = 'p' -> ()
          | _ -> Alcotest.failf "%s: root frame not a process in %S" what line))
    lines;
  Alcotest.(check (list string)) (what ^ ": sorted") (List.sort compare lines)
    lines

let test_profile_folded () =
  let w = Diff.generate ~proto:Diff.Sticky 1 in
  let _, ti = Diff.sim_traced ~keep:(fun _ -> true) w in
  let evs = Lnd_obs.Trace.events ti.Diff.t_trace in
  let folded = Profile.to_folded evs in
  check_folded ~what:"sim folded stacks" folded;
  (* deterministic: same seed, same export *)
  let _, ti2 = Diff.sim_traced ~keep:(fun _ -> true) w in
  let folded2 =
    Profile.to_folded (Lnd_obs.Trace.events ti2.Diff.t_trace)
  in
  Alcotest.(check string) "profile is deterministic" folded folded2;
  (* the metrics snapshot from the same trace parses as JSON *)
  Jsonchk.check ~what:"metrics snapshot from traced run"
    (Metrics.to_json (Metrics.of_events ~dropped:ti.Diff.t_dropped evs))

(* Nested spans attribute self time to the inner frame: a parent holding
   the clock for 2 steps around a child holding it for 3 must fold to
   p1;A 2 and p1;A;B 3. *)
let test_profile_self_time () =
  let tr = Trace.create () in
  let clk = ref 0 in
  Obs.install ~clock:(fun () -> !clk) (Trace.sink tr);
  Fun.protect ~finally:Obs.uninstall (fun () ->
      let a = Obs.span_open ~pid:1 ~name:"A" () in
      incr clk;
      let b = Obs.span_open ~pid:1 ~name:"B" () in
      clk := !clk + 3;
      Obs.span_close ~pid:1 ~name:"B" ~result:"done" b;
      incr clk;
      Obs.span_close ~pid:1 ~name:"A" ~result:"done" a);
  Trace.finish tr;
  Alcotest.(check string) "self time excludes children"
    "p1;A 2\np1;A;B 3\n"
    (Profile.to_folded (Trace.events tr))

let tests =
  [
    Alcotest.test_case "golden 4-domain trace (token passing)" `Quick
      test_golden_domains;
    Alcotest.test_case "merge: monotone stamps, stable ties" `Quick
      test_merge_monotone;
    Alcotest.test_case "arena overflow fails the merged check" `Quick
      test_overflow_loud;
    Alcotest.test_case "folded-stack export: grammar + determinism" `Quick
      test_profile_folded;
    Alcotest.test_case "folded-stack export: self-time attribution" `Quick
      test_profile_self_time;
  ]
