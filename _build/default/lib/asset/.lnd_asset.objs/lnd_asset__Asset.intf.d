lib/asset/asset.mli: Format Lnd_broadcast Lnd_runtime Lnd_shm Lnd_support Value
