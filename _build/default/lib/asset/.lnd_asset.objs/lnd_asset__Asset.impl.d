lib/asset/asset.ml: Array Format List Lnd_broadcast Lnd_support Printf String Value
