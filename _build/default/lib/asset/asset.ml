(* Asset transfer, signature-free — the third Cohen-Keidar object the
   paper's Section 1.1/2 says can be translated onto its registers.

   The object: every process owns one account with an initial balance.
   TRANSFER(dst, amount) by the owner moves funds; BALANCE(acct) reads a
   (conservative) balance. Asset transfer famously needs no consensus:
   only the *owner* orders its own outgoing transfers. What it does need
   is exactly what sticky registers provide without signatures:

   - authenticity: a transfer in account a's ledger really was issued by
     a's owner (the SWMR write port);
   - non-equivocation: a Byzantine owner cannot show different k-th
     transfers to different validators (stickiness / uniqueness);
   - durability: once a validator has seen transfer k, it cannot be
     denied (stickiness again).

   Each account's outgoing transfers occupy the sticky slots of one
   sender row in a [Broadcast.Neq] grid. Validators replay transfers in
   deterministic (owner, slot) order, skipping any transfer that would
   overdraw — so a Byzantine owner's overdraft attempt is rejected
   identically by every correct validator.

   Balance semantics: BALANCE returns the balance according to the
   validator's current (prefix-closed) view. Views grow monotonically:
   stickiness means a later view can only extend an earlier one, never
   contradict it — tested as the "settled prefix agreement" property. *)

open Lnd_support
module Neq = Lnd_broadcast.Broadcast.Neq

(* Sequential specification (pid-indexed: a TRANSFER's source account is
   the invoking process). Balances start at [initial_balance] per
   account; a transfer succeeds iff the source can afford it. *)
module Asset_spec = struct
  type op = Transfer of { dst : int; amount : int } | Balance of int
  type res = Ack of bool | Amount of int
  type state = { balances : int array }

  let init ~n ~initial_balance = { balances = Array.make n initial_balance }

  let apply_by (s : state) ~pid = function
    | Transfer { dst; amount } ->
        let n = Array.length s.balances in
        if
          amount > 0 && dst >= 0 && dst < n && dst <> pid
          && s.balances.(pid) >= amount
        then begin
          let balances = Array.copy s.balances in
          balances.(pid) <- balances.(pid) - amount;
          balances.(dst) <- balances.(dst) + amount;
          ({ balances }, Ack true)
        end
        else (s, Ack false)
    | Balance acct -> (s, Amount s.balances.(acct))

  let res_equal a b =
    match (a, b) with
    | Ack x, Ack y -> x = y
    | Amount x, Amount y -> x = y
    | (Ack _ | Amount _), _ -> false

  let pp_op fmt = function
    | Transfer { dst; amount } ->
        Format.fprintf fmt "TRANSFER(->p%d, %d)" dst amount
    | Balance acct -> Format.fprintf fmt "BALANCE(p%d)" acct

  let pp_res fmt = function
    | Ack b -> Format.fprintf fmt "ack(%b)" b
    | Amount k -> Format.fprintf fmt "%d" k
end

type transfer = { dst : int; amount : int }

let encode (tr : transfer) : Value.t = Printf.sprintf "%d:%d" tr.dst tr.amount

let decode (s : Value.t) : transfer option =
  match String.split_on_char ':' s with
  | [ d; a ] -> (
      match (int_of_string_opt d, int_of_string_opt a) with
      | Some dst, Some amount -> Some { dst; amount }
      | _ -> None)
  | _ -> None

type t = {
  n : int;
  slots : int;
  initial_balance : int;
  grid : Neq.t;
  next_slot : int array; (* per-owner, owner-maintained *)
  issued : transfer list array; (* per-owner local record of own issues *)
}

let create space sched ~n ~f ~slots ~initial_balance ?(byzantine = []) () : t =
  {
    n;
    slots;
    initial_balance;
    grid = Neq.create space sched ~n ~f ~slots ~byzantine ();
    next_slot = Array.make n 0;
    issued = Array.make n [];
  }

(* Replay a set of (owner, slot, transfer-string) triples in deterministic
   order; invalid and overdrawing transfers are skipped. Returns balances. *)
let replay (t : t) (entries : (int * int * Value.t) list) : int array =
  let balance = Array.make t.n t.initial_balance in
  List.iter
    (fun (owner, _slot, raw) ->
      match decode raw with
      | Some { dst; amount }
        when dst >= 0 && dst < t.n && dst <> owner && amount > 0
             && balance.(owner) >= amount ->
          balance.(owner) <- balance.(owner) - amount;
          balance.(dst) <- balance.(dst) + amount
      | _ -> () (* rejected deterministically *))
    (List.sort compare entries);
  balance

(* The validator's current view: every delivered slot of every account,
   plus its own issued transfers (local knowledge). Call from a fiber of
   [pid]. *)
let view (t : t) ~pid : (int * int * Value.t) list =
  let entries = ref [] in
  List.iteri
    (fun slot tr -> entries := (pid, slot, encode tr) :: !entries)
    (List.rev t.issued.(pid));
  for owner = 0 to t.n - 1 do
    if owner <> pid then
      for slot = 0 to t.slots - 1 do
        match Neq.deliver t.grid ~reader:pid ~sender:owner ~slot with
        | Some raw -> entries := (owner, slot, raw) :: !entries
        | None -> ()
      done
  done;
  !entries

(* TRANSFER by the owner [src]; validated against the owner's own current
   view before issuing. Returns true iff the transfer was issued. Call
   from a fiber of [src]. *)
let transfer (t : t) ~src ~dst ~amount : bool =
  if amount <= 0 || dst < 0 || dst >= t.n || dst = src then false
  else begin
    let balances = replay t (view t ~pid:src) in
    if balances.(src) < amount || t.next_slot.(src) >= t.slots then false
    else begin
      let slot = t.next_slot.(src) in
      t.next_slot.(src) <- slot + 1;
      let tr = { dst; amount } in
      t.issued.(src) <- t.issued.(src) @ [ tr ];
      Neq.bcast t.grid ~sender:src ~slot (encode tr);
      true
    end
  end

(* BALANCE of [acct] according to [pid]'s current view. *)
let balance (t : t) ~pid ~acct : int =
  if acct < 0 || acct >= t.n then invalid_arg "Asset.balance: bad account";
  (replay t (view t ~pid)).(acct)

(* Full ledger according to [pid]'s view. *)
let ledger (t : t) ~pid : int array = replay t (view t ~pid)

(* Conservation: any replayed ledger sums to n * initial_balance. *)
let conserved (t : t) (ledger : int array) : bool =
  Array.fold_left ( + ) 0 ledger = t.n * t.initial_balance

(* Settled-prefix agreement: [earlier] is consistent with [later] if every
   (owner, slot) transfer in the earlier view appears identically in the
   later one (stickiness guarantees this across validators and time). *)
let prefix_consistent ~(earlier : (int * int * Value.t) list)
    ~(later : (int * int * Value.t) list) : bool =
  List.for_all
    (fun (o, s, v) ->
      match
        List.find_opt (fun (o', s', _) -> o = o' && s = s') later
      with
      | Some (_, _, v') -> Value.equal v v'
      | None -> false)
    earlier
