(** Asset transfer, signature-free — the third Cohen-Keidar application
    the paper's Sections 1.1/2 say can be translated onto its registers.

    Every process owns one account; TRANSFER(dst, amount) by the owner
    moves funds; BALANCE reads a validator's current view. Asset transfer
    needs no consensus — only the owner orders its own outgoing
    transfers — but it needs exactly what sticky registers provide
    without signatures: authenticity (the SWMR write port),
    non-equivocation and durability (stickiness). Validators replay
    transfers in deterministic (owner, slot) order, skipping overdrafts,
    so a Byzantine owner's double-spend or overdraft is rejected
    identically everywhere. *)

open Lnd_support

(** Sequential specification (pid-indexed: a TRANSFER's source account is
    the invoking process). *)
module Asset_spec : sig
  type op = Transfer of { dst : int; amount : int } | Balance of int
  type res = Ack of bool | Amount of int
  type state = { balances : int array }

  val init : n:int -> initial_balance:int -> state
  val apply_by : state -> pid:int -> op -> state * res
  val res_equal : res -> res -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

type transfer = { dst : int; amount : int }

val encode : transfer -> Value.t
val decode : Value.t -> transfer option

type t = {
  n : int;
  slots : int; (** pre-allocated outgoing transfers per account *)
  initial_balance : int;
  grid : Lnd_broadcast.Broadcast.Neq.t; (** transparent for adversaries *)
  next_slot : int array;
  issued : transfer list array; (** per-owner local record of own issues *)
}

val create :
  Lnd_shm.Space.t ->
  Lnd_runtime.Sched.t ->
  n:int ->
  f:int ->
  slots:int ->
  initial_balance:int ->
  ?byzantine:int list ->
  unit ->
  t

val replay : t -> (int * int * Value.t) list -> int array
(** Deterministic replay of (owner, slot, transfer) triples; invalid and
    overdrawing transfers are skipped. Returns balances. *)

val view : t -> pid:int -> (int * int * Value.t) list
(** The validator's current prefix-closed view (delivered slots plus its
    own issues). Call from a fiber of [pid]. *)

val transfer : t -> src:int -> dst:int -> amount:int -> bool
(** TRANSFER by the owner [src], validated against its own view before
    issuing; [true] iff issued. Call from a fiber of [src]. *)

val balance : t -> pid:int -> acct:int -> int
val ledger : t -> pid:int -> int array

val conserved : t -> int array -> bool
(** Any replayed ledger sums to [n * initial_balance]. *)

val prefix_consistent :
  earlier:(int * int * Value.t) list ->
  later:(int * int * Value.t) list ->
  bool
(** Stickiness across time and validators: every transfer in an earlier
    view appears identically in a later one. *)
