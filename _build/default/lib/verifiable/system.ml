(* A ready-wired simulated system around one verifiable register:
   register space, scheduler, Help daemons for correct processes, and a
   recorded history of all client operations. Used by tests, benchmarks
   and examples. Byzantine processes get no Help daemon and no operation
   fibers here; adversarial behaviour is attached by the caller (see
   lnd_byz). *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module V = Lnd_history.Spec.Verifiable_spec

type t = {
  cfg : Verifiable.config;
  space : Space.t;
  sched : Sched.t;
  regs : Verifiable.regs;
  writer : Verifiable.writer;
  readers : Verifiable.reader option array; (* indexed by pid; slot 0 is None *)
  history : (V.op, V.res) Lnd_history.History.t;
  correct : bool array;
}

let make ?(policy : Policy.t option) ?(byzantine : int list = []) ~n ~f () : t
    =
  let cfg = { Verifiable.n; f } in
  let space = Space.create ~n in
  let choose =
    match policy with Some p -> p | None -> Policy.random ~seed:42
  in
  let sched = Sched.create ~space ~choose in
  let regs = Verifiable.alloc space cfg in
  let writer = Verifiable.writer regs in
  let readers =
    Array.init n (fun pid ->
        if pid = 0 then None else Some (Verifiable.reader regs ~pid))
  in
  let correct = Array.make n true in
  List.iter (fun pid -> correct.(pid) <- false) byzantine;
  (* Help daemons for every correct process (the paper requires each
     correct process to execute Help() in the background). *)
  for pid = 0 to n - 1 do
    if correct.(pid) then
      ignore
        (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
           ~daemon:true (fun () -> Verifiable.help regs ~pid))
  done;
  {
    cfg;
    space;
    sched;
    regs;
    writer;
    readers;
    history = Lnd_history.History.create ();
    correct;
  }

let reader t pid : Verifiable.reader =
  if pid <= 0 || pid >= t.cfg.n then invalid_arg "System.reader: bad pid";
  match t.readers.(pid) with Some r -> r | None -> assert false

(* --- Recorded operations (drive these from client fibers) --- *)

let op_write t v : unit =
  Lnd_history.History.record t.history ~pid:0 (V.Write v) (fun () ->
      Verifiable.write t.writer v;
      V.Done)
  |> ignore

let op_sign t v : bool =
  match
    Lnd_history.History.record t.history ~pid:0 (V.Sign v) (fun () ->
        V.Signed (Verifiable.sign t.writer v))
  with
  | V.Signed b -> b
  | _ -> assert false

let op_read t ~pid : Value.t =
  match
    Lnd_history.History.record t.history ~pid (V.Read) (fun () ->
        V.Val (Verifiable.read (reader t pid)))
  with
  | V.Val v -> v
  | _ -> assert false

let op_verify t ~pid v : bool =
  match
    Lnd_history.History.record t.history ~pid (V.Verify v) (fun () ->
        V.Verified (Verifiable.verify (reader t pid) v))
  with
  | V.Verified b -> b
  | _ -> assert false

(* Spawn a client fiber for a process. *)
let client t ~pid ~name (body : unit -> unit) : Sched.fiber =
  Sched.spawn t.sched ~pid ~name body

let run ?max_steps ?until t = Sched.run ?max_steps ?until t.sched

(* Byzantine linearizability of the recorded history (Theorem 14). *)
let byz_linearizable ?node_budget t : bool =
  Lnd_history.Byzlin.verifiable ?node_budget ~writer:0
    ~correct:(fun pid -> t.correct.(pid))
    t.history
