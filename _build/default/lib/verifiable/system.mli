(** A ready-wired simulated system around one verifiable register:
    register space, scheduler, Help daemons for every correct process,
    and a recorded history of all client operations. Byzantine processes
    get no Help daemon and no operation fibers here; attach adversarial
    behaviour with [Lnd_byz.Byz_verifiable]. *)

open Lnd_support
module V = Lnd_history.Spec.Verifiable_spec

type t = {
  cfg : Verifiable.config;
  space : Lnd_shm.Space.t;
  sched : Lnd_runtime.Sched.t;
  regs : Verifiable.regs;
  writer : Verifiable.writer;
  readers : Verifiable.reader option array; (** by pid; slot 0 is [None] *)
  history : (V.op, V.res) Lnd_history.History.t;
  correct : bool array;
}

val make :
  ?policy:Lnd_runtime.Policy.t ->
  ?byzantine:int list ->
  n:int ->
  f:int ->
  unit ->
  t
(** Defaults: seeded-random policy, no Byzantine processes. *)

val reader : t -> int -> Verifiable.reader
(** The persistent reader handle of process [pid] (1 <= pid < n). *)

(** {2 Recorded operations — call from client fibers} *)

val op_write : t -> Value.t -> unit
val op_sign : t -> Value.t -> bool
val op_read : t -> pid:int -> Value.t
val op_verify : t -> pid:int -> Value.t -> bool

val client :
  t -> pid:int -> name:string -> (unit -> unit) -> Lnd_runtime.Sched.fiber
(** Spawn a client fiber for a process. *)

val run :
  ?max_steps:int ->
  ?until:(Lnd_runtime.Sched.t -> bool) ->
  t ->
  Lnd_runtime.Sched.stop_reason

val byz_linearizable : ?node_budget:int -> t -> bool
(** Byzantine linearizability of the recorded history (Theorem 14). *)
