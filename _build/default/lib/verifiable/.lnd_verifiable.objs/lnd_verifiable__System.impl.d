lib/verifiable/system.ml: Array List Lnd_history Lnd_runtime Lnd_shm Lnd_support Policy Printf Sched Space Value Verifiable
