lib/verifiable/ablation.mli: Lnd_support Value Verifiable
