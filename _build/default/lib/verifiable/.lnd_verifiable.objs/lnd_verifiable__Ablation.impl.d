lib/verifiable/ablation.ml: Array Cell Codecs Lnd_runtime Lnd_support Univ Value Verifiable
