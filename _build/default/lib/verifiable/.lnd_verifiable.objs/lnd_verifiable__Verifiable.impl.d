lib/verifiable/verifiable.ml: Array Cell Codecs Int List Lnd_runtime Lnd_support Option Printf Sched Set Univ Value
