(** Ablation: the Section 5.1 strawman VERIFY.

    The paper motivates Algorithm 1's round structure by showing why the
    obvious approach fails; these one-shot verifies implement that
    strawman. They always terminate — but the test suite (A1) exhibits a
    schedule where one returns TRUE and a later one returns FALSE for
    the same value: the relay violation Algorithm 1 exists to prevent. *)

open Lnd_support

val naive_verify : Verifiable.regs -> Value.t -> bool
(** Snapshot the witness sets of the first 2f+1 processes; yes-count >=
    f+1. *)

val naive_verify_all : Verifiable.regs -> Value.t -> bool
(** Same, polling every register — same flaw. *)
