(* The reliable-broadcast *object* (Cohen-Keidar [4]), signature-free.

   Operations (Byzantine-linearizable object semantics):
     BCAST(m)        by any sender: broadcast m as its next message.
     DELIVER(s, k)   by any process: the k-th message of sender s, or ⊥ if
                     none is visible yet.

   Construction (Section 1.2 of the paper): one SWMR sticky register per
   (sender, slot). A sender's k-th BCAST writes its k-th sticky register;
   DELIVER(s, k) reads it. Stickiness gives the non-equivocation /
   uniqueness guarantee that [4] obtained from signatures: a Byzantine
   sender cannot make two correct processes deliver different k-th
   messages, and once any correct process delivers m as (s, k), every
   later DELIVER(s, k) by a correct process returns m.

   Works for n > 3f without signatures — the paper's translation of [4]
   (which needed only n > 2f *with* signatures). *)

open Lnd_support
open Lnd_runtime

(* Sequential specification. *)
module Rb_spec = struct
  type op = Bcast of Value.t (* sender implicit: the invoking pid *) | Deliver of int * int
  type res = Done | Msg of Value.t option

  module IntMap = Map.Make (Int)

  type state = Value.t list IntMap.t (* sender -> messages, oldest first *)

  let init : state = IntMap.empty

  let apply_by (s : state) ~pid = function
    | Bcast m ->
        let cur = Option.value ~default:[] (IntMap.find_opt pid s) in
        (IntMap.add pid (cur @ [ m ]) s, Done)
    | Deliver (sender, k) ->
        let msgs = Option.value ~default:[] (IntMap.find_opt sender s) in
        (s, Msg (List.nth_opt msgs k))

  let res_equal a b =
    match (a, b) with
    | Done, Done -> true
    | Msg x, Msg y -> Value.equal_opt x y
    | (Done | Msg _), _ -> false

  let pp_op fmt = function
    | Bcast m -> Format.fprintf fmt "BCAST(%a)" Value.pp m
    | Deliver (s, k) -> Format.fprintf fmt "DELIVER(p%d,#%d)" s k

  let pp_res fmt = function
    | Done -> Format.fprintf fmt "done"
    | Msg m -> Format.fprintf fmt "%a" Value.pp_opt m
end

type t = {
  neq : Broadcast.Neq.t;
  n : int;
  slots : int;
  next_slot : int array; (* per sender, maintained by the sender itself *)
  (* recorded history of (pid, op, result) for observational checking *)
  mutable log : (int * Rb_spec.op * Rb_spec.res * int) list; (* + logical time *)
}

let create space sched ~n ~f ~slots ?(byzantine = []) () : t =
  {
    neq = Broadcast.Neq.create space sched ~n ~f ~slots ~byzantine ();
    n;
    slots;
    next_slot = Array.make n 0;
    log = [];
  }

let record t pid op res =
  t.log <- (pid, op, res, Sched.tick ()) :: t.log

(* BCAST by [sender] (call from a fiber of that pid). Returns the slot
   used. *)
let bcast (t : t) ~sender (m : Value.t) : int =
  let slot = t.next_slot.(sender) in
  if slot >= t.slots then invalid_arg "Reliable.bcast: slot space exhausted";
  t.next_slot.(sender) <- slot + 1;
  Broadcast.Neq.bcast t.neq ~sender ~slot m;
  record t sender (Rb_spec.Bcast m) Rb_spec.Done;
  slot

(* DELIVER(s, k) by [reader]. *)
let deliver (t : t) ~reader ~sender ~slot : Value.t option =
  let r = Broadcast.Neq.deliver t.neq ~reader ~sender ~slot in
  record t reader (Rb_spec.Deliver (sender, slot)) (Rb_spec.Msg r);
  r

(* ---- Observational checks over the recorded log ---- *)

(* UNIQUENESS: no two correct delivers of (s, k) return different non-⊥
   messages; and a non-⊥ deliver is never followed by a ⊥ deliver of the
   same (s, k). *)
let uniqueness_violations (t : t) ~correct : string list =
  let delivers =
    List.filter_map
      (fun (pid, op, res, time) ->
        match (op, res) with
        | Rb_spec.Deliver (s, k), Rb_spec.Msg m when correct pid ->
            Some (s, k, m, time)
        | _ -> None)
      t.log
  in
  let viols = ref [] in
  List.iter
    (fun (s1, k1, m1, t1) ->
      List.iter
        (fun (s2, k2, m2, t2) ->
          if s1 = s2 && k1 = k2 then begin
            (match (m1, m2) with
            | Some a, Some b when not (Value.equal a b) ->
                viols :=
                  Printf.sprintf "(p%d,#%d): delivered both %s and %s" s1 k1 a
                    b
                  :: !viols
            | _ -> ());
            match (m1, m2) with
            | Some a, None when t1 < t2 ->
                viols :=
                  Printf.sprintf
                    "(p%d,#%d): delivered %s at %d then ⊥ at %d" s1 k1 a t1 t2
                  :: !viols
            | _ -> ()
          end)
        delivers)
    delivers;
  List.sort_uniq compare !viols
