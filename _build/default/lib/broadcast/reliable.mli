(** The reliable-broadcast {e object} (Cohen-Keidar [4]), signature-free
    on the paper's sticky registers: BCAST(m) appends to the sender's
    sequence; DELIVER(s, k) reads its k-th sticky slot. Stickiness gives
    the non-equivocation and durability that [4] obtained from
    signatures; works for n > 3f without any. *)

open Lnd_support

(** Sequential specification (pid-indexed: BCAST's sender is the invoking
    process). *)
module Rb_spec : sig
  type op = Bcast of Value.t | Deliver of int * int (** sender, slot *)

  type res = Done | Msg of Value.t option

  module IntMap : Map.S with type key = int

  type state = Value.t list IntMap.t

  val init : state
  val apply_by : state -> pid:int -> op -> state * res
  val res_equal : res -> res -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

type t = {
  neq : Broadcast.Neq.t; (** transparent: adversaries aim at the grid *)
  n : int;
  slots : int;
  next_slot : int array;
  mutable log : (int * Rb_spec.op * Rb_spec.res * int) list;
}

val create :
  Lnd_shm.Space.t ->
  Lnd_runtime.Sched.t ->
  n:int ->
  f:int ->
  slots:int ->
  ?byzantine:int list ->
  unit ->
  t

val bcast : t -> sender:int -> Value.t -> int
(** BCAST by [sender] (call from a fiber of that pid); returns the slot
    used. Raises if the pre-allocated slot space is exhausted. *)

val deliver : t -> reader:int -> sender:int -> slot:int -> Value.t option

val uniqueness_violations : t -> correct:(int -> bool) -> string list
(** Over the recorded log: no two correct delivers of (s, k) return
    different non-⊥ messages, and a non-⊥ deliver is never followed by a
    ⊥ deliver of the same (s, k). Empty = no violations. *)
