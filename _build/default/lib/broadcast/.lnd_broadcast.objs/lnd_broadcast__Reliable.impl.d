lib/broadcast/reliable.ml: Array Broadcast Format Int List Lnd_runtime Lnd_support Map Option Printf Sched Value
