lib/broadcast/broadcast.ml: Array Cell List Lnd_runtime Lnd_sticky Lnd_support Option Printf Sched Value
