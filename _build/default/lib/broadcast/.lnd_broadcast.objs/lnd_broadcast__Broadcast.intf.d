lib/broadcast/broadcast.mli: Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Value
