lib/broadcast/reliable.mli: Broadcast Format Lnd_runtime Lnd_shm Lnd_support Map Value
