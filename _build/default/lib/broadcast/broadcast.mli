(** Non-equivocating broadcast from sticky registers — exactly the
    construction of Section 1.2: "to broadcast a message m, a process p
    simply writes m into a SWMR sticky register R; to deliver p's
    message, a process reads R." One sticky-register instance per
    (sender, slot); process ids are rotated per instance so that the
    sender plays the sticky register's writer role. *)

open Lnd_support
module Sticky = Lnd_sticky.Sticky

val rotation : n:int -> sender:int -> (int -> int) * (int -> int)
(** [(to_real, to_virtual)] pid rotations placing [sender] at virtual
    p0. *)

module Neq : sig
  type instance = {
    sender : int;
    regs : Sticky.regs; (** transparent: adversaries aim at this *)
    to_virtual : int -> int;
    writer : Sticky.writer; (** only meaningful for the sender *)
    readers : Sticky.reader option array;
        (** persistent per real reader pid: a reader's round counter must
            be monotone across ALL its reads of this register *)
  }

  type t = {
    n : int;
    f : int;
    slots : int;
    instances : instance array array; (** [instances.(sender).(slot)] *)
  }

  val create :
    Lnd_shm.Space.t ->
    Lnd_runtime.Sched.t ->
    n:int ->
    f:int ->
    slots:int ->
    ?byzantine:int list ->
    unit ->
    t
  (** Builds the sticky grid and spawns the Help daemons of every correct
      process for every instance. *)

  val bcast : t -> sender:int -> slot:int -> Value.t -> unit
  (** BCAST: the sender writes m into its sticky register for [slot].
      Call from a fiber of [sender]. *)

  val deliver : t -> reader:int -> sender:int -> slot:int -> Value.t option
  (** DELIVER: read the (sender, slot) sticky register; [None] = nothing
      visible yet. Call from a fiber of [reader]; [reader <> sender]. *)

  val deliver_blocking : t -> reader:int -> sender:int -> slot:int -> Value.t
  (** Retry until a message is present (eventual delivery of a correct
      sender's broadcast). *)
end
