(* Broadcast objects built on the paper's registers (Sections 1.1-1.2).

   [Neq] — non-equivocating broadcast from sticky registers, exactly the
   construction of Section 1.2: "to broadcast a message m, a process p
   simply writes m into a SWMR sticky register R; to deliver p's message,
   a process reads R". One sticky-register instance per (sender, slot)
   gives a multi-shot, multi-sender reliable broadcast in the style of the
   Cohen-Keidar object, without signatures, for n > 3f.

   [Auth_broadcast] (from lnd_msgpass) is the Srikanth-Toueg message-
   passing counterpart; it provides correctness/unforgeability/relay but
   NOT uniqueness — the gap between the two is demonstrated in the test
   suite, motivating sticky registers. *)

open Lnd_support
open Lnd_runtime
module Sticky = Lnd_sticky.Sticky

(* Rotate pids so that [sender] plays the sticky register's writer role
   (virtual p0). *)
let rotation ~n ~sender : (int -> int) * (int -> int) =
  let to_real v = (v + sender) mod n in
  let to_virtual r = ((r - sender) + n) mod n in
  (to_real, to_virtual)

module Neq = struct
  type instance = {
    sender : int;
    regs : Sticky.regs;
    to_virtual : int -> int;
    writer : Sticky.writer; (* only meaningful for the sender *)
    readers : Sticky.reader option array;
        (* persistent per real reader pid: a reader's round counter C_k
           must be monotone across ALL its reads of this register *)
  }

  type t = {
    n : int;
    f : int;
    slots : int;
    instances : instance array array; (* instances.(sender).(slot) *)
  }

  (* Build the sticky grid and spawn the Help daemons of every correct
     process for every instance. *)
  let create space sched ~n ~f ~slots ?(byzantine : int list = []) () : t =
    let instances =
      Array.init n (fun sender ->
          Array.init slots (fun slot ->
              let to_real, to_virtual = rotation ~n ~sender in
              let mk : Cell.allocator =
               fun ~name ~owner ?single_reader ~init () ->
                Cell.shm_allocator space
                  ~name:(Printf.sprintf "bc[%d.%d].%s" sender slot name)
                  ~owner:(to_real owner)
                  ?single_reader:(Option.map to_real single_reader)
                  ~init ()
              in
              let regs = Sticky.alloc_with mk { Sticky.n; f } in
              let readers =
                Array.init n (fun pid ->
                    let vpid = to_virtual pid in
                    if vpid = 0 then None
                    else Some (Sticky.reader regs ~pid:vpid))
              in
              { sender; regs; to_virtual; writer = Sticky.writer regs;
                readers }))
    in
    (* one Help daemon per (correct process, instance) *)
    for pid = 0 to n - 1 do
      if not (List.mem pid byzantine) then
        Array.iteri
          (fun sender row ->
            Array.iteri
              (fun slot inst ->
                let vpid = inst.to_virtual pid in
                ignore
                  (Sched.spawn sched ~pid
                     ~name:(Printf.sprintf "bc-help%d[%d.%d]" pid sender slot)
                     ~daemon:true (fun () -> Sticky.help inst.regs ~pid:vpid)))
              row)
          instances
    done;
    { n; f; slots; instances }

  (* BCAST: the sender writes m into its sticky register for [slot]. Must
     be called from a fiber of [sender]. *)
  let bcast (t : t) ~sender ~slot (m : Value.t) : unit =
    Sticky.write t.instances.(sender).(slot).writer m

  (* DELIVER: read the (sender, slot) sticky register; None = nothing to
     deliver yet. Must be called from a fiber of [reader]. *)
  let deliver (t : t) ~reader ~sender ~slot : Value.t option =
    if reader = sender then
      invalid_arg "Neq.deliver: a sender delivers its own broadcast locally";
    let inst = t.instances.(sender).(slot) in
    match inst.readers.(reader) with
    | Some rd -> Sticky.read rd
    | None -> invalid_arg "Neq.deliver: reader is the sender"

  (* Deliver, retrying until a message is present (eventual delivery of a
     correct sender's broadcast). *)
  let deliver_blocking (t : t) ~reader ~sender ~slot : Value.t =
    let rec go () =
      match deliver t ~reader ~sender ~slot with
      | Some m -> m
      | None ->
          Sched.yield ();
          go ()
    in
    go ()
end
