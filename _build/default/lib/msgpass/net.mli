(** Asynchronous message passing, modelled on top of the shared-register
    scheduler: the channel from i to j is an append-only log register
    owned by i and readable by j. Receivers poll with private cursors, so
    delivery is asynchronous (arbitrary finite delay) — the model of
    Srikanth-Toueg [10] and MPRJ [9].

    Channel identity gives authenticated channels: a receiver knows which
    process a message came from, because only pid i can write the i→j
    log; a Byzantine process can send arbitrary and inconsistent messages
    but cannot forge the sender identity. Logs are never consumed, so any
    number of ports (client fiber, protocol daemon) can receive
    independently. *)

open Lnd_support

val log_key : (int * Univ.t list) Univ.key
(** The channel payload: (count, messages-newest-first). Exposed for
    introspection in tests. *)

type t = {
  n : int;
  chan : Lnd_shm.Register.t array array; (** [chan.(src).(dst)] *)
  mutable sends : int; (** messages sent, for the cost tables *)
}

val create : Lnd_shm.Space.t -> n:int -> t

(** A process endpoint: pid plus receive cursors. Create one port per
    fiber that wants to receive independently. *)
type port = { net : t; pid : int; cursors : int array }

val port : t -> pid:int -> port

val send : port -> dst:int -> Univ.t -> unit
(** Appends atomically (a process's client fiber and its protocol daemon
    may send on the same channel concurrently). *)

val broadcast : port -> Univ.t -> unit
(** Send to every process, including self. *)

val poll_from : port -> src:int -> Univ.t list
(** All not-yet-seen messages from [src], oldest first. One register
    read. *)

val poll_all : port -> (int * Univ.t) list
(** Poll every channel once; [(src, payload)] pairs, oldest first per
    source. n register reads. *)
