lib/msgpass/regemu.mli: Hashtbl Int Lnd_runtime Lnd_shm Lnd_support Net Set Univ
