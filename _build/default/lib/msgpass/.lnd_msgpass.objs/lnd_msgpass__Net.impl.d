lib/msgpass/net.ml: Array Format List Lnd_runtime Lnd_shm Lnd_support Printf Register Sched Space Univ
