lib/msgpass/bracha.mli: Lnd_support Net Univ Value
