lib/msgpass/auth_broadcast.mli: Lnd_support Net Univ Value
