lib/msgpass/auth_broadcast.ml: Format Int List Lnd_runtime Lnd_support Map Net Set Univ Value
