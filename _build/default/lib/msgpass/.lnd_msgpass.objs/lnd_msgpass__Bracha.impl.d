lib/msgpass/bracha.ml: Format Hashtbl Int List Lnd_runtime Lnd_support Map Net Set Univ Value
