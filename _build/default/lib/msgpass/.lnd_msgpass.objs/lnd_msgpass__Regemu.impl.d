lib/msgpass/regemu.ml: Array Cell Format Hashtbl Int List Lnd_runtime Lnd_shm Lnd_support Net Option Printf Sched Set Space Univ
