lib/msgpass/net.mli: Lnd_shm Lnd_support Univ
