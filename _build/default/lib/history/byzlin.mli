(** Byzantine linearizability (Definition 7, Cohen-Keidar [4]).

    A history H is Byzantine linearizable w.r.t. an object O iff there is
    a history H' with H'|CORRECT = H|CORRECT that is linearizable w.r.t.
    O. Since only the writer's operations matter for the paper's objects,
    H' is taken to be H|CORRECT plus some WRITE/SIGN operations by the
    (faulty) writer, added with {e free} intervals: a free operation
    imposes no precedence constraints, so the generic checker searches
    over all placements. This is sound and complete for these
    single-writer objects and generalizes the constructive completions of
    Definitions 73 and 140 in the paper's appendices. *)

val verifiable :
  ?node_budget:int ->
  writer:int ->
  correct:(int -> bool) ->
  (Spec.Verifiable_spec.op, Spec.Verifiable_spec.res) History.t ->
  bool
(** Byzantine linearizability w.r.t. a SWMR verifiable register
    (checks Theorem 14's guarantee on a recorded history). *)

val sticky :
  ?node_budget:int ->
  writer:int ->
  correct:(int -> bool) ->
  (Spec.Sticky_spec.op, Spec.Sticky_spec.res) History.t ->
  bool
(** Byzantine linearizability w.r.t. a SWMR sticky register
    (Theorem 19). *)

val testorset :
  ?node_budget:int ->
  setter:int ->
  correct:(int -> bool) ->
  (Spec.Testorset_spec.op, Spec.Testorset_spec.res) History.t ->
  bool
(** Byzantine linearizability w.r.t. test-or-set (Observation 25 /
    Lemma 22). *)
