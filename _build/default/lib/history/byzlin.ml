(* Byzantine linearizability (Definition 7, Cohen-Keidar [4]).

   A history H is Byzantine linearizable w.r.t. an object O iff there is a
   history H' with H'|CORRECT = H|CORRECT that is linearizable w.r.t. O.
   Since only the writer's operations matter for the objects in this paper
   (readers' operations are their own), H' can be taken to be H|CORRECT
   plus some WRITE/SIGN operations by the (faulty) writer.

   We add those writer operations with *free* intervals ([0, ∞)): a free
   operation imposes no precedence constraints, so the generic checker
   searches over all placements of the writer's operations. This is sound
   and complete: a linearization of {correct ops with their real intervals}
   ∪ {free writer ops} exists iff point-intervals for the writer ops can be
   laid down making a legal sequential-writer history H' whose restriction
   to CORRECT is exactly H|CORRECT (choose each free op's point between its
   linearization neighbours). This generalizes the constructive completion
   of Definitions 73 and 140 in the paper's appendices. *)

open Lnd_support

(* ---------------- Verifiable register ---------------- *)

module V = Spec.Verifiable_spec
module VC = Spec.Checker (V)

let free_entry ~pid op ret : VC.centry =
  { VC.pid; op; inv = 0; ret = Some ret; res_time = max_int }

(* [writer] is the writing process; [correct pid] says whether a process is
   correct in the run. Returns true iff the history is Byzantine
   linearizable w.r.t. a SWMR verifiable register. *)
let verifiable ?node_budget ~writer ~correct (h : (V.op, V.res) History.t) :
    bool =
  let hc = History.restrict h ~correct in
  let base = VC.of_history hc in
  let extra =
    if correct writer then []
    else begin
      (* One WRITE per READ occurrence, plus SIGN+WRITE per distinct value
         that some VERIFY accepted. *)
      let writes =
        List.filter_map
          (fun (e : VC.centry) ->
            match (e.op, e.ret) with
            | V.Read, Some (V.Val v) ->
                Some (free_entry ~pid:writer (V.Write v) V.Done)
            | _ -> None)
          base
      in
      let verified =
        List.fold_left
          (fun acc (e : VC.centry) ->
            match (e.op, e.ret) with
            | V.Verify v, Some (V.Verified true) -> Value.Set.add v acc
            | _ -> acc)
          Value.Set.empty base
      in
      let signs =
        Value.Set.fold
          (fun v acc ->
            free_entry ~pid:writer (V.Write v) V.Done
            :: free_entry ~pid:writer (V.Sign v) (V.Signed true)
            :: acc)
          verified []
      in
      writes @ signs
    end
  in
  match VC.linearization ?node_budget (base @ extra) with
  | Some _ -> true
  | None -> false

(* ---------------- Sticky register ---------------- *)

module S = Spec.Sticky_spec
module SC = Spec.Checker (S)

let sticky ?node_budget ~writer ~correct (h : (S.op, S.res) History.t) : bool =
  let hc = History.restrict h ~correct in
  let base = SC.of_history hc in
  let extra =
    if correct writer then []
    else begin
      let returned =
        List.fold_left
          (fun acc (e : SC.centry) ->
            match (e.op, e.ret) with
            | S.Read, Some (S.Val (Some v)) -> Value.Set.add v acc
            | _ -> acc)
          Value.Set.empty base
      in
      Value.Set.fold
        (fun v acc ->
          { SC.pid = writer; op = S.Write v; inv = 0; ret = Some S.Done;
            res_time = max_int }
          :: acc)
        returned []
    end
  in
  match SC.linearization ?node_budget (base @ extra) with
  | Some _ -> true
  | None -> false

(* ---------------- Test-or-set ---------------- *)

module T = Spec.Testorset_spec
module TC = Spec.Checker (T)

let testorset ?node_budget ~setter ~correct (h : (T.op, T.res) History.t) :
    bool =
  let hc = History.restrict h ~correct in
  let base = TC.of_history hc in
  let extra =
    if correct setter then []
    else if
      List.exists
        (fun (e : TC.centry) ->
          match (e.op, e.ret) with T.Test, Some (T.Bit 1) -> true | _ -> false)
        base
    then
      [ { TC.pid = setter; op = T.Set; inv = 0; ret = Some T.Done;
          res_time = max_int } ]
    else []
  in
  match TC.linearization ?node_budget (base @ extra) with
  | Some _ -> true
  | None -> false
