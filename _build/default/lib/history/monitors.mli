(** Streaming property monitors for the paper's observational properties.

    Each monitor consumes a completed history and reports every violation
    it finds. They check the observational properties the paper states as
    Observations — relay, uniqueness, validity, unforgeability — which
    are necessary conditions for Byzantine linearizability but far
    cheaper than the exhaustive search in {!Byzlin}. *)

type violation = { property : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

(** {2 Verifiable register (Observations 11-13)} *)

val relay :
  correct:(int -> bool) ->
  (Spec.Verifiable_spec.op, Spec.Verifiable_spec.res) History.t ->
  violation list
(** Observation 13: no VERIFY(v)=true strictly precedes a
    VERIFY(v)=false by correct readers. *)

val validity :
  correct:(int -> bool) ->
  (Spec.Verifiable_spec.op, Spec.Verifiable_spec.res) History.t ->
  violation list
(** Observation 11: a successful SIGN(v) by a correct writer makes every
    subsequent correct VERIFY(v) return true. *)

val unforgeability :
  correct:(int -> bool) ->
  writer:int ->
  (Spec.Verifiable_spec.op, Spec.Verifiable_spec.res) History.t ->
  violation list
(** Observation 12, checkable when the writer is correct: no
    VERIFY(v)=true without a prior-or-concurrent successful SIGN(v).
    Returns [] when the writer is faulty (not applicable). *)

(** {2 Sticky register (Observations 16-18)} *)

val uniqueness :
  correct:(int -> bool) ->
  (Spec.Sticky_spec.op, Spec.Sticky_spec.res) History.t ->
  violation list
(** Observation 18: all non-⊥ reads agree, and no ⊥-read follows a
    completed non-⊥ read. *)

val sticky_validity :
  correct:(int -> bool) ->
  writer:int ->
  (Spec.Sticky_spec.op, Spec.Sticky_spec.res) History.t ->
  violation list
(** Observation 16: once a correct writer's first WRITE(v) completes,
    every subsequent correct READ returns v. Returns [] when the writer
    is faulty. *)

val check_all : violation list -> (unit, string) result
(** [Ok ()] iff the list is empty; otherwise all violations joined into
    one message. *)
