(** Sequential specifications of the paper's objects, and a generic
    linearizability checker (Definition 4 / Herlihy-Wing).

    The checker is an exhaustive backtracking search over linearization
    orders that respect the precedence relation; it is meant for short,
    highly concurrent histories (≤ ~20 operations). *)

open Lnd_support

module type SPEC = sig
  type op
  type res
  type state

  val init : state
  val apply : state -> op -> state * res
  val res_equal : res -> res -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

exception Search_too_large
(** Raised when the search exceeds its node budget. *)

module Checker (S : SPEC) : sig
  type centry = {
    pid : int;
    op : S.op;
    inv : int;
    ret : S.res option; (** [None]: incomplete — may be dropped or completed *)
    res_time : int; (** [max_int] for incomplete entries *)
  }

  val of_history : (S.op, S.res) History.t -> centry list

  val linearization :
    ?node_budget:int -> centry list -> (centry * S.res) list option
  (** A witness linearization conforming to [S], if one exists.
      Incomplete entries may be linearized with any result or dropped
      (Definition 2). *)

  val linearizable : ?node_budget:int -> (S.op, S.res) History.t -> bool

  val pp_centry : Format.formatter -> centry -> unit
end

(** Plain SWMR register. *)
module Register_spec : sig
  type op = Write of Value.t | Read
  type res = Done | Val of Value.t
  type state = Value.t

  include SPEC with type op := op and type res := res and type state := state
end

(** SWMR verifiable register (Definition 10). *)
module Verifiable_spec : sig
  type op = Write of Value.t | Read | Sign of Value.t | Verify of Value.t
  type res = Done | Val of Value.t | Signed of bool | Verified of bool

  type state = {
    cur : Value.t;
    written : Value.Set.t;
    signed : Value.Set.t;
  }

  include SPEC with type op := op and type res := res and type state := state
end

(** SWMR sticky register (Definition 15). *)
module Sticky_spec : sig
  type op = Write of Value.t | Read
  type res = Done | Val of Value.t option
  type state = Value.t option

  include SPEC with type op := op and type res := res and type state := state
end

(** Test-or-set (Definition 20). *)
module Testorset_spec : sig
  type op = Set | Test
  type res = Done | Bit of int
  type state = int

  include SPEC with type op := op and type res := res and type state := state
end
