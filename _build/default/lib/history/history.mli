(** Operation histories.

    An entry is one operation instance with its [invocation, response]
    interval in logical time. Timestamps come from the scheduler's
    logical clock, so distinct events carry distinct times and interval
    order reflects real-time order of the simulation.

    The records are transparent so that tests can also hand-craft
    histories. *)

type ('op, 'res) entry = {
  pid : int;
  op : 'op;
  inv : int; (** invocation time *)
  mutable ret : ('res * int) option;
      (** (result, response time); [None] = incomplete *)
}

type ('op, 'res) t = { mutable entries : ('op, 'res) entry list (** newest first *) }

val create : unit -> ('op, 'res) t

val record : ('op, 'res) t -> pid:int -> 'op -> (unit -> 'res) -> 'res
(** Record one operation executed inside a fiber: stamps invocation and
    response with the scheduler's logical clock. *)

val entries : ('op, 'res) t -> ('op, 'res) entry list
(** All entries, sorted by invocation time. *)

val complete_entries : ('op, 'res) t -> ('op, 'res) entry list
val incomplete_entries : ('op, 'res) t -> ('op, 'res) entry list

val restrict : ('op, 'res) t -> correct:(int -> bool) -> ('op, 'res) t
(** H|CORRECT: the sub-history of the correct processes' operations. *)

val response_time : ('op, 'res) entry -> int
(** [max_int] for incomplete entries. *)

val precedes : ('op, 'res) entry -> ('op, 'res) entry -> bool
(** Definition 1: o precedes o' iff o's response is before o''s
    invocation. *)

val pp :
  pp_op:(Format.formatter -> 'op -> unit) ->
  pp_res:(Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('op, 'res) t ->
  unit
