(* Execution-trace invariants: the low-level observations the paper's
   appendix proofs rest on, checked against recorded register traces.

   Appendix A:  Observation 28 (C_k non-decreasing),
                Observation 30 (v ∈ R_i is stable for correct p_i).
   Appendix B:  Observation 92/93 (E_i / R_i, once a value, keep it),
                Observation 94 (C_k non-decreasing).

   The checkers consume the [Lnd_shm.Space] access trace (enable with
   [Space.set_trace]) and only constrain writes by CORRECT processes —
   Byzantine owners may of course scribble anything into their own
   registers. Registers are classified by the algorithms' naming
   convention: "R*", "R_<i>", "E_<i>", "C_<k>", "R_{<j>,<k>}". *)

open Lnd_support
open Lnd_shm

type violation = { invariant : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "%s: %s" v.invariant v.detail

let is_prefixed ~prefix name =
  String.length name > String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

(* "R_3" yes; "R_{3,4}" no; "R*" no. *)
let is_simple ~prefix name =
  is_prefixed ~prefix name && not (String.contains name '{')

let writes_of ~correct (trace : Space.access list) =
  List.filter_map
    (fun (a : Space.access) ->
      match a.Space.acc_kind with
      | `Write when correct a.Space.acc_pid -> Some a
      | `Write | `Read -> None)
    trace

(* Observation 28 / 94: every correct reader's C_k register is
   non-decreasing. *)
let counters_monotone ~correct (trace : Space.access list) : violation list =
  let last : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.filter_map
    (fun (a : Space.access) ->
      if not (is_simple ~prefix:"C_" a.Space.acc_reg) then None
      else
        match Univ.prj Codecs.counter a.Space.acc_value with
        | None -> None (* ill-typed writes only happen on Byzantine C_k *)
        | Some c ->
            let prev =
              Option.value ~default:min_int
                (Hashtbl.find_opt last a.Space.acc_reg)
            in
            Hashtbl.replace last a.Space.acc_reg c;
            if c < prev then
              Some
                {
                  invariant = "Obs 28/94 (C_k non-decreasing)";
                  detail =
                    Printf.sprintf "%s went %d -> %d at access #%d"
                      a.Space.acc_reg prev c a.Space.acc_seq;
                }
            else None)
    (writes_of ~correct trace)

(* Observation 30: for a correct process, the witness set R_i only
   grows. *)
let witness_sets_monotone ~correct (trace : Space.access list) :
    violation list =
  let last : (string, Value.Set.t) Hashtbl.t = Hashtbl.create 16 in
  List.filter_map
    (fun (a : Space.access) ->
      if not (is_simple ~prefix:"R_" a.Space.acc_reg) then None
      else
        match Univ.prj Codecs.vset a.Space.acc_value with
        | None -> None
        | Some s ->
            let prev =
              Option.value ~default:Value.Set.empty
                (Hashtbl.find_opt last a.Space.acc_reg)
            in
            Hashtbl.replace last a.Space.acc_reg s;
            if not (Value.Set.subset prev s) then
              Some
                {
                  invariant = "Obs 30 (witness sets grow)";
                  detail =
                    Printf.sprintf "%s dropped values at access #%d"
                      a.Space.acc_reg a.Space.acc_seq;
                }
            else None)
    (writes_of ~correct trace)

(* Observation 92/93: once a correct process's E_i or R_i holds a value,
   every later write keeps that same value. *)
let sticky_registers_write_once ~correct (trace : Space.access list) :
    violation list =
  let last : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
  List.filter_map
    (fun (a : Space.access) ->
      let relevant =
        is_simple ~prefix:"E_" a.Space.acc_reg
        || is_simple ~prefix:"R_" a.Space.acc_reg
      in
      if not relevant then None
      else
        match Univ.prj Codecs.value_opt a.Space.acc_value with
        | None | Some None -> None
        | Some (Some v) -> (
            match Hashtbl.find_opt last a.Space.acc_reg with
            | None ->
                Hashtbl.replace last a.Space.acc_reg v;
                None
            | Some prev when Value.equal prev v -> None
            | Some prev ->
                Some
                  {
                    invariant = "Obs 92/93 (E_i/R_i keep their value)";
                    detail =
                      Printf.sprintf "%s changed %s -> %s at access #%d"
                        a.Space.acc_reg prev v a.Space.acc_seq;
                  }))
    (writes_of ~correct trace)

(* Mailbox freshness: a correct helper writes strictly increasing stamps
   into each R_jk (it only answers when C_k grew past prev_c_k). *)
let mailbox_stamps_increase ~correct (trace : Space.access list) :
    violation list =
  let last : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.filter_map
    (fun (a : Space.access) ->
      if not (is_prefixed ~prefix:"R_{" a.Space.acc_reg) then None
      else
        let stamp =
          match Univ.prj Codecs.vset_stamped a.Space.acc_value with
          | Some (_, c) -> Some c
          | None -> (
              match Univ.prj Codecs.vopt_stamped a.Space.acc_value with
              | Some (_, c) -> Some c
              | None -> None)
        in
        match stamp with
        | None -> None
        | Some c ->
            let prev =
              Option.value ~default:min_int
                (Hashtbl.find_opt last a.Space.acc_reg)
            in
            Hashtbl.replace last a.Space.acc_reg c;
            if c <= prev then
              Some
                {
                  invariant = "mailbox stamps strictly increase";
                  detail =
                    Printf.sprintf "%s stamp %d after %d at access #%d"
                      a.Space.acc_reg c prev a.Space.acc_seq;
                }
            else None)
    (writes_of ~correct trace)

(* All invariants relevant to an Algorithm 1 (verifiable) trace. *)
let check_verifiable ~correct trace : violation list =
  counters_monotone ~correct trace
  @ witness_sets_monotone ~correct trace
  @ mailbox_stamps_increase ~correct trace

(* All invariants relevant to an Algorithm 2 (sticky) trace. *)
let check_sticky ~correct trace : violation list =
  counters_monotone ~correct trace
  @ sticky_registers_write_once ~correct trace
  @ mailbox_stamps_increase ~correct trace
