(** Execution-trace invariants: the low-level observations the paper's
    appendix proofs rest on, checked against recorded register traces
    (enable with [Lnd_shm.Space.set_trace]).

    Only writes by CORRECT processes are constrained — Byzantine owners
    may scribble anything into their own registers. Registers are
    classified by the algorithms' naming convention ("R*", "R_<i>",
    "E_<i>", "C_<k>", "R_{<j>,<k>}"). *)

open Lnd_shm

type violation = { invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val counters_monotone :
  correct:(int -> bool) -> Space.access list -> violation list
(** Observations 28 and 94: every correct reader's C_k register is
    non-decreasing. *)

val witness_sets_monotone :
  correct:(int -> bool) -> Space.access list -> violation list
(** Observation 30: a correct process's witness set R_i only grows
    (Algorithm 1). *)

val sticky_registers_write_once :
  correct:(int -> bool) -> Space.access list -> violation list
(** Observations 92 and 93: once a correct process's E_i or R_i holds a
    value, every later write keeps that value (Algorithm 2). *)

val mailbox_stamps_increase :
  correct:(int -> bool) -> Space.access list -> violation list
(** A correct helper writes strictly increasing stamps into each R_jk. *)

val check_verifiable :
  correct:(int -> bool) -> Space.access list -> violation list
(** All invariants relevant to an Algorithm 1 trace. *)

val check_sticky :
  correct:(int -> bool) -> Space.access list -> violation list
(** All invariants relevant to an Algorithm 2 trace. *)
