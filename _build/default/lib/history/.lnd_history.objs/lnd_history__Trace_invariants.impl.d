lib/history/trace_invariants.ml: Codecs Format Hashtbl List Lnd_shm Lnd_support Option Printf Space String Univ Value
