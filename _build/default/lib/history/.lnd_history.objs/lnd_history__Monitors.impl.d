lib/history/monitors.ml: Format History List Lnd_support Printf Spec String Value
