lib/history/history.ml: Format List Lnd_runtime
