lib/history/monitors.mli: Format History Spec
