lib/history/spec.mli: Format History Lnd_support Value
