lib/history/trace_invariants.mli: Format Lnd_shm Space
