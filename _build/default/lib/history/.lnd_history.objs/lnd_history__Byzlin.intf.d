lib/history/byzlin.mli: History Spec
