lib/history/byzlin.ml: History List Lnd_support Spec Value
