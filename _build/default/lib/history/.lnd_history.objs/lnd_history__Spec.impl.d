lib/history/spec.ml: Array Format History List Lnd_support Value
