(* Sequential specifications of the objects in the paper, and a generic
   linearizability checker (Definition 4 / Herlihy-Wing).

   The checker is an exhaustive backtracking search over linearization
   orders that respect the precedence relation; it is meant for the short,
   highly concurrent histories our tests record (≤ ~20 operations). *)

open Lnd_support

module type SPEC = sig
  type op
  type res
  type state

  val init : state
  val apply : state -> op -> state * res
  val res_equal : res -> res -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

exception Search_too_large

module Checker (S : SPEC) = struct
  type centry = {
    pid : int;
    op : S.op;
    inv : int;
    ret : S.res option; (* None: incomplete; may be dropped or matched freely *)
    res_time : int; (* max_int for incomplete entries *)
  }

  let of_history (h : (S.op, S.res) History.t) : centry list =
    List.map
      (fun (e : (S.op, S.res) History.entry) ->
        match e.ret with
        | Some (r, t) ->
            { pid = e.pid; op = e.op; inv = e.inv; ret = Some r; res_time = t }
        | None ->
            { pid = e.pid; op = e.op; inv = e.inv; ret = None; res_time = max_int })
      (History.entries h)

  (* Is there a linearization of [entries] conforming to S? Incomplete
     entries may be linearized (with any result) or dropped (Definition 2).
     Returns the witness linearization when one exists. *)
  let linearization ?(node_budget = 2_000_000) (entries : centry list) :
      (centry * S.res) list option =
    let arr = Array.of_list entries in
    let n = Array.length arr in
    let taken = Array.make n false in
    let nodes = ref 0 in
    let rec search state acc remaining_complete =
      incr nodes;
      if !nodes > node_budget then raise Search_too_large;
      if remaining_complete = 0 then Some (List.rev acc)
      else begin
        (* Minimal invocation among untaken entries that no untaken entry
           strictly precedes. *)
        let min_res = ref max_int in
        for i = 0 to n - 1 do
          if not taken.(i) && arr.(i).res_time < !min_res then
            min_res := arr.(i).res_time
        done;
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          let e = arr.(!i) in
          if (not taken.(!i)) && e.inv <= !min_res then begin
            let state', r = S.apply state e.op in
            let ok =
              match e.ret with Some expected -> S.res_equal r expected | None -> true
            in
            if ok then begin
              taken.(!i) <- true;
              let rc =
                if e.ret = None then remaining_complete
                else remaining_complete - 1
              in
              (match search state' ((e, r) :: acc) rc with
              | Some _ as s -> result := s
              | None -> ());
              taken.(!i) <- false
            end
          end;
          incr i
        done;
        !result
      end
    in
    let remaining_complete =
      List.length (List.filter (fun e -> e.ret <> None) entries)
    in
    search S.init [] remaining_complete

  let linearizable ?node_budget (h : (S.op, S.res) History.t) : bool =
    match linearization ?node_budget (of_history h) with
    | Some _ -> true
    | None -> false

  let pp_centry fmt (e : centry) =
    Format.fprintf fmt "[%d,%s] p%d: %a -> %s" e.inv
      (if e.res_time = max_int then "∞" else string_of_int e.res_time)
      e.pid S.pp_op e.op
      (match e.ret with
      | Some r -> Format.asprintf "%a" S.pp_res r
      | None -> "?")
end

(* ------------------------------------------------------------------ *)
(* Sequential specs                                                    *)
(* ------------------------------------------------------------------ *)

(* Plain SWMR register. *)
module Register_spec = struct
  type op = Write of Value.t | Read
  type res = Done | Val of Value.t
  type state = Value.t

  let init = Value.v0

  let apply s = function
    | Write v -> (v, Done)
    | Read -> (s, Val s)

  let res_equal a b =
    match (a, b) with
    | Done, Done -> true
    | Val x, Val y -> Value.equal x y
    | Done, Val _ | Val _, Done -> false

  let pp_op fmt = function
    | Write v -> Format.fprintf fmt "WRITE(%a)" Value.pp v
    | Read -> Format.fprintf fmt "READ"

  let pp_res fmt = function
    | Done -> Format.fprintf fmt "done"
    | Val v -> Format.fprintf fmt "%a" Value.pp v
end

(* SWMR verifiable register (Definition 10). *)
module Verifiable_spec = struct
  type op = Write of Value.t | Read | Sign of Value.t | Verify of Value.t

  type res = Done | Val of Value.t | Signed of bool | Verified of bool

  type state = {
    cur : Value.t;
    written : Value.Set.t;
    signed : Value.Set.t;
  }

  let init = { cur = Value.v0; written = Value.Set.empty; signed = Value.Set.empty }

  let apply s = function
    | Write v -> ({ s with cur = v; written = Value.Set.add v s.written }, Done)
    | Read -> (s, Val s.cur)
    | Sign v ->
        if Value.Set.mem v s.written then
          ({ s with signed = Value.Set.add v s.signed }, Signed true)
        else (s, Signed false)
    | Verify v -> (s, Verified (Value.Set.mem v s.signed))

  let res_equal a b =
    match (a, b) with
    | Done, Done -> true
    | Val x, Val y -> Value.equal x y
    | Signed x, Signed y -> x = y
    | Verified x, Verified y -> x = y
    | (Done | Val _ | Signed _ | Verified _), _ -> false

  let pp_op fmt = function
    | Write v -> Format.fprintf fmt "WRITE(%a)" Value.pp v
    | Read -> Format.fprintf fmt "READ"
    | Sign v -> Format.fprintf fmt "SIGN(%a)" Value.pp v
    | Verify v -> Format.fprintf fmt "VERIFY(%a)" Value.pp v

  let pp_res fmt = function
    | Done -> Format.fprintf fmt "done"
    | Val v -> Format.fprintf fmt "%a" Value.pp v
    | Signed b -> Format.fprintf fmt "%s" (if b then "SUCCESS" else "FAIL")
    | Verified b -> Format.fprintf fmt "%b" b
end

(* SWMR sticky register (Definition 15). *)
module Sticky_spec = struct
  type op = Write of Value.t | Read
  type res = Done | Val of Value.t option
  type state = Value.t option

  let init = None

  let apply s = function
    | Write v -> ((match s with None -> Some v | Some _ -> s), Done)
    | Read -> (s, Val s)

  let res_equal a b =
    match (a, b) with
    | Done, Done -> true
    | Val x, Val y -> Value.equal_opt x y
    | (Done | Val _), _ -> false

  let pp_op fmt = function
    | Write v -> Format.fprintf fmt "WRITE(%a)" Value.pp v
    | Read -> Format.fprintf fmt "READ"

  let pp_res fmt = function
    | Done -> Format.fprintf fmt "done"
    | Val v -> Format.fprintf fmt "%a" Value.pp_opt v
end

(* Test-or-set (Definition 20). *)
module Testorset_spec = struct
  type op = Set | Test
  type res = Done | Bit of int
  type state = int

  let init = 0

  let apply s = function Set -> (1, Done) | Test -> (s, Bit s)

  let res_equal a b =
    match (a, b) with
    | Done, Done -> true
    | Bit x, Bit y -> x = y
    | (Done | Bit _), _ -> false

  let pp_op fmt = function
    | Set -> Format.fprintf fmt "SET"
    | Test -> Format.fprintf fmt "TEST"

  let pp_res fmt = function
    | Done -> Format.fprintf fmt "done"
    | Bit b -> Format.fprintf fmt "%d" b
end
