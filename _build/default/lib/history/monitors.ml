(* Streaming property monitors for the paper's observational properties.

   Each monitor consumes a completed history (or entries one at a time)
   and reports every violation it finds. They check the *observational*
   properties the paper states as Observations — relay, uniqueness,
   validity, unforgeability — which are necessary conditions for
   Byzantine linearizability but much cheaper than the full search in
   [Byzlin], so tests can run them on large histories and use [Byzlin] on
   the smaller ones. *)

open Lnd_support

type violation = { property : string; detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "%s: %s" v.property v.detail

(* ------------------------------------------------------------------ *)
(* Verifiable register (Observations 11-13)                            *)
(* ------------------------------------------------------------------ *)

module V = Spec.Verifiable_spec

type vevent = {
  v_pid : int;
  v_value : Value.t;
  v_result : bool;
  v_inv : int;
  v_res : int;
}

let verify_events ~correct (h : (V.op, V.res) History.t) : vevent list =
  List.filter_map
    (fun (e : (V.op, V.res) History.entry) ->
      if not (correct e.pid) then None
      else
        match (e.op, e.ret) with
        | V.Verify value, Some (V.Verified result, rt) ->
            Some { v_pid = e.pid; v_value = value; v_result = result;
                   v_inv = e.inv; v_res = rt }
        | _ -> None)
    (History.complete_entries h)

(* RELAY (Observation 13): no VERIFY(v) -> true strictly precedes a
   VERIFY(v) -> false by correct readers. *)
let relay ~correct (h : (V.op, V.res) History.t) : violation list =
  let events = verify_events ~correct h in
  List.concat_map
    (fun a ->
      if not a.v_result then []
      else
        List.filter_map
          (fun b ->
            if
              Value.equal a.v_value b.v_value
              && (not b.v_result)
              && a.v_res < b.v_inv
            then
              Some
                {
                  property = "RELAY";
                  detail =
                    Printf.sprintf
                      "VERIFY(%s)=true by p%d (ends %d) precedes \
                       VERIFY(%s)=false by p%d (starts %d)"
                      a.v_value a.v_pid a.v_res b.v_value b.v_pid b.v_inv;
                }
            else None)
          events)
    events

(* VALIDITY (Observation 11): a successful SIGN(v) by a correct writer
   makes every subsequent correct VERIFY(v) return true. *)
let validity ~correct (h : (V.op, V.res) History.t) : violation list =
  let signs =
    List.filter_map
      (fun (e : (V.op, V.res) History.entry) ->
        if not (correct e.pid) then None
        else
          match (e.op, e.ret) with
          | V.Sign value, Some (V.Signed true, rt) -> Some (value, rt)
          | _ -> None)
      (History.complete_entries h)
  in
  let events = verify_events ~correct h in
  List.concat_map
    (fun (sv, srt) ->
      List.filter_map
        (fun b ->
          if Value.equal sv b.v_value && (not b.v_result) && srt < b.v_inv
          then
            Some
              {
                property = "VALIDITY";
                detail =
                  Printf.sprintf
                    "SIGN(%s) succeeded (ends %d) but VERIFY(%s)=false by \
                     p%d (starts %d)"
                    sv srt b.v_value b.v_pid b.v_inv;
              }
          else None)
        events)
    signs

(* UNFORGEABILITY (Observation 12), checkable when the writer is correct:
   no VERIFY(v)=true without a prior-or-concurrent successful SIGN(v). *)
let unforgeability ~correct ~writer (h : (V.op, V.res) History.t) :
    violation list =
  if not (correct writer) then []
  else begin
    let signs =
      List.filter_map
        (fun (e : (V.op, V.res) History.entry) ->
          match (e.op, e.ret) with
          | V.Sign value, Some (V.Signed true, _) -> Some (value, e.inv)
          | _ -> None)
        (History.complete_entries h)
    in
    List.filter_map
      (fun b ->
        if not b.v_result then None
        else if
          List.exists
            (fun (sv, sinv) -> Value.equal sv b.v_value && sinv < b.v_res)
            signs
        then None
        else
          Some
            {
              property = "UNFORGEABILITY";
              detail =
                Printf.sprintf
                  "VERIFY(%s)=true by p%d (ends %d) with no sign invocation \
                   before it"
                  b.v_value b.v_pid b.v_res;
            })
      (verify_events ~correct h)
  end

(* ------------------------------------------------------------------ *)
(* Sticky register (Observations 16-18)                                *)
(* ------------------------------------------------------------------ *)

module S = Spec.Sticky_spec

type sevent = {
  s_pid : int;
  s_value : Value.t option;
  s_inv : int;
  s_res : int;
}

let read_events ~correct (h : (S.op, S.res) History.t) : sevent list =
  List.filter_map
    (fun (e : (S.op, S.res) History.entry) ->
      if not (correct e.pid) then None
      else
        match (e.op, e.ret) with
        | S.Read, Some (S.Val r, rt) ->
            Some { s_pid = e.pid; s_value = r; s_inv = e.inv; s_res = rt }
        | _ -> None)
    (History.complete_entries h)

(* UNIQUENESS (Observation 18): agreement among all non-⊥ reads, and no
   ⊥-read after a completed non-⊥ read. *)
let uniqueness ~correct (h : (S.op, S.res) History.t) : violation list =
  let events = read_events ~correct h in
  let agreement =
    let non_bot = List.filter_map (fun e -> e.s_value) events in
    match List.sort_uniq Value.compare non_bot with
    | [] | [ _ ] -> []
    | vs ->
        [
          {
            property = "UNIQUENESS";
            detail =
              Printf.sprintf "correct readers returned distinct values: %s"
                (String.concat ", " vs);
          };
        ]
  in
  let stickiness =
    List.concat_map
      (fun a ->
        match a.s_value with
        | None -> []
        | Some v ->
            List.filter_map
              (fun b ->
                if b.s_value = None && a.s_res < b.s_inv then
                  Some
                    {
                      property = "UNIQUENESS";
                      detail =
                        Printf.sprintf
                          "READ=%s by p%d (ends %d) precedes READ=⊥ by p%d \
                           (starts %d)"
                          v a.s_pid a.s_res b.s_pid b.s_inv;
                    }
                else None)
              events)
      events
  in
  agreement @ stickiness

(* VALIDITY (Observation 16): once a correct writer's first WRITE(v)
   completes, every subsequent correct READ returns v. *)
let sticky_validity ~correct ~writer (h : (S.op, S.res) History.t) :
    violation list =
  if not (correct writer) then []
  else begin
    let first_write =
      List.filter_map
        (fun (e : (S.op, S.res) History.entry) ->
          if e.pid <> writer then None
          else
            match (e.op, e.ret) with
            | S.Write v, Some (S.Done, rt) -> Some (v, e.inv, rt)
            | _ -> None)
        (History.complete_entries h)
      |> List.sort (fun (_, i1, _) (_, i2, _) -> compare i1 i2)
      |> function
      | [] -> None
      | x :: _ -> Some x
    in
    match first_write with
    | None -> []
    | Some (v, _, wrt) ->
        List.filter_map
          (fun b ->
            if wrt < b.s_inv && b.s_value <> Some v then
              Some
                {
                  property = "VALIDITY";
                  detail =
                    Printf.sprintf
                      "WRITE(%s) completed (ends %d) but READ by p%d \
                       (starts %d) returned %s"
                      v wrt b.s_pid b.s_inv
                      (match b.s_value with Some x -> x | None -> "⊥");
                }
            else None)
          (read_events ~correct h)
  end

let check_all (violations : violation list) : (unit, string) result =
  match violations with
  | [] -> Ok ()
  | vs ->
      Error
        (String.concat "; "
           (List.map (fun v -> Format.asprintf "%a" pp_violation v) vs))
