(* Operation histories.

   An entry is one operation instance with its [invocation, response]
   interval in logical time. Timestamps come from the scheduler's logical
   clock (advanced by every shared access and every stamp request), so
   distinct events always carry distinct times and interval order reflects
   real-time order of the simulation. *)

type ('op, 'res) entry = {
  pid : int;
  op : 'op;
  inv : int;
  mutable ret : ('res * int) option; (* (result, response time); None = incomplete *)
}

type ('op, 'res) t = { mutable entries : ('op, 'res) entry list (* newest first *) }

let create () : ('op, 'res) t = { entries = [] }

(* Record an operation executed inside a fiber: stamps invocation and
   response with the scheduler's logical clock. *)
let record (h : ('op, 'res) t) ~pid (op : 'op) (body : unit -> 'res) : 'res =
  let inv = Lnd_runtime.Sched.tick () in
  let e = { pid; op; inv; ret = None } in
  h.entries <- e :: h.entries;
  let r = body () in
  let t = Lnd_runtime.Sched.tick () in
  e.ret <- Some (r, t);
  r

let entries (h : ('op, 'res) t) : ('op, 'res) entry list =
  List.sort (fun a b -> compare a.inv b.inv) h.entries

let complete_entries h =
  List.filter (fun e -> e.ret <> None) (entries h)

let incomplete_entries h =
  List.filter (fun e -> e.ret = None) (entries h)

(* Restriction to a set of (correct) processes: H|CORRECT. *)
let restrict (h : ('op, 'res) t) ~(correct : int -> bool) : ('op, 'res) t =
  { entries = List.filter (fun e -> correct e.pid) h.entries }

let response_time (e : ('op, 'res) entry) : int =
  match e.ret with Some (_, t) -> t | None -> max_int

(* o precedes o' (Definition 1). *)
let precedes a b = response_time a < b.inv

let pp ~pp_op ~pp_res fmt (h : ('op, 'res) t) =
  List.iter
    (fun e ->
      match e.ret with
      | Some (r, t) ->
          Format.fprintf fmt "  [%d,%d] p%d: %a -> %a@." e.inv t e.pid pp_op
            e.op pp_res r
      | None -> Format.fprintf fmt "  [%d,∞) p%d: %a (incomplete)@." e.inv e.pid pp_op e.op)
    (entries h)
