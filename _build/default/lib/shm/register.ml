(* A shared register cell.

   Registers are single-writer: only [owner] may write. Readability is
   either [Any_reader] (SWMR) or [Single_reader pid] (SWSR, as used for the
   R_jk mailbox registers of Algorithms 1 and 2). The model makes every
   read and write atomic; atomicity at this granularity is exactly the
   paper's shared-memory model (Section 3). *)

open Lnd_support

type readability = Any_reader | Single_reader of int

type t = {
  id : int;
  name : string;
  owner : int;
  readability : readability;
  init : Univ.t;
  mutable value : Univ.t;
  mutable read_count : int;
  mutable write_count : int;
}

let pp fmt (r : t) =
  Format.fprintf fmt "%s(owner=p%d)=%a" r.name r.owner Univ.pp r.value

let may_read (r : t) ~(by : int) =
  match r.readability with
  | Any_reader -> true
  | Single_reader p -> p = by || r.owner = by

let may_write (r : t) ~(by : int) = r.owner = by
