lib/shm/register.ml: Format Lnd_support Univ
