lib/shm/register.mli: Format Lnd_support Univ
