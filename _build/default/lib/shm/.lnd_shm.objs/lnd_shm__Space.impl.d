lib/shm/space.ml: Array Format List Lnd_support Register Univ
