lib/shm/space.mli: Format Lnd_support Register Univ
