(** A shared register cell.

    Registers are single-writer: only [owner] may write. Readability is
    either [Any_reader] (SWMR) or [Single_reader pid] (SWSR, as used for
    the R_jk mailbox registers of Algorithms 1 and 2). The model makes
    every read and write atomic — the paper's shared-memory model
    (Section 3). *)

open Lnd_support

type readability = Any_reader | Single_reader of int

type t = {
  id : int;
  name : string;
  owner : int; (** the only process allowed to write *)
  readability : readability;
  init : Univ.t; (** the initial value (the reset adversary's target) *)
  mutable value : Univ.t;
  mutable read_count : int;
  mutable write_count : int;
}

val pp : Format.formatter -> t -> unit

val may_read : t -> by:int -> bool
(** SWMR: everyone; SWSR: the designated reader and the owner. *)

val may_write : t -> by:int -> bool
(** Only the owner — even Byzantine processes cannot bypass this
    (the write-port restriction of the paper's model). *)
