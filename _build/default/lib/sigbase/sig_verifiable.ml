(* Baseline: a SWMR verifiable register built WITH unforgeable signatures
   (the assumption the paper eliminates).

   Layout: R* holds the current value; every process p_i owns a
   certificate register Cert_i holding a set of (value, signature) pairs.
   SIGN(v) stores a certificate in Cert_0. VERIFY(v) scans all
   certificate registers for a valid certificate of v and, before
   returning true, relays the certificate into the reader's own Cert_k —
   this write-back is what makes the relay property hold even when the
   Byzantine writer later erases Cert_0 ("you can lie but, with
   signatures, not deny either").

   Tolerates any number of Byzantine processes other than the reader
   itself (n > f for termination is trivial since nothing ever waits), at
   the price of the signature assumption; compare with Algorithm 1's
   signature-free n > 3f. This is the comparison baseline of experiment
   table T4. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime

type cert = Value.t * Lnd_crypto.Sigoracle.signature

let cert_key : cert list Univ.key =
  Univ.key ~name:"certs"
    ~pp:(fun fmt cs ->
      Format.fprintf fmt "[%d certs]" (List.length cs))
    ~equal:(fun a b -> List.length a = List.length b && a = b)

type config = { n : int; f : int }

type regs = {
  cfg : config;
  oracle : Lnd_crypto.Sigoracle.t;
  rstar : Register.t;
  certs : Register.t array; (* Cert_i, owner p_i *)
}

let alloc space (cfg : config) ~oracle : regs =
  let rstar =
    Space.alloc space ~name:"R*" ~owner:0 ~init:(Univ.inj Codecs.value Value.v0)
      ()
  in
  let certs =
    Array.init cfg.n (fun i ->
        Space.alloc space
          ~name:(Printf.sprintf "Cert_%d" i)
          ~owner:i
          ~init:(Univ.inj cert_key [])
          ())
  in
  { cfg; oracle; rstar; certs }

let read_certs reg = Univ.prj_default cert_key ~default:[] (Sched.read reg)

(* ---------------- Writer (p0) ---------------- *)

type writer = { w_regs : regs; mutable written : Value.Set.t }

let writer (rg : regs) : writer = { w_regs = rg; written = Value.Set.empty }

let write (w : writer) (v : Value.t) : unit =
  Sched.write w.w_regs.rstar (Univ.inj Codecs.value v);
  w.written <- Value.Set.add v w.written

let sign (w : writer) (v : Value.t) : bool =
  if Value.Set.mem v w.written then begin
    let s = Lnd_crypto.Sigoracle.sign w.w_regs.oracle ~by:0 v in
    let cur = read_certs w.w_regs.certs.(0) in
    Sched.write w.w_regs.certs.(0) (Univ.inj cert_key ((v, s) :: cur));
    true
  end
  else false

(* ---------------- Readers ---------------- *)

type reader = { rd_regs : regs; rd_pid : int }

let reader (rg : regs) ~pid : reader =
  if pid <= 0 || pid >= rg.cfg.n then invalid_arg "Sig_verifiable.reader";
  { rd_regs = rg; rd_pid = pid }

let read (rd : reader) : Value.t =
  Univ.prj_default Codecs.value ~default:Value.v0 (Sched.read rd.rd_regs.rstar)

let valid_cert (rg : regs) v ((v', s) : cert) =
  Value.equal v v' && Lnd_crypto.Sigoracle.verify rg.oracle ~signer:0 ~msg:v s

(* VERIFY(v): one scan over all certificate registers; a found certificate
   is relayed through the reader's own register before returning true. *)
let verify (rd : reader) (v : Value.t) : bool =
  let rg = rd.rd_regs in
  let found = ref None in
  for i = 0 to rg.cfg.n - 1 do
    if !found = None then
      match List.find_opt (valid_cert rg v) (read_certs rg.certs.(i)) with
      | Some c -> found := Some c
      | None -> ()
  done;
  match !found with
  | None -> false
  | Some c ->
      let mine = read_certs rg.certs.(rd.rd_pid) in
      if not (List.exists (valid_cert rg v) mine) then
        Sched.write rg.certs.(rd.rd_pid) (Univ.inj cert_key (c :: mine));
      true
