(** Baseline: a SWMR verifiable register built WITH unforgeable
    signatures (the assumption the paper eliminates).

    SIGN(v) stores a certificate (value, signature) in the writer's
    certificate register; VERIFY(v) scans all certificate registers and,
    before returning true, relays a found certificate into the reader's
    own register — the write-back that keeps the relay property alive
    when the Byzantine writer later erases its certificates.

    Tolerates any number of Byzantine processes other than the reader
    itself, at the price of the signature assumption; compare with
    Algorithm 1's signature-free n > 3f (bench table T4). *)

open Lnd_support

type cert = Value.t * Lnd_crypto.Sigoracle.signature

val cert_key : cert list Univ.key
(** The register payload; exposed so tests can plant forged
    certificates. *)

type config = { n : int; f : int }

type regs = {
  cfg : config;
  oracle : Lnd_crypto.Sigoracle.t;
  rstar : Lnd_shm.Register.t;
  certs : Lnd_shm.Register.t array; (** Cert_i, owner p_i *)
}

val alloc : Lnd_shm.Space.t -> config -> oracle:Lnd_crypto.Sigoracle.t -> regs

(** {2 Writer (p0)} *)

type writer = { w_regs : regs; mutable written : Value.Set.t }

val writer : regs -> writer
val write : writer -> Value.t -> unit
val sign : writer -> Value.t -> bool

(** {2 Readers} *)

type reader = { rd_regs : regs; rd_pid : int }

val reader : regs -> pid:int -> reader
val read : reader -> Value.t

val verify : reader -> Value.t -> bool
(** One O(n) certificate scan; relays what it finds. *)
