lib/sigbase/sig_verifiable.ml: Array Codecs Format List Lnd_crypto Lnd_runtime Lnd_shm Lnd_support Printf Register Sched Space Univ Value
