lib/sigbase/sig_verifiable.mli: Lnd_crypto Lnd_shm Lnd_support Univ Value
