(* Byzantine strategies against the sticky register (Algorithm 2). *)

open Lnd_support
open Lnd_runtime
open Lnd_sticky.Sticky

let vopt v = Univ.inj Codecs.value_opt v
let stamped u c = Univ.inj Codecs.vopt_stamped (u, c)

(* Responder answering askers with [payload]. *)
let responder (regs : regs) ~pid
    ~(payload : asker:int -> round:int -> Value.t option)
    ?(each_round = fun () -> ()) () : unit =
  let n = regs.cfg.n in
  let prev = Array.make n 0 in
  while true do
    each_round ();
    let answered = ref false in
    for k = 1 to n - 1 do
      if k <> pid then begin
        let ck =
          Univ.prj_default Codecs.counter ~default:0 (Cell.read regs.c.(k))
        in
        if ck > prev.(k) then begin
          Cell.write regs.rjk.(pid).(k) (stamped (payload ~asker:k ~round:ck) ck);
          prev.(k) <- ck;
          answered := true
        end
      end
    done;
    if not !answered then Sched.yield ()
  done

(* The equivocating Byzantine WRITER: writes [va] into its echo register,
   waits a few of its own steps, then overwrites it with [vb], claiming
   both values to different askers. Uniqueness (Observation 18) must
   survive: correct readers never return two different non-⊥ values. *)
let spawn_equivocating_writer sched (regs : regs) ~(va : Value.t)
    ~(vb : Value.t) ?(flip_after = 3) () : Sched.fiber =
  Sched.spawn sched ~pid:0 ~name:"byz-equivocating-writer" ~daemon:true
    (fun () ->
      Cell.write regs.e.(0) (vopt (Some va));
      Cell.write regs.r.(0) (vopt (Some va));
      let rounds = ref 0 in
      responder regs ~pid:0
        ~payload:(fun ~asker ~round:_ ->
          if asker mod 2 = 0 then Some va else Some vb)
        ~each_round:(fun () ->
          incr rounds;
          if !rounds = flip_after then begin
            Cell.write regs.e.(0) (vopt (Some vb));
            Cell.write regs.r.(0) (vopt (Some vb))
          end)
        ())

(* A writer that writes, lets the system settle, then erases its echo
   register and pretends it never wrote ("deny"). Stickiness must keep the
   value alive among the correct processes. *)
let spawn_denying_writer sched (regs : regs) ~(v : Value.t)
    ?(deny_after = 4) () : Sched.fiber =
  Sched.spawn sched ~pid:0 ~name:"byz-denying-writer" ~daemon:true (fun () ->
      Cell.write regs.e.(0) (vopt (Some v));
      Cell.write regs.r.(0) (vopt (Some v));
      let rounds = ref 0 in
      let denied = ref false in
      responder regs ~pid:0
        ~payload:(fun ~asker:_ ~round:_ -> if !denied then None else Some v)
        ~each_round:(fun () ->
          incr rounds;
          if (not !denied) && !rounds >= deny_after then begin
            denied := true;
            Cell.write regs.e.(0) (vopt None);
            Cell.write regs.r.(0) (vopt None)
          end)
        ())

(* A colluder that claims to witness [v] nobody echoed. *)
let spawn_false_witness sched (regs : regs) ~pid ~(v : Value.t) : Sched.fiber =
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-falsewitness%d" pid)
    ~daemon:true (fun () ->
      Cell.write regs.e.(pid) (vopt (Some v));
      Cell.write regs.r.(pid) (vopt (Some v));
      responder regs ~pid ~payload:(fun ~asker:_ ~round:_ -> Some v) ())

(* A colluder that answers ⊥ forever, instantly (pressures readers toward
   returning ⊥). *)
let spawn_naysayer sched (regs : regs) ~pid : Sched.fiber =
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-naysayer%d" pid)
    ~daemon:true (fun () ->
      responder regs ~pid ~payload:(fun ~asker:_ ~round:_ -> None) ())

(* A colluder whose claim flips on every reply. *)
let spawn_flipflop sched (regs : regs) ~pid ~(v : Value.t) : Sched.fiber =
  let count = ref 0 in
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-flipflop%d" pid)
    ~daemon:true (fun () ->
      responder regs ~pid
        ~payload:(fun ~asker:_ ~round:_ ->
          incr count;
          if !count mod 2 = 0 then Some v else None)
        ())

(* Ill-typed garbage everywhere. *)
let spawn_garbage sched (regs : regs) ~pid : Sched.fiber =
  let n = regs.cfg.n in
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-garbage%d" pid)
    ~daemon:true (fun () ->
      Cell.write regs.e.(pid) (Univ.inj Univ.garbage "junk");
      Cell.write regs.r.(pid) (Univ.inj Univ.garbage "junk");
      let prev = Array.make n 0 in
      while true do
        let answered = ref false in
        for k = 1 to n - 1 do
          if k <> pid then begin
            let ck =
              Univ.prj_default Codecs.counter ~default:0
                (Cell.read regs.c.(k))
            in
            if ck > prev.(k) then begin
              if ck mod 2 = 0 then
                Cell.write regs.rjk.(pid).(k) (Univ.inj Univ.garbage "junk")
              else Cell.write regs.rjk.(pid).(k) (stamped None ck);
              prev.(k) <- ck;
              answered := true
            end
          end
        done;
        if not !answered then Sched.yield ()
      done)

(* A colluder that replays its FIRST observation of the writer's echo
   register forever, with fresh timestamps — stale evidence against the
   freshness handshake. *)
let spawn_stale_replayer sched (regs : regs) ~pid : Sched.fiber =
  let frozen = ref None in
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-stale%d" pid)
    ~daemon:true (fun () ->
      responder regs ~pid
        ~payload:(fun ~asker:_ ~round:_ ->
          match !frozen with
          | Some u -> u
          | None ->
              let u =
                Univ.prj_default Codecs.value_opt ~default:None
                  (Cell.read regs.e.(0))
              in
              frozen := Some u;
              u)
        ())
