(** Byzantine strategies against the sticky register (Algorithm 2).
    See [Byz_verifiable] for the ground rules — the register space gives
    these adversaries exactly the model's Byzantine power. *)

open Lnd_support
open Lnd_runtime
open Lnd_sticky.Sticky

val responder :
  regs ->
  pid:int ->
  payload:(asker:int -> round:int -> Value.t option) ->
  ?each_round:(unit -> unit) ->
  unit ->
  unit
(** Answer askers through R_pid,k with whatever claim [payload]
    fabricates; runs forever. *)

val spawn_equivocating_writer :
  Sched.t ->
  regs ->
  va:Value.t ->
  vb:Value.t ->
  ?flip_after:int ->
  unit ->
  Sched.fiber
(** Writes [va] into its echo register, later overwrites it with [vb],
    and claims different values to different askers — the §1.2
    "successively propose several values" attack. Uniqueness must
    survive. *)

val spawn_denying_writer :
  Sched.t -> regs -> v:Value.t -> ?deny_after:int -> unit -> Sched.fiber
(** Writes, lets the value spread, then erases its echo register and
    pretends it never wrote. *)

val spawn_false_witness :
  Sched.t -> regs -> pid:int -> v:Value.t -> Sched.fiber
(** Claims to witness a value nobody echoed. *)

val spawn_naysayer : Sched.t -> regs -> pid:int -> Sched.fiber
(** Answers ⊥ forever, instantly. *)

val spawn_flipflop : Sched.t -> regs -> pid:int -> v:Value.t -> Sched.fiber
(** Claim flips on every reply. *)

val spawn_garbage : Sched.t -> regs -> pid:int -> Sched.fiber
(** Ill-typed garbage everywhere it owns. *)

val spawn_stale_replayer : Sched.t -> regs -> pid:int -> Sched.fiber
(** Replays its first observation of the writer's echo register forever,
    with fresh timestamps — stale evidence against the freshness
    handshake. *)
