(** Byzantine strategies against the verifiable register (Algorithm 1).

    Every strategy is ordinary fiber code: it can read whatever is
    readable and write only registers owned by its pid —
    [Lnd_shm.Space] enforces exactly the model's restriction, so these
    adversaries have precisely the power the paper grants Byzantine
    processes. All are spawned as daemon fibers. *)

open Lnd_support
open Lnd_runtime
open Lnd_verifiable.Verifiable

val responder :
  regs ->
  pid:int ->
  payload:(asker:int -> round:int -> Value.Set.t) ->
  ?each_round:(unit -> unit) ->
  unit ->
  unit
(** Core of every strategy: watch the round counters C_k and answer each
    asker through R_pid,k with whatever witness set [payload] fabricates.
    [each_round] runs once per iteration for side effects on owned
    registers. Runs forever. *)

val spawn_flipflop : Sched.t -> regs -> pid:int -> v:Value.t -> Sched.fiber
(** A colluder that flips its vote about [v] on every reply — the §5.1
    scenario meant to trap a reader between f and 2f+1 yes votes. *)

val spawn_false_witness :
  Sched.t -> regs -> pid:int -> v:Value.t -> Sched.fiber
(** Claims to witness a value the correct writer never signed (the
    unforgeability attack). *)

val spawn_naysayer : Sched.t -> regs -> pid:int -> Sched.fiber
(** Always answers "no witness of anything", instantly. *)

val spawn_garbage : Sched.t -> regs -> pid:int -> Sched.fiber
(** Writes ill-typed garbage in every register it owns, with
    plausible-looking timestamps half the time. *)

val spawn_denying_writer :
  Sched.t -> regs -> v:Value.t -> ?deny_after:int -> unit -> Sched.fiber
(** The title adversary: writes and "signs" [v] like a correct writer,
    answers [deny_after] inquiries affirmatively, then erases all its
    registers and denies ever having signed v. *)

val spawn_sign_without_write : Sched.t -> regs -> v:Value.t -> Sched.fiber
(** Puts [v] straight into its witness register without writing R*. *)

val spawn_equivocating_writer :
  Sched.t -> regs -> va:Value.t -> vb:Value.t -> Sched.fiber
(** Claims different signed values to different askers while rewriting
    R_0 back and forth. *)

val spawn_stale_replayer : Sched.t -> regs -> pid:int -> Sched.fiber
(** Replays the witness set it saw at its first reply with fresh
    timestamps, forever — probing whether old evidence with new stamps
    can confuse the round protocol. *)

val spawn_selective : Sched.t -> regs -> pid:int -> v:Value.t -> Sched.fiber
(** Answers only even-numbered askers (claiming [v]) and starves the
    rest — a targeted-starvation attempt; VERIFY must still terminate for
    everyone via the correct helpers. *)
