(* Byzantine strategies against the verifiable register (Algorithm 1).

   Every strategy is ordinary fiber code: it can read whatever is readable
   and write only registers owned by its pid — [Lnd_shm.Space] enforces
   exactly the model's restriction, so these adversaries have precisely the
   power the paper grants Byzantine processes. *)

open Lnd_support
open Lnd_runtime
open Lnd_verifiable.Verifiable

let vset_of = Univ.inj Codecs.vset
let stamped s c = Univ.inj Codecs.vset_stamped (s, c)

(* Core of every responder: watch the round counters C_k and answer each
   asker through R_{pid,k}. [payload] decides what witness set to claim,
   per asker and per round — a correct Help would claim its real witness
   set; a liar claims whatever serves the attack. [each_round] runs once
   per iteration for side effects on owned registers. *)
let responder (regs : regs) ~pid ~(payload : asker:int -> round:int -> Value.Set.t)
    ?(each_round = fun () -> ()) () : unit =
  let n = regs.cfg.n in
  let prev = Array.make n 0 in
  while true do
    each_round ();
    let answered = ref false in
    for k = 1 to n - 1 do
      if k <> pid then begin
        let ck =
          Univ.prj_default Codecs.counter ~default:0 (Cell.read regs.c.(k))
        in
        if ck > prev.(k) then begin
          Cell.write regs.rjk.(pid).(k) (stamped (payload ~asker:k ~round:ck) ck);
          prev.(k) <- ck;
          answered := true
        end
      end
    done;
    if not !answered then Sched.yield ()
  done

(* A colluder that flips its vote about [v] on every reply: the §5.1
   scenario meant to trap a reader between f < |yes| < 2f+1. *)
let spawn_flipflop sched (regs : regs) ~pid ~(v : Value.t) : Sched.fiber =
  let count = ref 0 in
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-flipflop%d" pid)
    ~daemon:true (fun () ->
      responder regs ~pid
        ~payload:(fun ~asker:_ ~round:_ ->
          incr count;
          if !count mod 2 = 0 then Value.Set.singleton v else Value.Set.empty)
        ())

(* A colluder that claims to witness [v] (which the correct writer never
   signed) to every asker, and advertises it in its witness register:
   the unforgeability attack. *)
let spawn_false_witness sched (regs : regs) ~pid ~(v : Value.t) : Sched.fiber =
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-falsewitness%d" pid)
    ~daemon:true (fun () ->
      Cell.write regs.r.(pid) (vset_of (Value.Set.singleton v));
      responder regs ~pid
        ~payload:(fun ~asker:_ ~round:_ -> Value.Set.singleton v)
        ())

(* A process that always answers "no witness of anything", instantly. *)
let spawn_naysayer sched (regs : regs) ~pid : Sched.fiber =
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-naysayer%d" pid)
    ~daemon:true (fun () ->
      responder regs ~pid ~payload:(fun ~asker:_ ~round:_ -> Value.Set.empty) ())

(* A process that writes ill-typed garbage everywhere it owns, then keeps
   answering askers with garbage payloads carrying valid timestamps. *)
let spawn_garbage sched (regs : regs) ~pid : Sched.fiber =
  let n = regs.cfg.n in
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-garbage%d" pid)
    ~daemon:true (fun () ->
      Cell.write regs.r.(pid) (Univ.inj Univ.garbage "junk");
      if pid >= 1 then Cell.write regs.c.(pid) (Univ.inj Univ.garbage "junk");
      let prev = Array.make n 0 in
      while true do
        let answered = ref false in
        for k = 1 to n - 1 do
          if k <> pid then begin
            let ck =
              Univ.prj_default Codecs.counter ~default:0
                (Cell.read regs.c.(k))
            in
            if ck > prev.(k) then begin
              (* Garbage payload but a *valid-looking* fresh stamp would
                 require the right type; alternate between both shapes. *)
              if ck mod 2 = 0 then
                Cell.write regs.rjk.(pid).(k) (Univ.inj Univ.garbage "junk")
              else Cell.write regs.rjk.(pid).(k) (stamped Value.Set.empty ck);
              prev.(k) <- ck;
              answered := true
            end
          end
        done;
        if not !answered then Sched.yield ()
      done)

(* The "lie but then try to deny" Byzantine WRITER: it writes and "signs"
   [v] like a correct writer, answers askers affirmatively until
   [deny_after] replies have been sent, then erases all its registers
   (resets R*, R_0 and its mailboxes) and denies ever having signed v.
   The paper's point: once one correct reader verified v, denial must not
   flip any later VERIFY back to false. *)
let spawn_denying_writer sched (regs : regs) ~(v : Value.t)
    ?(deny_after = 2) () : Sched.fiber =
  Sched.spawn sched ~pid:0 ~name:"byz-denying-writer" ~daemon:true (fun () ->
      Cell.write regs.rstar (Univ.inj Codecs.value v);
      Cell.write regs.r.(0) (vset_of (Value.Set.singleton v));
      let replies = ref 0 in
      let denied = ref false in
      responder regs ~pid:0
        ~payload:(fun ~asker:_ ~round:_ ->
          incr replies;
          if !denied then Value.Set.empty else Value.Set.singleton v)
        ~each_round:(fun () ->
          if (not !denied) && !replies >= deny_after then begin
            denied := true;
            (* the "deny": erase every trace from owned registers *)
            Cell.write regs.rstar (Univ.inj Codecs.value Value.v0);
            Cell.write regs.r.(0) (vset_of Value.Set.empty);
            for k = 1 to regs.cfg.n - 1 do
              Cell.write regs.rjk.(0).(k) (stamped Value.Set.empty 0)
            done
          end)
        ())

(* A Byzantine writer that "signs" a value it never wrote to R*: it puts
   [v] straight into its witness register. Readers may verify v; Byzantine
   linearizability still holds because a history in which the writer did
   WRITE(v);SIGN(v) explains every correct observation. *)
let spawn_sign_without_write sched (regs : regs) ~(v : Value.t) : Sched.fiber =
  Sched.spawn sched ~pid:0 ~name:"byz-sign-no-write" ~daemon:true (fun () ->
      Cell.write regs.r.(0) (vset_of (Value.Set.singleton v));
      responder regs ~pid:0
        ~payload:(fun ~asker:_ ~round:_ -> Value.Set.singleton v)
        ())

(* A writer colluding with vote-flippers: equivocates between two values,
   claiming to different askers that different values are signed. *)
let spawn_equivocating_writer sched (regs : regs) ~(va : Value.t)
    ~(vb : Value.t) : Sched.fiber =
  Sched.spawn sched ~pid:0 ~name:"byz-equivocating-writer" ~daemon:true
    (fun () ->
      Cell.write regs.r.(0) (vset_of (Value.Set.singleton va));
      responder regs ~pid:0
        ~payload:(fun ~asker ~round:_ ->
          if asker mod 2 = 0 then Value.Set.singleton va
          else Value.Set.singleton vb)
        ~each_round:(fun () ->
          (* keep rewriting R_0 back and forth *)
          let cur =
            Univ.prj_default Codecs.vset ~default:Value.Set.empty
              (Cell.read regs.r.(0))
          in
          let next =
            if Value.Set.mem va cur then Value.Set.singleton vb
            else Value.Set.singleton va
          in
          Cell.write regs.r.(0) (vset_of next))
        ())

(* A colluder that replays STALE witness information with fresh
   timestamps: it answers every asker with the witness set it saw at its
   first reply, forever — probing whether old evidence with new stamps
   can confuse the round protocol. *)
let spawn_stale_replayer sched (regs : regs) ~pid : Sched.fiber =
  let frozen = ref None in
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-stale%d" pid)
    ~daemon:true (fun () ->
      responder regs ~pid
        ~payload:(fun ~asker:_ ~round:_ ->
          match !frozen with
          | Some s -> s
          | None ->
              (* freeze whatever the writer's register shows right now *)
              let s =
                Univ.prj_default Codecs.vset ~default:Value.Set.empty
                  (Cell.read regs.r.(0))
              in
              frozen := Some s;
              s)
        ())

(* A colluder that answers only some askers (here: even-numbered ones)
   and starves the rest — a targeted-starvation attempt. Verify must
   still terminate for everyone via the correct helpers. *)
let spawn_selective sched (regs : regs) ~pid ~(v : Value.t) : Sched.fiber =
  let n = regs.cfg.n in
  Sched.spawn sched ~pid ~name:(Printf.sprintf "byz-selective%d" pid)
    ~daemon:true (fun () ->
      let prev = Array.make n 0 in
      while true do
        let answered = ref false in
        for k = 1 to n - 1 do
          if k <> pid && k mod 2 = 0 then begin
            let ck =
              Univ.prj_default Codecs.counter ~default:0 (Cell.read regs.c.(k))
            in
            if ck > prev.(k) then begin
              Cell.write regs.rjk.(pid).(k)
                (stamped (Value.Set.singleton v) ck);
              prev.(k) <- ck;
              answered := true
            end
          end
        done;
        if not !answered then Sched.yield ()
      done)
