lib/byz/byz_sticky.ml: Array Cell Codecs Lnd_runtime Lnd_sticky Lnd_support Printf Sched Univ Value
