lib/byz/byz_sticky.mli: Lnd_runtime Lnd_sticky Lnd_support Sched Value
