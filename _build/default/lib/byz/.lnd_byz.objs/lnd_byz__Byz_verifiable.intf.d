lib/byz/byz_verifiable.mli: Lnd_runtime Lnd_support Lnd_verifiable Sched Value
