lib/byz/byz_verifiable.ml: Array Cell Codecs Lnd_runtime Lnd_support Lnd_verifiable Printf Sched Univ Value
