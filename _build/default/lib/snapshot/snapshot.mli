(** A signed single-writer snapshot object on verifiable registers,
    demonstrating the Section 1.1 claim: constructions that use
    signatures to let readers trust and relay segment contents
    (Cohen-Keidar style) can substitute the paper's verifiable registers
    for the signatures.

    UPDATE(i, v) = WRITE(v); SIGN(v) on process i's verifiable-register
    segment. SCAN() double-collects READ+VERIFY views until stable;
    unverified (unsigned) segment contents read as the initial v0 — so a
    Byzantine owner cannot make scanners accept a value it never signed,
    and once one scanner accepts a value every later scanner does too.

    Deviation note (DESIGN.md §4.5): Cohen-Keidar's full atomic-snapshot
    algorithm with embedded scans is not reproduced line-by-line; the
    double-collect scan here is linearizable under writer quiescence and
    validated empirically. *)

open Lnd_support
module Vr = Lnd_verifiable.Verifiable

type segment = {
  seg_owner : int;
  seg_regs : Vr.regs; (** transparent: adversaries aim at this *)
  seg_to_virtual : int -> int;
  seg_writer : Vr.writer;
  seg_readers : Vr.reader option array;
      (** persistent per real reader pid (monotone round counters) *)
}

type t = { n : int; f : int; segments : segment array }

val create :
  Lnd_shm.Space.t ->
  Lnd_runtime.Sched.t ->
  n:int ->
  f:int ->
  ?byzantine:int list ->
  unit ->
  t
(** Builds one rotated verifiable-register instance per segment and
    spawns every correct process's Help daemons. *)

val update : t -> pid:int -> Value.t -> unit
(** UPDATE my segment; call from a fiber of [pid]. *)

val collect : t -> pid:int -> Value.t array
(** One verified view: per segment, the current value if its owner signed
    it, else v0. *)

val scan : ?max_rounds:int -> t -> pid:int -> Value.t array
(** Double-collect until two identical verified views (or [max_rounds]). *)
