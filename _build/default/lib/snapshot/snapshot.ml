(* A signed single-writer snapshot object on verifiable registers,
   demonstrating the Section 1.1 claim: constructions that use signatures
   to let readers trust and relay segment contents (Cohen-Keidar style)
   can substitute the paper's verifiable registers for the signatures.

   Each process i owns one segment, backed by one verifiable-register
   instance in which i plays the writer role:

     UPDATE(i, v)  =  WRITE(v); SIGN(v) on i's verifiable register.
     SCAN()        =  repeatedly collect every segment with
                      READ + VERIFY, and return the first collect that
                      (a) repeats identically twice (double-collect) and
                      (b) contains only verified (i.e. "signed") values —
                      unverified segment contents read as the initial v0.

   Unforgeability of the verifiable register gives the snapshot its
   Byzantine guarantee: a segment value appears in a scan only if its
   owner signed it; a Byzantine owner can keep writing garbage but cannot
   make scanners accept a value it never signed, and once one scanner
   accepts a value every later scanner accepts it too (relay).

   Deviation note (DESIGN.md §4.5): Cohen-Keidar's full atomic-snapshot
   algorithm with embedded scans is not reproduced line-by-line (it is not
   printed in this paper); the double-collect scan here is linearizable
   under writer quiescence and validated empirically in the tests. *)

open Lnd_support
open Lnd_runtime
module Vr = Lnd_verifiable.Verifiable

type segment = {
  seg_owner : int;
  seg_regs : Vr.regs;
  seg_to_virtual : int -> int;
  seg_writer : Vr.writer;
  seg_readers : Vr.reader option array;
      (* persistent per real reader pid: round counters must be monotone
         across all of a reader's verifies of this segment *)
}

type t = {
  n : int;
  f : int;
  segments : segment array;
}

let rotation ~n ~owner =
  let to_real v = (v + owner) mod n in
  let to_virtual r = ((r - owner) + n) mod n in
  (to_real, to_virtual)

let create space sched ~n ~f ?(byzantine : int list = []) () : t =
  let segments =
    Array.init n (fun owner ->
        let to_real, to_virtual = rotation ~n ~owner in
        let mk : Cell.allocator =
         fun ~name ~owner:vowner ?single_reader ~init () ->
          Cell.shm_allocator space
            ~name:(Printf.sprintf "snap[%d].%s" owner name)
            ~owner:(to_real vowner)
            ?single_reader:(Option.map to_real single_reader)
            ~init ()
        in
        let regs = Vr.alloc_with mk { Vr.n; f } in
        let seg_readers =
          Array.init n (fun pid ->
              let vpid = to_virtual pid in
              if vpid = 0 then None else Some (Vr.reader regs ~pid:vpid))
        in
        { seg_owner = owner; seg_regs = regs; seg_to_virtual = to_virtual;
          seg_writer = Vr.writer regs; seg_readers })
  in
  for pid = 0 to n - 1 do
    if not (List.mem pid byzantine) then
      Array.iter
        (fun seg ->
          let vpid = seg.seg_to_virtual pid in
          ignore
            (Sched.spawn sched ~pid
               ~name:(Printf.sprintf "snap-help%d[%d]" pid seg.seg_owner)
               ~daemon:true (fun () -> Vr.help seg.seg_regs ~pid:vpid)))
        segments
  done;
  { n; f; segments }

(* UPDATE my segment; must run in a fiber of [pid]. *)
let update (t : t) ~pid (v : Value.t) : unit =
  let seg = t.segments.(pid) in
  Vr.write seg.seg_writer v;
  let ok = Vr.sign seg.seg_writer v in
  assert ok

(* Collect one verified view: per segment, the current value if the owner
   signed it, else v0. Must run in a fiber of [pid]. *)
let collect (t : t) ~pid : Value.t array =
  Array.map
    (fun seg ->
      if seg.seg_owner = pid then begin
        (* my own segment: value is "in the snapshot" iff I signed it,
           i.e. iff it is in my witness register R_0 *)
        let v =
          Univ.prj_default Codecs.value ~default:Value.v0
            (Cell.read seg.seg_regs.Vr.rstar)
        in
        let signed =
          Univ.prj_default Codecs.vset ~default:Value.Set.empty
            (Cell.read seg.seg_regs.Vr.r.(0))
        in
        if Value.Set.mem v signed then v else Value.v0
      end
      else begin
        let rd = Option.get seg.seg_readers.(pid) in
        let v = Vr.read rd in
        if Value.equal v Value.v0 then Value.v0
        else if Vr.verify rd v then v
        else Value.v0
      end)
    t.segments

(* SCAN: double-collect until two identical verified views. *)
let scan ?(max_rounds = 64) (t : t) ~pid : Value.t array =
  let rec go prev rounds =
    let cur = collect t ~pid in
    if prev = Some cur || rounds >= max_rounds then cur
    else begin
      Sched.yield ();
      go (Some cur) (rounds + 1)
    end
  in
  go None 0
