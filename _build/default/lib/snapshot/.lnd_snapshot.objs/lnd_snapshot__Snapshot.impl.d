lib/snapshot/snapshot.ml: Array Cell Codecs List Lnd_runtime Lnd_support Lnd_verifiable Option Printf Sched Univ Value
