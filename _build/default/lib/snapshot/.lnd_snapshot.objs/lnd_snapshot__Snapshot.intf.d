lib/snapshot/snapshot.mli: Lnd_runtime Lnd_shm Lnd_support Lnd_verifiable Value
