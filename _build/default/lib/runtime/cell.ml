(* An abstract SWMR/SWSR register handle.

   Algorithms 1 and 2 are written against [Cell.t] rather than raw
   [Lnd_shm.Register.t], so that the same code runs over

   - real shared-memory registers (the paper's base model), via
     [shm_allocator], where a read/write is one atomic scheduler step; or
   - registers *emulated over message passing* (the Section 9 corollary,
     see Lnd_msgpass.Regemu), where a read/write is a whole quorum
     protocol.

   [read]/[write] must be invoked from within a fiber; ownership and
   readability are enforced by the backing implementation. *)

open Lnd_support
open Lnd_shm

type t = {
  cell_name : string;
  cell_read : unit -> Univ.t;
  cell_write : Univ.t -> unit;
}

let read (c : t) : Univ.t = c.cell_read ()
let write (c : t) (v : Univ.t) : unit = c.cell_write v
let name (c : t) : string = c.cell_name

type allocator =
  name:string -> owner:int -> ?single_reader:int -> init:Univ.t -> unit -> t

let of_register (r : Register.t) : t =
  {
    cell_name = r.Register.name;
    cell_read = (fun () -> Sched.read r);
    cell_write = (fun v -> Sched.write r v);
  }

(* The base model: one shared-memory register per cell. *)
let shm_allocator (space : Space.t) : allocator =
 fun ~name ~owner ?single_reader ~init () ->
  of_register (Space.alloc space ~name ~owner ?single_reader ~init ())

(* ------------------------------------------------------------------ *)
(* Regular-register simulation (extension experiment E13)              *)
(* ------------------------------------------------------------------ *)

(* Decorate an allocator so that its cells behave like REGULAR registers
   instead of atomic ones: a read that lands within [window] logical-clock
   ticks of the latest write may return the previous value (the classic
   "old or new during overlap" weakening). The paper assumes atomic
   registers; this wrapper lets the test suite probe empirically how
   Algorithms 1 and 2 degrade when the base registers are only regular —
   the strength actually offered by simpler message-passing emulations.

   The old-value bookkeeping is writer-side shadow state; with multiple
   fibers of the owning process writing the same cell it is approximate,
   which only makes the simulated adversary weaker or stronger by one
   version — acceptable for an adversarial robustness experiment. *)
let regular_allocator ~(rng : Lnd_support.Rng.t) ~(window : int)
    (inner : allocator) : allocator =
 fun ~name ~owner ?single_reader ~init () ->
  let cell = inner ~name ~owner ?single_reader ~init () in
  let prev = ref init in
  let cur = ref init in
  let last_write = ref min_int in
  {
    cell_name = name ^ "~regular";
    cell_read =
      (fun () ->
        let v = cell.cell_read () in
        let now = Sched.tick () in
        if now - !last_write <= window && Lnd_support.Rng.bool rng then !prev
        else v);
    cell_write =
      (fun v ->
        prev := !cur;
        cur := v;
        last_write := Sched.tick ();
        cell.cell_write v);
  }
