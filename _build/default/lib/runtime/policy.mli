(** Scheduling policies.

    A policy picks the next fiber to step among the ready ones. All
    policies are deterministic functions of their construction arguments,
    so a whole run replays from (program, policy). *)

type t = Sched.t -> Sched.fiber array -> int

val round_robin : unit -> t
(** Strict rotation over fiber ids: every ready fiber is stepped within
    one revolution — the strongest fairness. *)

val random : seed:int -> t
(** Uniformly random among ready fibers; fair with probability 1. *)

val random_biased : seed:int -> slow:int list -> penalty:int -> t
(** Random, but fibers of [slow] pids are scheduled less often: models
    processes much slower than others while remaining fair. *)

val scripted : script:int list -> trail:(int * int) list ref -> t
(** Replay an explicit choice sequence (indices into the ready array,
    ordered by fid); used by {!Explore}. Past the end of the script it
    picks index 0. [trail] accumulates (choice, branching degree) pairs,
    most recent first, so the explorer can enumerate sibling schedules. *)
