lib/runtime/cell.mli: Lnd_shm Lnd_support Rng Univ
