lib/runtime/explore.ml: Array List Policy Sched
