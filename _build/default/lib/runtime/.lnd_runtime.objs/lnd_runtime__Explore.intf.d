lib/runtime/explore.mli: Policy Sched
