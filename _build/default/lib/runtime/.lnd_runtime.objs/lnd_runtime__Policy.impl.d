lib/runtime/policy.ml: Array List Lnd_support Rng Sched
