lib/runtime/cell.ml: Lnd_shm Lnd_support Register Sched Space Univ
