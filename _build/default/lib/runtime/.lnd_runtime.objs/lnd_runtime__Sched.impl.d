lib/runtime/sched.ml: Array Effect Format List Lnd_shm Lnd_support Register Space Univ
