lib/runtime/policy.mli: Sched
