lib/runtime/sched.mli: Format Lnd_shm Lnd_support
