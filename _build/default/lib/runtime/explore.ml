(* Bounded systematic schedule exploration.

   Enumerates scheduling decision sequences depth-first: each run is driven
   by a scripted policy; the trail of (choice, branching-degree) pairs it
   records tells the explorer which sibling schedule to try next. The
   caller's [check] runs at quiescence of every explored schedule and
   should raise on a safety violation.

   This is a bounded safety checker: runs that exceed [max_steps] are
   pruned as inconclusive (an adversarial schedule can starve the Help
   daemons indefinitely, so unbounded termination cannot be decided by
   exploration). Use it on small configurations. *)

exception Violation of { script : int list; exn : exn }

type result = {
  runs : int; (* schedules fully explored to quiescence *)
  pruned : int; (* schedules cut off by the step budget *)
  exhausted : bool; (* true iff the whole bounded space was covered *)
}

let exhaustive ~(make : Policy.t -> Sched.t) ~(check : Sched.t -> unit)
    ?(max_steps = 400) ?(max_runs = 20_000) () : result =
  let runs = ref 0 in
  let pruned = ref 0 in
  let exhausted = ref false in
  let script = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let trail = ref [] in
    let policy = Policy.scripted ~script:!script ~trail in
    let sched = make policy in
    let reason = Sched.run ~max_steps sched in
    (match reason with
    | Sched.Quiescent -> begin
        incr runs;
        try check sched
        with e -> raise (Violation { script = List.rev_map fst !trail; exn = e })
      end
    | Sched.Budget_exhausted -> incr pruned
    | Sched.Condition_met -> incr runs);
    (* Compute the next schedule: backtrack to the deepest choice point
       with an unexplored sibling. The trail was built most-recent-first. *)
    let tr = List.rev !trail in
    let arr = Array.of_list tr in
    let next = ref None in
    for i = Array.length arr - 1 downto 0 do
      if !next = None then
        let choice, degree = arr.(i) in
        if choice + 1 < degree then next := Some i
    done;
    (match !next with
    | None ->
        exhausted := true;
        continue_ := false
    | Some i ->
        let fresh =
          List.init (i + 1) (fun j -> if j = i then fst arr.(j) + 1 else fst arr.(j))
        in
        script := fresh);
    if !runs + !pruned >= max_runs then continue_ := false
  done;
  { runs = !runs; pruned = !pruned; exhausted = !exhausted }

(* Swarm exploration: many independent seeded-random schedules of the
   same program, checking each at quiescence. Complements [exhaustive]:
   where DFS covers a bounded prefix tree densely, a swarm samples the
   whole schedule space sparsely — the right tool for programs too large
   to enumerate. *)
let swarm ~(make : Policy.t -> Sched.t) ~(check : Sched.t -> unit)
    ?(max_steps = 2_000_000) ~seeds () : result =
  let runs = ref 0 in
  let pruned = ref 0 in
  List.iter
    (fun seed ->
      let sched = make (Policy.random ~seed) in
      match Sched.run ~max_steps sched with
      | Sched.Quiescent | Sched.Condition_met -> begin
          incr runs;
          try check sched
          with e -> raise (Violation { script = [ seed ]; exn = e })
        end
      | Sched.Budget_exhausted -> incr pruned)
    seeds;
  { runs = !runs; pruned = !pruned; exhausted = false }
