(** An abstract SWMR/SWSR register handle.

    Algorithms 1 and 2 are written against [Cell.t] rather than raw
    registers, so the same code runs over:
    - real shared-memory registers (the paper's base model), via
      {!shm_allocator}, where a read/write is one atomic scheduler step;
    - registers {e emulated over message passing} (the Section 9
      corollary, see [Lnd_msgpass.Regemu]), where a read/write is a whole
      quorum protocol;
    - simulated {e regular} (non-atomic) registers, via
      {!regular_allocator} (extension experiment E13). *)

open Lnd_support

type t = {
  cell_name : string;
  cell_read : unit -> Univ.t;
  cell_write : Univ.t -> unit;
}

val read : t -> Univ.t
(** Must be invoked from within a fiber. *)

val write : t -> Univ.t -> unit
(** Must be invoked from within a fiber; ownership is enforced by the
    backing implementation. *)

val name : t -> string

type allocator =
  name:string -> owner:int -> ?single_reader:int -> init:Univ.t -> unit -> t
(** How register layouts are built; see [Verifiable.alloc_with] and
    [Sticky.alloc_with]. *)

val of_register : Lnd_shm.Register.t -> t

val shm_allocator : Lnd_shm.Space.t -> allocator
(** The base model: one shared-memory register per cell. *)

val regular_allocator : rng:Rng.t -> window:int -> allocator -> allocator
(** Weaken an allocator to REGULAR register semantics: a read landing
    within [window] logical-clock ticks of the latest write may return
    the previous value. The paper assumes atomic registers; this wrapper
    probes empirically how the algorithms degrade when the base registers
    are only regular (see EXPERIMENTS.md, E13). *)
