(** Bounded systematic schedule exploration.

    Enumerates scheduling decision sequences depth-first; the caller's
    [check] runs at quiescence of every explored schedule and should
    raise on a safety violation.

    This is a bounded safety checker: runs exceeding [max_steps] are
    pruned as inconclusive (an adversarial schedule can starve the Help
    daemons indefinitely, so termination cannot be decided by
    exploration). Use it on small configurations. *)

exception Violation of { script : int list; exn : exn }
(** Raised when [check] fails; [script] replays the offending schedule
    through [Policy.scripted]. *)

type result = {
  runs : int; (** schedules fully explored to quiescence *)
  pruned : int; (** schedules cut off by the step budget *)
  exhausted : bool; (** whole bounded space covered *)
}

val exhaustive :
  make:(Policy.t -> Sched.t) ->
  check:(Sched.t -> unit) ->
  ?max_steps:int ->
  ?max_runs:int ->
  unit ->
  result
(** [make policy] must build a fresh system (same program every time);
    [check] is called on each quiescent schedule. *)

val swarm :
  make:(Policy.t -> Sched.t) ->
  check:(Sched.t -> unit) ->
  ?max_steps:int ->
  seeds:int list ->
  unit ->
  result
(** Swarm exploration: many independent seeded-random schedules of the
    same program, [check]ed at quiescence. Complements {!exhaustive} for
    programs too large to enumerate; a {!Violation}'s [script] carries
    the offending seed. [exhausted] is always [false]. *)
