(* Scheduling policies.

   A policy picks the next fiber to step among the ready ones. All
   policies are deterministic functions of their construction arguments, so
   a whole run replays from (program, policy). *)

open Lnd_support

type t = Sched.t -> Sched.fiber array -> int

(* Strict rotation over fiber ids: every ready fiber is stepped within one
   revolution, which gives the strongest fairness. *)
let round_robin () : t =
  let last = ref (-1) in
  fun _sched ready ->
    let n = Array.length ready in
    (* Pick the ready fiber with the smallest fid strictly greater than
       [last]; wrap around if none. *)
    let best = ref (-1) in
    let best_wrap = ref 0 in
    for i = 0 to n - 1 do
      let fid = ready.(i).Sched.fid in
      if fid > !last && (!best = -1 || fid < ready.(!best).Sched.fid) then
        best := i;
      if ready.(i).Sched.fid < ready.(!best_wrap).Sched.fid then best_wrap := i
    done;
    let i = if !best >= 0 then !best else !best_wrap in
    last := ready.(i).Sched.fid;
    i

(* Uniformly random among ready fibers; fair with probability 1. *)
let random ~seed : t =
  let rng = Rng.create seed in
  fun _sched ready -> Rng.int rng (Array.length ready)

(* Random, but steps fibers of [slow] pids only with probability
   1/(penalty+1): models processes that are much slower than others
   (asynchrony stress) while remaining fair. *)
let random_biased ~seed ~slow ~penalty : t =
  let rng = Rng.create seed in
  fun _sched ready ->
    let n = Array.length ready in
    let i = Rng.int rng n in
    if List.mem ready.(i).Sched.pid slow && Rng.int rng (penalty + 1) > 0 then
      (* retry once uniformly; keeps fairness with probability 1 *)
      Rng.int rng n
    else i

(* Replay an explicit choice sequence (indices into the ready array,
   ordered by fid); used by the systematic explorer. Past the end of the
   script, fall back to index 0 and record the branching degree so the
   explorer can enumerate siblings. *)
let scripted ~(script : int list) ~(trail : (int * int) list ref) : t =
  let remaining = ref script in
  fun _sched ready ->
    (* Sort indices by fid for a canonical ordering. *)
    let order = Array.init (Array.length ready) (fun i -> i) in
    Array.sort
      (fun a b -> compare ready.(a).Sched.fid ready.(b).Sched.fid)
      order;
    let degree = Array.length ready in
    let choice =
      match !remaining with
      | c :: rest ->
          remaining := rest;
          if c < degree then c else degree - 1
      | [] -> 0
    in
    trail := (choice, degree) :: !trail;
    order.(choice)
