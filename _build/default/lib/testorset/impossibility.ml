(* Executable rendition of Theorem 23 (Figures 1-3).

   The paper proves that no correct test-or-set implementation from SWMR
   registers exists when 3 <= n <= 3f, by an indistinguishability argument
   over three histories H1/H2/H3 in which the coalition {s} ∪ Q1 resets
   its registers to their initial values after a TEST by p_a returned 1.

   Here we run that adversary against the test-or-set built from our
   verifiable register (Observation 25), instantiated *deliberately* at
   n = 3f — outside Algorithm 1's n > 3f requirement:

     phase 1  (H1)  s performs SET with {s, p_a} ∪ Q1 ∪ Q2 scheduled;
     phase 2  (H1)  p_a performs TEST  — returns 1;
     phase 3  (H2)  {s} ∪ Q1 turn Byzantine: they reset every register
                    they own to its initial value ("deny");
     phase 4  (H2)  {p_b} ∪ Q3 wake up; the coalition keeps answering
                    "no" to all inquiries; p_b performs TEST'.

   At n = 3f the attack makes TEST' return 0 after TEST returned 1 — the
   relay property of Lemma 22(3) is violated, as the theorem predicts.
   At n = 3f + 1 the same adversary is powerless: TEST' returns 1.

   (The paper's H2 coalition goes mute after the reset, which makes TEST'
   *hang* rather than return 0 under Algorithm 1; actively answering "no"
   is within the coalition's Byzantine powers and surfaces the violation
   as a wrong return value instead of a non-termination — both contradict
   correctness per Definition 9.) *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Vr = Lnd_verifiable.Verifiable
module St = Lnd_sticky.Sticky

type impl = Via_verifiable | Via_sticky

type outcome = {
  n : int;
  f : int;
  test_a : int; (* TEST by p_a after SET completes *)
  test_b : int; (* TEST' by p_b after the deny phase *)
  relay_violated : bool; (* test_a = 1 and test_b = 0 *)
  steps : int;
}

let pp_outcome fmt o =
  Format.fprintf fmt
    "n=%d f=%d: TEST(p_a)=%d, TEST'(p_b)=%d — %s" o.n o.f o.test_a o.test_b
    (if o.relay_violated then "RELAY VIOLATED (as Theorem 23 predicts for n <= 3f)"
     else "attack failed (n > 3f: Theorem 14 regime)")

exception Phase_stuck of string

let one : Value.t = "1"

(* Partition of {3..n-1}: Q1 joins the Byzantine coalition (|Q1| = f-1),
   Q3 sleeps until phase 4 (|Q3| = f-1), Q2 is correct throughout. *)
let partition ~n ~f =
  let rest = List.init (max 0 (n - 3)) (fun i -> i + 3) in
  let take k l =
    let rec go k acc = function
      | x :: tl when k > 0 -> go (k - 1) (x :: acc) tl
      | rem -> (List.rev acc, rem)
    in
    go k [] l
  in
  let q1, rem = take (f - 1) rest in
  let q3, q2 = take (f - 1) rem in
  (q1, q2, q3)

let run_attack ?(seed = 7) ?(max_steps_per_phase = 2_000_000)
    ?(impl = Via_verifiable) ~n ~f () : outcome =
  if n < 3 || f < 1 then invalid_arg "Impossibility.run_attack: need n>=3, f>=1";
  let s = 0 and pa = 1 and pb = 2 in
  let q1, q2, q3 = partition ~n ~f in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  (* The test-or-set under attack, built from either register
     (Observation 25) — the impossibility is implementation-independent. *)
  let set_op, test_op, help_op, naysay =
    match impl with
    | Via_verifiable ->
        let regs = Vr.alloc space { Vr.n; f } in
        let writer = Vr.writer regs in
        ( (fun () ->
            Vr.write writer one;
            let ok = Vr.sign writer one in
            assert ok),
          (fun ~pid -> if Vr.verify (Vr.reader regs ~pid) one then 1 else 0),
          (fun ~pid () -> Vr.help regs ~pid),
          fun pid ->
            ignore (Lnd_byz.Byz_verifiable.spawn_naysayer sched regs ~pid) )
    | Via_sticky ->
        let regs = St.alloc space { St.n; f } in
        let writer = St.writer regs in
        ( (fun () -> St.write writer one),
          (fun ~pid ->
            match St.read (St.reader regs ~pid) with
            | Some v when Value.equal v one -> 1
            | Some _ | None -> 0),
          (fun ~pid () -> St.help regs ~pid),
          fun pid ->
            ignore (Lnd_byz.Byz_sticky.spawn_naysayer sched regs ~pid) )
  in
  (* Help fibers for everyone (the coalition behaves correctly at first). *)
  let helps =
    Array.init n (fun pid ->
        Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
          ~daemon:true (help_op ~pid))
  in
  (* Client fibers. *)
  let set_fiber = Sched.spawn sched ~pid:s ~name:"SET" set_op in
  let test_a_result = ref (-1) in
  let test_a_fiber =
    Sched.spawn sched ~pid:pa ~name:"TEST(a)" (fun () ->
        test_a_result := test_op ~pid:pa)
  in
  let test_b_result = ref (-1) in
  let test_b_fiber =
    Sched.spawn sched ~pid:pb ~name:"TEST(b)" (fun () ->
        test_b_result := test_op ~pid:pb)
  in
  (* Scheduling masks per phase. *)
  let enable (pids : int list) (extra : Sched.fiber list) =
    sched.Sched.enabled <-
      (fun fb ->
        List.mem fb.Sched.pid pids
        && (fb.Sched.daemon || List.exists (fun x -> x == fb) extra))
  in
  let run_until name pred =
    match Sched.run ~max_steps:max_steps_per_phase ~until:pred sched with
    | Sched.Condition_met -> ()
    | Sched.Quiescent | Sched.Budget_exhausted -> raise (Phase_stuck name)
  in
  let finished (fb : Sched.fiber) (_ : Sched.t) =
    match fb.Sched.state with Sched.Finished _ -> true | Sched.Ready _ -> false
  in
  (* Phase 1: SET with {s, pa} ∪ Q1 ∪ Q2 scheduled. *)
  let active1 = s :: pa :: (q1 @ q2) in
  enable active1 [ set_fiber ];
  run_until "phase1: SET" (finished set_fiber);
  (* Phase 2: TEST by p_a. *)
  enable active1 [ test_a_fiber ];
  run_until "phase2: TEST(a)" (finished test_a_fiber);
  (* Phase 3: {s} ∪ Q1 turn Byzantine — kill their Help fibers and reset
     every register they own to its initial value. *)
  let coalition = s :: q1 in
  List.iter (fun pid -> Sched.kill helps.(pid)) coalition;
  let resetters =
    List.map
      (fun pid ->
        Sched.spawn sched ~pid ~name:(Printf.sprintf "reset%d" pid) (fun () ->
            List.iter
              (fun (r : Register.t) -> Sched.write r r.Register.init)
              (Space.owned space ~pid)))
      coalition
  in
  enable (pa :: (coalition @ q2)) resetters;
  run_until "phase3: reset"
    (fun st -> List.for_all (fun fb -> finished fb st) resetters);
  (* Phase 4: the coalition answers "no" to every inquiry; {p_b} ∪ Q3 wake
     up and p_b runs TEST'. *)
  List.iter naysay coalition;
  enable (pb :: pa :: (coalition @ q2 @ q3)) [ test_b_fiber ];
  run_until "phase4: TEST(b)" (finished test_b_fiber);
  {
    n;
    f;
    test_a = !test_a_result;
    test_b = !test_b_result;
    relay_violated = !test_a_result = 1 && !test_b_result = 0;
    steps = Sched.steps sched;
  }
