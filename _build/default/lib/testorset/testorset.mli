(** Test-or-set (Definition 20) implemented from a sticky register and
    from a verifiable register — the two constructions of
    Observation 25:

    - from sticky: SET = WRITE(1); TEST = READ (1 iff it returns "1");
    - from verifiable (v0 = 0): SET = WRITE(1); SIGN(1); TEST = VERIFY(1). *)

open Lnd_support
module T = Lnd_history.Spec.Testorset_spec

val one : Value.t
(** The value standing for the set bit. *)

type impl = Sticky_based | Verifiable_based

type backend =
  | B_sticky of
      Lnd_sticky.Sticky.regs
      * Lnd_sticky.Sticky.writer
      * Lnd_sticky.Sticky.reader option array
  | B_verifiable of
      Lnd_verifiable.Verifiable.regs
      * Lnd_verifiable.Verifiable.writer
      * Lnd_verifiable.Verifiable.reader option array
      (** Transparent so adversaries can be aimed at the underlying
          register instance. *)

type t = {
  n : int;
  f : int;
  space : Lnd_shm.Space.t;
  sched : Lnd_runtime.Sched.t;
  backend : backend;
  history : (T.op, T.res) Lnd_history.History.t;
  correct : bool array;
}

val make :
  ?policy:Lnd_runtime.Policy.t ->
  ?byzantine:int list ->
  impl:impl ->
  n:int ->
  f:int ->
  unit ->
  t

val op_set : t -> unit
(** SET by the setter (pid 0); recorded. Call from a fiber of pid 0. *)

val op_test : t -> pid:int -> int
(** TEST by a tester (pid >= 1); recorded. Returns 0 or 1. *)

val client :
  t -> pid:int -> name:string -> (unit -> unit) -> Lnd_runtime.Sched.fiber

val run :
  ?max_steps:int ->
  ?until:(Lnd_runtime.Sched.t -> bool) ->
  t ->
  Lnd_runtime.Sched.stop_reason

val byz_linearizable : ?node_budget:int -> t -> bool
