(** Executable rendition of Theorem 23 (Figures 1-3).

    The paper proves that no correct test-or-set implementation from SWMR
    registers exists when 3 <= n <= 3f, by an indistinguishability
    argument over three histories H1/H2/H3 in which the coalition
    {s} ∪ Q1 resets its registers to their initial values after a TEST by
    p_a returned 1.

    {!run_attack} runs that adversary against the test-or-set built from
    the paper's own verifiable register, instantiated {e deliberately} at
    n = 3f: phase 1-2 perform SET and TEST (H1), phase 3 has the
    coalition reset every register it owns ("deny"), phase 4 wakes p_b
    for TEST'. At n = 3f the relay property of Lemma 22(3) is violated;
    at n = 3f + 1 the identical adversary is powerless.

    (The paper's H2 coalition goes mute after the reset, which makes
    TEST' {e hang} under Algorithm 1; actively answering "no" is within
    the coalition's Byzantine powers and surfaces the violation as a
    wrong return value instead of a non-termination — both contradict
    correctness per Definition 9.) *)

type outcome = {
  n : int;
  f : int;
  test_a : int; (** TEST by p_a after SET completes *)
  test_b : int; (** TEST' by p_b after the deny phase *)
  relay_violated : bool; (** [test_a = 1 && test_b = 0] *)
  steps : int;
}

val pp_outcome : Format.formatter -> outcome -> unit

exception Phase_stuck of string
(** A phase failed to reach its goal within the step budget. *)

val partition : n:int -> f:int -> int list * int list * int list
(** The (Q1, Q2, Q3) partition of processes 3..n-1: Q1 joins the
    Byzantine coalition, Q3 sleeps until phase 4, Q2 is correct
    throughout. *)

type impl = Via_verifiable | Via_sticky
(** Which Observation 25 construction the attacked test-or-set uses; the
    impossibility is implementation-independent and the attack succeeds
    against both. *)

val run_attack :
  ?seed:int ->
  ?max_steps_per_phase:int ->
  ?impl:impl ->
  n:int ->
  f:int ->
  unit ->
  outcome
(** Requires n >= 3 and f >= 1. Default implementation:
    [Via_verifiable]. *)
