lib/testorset/testorset.mli: Lnd_history Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Lnd_verifiable Value
