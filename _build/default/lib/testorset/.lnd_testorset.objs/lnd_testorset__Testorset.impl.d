lib/testorset/testorset.ml: Array List Lnd_history Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Lnd_verifiable Option Policy Printf Sched Space Value
