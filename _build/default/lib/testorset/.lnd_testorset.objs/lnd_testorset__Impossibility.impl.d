lib/testorset/impossibility.ml: Array Format List Lnd_byz Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Lnd_verifiable Policy Printf Register Sched Space Value
