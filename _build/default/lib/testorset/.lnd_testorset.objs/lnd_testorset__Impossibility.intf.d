lib/testorset/impossibility.mli: Format
