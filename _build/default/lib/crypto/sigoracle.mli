(** A simulated unforgeable-signature oracle.

    The paper's baseline algorithms assume "unforgeable digital
    signatures" (footnote 1) and use only three axioms: (1) only p can
    produce a signature of p on a message; (2) anyone can verify a
    signature; (3) signatures are transferable. The oracle provides
    exactly those axioms without cryptography: it records every signature
    it issues and {!verify} checks membership. Byzantine code goes
    through the same API with its own pid, so it can replay or relay
    signatures (axiom 3) but cannot fabricate one for another process. *)

type signature = { token : int; sig_signer : int; sig_msg : string }
(** Transparent for debugging/printing; {!verify} trusts only the
    oracle's issuance table, never these fields. *)

type t = {
  mutable next_token : int;
  issued : (int, int * string) Hashtbl.t;
  mutable signs_performed : int;
  mutable verifies_performed : int;
}

val create : unit -> t

val sign : t -> by:int -> string -> signature
(** [by] is the calling process; harnesses pass the caller's real pid,
    which is what makes forging impossible in the simulation. *)

val verify : t -> signer:int -> msg:string -> signature -> bool

val forge : signer:int -> msg:string -> signature
(** What a forger can do: fabricate a signature record out of thin air.
    {!verify} rejects it. Used by tests to demonstrate the baseline's
    unforgeability. *)

val pp_signature : Format.formatter -> signature -> unit
