lib/crypto/sigoracle.ml: Format Hashtbl String
