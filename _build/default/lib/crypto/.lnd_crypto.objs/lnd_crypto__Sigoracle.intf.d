lib/crypto/sigoracle.mli: Format Hashtbl
