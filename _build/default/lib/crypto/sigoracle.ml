(* A simulated unforgeable-signature oracle.

   The paper's baseline algorithms assume "unforgeable digital signatures"
   (footnote 1) and use only three axioms: (1) only p can produce a
   signature of p on a message; (2) anyone can verify a signature; (3)
   signatures are transferable (a relayed signature still verifies). The
   oracle provides exactly those axioms without cryptography: it records
   every signature it issues and [verify] checks membership. Byzantine
   code in the simulation goes through the same API with its own pid, so
   it can replay or relay signatures (axiom 3) but cannot fabricate a
   signature for another process. *)

type signature = { token : int; sig_signer : int; sig_msg : string }

type t = {
  mutable next_token : int;
  issued : (int, int * string) Hashtbl.t; (* token -> (signer, msg) *)
  mutable signs_performed : int;
  mutable verifies_performed : int;
}

let create () : t =
  {
    next_token = 1;
    issued = Hashtbl.create 64;
    signs_performed = 0;
    verifies_performed = 0;
  }

(* [by] is the calling process; the harness passes the caller's real pid,
   which is what makes forging impossible in the simulation. *)
let sign (t : t) ~(by : int) (msg : string) : signature =
  let token = t.next_token in
  t.next_token <- t.next_token + 1;
  t.signs_performed <- t.signs_performed + 1;
  Hashtbl.replace t.issued token (by, msg);
  { token; sig_signer = by; sig_msg = msg }

let verify (t : t) ~(signer : int) ~(msg : string) (s : signature) : bool =
  t.verifies_performed <- t.verifies_performed + 1;
  match Hashtbl.find_opt t.issued s.token with
  | Some (by, m) -> by = signer && String.equal m msg
  | None -> false

(* What a forger can do: fabricate a signature record out of thin air.
   [verify] rejects it because the oracle never issued the token. Used by
   tests to show the baseline's unforgeability. *)
let forge ~(signer : int) ~(msg : string) : signature =
  { token = -1; sig_signer = signer; sig_msg = msg }

let pp_signature fmt (s : signature) =
  Format.fprintf fmt "sig[p%d:%S#%d]" s.sig_signer s.sig_msg s.token
