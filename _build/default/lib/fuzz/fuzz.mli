(** Scenario fuzzer: one integer seed derives a full Byzantine scenario
    (register type, system size, adversary strategy, reader programs,
    schedule), runs it to quiescence, and checks every applicable paper
    property — the streaming monitors plus full Byzantine linearizability
    when the history is small enough for the exhaustive checker. Any
    failure is replayable from its seed alone. *)

type target = Verifiable | Sticky

type adversary =
  | No_adversary
  | Crash
  | Denying_writer
  | Equivocating_writer
  | Sign_without_write (** verifiable only *)
  | False_witnesses
  | Naysayers
  | Flipfloppers
  | Garbage
  | Stale_replayers
  | Selective (** verifiable only *)

val adversary_name : adversary -> string

type scenario = {
  seed : int;
  target : target;
  n : int;
  f : int;
  adversary : adversary;
  reader_ops : int; (** operations per correct reader *)
  writer_values : int; (** values the correct writer writes/signs *)
}

val pp_scenario : Format.formatter -> scenario -> unit

val generate : int -> scenario
(** Deterministic in the seed. *)

val byzantine_pids : scenario -> int list

type report = {
  scenario : scenario;
  steps : int;
  operations : int;
  checked_linearizability : bool;
      (** false when the history was too large and only the monitors
          ran *)
}

type outcome = (report, string) result

val run : scenario -> outcome
val run_seed : int -> outcome
