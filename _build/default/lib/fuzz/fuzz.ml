(* Scenario fuzzer: generate a random Byzantine scenario from a seed, run
   it to quiescence, and check every paper property that applies —
   the observational monitors (relay / uniqueness / validity /
   unforgeability) plus full Byzantine linearizability when the history is
   small enough for the exhaustive checker.

   One seed = one fully deterministic scenario (size, adversary strategy,
   reader programs, schedule), so any failure is replayable from its seed
   alone. Used by the test suite and by `lnd_cli fuzz`. *)

open Lnd_support
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module History = Lnd_history.History
module Monitors = Lnd_history.Monitors

type target = Verifiable | Sticky

type adversary =
  | No_adversary
  | Crash (* Byzantine processes take no steps *)
  | Denying_writer
  | Equivocating_writer
  | Sign_without_write (* verifiable only *)
  | False_witnesses
  | Naysayers
  | Flipfloppers
  | Garbage
  | Stale_replayers
  | Selective (* verifiable only *)

let adversary_name = function
  | No_adversary -> "none"
  | Crash -> "crash"
  | Denying_writer -> "denying-writer"
  | Equivocating_writer -> "equivocating-writer"
  | Sign_without_write -> "sign-without-write"
  | False_witnesses -> "false-witnesses"
  | Naysayers -> "naysayers"
  | Flipfloppers -> "flipfloppers"
  | Garbage -> "garbage"
  | Stale_replayers -> "stale-replayers"
  | Selective -> "selective"

type scenario = {
  seed : int;
  target : target;
  n : int;
  f : int;
  adversary : adversary;
  reader_ops : int; (* operations per correct reader *)
  writer_values : int; (* values the correct writer writes/signs *)
}

let pp_scenario fmt s =
  Format.fprintf fmt "seed=%d %s n=%d f=%d adversary=%s reader_ops=%d" s.seed
    (match s.target with Verifiable -> "verifiable" | Sticky -> "sticky")
    s.n s.f (adversary_name s.adversary) s.reader_ops

(* Derive a scenario deterministically from a seed. *)
let generate (seed : int) : scenario =
  let rng = Rng.create (seed * 7919) in
  let target = if Rng.bool rng then Verifiable else Sticky in
  let f = 1 + Rng.int rng 2 in
  let n = (3 * f) + 1 + Rng.int rng 2 in
  let adversary =
    let all =
      match target with
      | Verifiable ->
          [
            No_adversary; Crash; Denying_writer; Equivocating_writer;
            Sign_without_write; False_witnesses; Naysayers; Flipfloppers;
            Garbage; Stale_replayers; Selective;
          ]
      | Sticky ->
          [
            No_adversary; Crash; Denying_writer; Equivocating_writer;
            False_witnesses; Naysayers; Flipfloppers; Garbage;
            Stale_replayers;
          ]
    in
    Rng.pick rng all
  in
  {
    seed;
    target;
    n;
    f;
    adversary;
    reader_ops = 1 + Rng.int rng 2;
    writer_values = 1 + Rng.int rng 2;
  }

type report = {
  scenario : scenario;
  steps : int;
  operations : int;
  checked_linearizability : bool;
}

type outcome = (report, string) result

let value_pool = [| "a"; "b"; "c" |]

(* Which pids are Byzantine for this scenario. *)
let byzantine_pids (s : scenario) : int list =
  match s.adversary with
  | No_adversary -> []
  | Denying_writer | Equivocating_writer | Sign_without_write -> [ 0 ]
  | Crash | False_witnesses | Naysayers | Flipfloppers | Garbage
  | Stale_replayers | Selective ->
      List.init s.f (fun i -> s.n - 1 - i)

let max_steps = 8_000_000

(* Cap for the exhaustive linearizability search: histories with more
   operations are checked by the monitors only. *)
let byzlin_op_cap = 14

let run_verifiable (s : scenario) (rng : Rng.t) : outcome =
  let module Sys = Lnd_verifiable.System in
  let module Byz = Lnd_byz.Byz_verifiable in
  let byz = byzantine_pids s in
  let t =
    Sys.make ~policy:(Policy.random ~seed:(s.seed + 1)) ~n:s.n ~f:s.f
      ~byzantine:byz ()
  in
  (* adversary *)
  (match s.adversary with
  | No_adversary | Crash -> ()
  | Denying_writer ->
      ignore (Byz.spawn_denying_writer t.sched t.regs ~v:"a" ~deny_after:2 ())
  | Equivocating_writer ->
      ignore (Byz.spawn_equivocating_writer t.sched t.regs ~va:"a" ~vb:"b")
  | Sign_without_write ->
      ignore (Byz.spawn_sign_without_write t.sched t.regs ~v:"a")
  | False_witnesses ->
      List.iter
        (fun pid -> ignore (Byz.spawn_false_witness t.sched t.regs ~pid ~v:"x"))
        byz
  | Naysayers ->
      List.iter
        (fun pid -> ignore (Byz.spawn_naysayer t.sched t.regs ~pid))
        byz
  | Flipfloppers ->
      List.iter
        (fun pid -> ignore (Byz.spawn_flipflop t.sched t.regs ~pid ~v:"a"))
        byz
  | Garbage ->
      List.iter
        (fun pid -> ignore (Byz.spawn_garbage t.sched t.regs ~pid))
        byz
  | Stale_replayers ->
      List.iter
        (fun pid -> ignore (Byz.spawn_stale_replayer t.sched t.regs ~pid))
        byz
  | Selective ->
      List.iter
        (fun pid -> ignore (Byz.spawn_selective t.sched t.regs ~pid ~v:"a"))
        byz);
  (* correct writer program *)
  if t.correct.(0) then
    ignore
      (Sys.client t ~pid:0 ~name:"writer" (fun () ->
           for i = 0 to s.writer_values - 1 do
             let v = value_pool.(i mod Array.length value_pool) in
             Sys.op_write t v;
             ignore (Sys.op_sign t v)
           done));
  (* correct reader programs *)
  let ops = ref 0 in
  for pid = 1 to s.n - 1 do
    if t.correct.(pid) then begin
      let prog =
        List.init s.reader_ops (fun _ ->
            let v = Rng.pick_arr rng value_pool in
            if Rng.int rng 4 = 0 then `Read else `Verify v)
      in
      ops := !ops + List.length prog;
      ignore
        (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
             List.iter
               (function
                 | `Read -> ignore (Sys.op_read t ~pid)
                 | `Verify v -> ignore (Sys.op_verify t ~pid v))
               prog))
    end
  done;
  match Sys.run ~max_steps t with
  | Sched.Budget_exhausted -> Error "step budget exhausted"
  | Sched.Condition_met -> Error "unexpected stop"
  | Sched.Quiescent -> (
      let correct pid = t.correct.(pid) in
      match
        List.filter
          (fun ((fb : Sched.fiber), _) -> correct fb.Sched.pid)
          (Sched.failures t.sched)
      with
      | (fb, e) :: _ ->
          Error
            (Printf.sprintf "correct fiber %s failed: %s" fb.Sched.fname
               (Printexc.to_string e))
      | [] -> (
          let violations =
            Monitors.relay ~correct t.history
            @ Monitors.validity ~correct t.history
            @ Monitors.unforgeability ~correct ~writer:0 t.history
          in
          match Monitors.check_all violations with
          | Error msg -> Error msg
          | Ok () ->
              let entries = History.complete_entries t.history in
              (* The op cap is a crude proxy; the search's own node budget
                 is the real bound — degrade to monitors-only if it trips. *)
              let check_lin, lin_ok =
                if List.length entries > byzlin_op_cap then (false, true)
                else
                  try (true, Sys.byz_linearizable t)
                  with Lnd_history.Spec.Search_too_large -> (false, true)
              in
              if not lin_ok then Error "history not Byzantine linearizable"
              else
                Ok
                  {
                    scenario = s;
                    steps = Sched.steps t.sched;
                    operations = List.length entries;
                    checked_linearizability = check_lin;
                  }))

let run_sticky (s : scenario) (rng : Rng.t) : outcome =
  let module Sys = Lnd_sticky.System in
  let module Byz = Lnd_byz.Byz_sticky in
  let byz = byzantine_pids s in
  let t =
    Sys.make ~policy:(Policy.random ~seed:(s.seed + 1)) ~n:s.n ~f:s.f
      ~byzantine:byz ()
  in
  (match s.adversary with
  | No_adversary | Crash | Sign_without_write | Selective -> ()
  | Stale_replayers ->
      List.iter
        (fun pid -> ignore (Byz.spawn_stale_replayer t.sched t.regs ~pid))
        byz
  | Denying_writer ->
      ignore (Byz.spawn_denying_writer t.sched t.regs ~v:"a" ~deny_after:3 ())
  | Equivocating_writer ->
      ignore
        (Byz.spawn_equivocating_writer t.sched t.regs ~va:"a" ~vb:"b"
           ~flip_after:(1 + Rng.int rng 4) ())
  | False_witnesses ->
      List.iter
        (fun pid -> ignore (Byz.spawn_false_witness t.sched t.regs ~pid ~v:"x"))
        byz
  | Naysayers ->
      List.iter
        (fun pid -> ignore (Byz.spawn_naysayer t.sched t.regs ~pid))
        byz
  | Flipfloppers ->
      List.iter
        (fun pid -> ignore (Byz.spawn_flipflop t.sched t.regs ~pid ~v:"a"))
        byz
  | Garbage ->
      List.iter
        (fun pid -> ignore (Byz.spawn_garbage t.sched t.regs ~pid))
        byz);
  if t.correct.(0) then
    ignore
      (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "a"));
  let ops = ref 0 in
  for pid = 1 to s.n - 1 do
    if t.correct.(pid) then begin
      ops := !ops + s.reader_ops;
      ignore
        (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
             for _ = 1 to s.reader_ops do
               ignore (Sys.op_read t ~pid)
             done))
    end
  done;
  match Sys.run ~max_steps t with
  | Sched.Budget_exhausted -> Error "step budget exhausted"
  | Sched.Condition_met -> Error "unexpected stop"
  | Sched.Quiescent -> (
      let correct pid = t.correct.(pid) in
      match
        List.filter
          (fun ((fb : Sched.fiber), _) -> correct fb.Sched.pid)
          (Sched.failures t.sched)
      with
      | (fb, e) :: _ ->
          Error
            (Printf.sprintf "correct fiber %s failed: %s" fb.Sched.fname
               (Printexc.to_string e))
      | [] -> (
          let violations =
            Monitors.uniqueness ~correct t.history
            @ Monitors.sticky_validity ~correct ~writer:0 t.history
          in
          match Monitors.check_all violations with
          | Error msg -> Error msg
          | Ok () ->
              let entries = History.complete_entries t.history in
              (* The op cap is a crude proxy; the search's own node budget
                 is the real bound — degrade to monitors-only if it trips. *)
              let check_lin, lin_ok =
                if List.length entries > byzlin_op_cap then (false, true)
                else
                  try (true, Sys.byz_linearizable t)
                  with Lnd_history.Spec.Search_too_large -> (false, true)
              in
              if not lin_ok then Error "history not Byzantine linearizable"
              else
                Ok
                  {
                    scenario = s;
                    steps = Sched.steps t.sched;
                    operations = List.length entries;
                    checked_linearizability = check_lin;
                  }))

let run (s : scenario) : outcome =
  let rng = Rng.create (s.seed * 31 + 17) in
  match s.target with
  | Verifiable -> run_verifiable s rng
  | Sticky -> run_sticky s rng

let run_seed (seed : int) : outcome = run (generate seed)
