lib/fuzz/fuzz.ml: Array Format List Lnd_byz Lnd_history Lnd_runtime Lnd_sticky Lnd_support Lnd_verifiable Printexc Printf Rng
