lib/fuzz/fuzz.mli: Format
