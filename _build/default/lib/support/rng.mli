(** Deterministic, splittable PRNG (SplitMix64).

    Every source of randomness in the simulator flows through one of
    these generators, so whole executions — including adversary behaviour
    and scheduling — replay exactly from a seed. *)

type t

val create : int -> t
(** A generator seeded by an integer. *)

val next64 : t -> int64
(** The next raw 64-bit output (advances the state). *)

val split : t -> t
(** An independent generator derived from this one's next output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** A uniform element of a non-empty list. *)

val pick_arr : t -> 'a array -> 'a
(** A uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val derive : t -> int -> t
(** [derive t salt] is a fresh generator for sub-stream [salt]. *)
