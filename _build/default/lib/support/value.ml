(* The value domain V of the registers.

   The paper's registers are multivalued over an arbitrary domain; strings
   keep examples readable while exercising non-trivial payloads. The
   initial value of a verifiable register is [v0]; the initial value of a
   sticky register is bottom, represented as [None] at the type level
   ([t option]). *)

type t = string

let equal = String.equal
let compare = String.compare
let pp fmt (v : t) = Format.fprintf fmt "%S" v
let v0 : t = "v0"

module Set = struct
  include Set.Make (String)

  let pp fmt s =
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         (fun fmt v -> Format.fprintf fmt "%s" v))
      (elements s)

  let of_seq_list l = of_list l
end

(* Pretty-printer for an optional value (⊥ when absent). *)
let pp_opt fmt = function
  | None -> Format.fprintf fmt "⊥"
  | Some v -> pp fmt v

let equal_opt a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> equal x y
  | None, Some _ | Some _, None -> false
