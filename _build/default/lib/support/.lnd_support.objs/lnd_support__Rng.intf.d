lib/support/rng.mli:
