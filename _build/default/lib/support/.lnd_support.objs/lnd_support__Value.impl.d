lib/support/value.ml: Format Set String
