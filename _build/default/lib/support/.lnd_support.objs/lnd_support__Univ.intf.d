lib/support/univ.mli: Format
