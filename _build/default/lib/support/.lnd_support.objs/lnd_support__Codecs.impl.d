lib/support/codecs.ml: Format Int Univ Value
