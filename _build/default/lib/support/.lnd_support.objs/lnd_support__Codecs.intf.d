lib/support/codecs.mli: Univ Value
