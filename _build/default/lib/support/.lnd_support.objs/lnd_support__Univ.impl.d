lib/support/univ.ml: Format Int String
