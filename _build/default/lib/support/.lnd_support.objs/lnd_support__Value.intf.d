lib/support/value.mli: Format Set
