(* A universal type with named, typed keys.

   Shared registers in this codebase carry [Univ.t] so that a Byzantine
   process can store arbitrary (even ill-typed) content in the registers it
   owns, while correct code projects values back defensively with
   [prj]/[prj_default]. *)

type t = {
  key_id : int;
  key_name : string;
  payload : exn;
  pp_payload : Format.formatter -> unit;
  eq_payload : exn -> bool;
}

type 'a key = {
  id : int;
  name : string;
  pp : Format.formatter -> 'a -> unit;
  equal : 'a -> 'a -> bool;
  wrap : 'a -> exn;
  unwrap : exn -> 'a option;
}

let next_id = ref 0

let key (type a) ~name ~(pp : Format.formatter -> a -> unit)
    ~(equal : a -> a -> bool) : a key =
  let exception E of a in
  incr next_id;
  {
    id = !next_id;
    name;
    pp;
    equal;
    wrap = (fun x -> E x);
    unwrap = (function E x -> Some x | _ -> None);
  }

let inj (k : 'a key) (x : 'a) : t =
  {
    key_id = k.id;
    key_name = k.name;
    payload = k.wrap x;
    pp_payload = (fun fmt -> k.pp fmt x);
    eq_payload =
      (fun e -> match k.unwrap e with Some y -> k.equal x y | None -> false);
  }

let prj (k : 'a key) (u : t) : 'a option =
  if u.key_id = k.id then k.unwrap u.payload else None

(* Defensive projection: ill-typed content (e.g. garbage written by a
   Byzantine owner) is read as [default]. *)
let prj_default (k : 'a key) ~(default : 'a) (u : t) : 'a =
  match prj k u with Some x -> x | None -> default

let key_name (u : t) = u.key_name
let pp fmt (u : t) = u.pp_payload fmt

let equal (a : t) (b : t) =
  a.key_id = b.key_id && a.eq_payload b.payload

(* Ready-made keys for common payloads. *)

let unit : unit key =
  key ~name:"unit" ~pp:(fun fmt () -> Format.fprintf fmt "()")
    ~equal:(fun () () -> true)

let int : int key = key ~name:"int" ~pp:Format.pp_print_int ~equal:Int.equal

let string : string key =
  key ~name:"string"
    ~pp:(fun fmt s -> Format.fprintf fmt "%S" s)
    ~equal:String.equal

(* A catch-all "garbage" payload for adversaries that want to write
   something no correct decoder accepts. *)
let garbage : string key =
  key ~name:"garbage"
    ~pp:(fun fmt s -> Format.fprintf fmt "garbage(%S)" s)
    ~equal:String.equal
