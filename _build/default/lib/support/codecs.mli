(** Shared {!Univ} keys for everything the algorithms store in registers. *)

val value : Value.t Univ.key
(** A plain value (the R* register of Algorithm 1). *)

val value_opt : Value.t option Univ.key
(** A value or ⊥ (the E_i / R_i registers of Algorithm 2). *)

val vset : Value.Set.t Univ.key
(** A witness set (the R_i registers of Algorithm 1). *)

val vset_stamped : (Value.Set.t * int) Univ.key
(** ⟨witness set, timestamp⟩ — the R_jk mailboxes of Algorithm 1. *)

val vopt_stamped : (Value.t option * int) Univ.key
(** ⟨witnessed value or ⊥, timestamp⟩ — the R_jk mailboxes of
    Algorithm 2. *)

val counter : int Univ.key
(** The round counters C_k. *)
