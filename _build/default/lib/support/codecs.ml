(* Shared [Univ] keys for everything the algorithms store in registers. *)

let value : Value.t Univ.key =
  Univ.key ~name:"value" ~pp:Value.pp ~equal:Value.equal

let value_opt : Value.t option Univ.key =
  Univ.key ~name:"value_opt" ~pp:Value.pp_opt ~equal:Value.equal_opt

let vset : Value.Set.t Univ.key =
  Univ.key ~name:"vset" ~pp:Value.Set.pp ~equal:Value.Set.equal

(* ⟨set of witnessed values, timestamp⟩ — the R_jk payload of Algorithm 1. *)
let vset_stamped : (Value.Set.t * int) Univ.key =
  Univ.key ~name:"vset_stamped"
    ~pp:(fun fmt (s, c) -> Format.fprintf fmt "⟨%a, %d⟩" Value.Set.pp s c)
    ~equal:(fun (s1, c1) (s2, c2) -> Value.Set.equal s1 s2 && c1 = c2)

(* ⟨witnessed value or ⊥, timestamp⟩ — the R_jk payload of Algorithm 2. *)
let vopt_stamped : (Value.t option * int) Univ.key =
  Univ.key ~name:"vopt_stamped"
    ~pp:(fun fmt (v, c) -> Format.fprintf fmt "⟨%a, %d⟩" Value.pp_opt v c)
    ~equal:(fun (v1, c1) (v2, c2) -> Value.equal_opt v1 v2 && c1 = c2)

let counter : int Univ.key =
  Univ.key ~name:"counter" ~pp:Format.pp_print_int ~equal:Int.equal
