(** The value domain [V] of the registers.

    The paper's registers are multivalued over an arbitrary domain;
    strings keep examples readable. The initial value of a verifiable
    register is {!v0}; the sticky register's initial ⊥ is represented at
    the type level as [None] in [t option]. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val v0 : t
(** The initial value of a verifiable register. *)

(** Ordered sets of values (with a pretty-printer). *)
module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
  val of_seq_list : elt list -> t
end

val pp_opt : Format.formatter -> t option -> unit
(** Prints [None] as ⊥. *)

val equal_opt : t option -> t option -> bool
