(* Deterministic, splittable PRNG (SplitMix64).

   Every source of randomness in the simulator flows through one of these
   generators so that whole executions — including adversary behaviour and
   scheduling — replay exactly from a seed. *)

type t = { mutable state : int64 }

let create (seed : int) : t = { state = Int64.of_int seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let next64 (t : t) : int64 =
  let ( +! ) = Int64.add and ( *! ) = Int64.mul in
  let ( ^! ) = Int64.logxor in
  t.state <- t.state +! golden_gamma;
  let z = t.state in
  let z = (z ^! Int64.shift_right_logical z 30) *! 0xBF58476D1CE4E5B9L in
  let z = (z ^! Int64.shift_right_logical z 27) *! 0x94D049BB133111EBL in
  z ^! Int64.shift_right_logical z 31

let split (t : t) : t = { state = next64 t }

let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let x = Int64.to_int (next64 t) land max_int in
  x mod bound

let bool (t : t) : bool = Int64.logand (next64 t) 1L = 1L

let pick (t : t) (xs : 'a list) : 'a =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let pick_arr (t : t) (xs : 'a array) : 'a =
  if Array.length xs = 0 then invalid_arg "Rng.pick_arr: empty array";
  xs.(int t (Array.length xs))

let shuffle (t : t) (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* A fresh seed derived from this generator, for spawning independent
   sub-streams identified by an integer salt. *)
let derive (t : t) (salt : int) : t =
  let s = Int64.logxor (next64 t) (Int64.of_int (salt * 0x2545F491)) in
  { state = s }
