(** A universal type with named, typed keys.

    Shared registers carry [Univ.t] so that a Byzantine process can store
    arbitrary — even ill-typed — content in the registers it owns, while
    correct code projects values back defensively with {!prj} or
    {!prj_default}. *)

type t
(** A value of some (key-identified) type. *)

type 'a key
(** A typed injection/projection key. Two keys created by separate calls
    to {!key} are always distinct, even with the same name. *)

val key :
  name:string ->
  pp:(Format.formatter -> 'a -> unit) ->
  equal:('a -> 'a -> bool) ->
  'a key
(** [key ~name ~pp ~equal] mints a fresh key for type ['a]. *)

val inj : 'a key -> 'a -> t
(** Wrap a value under a key. *)

val prj : 'a key -> t -> 'a option
(** Project a value back; [None] if it was injected under another key. *)

val prj_default : 'a key -> default:'a -> t -> 'a
(** Defensive projection: ill-typed content (e.g. garbage written by a
    Byzantine owner) reads as [default]. *)

val key_name : t -> string
(** The name of the key a value was injected under. *)

val pp : Format.formatter -> t -> unit
(** Print the payload with its key's printer. *)

val equal : t -> t -> bool
(** Same key and equal payloads. *)

(** {2 Ready-made keys} *)

val unit : unit key
val int : int key
val string : string key

val garbage : string key
(** A catch-all payload no correct decoder accepts; used by adversaries. *)
