(** A ready-wired simulated system around one sticky register (the
    sticky counterpart of [Lnd_verifiable.System]). *)

open Lnd_support
module S = Lnd_history.Spec.Sticky_spec

type t = {
  cfg : Sticky.config;
  space : Lnd_shm.Space.t;
  sched : Lnd_runtime.Sched.t;
  regs : Sticky.regs;
  writer : Sticky.writer;
  readers : Sticky.reader option array; (** by pid; slot 0 is [None] *)
  history : (S.op, S.res) Lnd_history.History.t;
  correct : bool array;
}

val make :
  ?policy:Lnd_runtime.Policy.t ->
  ?byzantine:int list ->
  n:int ->
  f:int ->
  unit ->
  t

val reader : t -> int -> Sticky.reader

(** {2 Recorded operations — call from client fibers} *)

val op_write : t -> Value.t -> unit
val op_read : t -> pid:int -> Value.t option

val client :
  t -> pid:int -> name:string -> (unit -> unit) -> Lnd_runtime.Sched.fiber

val run :
  ?max_steps:int ->
  ?until:(Lnd_runtime.Sched.t -> bool) ->
  t ->
  Lnd_runtime.Sched.stop_reason

val byz_linearizable : ?node_budget:int -> t -> bool
(** Byzantine linearizability of the recorded history (Theorem 19). *)
