(* Wired simulated system around one sticky register (cf.
   Lnd_verifiable.System). *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module S = Lnd_history.Spec.Sticky_spec

type t = {
  cfg : Sticky.config;
  space : Space.t;
  sched : Sched.t;
  regs : Sticky.regs;
  writer : Sticky.writer;
  readers : Sticky.reader option array; (* indexed by pid; slot 0 is None *)
  history : (S.op, S.res) Lnd_history.History.t;
  correct : bool array;
}

let make ?(policy : Policy.t option) ?(byzantine : int list = []) ~n ~f () : t
    =
  let cfg = { Sticky.n; f } in
  let space = Space.create ~n in
  let choose =
    match policy with Some p -> p | None -> Policy.random ~seed:42
  in
  let sched = Sched.create ~space ~choose in
  let regs = Sticky.alloc space cfg in
  let writer = Sticky.writer regs in
  let readers =
    Array.init n (fun pid ->
        if pid = 0 then None else Some (Sticky.reader regs ~pid))
  in
  let correct = Array.make n true in
  List.iter (fun pid -> correct.(pid) <- false) byzantine;
  for pid = 0 to n - 1 do
    if correct.(pid) then
      ignore
        (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
           ~daemon:true (fun () -> Sticky.help regs ~pid))
  done;
  {
    cfg;
    space;
    sched;
    regs;
    writer;
    readers;
    history = Lnd_history.History.create ();
    correct;
  }

let reader t pid : Sticky.reader =
  if pid <= 0 || pid >= t.cfg.n then invalid_arg "System.reader: bad pid";
  match t.readers.(pid) with Some r -> r | None -> assert false

let op_write t v : unit =
  Lnd_history.History.record t.history ~pid:0 (S.Write v) (fun () ->
      Sticky.write t.writer v;
      S.Done)
  |> ignore

let op_read t ~pid : Value.t option =
  match
    Lnd_history.History.record t.history ~pid S.Read (fun () ->
        S.Val (Sticky.read (reader t pid)))
  with
  | S.Val v -> v
  | _ -> assert false

let client t ~pid ~name (body : unit -> unit) : Sched.fiber =
  Sched.spawn t.sched ~pid ~name body

let run ?max_steps ?until t = Sched.run ?max_steps ?until t.sched

(* Byzantine linearizability of the recorded history (Theorem 19). *)
let byz_linearizable ?node_budget t : bool =
  Lnd_history.Byzlin.sticky ?node_budget ~writer:0
    ~correct:(fun pid -> t.correct.(pid))
    t.history
