lib/sticky/ablation.ml: Array Cell Codecs List Lnd_runtime Lnd_support Sched Sticky Univ Value
