lib/sticky/system.mli: Lnd_history Lnd_runtime Lnd_shm Lnd_support Sticky Value
