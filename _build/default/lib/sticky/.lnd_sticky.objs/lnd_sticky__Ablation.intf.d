lib/sticky/ablation.mli: Lnd_support Sticky Value
