lib/sticky/sticky.ml: Array Cell Codecs Int List Lnd_runtime Lnd_support Map Printf Sched Set Univ Value
