lib/sticky/sticky.mli: Cell Lnd_runtime Lnd_shm Lnd_support Value
