(* Ablations for Algorithm 2, straight from the Section 7.1 prose.

   1. [write_nowait] — the paper asks: "a reader may wonder why, to write
      a value v, the writer has to wait for n-f witnesses of v before
      returning done ... It turns out that without this wait, a process
      may invoke a READ after a WRITE(v) completes and get back ⊥."
      This variant returns done immediately after writing E_1; the test
      suite exhibits exactly that validity violation.

   2. [help_lax] — Algorithm 2 uses a *stricter* witness policy than
      Algorithm 1: a process echoes first and witnesses only after n-f
      echoes, because "the stricter policy ... prevents correct processes
      from becoming witnesses for different values". This variant adopts
      Algorithm 1's lax policy (witness a value as soon as it is seen in
      the writer's register). The test suite shows an equivocating
      Byzantine writer splitting the correct witnesses between two values,
      which leaves READ unable to assemble an n-f quorum. *)

open Lnd_support
open Lnd_runtime

let read_vopt reg = Univ.prj_default Codecs.value_opt ~default:None (Cell.read reg)
let read_counter reg = Univ.prj_default Codecs.counter ~default:0 (Cell.read reg)

(* WRITE without the lines 3-5 witness wait. *)
let write_nowait (w : Sticky.writer) (v : Value.t) : unit =
  let rg = w.Sticky.w_regs in
  if read_vopt rg.Sticky.e.(0) = None then
    Cell.write rg.Sticky.e.(0) (Univ.inj Codecs.value_opt (Some v))

(* Help with the LAX witness policy: copy whatever the writer's echo
   register currently shows straight into the witness register. The
   asker-answering machinery is unchanged. *)
let help_lax (rg : Sticky.regs) ~pid : unit =
  let { Sticky.n; f = _ } = rg.Sticky.cfg in
  let prev_c = Array.make n 0 in
  while true do
    (* echo (same as Algorithm 2) *)
    if read_vopt rg.Sticky.e.(pid) = None then begin
      let e1 = read_vopt rg.Sticky.e.(0) in
      match e1 with
      | Some _ -> Cell.write rg.Sticky.e.(pid) (Univ.inj Codecs.value_opt e1)
      | None -> ()
    end;
    (* LAX adoption: witness the writer's current value directly, no
       echo quorum *)
    if read_vopt rg.Sticky.r.(pid) = None then begin
      match read_vopt rg.Sticky.e.(0) with
      | Some v ->
          Cell.write rg.Sticky.r.(pid) (Univ.inj Codecs.value_opt (Some v))
      | None -> ()
    end;
    let cks = Array.make n 0 in
    for k = 1 to n - 1 do
      cks.(k) <- read_counter rg.Sticky.c.(k)
    done;
    let askers = ref [] in
    for k = n - 1 downto 1 do
      if cks.(k) > prev_c.(k) then askers := k :: !askers
    done;
    if !askers <> [] then begin
      let rj = read_vopt rg.Sticky.r.(pid) in
      List.iter
        (fun k ->
          Cell.write rg.Sticky.rjk.(pid).(k)
            (Univ.inj Codecs.vopt_stamped (rj, cks.(k)));
          prev_c.(k) <- cks.(k))
        !askers
    end
    else Sched.yield ()
  done
