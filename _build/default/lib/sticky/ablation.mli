(** Ablations for Algorithm 2, straight from the Section 7.1 prose.
    Both variants exhibit their predicted failures in test suite A2/A3
    and bench table T8. *)

open Lnd_support

val write_nowait : Sticky.writer -> Value.t -> unit
(** WRITE without the lines 3-5 witness wait. The paper's remark: without
    the wait, "a process may invoke a READ after a WRITE(v) completes and
    get back ⊥" — measured in 20/20 adversarial schedules. *)

val help_lax : Sticky.regs -> pid:int -> unit
(** Help with Algorithm 1's LAX witness policy (witness the writer's
    current value on sight, no echo quorum). An equivocating writer can
    then split the correct witnesses between two values, and READs can no
    longer assemble an n-f quorum. *)
