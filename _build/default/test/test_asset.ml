(* The asset-transfer object (Cohen-Keidar's application, signature-free
   on sticky registers). *)

open Lnd_shm
open Lnd_runtime
module Asset = Lnd_asset.Asset

let run_ok ?(max_steps = 20_000_000) sched =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent -> ()
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

let mk ?(seed = 3) ~n ~f ~slots ~byzantine () =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let t =
    Asset.create space sched ~n ~f ~slots ~initial_balance:100 ~byzantine ()
  in
  (sched, t)

let test_simple_transfer () =
  let sched, t = mk ~n:4 ~f:1 ~slots:2 ~byzantine:[] () in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"a0" (fun () ->
         Alcotest.(check bool) "transfer issued" true
           (Asset.transfer t ~src:0 ~dst:1 ~amount:30)));
  run_ok sched;
  let b0 = ref (-1) and b1 = ref (-1) in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"v" (fun () ->
         b0 := Asset.balance t ~pid:2 ~acct:0;
         b1 := Asset.balance t ~pid:2 ~acct:1));
  run_ok sched;
  Alcotest.(check int) "sender debited" 70 !b0;
  Alcotest.(check int) "receiver credited" 130 !b1

let test_overdraft_rejected () =
  let sched, t = mk ~n:4 ~f:1 ~slots:2 ~byzantine:[] () in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"a0" (fun () ->
         Alcotest.(check bool) "first ok" true
           (Asset.transfer t ~src:0 ~dst:1 ~amount:80);
         Alcotest.(check bool) "overdraft refused" false
           (Asset.transfer t ~src:0 ~dst:2 ~amount:50)));
  run_ok sched;
  let l = ref [||] in
  ignore
    (Sched.spawn sched ~pid:3 ~name:"v" (fun () -> l := Asset.ledger t ~pid:3));
  run_ok sched;
  Alcotest.(check int) "balance after" 20 (!l).(0);
  Alcotest.(check bool) "conserved" true (Asset.conserved t !l)

let test_self_and_invalid_transfers () =
  let sched, t = mk ~n:4 ~f:1 ~slots:2 ~byzantine:[] () in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"a0" (fun () ->
         Alcotest.(check bool) "self transfer refused" false
           (Asset.transfer t ~src:0 ~dst:0 ~amount:10);
         Alcotest.(check bool) "zero refused" false
           (Asset.transfer t ~src:0 ~dst:1 ~amount:0);
         Alcotest.(check bool) "negative refused" false
           (Asset.transfer t ~src:0 ~dst:1 ~amount:(-5));
         Alcotest.(check bool) "bad account refused" false
           (Asset.transfer t ~src:0 ~dst:9 ~amount:5)));
  run_ok sched

(* A Byzantine owner injects a raw overdraft into its sticky slot; every
   correct validator rejects it identically, and conservation holds. *)
let test_byz_overdraft_rejected_everywhere () =
  let sched, t = mk ~n:4 ~f:1 ~slots:1 ~byzantine:[ 3 ] () in
  ignore
    (Sched.spawn sched ~pid:3 ~name:"byz" (fun () ->
         (* writes an overdraft transfer directly, bypassing validation *)
         Lnd_broadcast.Broadcast.Neq.bcast t.Asset.grid ~sender:3 ~slot:0
           "0:5000"));
  run_ok sched;
  let ledgers = Array.make 3 [||] in
  for pid = 0 to 2 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ledgers.(pid) <- Asset.ledger t ~pid))
  done;
  run_ok sched;
  Array.iter
    (fun l ->
      Alcotest.(check int) "byz account untouched" 100 l.(3);
      Alcotest.(check int) "victim account untouched" 100 l.(0);
      Alcotest.(check bool) "conserved" true (Asset.conserved t l))
    ledgers

(* A Byzantine owner cannot double-spend by equivocation: slot 0 is
   sticky, so validators all see the same transfer (or none). *)
let test_byz_no_double_spend ~seed () =
  let sched, t = mk ~seed ~n:4 ~f:1 ~slots:1 ~byzantine:[ 0 ] () in
  ignore
    (Lnd_byz.Byz_sticky.spawn_equivocating_writer sched
       t.Asset.grid.Lnd_broadcast.Broadcast.Neq.instances.(0).(0)
         .Lnd_broadcast.Broadcast.Neq.regs ~va:"1:100" ~vb:"2:100"
       ~flip_after:2 ());
  run_ok sched;
  let ledgers = Array.make 4 None in
  for pid = 1 to 3 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ledgers.(pid) <- Some (Asset.ledger t ~pid)))
  done;
  run_ok sched;
  let views = List.filter_map (fun x -> x) (Array.to_list ledgers) in
  List.iter
    (fun l ->
      Alcotest.(check bool) "conserved" true (Asset.conserved t l);
      (* at most ONE of the two conflicting transfers took effect *)
      Alcotest.(check bool)
        "no double spend" true
        (l.(1) + l.(2) <= 300))
    views;
  (* all correct validators agree on the settled state *)
  match views with
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun l -> Alcotest.(check (array int)) "validators agree" first l)
        rest

(* Concurrent transfers from several accounts: conservation and agreement
   after settlement. *)
let test_concurrent_transfers ~seed () =
  let sched, t = mk ~seed ~n:4 ~f:1 ~slots:2 ~byzantine:[] () in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"a0" (fun () ->
         ignore (Asset.transfer t ~src:0 ~dst:1 ~amount:10);
         ignore (Asset.transfer t ~src:0 ~dst:2 ~amount:20)));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"a1" (fun () ->
         ignore (Asset.transfer t ~src:1 ~dst:3 ~amount:40)));
  ignore
    (Sched.spawn sched ~pid:2 ~name:"a2" (fun () ->
         ignore (Asset.transfer t ~src:2 ~dst:0 ~amount:5)));
  run_ok sched;
  let ledgers = Array.make 4 [||] in
  for pid = 1 to 3 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ledgers.(pid) <- Asset.ledger t ~pid))
  done;
  run_ok sched;
  for pid = 1 to 3 do
    Alcotest.(check bool) "conserved" true (Asset.conserved t ledgers.(pid));
    Alcotest.(check (array int)) "validators agree" ledgers.(1) ledgers.(pid)
  done

(* Settled prefixes are monotone: an earlier view is contained in a later
   view (stickiness). *)
let test_prefix_monotone ~seed () =
  let sched, t = mk ~seed ~n:4 ~f:1 ~slots:2 ~byzantine:[] () in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"a0" (fun () ->
         ignore (Asset.transfer t ~src:0 ~dst:1 ~amount:10)));
  run_ok sched;
  let v1 = ref [] in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"view1" (fun () ->
         v1 := Asset.view t ~pid:2));
  run_ok sched;
  ignore
    (Sched.spawn sched ~pid:1 ~name:"a1" (fun () ->
         ignore (Asset.transfer t ~src:1 ~dst:3 ~amount:15)));
  run_ok sched;
  let v2 = ref [] in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"view2" (fun () ->
         v2 := Asset.view t ~pid:2));
  run_ok sched;
  Alcotest.(check bool)
    "later view extends earlier view" true
    (Asset.prefix_consistent ~earlier:!v1 ~later:!v2)

(* Linearizability of recorded asset histories: transfers and balance
   reads, checked against the sequential specification (with the source
   account embedded in the op, since the spec is pid-indexed). *)
module Spec_n4 = struct
  module A = Asset.Asset_spec

  type op = int * A.op (* (invoking pid, operation) *)
  type res = A.res
  type state = A.state

  let init = A.init ~n:4 ~initial_balance:100
  let apply s (pid, op) = A.apply_by s ~pid op
  let res_equal = A.res_equal

  let pp_op fmt (pid, op) = Format.fprintf fmt "p%d:%a" pid A.pp_op op
  let pp_res = A.pp_res
end

module AC = Lnd_history.Spec.Checker (Spec_n4)

let test_linearizable_history ~seed () =
  let sched, t = mk ~seed ~n:4 ~f:1 ~slots:2 ~byzantine:[] () in
  let h : (Spec_n4.op, Spec_n4.res) Lnd_history.History.t =
    Lnd_history.History.create ()
  in
  let rec_transfer ~src ~dst ~amount =
    ignore
      (Lnd_history.History.record h ~pid:src
         (src, Asset.Asset_spec.Transfer { dst; amount })
         (fun () -> Asset.Asset_spec.Ack (Asset.transfer t ~src ~dst ~amount)))
  in
  let rec_balance ~pid ~acct =
    ignore
      (Lnd_history.History.record h ~pid
         (pid, Asset.Asset_spec.Balance acct)
         (fun () -> Asset.Asset_spec.Amount (Asset.balance t ~pid ~acct)))
  in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"a0" (fun () ->
         rec_transfer ~src:0 ~dst:1 ~amount:30;
         rec_transfer ~src:0 ~dst:2 ~amount:90 (* may be refused *)));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"a1" (fun () ->
         rec_transfer ~src:1 ~dst:3 ~amount:50;
         rec_balance ~pid:1 ~acct:0));
  ignore
    (Sched.spawn sched ~pid:2 ~name:"a2" (fun () ->
         rec_balance ~pid:2 ~acct:1;
         rec_balance ~pid:2 ~acct:3));
  run_ok sched;
  Alcotest.(check bool)
    "asset history linearizable" true (AC.linearizable h)

let tests =
  [
    Alcotest.test_case "simple transfer" `Quick test_simple_transfer;
    Alcotest.test_case "linearizable history (seed 21)" `Quick
      (test_linearizable_history ~seed:21);
    Alcotest.test_case "linearizable history (seed 22)" `Quick
      (test_linearizable_history ~seed:22);
    Alcotest.test_case "linearizable history (seed 23)" `Quick
      (test_linearizable_history ~seed:23);
    Alcotest.test_case "overdraft rejected" `Quick test_overdraft_rejected;
    Alcotest.test_case "invalid transfers refused" `Quick
      test_self_and_invalid_transfers;
    Alcotest.test_case "byz overdraft rejected everywhere" `Quick
      test_byz_overdraft_rejected_everywhere;
    Alcotest.test_case "byz no double spend (seed 7)" `Quick
      (test_byz_no_double_spend ~seed:7);
    Alcotest.test_case "byz no double spend (seed 8)" `Quick
      (test_byz_no_double_spend ~seed:8);
    Alcotest.test_case "concurrent transfers (seed 9)" `Quick
      (test_concurrent_transfers ~seed:9);
    Alcotest.test_case "concurrent transfers (seed 10)" `Quick
      (test_concurrent_transfers ~seed:10);
    Alcotest.test_case "settled prefix monotone" `Quick
      (test_prefix_monotone ~seed:11);
  ]
